package bench

import (
	"fmt"
	"strings"
	"time"

	"rfview/internal/engine"
)

// Table1Query is the workload of the paper's Table 1: a centered size-3
// sliding window over the sequence table (§2.2's sample query, Fig. 2).
const Table1Query = `SELECT pos, SUM(val) OVER (ORDER BY pos
  ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM seq`

// Table1Row is one measured row of Table 1.
type Table1Row struct {
	N int
	// Without a position index.
	NativeNoIndex   time.Duration
	SelfJoinNoIndex time.Duration
	// With a unique ordered index on seq.pos.
	NativeIndex   time.Duration
	SelfJoinIndex time.Duration
}

// Table1Sizes are the paper's sequence cardinalities.
var Table1Sizes = []int{5000, 10000, 15000}

// RunTable1 measures the four strategies of Table 1 for every size. With
// check set, the self-join results are verified against the native window
// operator's.
func RunTable1(sizes []int, check bool) ([]Table1Row, error) {
	out := make([]Table1Row, 0, len(sizes))
	for _, n := range sizes {
		row := Table1Row{N: n}

		run := func(native, withIndex bool) (time.Duration, error) {
			opts := engine.DefaultOptions()
			opts.UseMatViews = false
			opts.NativeWindow = native
			opts.UseIndexes = withIndex
			e := engine.New(opts)
			if err := LoadSequenceTable(e, n, 42); err != nil {
				return 0, err
			}
			if withIndex {
				if _, err := e.Exec(`CREATE UNIQUE INDEX seq_pk ON seq (pos)`); err != nil {
					return 0, err
				}
			}
			d, rows, err := timeQuery(e, Table1Query, 1)
			if err != nil {
				return 0, err
			}
			if check && !native {
				ref := engine.New(engine.DefaultOptions())
				if err := LoadSequenceTable(ref, n, 42); err != nil {
					return 0, err
				}
				refRes, err := ref.Exec(Table1Query)
				if err != nil {
					return 0, err
				}
				if !sameSeries(refRes.Rows, rows) {
					return 0, fmt.Errorf("table1: self-join result diverges from native at n=%d", n)
				}
			}
			return d, nil
		}

		var err error
		if row.NativeNoIndex, err = run(true, false); err != nil {
			return nil, err
		}
		if row.SelfJoinNoIndex, err = run(false, false); err != nil {
			return nil, err
		}
		if row.NativeIndex, err = run(true, true); err != nil {
			return nil, err
		}
		if row.SelfJoinIndex, err = run(false, true); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatTable1 renders the rows the way the paper prints Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: Computing Sequence Data\n")
	b.WriteString("                 ---- no position index ----   --- with primary key index ---\n")
	b.WriteString("  # seq values   reporting     self join       reporting     self join\n")
	b.WriteString("                 functionality method          functionality method\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %12d   %-13s %-15s %-13s %-13s\n",
			r.N, fmtDur(r.NativeNoIndex), fmtDur(r.SelfJoinNoIndex),
			fmtDur(r.NativeIndex), fmtDur(r.SelfJoinIndex))
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// CSVTable1 renders the measurements as CSV (microseconds), for plotting.
func CSVTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("n,native_noindex_us,selfjoin_noindex_us,native_index_us,selfjoin_index_us\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d\n", r.N,
			r.NativeNoIndex.Microseconds(), r.SelfJoinNoIndex.Microseconds(),
			r.NativeIndex.Microseconds(), r.SelfJoinIndex.Microseconds())
	}
	return b.String()
}
