package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// testHeapEnv hands out heap files in a test temp dir.
type testHeapEnv struct {
	dir     string
	seq     atomic.Int64
	created atomic.Int64
}

func (e *testHeapEnv) CreateHeap(tag string) (*os.File, error) {
	e.created.Add(1)
	name := filepath.Join(e.dir, fmt.Sprintf("heap-%d-%s.tmp", e.seq.Add(1), tag))
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
}

// testBudget is a MemBudget with a hard limit and a forced-overdraft counter.
type testBudget struct {
	mu     sync.Mutex
	limit  int64
	used   int64
	forced int64
}

func (b *testBudget) Charge(n int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.limit > 0 && b.used+n > b.limit {
		return false
	}
	b.used += n
	return true
}

func (b *testBudget) Force(n int64) {
	b.mu.Lock()
	b.used += n
	b.forced += n
	b.mu.Unlock()
}

func (b *testBudget) Release(n int64) {
	b.mu.Lock()
	b.used -= n
	b.mu.Unlock()
}

func (b *testBudget) snapshot() (used, forced int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used, b.forced
}

func newTestPager(t *testing.T, pageSize int, capBytes int64, budget MemBudget) *Pager {
	t.Helper()
	p := NewPager(PagerConfig{
		PageSize: pageSize,
		CapBytes: capBytes,
		Budget:   budget,
		Env:      &testHeapEnv{dir: t.TempDir()},
	})
	t.Cleanup(func() { p.Close() })
	return p
}

// fillPages creates n pages each holding one marker record and returns the
// expected record for each pid.
func fillPages(t *testing.T, p *Pager, hf *heapFile, n int) [][]byte {
	t.Helper()
	recs := make([][]byte, n)
	for i := 0; i < n; i++ {
		pid := hf.alloc(1)
		f, err := p.pool.create(hf, pid)
		if err != nil {
			t.Fatalf("create page %d: %v", pid, err)
		}
		initPage(f.buf)
		rec := []byte(fmt.Sprintf("page-%04d-marker", pid))
		if _, ok := pageAppend(f.buf, rec); !ok {
			t.Fatalf("append to fresh page %d failed", pid)
		}
		p.pool.unpin(f, true)
		recs[pid] = rec
	}
	return recs
}

// checkPages pins every page and verifies its marker record.
func checkPages(t *testing.T, p *Pager, hf *heapFile, recs [][]byte) {
	t.Helper()
	for pid, want := range recs {
		f, _, err := p.pool.pin(hf, uint32(pid))
		if err != nil {
			t.Fatalf("pin page %d: %v", pid, err)
		}
		got, err := pageRecord(f.buf, 0)
		if err != nil {
			t.Fatalf("page %d record: %v", pid, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d: got %q, want %q", pid, got, want)
		}
		p.pool.unpin(f, false)
	}
}

// TestPoolEvictWritebackReadback starves a 2-frame pool with 12 pages: every
// page must survive eviction, write-back, and reload byte-exact.
func TestPoolEvictWritebackReadback(t *testing.T) {
	p := newTestPager(t, MinPageSize, 2*MinPageSize, nil)
	hf, err := p.newHeapFile("t")
	if err != nil {
		t.Fatal(err)
	}
	recs := fillPages(t, p, hf, 12)
	checkPages(t, p, hf, recs)
	st := p.Stats()
	if st.Evictions == 0 || st.Writebacks == 0 || st.Misses == 0 {
		t.Fatalf("starved pool did no IO: %+v", st)
	}
	if st.BytesResident > 2*MinPageSize {
		t.Fatalf("pool grew past its cap: %d bytes resident", st.BytesResident)
	}
	// A second sweep over a hot subset must come from cache.
	pre := p.Stats().Hits
	for i := 0; i < 3; i++ {
		f, hit, err := p.pool.pin(hf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && !hit {
			t.Fatal("re-pin of a just-pinned page missed")
		}
		p.pool.unpin(f, false)
	}
	if p.Stats().Hits <= pre {
		t.Fatal("hot re-pins did not count as hits")
	}
}

// TestPoolBudgetCharged runs the same starvation through a MemBudget and
// asserts the pool charges residency, stays within the limit without
// overdraft (nothing stays pinned), and releases everything at Close.
func TestPoolBudgetCharged(t *testing.T) {
	b := &testBudget{limit: 3 * MinPageSize}
	p := NewPager(PagerConfig{
		PageSize: MinPageSize,
		Budget:   b,
		Env:      &testHeapEnv{dir: t.TempDir()},
	})
	hf, err := p.newHeapFile("t")
	if err != nil {
		t.Fatal(err)
	}
	recs := fillPages(t, p, hf, 10)
	checkPages(t, p, hf, recs)
	used, forced := b.snapshot()
	if used == 0 || used > b.limit {
		t.Fatalf("budget used = %d, want within (0, %d]", used, b.limit)
	}
	if forced != 0 {
		t.Fatalf("unpinned workload forced %d bytes of overdraft", forced)
	}
	if used != p.Stats().BytesResident {
		t.Fatalf("budget used %d != bytes resident %d", used, p.Stats().BytesResident)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if used, _ := b.snapshot(); used != 0 {
		t.Fatalf("Close left %d bytes charged", used)
	}
}

// TestPoolAllPinnedForcesGrowth pins more pages than the cap allows: the
// pool must grow past the cap (forced overdraft) rather than deadlock.
func TestPoolAllPinnedForcesGrowth(t *testing.T) {
	b := &testBudget{limit: MinPageSize}
	p := NewPager(PagerConfig{
		PageSize: MinPageSize,
		CapBytes: MinPageSize,
		Budget:   b,
		Env:      &testHeapEnv{dir: t.TempDir()},
	})
	defer p.Close()
	hf, err := p.newHeapFile("t")
	if err != nil {
		t.Fatal(err)
	}
	var frames []*frame
	for i := 0; i < 3; i++ {
		f, err := p.pool.create(hf, hf.alloc(1))
		if err != nil {
			t.Fatalf("create %d with all frames pinned: %v", i, err)
		}
		initPage(f.buf)
		frames = append(frames, f) // stays pinned
	}
	if _, forced := b.snapshot(); forced == 0 {
		t.Fatal("growth past a fully-pinned cap did not force the budget")
	}
	for _, f := range frames {
		p.pool.unpin(f, false)
	}
}

// TestPoolFlushDirty checks FlushDirty writes every unpinned dirty page and
// that a flushed page reloads after eviction.
func TestPoolFlushDirty(t *testing.T) {
	p := newTestPager(t, MinPageSize, 0, nil)
	hf, err := p.newHeapFile("t")
	if err != nil {
		t.Fatal(err)
	}
	recs := fillPages(t, p, hf, 4)
	if st := p.Stats(); st.PagesDirty != 4 {
		t.Fatalf("PagesDirty = %d before flush", st.PagesDirty)
	}
	if err := p.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.PagesDirty != 0 || st.Writebacks != 4 {
		t.Fatalf("after flush: dirty=%d writebacks=%d", st.PagesDirty, st.Writebacks)
	}
	checkPages(t, p, hf, recs)
}

// TestPoolConcurrentPins hammers a starved pool from many goroutines under
// the race detector: contents must stay byte-exact through concurrent
// pin/load/evict traffic.
func TestPoolConcurrentPins(t *testing.T) {
	p := newTestPager(t, MinPageSize, 4*MinPageSize, nil)
	hf, err := p.newHeapFile("t")
	if err != nil {
		t.Fatal(err)
	}
	recs := fillPages(t, p, hf, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pid := uint32((g*7 + i*13) % len(recs))
				f, _, err := p.pool.pin(hf, pid)
				if err != nil {
					t.Errorf("pin %d: %v", pid, err)
					return
				}
				got, err := pageRecord(f.buf, 0)
				if err != nil || !bytes.Equal(got, recs[pid]) {
					t.Errorf("page %d corrupt under concurrency (err=%v)", pid, err)
				}
				p.pool.unpin(f, false)
			}
		}(g)
	}
	wg.Wait()
}
