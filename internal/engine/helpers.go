package engine

import (
	"rfview/internal/catalog"
	"rfview/internal/expr"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
	"rfview/internal/storage"
)

// compiledExpr aliases expr.Expr for the DML helpers.
type compiledExpr = expr.Expr

func exprSchema() *expr.Schema { return expr.NewSchema() }

func tableSchema(tbl *catalog.Table, ref string) *expr.Schema {
	cols := make([]expr.ColInfo, len(tbl.Columns))
	for i, c := range tbl.Columns {
		cols[i] = expr.ColInfo{Table: ref, Name: c.Name, Type: c.Type}
	}
	// Also make unqualified lookups work by using the table's own name.
	_ = ref
	return expr.NewSchema(cols...)
}

func compileAgainst(e sqlparser.Expr, schema *expr.Schema) (expr.Expr, error) {
	return expr.Compile(e, schema)
}

// compileConst evaluates a row-less expression (VALUES entries).
func compileConst(e sqlparser.Expr, schema *expr.Schema) (sqltypes.Datum, error) {
	compiled, err := expr.Compile(e, schema)
	if err != nil {
		return sqltypes.NullDatum, err
	}
	return compiled.Eval(nil)
}

func truthy(d sqltypes.Datum) bool { return expr.Truthy(d) }

// coerce casts a datum to the declared column type, keeping NULLs.
func coerce(d sqltypes.Datum, to sqltypes.Type) (sqltypes.Datum, error) {
	if d.IsNull() {
		return d, nil
	}
	return sqltypes.Cast(d, to)
}

// pointLookupIDs recognizes WHERE shapes of the form `col = literal` (alone
// or as a conjunct) with an index on col, and returns the candidate row ids
// from an index probe. A nil slice with ok=false means "no usable index";
// callers fall back to a full scan. The full predicate is still evaluated
// against every candidate, so the fast path never changes semantics.
func pointLookupIDs(tbl *catalog.Table, where sqlparser.Expr) ([]storage.RowID, bool) {
	var tryConjunct func(e sqlparser.Expr) ([]storage.RowID, bool)
	tryConjunct = func(e sqlparser.Expr) ([]storage.RowID, bool) {
		switch x := e.(type) {
		case *sqlparser.AndExpr:
			if ids, ok := tryConjunct(x.Left); ok {
				return ids, true
			}
			return tryConjunct(x.Right)
		case *sqlparser.ComparisonExpr:
			if x.Op != "=" {
				return nil, false
			}
			colRef, lit := x.Left, x.Right
			if _, isLit := colRef.(*sqlparser.Literal); isLit {
				colRef, lit = x.Right, x.Left
			}
			cr, ok := colRef.(*sqlparser.ColumnRef)
			if !ok {
				return nil, false
			}
			l, ok := lit.(*sqlparser.Literal)
			if !ok {
				return nil, false
			}
			ord := tbl.ColumnIndex(cr.Name)
			if ord < 0 {
				return nil, false
			}
			h := tbl.Heap.IndexOn([]int{ord})
			if h == nil {
				return nil, false
			}
			key, err := coerce(l.Val, tbl.Columns[ord].Type)
			if err != nil || key.IsNull() {
				return nil, false
			}
			var ids []storage.RowID
			h.Idx.Lookup(sqltypes.Row{key}, func(id storage.RowID) bool {
				ids = append(ids, id)
				return true
			})
			return ids, true
		default:
			return nil, false
		}
	}
	if where == nil {
		return nil, false
	}
	return tryConjunct(where)
}
