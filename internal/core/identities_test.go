package core

import (
	"math"
	"math/rand"
	"testing"
)

// This file pins the constructive identities behind the derivation theorems
// — the algebra depicted in Figs. 8, 9, 11 and 12 — directly against raw
// data, independently of the derivation implementations.

// sumRange computes Σ_{j=a}^{b} x_j under the zero-extension convention.
func sumRange(raw []float64, a, b int) float64 {
	s := 0.0
	for j := a; j <= b; j++ {
		s += rawAt(raw, j)
	}
	return s
}

// TestFig8CompensationIdentity — §4.1: ỹ_k = x̃_k + x̃_{k−Δl} − z̃_k where z̃
// is the overlap window (l_x, h_x−Δl).
func TestFig8CompensationIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(40)
		lx, hx := rng.Intn(3), 1+rng.Intn(3)
		dl := 1 + rng.Intn(lx+hx) // 1 ≤ Δl ≤ l_x+h_x
		raw := randRaw(rng, n)
		for k := 1 - hx; k <= n+lx+dl; k++ {
			xk := sumRange(raw, k-lx, k+hx)
			xkdl := sumRange(raw, k-dl-lx, k-dl+hx)
			yk := sumRange(raw, k-lx-dl, k+hx) // target (l_x+Δl, h_x)
			zk := sumRange(raw, k-lx, k-dl+hx) // overlap window
			if math.Abs((xk+xkdl-zk)-yk) > 1e-9 {
				t.Fatalf("trial %d k=%d: x̃_k + x̃_{k−Δl} − z̃_k = %v, ỹ_k = %v",
					trial, k, xk+xkdl-zk, yk)
			}
		}
	}
}

// TestFig9OverlapFactor — §4.1: with Δp = 1+l_x+h_x−Δl, the windows of
// x̃_{k−(Δl+Δp)} and x̃_{k−Δl} overlap in exactly Δl−1 positions:
// wH(k−(Δl+Δp)) − wL(k−Δl) = Δl − 1.
func TestFig9OverlapFactor(t *testing.T) {
	for lx := 0; lx <= 3; lx++ {
		for hx := 0; hx <= 3; hx++ {
			if lx+hx == 0 {
				continue
			}
			for dl := 1; dl <= lx+hx; dl++ {
				dp := 1 + lx + hx - dl
				k := 100
				wHfar := (k - (dl + dp)) + hx // upper bound of x̃_{k−(Δl+Δp)}
				wLnear := (k - dl) - lx       // lower bound of x̃_{k−Δl}
				if wHfar-wLnear != dl-1 {
					t.Fatalf("lx=%d hx=%d Δl=%d: overlap %d, want Δl−1=%d",
						lx, hx, dl, wHfar-wLnear, dl-1)
				}
			}
		}
	}
}

// TestFig9CompensationRecursion — the z̃ recursion itself:
// z̃_k = x̃_{k−Δl} − x̃_{k−(Δl+Δp)} + z̃_{k−(Δl+Δp)} on raw data.
func TestFig9CompensationRecursion(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(40)
		lx, hx := rng.Intn(3), 1+rng.Intn(3)
		dl := 1 + rng.Intn(lx+hx)
		dp := 1 + lx + hx - dl
		raw := randRaw(rng, n)
		z := func(k int) float64 { return sumRange(raw, k-lx, k-dl+hx) }
		x := func(k int) float64 { return sumRange(raw, k-lx, k+hx) }
		for k := 1; k <= n; k++ {
			lhs := z(k)
			rhs := x(k-dl) - x(k-(dl+dp)) + z(k-(dl+dp))
			if math.Abs(lhs-rhs) > 1e-9 {
				t.Fatalf("trial %d k=%d: z̃ recursion violated (lx=%d hx=%d Δl=%d)", trial, k, lx, hx, dl)
			}
		}
	}
}

// TestFig11DoubleSideIdentity — §4.2: the double-sided inclusion-exclusion
// ỹ_k = x̃_k + (x̃_{k−Δl} − z̃L_k) + (x̃_{k+Δh} − z̃H_k).
func TestFig11DoubleSideIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(40)
		lx, hx := rng.Intn(3), rng.Intn(3)
		if lx+hx == 0 {
			lx = 1
		}
		dl := 1 + rng.Intn(lx+hx)
		dh := 1 + rng.Intn(lx+hx)
		raw := randRaw(rng, n)
		x := func(k int) float64 { return sumRange(raw, k-lx, k+hx) }
		zL := func(k int) float64 { return sumRange(raw, k-lx, k-dl+hx) }
		zH := func(k int) float64 { return sumRange(raw, k+dh-lx, k+hx) }
		for k := 1; k <= n; k++ {
			want := sumRange(raw, k-lx-dl, k+hx+dh)
			got := x(k) + (x(k-dl) - zL(k)) + (x(k+dh) - zH(k))
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d k=%d: double-side identity violated (lx=%d hx=%d Δl=%d Δh=%d)",
					trial, k, lx, hx, dl, dh)
			}
		}
	}
}

// TestFig12MinOAChains — §5: the positive chain tiles (−∞, k+h_y] and the
// negative chain tiles (−∞, k−l_y−1], each without gap or overlap.
func TestFig12MinOAChains(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(40)
		lx, hx := rng.Intn(3), rng.Intn(3)
		if lx+hx == 0 {
			hx = 1
		}
		wx := 1 + lx + hx
		ly, hy := rng.Intn(5), rng.Intn(5)
		dh := hy - hx
		dl := ly - lx
		raw := randRaw(rng, n)
		x := func(k int) float64 { return sumRange(raw, k-lx, k+hx) }
		for k := 1; k <= n; k++ {
			pos, neg := 0.0, 0.0
			for i := 0; i <= (k+hy+hx)/wx+2; i++ {
				pos += x(k + dh - i*wx)
			}
			for i := 1; i <= (k-dl+hx)/wx+2; i++ {
				neg += x(k - dl - i*wx)
			}
			if math.Abs(pos-sumRange(raw, -1000, k+hy)) > 1e-9 {
				t.Fatalf("trial %d k=%d: positive chain ≠ prefix sum", trial, k)
			}
			if math.Abs(neg-sumRange(raw, -1000, k-ly-1)) > 1e-9 {
				t.Fatalf("trial %d k=%d: negative chain ≠ prefix sum", trial, k)
			}
		}
	}
}

// TestIupBounds — the summation cut-offs the paper states: i_up = ⌈k/w⌉ for
// raw reconstruction and i_up = ⌈(k+h_y)/w_x⌉ for MinOA's positive chain.
func TestIupBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	raw := randRaw(rng, 50)
	s, _ := ComputePipelined(raw, Sliding(2, 1), Sum)
	w := 4
	for k := 1; k <= 50; k++ {
		// Beyond i_up every term of the raw-reconstruction sum vanishes.
		iup := ceilDiv(k, w)
		for i := iup + 1; i < iup+5; i++ {
			if s.At(k-1-i*w)-s.At(k-1-1-i*w) != 0 && k-1-i*w > -1 {
				t.Fatalf("term beyond i_up non-zero at k=%d i=%d", k, i)
			}
			if k-1-i*w <= -1 { // both args left of the header: literally zero
				if s.At(k-1-i*w) != 0 || s.At(k-1-1-i*w) != 0 {
					t.Fatalf("header zero convention violated at k=%d i=%d", k, i)
				}
			}
		}
	}
}

// TestMaintenanceBandLocality checks the §2.3 claim quantitatively: a point
// update touches exactly W positions, independent of n.
func TestMaintenanceBandLocality(t *testing.T) {
	for _, n := range []int{100, 1000, 5000} {
		m, err := NewMaintainer(make([]float64, n), Sliding(3, 2), Sum)
		if err != nil {
			t.Fatal(err)
		}
		m.ResetStats()
		if err := m.Update(n/2, 42); err != nil {
			t.Fatal(err)
		}
		if m.Touched != 6 {
			t.Fatalf("n=%d: update touched %d positions, want W=6", n, m.Touched)
		}
	}
}

// TestHeaderTrailerShape — Fig. 7: the interesting header positions are
// 1−h…0 and trailer positions n+1…n+l, and their values aggregate only the
// raw positions that actually exist.
func TestHeaderTrailerShape(t *testing.T) {
	raw := []float64{10, 20, 30, 40, 50}
	s, _ := ComputeNaive(raw, Sliding(2, 1), Sum)
	// Header: position 0 covers [−2, 1] ∩ [1,5] = {1}.
	if s.At(0) != 10 {
		t.Fatalf("header value = %v", s.At(0))
	}
	// Trailer: position 7 covers [5, 8] ∩ [1,5] = {5}.
	if s.At(7) != 50 {
		t.Fatalf("trailer value = %v", s.At(7))
	}
	// Position 6 covers {4,5}.
	if s.At(6) != 90 {
		t.Fatalf("trailer value = %v", s.At(6))
	}
	// Left-bounded sequences (l=0) have no trailer, right-bounded (h=0) no
	// header — checked via stored ranges in TestStoredRange; here check the
	// completeness requirement feeds derivation: without the header, MinOA
	// would be wrong at the left boundary.
	y, err := MinOA(s, Sliding(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if y.At(1) != 10+20 { // window [−2, 2] ∩ [1,5] = {1,2}
		t.Fatalf("boundary derivation = %v", y.At(1))
	}
}

// TestDerivationChain — derivations compose: x̃ → ỹ → z̃ stays exact.
func TestDerivationChain(t *testing.T) {
	rng := rand.New(rand.NewSource(239))
	raw := randRaw(rng, 60)
	x, _ := ComputePipelined(raw, Sliding(1, 1), Sum)
	y, err := MinOA(x, Sliding(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	z, err := MinOA(y, Sliding(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ComputeNaive(raw, Sliding(4, 3), Sum)
	if !EqualSeq(z, want, 1e-9) {
		t.Fatal("chained derivation diverged")
	}
}

// TestCumulativeAsUnboundedSliding — the cumulative window is the limit case
// the paper treats separately; check DeriveCumulativeFromSliding and
// RangeSum agree with it.
func TestCumulativeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(241))
	raw := randRaw(rng, 40)
	x, _ := ComputePipelined(raw, Sliding(2, 2), Sum)
	cum, err := DeriveCumulativeFromSliding(x)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 40; k++ {
		rs, err := RangeSum(x, 1, k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rs-cum.At(k)) > 1e-9 {
			t.Fatalf("RangeSum(1,%d) = %v, cumulative = %v", k, rs, cum.At(k))
		}
	}
}
