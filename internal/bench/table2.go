package bench

import (
	"fmt"
	"strings"
	"time"

	"rfview/internal/engine"
	"rfview/internal/rewrite"
)

// Table 2 derives the query sequence ỹ=(3,1) from the materialized view
// x̃=(2,1) — the paper's running example (§3.2, Fig. 6) — comparing MaxOA and
// MinOA in both relational renderings.
const (
	Table2ViewDDL = `CREATE MATERIALIZED VIEW matseq AS
  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`
	Table2Query = `SELECT pos, SUM(val) OVER (ORDER BY pos
  ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w FROM seq`
)

// Table2Row is one measured row of Table 2.
type Table2Row struct {
	N                int
	MaxOADisjunctive time.Duration
	MaxOAUnion       time.Duration
	MinOADisjunctive time.Duration
	MinOAUnion       time.Duration
}

// Table2Sizes are the paper's sequence cardinalities.
var Table2Sizes = []int{100, 500, 1000, 1500, 2000, 3000, 5000}

// Table2Strategy names one of the four measured strategies.
type Table2Strategy struct {
	Name     string
	Strategy rewrite.Strategy
	Form     rewrite.Form
}

// Table2Strategies lists the four columns of Table 2.
var Table2Strategies = []Table2Strategy{
	{"MaxOA/disjunctive", rewrite.StrategyMaxOA, rewrite.FormDisjunctive},
	{"MaxOA/union", rewrite.StrategyMaxOA, rewrite.FormUnion},
	{"MinOA/disjunctive", rewrite.StrategyMinOA, rewrite.FormDisjunctive},
	{"MinOA/union", rewrite.StrategyMinOA, rewrite.FormUnion},
}

// NewTable2Engine builds an engine loaded with n sequence rows, a primary
// key index (the paper's Table 2 ran "including primary key indexes"), and
// the materialized (2,1) view.
func NewTable2Engine(n int) (*engine.Engine, error) {
	e := engine.New(engine.DefaultOptions())
	if err := LoadSequenceTable(e, n, 7); err != nil {
		return nil, err
	}
	if _, err := e.Exec(`CREATE UNIQUE INDEX seq_pk ON seq (pos)`); err != nil {
		return nil, err
	}
	if _, err := e.Exec(Table2ViewDDL); err != nil {
		return nil, err
	}
	return e, nil
}

// RunTable2 measures the four derivation strategies for every size. With
// check set, every strategy's result is verified against native evaluation
// over the raw data.
func RunTable2(sizes []int, check bool) ([]Table2Row, error) {
	out := make([]Table2Row, 0, len(sizes))
	for _, n := range sizes {
		e, err := NewTable2Engine(n)
		if err != nil {
			return nil, err
		}
		var ref *engine.Result
		if check {
			noViews := engine.DefaultOptions()
			noViews.UseMatViews = false
			e.Opts = noViews
			ref, err = e.Exec(Table2Query)
			if err != nil {
				return nil, err
			}
		}
		row := Table2Row{N: n}
		for _, st := range Table2Strategies {
			opts := engine.DefaultOptions()
			opts.Strategy = st.Strategy
			opts.Form = st.Form
			e.Opts = opts
			d, rows, err := timeQuery(e, Table2Query, 1)
			if err != nil {
				return nil, fmt.Errorf("table2 %s n=%d: %w", st.Name, n, err)
			}
			if check {
				res, err := e.Exec(Table2Query)
				if err != nil {
					return nil, err
				}
				if res.Derivation == nil {
					return nil, fmt.Errorf("table2 %s n=%d: derivation did not fire", st.Name, n)
				}
				if !sameSeries(ref.Rows, rows) {
					return nil, fmt.Errorf("table2 %s n=%d: derived result diverges from native", st.Name, n)
				}
			}
			switch st.Name {
			case "MaxOA/disjunctive":
				row.MaxOADisjunctive = d
			case "MaxOA/union":
				row.MaxOAUnion = d
			case "MinOA/disjunctive":
				row.MinOADisjunctive = d
			case "MinOA/union":
				row.MinOAUnion = d
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatTable2 renders the rows the way the paper prints Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: Deriving ỹ=(3,1) from materialized x̃=(2,1)\n")
	b.WriteString("                 ------- MaxO Algorithm -------   ------- MinO Algorithm -------\n")
	b.WriteString("  # seq values   disjunctive   union of simple   disjunctive   union of simple\n")
	b.WriteString("                 predicate     pred. queries     predicate     pred. queries\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %12d   %-13s %-17s %-13s %-13s\n",
			r.N, fmtDur(r.MaxOADisjunctive), fmtDur(r.MaxOAUnion),
			fmtDur(r.MinOADisjunctive), fmtDur(r.MinOAUnion))
	}
	return b.String()
}

// CSVTable2 renders the measurements as CSV (microseconds), for plotting.
func CSVTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("n,maxoa_disjunctive_us,maxoa_union_us,minoa_disjunctive_us,minoa_union_us\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d\n", r.N,
			r.MaxOADisjunctive.Microseconds(), r.MaxOAUnion.Microseconds(),
			r.MinOADisjunctive.Microseconds(), r.MinOAUnion.Microseconds())
	}
	return b.String()
}
