// Credit-card analysis: the query from the paper's introduction, run over a
// synthetic transaction warehouse. It demonstrates every reporting-function
// flavour the paper motivates — overall cumulative sums (running balance),
// per-month cumulative sums (Year-To-Date style), a centered 3-row moving
// average per month and region (smoothing), and a prospective 7-row moving
// average.
//
// Run with: go run ./examples/creditcard
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"rfview"
)

func main() {
	ctx := context.Background()
	db := rfview.OpenDefault()
	if _, err := db.ExecAllContext(ctx, `
	  CREATE TABLE c_transactions (c_custid INTEGER, c_locid INTEGER, c_date DATE, c_transaction INTEGER);
	  CREATE TABLE l_locations (l_locid INTEGER, l_city VARCHAR(30), l_region VARCHAR(30));
	  INSERT INTO l_locations VALUES
	    (1, 'Erlangen', 'Bavaria'), (2, 'Munich', 'Bavaria'),
	    (3, 'Dresden', 'Saxony'),  (4, 'Leipzig', 'Saxony');
	`); err != nil {
		log.Fatal(err)
	}

	// A year of transactions for customer 4711 (plus noise from others).
	rng := rand.New(rand.NewSource(4711))
	var b strings.Builder
	b.WriteString("INSERT INTO c_transactions VALUES ")
	day := 0
	for i := 0; i < 60; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		day += 1 + rng.Intn(5)
		month := 1 + day/28
		if month > 12 {
			month = 12
		}
		cust := 4711
		if i%5 == 4 {
			cust = 1000 + rng.Intn(100) // other customers: filtered out below
		}
		fmt.Fprintf(&b, "(%d, %d, DATE '2001-%02d-%02d', %d)",
			cust, 1+rng.Intn(4), month, 1+day%28, 10+rng.Intn(200))
	}
	if _, err := db.ExecContext(ctx, b.String()); err != nil {
		log.Fatal(err)
	}

	res, err := db.QueryContext(ctx, `
	  SELECT c_date, c_transaction,
	    SUM(c_transaction) OVER -- overall cumulative sum
	      (ORDER BY c_date ROWS UNBOUNDED PRECEDING) AS cum_sum_total,
	    SUM(c_transaction) OVER -- cumulative sum per month
	      (PARTITION BY MONTH(c_date) ORDER BY c_date ROWS UNBOUNDED PRECEDING) AS cum_sum_month,
	    AVG(c_transaction) OVER -- centered 3-row moving average per month and region
	      (PARTITION BY MONTH(c_date), l_region ORDER BY c_date
	       ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS c_3mvg_avg,
	    AVG(c_transaction) OVER -- prospective 7-row moving average
	      (ORDER BY c_date ROWS BETWEEN CURRENT ROW AND 6 FOLLOWING) AS c_7mvg_avg
	  FROM c_transactions, l_locations
	  WHERE c_locid = l_locid AND c_custid = 4711
	  ORDER BY c_date`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("transactions of customer 4711 with reporting-function columns:")
	fmt.Printf("%-12s %6s %10s %10s %12s %12s\n",
		"date", "amount", "cum_total", "cum_month", "3mvg_avg", "7mvg_avg")
	for _, r := range res.Rows {
		fmt.Printf("%-12s %6s %10s %10s %12.2f %12.2f\n",
			r[0], r[1], r[2], r[3], r[4].Float(), r[5].Float())
	}
	fmt.Printf("(%d rows; note how cum_month resets at month boundaries while cum_total keeps running)\n",
		len(res.Rows))
}
