package storage

import (
	"fmt"

	"rfview/internal/sqltypes"
)

// recLoc locates one encoded row in a table's heap file. span == 0 means a
// slotted record (page pid, slot index slot); span > 0 means a jumbo record
// of size encoded bytes spanning span raw (headerless) pages starting at
// pid — rows bigger than a page's record capacity get their own page run.
type recLoc struct {
	pid  uint32
	slot uint16
	span uint16
	size uint32
}

// tableHeap is one table's paged row storage: an append-only sequence of
// encoded rows in a heap file, cached through the shared buffer pool. All
// appends run under the owning table's write lock, which serializes tail
// and scratch access.
type tableHeap struct {
	pager *Pager
	hf    *heapFile

	tail    int64 // pid of the current fill page; -1 before the first append
	scratch []byte
}

func newTableHeap(p *Pager, tag string) (*tableHeap, error) {
	hf, err := p.newHeapFile(tag)
	if err != nil {
		return nil, err
	}
	return &tableHeap{pager: p, hf: hf, tail: -1}, nil
}

// append encodes row and writes it into the heap, returning its location.
// Caller holds the table's write lock.
func (h *tableHeap) append(row sqltypes.Row) (recLoc, error) {
	h.scratch = sqltypes.EncodeRowData(h.scratch[:0], row)
	rec := h.scratch
	ps := h.pager.pageSize
	if len(rec) > pageCap(ps) {
		return h.appendJumbo(rec)
	}
	pool := h.pager.pool
	if h.tail >= 0 {
		f, _, err := pool.pin(h.hf, uint32(h.tail))
		if err != nil {
			return recLoc{}, err
		}
		if slot, ok := pageAppend(f.buf, rec); ok {
			pool.unpin(f, true)
			return recLoc{pid: uint32(h.tail), slot: slot}, nil
		}
		pool.unpin(f, false)
	}
	pid := h.hf.alloc(1)
	f, err := pool.create(h.hf, pid)
	if err != nil {
		return recLoc{}, err
	}
	initPage(f.buf)
	slot, ok := pageAppend(f.buf, rec)
	if !ok {
		pool.unpin(f, false)
		return recLoc{}, fmt.Errorf("storage: record of %d bytes does not fit an empty %d-byte page", len(rec), ps)
	}
	pool.unpin(f, true)
	h.tail = int64(pid)
	return recLoc{pid: pid, slot: slot}, nil
}

// appendJumbo writes rec across a run of raw pages of its own. The tail
// fill page is untouched, so small-row appends keep packing it afterwards.
func (h *tableHeap) appendJumbo(rec []byte) (recLoc, error) {
	ps := h.pager.pageSize
	span := (len(rec) + ps - 1) / ps
	if span > 0xFFFF {
		return recLoc{}, fmt.Errorf("storage: row of %d bytes exceeds jumbo capacity", len(rec))
	}
	first := h.hf.alloc(span)
	pool := h.pager.pool
	for i, off := 0, 0; i < span; i, off = i+1, off+ps {
		f, err := pool.create(h.hf, first+uint32(i))
		if err != nil {
			return recLoc{}, err
		}
		copy(f.buf, rec[off:min(len(rec), off+ps)])
		pool.unpin(f, true)
	}
	return recLoc{pid: first, span: uint16(span), size: uint32(len(rec))}, nil
}

// readInto pins the pages holding loc and invokes fn with the encoded
// record bytes. For slotted records fn runs with the page pinned and must
// not retain the slice; for jumbo records the bytes are a fresh copy.
func (h *tableHeap) readInto(loc recLoc, fn func(rec []byte) error) error {
	pool := h.pager.pool
	if loc.span == 0 {
		f, _, err := pool.pin(h.hf, loc.pid)
		if err != nil {
			return err
		}
		rec, err := pageRecord(f.buf, loc.slot)
		if err == nil {
			err = fn(rec)
		}
		pool.unpin(f, false)
		return err
	}
	ps := h.pager.pageSize
	data := make([]byte, loc.size)
	for i, off := 0, 0; i < int(loc.span); i, off = i+1, off+ps {
		f, _, err := pool.pin(h.hf, loc.pid+uint32(i))
		if err != nil {
			return err
		}
		copy(data[off:min(int(loc.size), off+ps)], f.buf)
		pool.unpin(f, false)
	}
	return fn(data)
}

// read decodes the row at loc, consulting and filling the owning frame's
// decoded-row cache for slotted records.
func (h *tableHeap) read(loc recLoc) (sqltypes.Row, error) {
	if loc.span == 0 {
		pool := h.pager.pool
		f, _, err := pool.pin(h.hf, loc.pid)
		if err != nil {
			return nil, err
		}
		defer pool.unpin(f, false)
		if row := f.cachedRow(loc.slot); row != nil {
			return row, nil
		}
		rec, err := pageRecord(f.buf, loc.slot)
		if err != nil {
			return nil, err
		}
		row, err := sqltypes.DecodeRowData(rec)
		if err != nil {
			return nil, err
		}
		pool.cacheRow(f, loc.slot, row)
		return row, nil
	}
	var row sqltypes.Row
	err := h.readInto(loc, func(rec []byte) error {
		r, err := sqltypes.DecodeRowData(rec)
		row = r
		return err
	})
	return row, err
}
