package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	rferrors "rfview/errors"
	"rfview/internal/sqlparser"
	"rfview/internal/txn"
)

// This file is the engine half of MVCC snapshot isolation (internal/txn
// holds the mechanism): transaction lifecycle, the commit protocol, and the
// lock-free read path.
//
// Concurrency discipline:
//
//   - Reads (SELECT, UNION, EXPLAIN) never take the engine lock. Each
//     statement resolves one snapshot from the commit clock and scans
//     version chains lock-free; derivation metadata (BaseRows, staleness,
//     table versions) is validated with the commitSeq seqlock below.
//   - Explicit-transaction DML takes no engine lock either: pending version
//     stamps plus per-table mutexes and the claim-CAS give first-claimer-
//     wins write-write conflict detection.
//   - Commits — auto-commit statements, explicit COMMIT, DDL, REFRESH —
//     serialize on the exclusive engine lock; each publishes atomically by
//     bumping the commit clock inside a commitSeq window.
//
// commitSeq is a seqlock over everything a read statement consumes that is
// NOT row-versioned: view BaseRows and staleness flags, storage version
// counters, catalog schema. A commit flips it odd, publishes, flips it even;
// a reader that saw it change (or odd) retries, and after a few torn
// attempts falls back to the shared lock, which writers' exclusive lock
// makes race-free by construction.

// readRetries is how many optimistic attempts a read statement makes before
// falling back to the shared engine lock.
const readRetries = 3

// newTxn mints a transaction with a fresh snapshot. The snapshot's epoch is
// one atomic load of the commit clock, so transactions begin without any
// engine lock; TxnID in the snapshot makes the transaction's own pending
// writes visible to its statements (read-your-writes).
func (e *Engine) newTxn(explicit bool) *txn.Txn {
	tx := &txn.Txn{
		ID:       e.txnIDs.Add(1),
		Explicit: explicit,
	}
	tx.Snap = txn.Snapshot{Epoch: e.Cat.Clock().Now(), TxnID: tx.ID}
	e.txnBegins.Add(1)
	return tx
}

// BeginTxn starts an explicit transaction: a stable snapshot for every
// statement until Commit or Rollback. Lock-free.
func (e *Engine) BeginTxn() *txn.Txn { return e.newTxn(true) }

// CommitTxn publishes an explicit transaction's writes atomically and logs
// a durable commit record. A read-only transaction commits trivially.
func (e *Engine) CommitTxn(tx *txn.Txn) error {
	if !tx.HasWrites() && len(tx.Deltas) == 0 {
		e.txnCommits.Add(1)
		return nil
	}
	start := time.Now()
	e.mu.Lock()
	e.met.commitWait.Observe(time.Since(start).Seconds())
	defer e.mu.Unlock()
	return e.commitTxnLocked(tx, true)
}

// RollbackTxn abandons a transaction, reversing its pending stamps. Lock-free
// (stamps revert via the same atomics that set them).
func (e *Engine) RollbackTxn(tx *txn.Txn) {
	tx.Abort()
	e.txnRollbacks.Add(1)
}

// commitTxnLocked is the commit protocol. Callers hold the exclusive engine
// lock. durable selects whether a commit record is written to the WAL
// (client work) or not (internal transactions: replayed records, REFRESH
// under an already-logged statement, deferred-maintenance drains).
//
//  1. Write the commit record — the commit point. A log error aborts
//     cleanly: nothing is visible yet.
//  2. Fold view maintenance into the same transaction: backing-table patches
//     join the write-set, staleness/BaseRows flips defer to publication.
//  3. Publication window: flip commitSeq odd, stamp the write-set with the
//     next epoch, publish the clock, run deferred hooks, bump table
//     versions, flip commitSeq even. Between the clock store and the flip
//     a reader may start at the new epoch and see metadata mid-flip — the
//     seqlock catches exactly that.
func (e *Engine) commitTxnLocked(tx *txn.Txn, durable bool) error {
	if !tx.HasWrites() && len(tx.Deltas) == 0 {
		e.txnCommits.Add(1)
		return nil
	}
	if durable && e.logWrite != nil {
		rec, err := encodeCommitRecord(tx.Deltas)
		if err == nil {
			err = e.logWrite(rec)
		}
		if err != nil {
			tx.Abort()
			e.txnRollbacks.Add(1)
			return fmt.Errorf("durability: %w", err)
		}
	}
	for _, d := range tx.Deltas {
		switch d.Kind {
		case txn.DeltaInsert:
			e.Views.AfterInsert(tx, d.Table, d.Rows, d.Cols)
		case txn.DeltaUpdate:
			e.Views.AfterUpdate(tx, d.Table, d.Before, d.After, d.Cols)
		case txn.DeltaDelete:
			e.Views.AfterDelete(tx, d.Table, d.Rows, d.Cols)
		}
	}
	epoch := e.Cat.Clock().Next()
	e.commitSeq.Add(1)
	tx.CommitStamps(epoch)
	e.Cat.Clock().Publish(epoch)
	tx.RunPublishHooks()
	tx.BumpTouched()
	e.commitSeq.Add(1)
	e.txnCommits.Add(1)
	if durable && e.postWrite != nil {
		e.postWrite()
	}
	return nil
}

// abortStmt reverses one failed statement's writes inside an explicit
// transaction (statement-level atomicity); the transaction survives unless
// the failure was a write-write conflict, which the session escalates to a
// full rollback.
func abortStmt(tx *txn.Txn, markW, markD int) { tx.AbortTo(markW, markD) }

// ExecTxn executes one statement inside an explicit transaction. Reads run
// lock-free at the transaction's snapshot (bypassing the plan/result cache
// and view derivation, whose metadata tracks the latest committed state, not
// the snapshot); DML creates pending versions owned by tx. DDL, REFRESH, and
// transaction-control statements are rejected. On a write-write conflict the
// statement is reversed and the whole transaction rolled back; the returned
// error carries code "conflict".
func (e *Engine) ExecTxn(ctx context.Context, tx *txn.Txn, sql string, opts ...ExecOption) (*Result, error) {
	var cfg execConfig
	for _, o := range opts {
		o(&cfg)
	}
	cfg.trace = cfg.analyze || e.slowLogArmed()
	cfg.tx = tx
	start := time.Now()
	res, err := e.exec(ctx, sql, cfg)
	e.observeQuery(sql, res, err, time.Since(start))
	return res, err
}

// execTxnWrite runs one DML statement inside an explicit transaction,
// without the engine lock: row claims conflict-check via CAS, uniqueness via
// the per-table mutex.
func (e *Engine) execTxnWrite(ctx context.Context, stmt sqlparser.Statement, cfg execConfig) (*Result, error) {
	tx := cfg.tx
	switch stmt.(type) {
	case *sqlparser.Insert, *sqlparser.Update, *sqlparser.Delete:
	case *sqlparser.Begin:
		return nil, rferrors.New(rferrors.CodeTxnState, "already in a transaction")
	default:
		return nil, rferrors.New(rferrors.CodeTxnState,
			"%T is not allowed inside a transaction (DDL and REFRESH auto-commit)", stmt)
	}
	markW, markD := tx.Mark()
	res, err := e.execDML(ctx, stmt, cfg)
	if err != nil {
		abortStmt(tx, markW, markD)
		if rferrors.CodeOf(err) == rferrors.CodeConflict {
			e.txnConflicts.Add(1)
			e.RollbackTxn(tx)
			return nil, fmt.Errorf("%w; transaction rolled back", err)
		}
		return nil, err
	}
	return res, nil
}

// newSnapCell returns the per-statement snapshot resolver threaded into the
// planner: every scan and index probe of one statement must read at the same
// epoch. A transaction statement reads at the transaction's snapshot; an
// auto-commit read latches the latest committed epoch once, at first use.
func (e *Engine) newSnapCell(tx *txn.Txn) func() txn.Snapshot {
	if tx != nil {
		s := tx.Snap
		return func() txn.Snapshot { return s }
	}
	var once sync.Once
	var s txn.Snapshot
	return func() txn.Snapshot {
		once.Do(func() { s = txn.Snapshot{Epoch: e.Cat.Clock().Now()} })
		return s
	}
}

// readStable runs one read statement optimistically against the commitSeq
// seqlock: attempt with a fresh snapshot cell, and accept the outcome only
// if no commit published during the attempt. After readRetries torn attempts
// it falls back to the shared engine lock, which commit holders exclude.
func (e *Engine) readStable(cfg execConfig, attempt func(execConfig) (*Result, error)) (*Result, error) {
	start := time.Now()
	for i := 0; i < readRetries; i++ {
		s0 := e.commitSeq.Load()
		if s0&1 != 0 {
			runtime.Gosched()
			continue
		}
		c := cfg
		c.snap = e.newSnapCell(nil)
		e.met.snapshotWait.Observe(time.Since(start).Seconds())
		res, err := attempt(c)
		if e.commitSeq.Load() == s0 {
			return res, err
		}
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	c := cfg
	c.snap = e.newSnapCell(nil)
	e.met.snapshotWait.Observe(time.Since(start).Seconds())
	return attempt(c)
}

// TxnStats is a snapshot of the transaction counters, for the stats protocol
// op and tests.
type TxnStats struct {
	Begins, Commits, Rollbacks, ConflictAborts int64
}

// TxnStats returns the engine's transaction counters.
func (e *Engine) TxnStats() TxnStats {
	return TxnStats{
		Begins:         e.txnBegins.Load(),
		Commits:        e.txnCommits.Load(),
		Rollbacks:      e.txnRollbacks.Load(),
		ConflictAborts: e.txnConflicts.Load(),
	}
}
