// Package storage implements the physical layer of the rfview engine:
// in-memory heap tables addressed by row id, plus ordered (B+tree) and hash
// indexes over arbitrary column prefixes. The evaluation in the paper hinges
// on exactly this distinction — Table 1 compares the self-join simulation of
// reporting functions with and without an index on the sequence position —
// so the physical layer keeps the two access paths explicit.
package storage

import (
	"fmt"
	"sort"
	"sync/atomic"

	"rfview/internal/sqltypes"
)

// RowID identifies a row within one table for the lifetime of the table.
// Row ids are never reused.
type RowID int64

// Table is an append-only heap of rows with tombstone deletes. It knows
// nothing about column names or types — the catalog layer owns schema; the
// storage layer owns bytes (here: datums).
type Table struct {
	rows    []sqltypes.Row // indexed by RowID; nil = deleted
	live    int
	indexes []*IndexHandle
	// version counts mutations (inserts, updates, deletes). Cached query
	// plans record the versions of every table they read and revalidate on
	// reuse, so any mutation — including materialized-view refreshes, which
	// rewrite the view's backing table — invalidates dependent plans.
	version atomic.Uint64
}

// IndexHandle couples an index with the column positions it covers so the
// table can maintain it on every mutation.
type IndexHandle struct {
	Name   string
	Cols   []int // column ordinals of the indexed key, in index order
	Unique bool
	Idx    Index
}

// NewTable returns an empty heap table.
func NewTable() *Table { return &Table{} }

// Len returns the number of live rows.
func (t *Table) Len() int { return t.live }

// Version returns the mutation counter: it increases on every successful
// Insert, Update, and Delete. Two equal readings with no interleaved write
// guarantee the table contents did not change between them.
func (t *Table) Version() uint64 { return t.version.Load() }

// Insert appends a row and maintains every index. The row is stored as
// given; callers must not mutate it afterwards.
func (t *Table) Insert(row sqltypes.Row) (RowID, error) {
	id := RowID(len(t.rows))
	for _, h := range t.indexes {
		key := extractKey(row, h.Cols)
		if h.Unique {
			if _, ok := h.Idx.First(key); ok {
				return 0, fmt.Errorf("duplicate key %v violates unique index %q", key, h.Name)
			}
		}
	}
	t.rows = append(t.rows, row)
	t.live++
	for _, h := range t.indexes {
		h.Idx.Insert(extractKey(row, h.Cols), id)
	}
	t.version.Add(1)
	return id, nil
}

// Get returns the row stored under id, or nil if deleted/never existed.
func (t *Table) Get(id RowID) sqltypes.Row {
	if id < 0 || int(id) >= len(t.rows) {
		return nil
	}
	return t.rows[id]
}

// Delete removes the row under id and unhooks it from every index.
func (t *Table) Delete(id RowID) error {
	row := t.Get(id)
	if row == nil {
		return fmt.Errorf("delete: row %d does not exist", id)
	}
	for _, h := range t.indexes {
		h.Idx.Delete(extractKey(row, h.Cols), id)
	}
	t.rows[id] = nil
	t.live--
	t.version.Add(1)
	return nil
}

// Update replaces the row under id, maintaining indexes whose key changed.
func (t *Table) Update(id RowID, row sqltypes.Row) error {
	old := t.Get(id)
	if old == nil {
		return fmt.Errorf("update: row %d does not exist", id)
	}
	for _, h := range t.indexes {
		oldKey := extractKey(old, h.Cols)
		newKey := extractKey(row, h.Cols)
		if keysEqual(oldKey, newKey) {
			continue
		}
		if h.Unique {
			if existing, ok := h.Idx.First(newKey); ok && existing != id {
				return fmt.Errorf("duplicate key %v violates unique index %q", newKey, h.Name)
			}
		}
		h.Idx.Delete(oldKey, id)
		h.Idx.Insert(newKey, id)
	}
	t.rows[id] = row
	t.version.Add(1)
	return nil
}

// Scan invokes fn for every live row in row-id order, stopping early if fn
// returns false.
func (t *Table) Scan(fn func(id RowID, row sqltypes.Row) bool) {
	for i, row := range t.rows {
		if row == nil {
			continue
		}
		if !fn(RowID(i), row) {
			return
		}
	}
}

// AddIndex builds an index over the given column ordinals from the current
// table contents and registers it for maintenance.
func (t *Table) AddIndex(name string, cols []int, unique bool, ordered bool) (*IndexHandle, error) {
	for _, h := range t.indexes {
		if h.Name == name {
			return nil, fmt.Errorf("index %q already exists", name)
		}
	}
	var idx Index
	if ordered {
		idx = NewBTree()
	} else {
		idx = NewHashIndex()
	}
	h := &IndexHandle{Name: name, Cols: append([]int(nil), cols...), Unique: unique, Idx: idx}
	var buildErr error
	t.Scan(func(id RowID, row sqltypes.Row) bool {
		key := extractKey(row, h.Cols)
		if unique {
			if _, ok := idx.First(key); ok {
				buildErr = fmt.Errorf("duplicate key %v while building unique index %q", key, name)
				return false
			}
		}
		idx.Insert(key, id)
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}
	t.indexes = append(t.indexes, h)
	return h, nil
}

// DropIndex unregisters an index.
func (t *Table) DropIndex(name string) error {
	for i, h := range t.indexes {
		if h.Name == name {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("index %q does not exist", name)
}

// Indexes returns the registered index handles.
func (t *Table) Indexes() []*IndexHandle { return t.indexes }

// IndexOn returns the first registered index whose key starts with exactly
// the given column ordinals, or nil.
func (t *Table) IndexOn(cols []int) *IndexHandle {
	for _, h := range t.indexes {
		if len(h.Cols) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if h.Cols[i] != c {
				match = false
				break
			}
		}
		if match {
			return h
		}
	}
	return nil
}

// SortedRowIDs returns all live row ids ordered by the given columns
// (ascending, NULLs first); used by operators that need an order but have no
// index. It is O(n log n) against the heap.
func (t *Table) SortedRowIDs(cols []int) []RowID {
	ids := make([]RowID, 0, t.live)
	t.Scan(func(id RowID, _ sqltypes.Row) bool {
		ids = append(ids, id)
		return true
	})
	sort.SliceStable(ids, func(a, b int) bool {
		ra, rb := t.rows[ids[a]], t.rows[ids[b]]
		for _, c := range cols {
			cmp, err := sqltypes.Compare(ra[c], rb[c])
			if err != nil || cmp == 0 {
				continue
			}
			return cmp < 0
		}
		return false
	})
	return ids
}

func extractKey(row sqltypes.Row, cols []int) sqltypes.Row {
	key := make(sqltypes.Row, len(cols))
	for i, c := range cols {
		key[i] = row[c]
	}
	return key
}

func keysEqual(a, b sqltypes.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sqltypes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
