package rewrite

import (
	"rfview/internal/sqlparser"
)

// SelfJoin rewrites a reporting-function query into the relational self-join
// pattern of Fig. 2: a join of the table with itself whose predicate places
// each s2 row into the windows it contributes to, a CASE-free aggregation
// grouped over the anchor position, and the plain columns carried through
// the group-by.
//
// For the Fig. 2 example —
//
//	SELECT pos, SUM(val) OVER (ORDER BY pos
//	                           ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING)
//	FROM seq
//
// — the rewrite produces
//
//	SELECT s1.pos, SUM(s2.val) AS column_2
//	FROM seq s1, seq s2
//	WHERE s1.pos IN (s2.pos - 1, s2.pos, s2.pos + 1)
//	GROUP BY s1.pos
//
// The IN-list is keyed on s1.pos (s2.pos ∈ [s1.pos−l, s1.pos+h] is expressed
// as s1.pos ∈ [s2.pos−h, s2.pos+l]) so that an ordered index on the position
// column turns the join into index probes — exactly the effect Table 1
// measures. Cumulative frames use s2.pos <= s1.pos instead.
//
// Preconditions (documented, checked where possible): the ordering column
// holds dense sequence positions 1…n, so ROW-offset frames coincide with
// position-offset joins; rows whose frame is empty are dropped by the inner
// join (the paper's pattern shares both properties).
func SelfJoin(sel *sqlparser.Select) (*sqlparser.Select, error) {
	wq, err := MatchWindowQuery(sel)
	if err != nil {
		return nil, err
	}
	const s1, s2 = "s1", "s2"

	// Join predicate.
	var conjuncts []sqlparser.Expr
	if wq.Shape.Cumulative {
		conjuncts = append(conjuncts, &sqlparser.ComparisonExpr{
			Op: "<=", Left: col(s2, wq.PosCol), Right: col(s1, wq.PosCol),
		})
	} else {
		l, h := wq.Shape.Preceding, wq.Shape.Following
		list := make([]sqlparser.Expr, 0, l+h+1)
		for d := -h; d <= l; d++ {
			list = append(list, plusConst(col(s2, wq.PosCol), int64(d)))
		}
		conjuncts = append(conjuncts, &sqlparser.InExpr{Left: col(s1, wq.PosCol), List: list})
	}
	for _, pc := range wq.PartitionBy {
		conjuncts = append(conjuncts, eq(col(s1, pc), col(s2, pc)))
	}
	where := conjuncts[0]
	for _, c := range conjuncts[1:] {
		where = and(where, c)
	}

	// Select list: plain columns from s1 (grouped), the aggregate over s2.
	out := &sqlparser.Select{
		From: crossJoin(tbl(wq.Table, s1), tbl(wq.Table, s2)),
	}
	grouped := map[string]bool{}
	addGroup := func(name string) {
		if !grouped[name] {
			out.GroupBy = append(out.GroupBy, col(s1, name))
			grouped[name] = true
		}
	}
	aggArg := col(s2, wq.ValCol)
	if wq.ValCol == "" { // COUNT(*): count join partners via the position column
		aggArg = col(s2, wq.PosCol)
	}
	winAlias := wq.OutAlias
	for i, it := range sel.Items {
		if i == wq.WindowItemAt {
			out.Items = append(out.Items, selItem(
				&sqlparser.FuncExpr{Name: wq.Agg, Args: []sqlparser.Expr{aggArg}}, winAlias))
			continue
		}
		cr := it.Expr.(*sqlparser.ColumnRef)
		alias := it.Alias
		if alias == "" {
			alias = cr.Name // let ORDER BY keep resolving by output name
		}
		out.Items = append(out.Items, selItem(col(s1, cr.Name), alias))
		addGroup(cr.Name)
	}
	// Partition columns participate in the grouping even when not projected.
	for _, pc := range wq.PartitionBy {
		addGroup(pc)
	}
	out.Where = where
	out.OrderBy = sel.OrderBy
	out.Limit = sel.Limit
	return out, nil
}
