package sqltypes

import (
	"encoding/binary"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// randDatum draws one datum covering every type, NULL-heavy.
func randDatum(rng *rand.Rand) Datum {
	switch rng.Intn(8) {
	case 0, 1:
		return Datum{} // NULL
	case 2:
		return NewBool(rng.Intn(2) == 0)
	case 3:
		return NewInt(rng.Int63() - rng.Int63())
	case 4:
		switch rng.Intn(4) {
		case 0:
			return NewFloat(math.NaN())
		case 1:
			return NewFloat(math.Inf(1 - 2*rng.Intn(2)))
		case 2:
			return NewFloat(math.Copysign(0, -1))
		default:
			return NewFloat(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20)))
		}
	case 5:
		return NewDate(int64(rng.Intn(100000) - 50000))
	default:
		n := rng.Intn(50)
		b := make([]byte, n)
		rng.Read(b)
		return NewString(string(b))
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var buf []byte
	for trial := 0; trial < 500; trial++ {
		row := make(Row, rng.Intn(12))
		for i := range row {
			row[i] = randDatum(rng)
		}
		buf = EncodeRowData(buf[:0], row)
		got, err := DecodeRowData(buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(row) {
			t.Fatalf("trial %d: %d columns, want %d", trial, len(got), len(row))
		}
		for i := range row {
			w, g := row[i], got[i]
			if w.Typ() != g.Typ() {
				t.Fatalf("trial %d col %d: type %v, want %v", trial, i, g.Typ(), w.Typ())
			}
			switch w.Typ() {
			case Null:
			case Bool:
				if w.Bool() != g.Bool() {
					t.Fatalf("trial %d col %d: bool mismatch", trial, i)
				}
			case Int:
				if w.Int() != g.Int() {
					t.Fatalf("trial %d col %d: %d, want %d", trial, i, g.Int(), w.Int())
				}
			case Float:
				// Bit identity, so NaN payloads and -0 survive the disk trip.
				if math.Float64bits(w.Float()) != math.Float64bits(g.Float()) {
					t.Fatalf("trial %d col %d: float bits %x, want %x",
						trial, i, math.Float64bits(g.Float()), math.Float64bits(w.Float()))
				}
			case String:
				if w.Str() != g.Str() {
					t.Fatalf("trial %d col %d: string mismatch", trial, i)
				}
			case Date:
				if w.i != g.i {
					t.Fatalf("trial %d col %d: date mismatch", trial, i)
				}
			}
		}
	}
}

func TestRowCodecEmptyRow(t *testing.T) {
	buf := EncodeRowData(nil, Row{})
	got, err := DecodeRowData(buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty row: %v, %d cols", err, len(got))
	}
}

func TestRowCodecRejectsCorruption(t *testing.T) {
	row := Row{NewInt(42), NewString(strings.Repeat("x", 20)), NewFloat(3.5), Datum{}}
	clean := EncodeRowData(nil, row)
	if _, err := DecodeRowData(clean); err != nil {
		t.Fatalf("clean decode failed: %v", err)
	}
	// Every truncation must fail, never panic or return a short row.
	for n := 0; n < len(clean); n++ {
		if _, err := DecodeRowData(clean[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Trailing garbage.
	if _, err := DecodeRowData(append(append([]byte(nil), clean...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Bad type tag.
	bad := append([]byte(nil), clean...)
	bad[1] = 0xee
	if _, err := DecodeRowData(bad); err == nil {
		t.Fatal("bad type tag accepted")
	}
	// Implausible column count must not allocate or decode.
	huge := binary.AppendUvarint(nil, 1<<40)
	if _, err := DecodeRowData(huge); err == nil {
		t.Fatal("huge column count accepted")
	}
}
