package mview_test

import (
	"strings"
	"testing"

	"rfview/internal/engine"
)

// Dropping a materialized view must drop the pk_<view> index registration
// along with the backing table: a leaked registration would make a
// create → drop → recreate cycle of the same view name fail with a
// duplicate-index error (or worse, leave a stale index feeding the planner).
func TestDropMatViewRemovesBackingIndex(t *testing.T) {
	for _, tc := range []struct {
		name string
		ddl  string
	}{
		{"simple", `CREATE MATERIALIZED VIEW mv AS SELECT pos,
			SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS s FROM seq`},
		{"partitioned", `CREATE MATERIALIZED VIEW mv AS SELECT grp, pos,
			SUM(val) OVER (PARTITION BY grp ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS s FROM pseq`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := engine.New(engine.DefaultOptions())
			mustExec(t, e, `CREATE TABLE seq (pos INTEGER, val INTEGER)`)
			mustExec(t, e, `INSERT INTO seq VALUES (1, 10), (2, 20), (3, 30)`)
			mustExec(t, e, `CREATE TABLE pseq (grp VARCHAR(8), pos INTEGER, val INTEGER)`)
			mustExec(t, e, `INSERT INTO pseq VALUES ('a', 1, 10), ('a', 2, 20), ('b', 1, 5)`)

			mustExec(t, e, tc.ddl)
			if _, ok := e.Cat.MatView("mv"); !ok {
				t.Fatal("view mv not registered")
			}
			backing, err := e.Cat.Table("__mv_mv")
			if err != nil {
				t.Fatalf("backing table: %v", err)
			}
			if len(backing.Heap.Indexes()) == 0 {
				t.Fatal("backing table has no pk index")
			}
			mustExec(t, e, `DROP MATERIALIZED VIEW mv`)
			if _, err := e.Cat.Table("__mv_mv"); err == nil {
				t.Fatal("backing table survived DROP MATERIALIZED VIEW")
			}
			// Recreating under the same name must not collide with any leaked
			// pk_mv registration.
			mustExec(t, e, tc.ddl)
			res := mustExec(t, e, `SELECT pos, val FROM mv`)
			if len(res.Rows) == 0 {
				t.Fatal("recreated view is empty")
			}
		})
	}
}

// A dropped view's pk_<view> index must be gone from the catalog: creating an
// unrelated index under the leaked name should succeed.
func TestDropMatViewFreesIndexName(t *testing.T) {
	e := engine.New(engine.DefaultOptions())
	mustExec(t, e, `CREATE TABLE seq (pos INTEGER, val INTEGER)`)
	mustExec(t, e, `INSERT INTO seq VALUES (1, 10), (2, 20)`)
	mustExec(t, e, `CREATE MATERIALIZED VIEW mv AS SELECT pos,
		SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS s FROM seq`)
	mustExec(t, e, `DROP MATERIALIZED VIEW mv`)
	if _, err := e.Cat.CreateIndex("pk_mv", "seq", []string{"pos"}, true, true); err != nil {
		t.Fatalf("index name pk_mv still taken after DROP MATERIALIZED VIEW: %v", err)
	}
}

func mustExec(t *testing.T, e *engine.Engine, sql string) *engine.Result {
	t.Helper()
	res, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", strings.Join(strings.Fields(sql), " "), err)
	}
	return res
}
