package plan

import (
	"fmt"
	"strings"

	"rfview/internal/catalog"
	"rfview/internal/exec"
	"rfview/internal/expr"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
)

// relation is one FROM-clause item after planning: an operator plus the
// metadata the join selector needs to pick an access path.
type relation struct {
	op    exec.Operator
	ref   string         // reference name (alias or table name)
	table *catalog.Table // non-nil when the relation is a stored table
	// pushed records single-relation conjuncts already folded into op as a
	// Filter. An index nested-loop join probes the table's heap directly,
	// bypassing op — so when this relation becomes the probed side, these
	// conjuncts must re-enter the join as residual predicates.
	pushed []sqlparser.Expr
}

// planFrom plans the FROM clause together with the WHERE conjuncts: it
// pushes single-relation predicates below joins and picks a join algorithm
// (index nested-loop, hash, nested-loop) per join from the applicable
// conjuncts. It returns the operator and any conjuncts it could not place
// (the caller filters them on top).
func (p *Planner) planFrom(from sqlparser.TableExpr, where []sqlparser.Expr) (exec.Operator, error) {
	op, remaining, err := p.planFromInternal(from, where)
	if err != nil {
		return nil, err
	}
	if len(remaining) > 0 {
		pred, err := expr.Compile(joinAnd(remaining), op.Schema())
		if err != nil {
			return nil, err
		}
		op = &exec.Filter{Input: op, Pred: pred}
	}
	return op, nil
}

func (p *Planner) planFromInternal(from sqlparser.TableExpr, where []sqlparser.Expr) (exec.Operator, []sqlparser.Expr, error) {
	switch t := from.(type) {
	case *sqlparser.Join:
		if t.Type == sqlparser.LeftOuterJoin {
			return p.planLeftOuter(t, where)
		}
		// Cross and inner joins flatten into a relation list with the ON
		// conditions folded into the conjunct pool.
		rels, conjuncts, err := p.flatten(from)
		if err != nil {
			return nil, nil, err
		}
		conjuncts = append(conjuncts, where...)
		return p.joinRelations(rels, conjuncts)
	default:
		rel, err := p.planRelation(from)
		if err != nil {
			return nil, nil, err
		}
		return p.joinRelations([]relation{rel}, where)
	}
}

// planLeftOuter plans LEFT OUTER JOIN nodes pairwise. WHERE conjuncts that
// reference only the preserved (left) side are pushed below; everything else
// stays above the join (outer-join semantics forbid pushing predicates into
// the null-supplying side).
func (p *Planner) planLeftOuter(j *sqlparser.Join, where []sqlparser.Expr) (exec.Operator, []sqlparser.Expr, error) {
	left, leftRemaining, err := p.planFromInternal(j.Left, nil)
	if err != nil {
		return nil, nil, err
	}
	if len(leftRemaining) > 0 {
		pred, err := expr.Compile(joinAnd(leftRemaining), left.Schema())
		if err != nil {
			return nil, nil, err
		}
		left = &exec.Filter{Input: left, Pred: pred}
	}
	rightRel, err := p.planRelation(j.Right)
	if err != nil {
		return nil, nil, err
	}

	// Push WHERE conjuncts that reference only the left side.
	var pushed, remaining []sqlparser.Expr
	for _, c := range where {
		if _, err := expr.Compile(c, left.Schema()); err == nil {
			pushed = append(pushed, c)
		} else {
			remaining = append(remaining, c)
		}
	}
	if len(pushed) > 0 {
		pred, err := expr.Compile(joinAnd(pushed), left.Schema())
		if err != nil {
			return nil, nil, err
		}
		left = &exec.Filter{Input: left, Pred: pred}
	}

	onConjuncts := splitAnd(j.On)
	op, err := p.buildJoin(left, rightRel, onConjuncts, exec.JoinLeftOuter)
	if err != nil {
		return nil, nil, err
	}
	return op, remaining, nil
}

// flatten decomposes a tree of cross/inner joins into relations plus ON
// conjuncts. LEFT OUTER JOIN subtrees are planned recursively and appear as
// opaque relations.
func (p *Planner) flatten(from sqlparser.TableExpr) ([]relation, []sqlparser.Expr, error) {
	switch t := from.(type) {
	case *sqlparser.Join:
		if t.Type == sqlparser.LeftOuterJoin {
			op, rem, err := p.planLeftOuter(t, nil)
			if err != nil {
				return nil, nil, err
			}
			return []relation{{op: op, ref: ""}}, rem, nil
		}
		lrels, lconj, err := p.flatten(t.Left)
		if err != nil {
			return nil, nil, err
		}
		rrels, rconj, err := p.flatten(t.Right)
		if err != nil {
			return nil, nil, err
		}
		conj := append(lconj, rconj...)
		if t.On != nil {
			conj = append(conj, splitAnd(t.On)...)
		}
		return append(lrels, rrels...), conj, nil
	default:
		rel, err := p.planRelation(from)
		if err != nil {
			return nil, nil, err
		}
		return []relation{rel}, nil, nil
	}
}

// planRelation plans one FROM item (table reference or derived table).
func (p *Planner) planRelation(from sqlparser.TableExpr) (relation, error) {
	switch t := from.(type) {
	case *sqlparser.TableName:
		tbl, err := p.Cat.Table(t.Name)
		if err != nil {
			return relation{}, err
		}
		ref := t.RefName()
		scan := exec.NewScan(tbl, ref)
		scan.Snap = p.Opts.Snap
		return relation{op: scan, ref: ref, table: tbl}, nil
	case *sqlparser.DerivedTable:
		inner, err := p.PlanSelect(t.Select)
		if err != nil {
			return relation{}, err
		}
		// Re-qualify the derived table's output columns under its alias.
		cols := make([]expr.ColInfo, len(inner.Schema().Cols))
		for i, c := range inner.Schema().Cols {
			cols[i] = expr.ColInfo{Table: t.Alias, Name: c.Name, Type: c.Type}
		}
		op := &requalify{input: inner, schema: expr.NewSchema(cols...), alias: t.Alias}
		return relation{op: op, ref: t.Alias}, nil
	case *sqlparser.Join:
		op, rem, err := p.planFromInternal(t, nil)
		if err != nil {
			return relation{}, err
		}
		if len(rem) > 0 {
			pred, err := expr.Compile(joinAnd(rem), op.Schema())
			if err != nil {
				return relation{}, err
			}
			op = &exec.Filter{Input: op, Pred: pred}
		}
		return relation{op: op, ref: ""}, nil
	default:
		return relation{}, fmt.Errorf("plan: unsupported FROM item %T", from)
	}
}

// joinRelations builds a left-deep join tree over the relations in query
// order, choosing a join algorithm per step from the applicable conjuncts.
// It returns the operator and conjuncts it could not attach anywhere.
func (p *Planner) joinRelations(rels []relation, conjuncts []sqlparser.Expr) (exec.Operator, []sqlparser.Expr, error) {
	// Push single-relation conjuncts onto their relation.
	fullSchema := expr.NewSchema()
	for _, r := range rels {
		fullSchema = expr.Concat(fullSchema, r.op.Schema())
	}
	var pool []sqlparser.Expr
	for _, c := range conjuncts {
		placed := false
		if tabs, err := exprTables(c, fullSchema); err == nil && len(tabs) == 1 {
			for i := range rels {
				if rels[i].ref != "" && tabs[rels[i].ref] {
					pred, err := expr.Compile(c, rels[i].op.Schema())
					if err == nil {
						rels[i].op = &exec.Filter{Input: rels[i].op, Pred: pred}
						rels[i].pushed = append(rels[i].pushed, c)
						placed = true
					}
					break
				}
			}
		}
		if !placed {
			pool = append(pool, c)
		}
	}

	cur := rels[0]
	curRefs := map[string]bool{cur.ref: true}
	curOp := cur.op
	curIsBase := cur.table != nil
	curTable := cur.table
	curRef := cur.ref
	curPushed := cur.pushed

	for _, next := range rels[1:] {
		nextRefs := map[string]bool{next.ref: true}
		// Applicable conjuncts: all referenced relations are available after
		// this join, and the conjunct touches the new relation (or spans
		// both sides).
		var applicable []sqlparser.Expr
		var rest []sqlparser.Expr
		combined := expr.Concat(curOp.Schema(), next.op.Schema())
		for _, c := range pool {
			tabs, err := exprTables(c, combined)
			if err != nil {
				rest = append(rest, c)
				continue
			}
			avail := map[string]bool{}
			for k := range curRefs {
				avail[k] = true
			}
			for k := range nextRefs {
				avail[k] = true
			}
			if subsetOf(tabs, avail) {
				applicable = append(applicable, c)
			} else {
				rest = append(rest, c)
			}
		}
		pool = rest

		var joined exec.Operator
		var err error
		// First try probing the new relation with keys from the current side.
		if p.Opts.UseIndexes && next.table != nil {
			joined, err = p.tryIndexJoin(curOp, next, applicable, exec.JoinInner, true)
			if err != nil {
				return nil, nil, err
			}
		}
		// Then try probing the current side, when it is still a bare table.
		if joined == nil && p.Opts.UseIndexes && curIsBase {
			joined, err = p.tryIndexJoin(next.op, relation{op: curOp, ref: curRef, table: curTable, pushed: curPushed}, applicable, exec.JoinInner, false)
			if err != nil {
				return nil, nil, err
			}
		}
		if joined == nil && p.Opts.UseHashJoin {
			joined, err = p.tryHashJoin(curOp, next.op, applicable, exec.JoinInner)
			if err != nil {
				return nil, nil, err
			}
		}
		if joined == nil {
			var pred expr.Expr
			if len(applicable) > 0 {
				pred, err = expr.Compile(joinAnd(applicable), combined)
				if err != nil {
					return nil, nil, err
				}
			}
			joined = exec.NewNestedLoopJoin(curOp, next.op, exec.JoinInner, pred)
		}
		curOp = joined
		for k := range nextRefs {
			curRefs[k] = true
		}
		curIsBase = false
	}
	return curOp, pool, nil
}

// buildJoin joins a planned left operator with a right relation using the ON
// conjuncts (used for LEFT OUTER JOIN, where the preserved side must stay on
// the left).
func (p *Planner) buildJoin(left exec.Operator, right relation, onConjuncts []sqlparser.Expr, kind exec.JoinKind) (exec.Operator, error) {
	if p.Opts.UseIndexes && right.table != nil {
		op, err := p.tryIndexJoin(left, right, onConjuncts, kind, true)
		if err != nil {
			return nil, err
		}
		if op != nil {
			return op, nil
		}
	}
	if p.Opts.UseHashJoin {
		op, err := p.tryHashJoin(left, right.op, onConjuncts, kind)
		if err != nil {
			return nil, err
		}
		if op != nil {
			return op, nil
		}
	}
	var pred expr.Expr
	if len(onConjuncts) > 0 {
		combined := expr.Concat(left.Schema(), right.op.Schema())
		var err error
		pred, err = expr.Compile(joinAnd(onConjuncts), combined)
		if err != nil {
			return nil, err
		}
	}
	return exec.NewNestedLoopJoin(left, right.op, kind, pred), nil
}

// tryIndexJoin looks for a conjunct that equates (or IN-lists) an indexed
// column of the probed relation with expressions computable from the outer
// side. probeIsRight records whether the probed relation appeared on the
// right of the join in the query (governs output column order).
func (p *Planner) tryIndexJoin(outer exec.Operator, probe relation, conjuncts []sqlparser.Expr, kind exec.JoinKind, probeIsRight bool) (exec.Operator, error) {
	if probe.table == nil {
		return nil, nil
	}
	for ci, c := range conjuncts {
		col, keyExprs := matchProbePredicate(c, probe.ref, probe.table)
		if col == "" {
			continue
		}
		ord := probe.table.ColumnIndex(col)
		handle := probe.table.Heap.IndexOn([]int{ord})
		if handle == nil || !handle.Idx.Ordered() {
			continue
		}
		// Key expressions must be computable from the outer side alone.
		keys := make([]expr.Expr, 0, len(keyExprs))
		ok := true
		for _, ke := range keyExprs {
			compiled, err := expr.Compile(ke, outer.Schema())
			if err != nil {
				ok = false
				break
			}
			keys = append(keys, compiled)
		}
		if !ok {
			continue
		}
		// Residual: the remaining conjuncts, plus any single-relation
		// predicates that were pushed onto the probed relation's operator —
		// the index probe reads the heap directly and would bypass them —
		// compiled against the output schema (which respects the original
		// left/right order).
		rest := append(append([]sqlparser.Expr{}, conjuncts[:ci]...), conjuncts[ci+1:]...)
		rest = append(rest, probe.pushed...)
		join := exec.NewIndexNestedLoopJoin(outer, probe.table, probe.ref, handle, keys, nil, kind, probeIsRight)
		join.Snap = p.Opts.Snap
		if len(rest) > 0 {
			residual, err := expr.Compile(joinAnd(rest), join.Schema())
			if err != nil {
				return nil, nil // conjuncts reference something else; give up on this path
			}
			join.Residual = residual
		}
		return join, nil
	}
	return nil, nil
}

// matchProbePredicate recognizes `ref.col = e`, `e = ref.col`, and
// `ref.col IN (e1, …)` where col belongs to the probed table. It returns the
// probed column name and the key expressions (which the caller checks are
// outer-only).
func matchProbePredicate(c sqlparser.Expr, ref string, tbl *catalog.Table) (string, []sqlparser.Expr) {
	isProbeCol := func(e sqlparser.Expr) (string, bool) {
		cr, ok := e.(*sqlparser.ColumnRef)
		if !ok {
			return "", false
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, ref) {
			return "", false
		}
		if tbl.ColumnIndex(cr.Name) < 0 {
			return "", false
		}
		return cr.Name, true
	}
	switch x := c.(type) {
	case *sqlparser.ComparisonExpr:
		if x.Op != "=" {
			return "", nil
		}
		if col, ok := isProbeCol(x.Left); ok {
			return col, []sqlparser.Expr{x.Right}
		}
		if col, ok := isProbeCol(x.Right); ok {
			return col, []sqlparser.Expr{x.Left}
		}
	case *sqlparser.InExpr:
		if x.Negated {
			return "", nil
		}
		if col, ok := isProbeCol(x.Left); ok {
			return col, x.List
		}
	}
	return "", nil
}

// tryHashJoin extracts equi-join conjuncts expr(left) = expr(right) and
// builds a hash join with the rest as residual. Returns nil when no equi
// conjunct exists.
func (p *Planner) tryHashJoin(left, right exec.Operator, conjuncts []sqlparser.Expr, kind exec.JoinKind) (exec.Operator, error) {
	var leftKeys, rightKeys []expr.Expr
	var residualConjuncts []sqlparser.Expr
	for _, c := range conjuncts {
		cmp, ok := c.(*sqlparser.ComparisonExpr)
		if !ok || cmp.Op != "=" {
			residualConjuncts = append(residualConjuncts, c)
			continue
		}
		if lk, err := expr.Compile(cmp.Left, left.Schema()); err == nil {
			if rk, err := expr.Compile(cmp.Right, right.Schema()); err == nil {
				leftKeys = append(leftKeys, lk)
				rightKeys = append(rightKeys, rk)
				continue
			}
		}
		if lk, err := expr.Compile(cmp.Right, left.Schema()); err == nil {
			if rk, err := expr.Compile(cmp.Left, right.Schema()); err == nil {
				leftKeys = append(leftKeys, lk)
				rightKeys = append(rightKeys, rk)
				continue
			}
		}
		residualConjuncts = append(residualConjuncts, c)
	}
	if len(leftKeys) == 0 {
		return nil, nil
	}
	join := exec.NewHashJoin(left, right, leftKeys, rightKeys, nil, kind)
	if len(residualConjuncts) > 0 {
		residual, err := expr.Compile(joinAnd(residualConjuncts), join.Schema())
		if err != nil {
			return nil, nil
		}
		join.Residual = residual
	}
	return join, nil
}

// requalify renames the table qualifier of every column an input produces
// (derived tables expose their output under the derived alias).
type requalify struct {
	input  exec.Operator
	schema *expr.Schema
	alias  string
}

// Schema implements exec.Operator.
func (r *requalify) Schema() *expr.Schema { return r.schema }

// Open implements exec.Operator.
func (r *requalify) Open() error { return r.input.Open() }

// Next implements exec.Operator.
func (r *requalify) Next() (sqltypes.Row, error) { return r.input.Next() }

// Close implements exec.Operator.
func (r *requalify) Close() error { return r.input.Close() }

// Describe implements exec.Operator.
func (r *requalify) Describe() string { return "Subquery AS " + r.alias }

// Children implements exec.Operator.
func (r *requalify) Children() []exec.Operator { return []exec.Operator{r.input} }

// SetChildren implements exec.Rewirable, so EXPLAIN ANALYZE probes reach
// inside derived tables.
func (r *requalify) SetChildren(children []exec.Operator) { r.input = children[0] }
