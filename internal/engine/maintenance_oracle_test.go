package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	rferrors "rfview/errors"
	"rfview/internal/rewrite"
	"rfview/internal/sqltypes"
)

// This file is the randomized maintenance oracle: the differential proof that
// delta-incremental view maintenance (§2.3) is indistinguishable from full
// recomputation. Each trial builds THREE engines over identical data and a
// materialized window view:
//
//	eager    — deltas fold into the view inside each DML statement;
//	deferred — deltas queue and apply on drain / read-repair;
//	reference— maintenance off: every DML marks the view stale and a full
//	           REFRESH rebuilds it from the base table before comparisons.
//
// The same random DML stream (skewed value updates, appends, tail deletes,
// partition births and deaths, and — in chaos trials — density-breaking
// operations that must degrade to staleness identically everywhere) is
// applied to all three. After convergence, the view backing tables and a
// window query answered under one of five evaluation strategies must be
// BIT-identical across the three engines: values are compared through the
// memcomparable row codec, not epsilon comparison. Integer data keeps every
// sum exact in float64, so any bit difference is a maintenance bug.

// oracleEncode renders a result as sorted memcomparable-encoded rows; two
// results encode equal iff they are bit-identical up to row order.
func oracleEncode(t *testing.T, res *Result, err error) string {
	t.Helper()
	if err != nil {
		return "ERROR: " + err.Error()
	}
	lines := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		lines[i] = string(sqltypes.EncodeRowData(nil, r))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\x00")
}

// oracleConfig is one evaluation strategy the comparison queries run under.
type oracleConfig struct {
	name    string
	derives bool // uses the materialized view to answer the window query
	apply   func(*Options)
}

var oracleConfigs = []oracleConfig{
	{"native-seq", false, func(o *Options) { o.UseMatViews = false; o.WindowParallelism = 1 }},
	{"native-par", false, func(o *Options) { o.UseMatViews = false; o.WindowParallelism = 4 }},
	{"selfjoin", false, func(o *Options) { o.UseMatViews = false; o.NativeWindow = false }},
	{"maxoa", true, func(o *Options) { o.Strategy = rewrite.StrategyMaxOA }},
	{"minoa", true, func(o *Options) { o.Strategy = rewrite.StrategyMinOA }},
}

func oracleEngine(t *testing.T, cfg oracleConfig, maintenance string) *Engine {
	t.Helper()
	opts := DefaultOptions()
	cfg.apply(&opts)
	opts.ViewMaintenance = maintenance
	return New(opts)
}

// oracleModel tracks the logical table state so the generator only emits DML
// the §2.3 rules accept (or deliberately violates them, in chaos trials).
type oracleModel struct {
	partitioned bool
	keys        []string       // live partition keys, insertion order ("" for simple)
	n           map[string]int // rows per key
	born        int            // partitions birthed, for fresh key names
}

func (m *oracleModel) pickKey(rng *rand.Rand) string {
	// Skew: favor early partitions, so some queues run hot while others idle.
	i := rng.Intn(len(m.keys))
	if j := rng.Intn(len(m.keys)); j < i {
		i = j
	}
	return m.keys[i]
}

// step emits one maintainable DML statement and applies it to the model.
func (m *oracleModel) step(rng *rand.Rand) string {
	key := m.pickKey(rng)
	val := rng.Intn(100) - 50
	roll := rng.Float64()
	switch {
	case roll < 0.15 && m.partitioned: // partition birth
		m.born++
		k := fmt.Sprintf("n%d", m.born)
		m.keys = append(m.keys, k)
		m.n[k] = 1
		return fmt.Sprintf(`INSERT INTO %s VALUES ('%s', 1, %d)`, m.table(), k, val)
	case roll < 0.35: // append
		m.n[key]++
		return m.insertSQL(key, m.n[key], val)
	case roll < 0.50 && m.deletable(key): // tail delete (possibly a death)
		pos := m.n[key]
		m.n[key]--
		if m.n[key] == 0 {
			for i, k := range m.keys {
				if k == key {
					m.keys = append(m.keys[:i], m.keys[i+1:]...)
					break
				}
			}
			delete(m.n, key)
		}
		return m.deleteSQL(key, pos)
	default: // value update
		return m.updateSQL(key, 1+rng.Intn(m.n[key]), val)
	}
}

// chaos emits a density-breaking statement — a middle delete, or an insert
// past the end — plus the repair that restores density afterwards. Every
// engine must answer the break with staleness, identically; the repair lets
// REFRESH rebuild from a dense base so the trial can still compare results.
func (m *oracleModel) chaos(rng *rand.Rand) (broken, repair string) {
	key := m.pickKey(rng)
	if rng.Intn(2) == 0 && m.n[key] >= 4 {
		pos := m.n[key] / 2 // middle delete, then put a row back at the gap
		return m.deleteSQL(key, pos), m.insertSQL(key, pos, rng.Intn(100)-50)
	}
	pos := m.n[key] + 5 // gap insert, then remove the orphan
	return m.insertSQL(key, pos, rng.Intn(100)-50), m.deleteSQL(key, pos)
}

func (m *oracleModel) deletable(key string) bool {
	if m.partitioned {
		return m.n[key] >= 1 && (len(m.keys) > 1 || m.n[key] > 1)
	}
	return m.n[key] > 3 // keep simple sequences comfortably non-empty
}

func (m *oracleModel) table() string {
	if m.partitioned {
		return "pt"
	}
	return "seq"
}

func (m *oracleModel) insertSQL(key string, pos, val int) string {
	if m.partitioned {
		return fmt.Sprintf(`INSERT INTO pt VALUES ('%s', %d, %d)`, key, pos, val)
	}
	return fmt.Sprintf(`INSERT INTO seq VALUES (%d, %d)`, pos, val)
}

func (m *oracleModel) updateSQL(key string, pos, val int) string {
	if m.partitioned {
		return fmt.Sprintf(`UPDATE pt SET val = %d WHERE grp = '%s' AND pos = %d`, val, key, pos)
	}
	return fmt.Sprintf(`UPDATE seq SET val = %d WHERE pos = %d`, val, pos)
}

func (m *oracleModel) deleteSQL(key string, pos int) string {
	if m.partitioned {
		return fmt.Sprintf(`DELETE FROM pt WHERE grp = '%s' AND pos = %d`, key, pos)
	}
	return fmt.Sprintf(`DELETE FROM seq WHERE pos = %d`, pos)
}

// TestMaintenanceOracle is the randomized maintenance oracle described above.
func TestMaintenanceOracle(t *testing.T) { runMaintenanceOracle(t, false) }

// TestMaintenanceOracleTxn re-runs the oracle with the DML stream applied
// through multi-statement transactions: statements are chunked into
// BEGIN..COMMIT blocks, every so often a chunk is first run and ROLLED BACK
// (which must leave no trace) before being applied for real, and a
// concurrent reader hammers the window query while the writers' transactions
// are open. Under -race this is also the proof that lock-free snapshot reads
// and transactional maintenance don't race.
func TestMaintenanceOracleTxn(t *testing.T) { runMaintenanceOracle(t, true) }

func runMaintenanceOracle(t *testing.T, useTxns bool) {
	rng := rand.New(rand.NewSource(20020528)) // §2.3's incremental rules, ICDE 2002
	trials := 200
	if testing.Short() {
		trials = 30
	}
	derivationsFired := map[string]int{}
	deltasApplied := 0
	for trial := 0; trial < trials; trial++ {
		cfg := oracleConfigs[trial%len(oracleConfigs)]
		partitioned := rng.Intn(3) == 0
		aggs := []string{"SUM", "SUM", "COUNT", "MIN", "MAX", "AVG"}
		if partitioned {
			aggs = []string{"SUM", "SUM", "COUNT", "MIN", "MAX"} // partitioned AVG views are rejected by design
		}
		agg := aggs[rng.Intn(len(aggs))]
		cumulative := !partitioned && agg != "AVG" && rng.Intn(4) == 0
		lx, hx := rng.Intn(3), rng.Intn(3)
		if lx+hx == 0 {
			lx = 1
		}
		ly, hy := lx+rng.Intn(4), hx+rng.Intn(4)
		if agg == "MIN" || agg == "MAX" {
			// MIN/MAX derivation needs a covering extension of bounded width.
			dl, dh := rng.Intn(lx+hx+1), rng.Intn(lx+hx+1)
			if dl+dh > lx+hx+1 {
				dh = 0
			}
			ly, hy = lx+dl, hx+dh
		}
		chaosTrial := rng.Intn(5) == 0
		drainByRead := trial%2 == 0 // alternate DrainMaintenance() and read-repair
		seed := rng.Int63()

		frame := fmt.Sprintf("ROWS BETWEEN %d PRECEDING AND %d FOLLOWING", lx, hx)
		qframe := fmt.Sprintf("ROWS BETWEEN %d PRECEDING AND %d FOLLOWING", ly, hy)
		if cumulative {
			frame = "ROWS UNBOUNDED PRECEDING"
			qframe = frame // identical window: the exact-match derivation
		}
		var viewDDL, q, backingQ string
		if partitioned {
			viewDDL = fmt.Sprintf(`CREATE MATERIALIZED VIEW mv AS
			  SELECT grp, pos, %s(val) OVER (PARTITION BY grp ORDER BY pos %s) AS val FROM pt`, agg, frame)
			q = fmt.Sprintf(`SELECT grp, pos, %s(val) OVER (PARTITION BY grp ORDER BY pos %s) AS w FROM pt`, agg, qframe)
			backingQ = `SELECT part, pos, val, body FROM mv`
		} else {
			viewDDL = fmt.Sprintf(`CREATE MATERIALIZED VIEW mv AS
			  SELECT pos, %s(val) OVER (ORDER BY pos %s) AS val FROM seq`, agg, frame)
			q = fmt.Sprintf(`SELECT pos, %s(val) OVER (ORDER BY pos %s) AS w FROM seq`, agg, qframe)
			backingQ = `SELECT pos, val FROM mv`
		}
		ctx := fmt.Sprintf("trial %d: cfg=%s part=%v agg=%s cum=%v x̃=(%d,%d) ỹ=(%d,%d) chaos=%v",
			trial, cfg.name, partitioned, agg, cumulative, lx, hx, ly, hy, chaosTrial)

		model := &oracleModel{partitioned: partitioned, n: map[string]int{}}
		load := func(e *Engine) {
			t.Helper()
			local := rand.New(rand.NewSource(seed))
			if partitioned {
				mustExec(t, e, `CREATE TABLE pt (grp VARCHAR(8), pos INTEGER, val INTEGER)`)
				mustExec(t, e, `CREATE UNIQUE INDEX pt_pk ON pt (grp, pos)`)
			} else {
				mustExec(t, e, `CREATE TABLE seq (pos INTEGER, val INTEGER)`)
				mustExec(t, e, `CREATE UNIQUE INDEX seq_pk ON seq (pos)`)
			}
			var b strings.Builder
			fmt.Fprintf(&b, "INSERT INTO %s VALUES ", model.table())
			first := true
			for _, k := range model.keys {
				for i := 1; i <= model.n[k]; i++ {
					if !first {
						b.WriteString(", ")
					}
					first = false
					if partitioned {
						fmt.Fprintf(&b, "('%s', %d, %d)", k, i, local.Intn(100)-50)
					} else {
						fmt.Fprintf(&b, "(%d, %d)", i, local.Intn(100)-50)
					}
				}
			}
			mustExec(t, e, b.String())
			mustExec(t, e, viewDDL)
		}
		if partitioned {
			groups := 1 + rng.Intn(3)
			for g := 0; g < groups; g++ {
				k := fmt.Sprintf("g%d", g)
				model.keys = append(model.keys, k)
				model.n[k] = 2 + rng.Intn(10)
			}
		} else {
			model.keys = []string{""}
			model.n[""] = 6 + rng.Intn(25)
		}

		eager := oracleEngine(t, cfg, "eager")
		deferredE := oracleEngine(t, cfg, "deferred")
		reference := oracleEngine(t, cfg, "off")
		engines := []*Engine{eager, deferredE, reference}
		for _, e := range engines {
			load(e)
		}

		// The random DML stream, identical on all three engines.
		steps := 10 + rng.Intn(20)
		var stmts []string
		for i := 0; i < steps; i++ {
			stmts = append(stmts, model.step(rng))
		}
		if chaosTrial {
			broken, repair := model.chaos(rng)
			stmts = append(stmts, broken, repair)
		}
		if useTxns {
			applyStmtsTxn(t, engines, stmts, q, seed)
		} else {
			for _, sql := range stmts {
				for _, e := range engines {
					mustExec(t, e, sql)
				}
			}
		}

		// Converge the deferred engine; in read-repair trials the drain rides
		// on the backing read below instead.
		if !drainByRead {
			deferredE.DrainMaintenance()
		}

		if chaosTrial {
			// Density is broken: all three engines must refuse derivation
			// identically, and REFRESH must heal all three into agreement.
			deferredE.DrainMaintenance() // staleness surfaces at apply time
			if !eager.Views.Stale("mv") || !deferredE.Views.Stale("mv") || !reference.Views.Stale("mv") {
				t.Fatalf("%s: chaos op did not stale all engines (eager=%v deferred=%v reference=%v)",
					ctx, eager.Views.Stale("mv"), deferredE.Views.Stale("mv"), reference.Views.Stale("mv"))
			}
			for _, e := range engines {
				mustExec(t, e, `REFRESH MATERIALIZED VIEW mv`)
			}
		} else {
			// The incremental path must have held: no engine but the
			// reference may be stale.
			if eager.Views.Stale("mv") {
				_, why := eager.Views.StaleInfo("mv")
				t.Fatalf("%s: eager engine went stale on maintainable DML: %s", ctx, why)
			}
			if !reference.Views.Stale("mv") {
				t.Fatalf("%s: off-mode reference never went stale — the comparison would be vacuous", ctx)
			}
			mustExec(t, reference, `REFRESH MATERIALIZED VIEW mv`)
		}

		// Backing tables must be bit-identical. This read is also the
		// read-repair drain for the deferred engine in alternate trials.
		want := oracleEncode(t, mustExec(t, reference, backingQ), nil)
		for i, e := range []*Engine{eager, deferredE} {
			name := []string{"eager", "deferred"}[i]
			got := oracleEncode(t, mustExec(t, e, backingQ), nil)
			if got != want {
				t.Fatalf("%s: %s backing diverged from full REFRESH\n got: %q\nwant: %q", ctx, name, got, want)
			}
		}
		if !chaosTrial {
			if pending := deferredE.Views.PendingTotal(); pending != 0 {
				t.Fatalf("%s: deferred engine still has %d deltas queued after convergence", ctx, pending)
			}
			if deferredE.Views.Stale("mv") {
				_, why := deferredE.Views.StaleInfo("mv")
				t.Fatalf("%s: deferred engine went stale on maintainable DML: %s", ctx, why)
			}
			deltasApplied += int(eager.Views.Stats().DeltaApplied.Load())
		}

		// The window query must agree bit-exactly across all three engines
		// under this trial's evaluation strategy.
		qwant := oracleEncode(t, mustExec(t, reference, q), nil)
		for i, e := range []*Engine{eager, deferredE} {
			name := []string{"eager", "deferred"}[i]
			res := mustExec(t, e, q)
			if cfg.derives && res.Derivation != nil {
				derivationsFired[cfg.name]++
			}
			if got := oracleEncode(t, res, nil); got != qwant {
				t.Fatalf("%s: %s window query diverged from reference\n got: %q\nwant: %q", ctx, name, got, qwant)
			}
		}
	}
	if deltasApplied == 0 {
		t.Fatal("no incremental deltas applied across all trials — oracle is not exercising maintenance")
	}
	for _, cfg := range oracleConfigs {
		if cfg.derives && derivationsFired[cfg.name] == 0 {
			t.Fatalf("%s never derived from the view across %d trials — oracle is not exercising derivation", cfg.name, trials)
		}
	}
}

// applyStmtsTxn applies the oracle's DML stream through sessions, chunked
// into transactions, with concurrent snapshot readers live throughout.
func applyStmtsTxn(t *testing.T, engines []*Engine, stmts []string, q string, seed int64) {
	t.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	readErr := make(chan error, len(engines))
	for _, e := range engines {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.Exec(q); err != nil {
					// The off-mode reference (and chaos trials mid-stream)
					// legitimately answer derivation attempts with a stale
					// view; anything else is a bug.
					if rferrors.CodeOf(err) == rferrors.CodeStaleView {
						continue
					}
					readErr <- fmt.Errorf("concurrent reader: %w", err)
					return
				}
			}
		}(e)
	}

	local := rand.New(rand.NewSource(seed ^ 0x7a5a))
	sessions := make([]*Session, len(engines))
	for i, e := range engines {
		sessions[i] = e.NewSession()
	}
	for start := 0; start < len(stmts); {
		end := start + 1 + local.Intn(3)
		if end > len(stmts) {
			end = len(stmts)
		}
		chunk := stmts[start:end]
		rollbackFirst := local.Intn(3) == 0
		for _, s := range sessions {
			if rollbackFirst {
				// Dry run: apply the chunk and roll it back. The commit
				// below must produce exactly the same state as if this
				// never happened.
				mustSess(t, s, "BEGIN")
				for _, sql := range chunk {
					mustSess(t, s, sql)
				}
				mustSess(t, s, "ROLLBACK")
			}
			mustSess(t, s, "BEGIN")
			for _, sql := range chunk {
				mustSess(t, s, sql)
			}
			mustSess(t, s, "COMMIT")
		}
		start = end
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}
}

// TestExplainShowsMaintenanceDrain pins the EXPLAIN surfacing: a read that
// drains deferred deltas reports how many it applied.
func TestExplainShowsMaintenanceDrain(t *testing.T) {
	opts := DefaultOptions()
	opts.ViewMaintenance = "deferred"
	e := New(opts)
	loadSeq(t, e, 10, func(i int) int64 { return int64(i) })
	mustExec(t, e, `CREATE MATERIALIZED VIEW mv AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS val FROM seq`)
	mustExec(t, e, `UPDATE seq SET val = 99 WHERE pos = 4`)
	mustExec(t, e, `INSERT INTO seq VALUES (11, 7)`)
	if e.Views.PendingTotal() == 0 {
		t.Fatal("expected queued deltas")
	}
	res := mustExec(t, e, `EXPLAIN SELECT pos, val FROM mv`)
	if !strings.Contains(res.Plan, "-- maintenance: drained 2 deferred delta(s)") {
		t.Fatalf("EXPLAIN did not report the drain:\n%s", res.Plan)
	}
	if e.Views.PendingTotal() != 0 {
		t.Fatal("EXPLAIN read should have drained the queue")
	}
}
