package exec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	rferrors "rfview/errors"
	"rfview/internal/expr"
	"rfview/internal/spill"
	"rfview/internal/sqltypes"
)

// spillCfg builds an enabled spill config with a tiny budget so every sort of
// more than a handful of rows goes external.
func spillCfg(t *testing.T, budget int64) *spill.Config {
	t.Helper()
	env := spill.NewEnv(t.TempDir())
	t.Cleanup(func() { env.Close() })
	return &spill.Config{Budget: spill.NewBudget(budget), Env: env, Stats: &spill.Stats{}, MinRunRows: 8}
}

// spillValue draws datums for the named column shape; "mixed" defeats the key
// encoding (Int/Float heterogeneous), the others are encodable.
func spillValue(rng *rand.Rand, shape string) sqltypes.Datum {
	if rng.Intn(5) == 0 {
		return sqltypes.NullDatum // NULL-heavy throughout
	}
	switch shape {
	case "int":
		return sqltypes.NewInt(int64(rng.Intn(40) - 20))
	case "float":
		return sqltypes.NewFloat(float64(rng.Intn(40)-20) / 4)
	case "string":
		return sqltypes.NewString(fmt.Sprintf("s%02d", rng.Intn(30)))
	default: // mixed
		if rng.Intn(2) == 0 {
			return sqltypes.NewInt(int64(rng.Intn(40) - 20))
		}
		return sqltypes.NewFloat(float64(rng.Intn(40)-20) / 4)
	}
}

// TestSortExternalMatchesInMemory: for encodable key shapes (NULL-heavy,
// ASC and DESC), a Sort forced external by a tiny budget returns exactly the
// rows of the untracked in-memory Sort, and releases its budget at Close.
func TestSortExternalMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	schema := pwSchema()
	for _, shape := range []string{"int", "float", "string"} {
		for _, desc := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/desc=%v", shape, desc), func(t *testing.T) {
				var rows []sqltypes.Row
				for i := 0; i < 400; i++ {
					rows = append(rows, sqltypes.Row{
						spillValue(rng, shape),
						sqltypes.NewInt(int64(i)),
						sqltypes.NewInt(int64(rng.Intn(100))),
					})
				}
				keys := []SortKey{{Expr: mustCompile(t, "grp", schema), Desc: desc}}
				want := mustCollect(t, &Sort{Input: valuesOp(schema, rows...), Keys: keys})
				cfg := spillCfg(t, 2<<10)
				ext := &Sort{Input: valuesOp(schema, rows...), Keys: keys, Spill: cfg}
				got := mustCollect(t, ext)
				requireSameRows(t, want, got, shape)
				if ext.spillRuns == 0 || ext.spillBytes == 0 {
					t.Fatalf("sort did not spill: runs=%d bytes=%d", ext.spillRuns, ext.spillBytes)
				}
				if used := cfg.Budget.Used(); used != 0 {
					t.Fatalf("%d budget bytes leaked after Close", used)
				}
			})
		}
	}
}

// TestSortExternalFallbackMixedKeys: an Int/Float-mixed key column defeats
// the key encoding mid-stream; the sort must abandon the external path
// (releasing everything) and still produce the comparator-path answer.
func TestSortExternalFallbackMixedKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	schema := pwSchema()
	var rows []sqltypes.Row
	for i := 0; i < 300; i++ {
		rows = append(rows, sqltypes.Row{
			spillValue(rng, "mixed"),
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(0),
		})
	}
	keys := []SortKey{{Expr: mustCompile(t, "grp", schema)}}
	want := mustCollect(t, &Sort{Input: valuesOp(schema, rows...), Keys: keys, NoVectorize: true})
	cfg := spillCfg(t, 2<<10)
	ext := &Sort{Input: valuesOp(schema, rows...), Keys: keys, Spill: cfg}
	got := mustCollect(t, ext)
	requireSameRows(t, want, got, "mixed keys")
	if ext.spillRuns != 0 {
		t.Fatalf("encoding-defeated sort reported %d spill runs", ext.spillRuns)
	}
	if used := cfg.Budget.Used(); used != 0 {
		t.Fatalf("%d budget bytes leaked after fallback", used)
	}
}

// TestSortExternalCancelled: cancelling the context fails the external sort
// with the engine's cancelled code and leaks no budget.
func TestSortExternalCancelled(t *testing.T) {
	schema := pwSchema()
	var rows []sqltypes.Row
	for i := 0; i < 2000; i++ {
		rows = append(rows, intRow(int64(i%7), int64(i), int64(i%13)))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg := spillCfg(t, 2<<10)
	s := &Sort{
		Input: valuesOp(schema, rows...),
		Keys:  []SortKey{{Expr: mustCompile(t, "pos", schema)}},
		Ctx:   ctx,
		Spill: cfg,
	}
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	cancel()
	var err error
	for i := 0; i < len(rows); i++ {
		var row sqltypes.Row
		row, err = s.Next()
		if err != nil || row == nil {
			break
		}
	}
	if err == nil {
		t.Fatal("cancelled external sort drained cleanly")
	}
	if rferrors.CodeOf(err) != rferrors.CodeCancelled {
		t.Fatalf("want code %q, got %q (%v)", rferrors.CodeCancelled, rferrors.CodeOf(err), err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if used := cfg.Budget.Used(); used != 0 {
		t.Fatalf("%d budget bytes leaked after cancel", used)
	}
}

// TestWindowSpillMatchesInMemory: window partitions forced external (tiny
// budget, one hot partition) must produce exactly the in-memory operator's
// rows, sequentially and with parallel workers.
func TestWindowSpillMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var rows []sqltypes.Row
	for i := 0; i < 1200; i++ {
		// Two partitions, one 4× the other: both spill under a 2KiB budget.
		g := int64(0)
		if i%5 == 0 {
			g = 1
		}
		rows = append(rows, intRow(g, int64(rng.Intn(1000)), int64(rng.Intn(100)-50)))
	}
	frame := FrameSpec{
		Start: FrameBound{Kind: BoundPreceding, Offset: 3},
		End:   FrameBound{Kind: BoundFollowing, Offset: 2},
	}
	want := mustCollect(t, pwWindow(t, rows, frame, 1, "SUM", "COUNT", "MIN", "AVG"))
	for _, par := range []int{1, 4} {
		cfg := spillCfg(t, 2<<10)
		w := pwWindow(t, rows, frame, par, "SUM", "COUNT", "MIN", "AVG")
		w.Spill = cfg
		got := mustCollect(t, w)
		requireSameRows(t, want, got, fmt.Sprintf("parallelism=%d", par))
		if w.spillRuns.Load() == 0 {
			t.Fatalf("parallelism=%d: window did not spill", par)
		}
		if used := cfg.Budget.Used(); used != 0 {
			t.Fatalf("parallelism=%d: %d budget bytes leaked", par, used)
		}
	}
}

// TestWindowSpillMixedOrderKeysFallsBack: Int/Float-mixed ORDER BY values
// defeat the encoding; partitions must fall back to the comparator sort and
// still match the untracked operator.
func TestWindowSpillMixedOrderKeysFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	schema := pwSchema()
	var rows []sqltypes.Row
	for i := 0; i < 600; i++ {
		rows = append(rows, sqltypes.Row{
			sqltypes.NewInt(int64(i % 2)),
			spillValue(rng, "mixed"),
			sqltypes.NewInt(int64(rng.Intn(100))),
		})
	}
	build := func() *Window {
		return NewWindow(valuesOp(schema, rows...),
			[]expr.Expr{mustCompile(t, "grp", schema)},
			[]SortKey{{Expr: mustCompile(t, "pos", schema)}},
			[]WindowFunc{{Name: "SUM", Arg: mustCompile(t, "val", schema), Frame: DefaultFrame(true), OutName: "w0"}})
	}
	want := mustCollect(t, build())
	cfg := spillCfg(t, 2<<10)
	w := build()
	w.Spill = cfg
	got := mustCollect(t, w)
	requireSameRows(t, want, got, "mixed order keys")
	if used := cfg.Budget.Used(); used != 0 {
		t.Fatalf("%d budget bytes leaked after fallback", used)
	}
}
