package sqlparser

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkNumber
	tkString
	tkOp // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents as written
	pos  int    // byte offset, for error messages
}

// keywords the lexer recognizes (upper-case canonical form).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "ON": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "CROSS": true,
	"UNION": true, "ALL": true, "DISTINCT": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "BETWEEN": true, "IS": true, "NULL": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"OVER": true, "PARTITION": true, "ROWS": true, "UNBOUNDED": true,
	"PRECEDING": true, "FOLLOWING": true, "CURRENT": true, "ROW": true,
	"CREATE": true, "TABLE": true, "INDEX": true, "UNIQUE": true,
	"MATERIALIZED": true, "VIEW": true, "DROP": true, "REFRESH": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "EXPLAIN": true, "ANALYZE": true, "ASC": true, "DESC": true,
	"NULLS": true, "FIRST": true, "LAST": true,
	"TRUE": true, "FALSE": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "TRANSACTION": true,
	"WORK": true,
	"INTEGER": true, "INT": true, "BIGINT": true, "FLOAT": true, "DOUBLE": true,
	"VARCHAR": true, "TEXT": true, "DATE": true, "BOOLEAN": true,
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(l.src); i++ {
		if l.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("syntax error at line %d col %d: %s", line, col, fmt.Sprintf(format, args...))
}

// next scans one token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tkEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		upper := strings.ToUpper(text)
		if keywords[upper] {
			return token{kind: tkKeyword, text: upper, pos: start}, nil
		}
		return token{kind: tkIdent, text: text, pos: start}, nil
	case c >= '0' && c <= '9':
		seenDot, seenExp := false, false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch >= '0' && ch <= '9' {
				l.pos++
				continue
			}
			if ch == '.' && !seenDot && !seenExp {
				seenDot = true
				l.pos++
				continue
			}
			if (ch == 'e' || ch == 'E') && !seenExp && l.pos+1 < len(l.src) &&
				(isDigit(l.src[l.pos+1]) || ((l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') && l.pos+2 < len(l.src) && isDigit(l.src[l.pos+2]))) {
				seenExp = true
				l.pos++
				if l.src[l.pos] == '+' || l.src[l.pos] == '-' {
					l.pos++
				}
				continue
			}
			break
		}
		return token{kind: tkNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf(start, "unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'') // doubled quote escape
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(ch)
			l.pos++
		}
		return token{kind: tkString, text: b.String(), pos: start}, nil
	default:
		// Multi-char operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<>", "<=", ">=", "!=":
			l.pos += 2
			if two == "!=" {
				two = "<>"
			}
			return token{kind: tkOp, text: two, pos: start}, nil
		}
		switch c {
		case '(', ')', ',', '.', '+', '-', '*', '/', '=', '<', '>', ';':
			l.pos++
			return token{kind: tkOp, text: string(c), pos: start}, nil
		}
		return token{}, l.errorf(start, "unexpected character %q", c)
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

// Identifiers are ASCII-only. The lexer scans byte-wise, so admitting
// unicode.IsLetter here would treat each byte of a multi-byte sequence as a
// latin-1 letter; such "identifiers" are invalid UTF-8 that case folding
// (strings.ToUpper) silently rewrites to U+FFFD, breaking the guarantee that
// a parsed statement's String() reparses identically (found by FuzzParse).
func isIdentStart(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

func isIdentPart(r rune) bool {
	return r == '$' || isIdentStart(r) || (r >= '0' && r <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
