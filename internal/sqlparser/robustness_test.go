package sqlparser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanicsOnRandomBytes throws random byte soup at the parser:
// every input must return (statement, nil) or (nil, error) — never panic.
func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(input []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", input, r)
				ok = false
			}
		}()
		_, _ = Parse(string(input))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestParseNeverPanicsOnMutatedSQL mutates valid statements (truncation,
// token deletion, token duplication, character flips) and checks the parser
// stays panic-free and error messages stay non-empty.
func TestParseNeverPanicsOnMutatedSQL(t *testing.T) {
	seeds := []string{
		`SELECT pos, SUM(val) OVER (PARTITION BY g ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM seq WHERE pos > 3 GROUP BY pos HAVING COUNT(*) > 1 ORDER BY pos DESC LIMIT 5`,
		`SELECT s.pos, s.val + COALESCE(d.val, 0) FROM matseq s LEFT OUTER JOIN (SELECT pos, SUM(CASE WHEN a = b THEN v ELSE (-1) * v END) AS val FROM m GROUP BY pos) d ON s.pos = d.pos`,
		`CREATE MATERIALIZED VIEW mv AS SELECT a FROM t UNION ALL SELECT b FROM u`,
		`INSERT INTO t (a, b) VALUES (1, 'x''y'), (2, NULL)`,
		`UPDATE t SET a = a * 2 WHERE a BETWEEN 1 AND 10 OR a IN (20, 30)`,
		`SELECT * FROM a, b CROSS JOIN c INNER JOIN d ON a.x = d.x`,
	}
	rng := rand.New(rand.NewSource(1234))
	mutate := func(s string) string {
		switch rng.Intn(4) {
		case 0: // truncate
			if len(s) == 0 {
				return s
			}
			return s[:rng.Intn(len(s))]
		case 1: // delete a token
			parts := strings.Fields(s)
			if len(parts) < 2 {
				return s
			}
			i := rng.Intn(len(parts))
			return strings.Join(append(parts[:i:i], parts[i+1:]...), " ")
		case 2: // duplicate a token
			parts := strings.Fields(s)
			if len(parts) == 0 {
				return s
			}
			i := rng.Intn(len(parts))
			parts = append(parts[:i+1:i+1], parts[i:]...)
			return strings.Join(parts, " ")
		default: // flip a character
			if len(s) == 0 {
				return s
			}
			b := []byte(s)
			b[rng.Intn(len(b))] = byte("()+-*/=<>,.;'xq5"[rng.Intn(16)])
			return string(b)
		}
	}
	for round := 0; round < 4000; round++ {
		src := seeds[rng.Intn(len(seeds))]
		for depth := 0; depth <= rng.Intn(3); depth++ {
			src = mutate(src)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated input %q: %v", src, r)
				}
			}()
			if _, err := Parse(src); err != nil && err.Error() == "" {
				t.Fatalf("empty error message for %q", src)
			}
		}()
	}
}

// TestParserRecoversPositionInfo — errors always carry a line/column or a
// reasonable message.
func TestParserErrorMessagesUseful(t *testing.T) {
	cases := map[string]string{
		"SELECT ~":                   "unexpected character",
		"SELECT a FROM":              "expected identifier",
		"SELECT a FROM t WHERE":      "unexpected",
		"CREATE TABLE t (a BADTYPE)": "expected a type name",
	}
	for sql, want := range cases {
		_, err := Parse(sql)
		if err == nil {
			t.Errorf("Parse(%q) should fail", sql)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Parse(%q) error %q should mention %q", sql, err, want)
		}
	}
}
