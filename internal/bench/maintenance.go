package bench

import (
	"fmt"
	"strings"
	"time"

	"rfview/internal/engine"
)

// The maintenance experiment quantifies §2.3 at the SQL level: how much an
// incremental view update (one UPDATE statement against the base table,
// folded into the view through the maintenance rules) costs compared to a
// full REFRESH MATERIALIZED VIEW.

// MaintRow is one measured row of the maintenance experiment.
type MaintRow struct {
	N           int
	Incremental time.Duration // one UPDATE, §2.3 band patch
	FullRefresh time.Duration // REFRESH MATERIALIZED VIEW
}

// MaintenanceSizes are the default sequence cardinalities.
var MaintenanceSizes = []int{1000, 5000, 20000}

// RunMaintenance measures incremental maintenance vs. full refresh.
func RunMaintenance(sizes []int) ([]MaintRow, error) {
	out := make([]MaintRow, 0, len(sizes))
	for _, n := range sizes {
		e := engine.New(engine.DefaultOptions())
		if err := LoadSequenceTable(e, n, 23); err != nil {
			return nil, err
		}
		if _, err := e.Exec(`CREATE UNIQUE INDEX seq_pk ON seq (pos)`); err != nil {
			return nil, err
		}
		if _, err := e.Exec(Table2ViewDDL); err != nil {
			return nil, err
		}
		row := MaintRow{N: n}

		// Incremental: average over a batch of single-row updates.
		const batch = 50
		start := time.Now()
		for i := 0; i < batch; i++ {
			pos := 1 + (i*7919)%n
			if _, err := e.Exec(fmt.Sprintf(`UPDATE seq SET val = %d WHERE pos = %d`, i%100, pos)); err != nil {
				return nil, err
			}
		}
		row.Incremental = time.Since(start) / batch
		if e.Views.Stale("matseq") {
			return nil, fmt.Errorf("maintenance: view went stale at n=%d", n)
		}

		d, _, err := timeQuery(e, `REFRESH MATERIALIZED VIEW matseq`, 1)
		if err != nil {
			return nil, err
		}
		row.FullRefresh = d
		out = append(out, row)
	}
	return out, nil
}

// FormatMaintenance renders the experiment.
func FormatMaintenance(rows []MaintRow) string {
	var b strings.Builder
	b.WriteString("Maintenance (§2.3): incremental update vs. full refresh of x̃=(2,1)\n")
	b.WriteString("  # seq values   incremental/op   full refresh   ratio\n")
	for _, r := range rows {
		ratio := float64(r.FullRefresh) / float64(r.Incremental)
		fmt.Fprintf(&b, "  %12d   %-16s %-14s %8.1fx\n",
			r.N, fmtDur(r.Incremental), fmtDur(r.FullRefresh), ratio)
	}
	return b.String()
}
