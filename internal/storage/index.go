package storage

import (
	"rfview/internal/sqltypes"
)

// Index is the access-path contract shared by the ordered B+tree index and
// the hash index. Keys are datum tuples; duplicates are allowed (the table
// layer enforces uniqueness where declared).
type Index interface {
	// Insert adds (key, id).
	Insert(key sqltypes.Row, id RowID)
	// Delete removes (key, id); it is a no-op if absent.
	Delete(key sqltypes.Row, id RowID)
	// First returns one row id stored under exactly key.
	First(key sqltypes.Row) (RowID, bool)
	// Lookup invokes fn for every row id stored under exactly key.
	Lookup(key sqltypes.Row, fn func(RowID) bool)
	// Len returns the number of entries.
	Len() int
	// Ordered reports whether Range/Ascend are supported.
	Ordered() bool
	// Range invokes fn for entries with from <= key <= to in key order.
	// from/to may be nil for an open bound. Only for ordered indexes.
	Range(from, to sqltypes.Row, fn func(key sqltypes.Row, id RowID) bool)
}

// compareKeyPrefix compares a full stored key against a (possibly shorter)
// probe: only the probe's columns participate, so a probe acts as a prefix
// range. NULLs sort first, matching Table.SortedRowIDs.
func compareKeyPrefix(stored, probe sqltypes.Row) int {
	for i := range probe {
		if i >= len(stored) {
			return -1
		}
		c, err := sqltypes.Compare(stored[i], probe[i])
		if err != nil {
			// Heterogeneous keys cannot happen through the catalog; order
			// arbitrarily but deterministically by type tag.
			if stored[i].Typ() != probe[i].Typ() {
				if stored[i].Typ() < probe[i].Typ() {
					return -1
				}
				return 1
			}
			return 0
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// HashIndex is an unordered duplicate-tolerant index: datum-tuple hash →
// row-id postings.
type HashIndex struct {
	buckets map[uint64][]hashEntry
	n       int
}

type hashEntry struct {
	key sqltypes.Row
	id  RowID
}

// NewHashIndex returns an empty hash index.
func NewHashIndex() *HashIndex {
	return &HashIndex{buckets: make(map[uint64][]hashEntry)}
}

func hashKey(key sqltypes.Row) uint64 {
	h := uint64(1469598103934665603)
	for _, d := range key {
		h = h*1099511628211 ^ d.Hash()
	}
	return h
}

// Insert implements Index.
func (hi *HashIndex) Insert(key sqltypes.Row, id RowID) {
	h := hashKey(key)
	hi.buckets[h] = append(hi.buckets[h], hashEntry{key: key, id: id})
	hi.n++
}

// Delete implements Index.
func (hi *HashIndex) Delete(key sqltypes.Row, id RowID) {
	h := hashKey(key)
	bucket := hi.buckets[h]
	for i, e := range bucket {
		if e.id == id && keysEqual(e.key, key) {
			hi.buckets[h] = append(bucket[:i:i], bucket[i+1:]...)
			hi.n--
			if len(hi.buckets[h]) == 0 {
				delete(hi.buckets, h)
			}
			return
		}
	}
}

// First implements Index.
func (hi *HashIndex) First(key sqltypes.Row) (RowID, bool) {
	for _, e := range hi.buckets[hashKey(key)] {
		if keysEqual(e.key, key) {
			return e.id, true
		}
	}
	return 0, false
}

// Lookup implements Index.
func (hi *HashIndex) Lookup(key sqltypes.Row, fn func(RowID) bool) {
	for _, e := range hi.buckets[hashKey(key)] {
		if keysEqual(e.key, key) {
			if !fn(e.id) {
				return
			}
		}
	}
}

// Len implements Index.
func (hi *HashIndex) Len() int { return hi.n }

// Ordered implements Index.
func (hi *HashIndex) Ordered() bool { return false }

// Range implements Index; hash indexes do not support it.
func (hi *HashIndex) Range(_, _ sqltypes.Row, _ func(sqltypes.Row, RowID) bool) {
	panic("storage: Range on unordered hash index")
}
