package engine

import (
	"fmt"
	"strings"
	"time"

	rferrors "rfview/errors"
	"rfview/internal/exec"
	"rfview/internal/metrics"
)

// engineMetrics bundles the instruments the engine updates per statement.
// Scrape-time values (plan-cache counters, view staleness, window-pool
// telemetry) register as gauge funcs instead and read live state.
type engineMetrics struct {
	queries      *metrics.CounterVec
	queryErrors  *metrics.CounterVec
	querySeconds *metrics.Histogram
	slowQueries  *metrics.Counter
	// snapshotWait is the time a lock-free read spent acquiring a stable
	// snapshot (retries against in-flight commits included); commitWait is
	// the time a writer spent waiting for the exclusive engine lock.
	snapshotWait *metrics.Histogram
	commitWait   *metrics.Histogram
}

// initMetrics builds the engine's registry. Each engine owns its registry, so
// tests and embedded engines never share series; the server and WAL attach
// their instruments to this same registry via Metrics().
func (e *Engine) initMetrics() {
	e.reg = metrics.NewRegistry()
	e.winStats = &exec.WindowStats{}
	e.met = &engineMetrics{
		queries: e.reg.CounterVec("rfview_queries_total",
			"Read statements executed, by evaluation strategy.", "strategy"),
		queryErrors: e.reg.CounterVec("rfview_query_errors_total",
			"Statements that returned an error, by error code.", "code"),
		querySeconds: e.reg.Histogram("rfview_query_seconds",
			"End-to-end statement latency.", metrics.DefBuckets),
		slowQueries: e.reg.Counter("rfview_slow_queries_total",
			"Statements that exceeded the slow-query threshold."),
		snapshotWait: e.reg.Histogram("rfview_txn_snapshot_wait_seconds",
			"Time lock-free reads spent acquiring a stable snapshot.", metrics.DefBuckets),
		commitWait: e.reg.Histogram("rfview_txn_commit_lock_wait_seconds",
			"Time writers spent waiting for the exclusive commit lock.", metrics.DefBuckets),
	}
	e.reg.GaugeFunc("rfview_txn_begins_total",
		"Transactions started (explicit and auto-commit).", func() float64 { return float64(e.txnBegins.Load()) })
	e.reg.GaugeFunc("rfview_txn_commits_total",
		"Transactions committed.", func() float64 { return float64(e.txnCommits.Load()) })
	e.reg.GaugeFunc("rfview_txn_rollbacks_total",
		"Transactions rolled back (explicit, failed statements, and conflicts).", func() float64 { return float64(e.txnRollbacks.Load()) })
	e.reg.GaugeFunc("rfview_txn_conflict_aborts_total",
		"Transactions aborted by first-committer-wins write-write conflicts.", func() float64 { return float64(e.txnConflicts.Load()) })
	e.reg.GaugeFunc("rfview_plan_cache_hits",
		"Plan cache hits since start.", func() float64 { return float64(e.PlanCacheStats().Hits) })
	e.reg.GaugeFunc("rfview_plan_cache_misses",
		"Plan cache misses since start.", func() float64 { return float64(e.PlanCacheStats().Misses) })
	e.reg.GaugeFunc("rfview_plan_cache_entries",
		"Plan cache resident entries.", func() float64 { return float64(e.PlanCacheStats().Len) })
	e.reg.GaugeFunc("rfview_plan_cache_hit_ratio",
		"Plan cache hits / lookups, 0 when no lookups yet.", func() float64 {
			st := e.PlanCacheStats()
			if total := st.Hits + st.Misses; total > 0 {
				return float64(st.Hits) / float64(total)
			}
			return 0
		})
	e.reg.GaugeSetFunc("rfview_view_staleness_seconds",
		"Seconds each stale materialized view has been stale; fresh views report 0.",
		"view", func() map[string]float64 { return e.Views.StalenessAges() })
	e.reg.GaugeFunc("rfview_window_runs",
		"Window operator executions since start.", func() float64 { return float64(e.winStats.Runs.Load()) })
	e.reg.GaugeFunc("rfview_window_parallel_runs",
		"Window executions that used more than one worker.", func() float64 { return float64(e.winStats.ParallelRuns.Load()) })
	e.reg.GaugeFunc("rfview_window_partitions",
		"Partitions evaluated by the window operator since start.", func() float64 { return float64(e.winStats.Partitions.Load()) })
	e.reg.GaugeFunc("rfview_window_parallelism_utilization",
		"Mean workers per window execution.", func() float64 {
			runs := e.winStats.Runs.Load()
			if runs == 0 {
				return 0
			}
			return float64(e.winStats.WorkersUsed.Load()) / float64(runs)
		})
	e.reg.GaugeFunc("rfview_sort_normalized_total",
		"Partition orderings that ran on memcomparable byte keys.",
		func() float64 { return float64(e.winStats.NormalizedSorts.Load()) })
	e.reg.GaugeFunc("rfview_sort_comparator_total",
		"Partition orderings that fell back to the Compare-based sort.",
		func() float64 { return float64(e.winStats.ComparatorSorts.Load()) })
	e.reg.GaugeFunc("rfview_window_sorts_performed_total",
		"Full window-ordering sorts executed: shared class sorts, unshared in-operator orderings, and NaN-fallback shared runs.",
		func() float64 { return float64(e.winStats.SortsPerformed.Load()) })
	e.reg.GaugeFunc("rfview_window_sorts_shared_total",
		"Window runs that consumed a shared class sort without re-ordering.",
		func() float64 { return float64(e.winStats.SortsShared.Load()) })
	e.reg.GaugeFunc("rfview_window_sorts_segmented_total",
		"Window runs that reused stream partition grouping and re-sorted only within segments.",
		func() float64 { return float64(e.winStats.SortsSegmented.Load()) })
	e.reg.GaugeFunc("rfview_window_kernel_typed_total",
		"Window-function evaluations served by a typed columnar kernel.",
		func() float64 { return float64(e.winStats.TypedKernels.Load()) })
	e.reg.GaugeFunc("rfview_window_kernel_boxed_total",
		"Window-function evaluations that used the boxed accumulator path.",
		func() float64 { return float64(e.winStats.BoxedKernels.Load()) })
	spillStats := e.spillCfg.Stats
	e.reg.GaugeFunc("rfview_spill_runs_total",
		"Sort runs flushed to disk by the out-of-core executor.",
		func() float64 { return float64(spillStats.Runs.Load()) })
	e.reg.GaugeFunc("rfview_spill_bytes_total",
		"Bytes written to spill run files (initial runs and merge passes).",
		func() float64 { return float64(spillStats.RunBytes.Load()) })
	e.reg.GaugeFunc("rfview_spill_operators_total",
		"Operator executions that spilled at least one run.",
		func() float64 { return float64(spillStats.Spills.Load()) })
	e.reg.GaugeFunc("rfview_spill_budget_limit_bytes",
		"Configured executor memory budget; 0 = unlimited.",
		func() float64 { return float64(e.spillCfg.Budget.Limit()) })
	e.reg.GaugeFunc("rfview_spill_budget_used_bytes",
		"Executor memory currently charged against the budget.",
		func() float64 { return float64(e.spillCfg.Budget.Used()) })
	e.spillCfg.ObserveMerge = e.reg.Histogram("rfview_spill_merge_seconds",
		"Wall time of external-sort merge passes.", metrics.DefBuckets).Observe
	e.reg.GaugeFunc("rfview_bufferpool_hits_total",
		"Page pins served from the buffer pool without disk IO.",
		func() float64 { return float64(e.StorageStats().Hits) })
	e.reg.GaugeFunc("rfview_bufferpool_misses_total",
		"Page pins that had to load the page from a heap file.",
		func() float64 { return float64(e.StorageStats().Misses) })
	e.reg.GaugeFunc("rfview_bufferpool_evictions_total",
		"Resident pages evicted by the clock sweep to make room.",
		func() float64 { return float64(e.StorageStats().Evictions) })
	e.reg.GaugeFunc("rfview_bufferpool_writebacks_total",
		"Dirty pages written back to their heap file.",
		func() float64 { return float64(e.StorageStats().Writebacks) })
	e.reg.GaugeFunc("rfview_bufferpool_resident_bytes",
		"Buffer-pool frame memory charged against the shared budget.",
		func() float64 { return float64(e.StorageStats().BytesResident) })
	e.reg.GaugeFunc("rfview_bufferpool_pages_cached",
		"Heap pages resident in the buffer pool right now.",
		func() float64 { return float64(e.StorageStats().PagesCached) })
	mstats := e.Views.Stats()
	e.reg.GaugeFunc("rfview_maintenance_delta_total",
		"DML deltas folded into materialized sequence views incrementally (§2.3).",
		func() float64 { return float64(mstats.DeltaApplied.Load()) })
	e.reg.GaugeFunc("rfview_maintenance_full_total",
		"Full REFRESH recomputes of materialized sequence views.",
		func() float64 { return float64(mstats.FullRefreshes.Load()) })
	e.reg.GaugeFunc("rfview_maintenance_pending",
		"Deferred maintenance deltas currently queued across all views.",
		func() float64 { return float64(e.Views.PendingTotal()) })
	e.reg.GaugeSetFunc("rfview_maintenance_queue_depth",
		"Deferred maintenance deltas queued, per view.",
		"view", e.Views.QueueDepths)
	e.Views.SetTouchedObserver(e.reg.Histogram("rfview_maintenance_touched_rows",
		"View sequence positions rewritten per applied maintenance delta.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}).Observe)
}

// Metrics returns the engine's metrics registry, for exposition and for
// other subsystems (server, WAL) to attach their own instruments to.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// SlowQuery is one slow-query log record.
type SlowQuery struct {
	SQL     string
	Elapsed time.Duration
	// Plan is the analyzed operator tree (per-node rows and timings) of the
	// slow execution; empty for statements that produce no plan.
	Plan string
}

// SetSlowQueryLog arms the slow-query log: read statements slower than
// threshold are reported to sink, with their analyzed plan. While armed,
// query execution runs instrumented (result-cache hits excepted — a cached
// answer is never slow). A zero threshold or nil sink disarms.
func (e *Engine) SetSlowQueryLog(threshold time.Duration, sink func(SlowQuery)) {
	e.slowMu.Lock()
	defer e.slowMu.Unlock()
	e.slowThresh = threshold
	e.slowSink = sink
}

func (e *Engine) slowLogArmed() bool {
	e.slowMu.Lock()
	defer e.slowMu.Unlock()
	return e.slowThresh > 0 && e.slowSink != nil
}

func (e *Engine) slowLog() (time.Duration, func(SlowQuery)) {
	e.slowMu.Lock()
	defer e.slowMu.Unlock()
	return e.slowThresh, e.slowSink
}

// observeQuery records one top-level statement outcome: strategy counters,
// latency, and the slow-query log.
func (e *Engine) observeQuery(sql string, res *Result, err error, elapsed time.Duration) {
	if err != nil {
		e.met.queryErrors.With(string(rferrors.CodeOf(err))).Inc()
		return
	}
	if res == nil || res.execStmt == nil {
		return // DDL/DML and EXPLAIN renderings are not query executions
	}
	e.met.queries.With(strategyLabel(res)).Inc()
	e.met.querySeconds.Observe(elapsed.Seconds())
	if th, sink := e.slowLog(); sink != nil && th > 0 && elapsed >= th {
		e.met.slowQueries.Inc()
		sink(SlowQuery{SQL: sql, Elapsed: elapsed, Plan: res.Analyzed})
	}
}

// strategyLabel names how a statement was evaluated, for the per-strategy
// counter and the EXPLAIN header: exact / maxoa / minoa view derivations,
// the Fig. 2 selfjoin simulation, or the native window operator.
func strategyLabel(res *Result) string {
	switch {
	case res.Derivation != nil && res.Derivation.Exact:
		return "exact"
	case res.Derivation != nil:
		return strings.ToLower(res.Derivation.Strategy.String())
	case res.Rewritten != "":
		return "selfjoin"
	default:
		return "native"
	}
}

// annotationHeader renders the provenance lines EXPLAIN [ANALYZE] prefixes
// to the operator tree: the chosen strategy with the paper's Δl/Δh window
// overlap factors, the rewritten SQL, and plan-cache provenance.
func annotationHeader(res *Result) string {
	var b strings.Builder
	b.WriteString("-- strategy: " + strategyLabel(res))
	if d := res.Derivation; d != nil {
		fmt.Fprintf(&b, " view=%s form=%s Δl=%d Δh=%d wx=%d", d.View.Name, d.Form, d.DeltaL, d.DeltaH, d.Wx)
		if d.Exact {
			b.WriteString(" exact=true")
		}
	}
	b.WriteString("\n")
	if res.Rewritten != "" {
		b.WriteString("-- rewritten: " + res.Rewritten + "\n")
	}
	if res.CacheHit {
		b.WriteString("-- plan cache: hit\n")
	}
	if res.MaintenanceDrained > 0 {
		fmt.Fprintf(&b, "-- maintenance: drained %d deferred delta(s) before execution\n", res.MaintenanceDrained)
	}
	return b.String()
}
