#!/usr/bin/env bash
# bench_maintenance.sh — §2.3 incremental maintenance vs. full refresh.
#
# Runs rfbench's maintenance experiment (50 single-row UPDATEs timed
# individually, 5 REFRESH trials, medians per sequence size) and records the
# JSON report in BENCH_maintenance.json at the repo root. The headline number
# per size is refresh_over_incremental: how many times more expensive a full
# REFRESH MATERIALIZED VIEW is than folding one base-table update into the
# view through the §2.3 maintenance rules.
#
# Usage: scripts/bench_maintenance.sh [-quick]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

ARGS=()
if [[ "${1:-}" == "-quick" ]]; then
  ARGS+=(-quick)
fi

go run ./cmd/rfbench -exp maintenance -json "${ARGS[@]}" > "$ROOT/BENCH_maintenance.json"

echo "wrote $ROOT/BENCH_maintenance.json" >&2
python3 - "$ROOT/BENCH_maintenance.json" <<'PY' >&2
import json, sys
d = json.load(open(sys.argv[1]))
for r in d["runs"]:
    print(f'n={r["n"]}: incremental {r["incremental_median_ms"]} ms, '
          f'refresh {r["refresh_median_ms"]} ms, '
          f'ratio {r["refresh_over_incremental"]}x')
PY
