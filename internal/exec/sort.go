package exec

import (
	"context"
	"fmt"
	"io"

	"rfview/internal/expr"
	"rfview/internal/spill"
	"rfview/internal/sqltypes"
)

// NullsPlacement positions NULL keys within one ORDER BY key's order. The
// zero value (NullsAuto) keeps the engine default — NULLs first ascending,
// NULLs last descending — so existing SortKey literals are unaffected.
type NullsPlacement uint8

// Null placements.
const (
	NullsAuto NullsPlacement = iota
	NullsFirst
	NullsLast
)

// SortKey is one ORDER BY key.
type SortKey struct {
	Expr  expr.Expr
	Desc  bool
	Nulls NullsPlacement
}

// nullsLast resolves the placement to its absolute position: true puts NULLs
// after every non-NULL value of the column regardless of direction.
func (k SortKey) nullsLast() bool {
	switch k.Nulls {
	case NullsFirst:
		return false
	case NullsLast:
		return true
	default:
		return k.Desc
	}
}

func (k SortKey) String() string {
	s := k.Expr.String()
	if k.Desc {
		s += " DESC"
	}
	switch k.Nulls {
	case NullsFirst:
		s += " NULLS FIRST"
	case NullsLast:
		s += " NULLS LAST"
	}
	return s
}

// Sort materializes its input and emits it ordered by the keys (ascending by
// default, NULLs first; stable). Keys are normalized into memcomparable byte
// strings where the column types allow it, so the sort runs on bytes.Compare
// instead of per-key Compare calls; see keys.go for the fallback contract.
type Sort struct {
	Input Operator
	Keys  []SortKey
	// NoVectorize forces the Compare-based sort path; the zero value keeps
	// key normalization on.
	NoVectorize bool
	// Ctx, when set, cancels the sort (input drain and external merge). nil
	// means context.Background().
	Ctx context.Context
	// Spill, when enabled, lets the sort go external: rows stream through a
	// budget-tracked spill.Sorter as (memcomparable key, encoded row) records
	// and come back from a merge of on-disk runs instead of one in-memory
	// permutation. Only key-encodable orderings go external; see spill.go.
	Spill *spill.Config
	// SharedClass, when > 0, marks this sort as the shared ordering of a
	// window spec class (1-based class id): the Window operators stacked above
	// consume this order instead of sorting inside themselves. Surfaced by
	// EXPLAIN and counted in WinStats.
	SharedClass int
	// ResortFull marks a shared class sort that follows another window class
	// whose order it could not reuse — the "full re-sort" decision between
	// consecutive classes, surfaced by EXPLAIN as resort=full.
	ResortFull bool
	// WinStats, when set on a shared class sort, counts the execution in the
	// window-sort telemetry (SortsPerformed).
	WinStats *WindowStats
	// Order, when set on a shared class sort, receives the sorted stream's
	// adjacency metadata for the Window operators stacked above (see
	// ClassOrderMeta). Reset at every Open; filled only by the in-memory
	// normalized path.
	Order *ClassOrderMeta

	rows []sqltypes.Row
	pos  int
	it   spill.Iterator // external path: streaming merge, nil otherwise
	// spillRuns / spillBytes record external activity for EXPLAIN ANALYZE.
	spillRuns  int
	spillBytes int64
}

// Schema implements Operator.
func (s *Sort) Schema() *expr.Schema { return s.Input.Schema() }

// ctx resolves the operator's context.
func (s *Sort) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// Open implements Operator.
func (s *Sort) Open() error {
	if s.SharedClass > 0 && s.WinStats != nil {
		s.WinStats.SortsPerformed.Add(1)
	}
	s.Order.reset()
	rows, err := CollectCtx(s.ctx(), s.Input)
	if err != nil {
		return err
	}
	if spillEligible(s.Spill, s.Keys, s.NoVectorize, len(rows)) {
		handled, err := s.openExternal(rows)
		if err != nil {
			// The spill sorter surfaces cancellation as the context's own
			// error; map it onto the engine's coded surface like Next does.
			if cerr := ctxErr(s.ctx()); cerr != nil {
				return cerr
			}
			return err
		}
		if handled {
			return nil
		}
		// The ordering defeated the key encoding mid-stream; the external
		// state is released and the in-memory comparator path below sorts the
		// rows we still hold.
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sc := getSortScratch()
	_, err = sortRowsByKeysMeta(rows, idx, s.Keys, sc, !s.NoVectorize, s.Order)
	putSortScratch(sc)
	if err != nil {
		return err
	}
	s.rows = make([]sqltypes.Row, len(rows))
	for i, j := range idx {
		s.rows[i] = rows[j]
	}
	s.pos = 0
	return nil
}

// openExternal streams rows through a spill.Sorter keyed by the concatenated
// memcomparable encoding, with the whole encoded row as payload. On success
// the operator serves Next from the merge iterator. handled=false means a
// row defeated the key encoding and nothing external remains to clean up.
func (s *Sort) openExternal(rows []sqltypes.Row) (handled bool, err error) {
	sorter := spill.NewSorter(s.ctx(), s.Spill)
	defer func() {
		if !handled || err != nil {
			sorter.Close()
		}
	}()
	ks := newKeyStreamer(s.Keys)
	var payload []byte
	for _, row := range rows {
		key, ok, err := ks.encode(row)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		payload = sqltypes.EncodeRowData(payload[:0], row)
		if err := sorter.Add(key, payload); err != nil {
			return false, err
		}
	}
	it, err := sorter.Finish()
	if err != nil {
		return false, err
	}
	s.it = it
	s.spillRuns = sorter.RunCount()
	s.spillBytes = sorter.SpillBytes()
	s.pos = 0
	return true, nil
}

// takeRows implements rowsHandoff for the in-memory path; an external merge
// streams from disk and has no buffer to surrender.
func (s *Sort) takeRows() []sqltypes.Row {
	if s.it != nil {
		return nil
	}
	rows := s.rows
	s.rows = nil
	return rows
}

// Next implements Operator.
func (s *Sort) Next() (sqltypes.Row, error) {
	if s.it != nil {
		_, payload, err := s.it.Next()
		if err == io.EOF {
			return nil, nil
		}
		if err != nil {
			if cerr := ctxErr(s.ctx()); cerr != nil {
				return nil, cerr
			}
			return nil, err
		}
		return sqltypes.DecodeRowData(payload)
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.rows = nil
	if s.it != nil {
		it := s.it
		s.it = nil
		return it.Close()
	}
	return nil
}

// Describe implements Operator.
func (s *Sort) Describe() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.String()
	}
	vec := ""
	if !s.NoVectorize {
		vec = " vectorized=true"
	}
	sp := ""
	if s.spillRuns > 0 {
		sp = fmt.Sprintf(" spilled=true runs=%d spill_bytes=%d", s.spillRuns, s.spillBytes)
	}
	shared := ""
	if s.SharedClass > 0 {
		shared = fmt.Sprintf(" shared=win class=%d", s.SharedClass)
		if s.ResortFull {
			shared += " resort=full"
		}
	}
	return "Sort " + joinTrunc(parts, 6) + shared + vec + sp
}

// Children implements Operator.
func (s *Sort) Children() []Operator { return []Operator{s.Input} }

// UnionAll concatenates its inputs (which must have equal arity).
type UnionAll struct {
	Inputs []Operator
	cur    int
	opened bool
}

// Schema implements Operator: the schema of the first input, with types
// widened where inputs disagree.
func (u *UnionAll) Schema() *expr.Schema { return u.Inputs[0].Schema() }

// Open implements Operator.
func (u *UnionAll) Open() error {
	u.cur = 0
	u.opened = false
	return nil
}

// Next implements Operator.
func (u *UnionAll) Next() (sqltypes.Row, error) {
	for u.cur < len(u.Inputs) {
		if !u.opened {
			if err := u.Inputs[u.cur].Open(); err != nil {
				return nil, err
			}
			u.opened = true
		}
		row, err := u.Inputs[u.cur].Next()
		if err != nil {
			return nil, err
		}
		if row != nil {
			return row, nil
		}
		if err := u.Inputs[u.cur].Close(); err != nil {
			return nil, err
		}
		u.cur++
		u.opened = false
	}
	return nil, nil
}

// Close implements Operator.
func (u *UnionAll) Close() error {
	if u.opened && u.cur < len(u.Inputs) {
		return u.Inputs[u.cur].Close()
	}
	return nil
}

// Describe implements Operator.
func (u *UnionAll) Describe() string { return fmt.Sprintf("UnionAll (%d inputs)", len(u.Inputs)) }

// Children implements Operator.
func (u *UnionAll) Children() []Operator { return u.Inputs }

// Distinct removes duplicate rows (hash-based; NULLs compare equal for
// distinctness, per SQL set semantics).
type Distinct struct {
	Input Operator
	seen  map[uint64][]sqltypes.Row
}

// Schema implements Operator.
func (d *Distinct) Schema() *expr.Schema { return d.Input.Schema() }

// Open implements Operator.
func (d *Distinct) Open() error {
	d.seen = make(map[uint64][]sqltypes.Row)
	return d.Input.Open()
}

// Next implements Operator.
func (d *Distinct) Next() (sqltypes.Row, error) {
	for {
		row, err := d.Input.Next()
		if err != nil || row == nil {
			return nil, err
		}
		h := hashRow(row)
		dup := false
		for _, prev := range d.seen[h] {
			if rowsEqual(prev, row) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		d.seen[h] = append(d.seen[h], row)
		return row, nil
	}
}

// Close implements Operator.
func (d *Distinct) Close() error {
	d.seen = nil
	return d.Input.Close()
}

// Describe implements Operator.
func (d *Distinct) Describe() string { return "Distinct" }

// Children implements Operator.
func (d *Distinct) Children() []Operator { return []Operator{d.Input} }

func hashRow(row sqltypes.Row) uint64 {
	h := uint64(1469598103934665603)
	for _, d := range row {
		h = h*1099511628211 ^ d.Hash()
	}
	return h
}

func rowsEqual(a, b sqltypes.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sqltypes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
