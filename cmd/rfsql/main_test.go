package main

import (
	"bufio"
	"os"
	"strings"
	"testing"

	"rfview/internal/engine"
)

func newTestShell() (*shell, *strings.Builder) {
	var out strings.Builder
	e := engine.New(engine.DefaultOptions())
	return &shell{eng: e, sess: e.NewSession(), out: &out}, &out
}

func TestShellRunScript(t *testing.T) {
	sh, out := newTestShell()
	err := sh.runScript(`
	  CREATE TABLE t (a INTEGER, b VARCHAR(5));
	  INSERT INTO t VALUES (1, 'x'), (2, NULL);
	  SELECT a, b FROM t ORDER BY a;
	`)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"ok (0 rows affected)", "ok (2 rows affected)", "(2 rows)", "NULL"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// Table layout: header separator present.
	if !strings.Contains(got, " a | b") || !strings.Contains(got, " - + -") {
		t.Fatalf("table rendering off:\n%s", got)
	}
}

func TestShellScriptErrorPropagates(t *testing.T) {
	sh, _ := newTestShell()
	if err := sh.runScript(`SELECT * FROM missing;`); err == nil {
		t.Fatal("script error must propagate")
	}
}

func TestShellExecuteReportsErrors(t *testing.T) {
	sh, out := newTestShell()
	sh.execute(`SELECT * FROM missing;`)
	if !strings.Contains(out.String(), "error:") {
		t.Fatalf("interactive errors must print, got:\n%s", out.String())
	}
}

func TestShellMetaCommands(t *testing.T) {
	sh, out := newTestShell()
	if err := sh.runScript(`
	  CREATE TABLE seq (pos INTEGER, val INTEGER);
	  INSERT INTO seq VALUES (1, 1), (2, 2), (3, 3);
	  CREATE MATERIALIZED VIEW mv AS
	    SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS val FROM seq;
	`); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if quit := sh.meta(".tables"); quit {
		t.Fatal(".tables must not quit")
	}
	if !strings.Contains(out.String(), "seq") || strings.Contains(out.String(), "__mv_") {
		t.Fatalf(".tables output: %s", out.String())
	}
	out.Reset()
	sh.meta(".views")
	if !strings.Contains(out.String(), "mv — sequence (1,1) over seq(val) agg SUM") {
		t.Fatalf(".views output: %s", out.String())
	}
	out.Reset()
	sh.meta(".help")
	if !strings.Contains(out.String(), ".explain") {
		t.Fatalf(".help output: %s", out.String())
	}
	out.Reset()
	sh.meta(".nonsense")
	if !strings.Contains(out.String(), "unknown meta command") {
		t.Fatalf("unknown meta output: %s", out.String())
	}
	if !sh.meta(".quit") {
		t.Fatal(".quit must signal exit")
	}
	sh.meta(".explain on")
	if !sh.explain {
		t.Fatal(".explain on must toggle")
	}
	out.Reset()
	sh.execute(`SELECT pos FROM seq;`)
	if !strings.Contains(out.String(), "SeqScan") {
		t.Fatalf("explain-mode execute must print the plan: %s", out.String())
	}
	sh.meta(".explain off")
	if sh.explain {
		t.Fatal(".explain off must toggle")
	}
}

func TestShellREPLFlow(t *testing.T) {
	sh, out := newTestShell()
	input := strings.Join([]string{
		"CREATE TABLE t (a INTEGER);",
		"INSERT INTO t", // continuation line
		"VALUES (42);",
		"SELECT a FROM t;",
		".quit",
	}, "\n") + "\n"
	sh.repl(bufio.NewReader(strings.NewReader(input)))
	got := out.String()
	if !strings.Contains(got, "...>") {
		t.Fatalf("continuation prompt missing:\n%s", got)
	}
	if !strings.Contains(got, "42") {
		t.Fatalf("query result missing:\n%s", got)
	}
}

// TestDemoScript replays the shipped demo script end to end.
func TestDemoScript(t *testing.T) {
	data, err := os.ReadFile("../../scripts/demo.sql")
	if err != nil {
		t.Fatal(err)
	}
	sh, out := newTestShell()
	if err := sh.runScript(string(data)); err != nil {
		t.Fatalf("demo script failed: %v\noutput so far:\n%s", err, out.String())
	}
	got := out.String()
	// Spot checks: the complete-view dump (positions 0…12 after the append),
	// and the running sum over grouped sales (30, 100, 150).
	for _, want := range []string{"(13 rows)", "running", "150"} {
		if !strings.Contains(got, want) {
			t.Fatalf("demo output missing %q:\n%s", want, got)
		}
	}
}
