package spill

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// --------------------------------------------------------------------------
// Budget
// --------------------------------------------------------------------------

func TestBudgetChargeReleaseForce(t *testing.T) {
	b := NewBudget(100)
	if !b.Charge(60) {
		t.Fatal("first charge within limit refused")
	}
	if b.Charge(50) {
		t.Fatal("charge past the limit accepted")
	}
	if b.Used() != 60 {
		t.Fatalf("failed charge changed usage: %d", b.Used())
	}
	b.Force(50) // overdraft
	if b.Used() != 110 {
		t.Fatalf("Force not accounted: %d", b.Used())
	}
	b.Release(110)
	if b.Used() != 0 {
		t.Fatalf("usage after full release: %d", b.Used())
	}
	b.Release(10) // over-release clamps
	if b.Used() != 0 {
		t.Fatalf("over-release went negative: %d", b.Used())
	}
}

func TestBudgetNilAndUnlimited(t *testing.T) {
	var nilB *Budget
	if !nilB.Charge(1 << 40) {
		t.Fatal("nil budget refused a charge")
	}
	nilB.Force(1)
	nilB.Release(1)
	if nilB.Limit() != 0 || nilB.Used() != 0 {
		t.Fatal("nil budget reported nonzero state")
	}
	u := NewBudget(0)
	if !u.Charge(1 << 40) {
		t.Fatal("unlimited budget refused a charge")
	}
	if u.Used() != 1<<40 {
		t.Fatal("unlimited budget must still account usage")
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"0":      0,
		"123":    123,
		"64KiB":  64 << 10,
		"64kib":  64 << 10,
		"2MiB":   2 << 20,
		"1GiB":   1 << 30,
		"64K":    64 << 10,
		"2M":     2 << 20,
		"1G":     1 << 30,
		"5KB":    5000,
		"5MB":    5000000,
		"1GB":    1000000000,
		"100B":   100,
		" 7KiB ": 7 << 10,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil || got != want {
			t.Fatalf("ParseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "-5", "-1KiB", "1.5MiB"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Fatalf("ParseBytes(%q) did not fail", bad)
		}
	}
}

// --------------------------------------------------------------------------
// Run framing
// --------------------------------------------------------------------------

func TestRunFramingRoundTrip(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "run-*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := newRunWriter(f)
	type rec struct{ key, payload string }
	recs := []rec{
		{"", ""}, // empty key and payload must frame (uvarint keylen keeps len >= 1)
		{"a", "payload-a"},
		{strings.Repeat("k", 3000), strings.Repeat("v", 70000)},
		{"\x00\x01\xff", "\x00"},
	}
	for _, r := range recs {
		if err := w.append([]byte(r.key), []byte(r.payload)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.finish(); err != nil {
		t.Fatal(err)
	}
	rr := newRunReader(f)
	for i, want := range recs {
		key, payload, err := rr.next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if string(key) != want.key || string(payload) != want.payload {
			t.Fatalf("record %d mismatch: key %d bytes, payload %d bytes", i, len(key), len(payload))
		}
	}
	if _, _, err := rr.next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestRunReaderDetectsCorruption(t *testing.T) {
	build := func(corrupt func([]byte) []byte) error {
		f, err := os.CreateTemp(t.TempDir(), "run-*")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		w := newRunWriter(f)
		if err := w.append([]byte("key"), []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if err := w.finish(); err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(f)
		if err != nil {
			t.Fatal(err)
		}
		data = corrupt(data)
		if err := f.Truncate(0); err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		rr := newRunReader(f)
		for {
			if _, _, err := rr.next(); err != nil {
				if err == io.EOF {
					return nil
				}
				return err
			}
		}
	}
	if err := build(func(b []byte) []byte { return b }); err != nil {
		t.Fatalf("clean run read failed: %v", err)
	}
	if err := build(func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }); err == nil {
		t.Fatal("flipped payload byte not detected")
	} else if !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("want CRC error, got %v", err)
	}
	if err := build(func(b []byte) []byte { return b[:len(b)-3] }); err == nil {
		t.Fatal("truncated record not detected")
	}
	if err := build(func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[0:4], uint32(maxSpillRecordBytes+1))
		return b
	}); err == nil {
		t.Fatal("implausible length not detected")
	}
}

// --------------------------------------------------------------------------
// Env hygiene
// --------------------------------------------------------------------------

func TestEnvSweepsStaleRunsOnce(t *testing.T) {
	dir := t.TempDir()
	// A dead process left orphans; unrelated files must survive.
	for _, n := range []string{"run-123-1.spill", "run-999-7.spill"} {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("stale"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	keep := filepath.Join(dir, "wal-0001.seg")
	if err := os.WriteFile(keep, []byte("wal"), 0o600); err != nil {
		t.Fatal(err)
	}
	env := NewEnv(dir)
	n, err := env.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("swept %d stale runs, want 2", n)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("sweep removed an unrelated file: %v", err)
	}
	// New files created by this env must NOT be swept by later Dir calls.
	f, err := env.CreateRun()
	if err != nil {
		t.Fatal(err)
	}
	name := f.Name()
	f.Close()
	if _, err := env.Dir(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(name); err != nil {
		t.Fatalf("our own run file disappeared: %v", err)
	}
	if err := env.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(name); !os.IsNotExist(err) {
		t.Fatal("Close left a run file behind")
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("Close removed an unrelated file: %v", err)
	}
}

func TestEnvPrivateDirRemovedOnClose(t *testing.T) {
	env := NewEnv("")
	f, err := env.CreateRun()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Dir(f.Name())
	f.Close()
	if err := env.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("private spill dir survived Close")
	}
	if err := env.Close(); err != nil {
		t.Fatal("Close not idempotent")
	}
	if _, err := env.CreateRun(); err == nil {
		t.Fatal("CreateRun after Close succeeded")
	}
}

// TestKillMidSpillLeavesNoOrphans simulates a process dying mid-spill: runs
// are flushed and simply abandoned (no Close), as after a kill -9. The next
// owner of the directory must sweep them all.
func TestKillMidSpillLeavesNoOrphans(t *testing.T) {
	dir := t.TempDir()
	env := NewEnv(dir)
	cfg := &Config{Budget: NewBudget(256), Env: env, MinRunRows: 4}
	s := NewSorter(context.Background(), cfg)
	for i := 0; i < 200; i++ {
		if err := s.Add([]byte(fmt.Sprintf("key-%04d", i)), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	// No Finish, no Close: the "process" dies here.
	ents, _ := os.ReadDir(dir)
	orphans := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), runFilePrefix) {
			orphans++
		}
	}
	if orphans == 0 {
		t.Fatal("test setup: nothing spilled before the simulated kill")
	}
	// Recovery: a fresh env (new process) sweeps the directory.
	env2 := NewEnv(dir)
	n, err := env2.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if n != orphans {
		t.Fatalf("swept %d, want %d", n, orphans)
	}
	ents, _ = os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), runFilePrefix) {
			t.Fatalf("orphan survived recovery: %s", e.Name())
		}
	}
}

// TestKillWithHeapFilesLeavesNoOrphans simulates a SIGKILL'd server that had
// paged tables: heap files are created and abandoned without Close. The next
// owner of the directory must sweep them alongside stale run files, and must
// leave unrelated files alone.
func TestKillWithHeapFilesLeavesNoOrphans(t *testing.T) {
	dir := t.TempDir()
	env := NewEnv(dir)
	for i, tag := range []string{"seq", "orders", "weird/ta g!"} {
		f, err := env.CreateHeap(tag)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte("pagedata"), int64(i)*8192); err != nil {
			t.Fatal(err)
		}
		f.Close() // file closed, never removed: the "process" dies here
	}
	if f, err := env.CreateRun(); err != nil {
		t.Fatal(err)
	} else {
		f.Close()
	}
	keep := filepath.Join(dir, "keep.db")
	if err := os.WriteFile(keep, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}

	env2 := NewEnv(dir)
	n, err := env2.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("swept %d files, want 3 heap + 1 run", n)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), heapFilePrefix) || strings.HasPrefix(e.Name(), runFilePrefix) {
			t.Fatalf("orphan survived recovery: %s", e.Name())
		}
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("sweep removed an unrelated file: %v", err)
	}
}

// TestEnvCloseRemovesHeapFiles checks a clean shutdown leaves no heap files
// in a shared directory.
func TestEnvCloseRemovesHeapFiles(t *testing.T) {
	dir := t.TempDir()
	env := NewEnv(dir)
	f, err := env.CreateHeap("seq")
	if err != nil {
		t.Fatal(err)
	}
	name := f.Name()
	f.Close()
	if err := env.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(name); !os.IsNotExist(err) {
		t.Fatalf("heap file %s survived Close", name)
	}
	if _, err := env.CreateHeap("seq"); err == nil {
		t.Fatal("CreateHeap after Close succeeded")
	}
}

// --------------------------------------------------------------------------
// Sorter
// --------------------------------------------------------------------------

type testRec struct {
	key     []byte
	payload []byte
	seq     int // insertion order, to verify stability
}

// runSorter pushes recs through a Sorter and drains the iterator.
func runSorter(t *testing.T, cfg *Config, recs []testRec) []testRec {
	t.Helper()
	s := NewSorter(context.Background(), cfg)
	defer s.Close()
	for _, r := range recs {
		if err := s.Add(r.key, r.payload); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out []testRec
	for {
		key, payload, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, testRec{key: append([]byte(nil), key...), payload: append([]byte(nil), payload...)})
	}
	return out
}

// refSort is the in-memory reference: stable sort by key bytes.
func refSort(recs []testRec) []testRec {
	out := append([]testRec(nil), recs...)
	sort.SliceStable(out, func(i, j int) bool { return bytes.Compare(out[i].key, out[j].key) < 0 })
	return out
}

// TestSorterMatchesInMemoryReference is the external-merge property test:
// random records under random budgets (including 0 = unlimited and huge)
// must come back byte-identical — keys, payloads, and tie order — to a
// stable in-memory sort.
func TestSorterMatchesInMemoryReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20020301))
	budgets := []int64{0, 1, 64, 512, 4 << 10, 1 << 30}
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(800)
		recs := make([]testRec, n)
		for i := range recs {
			// Few distinct keys → many ties → stability is actually exercised.
			// NULL-heavy orderings at the executor level produce the encoded
			// NULL tag 0x00; the empty and 0x00-prefixed keys here cover the
			// same byte shapes.
			keyLen := rng.Intn(12)
			key := make([]byte, keyLen)
			for j := range key {
				key[j] = byte(rng.Intn(4))
			}
			recs[i] = testRec{key: key, payload: binary.AppendUvarint(nil, uint64(i)), seq: i}
		}
		want := refSort(recs)
		budget := budgets[trial%len(budgets)]
		cfg := &Config{Budget: NewBudget(budget), Env: NewEnv(t.TempDir()), Stats: &Stats{}, MinRunRows: 8}
		got := runSorter(t, cfg, recs)
		if len(got) != len(want) {
			t.Fatalf("trial %d budget=%d: %d records out, want %d", trial, budget, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i].key, want[i].key) || !bytes.Equal(got[i].payload, want[i].payload) {
				t.Fatalf("trial %d budget=%d: record %d differs (key %x vs %x, payload %x vs %x)",
					trial, budget, i, got[i].key, want[i].key, got[i].payload, want[i].payload)
			}
		}
		if used := cfg.Budget.Used(); used != 0 {
			t.Fatalf("trial %d budget=%d: %d bytes still charged after Close", trial, budget, used)
		}
	}
}

// TestSorterMultiPassMerge forces more runs than MaxFanIn so intermediate
// merge passes execute, and verifies order, stability, and stats.
func TestSorterMultiPassMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 5000
	recs := make([]testRec, n)
	for i := range recs {
		key := []byte(fmt.Sprintf("%03d", rng.Intn(50)))
		recs[i] = testRec{key: key, payload: binary.AppendUvarint(nil, uint64(i)), seq: i}
	}
	stats := &Stats{}
	cfg := &Config{Budget: NewBudget(512), Env: NewEnv(t.TempDir()), Stats: stats, MinRunRows: 16, MaxFanIn: 3}
	got := runSorter(t, cfg, recs)
	want := refSort(recs)
	for i := range want {
		if !bytes.Equal(got[i].key, want[i].key) || !bytes.Equal(got[i].payload, want[i].payload) {
			t.Fatalf("record %d differs after multi-pass merge", i)
		}
	}
	if stats.Runs.Load() <= 3 {
		t.Fatalf("want many runs, got %d", stats.Runs.Load())
	}
	if stats.Merges.Load() < 2 {
		t.Fatalf("want intermediate merge passes, got %d merges", stats.Merges.Load())
	}
	if stats.Spills.Load() != 1 {
		t.Fatalf("one sorter spilled, Spills = %d", stats.Spills.Load())
	}
	if stats.RunBytes.Load() == 0 {
		t.Fatal("RunBytes not counted")
	}
}

// TestSorterCancelMidMerge cancels the context between Finish and the merge
// drain: Next must fail with the context error and Close must release every
// charge and remove every file.
func TestSorterCancelMidMerge(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	budget := NewBudget(512)
	cfg := &Config{Budget: budget, Env: NewEnv(dir), Stats: &Stats{}, MinRunRows: 8}
	s := NewSorter(ctx, cfg)
	for i := 0; i < 4000; i++ {
		if err := s.Add([]byte(fmt.Sprintf("k%05d", i)), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	var nexts int
	for {
		_, _, err = it.Next()
		if err != nil {
			break
		}
		nexts++
		if nexts > 100000 {
			t.Fatal("iterator never observed cancellation")
		}
	}
	if err == io.EOF {
		t.Fatal("merge drained to EOF despite cancelled context")
	}
	if ctx.Err() == nil || !strings.Contains(err.Error(), ctx.Err().Error()) {
		t.Fatalf("want context error, got %v", err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if used := budget.Used(); used != 0 {
		t.Fatalf("%d bytes still charged after cancel+close", used)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), runFilePrefix) {
			t.Fatalf("run file %s survived cancel+close", e.Name())
		}
	}
}

// TestSorterAbortReleasesEverything covers the abort path: Close without
// Finish frees the budget and the run files.
func TestSorterAbortReleasesEverything(t *testing.T) {
	dir := t.TempDir()
	budget := NewBudget(256)
	cfg := &Config{Budget: budget, Env: NewEnv(dir), MinRunRows: 4}
	s := NewSorter(context.Background(), cfg)
	for i := 0; i < 500; i++ {
		if err := s.Add([]byte{byte(i)}, []byte("p")); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Spilled() {
		t.Fatal("test setup: sorter did not spill")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if budget.Used() != 0 {
		t.Fatalf("%d bytes still charged after abort", budget.Used())
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), runFilePrefix) {
			t.Fatalf("run file %s survived abort", e.Name())
		}
	}
}
