// View caching: the warehouse scenario of §3 — a system that caches one
// materialized reporting-function view and answers a stream of window
// queries with *different* windows from it, instead of recomputing each from
// raw data.
//
// The example materializes x̃ = (2,1) over a 4000-row sequence and then
// answers a batch of queries (wider, narrower, one-sided windows) twice:
// once natively from raw data and once derived from the view, comparing
// results and wall-clock times for each derivation strategy.
//
// Run with: go run ./examples/viewcache
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"rfview"
)

const n = 1200

func main() {
	ctx := context.Background()
	db := rfview.OpenDefault()
	loadSequence(ctx, db)
	if _, err := db.ExecContext(ctx, `CREATE MATERIALIZED VIEW matseq AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val
	  FROM seq`); err != nil {
		log.Fatal(err)
	}

	queries := []struct {
		name string
		sql  string
	}{
		{"ỹ=(3,1) — the paper's Fig. 6 pair", win(3, 1)},
		{"ỹ=(3,2) — double-sided extension", win(3, 2)},
		{"ỹ=(1,1) — narrower (MinOA only)", win(1, 1)},
		{"ỹ=(0,6) — prospective weekly", win(0, 6)},
		{"ỹ=(2,1) — exact view match", win(2, 1)},
	}

	fmt.Printf("sequence of %d rows; materialized view x̃=(2,1)\n\n", n)
	fmt.Printf("%-36s %12s %12s %12s  %s\n", "query", "native", "derived", "cost ratio", "strategy")
	for _, q := range queries {
		// Native: ignore the view.
		eng := db.Engine()
		opts := eng.Opts
		opts.UseMatViews = false
		eng.Opts = opts
		tn, native := timed(ctx, db, q.sql)

		// Derived: strategy picked automatically.
		opts.UseMatViews = true
		opts.Strategy = rfview.StrategyAuto
		opts.Form = rfview.FormUnion // hash-join friendly (see EXPERIMENTS.md)
		eng.Opts = opts
		td, derived := timed(ctx, db, q.sql)

		if !sameRows(native.Rows, derived.Rows) {
			log.Fatalf("%s: derived result differs from native", q.name)
		}
		strategy := "native (no rewrite)"
		if derived.Derivation != nil {
			strategy = fmt.Sprintf("%s/%s from %s", derived.Derivation.Strategy,
				derived.Derivation.Form, derived.Derivation.View.Name)
		}
		fmt.Printf("%-36s %12s %12s %11.2fx  %s\n",
			q.name, tn.Round(time.Microsecond), td.Round(time.Microsecond),
			float64(td)/float64(tn), strategy)
	}
	fmt.Println("\nAll derived results verified against native evaluation.")
	fmt.Println("Exact matches answer straight from the view. The MaxOA/MinOA patterns")
	fmt.Println("trade raw-data access for self-join work over the view — costly in")
	fmt.Println("wall-clock (the paper reports hundreds of seconds at 3000–5000 rows,")
	fmt.Println("\"not advisable for large sequences\", §7) but the only option when the")
	fmt.Println("raw data is unavailable and only the view is cached (§3).")
}

func win(l, h int) string {
	return fmt.Sprintf(`SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN %d PRECEDING AND %d FOLLOWING) AS w FROM seq`, l, h)
}

func timed(ctx context.Context, db *rfview.DB, sql string) (time.Duration, *rfview.Result) {
	start := time.Now()
	res, err := db.QueryContext(ctx, sql)
	if err != nil {
		log.Fatal(err)
	}
	return time.Since(start), res
}

func sameRows(a, b []rfview.Row) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[int64]float64, len(a))
	for _, r := range a {
		m[r[0].Int()] = r[1].Float()
	}
	for _, r := range b {
		v, ok := m[r[0].Int()]
		if !ok || v-r[1].Float() > 1e-6 || r[1].Float()-v > 1e-6 {
			return false
		}
	}
	return true
}

func loadSequence(ctx context.Context, db *rfview.DB) {
	if _, err := db.ExecContext(ctx, `CREATE TABLE seq (pos INTEGER, val INTEGER)`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.ExecContext(ctx, `CREATE UNIQUE INDEX seq_pk ON seq (pos)`); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for lo := 1; lo <= n; lo += 1000 {
		hi := lo + 999
		if hi > n {
			hi = n
		}
		var b strings.Builder
		b.WriteString("INSERT INTO seq VALUES ")
		for i := lo; i <= hi; i++ {
			if i > lo {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d)", i, rng.Intn(500))
		}
		if _, err := db.ExecContext(ctx, b.String()); err != nil {
			log.Fatal(err)
		}
	}
}
