package rfview_test

import (
	"math"
	"testing"

	"rfview"
)

// TestFacadeSQL exercises the public DB surface end to end.
func TestFacadeSQL(t *testing.T) {
	db := rfview.OpenDefault()
	if _, err := db.ExecAll(`
	  CREATE TABLE seq (pos INTEGER, val INTEGER);
	  INSERT INTO seq VALUES (1,1),(2,2),(3,3),(4,4),(5,5);
	  CREATE MATERIALIZED VIEW mv AS
	    SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS val FROM seq;
	`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS w FROM seq ORDER BY pos`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Derivation == nil {
		t.Fatal("expected the view to answer the query")
	}
	want := []int64{3, 6, 10, 14, 12}
	for i, r := range res.Rows {
		if r[1].Float() != float64(want[i]) {
			t.Fatalf("row %d = %v, want %d", i, r, want[i])
		}
	}
	if db.Engine() == nil {
		t.Fatal("Engine() must expose the engine")
	}
}

// TestFacadeAlgebra exercises the re-exported sequence algebra.
func TestFacadeAlgebra(t *testing.T) {
	raw := []float64{5, 1, 4, 2, 8, 3, 9, 7}
	x, err := rfview.SeqCompute(raw, rfview.Sliding(2, 1), rfview.Sum)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := rfview.SeqComputeNaive(raw, rfview.Sliding(2, 1), rfview.Sum)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= len(raw); k++ {
		if x.At(k) != naive.At(k) {
			t.Fatalf("pipelined != naive at %d", k)
		}
	}
	for _, derive := range []func(*rfview.Sequence, rfview.Window) (*rfview.Sequence, error){
		rfview.SeqDerive, rfview.SeqMaxOA, rfview.SeqMinOA,
	} {
		y, err := derive(x, rfview.Sliding(3, 2))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := rfview.SeqComputeNaive(raw, rfview.Sliding(3, 2), rfview.Sum)
		for k := 1; k <= len(raw); k++ {
			if math.Abs(y.At(k)-want.At(k)) > 1e-9 {
				t.Fatalf("derived != recomputed at %d", k)
			}
		}
	}
	back, err := rfview.SeqReconstructRaw(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		if math.Abs(back[i]-raw[i]) > 1e-9 {
			t.Fatalf("raw reconstruction at %d", i)
		}
	}
	m, err := rfview.NewMaintainer(raw, rfview.Sliding(1, 1), rfview.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(3, 100); err != nil {
		t.Fatal(err)
	}
	if m.Seq().At(3) != 1+100+2 {
		t.Fatalf("maintained value = %v", m.Seq().At(3))
	}
}

// TestFacadeReporting exercises the §6 reporting-sequence exports.
func TestFacadeReporting(t *testing.T) {
	pf, err := rfview.NewPosFunc(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	parts := map[rfview.PartitionKey][]float64{
		"jan": {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
		"feb": {2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2},
	}
	rs, err := rfview.NewReportingSequence(pf, rfview.Sliding(2, 1), rfview.Sum, parts)
	if err != nil {
		t.Fatal(err)
	}
	red, err := rfview.OrderingReduction(rs, 1, rfview.Sliding(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	// jan blocks: 1+2+3+4=10, 5+6+7+8=26, 9+10+11+12=42; (1,0) windows:
	// 10, 36, 68.
	for b, want := range map[int]float64{1: 10, 2: 36, 3: 68} {
		got, ok := red.At("jan", b)
		if !ok || got != want {
			t.Fatalf("block %d = (%v,%v), want %v", b, got, ok, want)
		}
	}
	merged, err := rfview.PartitioningReduction(rs, rfview.PartitionMerge{"q1": {"jan", "feb"}}, rfview.Sliding(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Position 13 in the merged partition is feb's first value; its window
	// spans jan's tail: 11 + 12 + 2 + 2 = 27.
	got, ok := merged.At("q1", 13)
	if !ok || got != 27 {
		t.Fatalf("merged at 13 = (%v,%v), want 27", got, ok)
	}
}
