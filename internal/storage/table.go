// Package storage implements the physical layer of the rfview engine:
// in-memory multi-version heap tables addressed by row id, plus ordered
// (B+tree) and hash indexes over arbitrary column prefixes. The evaluation
// in the paper hinges on exactly this distinction — Table 1 compares the
// self-join simulation of reporting functions with and without an index on
// the sequence position — so the physical layer keeps the two access paths
// explicit.
//
// Concurrency model (MVCC): every row version is an immutable payload plus
// two atomic epoch stamps (begin/end) from the table's commit clock. Readers
// never lock — they copy the slot-directory header under a microsecond
// read-lock and then filter versions against an immutable txn.Snapshot using
// only atomic loads. Writers take the table mutex only for structural
// changes (appending a version, maintaining indexes, checking uniqueness);
// claiming an existing version's end stamp is a lock-free CAS, which is also
// where write-write conflicts are detected (first-updater-wins). Index
// entries are inserted when a version is created and never removed (except
// by DropIndex), so probes filter by visibility exactly like scans.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	rferrors "rfview/errors"
	"rfview/internal/sqltypes"
	"rfview/internal/txn"
)

// RowID identifies a row version within one table for the lifetime of the
// table. Row ids are never reused; an UPDATE creates a new version under a
// new id and ends the old one.
type RowID int64

// slot is one immutable row version with its visibility stamps. The payload
// lives either inline (resident tables: row) or in the table's paged heap
// (paged tables: loc). The stamps always stay resident and mutable — they
// are committed/aborted/claimed in place — which is why they live in the
// slot directory rather than the page payload: pages hold only immutable
// encoded rows, so visibility filtering happens before any page is touched
// and invisible versions are never decoded.
type slot struct {
	row   sqltypes.Row  // resident tables only
	loc   recLoc        // paged tables only
	begin atomic.Uint64 // epoch, or pending stamp, or txn.Infinity = aborted
	end   atomic.Uint64 // txn.Infinity = live, epoch or pending stamp otherwise
}

// Table is an append-only heap of row versions. It knows nothing about
// column names or types — the catalog layer owns schema; the storage layer
// owns bytes (here: datums).
type Table struct {
	mu      sync.RWMutex
	slots   []*slot
	indexes []*IndexHandle

	// heap, when non-nil, holds the encoded row payloads in slotted pages
	// cached by a shared buffer pool; slots then carry locations instead of
	// rows. A nil heap keeps payloads resident in the slots (library/test
	// mode, and the differential oracle's reference configuration).
	heap *tableHeap

	clock *txn.Clock
	live  atomic.Int64
	// version counts committed mutations (inserts, updates, deletes). Cached
	// query plans record the versions of every table they read and
	// revalidate on reuse, so any mutation — including materialized-view
	// refreshes, which rewrite the view's backing table — invalidates
	// dependent plans. Transactional writes bump it at commit publication,
	// never while pending.
	version atomic.Uint64
}

// IndexHandle couples an index with the column positions it covers so the
// table can maintain it on every mutation.
type IndexHandle struct {
	Name   string
	Cols   []int // column ordinals of the indexed key, in index order
	Unique bool
	Idx    Index
}

// NewTable returns an empty heap table with a private commit clock, for
// standalone (library/test) use. Tables created through the catalog share
// the engine's clock via NewTableWithClock.
func NewTable() *Table { return NewTableWithClock(txn.NewClock()) }

// NewTableWithClock returns an empty heap table stamping versions from the
// given clock. The immediate (non-transactional) mutation methods tick the
// clock directly, so on a shared clock they must be serialized with every
// transactional committer — in the engine both run under its write mutex.
func NewTableWithClock(c *txn.Clock) *Table { return &Table{clock: c} }

// NewPagedTable returns an empty heap table whose row payloads live in
// slotted pages owned by pager, cached through its buffer pool, and spilled
// to a per-table heap file when evicted. tag names the heap file (usually
// the table name).
func NewPagedTable(c *txn.Clock, pager *Pager, tag string) (*Table, error) {
	h, err := newTableHeap(pager, tag)
	if err != nil {
		return nil, err
	}
	return &Table{clock: c, heap: h}, nil
}

// Paged reports whether this table's payloads live in the buffer pool.
func (t *Table) Paged() bool { return t.heap != nil }

// rowOf materializes the payload of a slot. On a paged table a heap IO or
// decode failure is unrecoverable state corruption on an ephemeral file the
// storage layer itself owns, and the read paths that land here (point
// lookups, index builds) predate paged storage and have no error channel —
// so it panics, Postgres-style, rather than thread errors through every
// probe signature. Scans use Iter, which returns errors properly.
func (t *Table) rowOf(sl *slot) sqltypes.Row {
	if t.heap == nil {
		return sl.row
	}
	row, err := t.heap.read(sl.loc)
	if err != nil {
		panic(fmt.Sprintf("storage: heap read: %v", err))
	}
	return row
}

// Clock returns the commit clock this table stamps versions from.
func (t *Table) Clock() *txn.Clock { return t.clock }

// Len returns the number of live (committed, not ended) rows.
func (t *Table) Len() int { return int(t.live.Load()) }

// Version returns the committed-mutation counter. Two equal readings with no
// interleaved commit guarantee the visible table contents did not change
// between them.
func (t *Table) Version() uint64 { return t.version.Load() }

// BumpVersion advances the mutation counter; the engine calls it during
// commit publication (txn.Bumper).
func (t *Table) BumpVersion() { t.version.Add(1) }

// Latest returns a snapshot seeing everything committed so far.
func (t *Table) Latest() txn.Snapshot { return txn.Snapshot{Epoch: t.clock.Now()} }

// WriteView returns the visibility horizon a transaction's own maintenance
// work uses: everything committed so far plus tx's pending writes. A nil tx
// yields Latest.
func (t *Table) WriteView(tx *txn.Txn) txn.Snapshot {
	if tx == nil {
		return t.Latest()
	}
	return txn.Snapshot{Epoch: t.clock.Now(), TxnID: tx.ID}
}

// view copies the slot-directory header so the caller can iterate without
// holding any lock: existing slots never change identity, and versions
// appended afterwards are invisible to the copied header (they would be
// invisible to the snapshot anyway).
func (t *Table) view() []*slot {
	t.mu.RLock()
	s := t.slots
	t.mu.RUnlock()
	return s
}

func (t *Table) slot(id RowID) *slot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || int(id) >= len(t.slots) {
		return nil
	}
	return t.slots[id]
}

// appendLocked creates a new version; the caller holds t.mu and has already
// passed uniqueness checks. On a paged table the payload is encoded into the
// heap, which can fail on write-back IO.
func (t *Table) appendLocked(row sqltypes.Row, begin uint64) (RowID, *slot, error) {
	sl := &slot{}
	if t.heap != nil {
		loc, err := t.heap.append(row)
		if err != nil {
			return 0, nil, err
		}
		sl.loc = loc
	} else {
		sl.row = row
	}
	sl.begin.Store(begin)
	sl.end.Store(txn.Infinity)
	id := RowID(len(t.slots))
	t.slots = append(t.slots, sl)
	for _, h := range t.indexes {
		h.Idx.Insert(extractKey(row, h.Cols), id)
	}
	return id, sl, nil
}

// checkUnique enforces unique indexes against the would-be row. The caller
// holds t.mu, which serializes all uniqueness decisions: two concurrent
// inserts of the same key cannot both pass, because the second probe sees
// the first one's pending version. txnID 0 means an immediate
// (non-transactional) writer; exclude names a version being replaced by an
// update (-1 for none); snap is the writer's snapshot, which splits the
// committed-live case into a true duplicate (the writer can see the holder)
// and a first-committer-wins conflict (the holder committed after the
// writer's snapshot — retryable, so it must carry the conflict code).
func (t *Table) checkUnique(row sqltypes.Row, txnID uint64, exclude RowID, snap txn.Snapshot) error {
	for _, h := range t.indexes {
		if !h.Unique {
			continue
		}
		key := extractKey(row, h.Cols)
		var dup, conflict bool
		h.Idx.Lookup(key, func(id RowID) bool {
			if id == exclude {
				return true
			}
			sl := t.slots[id]
			b, e := sl.begin.Load(), sl.end.Load()
			if b == txn.Infinity {
				return true // aborted insert, never visible
			}
			if txn.Pending(b) {
				if txnID != 0 && txn.Owner(b) == txnID {
					// Our own pending version: a live duplicate unless this
					// same transaction already ended it (update chains).
					if txn.Pending(e) && txn.Owner(e) == txnID {
						return true
					}
					dup = true
					return false
				}
				conflict = true // someone else's uncommitted insert
				return false
			}
			// Committed version.
			switch {
			case e == txn.Infinity:
				if b > snap.Epoch {
					// Live, but committed after the writer's snapshot: the
					// collision comes from a concurrent commit the writer
					// never saw, so classify it as a conflict, not a
					// duplicate.
					conflict = true
				} else {
					dup = true
				}
				return false
			case txn.Pending(e):
				if txnID != 0 && txn.Owner(e) == txnID {
					return true // we deleted it in this transaction
				}
				conflict = true // someone else is deleting it; may abort
				return false
			default:
				return true // committed-dead version
			}
		})
		if dup {
			return fmt.Errorf("duplicate key %v violates unique index %q", key, h.Name)
		}
		if conflict {
			return rferrors.New(rferrors.CodeConflict,
				"key %v contested by a concurrent transaction on unique index %q", key, h.Name)
		}
	}
	return nil
}

// claimEnd takes ownership of a live version's end stamp for txnID,
// detecting write-write conflicts: if another transaction already ended (or
// is ending) the version, the claim fails with a coded conflict error.
func claimEnd(sl *slot, txnID uint64) error {
	for {
		e := sl.end.Load()
		switch {
		case e == txn.Infinity:
			if sl.end.CompareAndSwap(txn.Infinity, txn.PendingStamp(txnID)) {
				return nil
			}
		case txn.Pending(e) && txnID != 0 && txn.Owner(e) == txnID:
			return rferrors.New(rferrors.CodeInternal, "row version already ended by this transaction")
		default:
			return rferrors.New(rferrors.CodeConflict,
				"write-write conflict: row already updated or deleted by a concurrent transaction")
		}
	}
}

// slotRef is the write-set handle the commit/abort protocol stamps through.
type slotRef struct {
	t *Table
	s *slot
}

// CommitWrite implements txn.SlotRef.
func (r slotRef) CommitWrite(op txn.Op, epoch uint64) {
	switch op {
	case txn.OpInsert:
		r.s.begin.Store(epoch)
		r.t.live.Add(1)
	case txn.OpDelete:
		r.s.end.Store(epoch)
		r.t.live.Add(-1)
	}
}

// AbortWrite implements txn.SlotRef.
func (r slotRef) AbortWrite(op txn.Op) {
	switch op {
	case txn.OpInsert:
		r.s.begin.Store(txn.Infinity) // never visible to any snapshot
	case txn.OpDelete:
		r.s.end.Store(txn.Infinity) // restore liveness
	}
}

// ---------------------------------------------------------------------------
// Immediate (auto-committed per operation) mutations. Each operation commits
// at its own clock tick; on a shared clock the caller must serialize these
// with transactional committers (the engine runs both under its write lock).

// Insert appends a row, maintains every index, and commits it immediately.
// The row is stored as given; callers must not mutate it afterwards.
func (t *Table) Insert(row sqltypes.Row) (RowID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkUnique(row, 0, -1, t.Latest()); err != nil {
		return 0, err
	}
	id, _, err := t.appendLocked(row, t.clock.Tick())
	if err != nil {
		return 0, err
	}
	t.live.Add(1)
	t.version.Add(1)
	return id, nil
}

// Delete ends the live row version under id immediately.
func (t *Table) Delete(id RowID) error {
	sl := t.slot(id)
	if sl == nil || !txn.Visible(sl.begin.Load(), sl.end.Load(), t.Latest()) {
		return fmt.Errorf("delete: row %d does not exist", id)
	}
	if err := claimEnd(sl, 0); err != nil {
		return err
	}
	sl.end.Store(t.clock.Tick())
	t.live.Add(-1)
	t.version.Add(1)
	return nil
}

// Update replaces the row under id immediately: the old version is ended and
// a new version is created under a fresh row id (returned). Indexes gain the
// new version's entries; old entries stay and are filtered by visibility.
func (t *Table) Update(id RowID, row sqltypes.Row) (RowID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || int(id) >= len(t.slots) {
		return 0, fmt.Errorf("update: row %d does not exist", id)
	}
	sl := t.slots[id]
	if !txn.Visible(sl.begin.Load(), sl.end.Load(), t.Latest()) {
		return 0, fmt.Errorf("update: row %d does not exist", id)
	}
	if err := t.checkUnique(row, 0, id, t.Latest()); err != nil {
		return 0, err
	}
	// Append the new version before ending the old one: a heap IO failure
	// then leaves the old version live and the table consistent (the
	// orphaned new payload is unreferenced). The Infinity begin stamp keeps
	// the new version invisible until it is committed below.
	nid, nsl, err := t.appendLocked(row, txn.Infinity)
	if err != nil {
		return 0, err
	}
	if err := claimEnd(sl, 0); err != nil {
		nsl.begin.Store(txn.Infinity) // abort the orphan: never visible
		return 0, err
	}
	e := t.clock.Tick()
	sl.end.Store(e)
	nsl.begin.Store(e)
	t.version.Add(1)
	return nid, nil
}

// ---------------------------------------------------------------------------
// Transactional mutations. Versions are created or ended with pending stamps
// owned by tx; the engine's commit protocol later stamps the whole write-set
// with one epoch (or aborts it). Conflicts surface here, at claim time.

// writable reports whether a version may serve as the target of a
// transactional delete or update: visible in tx's snapshot (the DML case —
// a committed successor version then surfaces as a conflict at claim time)
// or visible at the write view (the commit-time maintenance case, where the
// target may postdate tx's snapshot).
func (t *Table) writable(sl *slot, tx *txn.Txn) bool {
	b, e := sl.begin.Load(), sl.end.Load()
	return txn.Visible(b, e, tx.Snap) || txn.Visible(b, e, t.WriteView(tx))
}

// InsertTx appends a row as a pending version of tx.
func (t *Table) InsertTx(tx *txn.Txn, row sqltypes.Row) (RowID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkUnique(row, tx.ID, -1, tx.Snap); err != nil {
		return 0, err
	}
	id, sl, err := t.appendLocked(row, txn.PendingStamp(tx.ID))
	if err != nil {
		return 0, err
	}
	tx.Record(slotRef{t, sl}, txn.OpInsert)
	tx.Touch(t)
	return id, nil
}

// DeleteTx claims the end of the version under id for tx. The version must
// be visible in tx's snapshot (or at the write view — commit-time view
// maintenance targets backing rows committed after tx began); a version
// already ended by another transaction is a write-write conflict.
func (t *Table) DeleteTx(tx *txn.Txn, id RowID) error {
	sl := t.slot(id)
	if sl == nil || !t.writable(sl, tx) {
		return fmt.Errorf("delete: row %d does not exist", id)
	}
	if err := claimEnd(sl, tx.ID); err != nil {
		return err
	}
	tx.Record(slotRef{t, sl}, txn.OpDelete)
	tx.Touch(t)
	return nil
}

// UpdateTx ends the version under id and creates the replacement as pending
// versions of tx, returning the new version's row id.
func (t *Table) UpdateTx(tx *txn.Txn, id RowID, row sqltypes.Row) (RowID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || int(id) >= len(t.slots) {
		return 0, fmt.Errorf("update: row %d does not exist", id)
	}
	sl := t.slots[id]
	if !t.writable(sl, tx) {
		return 0, fmt.Errorf("update: row %d does not exist", id)
	}
	if err := t.checkUnique(row, tx.ID, id, tx.Snap); err != nil {
		return 0, err
	}
	nid, nsl, err := t.appendLocked(row, txn.PendingStamp(tx.ID))
	if err != nil {
		return 0, err
	}
	if err := claimEnd(sl, tx.ID); err != nil {
		nsl.begin.Store(txn.Infinity) // abort the orphan: never visible
		return 0, err
	}
	tx.Record(slotRef{t, sl}, txn.OpDelete)
	tx.Record(slotRef{t, nsl}, txn.OpInsert)
	tx.Touch(t)
	return nid, nil
}

// ---------------------------------------------------------------------------
// Reads. All lock-free against a snapshot.

// Get returns the row version under id if live at the latest snapshot.
func (t *Table) Get(id RowID) sqltypes.Row { return t.GetAt(id, t.Latest()) }

// GetAt returns the row version under id if visible in s, else nil.
func (t *Table) GetAt(id RowID, s txn.Snapshot) sqltypes.Row {
	sl := t.slot(id)
	if sl == nil || !txn.Visible(sl.begin.Load(), sl.end.Load(), s) {
		return nil
	}
	return t.rowOf(sl)
}

// Scan invokes fn for every row live at the latest snapshot, in row-id
// order, stopping early if fn returns false. fn may mutate the table: the
// iteration runs over a copied directory header and holds no lock.
func (t *Table) Scan(fn func(id RowID, row sqltypes.Row) bool) error {
	return t.ScanAt(t.Latest(), fn)
}

// ScanAt invokes fn for every row version visible in s, in row-id order,
// stopping early if fn returns false. The error is a paged-heap IO or
// decode failure; resident tables never fail.
func (t *Table) ScanAt(s txn.Snapshot, fn func(id RowID, row sqltypes.Row) bool) error {
	it := t.IterAt(s)
	defer it.Close()
	for {
		id, row, err := it.Next()
		if err != nil {
			return err
		}
		if row == nil {
			return nil
		}
		if !fn(id, row) {
			return nil
		}
	}
}

// FirstAt probes an index for the first version under key visible in s.
func (t *Table) FirstAt(h *IndexHandle, key sqltypes.Row, s txn.Snapshot) (RowID, bool) {
	var found RowID
	ok := false
	t.lookupVisible(h, key, s, func(id RowID, _ sqltypes.Row) bool {
		found, ok = id, true
		return false
	})
	return found, ok
}

// LookupAt probes an index and invokes fn for every version under key
// visible in s, stopping early if fn returns false. fn runs without any
// table lock held and may mutate the table.
func (t *Table) LookupAt(h *IndexHandle, key sqltypes.Row, s txn.Snapshot, fn func(id RowID, row sqltypes.Row) bool) {
	t.lookupVisible(h, key, s, fn)
}

// lookupVisible collects the visible matches under the read lock (index
// structures are only safe against concurrent structural writes while
// locked), then hands them to fn unlocked.
func (t *Table) lookupVisible(h *IndexHandle, key sqltypes.Row, s txn.Snapshot, fn func(id RowID, row sqltypes.Row) bool) {
	type match struct {
		id  RowID
		row sqltypes.Row
	}
	var buf [4]match
	matches := buf[:0]
	t.mu.RLock()
	h.Idx.Lookup(key, func(id RowID) bool {
		sl := t.slots[id]
		if txn.Visible(sl.begin.Load(), sl.end.Load(), s) {
			matches = append(matches, match{id, t.rowOf(sl)})
		}
		return true
	})
	t.mu.RUnlock()
	for _, m := range matches {
		if !fn(m.id, m.row) {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Index management.

// AddIndex builds an index over the given column ordinals from the current
// table contents and registers it for maintenance. Every non-aborted version
// is indexed — including pending and dead ones, since open snapshots may
// still see them; probes filter by visibility.
func (t *Table) AddIndex(name string, cols []int, unique bool, ordered bool) (*IndexHandle, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, h := range t.indexes {
		if h.Name == name {
			return nil, fmt.Errorf("index %q already exists", name)
		}
	}
	var idx Index
	if ordered {
		idx = NewBTree()
	} else {
		idx = NewHashIndex()
	}
	h := &IndexHandle{Name: name, Cols: append([]int(nil), cols...), Unique: unique, Idx: idx}
	possiblyLive := func(sl *slot) bool {
		b, e := sl.begin.Load(), sl.end.Load()
		if b == txn.Infinity {
			return false
		}
		return e == txn.Infinity || txn.Pending(e)
	}
	for i, sl := range t.slots {
		b := sl.begin.Load()
		if b == txn.Infinity {
			continue // aborted insert: no snapshot can ever see it
		}
		key := extractKey(t.rowOf(sl), h.Cols)
		if unique && possiblyLive(sl) {
			var dup bool
			idx.Lookup(key, func(prev RowID) bool {
				if possiblyLive(t.slots[prev]) {
					dup = true
					return false
				}
				return true
			})
			if dup {
				return nil, fmt.Errorf("duplicate key %v while building unique index %q", key, name)
			}
		}
		idx.Insert(key, RowID(i))
	}
	t.indexes = append(t.indexes, h)
	return h, nil
}

// DropIndex unregisters an index.
func (t *Table) DropIndex(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, h := range t.indexes {
		if h.Name == name {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("index %q does not exist", name)
}

// Indexes returns the registered index handles.
func (t *Table) Indexes() []*IndexHandle {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]*IndexHandle(nil), t.indexes...)
}

// IndexOn returns the first registered index whose key starts with exactly
// the given column ordinals, or nil.
func (t *Table) IndexOn(cols []int) *IndexHandle {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, h := range t.indexes {
		if len(h.Cols) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if h.Cols[i] != c {
				match = false
				break
			}
		}
		if match {
			return h
		}
	}
	return nil
}

// SortedRowIDs returns the row ids live at the latest snapshot ordered by
// the given columns (ascending, NULLs first); used by operators that need an
// order but have no index. It is O(n log n) against the heap.
func (t *Table) SortedRowIDs(cols []int) []RowID {
	slots := t.view()
	s := t.Latest()
	// Extract the key columns once per row before sorting: on a paged table
	// the comparator must not decode pages O(n log n) times.
	type idKey struct {
		id  RowID
		key sqltypes.Row
	}
	arr := make([]idKey, 0, len(slots))
	for i, sl := range slots {
		if txn.Visible(sl.begin.Load(), sl.end.Load(), s) {
			arr = append(arr, idKey{RowID(i), extractKey(t.rowOf(sl), cols)})
		}
	}
	sort.SliceStable(arr, func(a, b int) bool {
		ka, kb := arr[a].key, arr[b].key
		for c := range cols {
			cmp, err := sqltypes.Compare(ka[c], kb[c])
			if err != nil || cmp == 0 {
				continue
			}
			return cmp < 0
		}
		return false
	})
	ids := make([]RowID, len(arr))
	for i, e := range arr {
		ids[i] = e.id
	}
	return ids
}

func extractKey(row sqltypes.Row, cols []int) sqltypes.Row {
	key := make(sqltypes.Row, len(cols))
	for i, c := range cols {
		key[i] = row[c]
	}
	return key
}

func keysEqual(a, b sqltypes.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sqltypes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
