package storage

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"rfview/internal/sqltypes"
	"rfview/internal/txn"
)

func newPagedTestTable(t *testing.T, capBytes int64) *Table {
	t.Helper()
	p := newTestPager(t, MinPageSize, capBytes, nil)
	tb, err := NewPagedTable(txn.NewClock(), p, "t")
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// collect returns every visible row of tb, re-encoded for byte comparison.
func collect(t *testing.T, tb *Table) [][]byte {
	t.Helper()
	var out [][]byte
	err := tb.Scan(func(id RowID, r sqltypes.Row) bool {
		out = append(out, sqltypes.EncodeRowData(nil, r))
		return true
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}

// TestPagedTableDifferential drives a paged table (2-frame pool, constant
// eviction) and a resident table through the same mutation history and
// requires byte-identical scans after every phase. Rows include strings big
// enough to cross pages and jumbo rows bigger than a whole page.
func TestPagedTableDifferential(t *testing.T) {
	paged := newPagedTestTable(t, 2*MinPageSize)
	resident := NewTable()
	if !paged.Paged() || resident.Paged() {
		t.Fatal("Paged() miswired")
	}

	mkRow := func(i int) sqltypes.Row {
		pad := strings.Repeat(fmt.Sprintf("<%d>", i), i%97)
		if i%53 == 0 {
			pad = strings.Repeat("J", 3*MinPageSize+i) // jumbo: spans pages
		}
		return sqltypes.Row{sqltypes.NewInt(int64(i)), sqltypes.NewString(pad)}
	}

	check := func(phase string) {
		t.Helper()
		got, want := collect(t, paged), collect(t, resident)
		if len(got) != len(want) {
			t.Fatalf("%s: paged has %d rows, resident %d", phase, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("%s: row %d differs", phase, i)
			}
		}
	}

	var pids, rids []RowID
	for i := 0; i < 300; i++ {
		r := mkRow(i)
		pid, err := paged.Insert(r)
		if err != nil {
			t.Fatalf("paged insert %d: %v", i, err)
		}
		rid, err := resident.Insert(r)
		if err != nil {
			t.Fatalf("resident insert %d: %v", i, err)
		}
		pids, rids = append(pids, pid), append(rids, rid)
	}
	check("after inserts")

	for i := 0; i < 300; i += 7 {
		r := mkRow(i + 1000)
		npid, err := paged.Update(pids[i], r)
		if err != nil {
			t.Fatalf("paged update %d: %v", i, err)
		}
		nrid, err := resident.Update(rids[i], r)
		if err != nil {
			t.Fatalf("resident update %d: %v", i, err)
		}
		pids[i], rids[i] = npid, nrid
	}
	check("after updates")

	for i := 3; i < 300; i += 11 {
		if err := paged.Delete(pids[i]); err != nil {
			t.Fatalf("paged delete %d: %v", i, err)
		}
		if err := resident.Delete(rids[i]); err != nil {
			t.Fatalf("resident delete %d: %v", i, err)
		}
	}
	check("after deletes")

	// Point reads through the heap path.
	for i := 0; i < 300; i += 17 {
		if i%11 == 3 {
			continue // deleted above
		}
		pr, rr := paged.Get(pids[i]), resident.Get(rids[i])
		if pr == nil || rr == nil {
			t.Fatalf("Get(%d): paged=%v resident=%v", i, pr, rr)
		}
		if !bytes.Equal(sqltypes.EncodeRowData(nil, pr), sqltypes.EncodeRowData(nil, rr)) {
			t.Fatalf("Get(%d) differs", i)
		}
	}

	if st := paged.heap.pager.Stats(); st.Evictions == 0 {
		t.Fatalf("differential ran without eviction pressure: %+v", st)
	}
}

// TestPagedTableSnapshotScanUnderEviction pins a snapshot, mutates heavily so
// the starved pool churns, and asserts the old snapshot still reads the
// original rows from write-backed pages.
func TestPagedTableSnapshotScanUnderEviction(t *testing.T) {
	tb := newPagedTestTable(t, 2*MinPageSize)
	var ids []RowID
	for i := 0; i < 100; i++ {
		id, err := tb.Insert(sqltypes.Row{sqltypes.NewInt(int64(i)), sqltypes.NewString(strings.Repeat("a", 200))})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	snap := tb.Latest()
	for i, id := range ids {
		if _, err := tb.Update(id, sqltypes.Row{sqltypes.NewInt(int64(i + 5000)), sqltypes.NewString(strings.Repeat("b", 300))}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	err := tb.ScanAt(snap, func(id RowID, r sqltypes.Row) bool {
		if r[0].Int() != int64(n) || len(r[1].Str()) != 200 {
			t.Fatalf("snapshot row %d reads post-snapshot data: %v", n, r[0])
		}
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("snapshot scan saw %d rows, want 100", n)
	}
	if got := tb.Len(); got != 100 {
		t.Fatalf("Len = %d after updates", got)
	}
}

// TestPagedTableIterStats checks the iterator's page accounting: a full scan
// of a multi-page table reports pages touched and, on a starved pool, misses.
func TestPagedTableIterStats(t *testing.T) {
	tb := newPagedTestTable(t, 2*MinPageSize)
	for i := 0; i < 200; i++ {
		if _, err := tb.Insert(sqltypes.Row{sqltypes.NewInt(int64(i)), sqltypes.NewString(strings.Repeat("x", 100))}); err != nil {
			t.Fatal(err)
		}
	}
	it := tb.IterAt(tb.Latest())
	for {
		_, r, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			break
		}
	}
	st := it.Stats()
	it.Close()
	if st.Pages < 2 {
		t.Fatalf("scan of a multi-page table touched %d pages", st.Pages)
	}
	if st.Hits+st.Misses != st.Pages {
		t.Fatalf("stats do not add up: %+v", st)
	}
}
