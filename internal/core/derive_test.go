package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// §3.1 — raw data from a cumulative view: x_k = x̃_k − x̃_{k−1}.
func TestReconstructRawFromCumulative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		raw := randRaw(rng, 1+rng.Intn(50))
		s, err := ComputePipelined(raw, Cumul(), Sum)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReconstructRawFromCumulative(s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range raw {
			if math.Abs(got[i]-raw[i]) > 1e-9 {
				t.Fatalf("trial %d: raw[%d] = %v, want %v", trial, i, got[i], raw[i])
			}
		}
	}
}

func TestReconstructRawFromCumulativeErrors(t *testing.T) {
	s, _ := ComputeNaive([]float64{1, 2}, Sliding(1, 1), Sum)
	if _, err := ReconstructRawFromCumulative(s); err == nil {
		t.Error("expected error for non-cumulative source")
	}
	s, _ = ComputeNaive([]float64{1, 2}, Cumul(), Min)
	if _, err := ReconstructRawFromCumulative(s); err == nil {
		t.Error("expected error for MIN source")
	}
	var nd *ErrNotDerivable
	_, err := ReconstructRawFromCumulative(s)
	if !errors.As(err, &nd) {
		t.Errorf("error should be ErrNotDerivable, got %T", err)
	}
}

// §3.1 Fig. 5 — sliding window from a cumulative view: ỹ_k = x̃_{k+h} − x̃_{k−l−1}.
func TestDeriveSlidingFromCumulative(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		raw := randRaw(rng, 1+rng.Intn(50))
		cum, err := ComputePipelined(raw, Cumul(), Sum)
		if err != nil {
			t.Fatal(err)
		}
		l, h := rng.Intn(4), rng.Intn(4)
		if l+h == 0 {
			l = 2
		}
		got, err := DeriveSlidingFromCumulative(cum, Sliding(l, h))
		if err != nil {
			t.Fatal(err)
		}
		want, err := ComputeNaive(raw, Sliding(l, h), Sum)
		if err != nil {
			t.Fatal(err)
		}
		if !EqualSeq(got, want, 1e-9) {
			t.Fatalf("trial %d: derived (l=%d,h=%d) sequence mismatch", trial, l, h)
		}
	}
}

// The paper's Fig. 5 instance: ỹ = (2,1) from cumulative, ỹ_k = x̃_{k+1} − x̃_{k−3}.
func TestFig5Instance(t *testing.T) {
	raw := []float64{2, 4, 8, 16, 32, 64}
	cum, _ := ComputePipelined(raw, Cumul(), Sum)
	y, err := DeriveSlidingFromCumulative(cum, Sliding(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	for k := y.Lo(); k <= y.Hi(); k++ {
		want := cum.At(k+1) - cum.At(k-3)
		if math.Abs(y.At(k)-want) > 1e-9 {
			t.Fatalf("k=%d: %v != x̃_{k+1}−x̃_{k−3} = %v", k, y.At(k), want)
		}
	}
}

// §3.2 — raw data from a sliding view, explicit and recursive forms.
func TestReconstructRawFromSliding(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(60)
		l, h := rng.Intn(4), rng.Intn(4)
		if l+h == 0 {
			h = 1
		}
		raw := randRaw(rng, n)
		s, err := ComputePipelined(raw, Sliding(l, h), Sum)
		if err != nil {
			t.Fatal(err)
		}
		explicit, err := ReconstructRawFromSliding(s)
		if err != nil {
			t.Fatal(err)
		}
		recursive, err := ReconstructRawFromSlidingRecursive(s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range raw {
			if math.Abs(explicit[i]-raw[i]) > 1e-9 {
				t.Fatalf("trial %d (l=%d,h=%d,n=%d): explicit raw[%d]=%v want %v", trial, l, h, n, i, explicit[i], raw[i])
			}
			if math.Abs(recursive[i]-raw[i]) > 1e-9 {
				t.Fatalf("trial %d (l=%d,h=%d,n=%d): recursive raw[%d]=%v want %v", trial, l, h, n, i, recursive[i], raw[i])
			}
		}
	}
}

func TestReconstructRawFromSlidingCumulativeFallthrough(t *testing.T) {
	raw := []float64{1, 2, 3}
	s, _ := ComputePipelined(raw, Cumul(), Sum)
	got, err := ReconstructRawFromSliding(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		if got[i] != raw[i] {
			t.Fatalf("raw[%d]=%v want %v", i, got[i], raw[i])
		}
	}
}

// RangeSum — the MinOA positive-sequence telescoping.
func TestRangeSum(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(50)
		l, h := rng.Intn(4), rng.Intn(4)
		if l+h == 0 {
			l = 1
		}
		raw := randRaw(rng, n)
		s, err := ComputePipelined(raw, Sliding(l, h), Sum)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 10; rep++ {
			a := rng.Intn(n+10) - 5
			b := a + rng.Intn(n)
			want := 0.0
			for j := a; j <= b; j++ {
				want += rawAt(raw, j)
			}
			got, err := RangeSum(s, a, b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("RangeSum(%d,%d) = %v, want %v (l=%d h=%d n=%d)", a, b, got, want, l, h, n)
			}
		}
	}
	// Empty range and cumulative source.
	s, _ := ComputePipelined([]float64{1, 2, 3}, Cumul(), Sum)
	if v, _ := RangeSum(s, 5, 2); v != 0 {
		t.Error("empty range should sum to 0")
	}
	if v, _ := RangeSum(s, 2, 3); v != 5 {
		t.Errorf("cumulative RangeSum(2,3) = %v, want 5", v)
	}
}

func TestDeriveCumulativeFromSliding(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		raw := randRaw(rng, 1+rng.Intn(40))
		s, _ := ComputePipelined(raw, Sliding(2, 1), Sum)
		got, err := DeriveCumulativeFromSliding(s)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ComputePipelined(raw, Cumul(), Sum)
		if !EqualSeq(got, want, 1e-9) {
			t.Fatalf("trial %d: cumulative-from-sliding mismatch", trial)
		}
	}
}

// ---------------------------------------------------------------------------
// MaxOA
// ---------------------------------------------------------------------------

func TestMaxOAFactors(t *testing.T) {
	f, err := ComputeMaxOAFactors(Sliding(2, 1), Sliding(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's running example: Δl = 1, Δp = 1+l_x+h−Δl = 3, Δl+Δp = W_x = 4.
	if f.DeltaL != 1 || f.DeltaP != 3 || f.Wx != 4 || f.DeltaH != 0 || f.DeltaQ != 4 {
		t.Fatalf("factors = %+v", f)
	}
	if _, err := ComputeMaxOAFactors(Sliding(3, 1), Sliding(2, 1)); err == nil {
		t.Error("Δl < 0 must be rejected")
	}
	if _, err := ComputeMaxOAFactors(Cumul(), Sliding(2, 1)); err == nil {
		t.Error("cumulative source must be rejected")
	}
}

// TestFig6Derivation reproduces the worked example of §3.2/Fig. 6:
// deriving ỹ=(3,1) from x̃=(2,1). The figure lists the first eleven output
// values in terms of x̃; we check the actual sequence values agree with a
// direct computation, and spot-check the pattern ỹ_9 = x̃_9+x̃_5−x̃_4+x̃_1−x̃_0.
func TestFig6Derivation(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	raw := randRaw(rng, 12)
	x, err := ComputePipelined(raw, Sliding(2, 1), Sum)
	if err != nil {
		t.Fatal(err)
	}
	y, err := MaxOA(x, Sliding(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ComputeNaive(raw, Sliding(3, 1), Sum)
	if !EqualSeq(y, want, 1e-9) {
		t.Fatal("MaxOA (3,1) from (2,1) mismatch")
	}
	// Fig. 6's explicit row for position 9.
	fig9 := x.At(9) + x.At(5) - x.At(4) + x.At(1) - x.At(0)
	if math.Abs(y.At(9)-fig9) > 1e-9 {
		t.Fatalf("ỹ_9 = %v, Fig. 6 pattern gives %v", y.At(9), fig9)
	}
	// And position 4: ỹ_4 = x̃_4 + x̃_0.
	if math.Abs(y.At(4)-(x.At(4)+x.At(0))) > 1e-9 {
		t.Fatalf("ỹ_4 = %v, want x̃_4+x̃_0 = %v", y.At(4), x.At(4)+x.At(0))
	}
}

// TestMaxOAExplicit sweeps windows: the explicit form must agree with naive
// recomputation for every Δl, Δh ≥ 0 (including beyond the paper's 2× bound).
func TestMaxOAExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(50)
		lx, hx := rng.Intn(3), rng.Intn(3)
		if lx+hx == 0 {
			lx = 1
		}
		ly := lx + rng.Intn(8)
		hy := hx + rng.Intn(8)
		if ly+hy == 0 {
			hy = 1
		}
		raw := randRaw(rng, n)
		x, err := ComputePipelined(raw, Sliding(lx, hx), Sum)
		if err != nil {
			t.Fatal(err)
		}
		y, err := MaxOA(x, Sliding(ly, hy))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ComputeNaive(raw, Sliding(ly, hy), Sum)
		if !EqualSeq(y, want, 1e-9) {
			t.Fatalf("trial %d: MaxOA (%d,%d)→(%d,%d) n=%d mismatch", trial, lx, hx, ly, hy, n)
		}
	}
}

// TestMaxOARecursive checks the compensation-sequence form within the
// paper's precondition (target at most twice the source window).
func TestMaxOARecursive(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(50)
		lx, hx := rng.Intn(3), rng.Intn(3)
		if lx+hx == 0 {
			hx = 1
		}
		ly := lx + rng.Intn(lx+hx+1) // Δl ≤ l_x+h_x
		hy := hx + rng.Intn(lx+hx+1) // Δh ≤ l_x+h_x
		if ly+hy == 0 {
			continue
		}
		raw := randRaw(rng, n)
		x, _ := ComputePipelined(raw, Sliding(lx, hx), Sum)
		y, err := MaxOARecursive(x, Sliding(ly, hy))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ComputeNaive(raw, Sliding(ly, hy), Sum)
		if !EqualSeq(y, want, 1e-9) {
			t.Fatalf("trial %d: MaxOARecursive (%d,%d)→(%d,%d) n=%d mismatch", trial, lx, hx, ly, hy, n)
		}
	}
}

func TestMaxOARecursivePreconditions(t *testing.T) {
	x, _ := ComputePipelined(make([]float64, 10), Sliding(1, 1), Sum)
	// Δl = 3 > l_x+h_x = 2: the recursive form must refuse.
	if _, err := MaxOARecursive(x, Sliding(4, 1)); err == nil {
		t.Error("expected Δp < 1 rejection")
	}
	// The explicit form handles the same target.
	if _, err := MaxOA(x, Sliding(4, 1)); err != nil {
		t.Errorf("explicit MaxOA should handle Δl beyond 2× bound: %v", err)
	}
	// Δh too large for the recursive form.
	if _, err := MaxOARecursive(x, Sliding(1, 4)); err == nil {
		t.Error("expected Δq < 1 rejection")
	}
}

// TestMaxOACompensationWindow verifies the compensation sequence definition
// (§4.1): z̃_k = x̃_k + x̃_{k−Δl} − ỹ_k equals the (l_x, h_x−Δl) window sum.
func TestMaxOACompensationWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	raw := randRaw(rng, 30)
	lx, hx, ly := 2, 2, 4 // Δl = 2, overlap window (2, 0)
	x, _ := ComputePipelined(raw, Sliding(lx, hx), Sum)
	y, _ := ComputeNaive(raw, Sliding(ly, hx), Sum)
	dl := ly - lx
	for k := 1; k <= 30; k++ {
		z := x.At(k) + x.At(k-dl) - y.At(k)
		want := 0.0
		for j := k - lx; j <= k+hx-dl; j++ {
			want += rawAt(raw, j)
		}
		if math.Abs(z-want) > 1e-9 {
			t.Fatalf("compensation at k=%d: %v != overlap sum %v", k, z, want)
		}
	}
}

// TestMaxOAMinMax — §4.2: ỹ_k = min/max(x̃_{k−Δl}, x̃_{k+Δh}).
func TestMaxOAMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(40)
		lx, hx := rng.Intn(3), rng.Intn(3)
		if lx+hx == 0 {
			lx = 1
		}
		wx := lx + hx + 1
		dl := rng.Intn(wx + 1)
		dh := wx - dl // maximal admissible split keeps Δl+Δh ≤ W_x
		if rng.Intn(2) == 0 && dh > 0 {
			dh--
		}
		ly, hy := lx+dl, hx+dh
		if ly+hy == 0 {
			continue
		}
		agg := Min
		if trial%2 == 1 {
			agg = Max
		}
		raw := randRaw(rng, n)
		x, _ := ComputePipelined(raw, Sliding(lx, hx), agg)
		y, err := MaxOAMinMax(x, Sliding(ly, hy))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ComputeNaive(raw, Sliding(ly, hy), agg)
		if !EqualSeq(y, want, 1e-9) {
			t.Fatalf("trial %d: MaxOAMinMax %v (%d,%d)→(%d,%d) mismatch", trial, agg, lx, hx, ly, hy)
		}
	}
}

func TestMaxOAMinMaxCoverageRejection(t *testing.T) {
	x, _ := ComputePipelined(make([]float64, 10), Sliding(1, 1), Min)
	// Δl+Δh = 4 > W_x = 3: the shifted windows leave a gap.
	if _, err := MaxOAMinMax(x, Sliding(3, 3)); err == nil {
		t.Error("expected coverage rejection for Δl+Δh > W_x")
	}
	// SUM input to the MIN/MAX routine is a usage error.
	xs, _ := ComputePipelined(make([]float64, 10), Sliding(1, 1), Sum)
	if _, err := MaxOAMinMax(xs, Sliding(2, 1)); err == nil {
		t.Error("expected aggregate rejection")
	}
}

// ---------------------------------------------------------------------------
// MinOA
// ---------------------------------------------------------------------------

func TestMinOA(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(50)
		lx, hx := rng.Intn(3), rng.Intn(3)
		if lx+hx == 0 {
			hx = 1
		}
		// MinOA handles arbitrary targets, including narrower windows.
		ly, hy := rng.Intn(8), rng.Intn(8)
		if ly+hy == 0 {
			ly = 1
		}
		raw := randRaw(rng, n)
		x, _ := ComputePipelined(raw, Sliding(lx, hx), Sum)
		y, err := MinOA(x, Sliding(ly, hy))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ComputeNaive(raw, Sliding(ly, hy), Sum)
		if !EqualSeq(y, want, 1e-9) {
			t.Fatalf("trial %d: MinOA (%d,%d)→(%d,%d) n=%d mismatch", trial, lx, hx, ly, hy, n)
		}
	}
}

func TestMinOARejectsMinMax(t *testing.T) {
	x, _ := ComputePipelined(make([]float64, 10), Sliding(1, 1), Min)
	if _, err := MinOA(x, Sliding(2, 1)); err == nil {
		t.Error("MinOA must reject MIN/MAX sequences (§5)")
	}
}

func TestMinOACountDerivation(t *testing.T) {
	// COUNT is the SUM of the all-ones sequence, so both derivation
	// algorithms apply to it (§2.1).
	n := 25
	x, _ := ComputePipelined(make([]float64, n), Sliding(2, 1), Count)
	y, err := MinOA(x, Sliding(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ComputeNaive(make([]float64, n), Sliding(3, 2), Count)
	if !EqualSeq(y, want, 1e-9) {
		t.Fatal("MinOA COUNT derivation mismatch")
	}
	ym, err := MaxOA(x, Sliding(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualSeq(ym, want, 1e-9) {
		t.Fatal("MaxOA COUNT derivation mismatch")
	}
}

// TestMaxOAMinOAAgree — the two algorithms must produce identical sequences
// wherever both apply.
func TestMaxOAMinOAAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(60)
		raw := randRaw(rng, n)
		x, _ := ComputePipelined(raw, Sliding(2, 1), Sum)
		target := Sliding(2+rng.Intn(3), 1+rng.Intn(3))
		a, err := MaxOA(x, target)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MinOA(x, target)
		if err != nil {
			t.Fatal(err)
		}
		if !EqualSeq(a, b, 1e-9) {
			t.Fatalf("trial %d: MaxOA and MinOA disagree for target %v", trial, target)
		}
	}
}

// DeriveAvg: AVG views are answered from SUM+COUNT views.
func TestDeriveAvg(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	raw := randRaw(rng, 30)
	xsum, _ := ComputePipelined(raw, Sliding(2, 1), Sum)
	xcnt, _ := ComputePipelined(raw, Sliding(2, 1), Count)
	ysum, _ := MinOA(xsum, Sliding(4, 2))
	ycnt, _ := MinOA(xcnt, Sliding(4, 2))
	avg, err := DeriveAvg(ysum, ycnt)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ComputeNaive(raw, Sliding(4, 2), Avg)
	if !EqualSeq(avg, want, 1e-9) {
		t.Fatal("derived AVG mismatch")
	}
	if _, err := DeriveAvg(ycnt, ysum); err == nil {
		t.Error("argument order must be (SUM, COUNT)")
	}
	other, _ := ComputePipelined(raw, Sliding(1, 1), Count)
	if _, err := DeriveAvg(ysum, other); err == nil {
		t.Error("window mismatch must be rejected")
	}
}

// Derive — the automatic strategy selector.
func TestDeriveDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	raw := randRaw(rng, 30)
	target := Sliding(3, 2)
	want, _ := ComputeNaive(raw, target, Sum)

	cum, _ := ComputePipelined(raw, Cumul(), Sum)
	got, err := Derive(cum, target)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualSeq(got, want, 1e-9) {
		t.Fatal("Derive from cumulative mismatch")
	}

	sli, _ := ComputePipelined(raw, Sliding(2, 1), Sum)
	got, err = Derive(sli, target)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualSeq(got, want, 1e-9) {
		t.Fatal("Derive from sliding mismatch")
	}

	mn, _ := ComputePipelined(raw, Sliding(2, 1), Min)
	gotMin, err := Derive(mn, target)
	if err != nil {
		t.Fatal(err)
	}
	wantMin, _ := ComputeNaive(raw, target, Min)
	if !EqualSeq(gotMin, wantMin, 1e-9) {
		t.Fatal("Derive MIN mismatch")
	}
}

// Property test: MinOA round-trip over random byte slices via testing/quick.
func TestQuickMinOA(t *testing.T) {
	f := func(vals []int8, lxr, hxr, lyr, hyr uint8) bool {
		if len(vals) == 0 {
			return true
		}
		raw := make([]float64, len(vals))
		for i, v := range vals {
			raw[i] = float64(v)
		}
		lx, hx := int(lxr%3), int(hxr%3)
		if lx+hx == 0 {
			lx = 1
		}
		ly, hy := int(lyr%6), int(hyr%6)
		if ly+hy == 0 {
			hy = 1
		}
		x, err := ComputePipelined(raw, Sliding(lx, hx), Sum)
		if err != nil {
			return false
		}
		y, err := MinOA(x, Sliding(ly, hy))
		if err != nil {
			return false
		}
		want, err := ComputeNaive(raw, Sliding(ly, hy), Sum)
		if err != nil {
			return false
		}
		return EqualSeq(y, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// Property test: MaxOA explicit form via testing/quick.
func TestQuickMaxOA(t *testing.T) {
	f := func(vals []int8, lxr, hxr, dlr, dhr uint8) bool {
		if len(vals) == 0 {
			return true
		}
		raw := make([]float64, len(vals))
		for i, v := range vals {
			raw[i] = float64(v)
		}
		lx, hx := int(lxr%3), int(hxr%3)
		if lx+hx == 0 {
			hx = 1
		}
		ly, hy := lx+int(dlr%6), hx+int(dhr%6)
		if ly+hy == 0 {
			ly = 1
		}
		x, err := ComputePipelined(raw, Sliding(lx, hx), Sum)
		if err != nil {
			return false
		}
		y, err := MaxOA(x, Sliding(ly, hy))
		if err != nil {
			return false
		}
		want, err := ComputeNaive(raw, Sliding(ly, hy), Sum)
		if err != nil {
			return false
		}
		return EqualSeq(y, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxOARecursiveLongSequence guards the iterative compensation walk:
// long sequences must not overflow any stack and must stay exact.
func TestMaxOARecursiveLongSequence(t *testing.T) {
	n := 200000
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = float64((i*7 + 3) % 101)
	}
	x, err := ComputePipelined(raw, Sliding(2, 1), Sum)
	if err != nil {
		t.Fatal(err)
	}
	y, err := MaxOARecursive(x, Sliding(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ComputePipelined(raw, Sliding(3, 2), Sum)
	// Spot-check positions across the range (full EqualSeq would be O(n)
	// anyway, but keep the loop tight).
	for _, k := range []int{1, 2, 100, n / 2, n - 1, n} {
		if math.Abs(y.At(k)-want.At(k)) > 1e-6 {
			t.Fatalf("k=%d: %v want %v", k, y.At(k), want.At(k))
		}
	}
}
