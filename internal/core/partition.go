package core

import (
	"fmt"
	"sort"
)

// PartitionedMaintainer maintains one complete simple sequence per partition
// — §6.2's complete reporting function — under the same density-preserving
// DML a single Maintainer accepts: value updates at any position, appends at
// n_p+1 (including position 1 of a brand-new partition, a partition birth),
// and suffix deletes of position n_p (deleting the last row kills the
// partition). Keys are opaque strings; callers that partition by SQL datums
// key by their rendered form and keep the datum themselves.
type PartitionedMaintainer struct {
	win   Window
	agg   Agg
	parts map[string]*Maintainer
}

// NewPartitionedMaintainer builds an empty partitioned maintainer. Like
// NewMaintainer it rejects AVG: maintain SUM and COUNT views and derive AVG.
func NewPartitionedMaintainer(w Window, agg Agg) (*PartitionedMaintainer, error) {
	if agg == Avg {
		return nil, fmt.Errorf("maintain SUM and COUNT views and derive AVG; AVG alone is not incrementally maintainable")
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &PartitionedMaintainer{win: w, agg: agg, parts: make(map[string]*Maintainer)}, nil
}

// SetPartition (re)materializes one partition's sequence from raw data.
func (pm *PartitionedMaintainer) SetPartition(key string, raw []float64) error {
	m, err := NewMaintainer(raw, pm.win, pm.agg)
	if err != nil {
		return err
	}
	pm.parts[key] = m
	return nil
}

// Partition returns the maintainer for key, or nil when the partition does
// not exist.
func (pm *PartitionedMaintainer) Partition(key string) *Maintainer { return pm.parts[key] }

// N returns the raw cardinality of a partition and whether it exists.
func (pm *PartitionedMaintainer) N(key string) (int, bool) {
	m, ok := pm.parts[key]
	if !ok {
		return 0, false
	}
	return m.Len(), true
}

// Len returns the number of live partitions.
func (pm *PartitionedMaintainer) Len() int { return len(pm.parts) }

// Keys returns the live partition keys in sorted order, for deterministic
// materialization.
func (pm *PartitionedMaintainer) Keys() []string {
	keys := make([]string, 0, len(pm.parts))
	for k := range pm.parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Touched sums the touched-position counters across partitions.
func (pm *PartitionedMaintainer) Touched() int {
	t := 0
	for _, m := range pm.parts {
		t += m.Touched
	}
	return t
}

// Update changes the raw value at position pos of a partition.
func (pm *PartitionedMaintainer) Update(key string, pos int, v float64) error {
	m, ok := pm.parts[key]
	if !ok {
		return fmt.Errorf("update in unknown partition %q", key)
	}
	return m.Update(pos, v)
}

// Append folds an insert at position pos into partition key. Only appends at
// n_p+1 preserve density; position 1 of an unknown key births the partition.
// It returns the partition's maintainer and whether the partition was born.
func (pm *PartitionedMaintainer) Append(key string, pos int, v float64) (*Maintainer, bool, error) {
	m, ok := pm.parts[key]
	if !ok {
		if pos != 1 {
			return nil, false, fmt.Errorf("insert at position %d opens partition %q non-densely", pos, key)
		}
		nm, err := NewMaintainer([]float64{v}, pm.win, pm.agg)
		if err != nil {
			return nil, false, err
		}
		nm.Touched += nm.Seq().Len() // the birth materializes every stored position
		pm.parts[key] = nm
		return nm, true, nil
	}
	n := m.Len()
	if pos != n+1 {
		return nil, false, fmt.Errorf("insert at position %d of partition %q is not an append (n=%d)", pos, key, n)
	}
	if err := m.Insert(pos, v); err != nil {
		return nil, false, err
	}
	return m, false, nil
}

// DeleteSuffix folds a delete of position pos into partition key. Only the
// last position n_p keeps density; deleting the only row removes the
// partition and reports died=true.
func (pm *PartitionedMaintainer) DeleteSuffix(key string, pos int) (died bool, err error) {
	m, ok := pm.parts[key]
	if !ok {
		return false, fmt.Errorf("delete in unknown partition %q", key)
	}
	n := m.Len()
	if pos != n {
		return false, fmt.Errorf("delete at position %d of partition %q is not a suffix delete (n=%d)", pos, key, n)
	}
	if err := m.Delete(pos); err != nil {
		return false, err
	}
	if m.Len() == 0 {
		delete(pm.parts, key)
		return true, nil
	}
	return false, nil
}
