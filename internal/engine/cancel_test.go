package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	rferrors "rfview/errors"
)

// bulkInsert loads table with n rows in chunks, values from f.
func bulkInsert(t *testing.T, e *Engine, table string, n int, f func(i int) string) {
	t.Helper()
	const chunk = 5000
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		var b strings.Builder
		fmt.Fprintf(&b, "INSERT INTO %s VALUES ", table)
		for i := lo; i < hi; i++ {
			if i > lo {
				b.WriteString(", ")
			}
			b.WriteString(f(i))
		}
		mustExec(t, e, b.String())
	}
}

func TestPreCancelledContext(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 10, func(i int) int64 { return int64(i) })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExecContext(ctx, `SELECT pos FROM seq`); !errors.Is(err, rferrors.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	// A deadline in the past behaves identically.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := e.ExecContext(dctx, `SELECT pos FROM seq`); !errors.Is(err, rferrors.ErrCancelled) {
		t.Fatalf("expired deadline err = %v, want ErrCancelled", err)
	}
}

// TestCancelMidQuery cancels a long cross join mid-drain: the statement must
// fail with ErrCancelled within 100ms of the cancel, and the engine must stay
// fully usable.
func TestCancelMidQuery(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, `CREATE TABLE a (x INTEGER)`)
	mustExec(t, e, `CREATE TABLE b (y INTEGER)`)
	bulkInsert(t, e, "a", 1500, func(i int) string { return fmt.Sprintf("(%d)", i) })
	bulkInsert(t, e, "b", 1500, func(i int) string { return fmt.Sprintf("(%d)", i) })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := e.ExecContext(ctx, `SELECT x, y FROM a, b`) // 2.25M-row cross join
		errc <- err
	}()
	time.Sleep(15 * time.Millisecond)
	cancel()
	cancelled := time.Now()
	select {
	case err := <-errc:
		if took := time.Since(cancelled); took > cancelLatencyBudget {
			t.Errorf("statement returned %v after cancel, want <%v", took, cancelLatencyBudget)
		}
		if !errors.Is(err, rferrors.ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("statement did not return after cancel")
	}
	// Engine state is intact: reads and writes still work.
	res := mustExec(t, e, `SELECT COUNT(x) AS c FROM a`)
	if res.Rows[0][0].Int() != 1500 {
		t.Fatalf("count after cancel = %v", res.Rows[0][0])
	}
	mustExec(t, e, `INSERT INTO a VALUES (9999)`)
}

// TestCancelMidParallelWindow cancels while the parallel window pool is
// grinding through partitions. Run under -race this doubles as the pool's
// cancellation race test.
func TestCancelMidParallelWindow(t *testing.T) {
	opts := DefaultOptions()
	opts.WindowParallelism = 4
	e := New(opts)
	mustExec(t, e, `CREATE TABLE tx (grp INTEGER, pos INTEGER, val INTEGER)`)
	const groups, per = 400, 250 // 100k rows, 400 partitions
	bulkInsert(t, e, "tx", groups*per, func(i int) string {
		return fmt.Sprintf("(%d, %d, %d)", i%groups, i/groups, i%7)
	})
	q := `SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos ROWS BETWEEN 100 PRECEDING AND 100 FOLLOWING) AS w FROM tx`

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := e.ExecContext(ctx, q)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	cancelled := time.Now()
	select {
	case err := <-errc:
		if took := time.Since(cancelled); took > cancelLatencyBudget {
			t.Errorf("window query returned %v after cancel, want <%v", took, cancelLatencyBudget)
		}
		if !errors.Is(err, rferrors.ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("window query did not return after cancel")
	}
	// The same query completes untouched afterwards — no worker leaked, no
	// partial state left behind.
	res, err := e.ExecContext(context.Background(), q)
	if err != nil {
		t.Fatalf("re-run after cancel: %v", err)
	}
	if len(res.Rows) != groups*per {
		t.Fatalf("re-run rows = %d, want %d", len(res.Rows), groups*per)
	}
}

// TestCancelMidRefresh cancels a REFRESH that recomputes a large plain view.
// The refresh must abort with ErrCancelled and leave the view usable; a
// later uncancelled REFRESH succeeds.
func TestCancelMidRefresh(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, `CREATE TABLE a (x INTEGER)`)
	mustExec(t, e, `CREATE TABLE b (y INTEGER)`)
	bulkInsert(t, e, "a", 400, func(i int) string { return fmt.Sprintf("(%d)", i) })
	bulkInsert(t, e, "b", 400, func(i int) string { return fmt.Sprintf("(%d)", i) })
	mustExec(t, e, `CREATE MATERIALIZED VIEW big AS SELECT x, y FROM a, b`) // 160k rows

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := e.ExecContext(ctx, `REFRESH MATERIALIZED VIEW big`)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, rferrors.ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("REFRESH did not return after cancel")
	}
	if _, err := e.ExecContext(context.Background(), `REFRESH MATERIALIZED VIEW big`); err != nil {
		t.Fatalf("uncancelled REFRESH after cancel: %v", err)
	}
	res := mustExec(t, e, `SELECT COUNT(x) AS c FROM big`)
	if res.Rows[0][0].Int() != 400*400 {
		t.Fatalf("view count after refresh = %v", res.Rows[0][0])
	}
}
