package wal

import (
	"time"

	"rfview/internal/metrics"
)

// instrumentMetrics attaches the durability subsystem's instruments to the
// engine's registry, so one /metrics scrape covers the whole stack. Called
// from Open after the log exists and before any concurrent use.
func (m *Manager) instrumentMetrics() {
	reg := m.eng.Metrics()
	fsync := reg.Histogram("rfview_wal_fsync_seconds",
		"WAL segment fsync latency.", metrics.DefBuckets)
	m.log.ObserveFsync = func(d time.Duration) { fsync.Observe(d.Seconds()) }
	m.checkpointSeconds = reg.Histogram("rfview_wal_checkpoint_seconds",
		"Checkpoint duration: snapshot write plus WAL truncation.", metrics.DefBuckets)
	m.checkpoints = reg.Counter("rfview_wal_checkpoints_total",
		"Checkpoints completed successfully.")
	reg.GaugeFunc("rfview_wal_segments",
		"WAL segment files on disk.", func() float64 {
			segs, err := listSegments(m.opts.Dir)
			if err != nil {
				return 0
			}
			return float64(len(segs))
		})
	reg.GaugeFunc("rfview_wal_last_lsn",
		"LSN of the most recently appended WAL record.", func() float64 {
			return float64(m.log.LastLSN())
		})
}
