// Package mview manages materialized views: creation, full refresh, and —
// for materialized reporting-function views — incremental maintenance with
// the §2.3 rules via core.Maintainer.
//
// A *sequence view* is a materialized complete simple sequence: its backing
// table holds one (pos, val) row per sequence position including the header
// (1−h … 0) and trailer (n+1 … n+l) positions (§3.2). Sequence views are
// recognized syntactically from the canonical reporting-function query
// shape; everything else materializes as a plain snapshot view.
//
// Sequence views require the base table's position column to hold the dense
// integers 1…n: the paper's sequence model is positional, and ROWS frames
// coincide with position arithmetic only on dense positions. Creation and
// refresh validate this. DML that preserves density (value updates, appends
// at n+1, deletes of position n) is folded into the view incrementally;
// anything else marks the view stale, and stale views refuse queries until
// REFRESH MATERIALIZED VIEW runs.
package mview

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	rferrors "rfview/errors"
	"rfview/internal/catalog"
	"rfview/internal/core"
	"rfview/internal/rewrite"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
	"rfview/internal/storage"
	"rfview/internal/txn"
)

// ExecFunc runs a select statement and returns (columns, rows). The engine
// provides it; the manager uses it to materialize plain views. The context
// carries cancellation into the view query's execution.
type ExecFunc func(ctx context.Context, stmt sqlparser.SelectStatement) ([]string, []sqltypes.Row, error)

// seqView couples a catalog sequence view with its maintainer(s): one
// core.Maintainer for simple sequence views (AVG views maintain the SUM side
// here plus a COUNT maintainer, deriving AVG = SUM/COUNT per §2.1), one
// core.PartitionedMaintainer for partitioned views (§6.2's complete
// reporting functions).
type seqView struct {
	mv       *catalog.MatView
	maint    *core.Maintainer            // simple views (SUM side for AVG)
	cnt      *core.Maintainer            // simple AVG views: the COUNT side
	pm       *core.PartitionedMaintainer // partitioned views (nil otherwise)
	partKeys map[string]sqltypes.Datum   // partition render key -> datum
	agg      core.Agg
	valType  sqltypes.Type
	stale    bool
	staleWhy string
	// staleSince timestamps the transition to stale, for the staleness-age
	// metric; zero while fresh.
	staleSince time.Time
	// pending is the deferred-mode delta queue: DML deltas enqueued by the
	// After* hooks, applied in order by Drain. Guarded by the manager mutex.
	pending []pendingDelta
}

// partitioned reports whether the view keeps per-partition sequences.
func (sv *seqView) partitioned() bool { return sv.pm != nil }

// touchedTotal sums the touched-position counters across the view's
// maintainers; deltas of this value feed the touched-rows histogram.
func (sv *seqView) touchedTotal() int {
	if sv.pm != nil {
		return sv.pm.Touched()
	}
	t := 0
	if sv.maint != nil {
		t += sv.maint.Touched
	}
	if sv.cnt != nil {
		t += sv.cnt.Touched
	}
	return t
}

// valueAt returns the view's value at sequence position k. For AVG views it
// derives SUM/COUNT, bit-matching core.ComputePipelined's AVG (count 0 maps
// to 0, the paper's zero-extension convention).
func (sv *seqView) valueAt(k int) (float64, bool) {
	if sv.agg == core.Avg {
		c := sv.cnt.Seq().At(k)
		if c == 0 {
			return 0, true
		}
		return sv.maint.Seq().At(k) / c, true
	}
	return sv.maint.Seq().AtOK(k)
}

// Manager owns all materialized views of one engine.
//
// The mutex is a RWMutex so that freshness checks — which every view-derived
// read performs, concurrently under the engine's shared lock — do not
// serialize readers; mutation paths (create, drop, refresh, incremental
// maintenance) take the exclusive lock.
type Manager struct {
	mu    sync.RWMutex
	cat   *catalog.Catalog
	seq   map[string]*seqView // lower-case view name
	plain map[string]*sqlparser.CreateMatView
	exec  ExecFunc

	// mode selects how base-table DML reaches sequence views: folded in
	// eagerly inside the write (the default), enqueued per view and drained
	// on read or on demand (deferred), or not at all (off: every DML marks
	// matching views stale, REFRESH is the only repair).
	mode Mode
	// observeTouched, when set, receives the number of view sequence
	// positions each applied delta touched (the histogram feed).
	observeTouched func(float64)
	// stats carries the maintenance counters the metrics registry and the
	// stats protocol op scrape.
	stats Stats

	// MaintenanceEvents counts incremental maintenance operations applied,
	// for tests and the maintenance example.
	MaintenanceEvents int

	// curTx is the transaction the current maintenance entry point runs
	// inside: backing-table writes join its write-set (becoming visible
	// atomically at commit) instead of committing immediately. Guarded by
	// the manager mutex: set on entry, cleared on exit, nil for legacy
	// (library/test) callers whose writes commit per operation.
	curTx *txn.Txn
}

// heap write/read helpers: route through curTx when a transaction is
// active, and see everything committed plus curTx's own pending writes.

func (m *Manager) hInsert(t *catalog.Table, row sqltypes.Row) error {
	var err error
	if m.curTx != nil {
		_, err = t.Heap.InsertTx(m.curTx, row)
	} else {
		_, err = t.Heap.Insert(row)
	}
	return err
}

func (m *Manager) hDelete(t *catalog.Table, id storage.RowID) error {
	if m.curTx != nil {
		return t.Heap.DeleteTx(m.curTx, id)
	}
	return t.Heap.Delete(id)
}

func (m *Manager) hUpdate(t *catalog.Table, id storage.RowID, row sqltypes.Row) error {
	var err error
	if m.curTx != nil {
		_, err = t.Heap.UpdateTx(m.curTx, id, row)
	} else {
		_, err = t.Heap.Update(id, row)
	}
	return err
}

func (m *Manager) hScan(t *catalog.Table, fn func(storage.RowID, sqltypes.Row) bool) error {
	return t.Heap.ScanAt(t.Heap.WriteView(m.curTx), fn)
}

func (m *Manager) hFirst(t *catalog.Table, h *storage.IndexHandle, key sqltypes.Row) (storage.RowID, bool) {
	return t.Heap.FirstAt(h, key, t.Heap.WriteView(m.curTx))
}

// setBaseRows records the view's new base cardinality. Inside a transaction
// the store is deferred to commit publication so it flips together with the
// backing rows' visibility — the derivation rewriter bakes BaseRows into
// rewritten SQL and must never see it ahead of (or behind) the rows.
func (m *Manager) setBaseRows(mv *catalog.MatView, n int) {
	if tx := m.curTx; tx != nil {
		v := int64(n)
		tx.OnPublish(func() { mv.BaseRows.Store(v) })
		return
	}
	mv.BaseRows.Store(int64(n))
}

// setFresh clears staleness. Inside a transaction the flip is deferred to
// commit publication: until the refreshed rows are visible, readers must
// keep seeing the view as stale.
func (m *Manager) setFresh(sv *seqView) {
	clear := func() {
		sv.stale = false
		sv.staleWhy = ""
		sv.staleSince = time.Time{}
	}
	if tx := m.curTx; tx != nil {
		tx.OnPublish(func() {
			m.mu.Lock()
			defer m.mu.Unlock()
			clear()
		})
		return
	}
	clear()
}

// NewManager builds a manager over the catalog.
func NewManager(cat *catalog.Catalog, exec ExecFunc) *Manager {
	return &Manager{cat: cat, seq: make(map[string]*seqView), plain: make(map[string]*sqlparser.CreateMatView), exec: exec}
}

// SetMode selects the maintenance mode. Engines call it once at
// construction; switching modes mid-flight is safe (a leftover deferred
// queue still drains via Drain or REFRESH).
func (m *Manager) SetMode(mode Mode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mode = mode
}

// Mode returns the manager's maintenance mode.
func (m *Manager) Mode() Mode {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.mode
}

// SetTouchedObserver installs the touched-rows histogram feed.
func (m *Manager) SetTouchedObserver(fn func(float64)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.observeTouched = fn
}

func lower(s string) string { return strings.ToLower(s) }

// Create materializes a view from its defining statement.
func (m *Manager) Create(stmt *sqlparser.CreateMatView) error {
	return m.CreateContext(context.Background(), stmt)
}

// CreateContext is Create with cancellation: materializing a plain view runs
// the defining query through the engine, which observes ctx.
func (m *Manager) CreateContext(ctx context.Context, stmt *sqlparser.CreateMatView) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if sel, ok := stmt.Select.(*sqlparser.Select); ok {
		if wq, err := rewrite.MatchWindowQuery(sel); err == nil {
			switch {
			case isSequenceViewShape(wq):
				return m.createSequenceView(stmt, wq)
			case isPartitionedSequenceShape(wq):
				return m.createPartitionedSequenceView(stmt, wq)
			}
		}
	}
	return m.createPlainView(ctx, stmt)
}

// isSequenceViewShape accepts SELECT pos, agg(val) OVER (ORDER BY pos ROWS …)
// FROM base — unpartitioned, the shape the derivation rewriter exploits.
func isSequenceViewShape(wq *rewrite.WindowQuery) bool {
	if len(wq.PartitionBy) > 0 {
		return false
	}
	if len(wq.PlainCols) != 1 || !strings.EqualFold(wq.PlainCols[0], wq.PosCol) {
		return false
	}
	return true
}

func aggOf(name string) (core.Agg, error) {
	switch name {
	case "SUM":
		return core.Sum, nil
	case "COUNT":
		return core.Count, nil
	case "AVG":
		return core.Avg, nil
	case "MIN":
		return core.Min, nil
	case "MAX":
		return core.Max, nil
	default:
		return 0, fmt.Errorf("mview: unknown aggregate %q", name)
	}
}

func windowOf(shape rewrite.WindowShape) core.Window {
	if shape.Cumulative {
		return core.Cumul()
	}
	return core.Sliding(shape.Preceding, shape.Following)
}

// readDenseSequence reads (pos, val) from the base table and validates that
// positions are exactly 1…n. It reads at the manager's current write view so
// a transactional refresh sees the transaction's own base-table writes.
func (m *Manager) readDenseSequence(base *catalog.Table, posCol, valCol string) ([]float64, error) {
	posIdx := base.ColumnIndex(posCol)
	if posIdx < 0 {
		return nil, fmt.Errorf("mview: column %q does not exist in %q", posCol, base.Name)
	}
	valIdx := posIdx
	if valCol != "" {
		valIdx = base.ColumnIndex(valCol)
		if valIdx < 0 {
			return nil, fmt.Errorf("mview: column %q does not exist in %q", valCol, base.Name)
		}
	}
	type pv struct {
		pos int64
		val float64
	}
	var rows []pv
	var scanErr error
	hErr := m.hScan(base, func(_ storage.RowID, row sqltypes.Row) bool {
		p := row[posIdx]
		if p.IsNull() || p.Typ() != sqltypes.Int {
			scanErr = fmt.Errorf("mview: position column %q must be non-NULL INTEGER", posCol)
			return false
		}
		v := row[valIdx]
		if v.IsNull() || !v.Typ().Numeric() {
			scanErr = fmt.Errorf("mview: value column must be non-NULL numeric")
			return false
		}
		rows = append(rows, pv{pos: p.Int(), val: v.Float()})
		return true
	})
	if scanErr == nil {
		scanErr = hErr
	}
	if scanErr != nil {
		return nil, scanErr
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pos < rows[j].pos })
	raw := make([]float64, len(rows))
	for i, r := range rows {
		if r.pos != int64(i+1) {
			return nil, fmt.Errorf("mview: sequence views need dense positions 1…n; found %d at rank %d", r.pos, i+1)
		}
		raw[i] = r.val
	}
	return raw, nil
}

func (m *Manager) createSequenceView(stmt *sqlparser.CreateMatView, wq *rewrite.WindowQuery) error {
	base, err := m.cat.Table(wq.Table)
	if err != nil {
		return err
	}
	agg, err := aggOf(wq.Agg)
	if err != nil {
		return err
	}
	valCol := wq.ValCol
	if valCol == "" { // COUNT(*)
		valCol = wq.PosCol
	}
	raw, err := m.readDenseSequence(base, wq.PosCol, valCol)
	if err != nil {
		return err
	}
	win := windowOf(wq.Shape)
	maint, cnt, err := newSeqMaintainers(raw, win, agg)
	if err != nil {
		return err
	}

	valType := sqltypes.Int
	vi := base.ColumnIndex(valCol)
	if base.Columns[vi].Type == sqltypes.Float || agg == core.Avg {
		valType = sqltypes.Float
	}
	backingName := "__mv_" + stmt.Name
	backing, err := m.cat.CreateTable(backingName, []catalog.Column{
		{Name: "pos", Type: sqltypes.Int},
		{Name: "val", Type: valType},
	})
	if err != nil {
		return err
	}
	if _, err := m.cat.CreateIndex("pk_"+stmt.Name, backingName, []string{"pos"}, true, true); err != nil {
		return err
	}

	mv := &catalog.MatView{
		Name: stmt.Name, Kind: catalog.SequenceView, Table: backing,
		BaseTable: base.Name, PosColumn: wq.PosCol, ValColumn: valCol,
		Agg: wq.Agg, Window: toSpec(win),
		Definition: stmt.String(),
	}
	mv.BaseRows.Store(int64(len(raw)))
	// Fill before registering: until the view exists in the catalog no
	// reader can derive from it, so the backing rows' immediate commits
	// never expose a half-built view.
	sv := &seqView{mv: mv, maint: maint, cnt: cnt, agg: agg, valType: valType}
	if err := m.fillBacking(sv); err != nil {
		m.cat.DropTable(backingName)
		return err
	}
	if err := m.cat.RegisterMatView(mv); err != nil {
		m.cat.DropTable(backingName)
		return err
	}
	m.seq[lower(stmt.Name)] = sv
	return nil
}

// newSeqMaintainers builds the maintainer pair for a simple sequence view:
// AVG views maintain SUM and COUNT and derive (§2.1); every other aggregate
// maintains itself directly.
func newSeqMaintainers(raw []float64, win core.Window, agg core.Agg) (maint, cnt *core.Maintainer, err error) {
	maintAgg := agg
	if agg == core.Avg {
		maintAgg = core.Sum
	}
	maint, err = core.NewMaintainer(raw, win, maintAgg)
	if err != nil {
		return nil, nil, err
	}
	if agg == core.Avg {
		cnt, err = core.NewMaintainer(raw, win, core.Count)
		if err != nil {
			return nil, nil, err
		}
	}
	return maint, cnt, nil
}

func toSpec(w core.Window) catalog.WindowSpec {
	return catalog.WindowSpec{Cumulative: w.Cumulative, Preceding: w.Preceding, Following: w.Following}
}

// fillBacking rewrites the backing table from the maintained sequence.
func (m *Manager) fillBacking(sv *seqView) error {
	// Clear existing rows.
	var ids []storage.RowID
	if err := m.hScan(sv.mv.Table, func(id storage.RowID, _ sqltypes.Row) bool {
		ids = append(ids, id)
		return true
	}); err != nil {
		return err
	}
	for _, id := range ids {
		if err := m.hDelete(sv.mv.Table, id); err != nil {
			return err
		}
	}
	seq := sv.maint.Seq()
	for k := seq.Lo(); k <= seq.Hi(); k++ {
		v, ok := sv.valueAt(k)
		if !ok {
			continue // MIN/MAX empty windows are not materialized
		}
		if err := m.hInsert(sv.mv.Table, sqltypes.Row{sqltypes.NewInt(int64(k)), sv.datum(v)}); err != nil {
			return err
		}
	}
	m.setBaseRows(sv.mv, seq.N)
	return nil
}

func (sv *seqView) datum(v float64) sqltypes.Datum {
	if sv.valType == sqltypes.Int {
		return sqltypes.NewInt(int64(v))
	}
	return sqltypes.NewFloat(v)
}

func (m *Manager) createPlainView(ctx context.Context, stmt *sqlparser.CreateMatView) error {
	if m.exec == nil {
		return fmt.Errorf("mview: no executor wired for plain materialized views")
	}
	cols, rows, err := m.exec(ctx, stmt.Select)
	if err != nil {
		return err
	}
	backingName := "__mv_" + stmt.Name
	defs := make([]catalog.Column, len(cols))
	for i, c := range cols {
		typ := sqltypes.Null
		for _, r := range rows {
			if !r[i].IsNull() {
				typ = r[i].Typ()
				break
			}
		}
		name := c
		if name == "" {
			name = fmt.Sprintf("column_%d", i+1)
		}
		defs[i] = catalog.Column{Name: name, Type: typ}
	}
	backing, err := m.cat.CreateTable(backingName, defs)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := backing.Heap.Insert(r.Clone()); err != nil {
			return err
		}
	}
	mv := &catalog.MatView{
		Name: stmt.Name, Kind: catalog.PlainView, Table: backing,
		Definition: stmt.String(),
	}
	if err := m.cat.RegisterMatView(mv); err != nil {
		m.cat.DropTable(backingName)
		return err
	}
	m.plain[lower(stmt.Name)] = stmt
	return nil
}

// Drop removes a materialized view and its backing table.
func (m *Manager) Drop(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	mv, ok := m.cat.MatView(name)
	if !ok {
		return rferrors.New(rferrors.CodeUnknownView, "materialized view %q does not exist", name)
	}
	if err := m.cat.DropMatView(name); err != nil {
		return err
	}
	if sv, ok := m.seq[lower(name)]; ok {
		m.clearPending(sv)
	}
	delete(m.seq, lower(name))
	delete(m.plain, lower(name))
	return m.cat.DropTable(mv.Table.Name)
}

// Refresh fully recomputes a view (and clears staleness).
func (m *Manager) Refresh(name string) error {
	return m.RefreshContext(context.Background(), name)
}

// RefreshContext is Refresh with cancellation: a plain view's recompute runs
// its defining query through the engine, which observes ctx.
func (m *Manager) RefreshContext(ctx context.Context, name string) error {
	return m.RefreshTx(ctx, nil, name)
}

// RefreshTx is RefreshContext inside a transaction: the rebuilt backing rows
// join tx's write-set and the staleness flip defers to commit publication, so
// concurrent readers never observe a half-refreshed view. tx may be nil
// (library callers), in which case every write commits immediately.
func (m *Manager) RefreshTx(ctx context.Context, tx *txn.Txn, name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.curTx = tx
	defer func() { m.curTx = nil }()
	if sv, ok := m.seq[lower(name)]; ok {
		// A full refresh supersedes any queued deltas: the recompute reads
		// the current base table, which already includes their effects.
		m.clearPending(sv)
		m.stats.FullRefreshes.Add(1)
		if sv.partitioned() {
			return m.refreshPartitioned(sv)
		}
		base, err := m.cat.Table(sv.mv.BaseTable)
		if err != nil {
			return err
		}
		raw, err := m.readDenseSequence(base, sv.mv.PosColumn, sv.mv.ValColumn)
		if err != nil {
			return err
		}
		maint, cnt, err := newSeqMaintainers(raw, windowOfSpec(sv.mv.Window), sv.agg)
		if err != nil {
			return err
		}
		sv.maint = maint
		sv.cnt = cnt
		m.setFresh(sv)
		return m.fillBacking(sv)
	}
	if stmt, ok := m.plain[lower(name)]; ok {
		mv, _ := m.cat.MatView(name)
		cols, rows, err := m.exec(ctx, stmt.Select)
		if err != nil {
			return err
		}
		if len(cols) != len(mv.Table.Columns) {
			return fmt.Errorf("mview: refresh arity changed for %q", name)
		}
		var ids []storage.RowID
		if err := m.hScan(mv.Table, func(id storage.RowID, _ sqltypes.Row) bool {
			ids = append(ids, id)
			return true
		}); err != nil {
			return err
		}
		for _, id := range ids {
			if err := m.hDelete(mv.Table, id); err != nil {
				return err
			}
		}
		for _, r := range rows {
			if err := m.hInsert(mv.Table, r.Clone()); err != nil {
				return err
			}
		}
		return nil
	}
	return rferrors.New(rferrors.CodeUnknownView, "materialized view %q does not exist", name)
}

func windowOfSpec(w catalog.WindowSpec) core.Window {
	if w.Cumulative {
		return core.Cumul()
	}
	return core.Sliding(w.Preceding, w.Following)
}

// CheckFresh returns an error when the named view is stale. The engine calls
// it before answering a query from the view.
func (m *Manager) CheckFresh(name string) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if sv, ok := m.seq[lower(name)]; ok && sv.stale {
		return rferrors.New(rferrors.CodeStaleView,
			"materialized view %q is stale (%s); run REFRESH MATERIALIZED VIEW %s",
			name, sv.staleWhy, name)
	}
	return nil
}

// StalenessAges reports, per materialized view, how long it has been stale
// in seconds; fresh views report 0. The metrics registry scrapes this.
func (m *Manager) StalenessAges() map[string]float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]float64, len(m.seq)+len(m.plain))
	for _, sv := range m.seq {
		age := 0.0
		if sv.stale && !sv.staleSince.IsZero() {
			age = time.Since(sv.staleSince).Seconds()
		}
		out[sv.mv.Name] = age
	}
	for name := range m.plain {
		if mv, ok := m.cat.MatView(name); ok {
			out[mv.Name] = 0
		}
	}
	return out
}

// Stale reports whether a view is stale.
func (m *Manager) Stale(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	sv, ok := m.seq[lower(name)]
	return ok && sv.stale
}
