// Package spill is the out-of-core execution layer of rfview: a shared
// memory budget that executor operators charge their working sets against,
// and a budget-tracked external merge sort whose runs are length-prefixed,
// CRC-framed files of memcomparable key bytes plus encoded payloads in a
// per-engine temp directory.
//
// The division of labor with the executor:
//
//   - exec.Sort streams its input through a Sorter, spilling
//     (EncodeKey bytes, encoded row) pairs once the budget trips and merging
//     the runs back in key order with a bounded-fan-in heap merge;
//   - exec.Window.computePartition spills (EncodeKey bytes, row index) pairs
//     for oversized partitions, so one hot PARTITION BY group no longer pins
//     a full sort scratch in memory;
//   - both charge the Budget for whatever they do keep in memory, so the
//     rfview_spill_budget_used_bytes gauge reflects executor pressure even
//     on the paths that never spill.
//
// Results are bit-identical to the in-memory paths: runs are sorted by the
// same memcomparable encoding the in-memory fast path compares, and the
// merge breaks key ties by run order, which preserves the stable-sort
// contract (ties keep input order). Orderings the key encoding cannot
// represent (Int/Float mixes, NaN floats) never spill — the executor falls
// back to its existing comparator path.
package spill

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Budget tracks executor memory against a byte limit. It is shared by every
// operator of one engine, so concurrent queries compete for the same
// allowance — exactly the resource being protected. A nil *Budget and a
// non-positive limit both mean "unlimited": every Charge succeeds and
// nothing ever spills.
type Budget struct {
	limit int64
	used  atomic.Int64
}

// NewBudget returns a budget with the given byte limit; limit <= 0 means
// unlimited.
func NewBudget(limit int64) *Budget {
	return &Budget{limit: limit}
}

// Limit returns the configured byte limit (0 when unlimited or nil).
func (b *Budget) Limit() int64 {
	if b == nil || b.limit <= 0 {
		return 0
	}
	return b.limit
}

// Used returns the bytes currently charged.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Charge reserves n bytes if they fit under the limit and reports whether
// the reservation was made; a false return charges nothing — the caller
// should spill (or Force, if the allocation is unavoidable). Unlimited
// budgets still account usage, so the gauge stays meaningful without a
// limit.
func (b *Budget) Charge(n int64) bool {
	if b == nil {
		return true
	}
	for {
		cur := b.used.Load()
		next := cur + n
		if b.limit > 0 && next > b.limit {
			return false
		}
		if b.used.CompareAndSwap(cur, next) {
			return true
		}
	}
}

// Force reserves n bytes unconditionally. Used for allocations the executor
// cannot avoid (a partition's result column, a fallback that must hold the
// rows): the accounting overdrafts rather than lying about what is resident.
func (b *Budget) Force(n int64) {
	if b == nil {
		return
	}
	b.used.Add(n)
}

// Release returns n previously charged (or forced) bytes.
func (b *Budget) Release(n int64) {
	if b == nil {
		return
	}
	if b.used.Add(-n) < 0 {
		// A release without a matching charge is a bookkeeping bug; clamp so
		// one bad caller cannot grant everyone a negative baseline.
		b.used.Store(0)
	}
}

// ParseBytes parses a human byte size: a plain integer is bytes, and the
// suffixes KB/MB/GB (decimal) and KiB/MiB/GiB (binary, also accepted as
// K/M/G) scale it. Used by the -mem-budget flags and the
// RFVIEW_TEST_MEM_BUDGET test knob.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("spill: empty byte size")
	}
	mult := int64(1)
	upper := strings.ToUpper(t)
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1000}, {"MB", 1000 * 1000}, {"GB", 1000 * 1000 * 1000},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
		{"B", 1},
	} {
		if strings.HasSuffix(upper, suf.name) {
			mult = suf.mult
			t = strings.TrimSpace(t[:len(t)-len(suf.name)])
			break
		}
	}
	v, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("spill: bad byte size %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("spill: negative byte size %q", s)
	}
	return v * mult, nil
}
