// Package expr compiles parsed scalar expressions against a row schema and
// evaluates them over datum rows. It also provides the aggregate
// accumulators used by both grouping and window operators.
//
// Aggregate and window expressions never reach Compile: the planner lifts
// them out of the select list and replaces them with column references to
// operator-produced columns. Compile rejects them if it meets one.
package expr

import (
	"fmt"
	"math"
	"strings"

	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
)

// ColInfo describes one column visible to an expression: an optional table
// qualifier, the column name, and its type.
type ColInfo struct {
	Table string
	Name  string
	Type  sqltypes.Type
}

// Schema is an ordered list of visible columns; expressions compile to
// ordinal references against it.
type Schema struct {
	Cols []ColInfo
}

// NewSchema builds a schema from column infos.
func NewSchema(cols ...ColInfo) *Schema { return &Schema{Cols: cols} }

// Resolve finds the ordinal of a (possibly qualified) column name. An
// unqualified name that matches columns of several tables is ambiguous.
func (s *Schema) Resolve(table, name string) (int, error) {
	found := -1
	for i, c := range s.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("column reference %q is ambiguous", refName(table, name))
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("column %q does not exist", refName(table, name))
	}
	return found, nil
}

func refName(table, name string) string {
	if table != "" {
		return table + "." + name
	}
	return name
}

// Append returns a new schema with extra columns appended.
func (s *Schema) Append(cols ...ColInfo) *Schema {
	out := &Schema{Cols: make([]ColInfo, 0, len(s.Cols)+len(cols))}
	out.Cols = append(out.Cols, s.Cols...)
	out.Cols = append(out.Cols, cols...)
	return out
}

// Concat returns the schema of a join output: left columns then right.
func Concat(a, b *Schema) *Schema {
	return a.Append(b.Cols...)
}

// Expr is a compiled expression.
type Expr interface {
	// Eval computes the expression over one input row.
	Eval(row sqltypes.Row) (sqltypes.Datum, error)
	// Type is the static result type (sqltypes.Null when unknown).
	Type() sqltypes.Type
	fmt.Stringer
}

// ---------------------------------------------------------------------------
// Node types
// ---------------------------------------------------------------------------

// Col is an ordinal column reference.
type Col struct {
	Idx  int
	name string
	typ  sqltypes.Type
}

// NewCol builds a column reference for tests and operators.
func NewCol(idx int, name string, typ sqltypes.Type) *Col {
	return &Col{Idx: idx, name: name, typ: typ}
}

// Eval implements Expr.
func (c *Col) Eval(row sqltypes.Row) (sqltypes.Datum, error) {
	if c.Idx >= len(row) {
		return sqltypes.NullDatum, fmt.Errorf("row too short for column %d (%s)", c.Idx, c.name)
	}
	return row[c.Idx], nil
}

// Type implements Expr.
func (c *Col) Type() sqltypes.Type { return c.typ }

func (c *Col) String() string { return c.name }

// Const is a literal.
type Const struct{ Val sqltypes.Datum }

// Eval implements Expr.
func (c *Const) Eval(sqltypes.Row) (sqltypes.Datum, error) { return c.Val, nil }

// Type implements Expr.
func (c *Const) Type() sqltypes.Type { return c.Val.Typ() }

func (c *Const) String() string { return c.Val.String() }

type binary struct {
	op          string
	left, right Expr
}

func (b *binary) Eval(row sqltypes.Row) (sqltypes.Datum, error) {
	l, err := b.left.Eval(row)
	if err != nil {
		return sqltypes.NullDatum, err
	}
	r, err := b.right.Eval(row)
	if err != nil {
		return sqltypes.NullDatum, err
	}
	switch b.op {
	case "+":
		return sqltypes.Add(l, r)
	case "-":
		return sqltypes.Sub(l, r)
	case "*":
		return sqltypes.Mul(l, r)
	case "/":
		return sqltypes.Div(l, r)
	}
	return sqltypes.NullDatum, fmt.Errorf("unknown operator %q", b.op)
}

func (b *binary) Type() sqltypes.Type {
	if b.left.Type() == sqltypes.Float || b.right.Type() == sqltypes.Float || b.op == "/" {
		if b.left.Type() == sqltypes.Int && b.right.Type() == sqltypes.Int {
			return sqltypes.Int // integer division truncates
		}
		return sqltypes.Float
	}
	if b.left.Type() == sqltypes.Int && b.right.Type() == sqltypes.Int {
		return sqltypes.Int
	}
	return sqltypes.Null
}

func (b *binary) String() string { return fmt.Sprintf("(%s %s %s)", b.left, b.op, b.right) }

type unaryMinus struct{ inner Expr }

func (u *unaryMinus) Eval(row sqltypes.Row) (sqltypes.Datum, error) {
	v, err := u.inner.Eval(row)
	if err != nil {
		return sqltypes.NullDatum, err
	}
	return sqltypes.Neg(v)
}

func (u *unaryMinus) Type() sqltypes.Type { return u.inner.Type() }
func (u *unaryMinus) String() string      { return fmt.Sprintf("(-%s)", u.inner) }

type comparison struct {
	op          string
	left, right Expr
}

func (c *comparison) Eval(row sqltypes.Row) (sqltypes.Datum, error) {
	l, err := c.left.Eval(row)
	if err != nil {
		return sqltypes.NullDatum, err
	}
	r, err := c.right.Eval(row)
	if err != nil {
		return sqltypes.NullDatum, err
	}
	if l.IsNull() || r.IsNull() {
		return sqltypes.NullDatum, nil // SQL unknown
	}
	cmp, err := sqltypes.Compare(l, r)
	if err != nil {
		return sqltypes.NullDatum, err
	}
	var out bool
	switch c.op {
	case "=":
		out = cmp == 0
	case "<>":
		out = cmp != 0
	case "<":
		out = cmp < 0
	case "<=":
		out = cmp <= 0
	case ">":
		out = cmp > 0
	case ">=":
		out = cmp >= 0
	default:
		return sqltypes.NullDatum, fmt.Errorf("unknown comparison %q", c.op)
	}
	return sqltypes.NewBool(out), nil
}

func (c *comparison) Type() sqltypes.Type { return sqltypes.Bool }
func (c *comparison) String() string      { return fmt.Sprintf("%s %s %s", c.left, c.op, c.right) }

type andExpr struct{ left, right Expr }

func (a *andExpr) Eval(row sqltypes.Row) (sqltypes.Datum, error) {
	l, err := a.left.Eval(row)
	if err != nil {
		return sqltypes.NullDatum, err
	}
	if !l.IsNull() && !l.Bool() {
		return sqltypes.NewBool(false), nil // false AND x = false
	}
	r, err := a.right.Eval(row)
	if err != nil {
		return sqltypes.NullDatum, err
	}
	if !r.IsNull() && !r.Bool() {
		return sqltypes.NewBool(false), nil
	}
	if l.IsNull() || r.IsNull() {
		return sqltypes.NullDatum, nil
	}
	return sqltypes.NewBool(true), nil
}

func (a *andExpr) Type() sqltypes.Type { return sqltypes.Bool }
func (a *andExpr) String() string      { return fmt.Sprintf("(%s AND %s)", a.left, a.right) }

type orExpr struct{ left, right Expr }

func (o *orExpr) Eval(row sqltypes.Row) (sqltypes.Datum, error) {
	l, err := o.left.Eval(row)
	if err != nil {
		return sqltypes.NullDatum, err
	}
	if !l.IsNull() && l.Bool() {
		return sqltypes.NewBool(true), nil // true OR x = true
	}
	r, err := o.right.Eval(row)
	if err != nil {
		return sqltypes.NullDatum, err
	}
	if !r.IsNull() && r.Bool() {
		return sqltypes.NewBool(true), nil
	}
	if l.IsNull() || r.IsNull() {
		return sqltypes.NullDatum, nil
	}
	return sqltypes.NewBool(false), nil
}

func (o *orExpr) Type() sqltypes.Type { return sqltypes.Bool }
func (o *orExpr) String() string      { return fmt.Sprintf("(%s OR %s)", o.left, o.right) }

type notExpr struct{ inner Expr }

func (n *notExpr) Eval(row sqltypes.Row) (sqltypes.Datum, error) {
	v, err := n.inner.Eval(row)
	if err != nil {
		return sqltypes.NullDatum, err
	}
	if v.IsNull() {
		return sqltypes.NullDatum, nil
	}
	return sqltypes.NewBool(!v.Bool()), nil
}

func (n *notExpr) Type() sqltypes.Type { return sqltypes.Bool }
func (n *notExpr) String() string      { return fmt.Sprintf("(NOT %s)", n.inner) }

type inExpr struct {
	left    Expr
	list    []Expr
	negated bool
}

func (e *inExpr) Eval(row sqltypes.Row) (sqltypes.Datum, error) {
	l, err := e.left.Eval(row)
	if err != nil {
		return sqltypes.NullDatum, err
	}
	if l.IsNull() {
		return sqltypes.NullDatum, nil
	}
	sawNull := false
	for _, item := range e.list {
		v, err := item.Eval(row)
		if err != nil {
			return sqltypes.NullDatum, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		cmp, err := sqltypes.Compare(l, v)
		if err != nil {
			return sqltypes.NullDatum, err
		}
		if cmp == 0 {
			return sqltypes.NewBool(!e.negated), nil
		}
	}
	if sawNull {
		return sqltypes.NullDatum, nil // x IN (…, NULL) is unknown when no match
	}
	return sqltypes.NewBool(e.negated), nil
}

func (e *inExpr) Type() sqltypes.Type { return sqltypes.Bool }

func (e *inExpr) String() string {
	parts := make([]string, len(e.list))
	for i, x := range e.list {
		parts[i] = x.String()
	}
	not := ""
	if e.negated {
		not = "NOT "
	}
	return fmt.Sprintf("%s %sIN (%s)", e.left, not, strings.Join(parts, ", "))
}

type isNullExpr struct {
	inner   Expr
	negated bool
}

func (e *isNullExpr) Eval(row sqltypes.Row) (sqltypes.Datum, error) {
	v, err := e.inner.Eval(row)
	if err != nil {
		return sqltypes.NullDatum, err
	}
	return sqltypes.NewBool(v.IsNull() != e.negated), nil
}

func (e *isNullExpr) Type() sqltypes.Type { return sqltypes.Bool }
func (e *isNullExpr) String() string {
	if e.negated {
		return e.inner.String() + " IS NOT NULL"
	}
	return e.inner.String() + " IS NULL"
}

type caseExpr struct {
	whens []compiledWhen
	els   Expr
	typ   sqltypes.Type
}

type compiledWhen struct {
	cond Expr
	then Expr
}

func (e *caseExpr) Eval(row sqltypes.Row) (sqltypes.Datum, error) {
	for _, w := range e.whens {
		c, err := w.cond.Eval(row)
		if err != nil {
			return sqltypes.NullDatum, err
		}
		if !c.IsNull() && c.Bool() {
			return w.then.Eval(row)
		}
	}
	if e.els != nil {
		return e.els.Eval(row)
	}
	return sqltypes.NullDatum, nil
}

func (e *caseExpr) Type() sqltypes.Type { return e.typ }

func (e *caseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.cond, w.then)
	}
	if e.els != nil {
		fmt.Fprintf(&b, " ELSE %s", e.els)
	}
	b.WriteString(" END")
	return b.String()
}

type scalarFunc struct {
	name string
	args []Expr
	eval func(args []sqltypes.Datum) (sqltypes.Datum, error)
	typ  sqltypes.Type
}

func (f *scalarFunc) Eval(row sqltypes.Row) (sqltypes.Datum, error) {
	vals := make([]sqltypes.Datum, len(f.args))
	for i, a := range f.args {
		v, err := a.Eval(row)
		if err != nil {
			return sqltypes.NullDatum, err
		}
		vals[i] = v
	}
	return f.eval(vals)
}

func (f *scalarFunc) Type() sqltypes.Type { return f.typ }

func (f *scalarFunc) String() string {
	parts := make([]string, len(f.args))
	for i, a := range f.args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.name, strings.Join(parts, ", "))
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

// AggregateNames lists the aggregation functions of the paper.
var AggregateNames = map[string]bool{
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregate reports whether the AST expression is a bare aggregate call
// (not a window expression).
func IsAggregate(e sqlparser.Expr) bool {
	fn, ok := e.(*sqlparser.FuncExpr)
	return ok && AggregateNames[fn.Name]
}

// Compile lowers an AST expression to an evaluable one against the schema.
func Compile(e sqlparser.Expr, schema *Schema) (Expr, error) {
	switch x := e.(type) {
	case *sqlparser.ColumnRef:
		idx, err := schema.Resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return &Col{Idx: idx, name: x.String(), typ: schema.Cols[idx].Type}, nil
	case *sqlparser.Literal:
		return &Const{Val: x.Val}, nil
	case *sqlparser.BinaryExpr:
		l, err := Compile(x.Left, schema)
		if err != nil {
			return nil, err
		}
		r, err := Compile(x.Right, schema)
		if err != nil {
			return nil, err
		}
		return &binary{op: x.Op, left: l, right: r}, nil
	case *sqlparser.UnaryExpr:
		inner, err := Compile(x.Expr, schema)
		if err != nil {
			return nil, err
		}
		return &unaryMinus{inner: inner}, nil
	case *sqlparser.ComparisonExpr:
		l, err := Compile(x.Left, schema)
		if err != nil {
			return nil, err
		}
		r, err := Compile(x.Right, schema)
		if err != nil {
			return nil, err
		}
		return &comparison{op: x.Op, left: l, right: r}, nil
	case *sqlparser.AndExpr:
		l, err := Compile(x.Left, schema)
		if err != nil {
			return nil, err
		}
		r, err := Compile(x.Right, schema)
		if err != nil {
			return nil, err
		}
		return &andExpr{left: l, right: r}, nil
	case *sqlparser.OrExpr:
		l, err := Compile(x.Left, schema)
		if err != nil {
			return nil, err
		}
		r, err := Compile(x.Right, schema)
		if err != nil {
			return nil, err
		}
		return &orExpr{left: l, right: r}, nil
	case *sqlparser.NotExpr:
		inner, err := Compile(x.Expr, schema)
		if err != nil {
			return nil, err
		}
		return &notExpr{inner: inner}, nil
	case *sqlparser.InExpr:
		l, err := Compile(x.Left, schema)
		if err != nil {
			return nil, err
		}
		list := make([]Expr, len(x.List))
		for i, item := range x.List {
			c, err := Compile(item, schema)
			if err != nil {
				return nil, err
			}
			list[i] = c
		}
		return &inExpr{left: l, list: list, negated: x.Negated}, nil
	case *sqlparser.BetweenExpr:
		// a BETWEEN x AND y desugars to a >= x AND a <= y.
		v, err := Compile(x.Expr, schema)
		if err != nil {
			return nil, err
		}
		lo, err := Compile(x.From, schema)
		if err != nil {
			return nil, err
		}
		hi, err := Compile(x.To, schema)
		if err != nil {
			return nil, err
		}
		var out Expr = &andExpr{
			left:  &comparison{op: ">=", left: v, right: lo},
			right: &comparison{op: "<=", left: v, right: hi},
		}
		if x.Negated {
			out = &notExpr{inner: out}
		}
		return out, nil
	case *sqlparser.IsNullExpr:
		inner, err := Compile(x.Expr, schema)
		if err != nil {
			return nil, err
		}
		return &isNullExpr{inner: inner, negated: x.Negated}, nil
	case *sqlparser.CaseExpr:
		out := &caseExpr{typ: sqltypes.Null}
		for _, w := range x.Whens {
			cond, err := Compile(w.Cond, schema)
			if err != nil {
				return nil, err
			}
			then, err := Compile(w.Then, schema)
			if err != nil {
				return nil, err
			}
			if out.typ == sqltypes.Null {
				out.typ = then.Type()
			}
			out.whens = append(out.whens, compiledWhen{cond: cond, then: then})
		}
		if x.Else != nil {
			els, err := Compile(x.Else, schema)
			if err != nil {
				return nil, err
			}
			if out.typ == sqltypes.Null {
				out.typ = els.Type()
			}
			out.els = els
		}
		return out, nil
	case *sqlparser.FuncExpr:
		if AggregateNames[x.Name] {
			return nil, fmt.Errorf("aggregate %s() not allowed here", x.Name)
		}
		return compileScalarFunc(x, schema)
	case *sqlparser.WindowExpr:
		return nil, fmt.Errorf("window expression %s not allowed here (must be planned)", x)
	default:
		return nil, fmt.Errorf("cannot compile expression %T (%v)", e, e)
	}
}

func compileScalarFunc(x *sqlparser.FuncExpr, schema *Schema) (Expr, error) {
	args := make([]Expr, len(x.Args))
	for i, a := range x.Args {
		c, err := Compile(a, schema)
		if err != nil {
			return nil, err
		}
		args[i] = c
	}
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s() takes %d argument(s), got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "MOD":
		if err := arity(2); err != nil {
			return nil, err
		}
		return &scalarFunc{name: "MOD", args: args, typ: sqltypes.Int,
			eval: func(v []sqltypes.Datum) (sqltypes.Datum, error) {
				return sqltypes.Mod(v[0], v[1])
			}}, nil
	case "ABS":
		if err := arity(1); err != nil {
			return nil, err
		}
		return &scalarFunc{name: "ABS", args: args, typ: args[0].Type(),
			eval: func(v []sqltypes.Datum) (sqltypes.Datum, error) {
				return sqltypes.Abs(v[0])
			}}, nil
	case "COALESCE":
		if len(args) == 0 {
			return nil, fmt.Errorf("COALESCE() needs at least one argument")
		}
		typ := sqltypes.Null
		for _, a := range args {
			if a.Type() != sqltypes.Null {
				typ = a.Type()
				break
			}
		}
		return &scalarFunc{name: "COALESCE", args: args, typ: typ,
			eval: func(v []sqltypes.Datum) (sqltypes.Datum, error) {
				for _, d := range v {
					if !d.IsNull() {
						return d, nil
					}
				}
				return sqltypes.NullDatum, nil
			}}, nil
	case "FLOOR", "CEIL":
		if err := arity(1); err != nil {
			return nil, err
		}
		name := x.Name
		return &scalarFunc{name: name, args: args, typ: sqltypes.Int,
			eval: func(v []sqltypes.Datum) (sqltypes.Datum, error) {
				if v[0].IsNull() {
					return sqltypes.NullDatum, nil
				}
				if !v[0].Typ().Numeric() {
					return sqltypes.NullDatum, fmt.Errorf("%s() needs a numeric argument", name)
				}
				f := v[0].Float()
				if name == "FLOOR" {
					return sqltypes.NewInt(int64(math.Floor(f))), nil
				}
				return sqltypes.NewInt(int64(math.Ceil(f))), nil
			}}, nil
	case "LEAST", "GREATEST":
		if len(args) < 1 {
			return nil, fmt.Errorf("%s() needs at least one argument", x.Name)
		}
		name := x.Name
		return &scalarFunc{name: name, args: args, typ: args[0].Type(),
			eval: func(v []sqltypes.Datum) (sqltypes.Datum, error) {
				best := sqltypes.NullDatum
				for _, d := range v {
					if d.IsNull() {
						return sqltypes.NullDatum, nil
					}
					if best.IsNull() {
						best = d
						continue
					}
					cmp, err := sqltypes.Compare(d, best)
					if err != nil {
						return sqltypes.NullDatum, err
					}
					if (name == "LEAST" && cmp < 0) || (name == "GREATEST" && cmp > 0) {
						best = d
					}
				}
				return best, nil
			}}, nil
	case "MONTH", "YEAR", "DAY":
		if err := arity(1); err != nil {
			return nil, err
		}
		name := x.Name
		return &scalarFunc{name: name, args: args, typ: sqltypes.Int,
			eval: func(v []sqltypes.Datum) (sqltypes.Datum, error) {
				if v[0].IsNull() {
					return sqltypes.NullDatum, nil
				}
				if v[0].Typ() != sqltypes.Date {
					return sqltypes.NullDatum, fmt.Errorf("%s() needs a DATE argument", name)
				}
				t := v[0].Time()
				switch name {
				case "MONTH":
					return sqltypes.NewInt(int64(t.Month())), nil
				case "YEAR":
					return sqltypes.NewInt(int64(t.Year())), nil
				default:
					return sqltypes.NewInt(int64(t.Day())), nil
				}
			}}, nil
	default:
		return nil, fmt.Errorf("unknown function %s()", x.Name)
	}
}

// Truthy reports whether a filter predicate accepts the row: SQL's WHERE
// keeps rows whose predicate is true (not false, not unknown).
func Truthy(d sqltypes.Datum) bool {
	return !d.IsNull() && d.Typ() == sqltypes.Bool && d.Bool()
}
