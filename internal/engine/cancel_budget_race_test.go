//go:build race

package engine

import "time"

// cancelLatencyBudget under the race detector: instrumentation slows every
// partition compute by an order of magnitude, so the wall-clock bound is
// relaxed; the normal build keeps the strict 100ms budget.
const cancelLatencyBudget = time.Second
