package storage

import (
	"testing"

	"rfview/internal/sqltypes"
)

func row(vals ...int64) sqltypes.Row {
	r := make(sqltypes.Row, len(vals))
	for i, v := range vals {
		r[i] = sqltypes.NewInt(v)
	}
	return r
}

func TestTableInsertScan(t *testing.T) {
	tb := NewTable()
	for i := int64(0); i < 10; i++ {
		if _, err := tb.Insert(row(i, i*i)); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Len() != 10 {
		t.Fatalf("Len = %d", tb.Len())
	}
	seen := 0
	tb.Scan(func(id RowID, r sqltypes.Row) bool {
		if r[1].Int() != r[0].Int()*r[0].Int() {
			t.Fatalf("row %d corrupted: %v", id, r)
		}
		seen++
		return true
	})
	if seen != 10 {
		t.Fatalf("scanned %d rows", seen)
	}
	// Early termination.
	seen = 0
	tb.Scan(func(RowID, sqltypes.Row) bool { seen++; return seen < 3 })
	if seen != 3 {
		t.Fatalf("early scan saw %d rows", seen)
	}
}

func TestTableDeleteUpdate(t *testing.T) {
	tb := NewTable()
	ids := make([]RowID, 5)
	for i := int64(0); i < 5; i++ {
		ids[i], _ = tb.Insert(row(i))
	}
	if err := tb.Delete(ids[2]); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 4 {
		t.Fatalf("Len = %d after delete", tb.Len())
	}
	if tb.Get(ids[2]) != nil {
		t.Error("deleted row still visible")
	}
	if err := tb.Delete(ids[2]); err == nil {
		t.Error("double delete must fail")
	}
	nid, err := tb.Update(ids[3], row(99))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Get(ids[3]) != nil {
		t.Error("old version still visible after update")
	}
	if tb.Get(nid)[0].Int() != 99 {
		t.Error("update not visible")
	}
	if _, err := tb.Update(ids[2], row(1)); err == nil {
		t.Error("update of deleted row must fail")
	}
	if tb.Get(RowID(100)) != nil {
		t.Error("out-of-range Get must return nil")
	}
}

func TestTableIndexMaintenance(t *testing.T) {
	tb := NewTable()
	for i := int64(0); i < 100; i++ {
		tb.Insert(row(i%10, i))
	}
	h, err := tb.AddIndex("by_a", []int{0}, false, true)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	tb.LookupAt(h, row(3), tb.Latest(), func(id RowID, r sqltypes.Row) bool {
		if r[0].Int() != 3 {
			t.Fatalf("index returned wrong row %v", r)
		}
		count++
		return true
	})
	if count != 10 {
		t.Fatalf("index lookup found %d rows, want 10", count)
	}
	// Mutations keep visible probe results in sync (dead versions stay in
	// the index but are filtered out).
	var victim RowID
	tb.LookupAt(h, row(3), tb.Latest(), func(id RowID, _ sqltypes.Row) bool { victim = id; return false })
	if err := tb.Delete(victim); err != nil {
		t.Fatal(err)
	}
	count = 0
	tb.LookupAt(h, row(3), tb.Latest(), func(RowID, sqltypes.Row) bool { count++; return true })
	if count != 9 {
		t.Fatalf("after delete index finds %d rows, want 9", count)
	}
	// Update that moves the key.
	var mover RowID
	tb.LookupAt(h, row(4), tb.Latest(), func(id RowID, _ sqltypes.Row) bool { mover = id; return false })
	if _, err := tb.Update(mover, row(7, -1)); err != nil {
		t.Fatal(err)
	}
	count = 0
	tb.LookupAt(h, row(7), tb.Latest(), func(RowID, sqltypes.Row) bool { count++; return true })
	if count != 11 {
		t.Fatalf("after key-moving update index finds %d rows under 7, want 11", count)
	}
}

func TestTableUniqueIndex(t *testing.T) {
	tb := NewTable()
	tb.Insert(row(1))
	tb.Insert(row(2))
	if _, err := tb.AddIndex("pk", []int{0}, true, true); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(row(1)); err == nil {
		t.Error("unique violation on insert must fail")
	}
	if _, err := tb.Insert(row(3)); err != nil {
		t.Errorf("distinct insert failed: %v", err)
	}
	// Building a unique index over duplicates must fail.
	tb2 := NewTable()
	tb2.Insert(row(1))
	tb2.Insert(row(1))
	if _, err := tb2.AddIndex("pk", []int{0}, true, true); err == nil {
		t.Error("unique index build over duplicates must fail")
	}
}

func TestTableIndexAdministration(t *testing.T) {
	tb := NewTable()
	tb.Insert(row(1, 2))
	if _, err := tb.AddIndex("i1", []int{0}, false, true); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddIndex("i1", []int{1}, false, true); err == nil {
		t.Error("duplicate index name must fail")
	}
	if h := tb.IndexOn([]int{0}); h == nil || h.Name != "i1" {
		t.Error("IndexOn([0]) should find i1")
	}
	if h := tb.IndexOn([]int{1}); h != nil {
		t.Error("IndexOn([1]) should find nothing")
	}
	if len(tb.Indexes()) != 1 {
		t.Error("Indexes() length mismatch")
	}
	if err := tb.DropIndex("i1"); err != nil {
		t.Fatal(err)
	}
	if err := tb.DropIndex("i1"); err == nil {
		t.Error("dropping a missing index must fail")
	}
}

func TestTableSortedRowIDs(t *testing.T) {
	tb := NewTable()
	vals := []int64{5, 3, 9, 1, 7}
	for _, v := range vals {
		tb.Insert(row(v))
	}
	ids := tb.SortedRowIDs([]int{0})
	prev := int64(-1 << 62)
	for _, id := range ids {
		v := tb.Get(id)[0].Int()
		if v < prev {
			t.Fatalf("not sorted: %d after %d", v, prev)
		}
		prev = v
	}
	if len(ids) != 5 {
		t.Fatalf("got %d ids", len(ids))
	}
}

func TestCompareKeyPrefix(t *testing.T) {
	full := sqltypes.Row{sqltypes.NewInt(3), sqltypes.NewInt(7)}
	if compareKeyPrefix(full, sqltypes.Row{sqltypes.NewInt(3)}) != 0 {
		t.Error("prefix probe should compare equal")
	}
	if compareKeyPrefix(full, sqltypes.Row{sqltypes.NewInt(4)}) >= 0 {
		t.Error("(3,7) should sort before probe (4)")
	}
	if compareKeyPrefix(full, full) != 0 {
		t.Error("identical keys should compare equal")
	}
}
