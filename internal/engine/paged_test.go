package engine

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	rferrors "rfview/errors"
	"rfview/internal/rewrite"
	"rfview/internal/sqltypes"
	"rfview/internal/storage"
)

// newTinyPoolEngine builds an engine whose buffer pool holds only a few
// 1 KiB pages, so every multi-page operation runs under eviction pressure.
func newTinyPoolEngine(t *testing.T, pages int, mutate func(*Options)) *Engine {
	t.Helper()
	opts := DefaultOptions()
	opts.PageSize = storage.MinPageSize
	opts.PageCacheBytes = int64(pages) * storage.MinPageSize
	if mutate != nil {
		mutate(&opts)
	}
	e := New(opts)
	t.Cleanup(func() { e.Close() })
	return e
}

// encodeRows re-encodes a result set for byte-exact comparison.
func encodeRowBytes(rows []sqltypes.Row) [][]byte {
	out := make([][]byte, len(rows))
	for i, r := range rows {
		out[i] = sqltypes.EncodeRowData(nil, r)
	}
	return out
}

// TestPagedTinyPoolDifferentialOracle is the storage acceptance oracle: the
// same data, DML history, and reporting-function queries run through every
// evaluation strategy — native window, boxed (non-vectorized) window,
// self-join simulation, MaxOA derivation, MinOA derivation — on a paged
// engine with a 4-page pool and on an unlimited in-memory reference engine
// (DisablePagedStorage). Every answer must match byte-exactly.
func TestPagedTinyPoolDifferentialOracle(t *testing.T) {
	const n = 400
	load := func(e *Engine) {
		t.Helper()
		mustExec(t, e, `CREATE TABLE seq (pos INTEGER, val INTEGER, tag VARCHAR(64))`)
		var b strings.Builder
		b.WriteString("INSERT INTO seq (pos, val, tag) VALUES ")
		for i := 1; i <= n; i++ {
			if i > 1 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d, '%s')", i, (i*7919)%251-125, strings.Repeat("x", i%50))
		}
		mustExec(t, e, b.String())
		// DML history: updates rewrite rows into new heap pages, deletes
		// leave dead versions for visibility filtering to skip.
		mustExec(t, e, `UPDATE seq SET val = val + 1000 WHERE pos > 100 AND pos < 160`)
		mustExec(t, e, `DELETE FROM seq WHERE pos > 350`)
	}

	queries := []string{
		`SELECT pos, val, tag FROM seq`,
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 3 FOLLOWING) AS w FROM seq`,
		`SELECT pos, val FROM seq ORDER BY val, pos`,
	}
	viewDDL := `CREATE MATERIALIZED VIEW mv AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS val FROM seq`

	strategies := []struct {
		name   string
		mutate func(*Options)
		view   bool
	}{
		{"native", nil, false},
		{"boxed", func(o *Options) { o.DisableVectorized = true }, false},
		{"selfjoin", func(o *Options) { o.NativeWindow = false }, false},
		{"maxoa", func(o *Options) { o.Strategy = rewrite.StrategyMaxOA }, true},
		{"minoa", func(o *Options) { o.Strategy = rewrite.StrategyMinOA }, true},
	}

	for _, strat := range strategies {
		// Reference: identical strategy, storage kept fully resident.
		refOpts := DefaultOptions()
		refOpts.DisablePagedStorage = true
		if strat.mutate != nil {
			strat.mutate(&refOpts)
		}
		ref := New(refOpts)
		load(ref)
		subject := newTinyPoolEngine(t, 4, strat.mutate)
		load(subject)
		if strat.view {
			mustExec(t, ref, viewDDL)
			mustExec(t, subject, viewDDL)
		}
		for qi, q := range queries {
			want := encodeRowBytes(mustExec(t, ref, q).Rows)
			got := encodeRowBytes(mustExec(t, subject, q).Rows)
			if len(got) != len(want) {
				t.Fatalf("%s query %d: %d rows paged, %d resident", strat.name, qi, len(got), len(want))
			}
			for i := range got {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("%s query %d: row %d differs byte-wise", strat.name, qi, i)
				}
			}
		}
		if st := subject.StorageStats(); st.Evictions == 0 {
			t.Fatalf("%s: tiny pool never evicted (BytesResident=%d) — oracle exerts no pressure", strat.name, st.BytesResident)
		}
		if st := ref.StorageStats(); st.PageSize != 0 {
			t.Fatalf("reference engine is paged: %+v", st)
		}
		ref.Close()
	}
}

// TestPagedEvictionRaces hammers a 16-page pool from concurrent scanners,
// writers, and a checkpoint-style flusher under the race detector. Every
// scan must return a consistent snapshot (committed row count) and no
// statement may fail with anything but a write-write conflict.
func TestPagedEvictionRaces(t *testing.T) {
	e := newTinyPoolEngine(t, 16, nil)
	mustExec(t, e, `CREATE TABLE seq (pos INTEGER, val INTEGER, pad VARCHAR(128))`)
	var b strings.Builder
	b.WriteString("INSERT INTO seq VALUES ")
	const base = 300
	for i := 1; i <= base; i++ {
		if i > 1 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d, '%s')", i, i, strings.Repeat("p", 100))
	}
	mustExec(t, e, b.String())

	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf(format, args...)
	}
	// Scanners: full scans and windowed aggregates, each a fixed snapshot.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				res, err := e.Exec(`SELECT COUNT(*) AS c, SUM(pos) AS s FROM seq`)
				if err != nil {
					fail("scan: %v", err)
					return
				}
				if c := res.Rows[0][0].Int(); c < base {
					fail("scan saw %d rows, want >= %d", c, base)
					return
				}
			}
		}()
	}
	// Writers: inserts on private key ranges, updates on shared hot rows.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				pos := 1000 + w*100 + i
				if _, err := e.Exec(fmt.Sprintf(
					"INSERT INTO seq VALUES (%d, %d, '%s')", pos, pos, strings.Repeat("q", 90))); err != nil {
					fail("insert: %v", err)
					return
				}
				_, err := e.Exec(fmt.Sprintf("UPDATE seq SET val = val + 1 WHERE pos = %d", 1+(w*7+i)%base))
				if err != nil && rferrors.CodeOf(err) != rferrors.CodeConflict {
					fail("update: %v", err)
					return
				}
			}
		}(w)
	}
	// Checkpoint-style flusher: write-back churn racing the scans above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			if err := e.FlushStorage(); err != nil {
				fail("flush: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	res := mustExec(t, e, `SELECT COUNT(*) AS c FROM seq`)
	if c := res.Rows[0][0].Int(); c != base+3*30 {
		t.Fatalf("final count = %d, want %d", c, base+3*30)
	}
	st := e.StorageStats()
	if st.Evictions == 0 || st.Writebacks == 0 {
		t.Fatalf("race ran without eviction pressure: %+v", st)
	}
}

// TestPagedExplainAnalyzeAndMetrics checks the observability surface: EXPLAIN
// ANALYZE annotates Scan nodes with page counts and hit ratios, and the
// metrics exposition carries the bufferpool series.
func TestPagedExplainAnalyzeAndMetrics(t *testing.T) {
	e := newTinyPoolEngine(t, 4, nil)
	mustExec(t, e, `CREATE TABLE seq (pos INTEGER, val INTEGER, pad VARCHAR(200))`)
	var b strings.Builder
	b.WriteString("INSERT INTO seq VALUES ")
	for i := 1; i <= 200; i++ {
		if i > 1 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d, '%s')", i, i, strings.Repeat("z", 150))
	}
	mustExec(t, e, b.String())

	res := mustExec(t, e, `EXPLAIN ANALYZE SELECT pos, val FROM seq`)
	if !strings.Contains(res.Plan, "pages=") || !strings.Contains(res.Plan, "hit_ratio=") {
		t.Fatalf("plan missing page annotation:\n%s", res.Plan)
	}

	text := e.Metrics().Expose()
	for _, metric := range []string{
		"rfview_bufferpool_misses_total", "rfview_bufferpool_evictions_total",
		"rfview_bufferpool_writebacks_total", "rfview_bufferpool_resident_bytes",
	} {
		if v := metricValue(t, text, metric); v <= 0 {
			t.Fatalf("%s = %v, want > 0", metric, v)
		}
	}
}

// TestPageSizeOptionRespected checks the page-size knob reaches the pool and
// out-of-range values are clamped.
func TestPageSizeOptionRespected(t *testing.T) {
	opts := DefaultOptions()
	opts.PageSize = 4096
	e := New(opts)
	defer e.Close()
	if got := e.PageSize(); got != 4096 {
		t.Fatalf("PageSize() = %d, want 4096", got)
	}
	if st := e.StorageStats(); st.PageSize != 4096 {
		t.Fatalf("StorageStats().PageSize = %d", st.PageSize)
	}

	opts = DefaultOptions()
	opts.PageSize = 1 // below MinPageSize: clamped
	e2 := New(opts)
	defer e2.Close()
	if got := e2.PageSize(); got != storage.MinPageSize {
		t.Fatalf("clamped PageSize() = %d, want %d", got, storage.MinPageSize)
	}

	opts = DefaultOptions()
	opts.DisablePagedStorage = true
	e3 := New(opts)
	defer e3.Close()
	if got := e3.PageSize(); got != 0 {
		t.Fatalf("disabled paged storage reports PageSize %d", got)
	}
	if err := e3.FlushStorage(); err != nil {
		t.Fatalf("FlushStorage on resident engine: %v", err)
	}
}
