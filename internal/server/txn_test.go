package server_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	rferrors "rfview/errors"
	"rfview/internal/client"
)

// TestServerTransactions drives MVCC transactions over the wire: per-
// connection isolation, snapshot reads, first-committer-wins conflicts
// surfacing as code "conflict", and the stats op's txn block.
func TestServerTransactions(t *testing.T) {
	_, _, addr, _ := startServer(t)
	a, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	mustExec := func(c *client.Client, sql string) *client.Result {
		t.Helper()
		res, err := c.Exec(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		return res
	}
	count := func(c *client.Client) float64 {
		t.Helper()
		res, err := c.Query(`SELECT COUNT(*) AS c FROM seq`)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][0].(float64)
	}

	mustExec(a, `CREATE TABLE seq (pos INTEGER, val INTEGER)`)
	mustExec(a, `INSERT INTO seq VALUES (1, 1), (2, 2), (3, 3)`)

	// A's open transaction is invisible to B until COMMIT.
	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(a, `INSERT INTO seq VALUES (4, 4)`)
	if got := count(b); got != 3 {
		t.Fatalf("B sees %v rows while A's txn is open, want 3", got)
	}
	if got := count(a); got != 4 {
		t.Fatalf("A does not see its own insert: %v rows", got)
	}
	st, err := b.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SessionInTxn {
		t.Fatal("B's stats claim an open transaction")
	}
	st, err = a.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.SessionInTxn {
		t.Fatal("A's stats do not show its open transaction")
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := count(b); got != 4 {
		t.Fatalf("B sees %v rows after A committed, want 4", got)
	}

	// Write-write conflict: both update the same row; the second aborts
	// with code "conflict" and its whole transaction is rolled back.
	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := b.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(a, `UPDATE seq SET val = 10 WHERE pos = 1`)
	mustExec(b, `INSERT INTO seq VALUES (5, 5)`) // doomed along with the txn
	_, err = b.Exec(`UPDATE seq SET val = 20 WHERE pos = 1`)
	if err == nil {
		t.Fatal("conflicting update over the wire succeeded")
	}
	if !errors.Is(err, rferrors.ErrConflict) && rferrors.CodeOf(err) != rferrors.CodeConflict {
		t.Fatalf("conflict code lost on the wire: %v", err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Rollback(); err == nil {
		t.Fatal("ROLLBACK after conflict abort should report no transaction in progress")
	}
	if got := count(b); got != 4 {
		t.Fatalf("conflict-aborted insert leaked: %v rows, want 4", got)
	}

	st, err = a.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Txn.Commits == 0 || st.Txn.ConflictAborts == 0 {
		t.Fatalf("txn stats block not populated: %+v", st.Txn)
	}
}

// TestServerDisconnectRollsBack: a client that vanishes mid-transaction must
// leave no trace.
func TestServerDisconnectRollsBack(t *testing.T) {
	_, eng, addr, _ := startServer(t)
	a, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.Exec(`CREATE TABLE seq (pos INTEGER, val INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec(`INSERT INTO seq VALUES (1, 1)`); err != nil {
		t.Fatal(err)
	}

	b, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec(`INSERT INTO seq VALUES (2, 2)`); err != nil {
		t.Fatal(err)
	}
	b.Close() // vanish mid-transaction

	// The server rolls back on disconnect; poll until the session reaper ran.
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := eng.Exec(`SELECT COUNT(*) AS c FROM seq`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dropped connection's transaction still visible: %d rows", res.Rows[0][0].Int())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The abandoned pending row must not resurface for new connections.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query(`SELECT COUNT(*) AS c FROM seq`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(float64) != 1 {
		t.Fatalf("COUNT = %v after disconnect, want 1", res.Rows[0][0])
	}
	if _, err := c.Exec(fmt.Sprintf(`INSERT INTO seq VALUES (%d, %d)`, 2, 2)); err != nil {
		t.Fatalf("insert after rollback: %v", err)
	}
}
