// Package rewrite implements the paper's query-rewriting layer:
//
//   - SelfJoin turns a reporting-function query into the pure-relational
//     self-join pattern of Fig. 2 — the fallback for engines "without
//     explicit support of reporting functionality inside the relational
//     engine" (§2.2), measured in Table 1;
//   - Derive matches a reporting-function query against a materialized
//     sequence view and emits the MaxOA (Fig. 10) or MinOA (Fig. 13)
//     relational operator pattern, in the disjunctive-join-predicate or the
//     UNION-of-simple-predicates form — the four strategies of Table 2;
//   - RawFromCumulative emits the Fig. 4 reconstruction pattern.
//
// All rewrites produce parse trees (sqlparser ASTs); the engine plans them
// like any other query. One deviation from the paper's figures: residue
// predicates are written MOD(pos+OFF, W) = MOD(pos+OFF, W) with OFF a
// multiple of W large enough to keep both operands non-negative, because SQL
// MOD takes the dividend's sign and complete sequences contain header
// positions ≤ 0.
package rewrite

import (
	"fmt"
	"strings"

	"rfview/internal/plan"
	"rfview/internal/sqlparser"
)

// WindowShape is the normalized frame of a matched reporting function.
type WindowShape struct {
	Cumulative bool
	Preceding  int // l
	Following  int // h
}

// String renders the shape the way the paper writes windows.
func (w WindowShape) String() string {
	if w.Cumulative {
		return "cumulative"
	}
	return fmt.Sprintf("(%d,%d)", w.Preceding, w.Following)
}

// WindowQuery is a reporting-function query in the canonical single-table
// shape both rewriters understand:
//
//	SELECT <pos> [, <cols>…], AGG(<val>) OVER (
//	    [PARTITION BY <cols>…] ORDER BY <pos> ROWS …) [AS alias]
//	FROM <table>
type WindowQuery struct {
	Table        string
	Ref          string // alias used in the query
	PosCol       string
	ValCol       string // "" for COUNT(*)
	Agg          string
	Shape        WindowShape
	PartitionBy  []string // bare column names
	OutAlias     string   // alias of the window column ("" if none)
	PlainCols    []string // non-window select items (bare/qualified columns)
	WindowItemAt int      // index of the window item in the select list
}

// ErrNoMatch reports that a statement is not in the canonical shape; callers
// fall back to native planning.
type ErrNoMatch struct{ Reason string }

func (e *ErrNoMatch) Error() string { return "rewrite: query shape not supported: " + e.Reason }

func noMatch(reason string, args ...any) error {
	return &ErrNoMatch{Reason: fmt.Sprintf(reason, args...)}
}

// MatchWindowQuery recognizes the canonical single-table reporting-function
// query shape.
func MatchWindowQuery(sel *sqlparser.Select) (*WindowQuery, error) {
	if sel.Distinct || sel.Where != nil || len(sel.GroupBy) > 0 || sel.Having != nil {
		return nil, noMatch("only plain SELECT … FROM table queries are rewritable")
	}
	tn, ok := sel.From.(*sqlparser.TableName)
	if !ok {
		return nil, noMatch("FROM must reference a single table")
	}
	wq := &WindowQuery{Table: tn.Name, Ref: tn.RefName(), WindowItemAt: -1}

	for i, it := range sel.Items {
		if it.Star {
			return nil, noMatch("star projections are not rewritable")
		}
		if w, ok := it.Expr.(*sqlparser.WindowExpr); ok {
			if wq.WindowItemAt >= 0 {
				return nil, noMatch("more than one reporting function")
			}
			wq.WindowItemAt = i
			wq.OutAlias = it.Alias
			if err := matchWindowExpr(w, wq); err != nil {
				return nil, err
			}
			continue
		}
		cr, ok := it.Expr.(*sqlparser.ColumnRef)
		if !ok {
			return nil, noMatch("non-window select items must be plain columns")
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, wq.Ref) {
			return nil, noMatch("column %s does not belong to %s", cr, wq.Ref)
		}
		name := cr.Name
		if it.Alias != "" && !strings.EqualFold(it.Alias, cr.Name) {
			return nil, noMatch("renamed plain columns are not rewritable")
		}
		wq.PlainCols = append(wq.PlainCols, name)
	}
	if wq.WindowItemAt < 0 {
		return nil, noMatch("no reporting function in the select list")
	}
	return wq, nil
}

func matchWindowExpr(w *sqlparser.WindowExpr, wq *WindowQuery) error {
	name := w.Func.Name
	switch name {
	case "SUM", "COUNT", "AVG", "MIN", "MAX":
	default:
		return noMatch("unsupported reporting function %s()", name)
	}
	wq.Agg = name
	if w.Func.Star {
		if name != "COUNT" {
			return noMatch("%s(*) is not valid", name)
		}
	} else {
		if len(w.Func.Args) != 1 {
			return noMatch("%s() must take one column", name)
		}
		cr, ok := w.Func.Args[0].(*sqlparser.ColumnRef)
		if !ok {
			return noMatch("aggregate argument must be a plain column")
		}
		wq.ValCol = cr.Name
	}
	// Spec-shape checks go through the planner's canonical WindowSpec: the
	// sequence views index one ascending position column (default NULL order)
	// per partition-column list, which is exactly the PlainOrder /
	// PlainPartition contract.
	spec := plan.SpecOf(w)
	pos, ok := spec.PlainOrder()
	if !ok {
		return noMatch("reporting function must ORDER BY a single ascending plain column")
	}
	wq.PosCol = pos
	part, ok := spec.PlainPartition()
	if !ok {
		return noMatch("PARTITION BY expressions must be plain columns")
	}
	if len(part) > 0 {
		wq.PartitionBy = part
	}
	shape, err := frameShape(w.Frame, len(w.OrderBy) > 0)
	if err != nil {
		return err
	}
	wq.Shape = shape
	return nil
}

// frameShape normalizes a ROWS frame to the paper's window classification.
func frameShape(f *sqlparser.FrameClause, hasOrder bool) (WindowShape, error) {
	if f == nil {
		if hasOrder {
			return WindowShape{Cumulative: true}, nil
		}
		return WindowShape{}, noMatch("whole-partition frames are not sequence windows")
	}
	start, end := f.Start, f.End
	if start.Type == sqlparser.UnboundedPreceding && end.Type == sqlparser.CurrentRow {
		return WindowShape{Cumulative: true}, nil
	}
	l, err := boundPreceding(start)
	if err != nil {
		return WindowShape{}, err
	}
	h, err := boundFollowing(end)
	if err != nil {
		return WindowShape{}, err
	}
	return WindowShape{Preceding: l, Following: h}, nil
}

func boundPreceding(b sqlparser.FrameBound) (int, error) {
	switch b.Type {
	case sqlparser.OffsetPreceding:
		return b.Offset, nil
	case sqlparser.CurrentRow:
		return 0, nil
	default:
		return 0, noMatch("frame start %v is not a sliding-window bound", b)
	}
}

func boundFollowing(b sqlparser.FrameBound) (int, error) {
	switch b.Type {
	case sqlparser.OffsetFollowing:
		return b.Offset, nil
	case sqlparser.CurrentRow:
		return 0, nil
	default:
		return 0, noMatch("frame end %v is not a sliding-window bound", b)
	}
}
