package core

import (
	"math/rand"
	"testing"
)

// partCheck verifies every live partition's maintained sequence against a
// naive recomputation of that partition's raw data.
func partCheck(t *testing.T, pm *PartitionedMaintainer, ctx string) {
	t.Helper()
	for _, key := range pm.Keys() {
		m := pm.Partition(key)
		want, err := ComputeNaive(m.Raw(), m.Seq().Win, m.Seq().Agg)
		if err != nil {
			t.Fatalf("%s: partition %q: %v", ctx, key, err)
		}
		if !EqualSeq(m.Seq(), want, 1e-9) {
			t.Fatalf("%s: partition %q diverged from recomputation", ctx, key)
		}
	}
}

func TestPartitionedMaintainerLifecycle(t *testing.T) {
	pm, err := NewPartitionedMaintainer(Sliding(2, 1), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.SetPartition("a", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := pm.SetPartition("b", []float64{10, 20}); err != nil {
		t.Fatal(err)
	}
	partCheck(t, pm, "after set")

	// Birth: position 1 of an unknown key opens the partition.
	if _, born, err := pm.Append("c", 1, 7); err != nil || !born {
		t.Fatalf("Append(c,1) = born=%v err=%v, want a birth", born, err)
	}
	// Append at n_p+1 extends an existing partition without a birth.
	if _, born, err := pm.Append("a", 5, -3); err != nil || born {
		t.Fatalf("Append(a,5) = born=%v err=%v, want a plain append", born, err)
	}
	if err := pm.Update("b", 2, 99); err != nil {
		t.Fatal(err)
	}
	partCheck(t, pm, "after grow")
	if got := pm.Keys(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("Keys() = %v, want sorted [a b c]", got)
	}
	if n, ok := pm.N("a"); !ok || n != 5 {
		t.Fatalf("N(a) = %d,%v want 5,true", n, ok)
	}

	// Suffix deletes shrink; deleting the only row kills the partition.
	if died, err := pm.DeleteSuffix("b", 2); err != nil || died {
		t.Fatalf("DeleteSuffix(b,2) = died=%v err=%v, want a shrink", died, err)
	}
	if died, err := pm.DeleteSuffix("c", 1); err != nil || !died {
		t.Fatalf("DeleteSuffix(c,1) = died=%v err=%v, want a death", died, err)
	}
	if pm.Len() != 2 {
		t.Fatalf("Len() = %d after the death of c, want 2", pm.Len())
	}
	if _, ok := pm.N("c"); ok {
		t.Fatal("dead partition c still reports a cardinality")
	}
	partCheck(t, pm, "after shrink")

	// A rebirth at position 1 works like any other birth.
	if _, born, err := pm.Append("c", 1, 42); err != nil || !born {
		t.Fatalf("rebirth of c = born=%v err=%v", born, err)
	}
	partCheck(t, pm, "after rebirth")
}

func TestPartitionedMaintainerErrors(t *testing.T) {
	if _, err := NewPartitionedMaintainer(Sliding(1, 1), Avg); err == nil {
		t.Fatal("AVG partitioned maintainer must be rejected; derive AVG from SUM and COUNT")
	}
	if _, err := NewPartitionedMaintainer(Sliding(-1, 0), Sum); err == nil {
		t.Fatal("invalid window must be rejected")
	}
	pm, err := NewPartitionedMaintainer(Sliding(1, 1), Max)
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.SetPartition("a", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pm.Append("nope", 2, 5); err == nil {
		t.Fatal("opening an unknown partition at position 2 must fail (non-dense)")
	}
	if _, _, err := pm.Append("a", 2, 5); err == nil {
		t.Fatal("insert into the middle of a partition must fail (not an append)")
	}
	if _, err := pm.DeleteSuffix("a", 1); err == nil {
		t.Fatal("delete of a non-suffix position must fail")
	}
	if _, err := pm.DeleteSuffix("nope", 1); err == nil {
		t.Fatal("delete in an unknown partition must fail")
	}
	if err := pm.Update("nope", 1, 0); err == nil {
		t.Fatal("update in an unknown partition must fail")
	}
	// Failed operations must leave the live partition untouched.
	partCheck(t, pm, "after rejected operations")
}

// TestPartitionedMaintainerTouched: a birth charges the stored positions it
// materializes, and per-partition counters aggregate across partitions.
func TestPartitionedMaintainerTouched(t *testing.T) {
	pm, err := NewPartitionedMaintainer(Sliding(2, 1), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pm.Append("a", 1, 5); err != nil {
		t.Fatal(err)
	}
	born := pm.Partition("a").Seq().Len()
	if got := pm.Touched(); got != born {
		t.Fatalf("birth touched %d positions, want the full stored range %d", got, born)
	}
	before := pm.Touched()
	if err := pm.Update("a", 1, 9); err != nil {
		t.Fatal(err)
	}
	if pm.Touched() <= before {
		t.Fatal("update did not accumulate into the partitioned Touched counter")
	}
}

// TestQuickPartitionedMaintainer drives a randomized partition workload —
// births, appends, updates, suffix deletes and deaths — and differentially
// checks every partition after every operation.
func TestQuickPartitionedMaintainer(t *testing.T) {
	rng := rand.New(rand.NewSource(20020602))
	for trial := 0; trial < 20; trial++ {
		aggs := []Agg{Sum, Count, Min, Max}
		agg := aggs[rng.Intn(len(aggs))]
		var w Window
		if rng.Intn(4) == 0 {
			w = Cumul()
		} else {
			l, h := rng.Intn(3), rng.Intn(3)
			if l+h == 0 {
				l = 1
			}
			w = Sliding(l, h)
		}
		pm, err := NewPartitionedMaintainer(w, agg)
		if err != nil {
			t.Fatal(err)
		}
		keys := []string{"a", "b"}
		for _, k := range keys {
			if err := pm.SetPartition(k, randRaw(rng, 2+rng.Intn(8))); err != nil {
				t.Fatal(err)
			}
		}
		born := 0
		for op := 0; op < 40; op++ {
			key := keys[rng.Intn(len(keys))]
			n, alive := pm.N(key)
			switch {
			case !alive || rng.Float64() < 0.1 && len(keys) < 6:
				born++
				key = string(rune('c' + born%8))
				if _, ok := pm.N(key); ok {
					continue // key already live; skip this round
				}
				if _, b, err := pm.Append(key, 1, float64(rng.Intn(40)-20)); err != nil || !b {
					t.Fatalf("birth of %q: born=%v err=%v", key, b, err)
				}
				keys = append(keys, key)
			case rng.Float64() < 0.3:
				if _, _, err := pm.Append(key, n+1, float64(rng.Intn(40)-20)); err != nil {
					t.Fatal(err)
				}
			case rng.Float64() < 0.3 && (n > 1 || len(keys) > 1):
				died, err := pm.DeleteSuffix(key, n)
				if err != nil {
					t.Fatal(err)
				}
				if died {
					for i, k := range keys {
						if k == key {
							keys = append(keys[:i], keys[i+1:]...)
							break
						}
					}
				}
			default:
				if err := pm.Update(key, 1+rng.Intn(n), float64(rng.Intn(40)-20)); err != nil {
					t.Fatal(err)
				}
			}
			partCheck(t, pm, agg.String()+" workload")
		}
	}
}
