package wal

import (
	"fmt"
	"testing"

	"rfview/internal/engine"
)

// Deferred view maintenance keeps its delta queue in memory only. These tests
// pin down the two durability obligations that make that safe:
//
//  1. a crash with deltas still queued loses nothing, because replaying the
//     WAL tail re-executes the DML — which re-enqueues the deltas — and the
//     recovery-ending checkpoint drains them;
//  2. a checkpoint drains the queue BEFORE capturing state, because the
//     snapshot supersedes exactly the WAL records whose deltas are queued —
//     truncating them with the queue still pending would lose the deltas.

func deferredOpts() engine.Options {
	o := engine.DefaultOptions()
	o.ViewMaintenance = "deferred"
	return o
}

// deferredWorkload is maintainable DML only (appends, value updates, a tail
// delete), so in eager mode every statement folds into the views
// incrementally and in deferred mode every statement enqueues.
func deferredWorkloadSetup() []string {
	stmts := []string{
		`CREATE TABLE seq (pos INTEGER, val INTEGER)`,
		`CREATE UNIQUE INDEX seq_pk ON seq (pos)`,
	}
	for i := 1; i <= 20; i++ {
		stmts = append(stmts, fmt.Sprintf(`INSERT INTO seq VALUES (%d, %d)`, i, (i*31)%60-30))
	}
	stmts = append(stmts,
		`CREATE MATERIALIZED VIEW matseq AS SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`,
		`CREATE MATERIALIZED VIEW avgseq AS SELECT pos, AVG(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS val FROM seq`,
	)
	return stmts
}

func deferredWorkloadDeltas() []string {
	var stmts []string
	for i := 0; i < 8; i++ {
		stmts = append(stmts, fmt.Sprintf(`UPDATE seq SET val = %d WHERE pos = %d`, i*5-17, 1+(i*7)%20))
	}
	for i := 21; i <= 24; i++ {
		stmts = append(stmts, fmt.Sprintf(`INSERT INTO seq VALUES (%d, %d)`, i, i%9))
	}
	stmts = append(stmts, `DELETE FROM seq WHERE pos = 24`)
	return stmts
}

var deferredQueries = []string{
	`SELECT pos, val FROM matseq`,
	`SELECT pos, val FROM avgseq`,
	`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS w FROM seq`,
	`SELECT pos, AVG(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM seq`,
	`SELECT pos, val FROM seq`,
}

// TestCrashRecoveryDeferredQueue crashes with deltas still queued and checks
// the recovered engine converges to the uncrashed eager reference.
func TestCrashRecoveryDeferredQueue(t *testing.T) {
	dir := t.TempDir()
	mgr, err := Open(Options{Dir: dir, Sync: SyncOff}, deferredOpts())
	if err != nil {
		t.Fatal(err)
	}
	eagerOpts := engine.DefaultOptions()
	eagerOpts.ViewMaintenance = "eager"
	reference := engine.New(eagerOpts)

	for _, sql := range deferredWorkloadSetup() {
		applyBoth(t, mgr.Engine(), reference, sql)
	}
	// Checkpoint so recovery exercises snapshot + tail replay, with every
	// queued delta living strictly in the tail.
	if err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, sql := range deferredWorkloadDeltas() {
		applyBoth(t, mgr.Engine(), reference, sql)
	}
	if pending := mgr.Engine().Views.PendingTotal(); pending == 0 {
		t.Fatal("setup produced no queued deltas; the test would prove nothing")
	}
	// Crash: abandon the manager with the queue pending. The queue is
	// volatile; only the WAL survives.
	mgr = nil

	re, err := Open(Options{Dir: dir, Sync: SyncOff}, deferredOpts())
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer re.Close()
	if pending := re.Engine().Views.PendingTotal(); pending != 0 {
		t.Fatalf("recovery left %d deltas queued; the recovery checkpoint must drain", pending)
	}
	compareEnginesOn(t, re.Engine(), reference, deferredQueries, "deferred queue after crash")

	// The recovered engine keeps maintaining: more deltas, then read-repair.
	for i := 25; i <= 28; i++ {
		applyBoth(t, re.Engine(), reference, fmt.Sprintf(`INSERT INTO seq VALUES (%d, %d)`, i, i%5))
	}
	compareEnginesOn(t, re.Engine(), reference, deferredQueries, "deferred post-recovery traffic")
}

// TestCheckpointDrainsDeferredQueue checks the checkpoint-order obligation
// directly: Checkpoint must fold queued deltas into the snapshot before
// truncating the WAL records that produced them.
func TestCheckpointDrainsDeferredQueue(t *testing.T) {
	dir := t.TempDir()
	mgr, err := Open(Options{Dir: dir, Sync: SyncOff}, deferredOpts())
	if err != nil {
		t.Fatal(err)
	}
	eagerOpts := engine.DefaultOptions()
	eagerOpts.ViewMaintenance = "eager"
	reference := engine.New(eagerOpts)

	for _, sql := range append(deferredWorkloadSetup(), deferredWorkloadDeltas()...) {
		applyBoth(t, mgr.Engine(), reference, sql)
	}
	if pending := mgr.Engine().Views.PendingTotal(); pending == 0 {
		t.Fatal("setup produced no queued deltas; the test would prove nothing")
	}
	if err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if pending := mgr.Engine().Views.PendingTotal(); pending != 0 {
		t.Fatalf("checkpoint left %d deltas queued", pending)
	}
	// Crash immediately after the checkpoint: recovery has ONLY the snapshot
	// (the WAL records behind the queued deltas are truncated). If the
	// snapshot had been captured pre-drain, the deltas would now be lost.
	mgr = nil

	re, err := Open(Options{Dir: dir, Sync: SyncOff}, deferredOpts())
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer re.Close()
	if re.Recovery().RecordsReplayed != 0 {
		t.Fatalf("expected snapshot-only recovery, replayed %d records", re.Recovery().RecordsReplayed)
	}
	compareEnginesOn(t, re.Engine(), reference, deferredQueries, "snapshot-only after drained checkpoint")
}
