package exec

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"rfview/internal/expr"
	"rfview/internal/spill"
	"rfview/internal/sqltypes"
)

// WindowStats aggregates window-operator executions for the engine's
// parallelism-utilization metrics. One instance is shared by every Window
// the engine plans; all fields are atomic, so workers update them lock-free.
type WindowStats struct {
	// Runs counts Window.Open executions; ParallelRuns the subset that used
	// more than one worker.
	Runs, ParallelRuns atomic.Int64
	// Partitions counts partitions evaluated; WorkersUsed sums the worker
	// count of each run, so WorkersUsed/Runs is the mean effective
	// parallelism (utilization = mean / configured cap).
	Partitions, WorkersUsed atomic.Int64
	// NormalizedSorts counts partition orderings that ran on memcomparable
	// byte keys; ComparatorSorts the ones that fell back to sqltypes.Compare
	// (vectorization off, Int/Float-mixed key column, or a NaN key).
	NormalizedSorts, ComparatorSorts atomic.Int64
	// TypedKernels counts window-function evaluations that ran a typed
	// kernel; BoxedKernels the ones that used the Datum accumulator path
	// (vectorization off, NULLs in the argument column, a mixed or
	// non-numeric argument type, or a NaN).
	TypedKernels, BoxedKernels atomic.Int64
	// SortsPerformed counts full window-ordering sorts actually executed: the
	// shared class sorts of multi-window plans, the in-operator orderings of
	// unshared Window runs, and shared runs that hit the NaN partition-key
	// fallback (which re-partition and re-sort like an unshared run).
	// SortsShared counts Window runs that consumed a shared sort without
	// re-ordering; SortsSegmented counts Window runs that reused partition
	// grouping from the stream and re-sorted only within partition segments.
	SortsPerformed, SortsShared, SortsSegmented atomic.Int64
}

// FrameBoundKind mirrors the SQL ROWS frame bound kinds at the executor
// level (kept separate from the parser's AST types so the executor does not
// depend on the parser).
type FrameBoundKind uint8

// Frame bound kinds.
const (
	BoundUnboundedPreceding FrameBoundKind = iota
	BoundPreceding
	BoundCurrentRow
	BoundFollowing
	BoundUnboundedFollowing
)

// FrameBound is one end of a ROWS frame.
type FrameBound struct {
	Kind   FrameBoundKind
	Offset int
}

// FrameSpec is a resolved ROWS frame. The zero value (both bounds
// BoundUnboundedPreceding) is never used directly; use DefaultFrame.
type FrameSpec struct {
	Start, End FrameBound
}

// DefaultFrame returns the SQL default frame: with an ORDER BY, UNBOUNDED
// PRECEDING … CURRENT ROW (cumulative); without, the whole partition.
func DefaultFrame(hasOrder bool) FrameSpec {
	if hasOrder {
		return FrameSpec{
			Start: FrameBound{Kind: BoundUnboundedPreceding},
			End:   FrameBound{Kind: BoundCurrentRow},
		}
	}
	return FrameSpec{
		Start: FrameBound{Kind: BoundUnboundedPreceding},
		End:   FrameBound{Kind: BoundUnboundedFollowing},
	}
}

func (b FrameBound) String() string {
	switch b.Kind {
	case BoundUnboundedPreceding:
		return "UNBOUNDED PRECEDING"
	case BoundPreceding:
		return fmt.Sprintf("%d PRECEDING", b.Offset)
	case BoundCurrentRow:
		return "CURRENT ROW"
	case BoundFollowing:
		return fmt.Sprintf("%d FOLLOWING", b.Offset)
	default:
		return "UNBOUNDED FOLLOWING"
	}
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// rowRange resolves the frame for row i of an n-row partition into a clamped
// index range: lo ∈ [0, n], hi ∈ [-1, n-1]. lo > hi means the frame is empty.
// This is the single clamping point for every frame evaluation strategy.
func (f FrameSpec) rowRange(i, n int) (lo, hi int) {
	return clamp(f.Start.resolve(i, n), 0, n), clamp(f.End.resolve(i, n), -1, n-1)
}

// resolve maps the bound to a row index (may fall outside [0,n-1]; callers
// clamp via FrameSpec.rowRange). i is the current row's index within its
// partition.
func (b FrameBound) resolve(i, n int) int {
	switch b.Kind {
	case BoundUnboundedPreceding:
		return 0
	case BoundPreceding:
		return i - b.Offset
	case BoundCurrentRow:
		return i
	case BoundFollowing:
		return i + b.Offset
	default: // BoundUnboundedFollowing
		return n - 1
	}
}

// WindowFunc is one reporting-function column: an aggregate plus its frame.
// All functions of one Window operator share the PARTITION BY and ORDER BY
// clauses; the planner stacks one operator per distinct clause pair.
type WindowFunc struct {
	Name    string    // SUM, COUNT, AVG, MIN, MAX
	Arg     expr.Expr // nil for COUNT(*)
	Frame   FrameSpec
	OutName string
}

func (w WindowFunc) String() string {
	arg := "*"
	if w.Arg != nil {
		arg = w.Arg.String()
	}
	return fmt.Sprintf("%s(%s) ROWS BETWEEN %s AND %s", w.Name, arg, w.Frame.Start, w.Frame.End)
}

// Window computes reporting functions: for every input row, one output value
// per WindowFunc, aggregated over the ROWS frame within the row's partition
// under the given ordering (the paper's Fig. 1 semantics). Input order is
// preserved in the output; reporting functions do not shrink or reorder the
// stream (§1: "one output value for each single input value").
//
// Algebraic aggregates slide their frame with one Add and one Remove per row
// — the §2.2 pipelined strategy (three operations per position, independent
// of window size). MIN/MAX use a monotonic deque, still O(n) amortized.
// Partitions are independent by construction (the §6 partitioning reduction
// lemma), so with Parallelism > 1 they are fanned across a bounded worker
// pool; every partition writes pre-sized, disjoint result slots, keeping the
// hot path lock-free while preserving input order in the output.
type Window struct {
	Input       Operator
	PartitionBy []expr.Expr
	OrderBy     []SortKey
	Funcs       []WindowFunc
	// Parallelism caps the worker goroutines evaluating partitions
	// concurrently; 0 or 1 means sequential. Degenerate inputs (empty input,
	// a single partition) always take the sequential fast path, and the pool
	// never exceeds the partition count.
	Parallelism int
	// Ctx, when set, cancels the computation: the input drain, the worker
	// pool, and per-partition evaluation all observe it. nil means
	// context.Background().
	Ctx context.Context
	// Stats, when set, receives per-run observability counters.
	Stats *WindowStats
	// NoVectorize disables the typed columnar fast path (key-normalized
	// sorts and typed kernels), forcing the boxed Datum path everywhere. The
	// zero value keeps vectorization on; even then ineligible partitions
	// fall back per-partition at runtime with identical results.
	NoVectorize bool
	// Spill, when enabled, bounds per-partition ordering memory: oversized
	// partitions sort externally through a budget-tracked spill.Sorter of
	// (key, row-index) records instead of holding the full key arena and
	// datum matrix, and pooled per-worker scratch is trimmed back to the
	// budgeted ceiling instead of growing without bound (see spill.go).
	Spill *spill.Config
	// Shared marks the operator as a consumer of a shared-sort window plan:
	// the input stream arrives with this operator's partitions contiguous
	// (some prefix of the stream order is a permutation of PartitionBy), so
	// partitions are detected by boundary comparison instead of hashing.
	// Requires OrdinalCol; see plan's shared-sort pass.
	Shared bool
	// PreSorted additionally promises that within each partition the stream
	// is ordered by OrderBy (possibly refined by further keys of a longer
	// shared sort). The operator then skips the per-partition sort and only
	// normalizes tie runs back to input-ordinal order; data that defeats the
	// promise (a NaN key, which breaks Compare's total order) falls back to
	// the full per-partition sort with identical results.
	PreSorted bool
	// OrderExact marks a pre-sorted consumer whose ORDER BY keys are exactly
	// the shared sort's full order suffix. The class sort breaks ties by the
	// ordinal tag, so tie runs already sit in original input order and the
	// per-partition tie normalization reduces to a NaN scan over the order
	// keys (a NaN defeats Compare's total order, so its partition still falls
	// back to the full re-sort that reproduces the unshared ordering).
	OrderExact bool
	// OrdinalCol is the input column holding each row's original position
	// (appended by an Ordinal operator below the shared sorts); -1 when the
	// plan is unshared. It is the tie-break that keeps shared and unshared
	// results bit-identical: every per-partition ordering resolves ties by
	// original input order, exactly like the stable sort over hash partitions
	// collected in input order.
	OrdinalCol int
	// Class is the 1-based window spec class this operator belongs to in a
	// shared plan (EXPLAIN provenance); 0 when unshared.
	Class int
	// ClassOrder, when set, is the adjacency metadata of the class Sort this
	// operator is stacked above (shared with every member of the class). When
	// valid for an execution, partition boundaries and ORDER BY tie runs come
	// from the sort's own key comparisons instead of re-evaluating this
	// operator's keys over the stream; when invalid (spilled or comparator
	// sort) the evaluating scans below run unchanged.
	ClassOrder *ClassOrderMeta

	// sharedFallback records that this run's partition keys contained a NaN,
	// forcing hash partitioning and full per-partition sorts (the exact
	// unshared code path). Written once in Open before workers start.
	sharedFallback bool

	schema *expr.Schema
	out    []sqltypes.Row
	pos    int
	// spillRuns / spillBytes record external-sort activity across all
	// partitions of the run, for EXPLAIN ANALYZE; atomics because parallel
	// workers update them concurrently.
	spillRuns  atomic.Int64
	spillBytes atomic.Int64
	// argExprs are the distinct non-nil window-function arguments; argSlots
	// maps each func to its column in argExprs (-1 for COUNT(*)). Built by
	// prepareArgs before partitions are evaluated, so worker goroutines only
	// read them.
	argExprs []expr.Expr
	argSlots []int
}

// ctx resolves the operator's context.
func (w *Window) ctx() context.Context {
	if w.Ctx != nil {
		return w.Ctx
	}
	return context.Background()
}

// NewWindow builds the operator; its schema is the input schema plus one
// column per window function.
func NewWindow(input Operator, partitionBy []expr.Expr, orderBy []SortKey, funcs []WindowFunc) *Window {
	extra := make([]expr.ColInfo, len(funcs))
	for i, f := range funcs {
		in := sqltypes.Int
		if f.Arg != nil {
			in = f.Arg.Type()
		}
		extra[i] = expr.ColInfo{Name: f.OutName, Type: expr.AggResultType(f.Name, in)}
	}
	return &Window{
		Input: input, PartitionBy: partitionBy, OrderBy: orderBy, Funcs: funcs,
		OrdinalCol: -1,
		schema:     input.Schema().Append(extra...),
	}
}

// Schema implements Operator.
func (w *Window) Schema() *expr.Schema { return w.schema }

// Open implements Operator: materializes the input and computes every window
// column.
func (w *Window) Open() error {
	rows, err := CollectCtx(w.ctx(), w.Input)
	if err != nil {
		return err
	}
	results := make([][]sqltypes.Datum, len(w.Funcs))
	for i := range results {
		results[i] = make([]sqltypes.Datum, len(rows))
	}

	w.sharedFallback = false
	var partIdx [][]int
	if w.Shared {
		partIdx, err = w.partitionShared(rows)
	} else {
		partIdx, err = w.partitionHashed(rows)
	}
	if err != nil {
		return err
	}
	if err := w.computePartitions(rows, partIdx, results); err != nil {
		return err
	}

	w.out = make([]sqltypes.Row, len(rows))
	for i, row := range rows {
		out := make(sqltypes.Row, 0, len(row)+len(w.Funcs))
		out = append(out, row...)
		for f := range w.Funcs {
			out = append(out, results[f][i])
		}
		w.out[i] = out
	}
	w.pos = 0
	return nil
}

// partitionHashed groups rows into partitions by hashing the partition key
// values: partitions appear in first-seen input order, and each partition's
// row indices are in input order. This is the unshared path (and the NaN
// fallback of the shared one).
func (w *Window) partitionHashed(rows []sqltypes.Row) ([][]int, error) {
	type part struct{ idx []int }
	parts := make(map[uint64][]*struct {
		key sqltypes.Row
		p   *part
	})
	var order []*part
	for i, row := range rows {
		key := make(sqltypes.Row, len(w.PartitionBy))
		for ki, pe := range w.PartitionBy {
			v, err := pe.Eval(row)
			if err != nil {
				return nil, err
			}
			key[ki] = v
		}
		h := hashRow(key)
		var target *part
		for _, cand := range parts[h] {
			if rowsEqual(cand.key, key) {
				target = cand.p
				break
			}
		}
		if target == nil {
			target = &part{}
			parts[h] = append(parts[h], &struct {
				key sqltypes.Row
				p   *part
			}{key, target})
			order = append(order, target)
		}
		target.idx = append(target.idx, i)
	}
	partIdx := make([][]int, len(order))
	for i, p := range order {
		partIdx[i] = p.idx
	}
	return partIdx, nil
}

// partitionShared detects partitions on a shared-sort stream: the class sort
// placed this operator's partitions contiguously, so one boundary scan over
// the evaluated partition keys groups the rows without hashing. Two
// partition-key values fall back to hash partitioning for the whole run —
// NaN (sqltypes.Equal treats it as equal to any numeric, so a boundary scan
// could merge partitions the unshared plan keeps apart) and negative zero
// (Equal to +0.0 but hashed by float bits, so the unshared partitioner keeps
// them apart) — recording the fallback so per-partition ordering also takes
// the full-sort path.
func (w *Window) partitionShared(rows []sqltypes.Row) ([][]int, error) {
	n, k := len(rows), len(w.PartitionBy)
	if n == 0 {
		return nil, nil
	}
	if w.classBoundariesUsable(n) {
		return w.partitionByTieDepth(n), nil
	}
	// The key matrix is a real per-run allocation; force-charge it like the
	// argument matrix so the budget gauge sees the pressure.
	if w.Spill.Enabled() {
		charged := int64(n*k) * datumMemSize
		w.Spill.Budget.Force(charged)
		defer w.Spill.Budget.Release(charged)
	}
	keys := make([]sqltypes.Datum, n*k)
	fallback := false
	for i, row := range rows {
		base := i * k
		for ki, pe := range w.PartitionBy {
			v, err := pe.Eval(row)
			if err != nil {
				return nil, err
			}
			if v.Typ() == sqltypes.Float {
				f := v.Float()
				if math.IsNaN(f) || (f == 0 && math.Signbit(f)) {
					fallback = true
				}
			}
			keys[base+ki] = v
		}
	}
	if fallback {
		w.sharedFallback = true
		return w.partitionHashed(rows)
	}
	var parts [][]int
	for i := 0; i < n; i++ {
		newPart := i == 0
		if !newPart {
			for ki := 0; ki < k; ki++ {
				if !sqltypes.Equal(keys[(i-1)*k+ki], keys[i*k+ki]) {
					newPart = true
					break
				}
			}
		}
		if newPart {
			parts = append(parts, nil)
		}
		parts[len(parts)-1] = append(parts[len(parts)-1], i)
	}
	return parts, nil
}

// classBoundariesUsable reports whether the class sort's metadata can place
// this run's partition boundaries: it must describe exactly these rows, and
// no partition key may be a runtime float — the key encoding equates -0.0
// with +0.0 while the unshared hash partitioner separates them by bit
// pattern, so float partition keys keep the evaluating scan (which detects
// exactly that hazard and falls back to hashing).
func (w *Window) classBoundariesUsable(n int) bool {
	if !w.ClassOrder.Valid(n) {
		return false
	}
	for ki := 0; ki < w.ClassOrder.PartKeys(); ki++ {
		if w.ClassOrder.KeyType(ki) == sqltypes.Float {
			return false
		}
	}
	return true
}

// partitionByTieDepth groups the stream into partitions off the class sort's
// adjacency table: a new partition starts wherever fewer than the class's
// partition key count of leading sort keys match the previous row. The
// member's partition key set is set-equal to the class's leading keys, so
// the thresholds coincide.
func (w *Window) partitionByTieDepth(n int) [][]int {
	depths := w.ClassOrder.TieDepths()
	partKeys := int32(w.ClassOrder.PartKeys())
	var parts [][]int
	for i := 0; i < n; i++ {
		if i == 0 || depths[i] < partKeys {
			parts = append(parts, nil)
		}
		parts[len(parts)-1] = append(parts[len(parts)-1], i)
	}
	return parts
}

// computePartitions evaluates every partition, fanning across a bounded
// worker pool when Parallelism allows and the input is not degenerate.
//
// Concurrency safety rests on three invariants: input rows are read-only,
// compiled expressions are stateless (aggregate accumulators are created per
// computePartition call), and each partition writes only its own rows'
// slots in the pre-sized results slices — so workers share no mutable state
// and need no locks. The first worker error closes the stop channel, which
// drains the pool; remaining workers quit before claiming another partition.
func (w *Window) computePartitions(rows []sqltypes.Row, parts [][]int, results [][]sqltypes.Datum) error {
	ctx := w.ctx()
	w.prepareArgs()
	workers := w.Parallelism
	if workers > len(parts) {
		workers = len(parts)
	}
	if w.Stats != nil {
		w.Stats.Runs.Add(1)
		w.Stats.Partitions.Add(int64(len(parts)))
		if workers > 1 {
			w.Stats.ParallelRuns.Add(1)
			w.Stats.WorkersUsed.Add(int64(workers))
		} else {
			w.Stats.WorkersUsed.Add(1)
		}
		switch {
		case w.Shared && w.sharedFallback:
			w.Stats.SortsPerformed.Add(1)
		case w.Shared && w.PreSorted:
			w.Stats.SortsShared.Add(1)
		case w.Shared:
			w.Stats.SortsSegmented.Add(1)
		case len(w.OrderBy) > 0:
			w.Stats.SortsPerformed.Add(1)
		}
	}
	if workers <= 1 {
		// Sequential fast path: ≤1 partition, parallelism off, or a pool
		// that could only ever hold one worker.
		for _, idx := range parts {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			if err := w.computePartition(rows, idx, results); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		wg       sync.WaitGroup
		cursor   atomic.Int64
		stop     = make(chan struct{})
		once     sync.Once
		firstErr error
	)
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			close(stop)
		})
	}
	done := ctx.Done()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-done:
					// A cancelled context drains the pool exactly like a
					// worker error: workers quit before claiming another
					// partition, and the first to notice records the error.
					fail(ctxErr(ctx))
					return
				default:
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(parts) {
					return
				}
				if err := w.computePartition(rows, parts[i], results); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// prepareArgs dedupes the window functions' argument expressions so each
// distinct argument is evaluated once per partition row (SUM(x) and AVG(x)
// share one extraction). Dedup key is the canonical expression rendering —
// compiled expressions are pure functions of the row, so equal renderings are
// interchangeable. Called once per Open, before any worker starts.
func (w *Window) prepareArgs() {
	w.argExprs = w.argExprs[:0]
	w.argSlots = grow(w.argSlots, len(w.Funcs))
	seen := make(map[string]int, len(w.Funcs))
	for fi, fn := range w.Funcs {
		if fn.Arg == nil {
			w.argSlots[fi] = -1 // COUNT(*)
			continue
		}
		key := fn.Arg.String()
		slot, ok := seen[key]
		if !ok {
			slot = len(w.argExprs)
			w.argExprs = append(w.argExprs, fn.Arg)
			seen[key] = slot
		}
		w.argSlots[fi] = slot
	}
}

// partScratch holds one partition evaluation's reusable buffers: the sort
// scratch, the ordered index copy, the flat argument matrix, the per-argument
// column vectors, and the kernel output. Pooled because a parallel run
// evaluates many partitions concurrently, each of which used to allocate all
// of these per call.
type partScratch struct {
	sort    sortScratch
	ordered []int
	args    []sqltypes.Datum // flat n × len(argExprs), row-major
	col     []sqltypes.Datum // one argument column, boxed-fallback input
	out     []sqltypes.Datum // kernel output, one value per partition row
	vecs    []sqltypes.ColVec
	dq      []int // MIN/MAX deque positions
}

var partScratchPool = sync.Pool{New: func() any { return new(partScratch) }}

// computePartition orders one partition (stable: ties keep input order,
// making frames deterministic) and fills results for every func. Ordering and
// argument extraction run through pooled buffers; each function then runs a
// typed kernel when its argument column qualifies, or the boxed accumulator
// path when it does not — the two produce bit-identical results.
func (w *Window) computePartition(rows []sqltypes.Row, idx []int, results [][]sqltypes.Datum) error {
	n := len(idx)
	ps := partScratchPool.Get().(*partScratch)
	defer w.putPartScratch(ps)
	ps.ordered = grow(ps.ordered, n)
	copy(ps.ordered, idx)
	ordered := ps.ordered
	vectorize := !w.NoVectorize
	if w.Shared {
		if err := w.orderSharedPartition(rows, ordered, ps); err != nil {
			return err
		}
	} else if len(w.OrderBy) > 0 {
		if err := w.orderPartition(rows, ordered, ps); err != nil {
			return err
		}
	}

	// Batched argument extraction: one expression walk per distinct argument
	// per row, instead of one per function per row. The matrix is an
	// unavoidable per-partition allocation, so it is force-charged against the
	// budget — the usage gauge reflects window pressure even when nothing
	// spills.
	na := len(w.argExprs)
	var chargedArgs int64
	if w.Spill.Enabled() {
		chargedArgs = int64(n*na) * datumMemSize
		w.Spill.Budget.Force(chargedArgs)
		defer w.Spill.Budget.Release(chargedArgs)
	}
	ps.args = grow(ps.args, n*na)
	for i, ri := range ordered {
		row := rows[ri]
		base := i * na
		for ai, e := range w.argExprs {
			v, err := e.Eval(row)
			if err != nil {
				return err
			}
			ps.args[base+ai] = v
		}
	}
	ps.vecs = grow(ps.vecs, na)
	if vectorize {
		for ai := range ps.vecs {
			vec := &ps.vecs[ai]
			vec.Reset(n)
			for i := 0; i < n; i++ {
				vec.Append(ps.args[i*na+ai])
			}
		}
	}

	ps.out = grow(ps.out, n)
	for fi, fn := range w.Funcs {
		slot := w.argSlots[fi]
		typed := vectorize && w.runTypedKernel(fn, slot, ps, n)
		if w.Stats != nil {
			if typed {
				w.Stats.TypedKernels.Add(1)
			} else {
				w.Stats.BoxedKernels.Add(1)
			}
		}
		vals := ps.out
		if !typed {
			ps.col = grow(ps.col, n)
			if slot < 0 {
				for i := range ps.col {
					ps.col[i] = sqltypes.NewInt(1) // COUNT(*)
				}
			} else {
				for i := 0; i < n; i++ {
					ps.col[i] = ps.args[i*na+slot]
				}
			}
			var err error
			vals, err = computeFrames(fn, ps.col)
			if err != nil {
				return err
			}
		}
		for i, ri := range ordered {
			results[fi][ri] = vals[i]
		}
	}
	return nil
}

// orderPartition sorts one partition's ordered slice by w.OrderBy — the
// in-operator ordering of an unshared run (also the shared fallback). The
// external path runs when a budget is enabled; either way the sort is stable
// over the incoming ordered sequence.
func (w *Window) orderPartition(rows []sqltypes.Row, ordered []int, ps *partScratch) error {
	normalized := false
	handled := false
	if spillEligible(w.Spill, w.OrderBy, w.NoVectorize, len(ordered)) {
		var err error
		handled, err = w.sortPartitionExternal(rows, ordered)
		if err != nil {
			return err
		}
		normalized = handled
	}
	if !handled {
		var err error
		normalized, err = sortRowsByKeys(rows, ordered, w.OrderBy, &ps.sort, !w.NoVectorize)
		if err != nil {
			return err
		}
	}
	if w.Stats != nil {
		if normalized {
			w.Stats.NormalizedSorts.Add(1)
		} else {
			w.Stats.ComparatorSorts.Add(1)
		}
	}
	return nil
}

// orderSharedPartition establishes one partition's evaluation order on a
// shared-sort stream. PreSorted partitions only normalize tie runs back to
// input-ordinal order; everything else — segmented reuse, the NaN partition
// fallback, a NaN order key defeating run detection — first restores input
// order by ordinal and then runs the ordinary stable sort, which makes the
// result bit-identical to the unshared path by construction.
func (w *Window) orderSharedPartition(rows []sqltypes.Row, ordered []int, ps *partScratch) error {
	if w.PreSorted && !w.sharedFallback && len(w.OrderBy) > 0 {
		if w.ClassOrder.Valid(len(rows)) {
			// Metadata path: validity certifies NaN-free sort keys, so run
			// detection needs no key evaluation and no fallback — an
			// OrderExact member is already in its exact unshared order.
			if !w.OrderExact {
				w.normalizeTieRunsByMeta(rows, ordered)
			}
			return nil
		}
		if w.OrderExact {
			clean, err := w.orderKeysNaNFree(rows, ordered)
			if err != nil {
				return err
			}
			if clean {
				return nil
			}
		} else {
			ok, err := w.normalizeTieRuns(rows, ordered, ps)
			if err != nil || ok {
				return err
			}
		}
	}
	w.sortByOrdinal(rows, ordered)
	if len(w.OrderBy) == 0 {
		return nil
	}
	return w.orderPartition(rows, ordered, ps)
}

// normalizeTieRunsByMeta is normalizeTieRuns off the class sort's adjacency
// table: within one contiguous partition, stream-adjacent rows tie on this
// member's ORDER BY prefix exactly when at least the class partition key
// count plus the member's order key count of leading sort keys match. No key
// is evaluated and no NaN fallback exists — metadata validity already
// certifies NaN-free keys.
func (w *Window) normalizeTieRunsByMeta(rows []sqltypes.Row, ordered []int) {
	depths := w.ClassOrder.TieDepths()
	want := int32(w.ClassOrder.PartKeys() + len(w.OrderBy))
	n := len(ordered)
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || depths[ordered[i]] < want {
			if i-start > 1 {
				w.sortByOrdinal(rows, ordered[start:i])
			}
			start = i
		}
	}
}

// normalizeTieRuns re-establishes the unshared tie order of a pre-sorted
// partition: the shared class sort may refine this operator's ORDER BY with
// further keys, so rows that tie on w.OrderBy can arrive in an order the
// in-operator stable sort would not have produced. The pass evaluates the
// order keys once, splits the partition into maximal runs of key-equal rows,
// and sorts each run by the ordinal column — exactly the tie order of the
// stable unshared sort over indices collected in input order. ok=false
// (without reordering anything) means a NaN key was seen: Compare treats NaN
// as equal to everything, so run detection is unsound and the caller must
// fall back to the full per-partition sort.
func (w *Window) normalizeTieRuns(rows []sqltypes.Row, ordered []int, ps *partScratch) (bool, error) {
	n, k := len(ordered), len(w.OrderBy)
	sc := &ps.sort
	if cap(sc.datums) < n*k {
		sc.datums = make([]sqltypes.Datum, n*k)
	} else {
		sc.datums = sc.datums[:n*k]
	}
	for i, ri := range ordered {
		row := rows[ri]
		base := i * k
		for ki := range w.OrderBy {
			v, err := w.OrderBy[ki].Expr.Eval(row)
			if err != nil {
				return false, err
			}
			if v.Typ() == sqltypes.Float && math.IsNaN(v.Float()) {
				return false, nil
			}
			sc.datums[base+ki] = v
		}
	}
	start := 0
	for i := 1; i <= n; i++ {
		boundary := i == n
		if !boundary {
			for ki := 0; ki < k; ki++ {
				if !sqltypes.Equal(sc.datums[(i-1)*k+ki], sc.datums[i*k+ki]) {
					boundary = true
					break
				}
			}
		}
		if boundary {
			if i-start > 1 {
				w.sortByOrdinal(rows, ordered[start:i])
			}
			start = i
		}
	}
	return true, nil
}

// orderKeysNaNFree reports whether the partition's order-key values contain
// no float NaN — the one value that makes the shared sort's tie placement
// diverge from the unshared stable sort (Compare treats NaN as equal to any
// numeric, so the sort's comparison sequence, not the keys, decides the
// order). clean=false means the caller must restore input order and re-sort.
func (w *Window) orderKeysNaNFree(rows []sqltypes.Row, ordered []int) (bool, error) {
	for _, ri := range ordered {
		row := rows[ri]
		for ki := range w.OrderBy {
			v, err := w.OrderBy[ki].Expr.Eval(row)
			if err != nil {
				return false, err
			}
			if v.Typ() == sqltypes.Float && math.IsNaN(v.Float()) {
				return false, nil
			}
		}
	}
	return true, nil
}

// sortByOrdinal orders idx by the rows' ordinal column — the original input
// order. Ordinals are unique, so the result is a strict total order.
func (w *Window) sortByOrdinal(rows []sqltypes.Row, idx []int) {
	c := w.OrdinalCol
	slices.SortFunc(idx, func(a, b int) int {
		oa, ob := rows[a][c].Int(), rows[b][c].Int()
		switch {
		case oa < ob:
			return -1
		case oa > ob:
			return 1
		default:
			return 0
		}
	})
}

// datumMemSize approximates one resident sqltypes.Datum for budget
// accounting (tag + int64 + float64 + string header, rounded up).
const datumMemSize = 40

// maxPooledScratchBytes caps how much buffer capacity a partScratch may
// carry back into the pool when a memory budget is configured. Without the
// cap, N parallel workers each retain buffers sized to the largest partition
// they ever saw — unbounded residency the budget knows nothing about.
const maxPooledScratchBytes = 256 << 10

// putPartScratch returns scratch to the pool, trimming oversized buffers
// first when a budget is in force.
func (w *Window) putPartScratch(ps *partScratch) {
	if w.Spill.Enabled() {
		if int64(cap(ps.args))*datumMemSize > maxPooledScratchBytes {
			ps.args = nil
			ps.col = nil
			ps.out = nil
			ps.vecs = nil
		}
		if int64(cap(ps.sort.datums))*datumMemSize > maxPooledScratchBytes ||
			int64(cap(ps.sort.buf)) > maxPooledScratchBytes {
			ps.sort = sortScratch{}
		}
	}
	partScratchPool.Put(ps)
}

// sortPartitionExternal orders one partition through a budget-tracked
// spill.Sorter: records are (concatenated key encoding, uvarint row index),
// so the merge streams the permutation back without the in-memory key arena
// or datum matrix. handled=false means the ordering defeated the key
// encoding mid-stream; external state is released and the caller re-sorts in
// memory (the comparator path still has every row).
func (w *Window) sortPartitionExternal(rows []sqltypes.Row, ordered []int) (handled bool, err error) {
	sorter := spill.NewSorter(w.ctx(), w.Spill)
	defer sorter.Close()
	ks := newKeyStreamer(w.OrderBy)
	var pay [binary.MaxVarintLen64]byte
	for _, ri := range ordered {
		key, ok, err := ks.encode(rows[ri])
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		if err := sorter.Add(key, pay[:binary.PutUvarint(pay[:], uint64(ri))]); err != nil {
			return false, err
		}
	}
	it, err := sorter.Finish()
	if err != nil {
		return false, err
	}
	defer it.Close()
	for i := range ordered {
		_, payload, err := it.Next()
		if err != nil {
			if err == io.EOF {
				return false, fmt.Errorf("exec: external partition sort lost rows")
			}
			if cerr := ctxErr(w.ctx()); cerr != nil {
				return false, cerr
			}
			return false, err
		}
		ri, k := binary.Uvarint(payload)
		if k <= 0 {
			return false, fmt.Errorf("exec: corrupt external sort payload")
		}
		ordered[i] = int(ri)
	}
	if sorter.Spilled() {
		w.spillRuns.Add(int64(sorter.RunCount()))
		w.spillBytes.Add(sorter.SpillBytes())
	}
	return true, nil
}

// runTypedKernel dispatches fn to a typed kernel when its argument column is
// eligible: COUNT(*) always (its synthesized argument is a non-NULL
// constant), otherwise a valid ColVec with no NULLs and an Int or Float
// element type. Any NULL, any type mix, a NaN, or a non-numeric element type
// routes the function to the boxed accumulator path instead. Reports whether
// a kernel ran and filled ps.out.
func (w *Window) runTypedKernel(fn WindowFunc, slot int, ps *partScratch, n int) bool {
	if slot < 0 {
		kernelCount(fn.Frame, n, ps.out)
		return true
	}
	vec := &ps.vecs[slot]
	if !vec.Valid() || vec.Nulls.Any() {
		return false
	}
	ok := true
	switch vec.Typ {
	case sqltypes.Int:
		switch fn.Name {
		case "COUNT":
			kernelCount(fn.Frame, n, ps.out)
		case "SUM":
			kernelSumInt(fn.Frame, vec.Ints, ps.out)
		case "AVG":
			kernelAvg(fn.Frame, vec.Ints, ps.out)
		case "MIN", "MAX":
			ps.dq, ok = kernelMinMax(fn.Frame, vec.Ints, fn.Name == "MIN", sqltypes.NewInt, ps.out, ps.dq)
		default:
			return false
		}
	case sqltypes.Float:
		switch fn.Name {
		case "COUNT":
			kernelCount(fn.Frame, n, ps.out)
		case "SUM":
			kernelSumFloat(fn.Frame, vec.Floats, ps.out)
		case "AVG":
			kernelAvg(fn.Frame, vec.Floats, ps.out)
		case "MIN", "MAX":
			ps.dq, ok = kernelMinMax(fn.Frame, vec.Floats, fn.Name == "MIN", sqltypes.NewFloat, ps.out, ps.dq)
		default:
			return false
		}
	default:
		return false
	}
	return ok
}

// computeFrames computes the window aggregate for every position. Frame
// bounds move monotonically with the row index, enabling the pipelined
// strategies.
func computeFrames(fn WindowFunc, args []sqltypes.Datum) ([]sqltypes.Datum, error) {
	n := len(args)
	out := make([]sqltypes.Datum, n)
	if fn.Name == "MIN" || fn.Name == "MAX" {
		return computeFramesMinMax(fn, args)
	}
	acc, err := expr.NewAgg(fn.Name)
	if err != nil {
		return nil, err
	}
	curLo, curHi := 0, -1 // current accumulated range [curLo, curHi]
	for i := 0; i < n; i++ {
		lo, hi := fn.Frame.rowRange(i, n)
		if lo > hi {
			// Empty frame: NULL (COUNT yields 0 via a fresh accumulator).
			acc.Reset()
			curLo, curHi = lo, lo-1
			if fn.Name == "COUNT" {
				out[i] = sqltypes.NewInt(0)
			} else {
				out[i] = sqltypes.NullDatum
			}
			continue
		}
		// ROWS frame bounds move monotonically right; re-seed if the target
		// range jumped (backwards, or disjoint ahead, or shrank on the
		// right), otherwise slide: grow right with Add, shrink left with
		// Remove — the §2.2 three-operations-per-position strategy.
		if lo < curLo || lo > curHi+1 || hi < curHi {
			acc.Reset()
			curLo, curHi = lo, lo-1
		}
		for curHi < hi {
			curHi++
			acc.Add(args[curHi])
		}
		for curLo < lo {
			acc.Remove(args[curLo])
			curLo++
		}
		out[i] = acc.Result()
	}
	return out, nil
}

// computeFramesMinMax computes MIN/MAX frames with a monotonic deque.
func computeFramesMinMax(fn WindowFunc, args []sqltypes.Datum) ([]sqltypes.Datum, error) {
	n := len(args)
	out := make([]sqltypes.Datum, n)
	isMin := fn.Name == "MIN"
	type entry struct {
		pos int
		val sqltypes.Datum
	}
	var dq []entry
	next := 0 // next arg index to admit
	prevLo := 0
	for i := 0; i < n; i++ {
		lo, hi := fn.Frame.rowRange(i, n)
		if lo < prevLo {
			// Frames of ROWS windows never move backwards; guard anyway.
			return computeFramesMinMaxNaive(fn, args)
		}
		prevLo = lo
		for next <= hi {
			v := args[next]
			if !v.IsNull() {
				for len(dq) > 0 {
					cmp, err := sqltypes.Compare(v, dq[len(dq)-1].val)
					if err != nil {
						return nil, err
					}
					if (isMin && cmp <= 0) || (!isMin && cmp >= 0) {
						dq = dq[:len(dq)-1]
						continue
					}
					break
				}
				dq = append(dq, entry{next, v})
			}
			next++
		}
		for len(dq) > 0 && dq[0].pos < lo {
			dq = dq[1:]
		}
		if lo > hi || len(dq) == 0 {
			out[i] = sqltypes.NullDatum
		} else {
			out[i] = dq[0].val
		}
	}
	return out, nil
}

// computeFramesMinMaxNaive is the quadratic fallback for pathological frames.
func computeFramesMinMaxNaive(fn WindowFunc, args []sqltypes.Datum) ([]sqltypes.Datum, error) {
	n := len(args)
	out := make([]sqltypes.Datum, n)
	acc, err := expr.NewAgg(fn.Name)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		lo, hi := fn.Frame.rowRange(i, n)
		acc.Reset()
		for j := lo; j <= hi; j++ {
			acc.Add(args[j])
		}
		out[i] = acc.Result()
	}
	return out, nil
}

// takeRows implements rowsHandoff.
func (w *Window) takeRows() []sqltypes.Row {
	out := w.out
	w.out = nil
	return out
}

// Next implements Operator.
func (w *Window) Next() (sqltypes.Row, error) {
	if w.pos >= len(w.out) {
		return nil, nil
	}
	row := w.out[w.pos]
	w.pos++
	return row, nil
}

// Close implements Operator.
func (w *Window) Close() error {
	w.out = nil
	return nil
}

// Describe implements Operator.
func (w *Window) Describe() string {
	pb := make([]string, len(w.PartitionBy))
	for i, p := range w.PartitionBy {
		pb[i] = p.String()
	}
	ob := make([]string, len(w.OrderBy))
	for i, o := range w.OrderBy {
		ob[i] = o.String()
	}
	fs := make([]string, len(w.Funcs))
	for i, f := range w.Funcs {
		fs[i] = f.String()
	}
	par := ""
	if w.Parallelism > 1 {
		par = fmt.Sprintf(" parallel=%d", w.Parallelism)
	}
	vec := ""
	if w.Vectorizable() {
		vec = " vectorized=true"
	}
	sp := ""
	if runs := w.spillRuns.Load(); runs > 0 {
		sp = fmt.Sprintf(" spilled=true runs=%d spill_bytes=%d", runs, w.spillBytes.Load())
	}
	shared := ""
	if w.Shared {
		if w.PreSorted {
			shared = fmt.Sprintf(" sort=shared class=%d", w.Class)
		} else {
			shared = fmt.Sprintf(" resort=segmented class=%d", w.Class)
		}
	}
	return fmt.Sprintf("Window partition=[%s] order=[%s] funcs=[%s]%s%s%s%s",
		joinTrunc(pb, 4), joinTrunc(ob, 4), joinTrunc(fs, 4), shared, par, vec, sp)
}

// Vectorizable reports whether the typed columnar fast path is enabled for
// this operator — the plan-time eligibility surfaced by EXPLAIN as
// vectorized=true. Individual partitions may still fall back to the boxed
// path at runtime (NULLs, mixed types, NaN) with identical results; the
// fallback counts are visible in Stats.
func (w *Window) Vectorizable() bool { return !w.NoVectorize }

// Children implements Operator.
func (w *Window) Children() []Operator { return []Operator{w.Input} }
