package exec

import "testing"

// TestClamp pins the shared clamp helper's behaviour at its boundaries.
func TestClamp(t *testing.T) {
	cases := []struct {
		v, lo, hi, want int
	}{
		{5, 0, 10, 5},
		{-3, 0, 10, 0},
		{42, 0, 10, 10},
		{0, 0, 0, 0},
		{-1, -1, 5, -1},
		{7, 3, 3, 3},
	}
	for _, c := range cases {
		if got := clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("clamp(%d, %d, %d) = %d, want %d", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

// TestFrameRowRange is the table-driven edge suite for the centralized frame
// clamping: negative effective offsets at partition boundaries, windows wider
// than the partition (h > n), empty frames, and the unbounded defaults.
func TestFrameRowRange(t *testing.T) {
	pre := func(off int) FrameBound { return FrameBound{Kind: BoundPreceding, Offset: off} }
	fol := func(off int) FrameBound { return FrameBound{Kind: BoundFollowing, Offset: off} }
	cur := FrameBound{Kind: BoundCurrentRow}
	unbP := FrameBound{Kind: BoundUnboundedPreceding}
	unbF := FrameBound{Kind: BoundUnboundedFollowing}

	cases := []struct {
		name           string
		frame          FrameSpec
		i, n           int
		wantLo, wantHi int
	}{
		{"cumulative at first row", FrameSpec{unbP, cur}, 0, 5, 0, 0},
		{"cumulative at last row", FrameSpec{unbP, cur}, 4, 5, 0, 4},
		{"whole partition", FrameSpec{unbP, unbF}, 2, 5, 0, 4},
		{"sliding inside", FrameSpec{pre(1), fol(1)}, 2, 5, 1, 3},
		{"sliding clipped left", FrameSpec{pre(3), fol(1)}, 0, 5, 0, 1},
		{"sliding clipped right", FrameSpec{pre(1), fol(3)}, 4, 5, 3, 4},
		{"window wider than partition (h > n)", FrameSpec{pre(10), fol(10)}, 1, 3, 0, 2},
		{"offsets far past both ends", FrameSpec{pre(100), fol(100)}, 0, 2, 0, 1},
		{"empty frame ahead of data", FrameSpec{fol(5), fol(9)}, 3, 5, 5, 4}, // lo > hi: empty
		{"empty frame behind data", FrameSpec{pre(9), pre(5)}, 2, 5, 0, -1},  // hi clamps to -1
		{"frame entirely right of partition", FrameSpec{fol(10), fol(20)}, 4, 5, 5, 4},
		{"backward bounds give empty", FrameSpec{fol(2), pre(2)}, 2, 5, 4, 0},
		{"negative PRECEDING offset means FOLLOWING", FrameSpec{pre(-2), fol(3)}, 0, 10, 2, 3},
		{"negative FOLLOWING offset means PRECEDING", FrameSpec{pre(1), fol(-1)}, 3, 10, 2, 2},
		{"negative offsets at the left boundary", FrameSpec{pre(-1), fol(1)}, 0, 3, 1, 1},
		{"negative offsets at the right boundary", FrameSpec{pre(1), fol(-2)}, 2, 3, 1, 0},
		{"single-row partition", FrameSpec{pre(4), fol(4)}, 0, 1, 0, 0},
		{"current row only", FrameSpec{cur, cur}, 3, 7, 3, 3},
	}
	for _, c := range cases {
		lo, hi := c.frame.rowRange(c.i, c.n)
		if lo != c.wantLo || hi != c.wantHi {
			t.Errorf("%s: rowRange(i=%d, n=%d) = (%d, %d), want (%d, %d)",
				c.name, c.i, c.n, lo, hi, c.wantLo, c.wantHi)
		}
		if lo < 0 || lo > c.n {
			t.Errorf("%s: lo=%d outside [0, n=%d]", c.name, lo, c.n)
		}
		if hi < -1 || hi > c.n-1 {
			t.Errorf("%s: hi=%d outside [-1, n-1=%d]", c.name, hi, c.n-1)
		}
	}
}

// TestFrameEmptyFrameSemantics: an empty frame yields NULL (COUNT: 0) for
// every strategy, including the MIN/MAX deque and the naive fallback.
func TestFrameEmptyFrameSemantics(t *testing.T) {
	args := intRow(10, 20, 30, 40)
	empty := FrameSpec{
		Start: FrameBound{Kind: BoundFollowing, Offset: 7},
		End:   FrameBound{Kind: BoundFollowing, Offset: 9},
	}
	for _, agg := range []string{"SUM", "AVG", "MIN", "MAX"} {
		vals, err := computeFrames(WindowFunc{Name: agg, Frame: empty}, args)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vals {
			if !v.IsNull() {
				t.Errorf("%s pos %d: empty frame gave %v, want NULL", agg, i, v)
			}
		}
	}
	vals, err := computeFrames(WindowFunc{Name: "COUNT", Frame: empty}, args)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v.Int() != 0 {
			t.Errorf("COUNT pos %d: empty frame gave %v, want 0", i, v)
		}
	}
	// The quadratic fallback clamps through the same helper.
	nvals, err := computeFramesMinMaxNaive(WindowFunc{Name: "MIN", Frame: empty}, args)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range nvals {
		if !v.IsNull() {
			t.Errorf("naive MIN pos %d: empty frame gave %v, want NULL", i, v)
		}
	}
}
