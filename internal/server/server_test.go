package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rfview/internal/client"
	"rfview/internal/engine"
	"rfview/internal/server"
)

// startServer serves a fresh engine on an ephemeral port and returns the
// address plus a channel carrying Serve's return value.
func startServer(t *testing.T) (*server.Server, *engine.Engine, string, chan error) {
	t.Helper()
	e := engine.New(engine.DefaultOptions())
	srv := server.New(e)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		select {
		case <-errc:
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
	})
	return srv, e, lis.Addr().String(), errc
}

func TestServerRoundTrip(t *testing.T) {
	srv, _, addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if _, err := c.Exec(`CREATE TABLE seq (pos INTEGER, val INTEGER)`); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(`INSERT INTO seq (pos, val) VALUES (1, 10), (2, 20), (3, 30)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 3 {
		t.Fatalf("affected = %d, want 3", res.Affected)
	}
	res, err = c.Query(`SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS s FROM seq`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[1] != "s" || len(res.Rows) != 3 {
		t.Fatalf("result = %+v", res)
	}
	// JSON numbers decode as float64 on the client side.
	if res.Rows[1][1].(float64) != 60 {
		t.Fatalf("middle window sum = %v, want 60", res.Rows[1][1])
	}
	plan, err := c.Explain(`SELECT pos, val FROM seq`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "SeqScan") {
		t.Fatalf("explain plan = %q", plan)
	}
	// Errors come back as ok=false, not connection teardown.
	if _, err := c.Query(`SELECT nope FROM missing`); err == nil {
		t.Fatal("query against missing table must error")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection must survive a statement error: %v", err)
	}
	st := srv.Stats()
	if st.Accepted != 1 || st.Requests < 6 || st.Errors != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServerMalformedRequest: a non-JSON line gets an error response and the
// connection stays usable.
func TestServerMalformedRequest(t *testing.T) {
	_, _, addr, _ := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	line, err := r.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp server.Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "bad request") {
		t.Fatalf("response = %+v", resp)
	}
	// Unknown ops are also answered in-band.
	if _, err := conn.Write([]byte(`{"id":2,"op":"shrug"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	line, err = r.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "unknown op") || resp.ID != 2 {
		t.Fatalf("response = %+v", resp)
	}
}

// TestServerConcurrentClients: parallel sessions all make progress; reads
// from different connections interleave under the engine's shared lock.
func TestServerConcurrentClients(t *testing.T) {
	srv, e, addr, _ := startServer(t)
	if _, err := e.ExecAll(`CREATE TABLE seq (pos INTEGER, val INTEGER);
	  INSERT INTO seq (pos, val) VALUES (1, 1), (2, 1), (3, 1), (4, 1), (5, 1);`); err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 4, 50
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for j := 0; j < perClient; j++ {
				res, err := c.Query(`SELECT pos, val FROM seq`)
				if err != nil {
					errc <- err
					return
				}
				if len(res.Rows) != 5 {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := srv.Stats()
	if st.Accepted != clients || st.Requests != clients*perClient {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServerGracefulShutdown: Shutdown answers the in-flight request, then
// closes; Serve returns ErrServerClosed and new dials are refused.
func TestServerGracefulShutdown(t *testing.T) {
	e := engine.New(engine.DefaultOptions())
	srv := server.New(e)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-errc:
		if err != server.ErrServerClosed {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("dial after shutdown must fail")
	}
	if st := srv.Stats(); st.Active != 0 {
		t.Fatalf("connections must drain: %+v", st)
	}
}

// TestServerStatsOp: the "stats" request reports server, session, and cache
// counters that reflect the traffic that preceded it.
func TestServerStatsOp(t *testing.T) {
	_, e, addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec(`CREATE TABLE t (a INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO t VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}
	// The same SELECT twice: the second answer comes from the result cache.
	for i := 0; i < 2; i++ {
		if _, err := c.Query(`SELECT a FROM t`); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SessionID == 0 || st.ActiveSessions != 1 || st.Accepted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SessionExecs != 2 || st.SessionQueries != 2 {
		t.Fatalf("session counters = execs %d, queries %d; want 2, 2",
			st.SessionExecs, st.SessionQueries)
	}
	// Four statements preceded the stats call (it is counted after dispatch).
	if st.Requests < 4 {
		t.Fatalf("server requests = %d, want ≥ 4", st.Requests)
	}
	if st.PlanCache.Hits == 0 || st.PlanCache.Capacity == 0 {
		t.Fatalf("plan cache stats = %+v", st.PlanCache)
	}
	if st.WindowParallelism < 1 {
		t.Fatalf("resolved window parallelism = %d", st.WindowParallelism)
	}
	// The reply resolves "auto" (≤0) to a concrete worker count.
	if e.Opts.WindowParallelism <= 0 && st.WindowParallelism < 1 {
		t.Fatalf("auto parallelism not resolved: %d", st.WindowParallelism)
	}

	// Paged storage is on by default: the reply must carry live buffer-pool
	// numbers — the INSERTs above pinned the table's tail page.
	bp := st.BufferPool
	if bp.PageSize == 0 || bp.PagesCached == 0 {
		t.Fatalf("buffer pool stats missing: %+v", bp)
	}
	if bp.HitRatio <= 0 || bp.HitRatio > 1 {
		t.Fatalf("hit ratio = %v out of (0, 1]", bp.HitRatio)
	}

	// A second connection sees its own zeroed session counters.
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st2, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.SessionID == st.SessionID || st2.SessionExecs != 0 || st2.SessionQueries != 0 {
		t.Fatalf("second session stats = %+v", st2)
	}
	if st2.ActiveSessions != 2 {
		t.Fatalf("active sessions = %d, want 2", st2.ActiveSessions)
	}
}
