// Package sqlparser implements a hand-rolled lexer and recursive-descent
// parser for the SQL dialect the rfview engine speaks: the subset of
// SQL:1999 needed to express the paper's workloads — reporting functions
// (aggregates with OVER clauses), the relational operator patterns of
// Figs. 2, 4, 10 and 13 (self joins, CASE, MOD, COALESCE, LEFT OUTER JOIN,
// disjunctive join predicates, UNION), DDL for tables, indexes and
// materialized views, and DML.
package sqlparser

import (
	"fmt"
	"strings"

	"rfview/internal/sqltypes"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	fmt.Stringer
}

// Expr is any scalar expression node.
type Expr interface {
	expr()
	fmt.Stringer
}

// TableExpr is a FROM-clause item: a named table, a join, or a derived
// table.
type TableExpr interface {
	tableExpr()
	fmt.Stringer
}

// SelectStatement is a SELECT core or a UNION of them.
type SelectStatement interface {
	Statement
	selectStatement()
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name string
	Type sqltypes.Type
}

// CreateTable is CREATE TABLE name (col type, …).
type CreateTable struct {
	Name    string
	Columns []ColumnDef
}

func (*CreateTable) stmt() {}

func (s *CreateTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", s.Name)
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteString(")")
	return b.String()
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (cols…).
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

func (*CreateIndex) stmt() {}

func (s *CreateIndex) String() string {
	u := ""
	if s.Unique {
		u = "UNIQUE "
	}
	return fmt.Sprintf("CREATE %sINDEX %s ON %s (%s)", u, s.Name, s.Table, strings.Join(s.Columns, ", "))
}

// CreateMatView is CREATE MATERIALIZED VIEW name AS select.
type CreateMatView struct {
	Name   string
	Select SelectStatement
}

func (*CreateMatView) stmt() {}

func (s *CreateMatView) String() string {
	return fmt.Sprintf("CREATE MATERIALIZED VIEW %s AS %s", s.Name, s.Select)
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

func (*DropTable) stmt() {}

func (s *DropTable) String() string { return "DROP TABLE " + s.Name }

// DropMatView is DROP MATERIALIZED VIEW name.
type DropMatView struct{ Name string }

func (*DropMatView) stmt() {}

func (s *DropMatView) String() string { return "DROP MATERIALIZED VIEW " + s.Name }

// DropIndex is DROP INDEX name ON table.
type DropIndex struct{ Name, Table string }

func (*DropIndex) stmt() {}

func (s *DropIndex) String() string { return fmt.Sprintf("DROP INDEX %s ON %s", s.Name, s.Table) }

// RefreshMatView is REFRESH MATERIALIZED VIEW name (full recomputation).
type RefreshMatView struct{ Name string }

func (*RefreshMatView) stmt() {}

func (s *RefreshMatView) String() string { return "REFRESH MATERIALIZED VIEW " + s.Name }

// Begin starts an explicit transaction (BEGIN [TRANSACTION|WORK]). The
// optional noise word is not preserved: String() renders the canonical form,
// which reparses to the same statement.
type Begin struct{}

func (*Begin) stmt() {}

func (s *Begin) String() string { return "BEGIN" }

// Commit ends the current transaction, publishing its writes atomically
// (COMMIT [TRANSACTION|WORK]).
type Commit struct{}

func (*Commit) stmt() {}

func (s *Commit) String() string { return "COMMIT" }

// Rollback aborts the current transaction, discarding its writes
// (ROLLBACK [TRANSACTION|WORK]).
type Rollback struct{}

func (*Rollback) stmt() {}

func (s *Rollback) String() string { return "ROLLBACK" }

// Explain wraps a statement to request its plan. With Analyze set the
// statement is actually executed and the plan is annotated with per-operator
// row counts and wall time.
type Explain struct {
	Stmt    Statement
	Analyze bool
}

func (*Explain) stmt() {}

func (s *Explain) String() string {
	if s.Analyze {
		return "EXPLAIN ANALYZE " + s.Stmt.String()
	}
	return "EXPLAIN " + s.Stmt.String()
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

// Insert is INSERT INTO table [(cols…)] VALUES (…), (…) | INSERT INTO … select.
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr        // VALUES form
	Select  SelectStatement // INSERT … SELECT form (exclusive with Rows)
}

func (*Insert) stmt() {}

func (s *Insert) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s", s.Table)
	if len(s.Columns) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(s.Columns, ", "))
	}
	if s.Select != nil {
		fmt.Fprintf(&b, " %s", s.Select)
		return b.String()
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteString(")")
	}
	return b.String()
}

// Assignment is one SET col = expr of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// Update is UPDATE table SET … [WHERE …].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

func (*Update) stmt() {}

func (s *Update) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "UPDATE %s SET ", s.Table)
	for i, a := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s = %s", a.Column, a.Value)
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where)
	}
	return b.String()
}

// Delete is DELETE FROM table [WHERE …].
type Delete struct {
	Table string
	Where Expr
}

func (*Delete) stmt() {}

func (s *Delete) String() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

// SelectItem is one projection of a SELECT list.
type SelectItem struct {
	Expr  Expr   // nil for * / t.*
	Alias string // optional AS alias
	Star  bool   // SELECT * or t.*
	Table string // qualifier of t.*
}

func (it SelectItem) String() string {
	if it.Star {
		if it.Table != "" {
			return it.Table + ".*"
		}
		return "*"
	}
	if it.Alias != "" {
		return fmt.Sprintf("%s AS %s", it.Expr, it.Alias)
	}
	return it.Expr.String()
}

// NullsOrder is the NULLS FIRST / NULLS LAST placement of an ORDER BY key.
// The zero value keeps the engine default: NULLs first ascending, NULLs last
// descending (the ordering sqltypes.Compare induces).
type NullsOrder uint8

// Null placements.
const (
	NullsDefault NullsOrder = iota
	NullsFirst
	NullsLast
)

// OrderItem is one key of an ORDER BY list.
type OrderItem struct {
	Expr  Expr
	Desc  bool
	Nulls NullsOrder
}

func (o OrderItem) String() string {
	s := o.Expr.String()
	if o.Desc {
		s += " DESC"
	}
	switch o.Nulls {
	case NullsFirst:
		s += " NULLS FIRST"
	case NullsLast:
		s += " NULLS LAST"
	}
	return s
}

// Select is a single SELECT core.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     TableExpr // nil for FROM-less selects (SELECT 1+1)
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // integer literal or nil
}

func (*Select) stmt()            {}
func (*Select) selectStatement() {}

func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	if s.From != nil {
		fmt.Fprintf(&b, " FROM %s", s.From)
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
	}
	if s.Having != nil {
		fmt.Fprintf(&b, " HAVING %s", s.Having)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&b, " LIMIT %s", s.Limit)
	}
	return b.String()
}

// Union is SELECT … UNION [ALL] SELECT ….
type Union struct {
	Left, Right SelectStatement
	All         bool
	OrderBy     []OrderItem
	Limit       Expr
}

func (*Union) stmt()            {}
func (*Union) selectStatement() {}

func (s *Union) String() string {
	op := " UNION "
	if s.All {
		op = " UNION ALL "
	}
	out := s.Left.String() + op + s.Right.String()
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = o.String()
		}
		out += " ORDER BY " + strings.Join(parts, ", ")
	}
	if s.Limit != nil {
		out += " LIMIT " + s.Limit.String()
	}
	return out
}

// ---------------------------------------------------------------------------
// FROM-clause items
// ---------------------------------------------------------------------------

// TableName references a stored table (or materialized view) with an
// optional alias.
type TableName struct {
	Name  string
	Alias string
}

func (*TableName) tableExpr() {}

func (t *TableName) String() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// RefName returns the name the table is referenced by in expressions.
func (t *TableName) RefName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinType distinguishes join flavours.
type JoinType uint8

// Supported join types.
const (
	InnerJoin JoinType = iota
	LeftOuterJoin
	CrossJoin
)

func (j JoinType) String() string {
	switch j {
	case InnerJoin:
		return "JOIN"
	case LeftOuterJoin:
		return "LEFT OUTER JOIN"
	case CrossJoin:
		return "CROSS JOIN"
	default:
		return "JOIN?"
	}
}

// Join combines two table expressions.
type Join struct {
	Left, Right TableExpr
	Type        JoinType
	On          Expr // nil for CROSS JOIN / comma joins
}

func (*Join) tableExpr() {}

func (j *Join) String() string {
	if j.Type == CrossJoin {
		return fmt.Sprintf("%s, %s", j.Left, j.Right)
	}
	return fmt.Sprintf("%s %s %s ON %s", j.Left, j.Type, j.Right, j.On)
}

// DerivedTable is a parenthesized subquery in FROM with an alias.
type DerivedTable struct {
	Select SelectStatement
	Alias  string
}

func (*DerivedTable) tableExpr() {}

func (d *DerivedTable) String() string {
	return fmt.Sprintf("(%s) %s", d.Select, d.Alias)
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// ColumnRef references a (possibly qualified) column.
type ColumnRef struct {
	Table string // optional qualifier
	Name  string
}

func (*ColumnRef) expr() {}

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Literal is a constant value.
type Literal struct{ Val sqltypes.Datum }

func (*Literal) expr() {}

func (l *Literal) String() string {
	if l.Val.Typ() == sqltypes.String {
		return "'" + strings.ReplaceAll(l.Val.Str(), "'", "''") + "'"
	}
	return l.Val.String()
}

// BinaryExpr is arithmetic: + - * /.
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

func (*BinaryExpr) expr() {}

func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}

// UnaryExpr is unary minus.
type UnaryExpr struct {
	Op   string
	Expr Expr
}

func (*UnaryExpr) expr() {}

func (e *UnaryExpr) String() string { return fmt.Sprintf("(%s%s)", e.Op, e.Expr) }

// ComparisonExpr is = <> < <= > >=.
type ComparisonExpr struct {
	Op          string
	Left, Right Expr
}

func (*ComparisonExpr) expr() {}

func (e *ComparisonExpr) String() string {
	return fmt.Sprintf("%s %s %s", e.Left, e.Op, e.Right)
}

// AndExpr is boolean conjunction.
type AndExpr struct{ Left, Right Expr }

func (*AndExpr) expr() {}

func (e *AndExpr) String() string { return fmt.Sprintf("(%s AND %s)", e.Left, e.Right) }

// OrExpr is boolean disjunction.
type OrExpr struct{ Left, Right Expr }

func (*OrExpr) expr() {}

func (e *OrExpr) String() string { return fmt.Sprintf("(%s OR %s)", e.Left, e.Right) }

// NotExpr is boolean negation.
type NotExpr struct{ Expr Expr }

func (*NotExpr) expr() {}

func (e *NotExpr) String() string { return fmt.Sprintf("(NOT %s)", e.Expr) }

// InExpr is expr [NOT] IN (list…).
type InExpr struct {
	Left    Expr
	List    []Expr
	Negated bool
}

func (*InExpr) expr() {}

func (e *InExpr) String() string {
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	not := ""
	if e.Negated {
		not = "NOT "
	}
	return fmt.Sprintf("%s %sIN (%s)", e.Left, not, strings.Join(parts, ", "))
}

// BetweenExpr is expr [NOT] BETWEEN a AND b.
type BetweenExpr struct {
	Expr     Expr
	From, To Expr
	Negated  bool
}

func (*BetweenExpr) expr() {}

func (e *BetweenExpr) String() string {
	not := ""
	if e.Negated {
		not = "NOT "
	}
	return fmt.Sprintf("%s %sBETWEEN %s AND %s", e.Expr, not, e.From, e.To)
}

// IsNullExpr is expr IS [NOT] NULL.
type IsNullExpr struct {
	Expr    Expr
	Negated bool
}

func (*IsNullExpr) expr() {}

func (e *IsNullExpr) String() string {
	if e.Negated {
		return e.Expr.String() + " IS NOT NULL"
	}
	return e.Expr.String() + " IS NULL"
}

// FuncExpr is a function call — scalar (MOD, COALESCE, ABS, MONTH, …) or
// aggregate (SUM, COUNT, AVG, MIN, MAX). COUNT(*) is a FuncExpr with Star.
type FuncExpr struct {
	Name string
	Args []Expr
	Star bool // COUNT(*)
}

func (*FuncExpr) expr() {}

func (e *FuncExpr) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(parts, ", "))
}

// When is one WHEN…THEN arm of a CASE.
type When struct {
	Cond Expr
	Then Expr
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []When
	Else  Expr
}

func (*CaseExpr) expr() {}

func (e *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if e.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", e.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// BoundType classifies a window frame bound.
type BoundType uint8

// Frame bound kinds.
const (
	UnboundedPreceding BoundType = iota
	OffsetPreceding
	CurrentRow
	OffsetFollowing
	UnboundedFollowing
)

// FrameBound is one end of a ROWS frame.
type FrameBound struct {
	Type   BoundType
	Offset int // for OffsetPreceding / OffsetFollowing
}

func (b FrameBound) String() string {
	switch b.Type {
	case UnboundedPreceding:
		return "UNBOUNDED PRECEDING"
	case OffsetPreceding:
		return fmt.Sprintf("%d PRECEDING", b.Offset)
	case CurrentRow:
		return "CURRENT ROW"
	case OffsetFollowing:
		return fmt.Sprintf("%d FOLLOWING", b.Offset)
	case UnboundedFollowing:
		return "UNBOUNDED FOLLOWING"
	default:
		return "?"
	}
}

// FrameClause is ROWS BETWEEN start AND end (or the one-bound shorthand
// ROWS start, which means BETWEEN start AND CURRENT ROW).
type FrameClause struct {
	Start, End FrameBound
}

func (f FrameClause) String() string {
	return fmt.Sprintf("ROWS BETWEEN %s AND %s", f.Start, f.End)
}

// WindowExpr is a reporting function: agg(arg) OVER (PARTITION BY … ORDER BY
// … ROWS …) — the paper's Fig. 1 syntax.
type WindowExpr struct {
	Func        *FuncExpr
	PartitionBy []Expr
	OrderBy     []OrderItem
	Frame       *FrameClause // nil means the SQL default frame
}

func (*WindowExpr) expr() {}

func (e *WindowExpr) String() string {
	var b strings.Builder
	b.WriteString(e.Func.String())
	b.WriteString(" OVER (")
	sep := ""
	if len(e.PartitionBy) > 0 {
		b.WriteString("PARTITION BY ")
		for i, p := range e.PartitionBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
		sep = " "
	}
	if len(e.OrderBy) > 0 {
		b.WriteString(sep)
		b.WriteString("ORDER BY ")
		for i, o := range e.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
		sep = " "
	}
	if e.Frame != nil {
		b.WriteString(sep)
		b.WriteString(e.Frame.String())
	}
	b.WriteString(")")
	return b.String()
}

// WalkExpr calls fn for e and every sub-expression, stopping a subtree
// descent when fn returns false.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExpr(x.Left, fn)
		WalkExpr(x.Right, fn)
	case *UnaryExpr:
		WalkExpr(x.Expr, fn)
	case *ComparisonExpr:
		WalkExpr(x.Left, fn)
		WalkExpr(x.Right, fn)
	case *AndExpr:
		WalkExpr(x.Left, fn)
		WalkExpr(x.Right, fn)
	case *OrExpr:
		WalkExpr(x.Left, fn)
		WalkExpr(x.Right, fn)
	case *NotExpr:
		WalkExpr(x.Expr, fn)
	case *InExpr:
		WalkExpr(x.Left, fn)
		for _, it := range x.List {
			WalkExpr(it, fn)
		}
	case *BetweenExpr:
		WalkExpr(x.Expr, fn)
		WalkExpr(x.From, fn)
		WalkExpr(x.To, fn)
	case *IsNullExpr:
		WalkExpr(x.Expr, fn)
	case *FuncExpr:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Then, fn)
		}
		WalkExpr(x.Else, fn)
	case *WindowExpr:
		WalkExpr(x.Func, fn)
		for _, p := range x.PartitionBy {
			WalkExpr(p, fn)
		}
		for _, o := range x.OrderBy {
			WalkExpr(o.Expr, fn)
		}
	}
}
