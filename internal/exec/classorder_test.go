package exec

import (
	"math"
	"testing"

	"rfview/internal/expr"
	"rfview/internal/sqltypes"
)

// These tests pin the ClassOrderMeta handshake: a shared class Sort records
// the sorted stream's adjacency table (per-position tie depths and per-key
// runtime types) and the Window operators stacked above read partition
// boundaries and tie runs from it instead of re-evaluating key expressions.
// Every test checks bit-identical output against the unshared plan, plus the
// metadata validity the scenario implies — valid when the in-memory
// normalized sort ran, invalid when NaN or NoVectorize forced a fallback.

// sharedStackMeta is sharedStack with the class sort's adjacency metadata
// wired through to the Window, exactly as planWindowsShared does. partKeys is
// the class's canonical partition key count (deduplicated), which may be
// smaller than len(pb).
func sharedStackMeta(schema *expr.Schema, rows []sqltypes.Row, pb []expr.Expr, ob, sortKeys []SortKey, funcs []WindowFunc, orderExact, noVectorize bool, partKeys int) (Operator, *ClassOrderMeta) {
	ordCol := len(schema.Cols)
	var op Operator = NewOrdinal(valuesOp(schema, rows...), "__rf_ord")
	meta := NewClassOrderMeta(partKeys)
	op = &Sort{Input: op, Keys: sortKeys, SharedClass: 1, NoVectorize: noVectorize, Order: meta}
	w := NewWindow(op, pb, ob, funcs)
	w.Shared = true
	w.PreSorted = true
	w.OrderExact = orderExact
	w.ClassOrder = meta
	w.OrdinalCol = ordCol
	w.Class = 1
	return NewRestore(w, ordCol), meta
}

// diffSharedMetaUnshared runs the meta-wired shared stack against the plain
// unshared Window and requires bit-identical output; returns the metadata for
// validity assertions.
func diffSharedMetaUnshared(t *testing.T, label string, schema *expr.Schema, rows []sqltypes.Row, pb []expr.Expr, ob, sortKeys []SortKey, funcs []WindowFunc, orderExact, noVectorize bool, partKeys int) *ClassOrderMeta {
	t.Helper()
	want, err := Collect(NewWindow(valuesOp(schema, rows...), pb, ob, funcs))
	if err != nil {
		t.Fatalf("%s: unshared: %v", label, err)
	}
	op, meta := sharedStackMeta(schema, rows, pb, ob, sortKeys, funcs, orderExact, noVectorize, partKeys)
	got, err := Collect(op)
	if err != nil {
		t.Fatalf("%s: shared: %v", label, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Fatalf("%s: row %d = %s, want %s", label, i, got[i], want[i])
		}
	}
	return meta
}

// TestClassOrderMetaTieRuns: the class sort refines the member's ORDER BY
// with an extra key, so the member must re-normalize tie runs — here off the
// metadata's tie depths, with no key evaluation. Duplicate (p, k) pairs with
// distinct v make any missed or misplaced run boundary observable through the
// cumulative frame.
func TestClassOrderMetaTieRuns(t *testing.T) {
	schema := pkvSchema(sqltypes.Int, sqltypes.Int)
	var rows []sqltypes.Row
	for i := 0; i < 40; i++ {
		rows = append(rows, intRow(int64(i%3), int64(i%4), int64(37-i)))
	}
	pb := keysOf(t, schema, "p")
	ob := sortKeysOf(t, schema, "k")
	shared := sortKeysOf(t, schema, "p", "k", "v DESC")
	meta := diffSharedMetaUnshared(t, "meta-ties", schema, rows, pb, ob, shared,
		sumCum(keysOf(t, schema, "v")[0]), false, false, 1)
	if !meta.Valid(len(rows)) {
		t.Fatal("class sort left metadata invalid; meta path never ran")
	}
}

// TestClassOrderMetaOrderExact: the member's ORDER BY is the full class
// suffix and the class sort carries no ordinal key — the first emitted sort
// relies on sort stability for input-order ties. With valid metadata the
// pre-sorted consumer does zero per-row work, so any stability bug in the
// sort surfaces as a tie-order diff here.
func TestClassOrderMetaOrderExact(t *testing.T) {
	schema := pkvSchema(sqltypes.Int, sqltypes.Int)
	var rows []sqltypes.Row
	for i := 0; i < 36; i++ {
		rows = append(rows, intRow(int64(i%3), int64(i%4), int64(i)))
	}
	pb := keysOf(t, schema, "p")
	ob := sortKeysOf(t, schema, "k")
	shared := sortKeysOf(t, schema, "p", "k") // exact suffix, no ordinal key
	meta := diffSharedMetaUnshared(t, "meta-exact", schema, rows, pb, ob, shared,
		sumCum(keysOf(t, schema, "v")[0]), true, false, 1)
	if !meta.Valid(len(rows)) {
		t.Fatal("class sort left metadata invalid; meta path never ran")
	}
}

// TestClassOrderMetaFloatPartitionRefused: the key encoding canonicalizes
// -0.0 to +0.0 while the unshared plan hashes partition keys by float bits,
// so metadata boundaries are unsound for Float partition keys. The metadata
// itself stays valid (no NaN defeated the encoding) but the Window must
// refuse it and fall back to the evaluating scan, which detects -0.0 and
// splits partitions by hash like the unshared plan.
func TestClassOrderMetaFloatPartitionRefused(t *testing.T) {
	schema := pkvSchema(sqltypes.Float, sqltypes.Int)
	negz := math.Copysign(0, -1)
	var rows []sqltypes.Row
	for i := 0; i < 24; i++ {
		p := 0.0
		if i%2 == 0 {
			p = negz
		}
		rows = append(rows, sqltypes.Row{sqltypes.NewFloat(p), sqltypes.NewInt(int64(i % 4)), sqltypes.NewInt(int64(i))})
	}
	pb := keysOf(t, schema, "p")
	ob := sortKeysOf(t, schema, "k")
	shared := sortKeysOf(t, schema, "p", "k")
	meta := diffSharedMetaUnshared(t, "meta-float-part", schema, rows, pb, ob, shared,
		sumCum(keysOf(t, schema, "v")[0]), false, false, 1)
	if !meta.Valid(len(rows)) {
		t.Fatal("metadata should be valid (floats encode fine); only the Window refuses it")
	}
	if meta.KeyType(0) != sqltypes.Float {
		t.Fatalf("recorded key type = %v, want Float", meta.KeyType(0))
	}
}

// TestClassOrderMetaNaNInvalidates: a NaN order key bails the normalized
// sort, so the metadata never becomes valid and the Window's evaluating
// fallbacks must carry the run unchanged.
func TestClassOrderMetaNaNInvalidates(t *testing.T) {
	schema := pkvSchema(sqltypes.Int, sqltypes.Float)
	nan := math.NaN()
	var rows []sqltypes.Row
	for i := 0; i < 24; i++ {
		k := float64(i % 4)
		if i%6 == 0 {
			k = nan
		}
		rows = append(rows, sqltypes.Row{sqltypes.NewInt(int64(i % 3)), sqltypes.NewFloat(k), sqltypes.NewInt(int64(i))})
	}
	pb := keysOf(t, schema, "p")
	ob := sortKeysOf(t, schema, "k")
	shared := sortKeysOf(t, schema, "p", "k")
	meta := diffSharedMetaUnshared(t, "meta-nan", schema, rows, pb, ob, shared,
		sumCum(keysOf(t, schema, "v")[0]), false, false, 1)
	if meta.Valid(len(rows)) {
		t.Fatal("NaN keys must leave the metadata invalid")
	}
}

// TestClassOrderMetaNoVectorize: the comparator sort path never fills the
// metadata; the shared plan must still match through the evaluating
// fallbacks.
func TestClassOrderMetaNoVectorize(t *testing.T) {
	schema := pkvSchema(sqltypes.Int, sqltypes.Int)
	var rows []sqltypes.Row
	for i := 0; i < 30; i++ {
		rows = append(rows, intRow(int64(i%3), int64(i%5), int64(29-i)))
	}
	pb := keysOf(t, schema, "p")
	ob := sortKeysOf(t, schema, "k")
	shared := sortKeysOf(t, schema, "p", "k", "v")
	meta := diffSharedMetaUnshared(t, "meta-novec", schema, rows, pb, ob, shared,
		sumCum(keysOf(t, schema, "v")[0]), false, true, 1)
	if meta.Valid(len(rows)) {
		t.Fatal("comparator path must leave the metadata invalid")
	}
}

// TestClassOrderMetaDuplicatePartitionExprs: PARTITION BY p, p — the member
// evaluates two partition expressions but the class's canonical key set has
// one, and the metadata thresholds must use the class count, not the
// member's. A wrong count would read order-key depth as partition depth and
// fuse (or split) partitions.
func TestClassOrderMetaDuplicatePartitionExprs(t *testing.T) {
	schema := pkvSchema(sqltypes.Int, sqltypes.Int)
	var rows []sqltypes.Row
	for i := 0; i < 30; i++ {
		rows = append(rows, intRow(int64(i%3), int64(i%4), int64(i)))
	}
	pb := keysOf(t, schema, "p", "p") // duplicated partition expression
	ob := sortKeysOf(t, schema, "k")
	// Class canonical ordering deduplicates: sort by p, k, refined by v.
	shared := sortKeysOf(t, schema, "p", "k", "v DESC")
	meta := diffSharedMetaUnshared(t, "meta-dup-part", schema, rows, pb, ob, shared,
		sumCum(keysOf(t, schema, "v")[0]), false, false, 1)
	if !meta.Valid(len(rows)) {
		t.Fatal("class sort left metadata invalid; meta path never ran")
	}
	if meta.PartKeys() != 1 {
		t.Fatalf("PartKeys() = %d, want the class canonical count 1", meta.PartKeys())
	}
}

// TestClassOrderMetaReset: reusing one Sort across Opens must not leak stale
// adjacency data — a second Open over NaN-bearing rows (which bails the
// normalized path) must invalidate the metadata filled by the first.
func TestClassOrderMetaReset(t *testing.T) {
	schema := pkvSchema(sqltypes.Int, sqltypes.Float)
	clean := []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewFloat(2), sqltypes.NewInt(10)},
		{sqltypes.NewInt(1), sqltypes.NewFloat(1), sqltypes.NewInt(11)},
		{sqltypes.NewInt(2), sqltypes.NewFloat(3), sqltypes.NewInt(12)},
	}
	meta := NewClassOrderMeta(1)
	s := &Sort{Input: valuesOp(schema, clean...), Keys: sortKeysOf(t, schema, "p", "k"), Order: meta}
	if _, err := Collect(s); err != nil {
		t.Fatal(err)
	}
	if !meta.Valid(len(clean)) {
		t.Fatal("clean rows should fill the metadata")
	}
	dirty := append(append([]sqltypes.Row(nil), clean...),
		sqltypes.Row{sqltypes.NewInt(2), sqltypes.NewFloat(math.NaN()), sqltypes.NewInt(13)})
	s.Input = valuesOp(schema, dirty...)
	if _, err := Collect(s); err != nil {
		t.Fatal(err)
	}
	if meta.Valid(len(dirty)) || meta.Valid(len(clean)) {
		t.Fatal("NaN re-open must reset the metadata, not serve the stale table")
	}
}
