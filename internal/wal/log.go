package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy controls when appended records reach stable storage.
type SyncPolicy int

// The -fsync policy knob.
const (
	// SyncAlways fsyncs after every append: an acknowledged statement is
	// durable before the engine applies it.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background ticker; a crash can lose up to
	// one interval of acknowledged statements.
	SyncInterval
	// SyncOff never fsyncs; durability is whatever the OS page cache
	// survives. Process death (kill -9) loses nothing, power loss may.
	SyncOff
)

// ParseSyncPolicy maps the -fsync flag values onto policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
}

// DefaultSegmentBytes rotates segments at 4 MiB.
const DefaultSegmentBytes = 4 << 20

// DefaultSyncInterval is the flush cadence under SyncInterval.
const DefaultSyncInterval = 100 * time.Millisecond

// Log is a segmented append-only record log. It is safe for concurrent use,
// though the engine's exclusive write lock already serializes appends.
type Log struct {
	dir          string // <dataDir>/wal
	policy       SyncPolicy
	segmentBytes int64

	mu      sync.Mutex
	f       *os.File
	size    int64
	nextLSN uint64
	dirty   bool // unsynced appends under SyncInterval

	// ObserveFsync, when set, receives the duration of every segment fsync.
	// Set it before the log sees concurrent use (the manager wires it at
	// open time).
	ObserveFsync func(time.Duration)

	stop chan struct{}
	done chan struct{}
}

// segDir returns the segment directory under a data directory.
func segDir(dataDir string) string { return filepath.Join(dataDir, "wal") }

func segName(firstLSN uint64) string { return fmt.Sprintf("wal-%016x.seg", firstLSN) }

// segFirstLSN parses the first-LSN out of a segment file name, reporting
// ok=false for files that are not segments.
func segFirstLSN(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// openLog starts a fresh segment whose first record will carry nextLSN.
// Existing segments are left alone; recovery reads them, checkpoints delete
// them.
func openLog(dataDir string, nextLSN uint64, policy SyncPolicy, segmentBytes int64, interval time.Duration) (*Log, error) {
	if segmentBytes <= 0 {
		segmentBytes = DefaultSegmentBytes
	}
	if interval <= 0 {
		interval = DefaultSyncInterval
	}
	if err := os.MkdirAll(segDir(dataDir), 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: segDir(dataDir), policy: policy, segmentBytes: segmentBytes, nextLSN: nextLSN}
	if err := l.rotateLocked(); err != nil {
		return nil, err
	}
	if policy == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.flusher(interval)
	}
	return l, nil
}

// rotateLocked closes the current segment (if any) and opens a new one named
// after the next LSN. Callers hold l.mu (or own the log exclusively).
//
// O_TRUNC, not O_EXCL: an existing file with this name can only hold records
// already covered by a snapshot (a checkpoint rotating before any append) or
// records beyond a tear that recovery refused to replay — both discardable by
// construction, never records the engine still depends on.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.syncFile(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	path := filepath.Join(l.dir, segName(l.nextLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := writeMagic(f); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.size = int64(len(segMagic))
	return syncDir(l.dir)
}

// Append logs one statement and returns its LSN. Under SyncAlways the record
// is on stable storage when Append returns.
func (l *Log) Append(sql string) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, fmt.Errorf("wal: log is closed")
	}
	lsn := l.nextLSN
	buf := appendRecord(nil, Record{LSN: lsn, SQL: sql})
	if _, err := l.f.Write(buf); err != nil {
		return 0, err
	}
	l.nextLSN++
	l.size += int64(len(buf))
	switch l.policy {
	case SyncAlways:
		if err := l.syncFile(); err != nil {
			return 0, err
		}
	case SyncInterval:
		l.dirty = true
	}
	if l.size >= l.segmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// LastLSN returns the LSN of the most recently appended record, or
// nextLSN-1 == the pre-open value when nothing has been appended yet.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Sync forces buffered records to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.f == nil {
		return nil
	}
	l.dirty = false
	return l.syncFile()
}

// syncFile fsyncs the active segment, timing it for the fsync-latency
// histogram. Callers hold l.mu and have checked l.f != nil.
func (l *Log) syncFile() error {
	start := time.Now()
	err := l.f.Sync()
	if l.ObserveFsync != nil {
		l.ObserveFsync(time.Since(start))
	}
	return err
}

// Truncate deletes every segment whose records are all ≤ throughLSN (they
// are covered by a snapshot) and starts a fresh segment. It is the log half
// of a checkpoint.
func (l *Log) Truncate(throughLSN uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nextLSN <= throughLSN {
		l.nextLSN = throughLSN + 1
	}
	if err := l.rotateLocked(); err != nil {
		return err
	}
	segs, err := listSegments(filepath.Dir(l.dir))
	if err != nil {
		return err
	}
	// A segment is disposable when the *next* segment starts at or below
	// throughLSN+1 — then every record it holds is ≤ throughLSN. The fresh
	// segment just opened starts at nextLSN > throughLSN, so it survives.
	for i, s := range segs {
		covered := false
		if i+1 < len(segs) {
			covered = segs[i+1].firstLSN <= throughLSN+1
		}
		if covered {
			if err := os.Remove(s.path); err != nil {
				return err
			}
		}
	}
	return syncDir(l.dir)
}

// Close stops the flusher, syncs, and closes the active segment.
func (l *Log) Close() error {
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

func (l *Log) flusher(interval time.Duration) {
	defer close(l.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty {
				l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

type segment struct {
	path     string
	firstLSN uint64
}

// listSegments returns the data directory's segments sorted by first LSN.
func listSegments(dataDir string) ([]segment, error) {
	entries, err := os.ReadDir(segDir(dataDir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		if lsn, ok := segFirstLSN(e.Name()); ok {
			segs = append(segs, segment{path: filepath.Join(segDir(dataDir), e.Name()), firstLSN: lsn})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	return segs, nil
}

// ReadTail reads every record with LSN > afterLSN from the data directory's
// segments, in order, applying the torn-tail rule: reading stops — without
// error — at the first incomplete or corrupt record, and every later segment
// is ignored (records after a tear are not trustworthy even if their CRCs
// pass, because the sequence has a hole).
func ReadTail(dataDir string, afterLSN uint64) ([]Record, error) {
	segs, err := listSegments(dataDir)
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, s := range segs {
		data, err := os.ReadFile(s.path)
		if err != nil {
			return nil, err
		}
		body, err := checkMagic(data)
		if err != nil {
			// A segment file without a valid header is a tear at offset 0.
			return out, nil
		}
		recs, _, ok := readRecords(body)
		for _, r := range recs {
			if r.LSN > afterLSN {
				out = append(out, r)
			}
		}
		if !ok {
			return out, nil // torn tail: stop here
		}
	}
	return out, nil
}

// syncDir fsyncs a directory so renames and removals inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
