package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rfview/internal/sqltypes"
)

// MemBudget is the slice of spill.Budget the pool charges page residency
// against, so the server's one -mem-budget knob governs sort spill buffers
// and page cache together.
type MemBudget interface {
	Charge(n int64) bool
	Force(n int64)
	Release(n int64)
}

// pageKey identifies one page of one heap file.
type pageKey struct {
	hf  *heapFile
	pid uint32
}

// frame is one resident page. All fields are guarded by the pool mutex,
// except buf's contents, whose safety comes from the pin protocol: record
// bytes are immutable once their slot is published, appends touch only
// unpublished bytes under the owning table's write lock, and eviction
// requires pins == 0 — so no page buffer is ever written and read
// concurrently at the same offset.
type frame struct {
	key   pageKey
	buf   []byte
	pins  int
	ref   bool // clock second-chance bit
	dirty bool
	busy  chan struct{} // non-nil while a claimant reads the page from disk
	err   error         // load error, valid once busy is closed

	// decoded caches rows already decoded from this frame's records, indexed
	// by slot, so a warm scan pays the rowcodec decode once per residency
	// instead of once per read. Entries are immutable once published (record
	// bytes never change under a published slot) and die with the tenancy:
	// the recycler clears the cache and refunds its budget charge before the
	// frame holds another page. Accessed only while holding a pin.
	decoded      atomic.Pointer[decodedRows]
	decodedBytes atomic.Int64
}

// decodedRows is a frame's decoded-row cache. The slice is replaced
// wholesale (copy + CAS) when it must grow; individual entries are published
// with CompareAndSwap so racing decoders charge the budget at most once. A
// store lost to a concurrent growth race only costs a redundant re-decode
// later — the accounting still balances because the refund at clear time is
// the sum of every successful charge.
type decodedRows struct {
	rows []atomic.Pointer[sqltypes.Row]
}

// cachedRow returns the decoded row cached for slot, or nil. The caller
// must hold a pin on f.
func (f *frame) cachedRow(slot uint16) sqltypes.Row {
	c := f.decoded.Load()
	if c == nil || int(slot) >= len(c.rows) {
		return nil
	}
	if r := c.rows[slot].Load(); r != nil {
		return *r
	}
	return nil
}

// cacheRow remembers row as the decode of slot's record, charging its
// estimated footprint to the shared budget. A full budget just skips the
// cache — correctness never depends on it. The caller must hold a pin on f.
func (p *pool) cacheRow(f *frame, slot uint16, row sqltypes.Row) {
	cost := row.MemSize()
	if p.budget != nil && !p.budget.Charge(cost) {
		return
	}
	for {
		c := f.decoded.Load()
		if c == nil || int(slot) >= len(c.rows) {
			n := 16
			if c != nil && 2*len(c.rows) > n {
				n = 2 * len(c.rows)
			}
			if n <= int(slot) {
				n = int(slot) + 1
			}
			nc := &decodedRows{rows: make([]atomic.Pointer[sqltypes.Row], n)}
			if c != nil {
				for i := range c.rows {
					nc.rows[i].Store(c.rows[i].Load())
				}
			}
			if !f.decoded.CompareAndSwap(c, nc) {
				continue
			}
			c = nc
		}
		if c.rows[slot].CompareAndSwap(nil, &row) {
			f.decodedBytes.Add(cost)
		} else if p.budget != nil {
			p.budget.Release(cost) // a concurrent decoder won; keep its copy
		}
		return
	}
}

// clearDecoded drops f's decoded-row cache and refunds its budget charge.
func (p *pool) clearDecoded(f *frame) {
	f.decoded.Store(nil)
	if n := f.decodedBytes.Swap(0); n > 0 && p.budget != nil {
		p.budget.Release(n)
	}
}

// PoolStats is a snapshot of buffer-pool state and counters.
type PoolStats struct {
	PageSize int `json:"page_size"`
	// BytesResident is the pool's total charged memory: frame bytes (free
	// frames included; they are still allocated) plus the decoded-row cache.
	BytesResident int64 `json:"bytes_resident"`
	// RowCacheBytes is the decoded-row cache's share of BytesResident.
	RowCacheBytes int64 `json:"row_cache_bytes"`
	PagesCached   int64 `json:"pages_cached"`
	PagesPinned   int64 `json:"pages_pinned"`
	PagesDirty    int64 `json:"pages_dirty"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Writebacks    int64 `json:"writebacks"`
}

// HitRatio returns hits/(hits+misses), or 1 when the pool is untouched.
func (s PoolStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 1
	}
	return float64(s.Hits) / float64(total)
}

// pool is a pin-counted page cache with clock (second-chance) eviction.
//
// Growth policy: a pin that misses first reuses a free frame, then grows the
// pool if the hard cap allows it and the shared budget accepts the charge,
// then runs the clock to evict an unpinned resident page (writing it back if
// dirty). If every frame is pinned the pool grows anyway with a forced
// budget overdraft — a pin must always succeed or the executor deadlocks.
type pool struct {
	pageSize int
	capBytes int64 // hard cap on pool bytes; <=0 = budget-governed only
	budget   MemBudget

	mu     sync.Mutex
	table  map[pageKey]*frame
	frames []*frame // clock array: every frame ever allocated
	free   []*frame // frames not holding any page
	hand   int

	hits       atomic.Int64
	misses     atomic.Int64
	evictions  atomic.Int64
	writebacks atomic.Int64
}

func newPool(pageSize int, capBytes int64, budget MemBudget) *pool {
	return &pool{
		pageSize: pageSize,
		capBytes: capBytes,
		budget:   budget,
		table:    make(map[pageKey]*frame),
	}
}

func (p *pool) charge() bool {
	if p.budget == nil {
		return true
	}
	return p.budget.Charge(int64(p.pageSize))
}

// pin makes page pid of hf resident and pinned. hit reports whether the page
// was already cached (a waiter joining an in-flight load counts as a hit: it
// issued no IO of its own). The caller must unpin exactly once.
func (p *pool) pin(hf *heapFile, pid uint32) (f *frame, hit bool, err error) {
	key := pageKey{hf, pid}
	p.mu.Lock()
	if f := p.table[key]; f != nil {
		f.pins++
		f.ref = true
		busy := f.busy
		p.mu.Unlock()
		if busy != nil {
			<-busy
			if f.err != nil {
				err := f.err
				p.releaseFrame(f)
				return nil, false, err
			}
		}
		p.hits.Add(1)
		return f, true, nil
	}
	f, err = p.freeFrameLocked()
	if err != nil {
		p.mu.Unlock()
		return nil, false, err
	}
	ch := make(chan struct{})
	f.key = key
	f.pins = 1
	f.ref = true
	f.dirty = false
	f.err = nil
	f.busy = ch
	p.table[key] = f
	p.mu.Unlock()

	// Read IO happens outside the pool lock; waiters block on the busy
	// channel and hold pins, so the frame cannot be stolen meanwhile.
	loadErr := hf.readPage(pid, f.buf)
	p.mu.Lock()
	f.err = loadErr
	f.busy = nil
	if loadErr != nil {
		delete(p.table, key) // no new pins; holders drain via releaseFrame
	}
	close(ch)
	p.mu.Unlock()
	if loadErr != nil {
		p.releaseFrame(f)
		return nil, false, loadErr
	}
	p.misses.Add(1)
	return f, false, nil
}

// create makes a brand-new, zeroed, dirty, pinned frame for page pid. The
// page is born resident, which is the invariant that lets readPage treat a
// miss on disk as corruption: a page can only leave the pool via write-back.
func (p *pool) create(hf *heapFile, pid uint32) (*frame, error) {
	key := pageKey{hf, pid}
	p.mu.Lock()
	f, err := p.freeFrameLocked()
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	clear(f.buf)
	f.key = key
	f.pins = 1
	f.ref = true
	f.dirty = true
	f.err = nil
	f.busy = nil
	p.table[key] = f
	p.mu.Unlock()
	return f, nil
}

// unpin drops one pin; dirty marks the page as modified since last
// write-back.
func (p *pool) unpin(f *frame, dirty bool) {
	p.mu.Lock()
	if dirty {
		f.dirty = true
	}
	f.pins--
	p.mu.Unlock()
}

// releaseFrame drops a pin on a frame whose load failed; the last holder
// returns it to the free list.
func (p *pool) releaseFrame(f *frame) {
	p.mu.Lock()
	f.pins--
	if f.pins == 0 {
		f.dirty = false
		p.free = append(p.free, f)
	}
	p.mu.Unlock()
}

// freeFrameLocked returns a frame not holding any page, pulling from the
// free list, growing the pool, or evicting a victim. Called with p.mu held;
// dirty-victim write-back happens under the lock — a deliberate
// simplification that closes the stale-read race where another goroutine
// re-reads the victim's old page from disk before its write-back lands.
func (p *pool) freeFrameLocked() (*frame, error) {
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		p.clearDecoded(f)
		return f, nil
	}
	total := int64(len(p.frames)) * int64(p.pageSize)
	underCap := p.capBytes <= 0 || total+int64(p.pageSize) <= p.capBytes
	if underCap && p.charge() {
		f := &frame{buf: make([]byte, p.pageSize)}
		p.frames = append(p.frames, f)
		return f, nil
	}
	// Clock scan: two full sweeps give every unpinned frame one
	// second chance before it can be victimized.
	for scanned := 0; scanned < 2*len(p.frames); scanned++ {
		f := p.frames[p.hand]
		p.hand = (p.hand + 1) % len(p.frames)
		if f.pins > 0 || f.busy != nil {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if f.dirty {
			if err := f.key.hf.writePage(f.key.pid, f.buf); err != nil {
				return nil, err
			}
			f.dirty = false
			p.writebacks.Add(1)
		}
		delete(p.table, f.key)
		p.evictions.Add(1)
		p.clearDecoded(f)
		return f, nil
	}
	// Everything is pinned: grow anyway. Liveness beats the cap here —
	// refusing would deadlock the pinning statement.
	if p.budget != nil {
		p.budget.Force(int64(p.pageSize))
	}
	f := &frame{buf: make([]byte, p.pageSize)}
	p.frames = append(p.frames, f)
	return f, nil
}

// flushDirty writes back every dirty, unpinned, resident page. Pinned or
// in-flight frames are skipped — they stay dirty and flush later.
func (p *pool) flushDirty() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.dirty && f.pins == 0 && f.busy == nil {
			if err := f.key.hf.writePage(f.key.pid, f.buf); err != nil {
				return err
			}
			f.dirty = false
			p.writebacks.Add(1)
		}
	}
	return nil
}

func (p *pool) stats() PoolStats {
	p.mu.Lock()
	s := PoolStats{
		PageSize:      p.pageSize,
		BytesResident: int64(len(p.frames)) * int64(p.pageSize),
		PagesCached:   int64(len(p.table)),
	}
	for _, f := range p.frames {
		if f.pins > 0 {
			s.PagesPinned++
		}
		if f.dirty {
			s.PagesDirty++
		}
		s.RowCacheBytes += f.decodedBytes.Load()
	}
	s.BytesResident += s.RowCacheBytes
	p.mu.Unlock()
	s.Hits = p.hits.Load()
	s.Misses = p.misses.Load()
	s.Evictions = p.evictions.Load()
	s.Writebacks = p.writebacks.Load()
	return s
}

// close releases every frame's budget charge and drops all state.
func (p *pool) close() {
	p.mu.Lock()
	total := int64(len(p.frames)) * int64(p.pageSize)
	for _, f := range p.frames {
		p.clearDecoded(f)
	}
	p.frames = nil
	p.free = nil
	p.table = make(map[pageKey]*frame)
	p.mu.Unlock()
	if p.budget != nil && total > 0 {
		p.budget.Release(total)
	}
}

// PagerConfig configures a Pager.
type PagerConfig struct {
	// PageSize in bytes; 0 means DefaultPageSize. Clamped to
	// [MinPageSize, MaxPageSize].
	PageSize int
	// CapBytes is a hard cap on buffer-pool residency (the test knob
	// RFVIEW_TEST_PAGE_CACHE); <= 0 means the shared budget alone governs
	// growth.
	CapBytes int64
	// Budget is the shared memory budget page residency is charged to.
	Budget MemBudget
	// Env creates heap files; required.
	Env HeapEnv
}

// Pager owns the buffer pool and the heap files of every paged table in one
// engine. Heap files are never removed individually — DropTable may race
// with lock-free readers still holding iterators — so files live until the
// pager closes and the Env sweeps them. That leak is bounded by the life of
// the process and by DDL frequency, and it keeps reads latch-free.
type Pager struct {
	pool     *pool
	env      HeapEnv
	pageSize int

	mu     sync.Mutex
	files  []*heapFile
	closed bool
}

// NewPager builds a pager. PageSize is defaulted and clamped.
func NewPager(cfg PagerConfig) *Pager {
	ps := cfg.PageSize
	if ps == 0 {
		ps = DefaultPageSize
	}
	if ps < MinPageSize {
		ps = MinPageSize
	}
	if ps > MaxPageSize {
		ps = MaxPageSize
	}
	return &Pager{
		pool:     newPool(ps, cfg.CapBytes, cfg.Budget),
		env:      cfg.Env,
		pageSize: ps,
	}
}

// PageSize returns the configured page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// Stats snapshots the buffer pool.
func (p *Pager) Stats() PoolStats { return p.pool.stats() }

// FlushDirty writes back all dirty unpinned pages (checkpoint hook).
func (p *Pager) FlushDirty() error { return p.pool.flushDirty() }

// newHeapFile registers a heap file for one table.
func (p *Pager) newHeapFile(tag string) (*heapFile, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("storage: pager closed")
	}
	hf := &heapFile{pager: p, tag: tag}
	p.files = append(p.files, hf)
	return hf, nil
}

// Close drops the pool and closes every heap file. The Env removes the
// files from disk.
func (p *Pager) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	files := p.files
	p.files = nil
	p.mu.Unlock()
	p.pool.close()
	var first error
	for _, hf := range files {
		if err := hf.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
