package exec

import (
	"fmt"
	"sort"

	"rfview/internal/expr"
	"rfview/internal/sqltypes"
)

// AggSpec describes one aggregate computed by HashAggregate.
type AggSpec struct {
	Name string    // SUM, COUNT, AVG, MIN, MAX
	Arg  expr.Expr // nil for COUNT(*)
	// OutName labels the output column.
	OutName string
}

func (a AggSpec) String() string {
	if a.Arg == nil {
		return a.Name + "(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Name, a.Arg)
}

// HashAggregate groups its input by the group-by expressions and computes
// the aggregate specs per group. With no group-by expressions it computes a
// single global group (which exists even over empty input, per SQL).
// Output columns: group-by values first, aggregate results after. Groups are
// emitted in first-appearance order, making results deterministic.
type HashAggregate struct {
	Input   Operator
	GroupBy []expr.Expr
	Aggs    []AggSpec
	// GroupNames labels the group-by output columns.
	GroupNames []string

	schema *expr.Schema
	out    []sqltypes.Row
	pos    int
}

// NewHashAggregate builds the operator and derives its output schema.
func NewHashAggregate(input Operator, groupBy []expr.Expr, groupNames []string, aggs []AggSpec) *HashAggregate {
	cols := make([]expr.ColInfo, 0, len(groupBy)+len(aggs))
	for i, g := range groupBy {
		name := ""
		if i < len(groupNames) {
			name = groupNames[i]
		}
		cols = append(cols, expr.ColInfo{Name: name, Type: g.Type()})
	}
	for _, a := range aggs {
		in := sqltypes.Int
		if a.Arg != nil {
			in = a.Arg.Type()
		}
		cols = append(cols, expr.ColInfo{Name: a.OutName, Type: expr.AggResultType(a.Name, in)})
	}
	return &HashAggregate{Input: input, GroupBy: groupBy, Aggs: aggs, GroupNames: groupNames,
		schema: expr.NewSchema(cols...)}
}

// Schema implements Operator.
func (h *HashAggregate) Schema() *expr.Schema { return h.schema }

type aggGroup struct {
	key   sqltypes.Row
	accs  []expr.AggAcc
	order int
}

// Open implements Operator: it drains the input and builds all groups.
func (h *HashAggregate) Open() error {
	if err := h.Input.Open(); err != nil {
		return err
	}
	defer h.Input.Close()

	groups := make(map[uint64][]*aggGroup)
	var ordered []*aggGroup
	newGroup := func(key sqltypes.Row) (*aggGroup, error) {
		g := &aggGroup{key: key, order: len(ordered)}
		for _, spec := range h.Aggs {
			acc, err := expr.NewAgg(spec.Name)
			if err != nil {
				return nil, err
			}
			g.accs = append(g.accs, acc)
		}
		ordered = append(ordered, g)
		return g, nil
	}

	for {
		row, err := h.Input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		key := make(sqltypes.Row, len(h.GroupBy))
		for i, g := range h.GroupBy {
			v, err := g.Eval(row)
			if err != nil {
				return err
			}
			key[i] = v
		}
		hash := hashRow(key)
		var grp *aggGroup
		for _, cand := range groups[hash] {
			if rowsEqual(cand.key, key) {
				grp = cand
				break
			}
		}
		if grp == nil {
			grp, err = newGroup(key)
			if err != nil {
				return err
			}
			groups[hash] = append(groups[hash], grp)
		}
		for i, spec := range h.Aggs {
			if spec.Arg == nil {
				grp.accs[i].Add(sqltypes.NewInt(1)) // COUNT(*)
				continue
			}
			v, err := spec.Arg.Eval(row)
			if err != nil {
				return err
			}
			grp.accs[i].Add(v)
		}
	}
	// A global aggregate over empty input still produces one row.
	if len(h.GroupBy) == 0 && len(ordered) == 0 {
		if _, err := newGroup(sqltypes.Row{}); err != nil {
			return err
		}
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].order < ordered[b].order })
	h.out = make([]sqltypes.Row, len(ordered))
	for i, g := range ordered {
		row := make(sqltypes.Row, 0, len(g.key)+len(g.accs))
		row = append(row, g.key...)
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		h.out[i] = row
	}
	h.pos = 0
	return nil
}

// Next implements Operator.
func (h *HashAggregate) Next() (sqltypes.Row, error) {
	if h.pos >= len(h.out) {
		return nil, nil
	}
	row := h.out[h.pos]
	h.pos++
	return row, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.out = nil
	return nil
}

// Describe implements Operator.
func (h *HashAggregate) Describe() string {
	gb := make([]string, len(h.GroupBy))
	for i, g := range h.GroupBy {
		gb[i] = g.String()
	}
	ag := make([]string, len(h.Aggs))
	for i, a := range h.Aggs {
		ag[i] = a.String()
	}
	return fmt.Sprintf("HashAggregate group=[%s] aggs=[%s]", joinTrunc(gb, 4), joinTrunc(ag, 4))
}

// Children implements Operator.
func (h *HashAggregate) Children() []Operator { return []Operator{h.Input} }
