// Package plan turns parsed SELECT statements into executable operator
// trees: name resolution, predicate placement, join-algorithm selection
// (index nested-loop / hash / nested-loop), aggregation, reporting-function
// (window) planning, and set operations.
//
// The planner exposes the switches the paper's evaluation toggles:
// Options.NativeWindow corresponds to "reporting functionality inside the
// database engine" (Table 1) — with it off, window queries fail with
// ErrWindowDisabled and the engine layer falls back to the relational
// self-join rewrite of Fig. 2; Options.UseIndexes corresponds to the
// with/without-index columns.
package plan

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"rfview/internal/catalog"
	"rfview/internal/exec"
	"rfview/internal/expr"
	"rfview/internal/spill"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
	"rfview/internal/txn"
)

// ErrWindowDisabled is returned when a query uses reporting functions but
// the native window operator is switched off. The engine reacts by applying
// the self-join simulation rewrite.
var ErrWindowDisabled = errors.New("reporting functions require the native window operator (disabled)")

// Options toggles the planner's physical alternatives.
type Options struct {
	// NativeWindow enables the Window operator. Off = the engine must
	// simulate reporting functions relationally (Fig. 2).
	NativeWindow bool
	// UseIndexes enables index nested-loop joins.
	UseIndexes bool
	// UseHashJoin enables hash joins for equi-join conjuncts.
	UseHashJoin bool
	// WindowParallelism caps the worker pool a Window operator uses to
	// evaluate partitions concurrently: 0 resolves to GOMAXPROCS at plan
	// time, 1 forces sequential evaluation, N > 1 allows up to N workers.
	WindowParallelism int
	// Ctx, when set, is stamped onto planned Window operators so the worker
	// pool (and the input drain) observe the caller's cancellation. Planners
	// are per-query, so carrying the request context here is sound.
	Ctx context.Context
	// WindowStats, when set, is stamped onto planned Window operators to
	// collect parallelism-utilization counters.
	WindowStats *exec.WindowStats
	// DisableVectorized forces the boxed Datum path in planned Sort and
	// Window operators, switching off key-normalized sorts and typed window
	// kernels. Off by default: vectorization is on, with per-partition
	// runtime fallback for ineligible data.
	DisableVectorized bool
	// Spill, when enabled, is stamped onto planned Sort and Window operators
	// so oversized orderings go external under the engine's memory budget.
	Spill *spill.Config
	// NoSharedSort disables the shared-sort multi-window pass: every Window
	// operator of a multi-OVER query orders its partitions internally, as a
	// stack of independent operators. Off by default (sharing on); the
	// differential oracle and A/B benchmarks flip it to compare the paths.
	NoSharedSort bool
	// Snap, when set, is stamped onto planned Scan and index-join operators:
	// it resolves the MVCC snapshot every heap access of the statement reads
	// at (one shared resolver per statement, so the whole plan sees a single
	// visibility horizon). Nil reads the latest committed state.
	Snap func() txn.Snapshot
}

// DefaultOptions enables everything; window parallelism resolves to
// GOMAXPROCS.
func DefaultOptions() Options {
	return Options{NativeWindow: true, UseIndexes: true, UseHashJoin: true}
}

// windowParallelism resolves the configured knob to the concrete worker
// count stamped on planned Window operators (and shown by EXPLAIN).
func (o Options) windowParallelism() int {
	if o.WindowParallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.WindowParallelism
}

// Planner builds operator trees against a catalog.
type Planner struct {
	Cat  *catalog.Catalog
	Opts Options
}

// New returns a planner with the given options.
func New(cat *catalog.Catalog, opts Options) *Planner {
	return &Planner{Cat: cat, Opts: opts}
}

// PlanSelect plans any select statement (core or union).
func (p *Planner) PlanSelect(stmt sqlparser.SelectStatement) (exec.Operator, error) {
	switch s := stmt.(type) {
	case *sqlparser.Select:
		return p.planSelectCore(s)
	case *sqlparser.Union:
		return p.planUnion(s)
	default:
		return nil, fmt.Errorf("plan: unsupported select statement %T", stmt)
	}
}

func (p *Planner) planUnion(u *sqlparser.Union) (exec.Operator, error) {
	left, err := p.PlanSelect(u.Left)
	if err != nil {
		return nil, err
	}
	right, err := p.PlanSelect(u.Right)
	if err != nil {
		return nil, err
	}
	if len(left.Schema().Cols) != len(right.Schema().Cols) {
		return nil, fmt.Errorf("UNION inputs have different arity (%d vs %d)",
			len(left.Schema().Cols), len(right.Schema().Cols))
	}
	var op exec.Operator = &exec.UnionAll{Inputs: []exec.Operator{left, right}}
	if !u.All {
		op = &exec.Distinct{Input: op}
	}
	if len(u.OrderBy) > 0 {
		keys, err := p.compileOrderBy(u.OrderBy, op.Schema())
		if err != nil {
			return nil, err
		}
		op = &exec.Sort{Input: op, Keys: keys, NoVectorize: p.Opts.DisableVectorized, Ctx: p.Opts.Ctx, Spill: p.Opts.Spill}
	}
	return p.applyLimit(op, u.Limit)
}

func (p *Planner) compileOrderBy(items []sqlparser.OrderItem, schema *expr.Schema) ([]exec.SortKey, error) {
	keys := make([]exec.SortKey, len(items))
	for i, it := range items {
		e, err := expr.Compile(it.Expr, schema)
		if err != nil {
			return nil, err
		}
		keys[i] = exec.SortKey{Expr: e, Desc: it.Desc, Nulls: nullsPlacement(it.Nulls)}
	}
	return keys, nil
}

// nullsPlacement maps the parser's NULLS FIRST/LAST clause onto the
// executor's knob; absent means the direction default.
func nullsPlacement(n sqlparser.NullsOrder) exec.NullsPlacement {
	switch n {
	case sqlparser.NullsFirst:
		return exec.NullsFirst
	case sqlparser.NullsLast:
		return exec.NullsLast
	default:
		return exec.NullsAuto
	}
}

func (p *Planner) applyLimit(op exec.Operator, limit sqlparser.Expr) (exec.Operator, error) {
	if limit == nil {
		return op, nil
	}
	lit, ok := limit.(*sqlparser.Literal)
	if !ok || lit.Val.Typ() != sqltypes.Int || lit.Val.Int() < 0 {
		return nil, fmt.Errorf("LIMIT requires a non-negative integer literal")
	}
	return &exec.Limit{Input: op, N: lit.Val.Int()}, nil
}

// planSelectCore plans one SELECT block:
//
//	FROM+WHERE → [HashAggregate → HAVING] → [Window…] → Sort → Project
//	→ [Distinct] → Limit
//
// The sort runs against the pre-projection schema (extended with synthetic
// aggregate/window columns), so ORDER BY may reference input columns that
// the projection drops; bare aliases are substituted first.
func (p *Planner) planSelectCore(sel *sqlparser.Select) (exec.Operator, error) {
	// ---- FROM + WHERE ----
	var op exec.Operator
	var err error
	if sel.From == nil {
		op = exec.NewValues(expr.NewSchema(), []sqltypes.Row{{}})
		if sel.Where != nil {
			return nil, fmt.Errorf("WHERE without FROM is not supported")
		}
	} else {
		op, err = p.planFrom(sel.From, splitAnd(sel.Where))
		if err != nil {
			return nil, err
		}
	}

	// ---- expand stars ----
	items, err := expandStars(sel.Items, op.Schema())
	if err != nil {
		return nil, err
	}
	// Remember the pre-rewrite item expressions so ORDER BY can reference a
	// select item by its original text (e.g. ORDER BY day after GROUP BY day
	// rewrote the item to a synthetic group column).
	origItemStrings := make([]string, len(items))
	for i, it := range items {
		origItemStrings[i] = it.Expr.String()
	}

	// ---- aggregation ----
	having := sel.Having
	hasAgg := len(sel.GroupBy) > 0 || containsBareAggregate(having)
	for _, it := range items {
		if containsBareAggregate(it.Expr) {
			hasAgg = true
		}
	}
	if hasAgg {
		op, items, having, err = p.planAggregation(op, sel.GroupBy, items, having)
		if err != nil {
			return nil, err
		}
	}
	if having != nil {
		if !hasAgg {
			return nil, fmt.Errorf("HAVING requires GROUP BY or aggregates")
		}
		pred, err := expr.Compile(having, op.Schema())
		if err != nil {
			return nil, err
		}
		op = &exec.Filter{Input: op, Pred: pred}
	}

	// ---- reporting functions (windows) ----
	hasWindow := false
	for _, it := range items {
		if containsWindow(it.Expr) {
			hasWindow = true
			break
		}
	}
	if hasWindow {
		if !p.Opts.NativeWindow {
			return nil, ErrWindowDisabled
		}
		op, items, err = p.planWindows(op, items)
		if err != nil {
			return nil, err
		}
	}

	// ---- ORDER BY (pre-projection, with alias substitution) ----
	orderBy := make([]sqlparser.OrderItem, len(sel.OrderBy))
	copy(orderBy, sel.OrderBy)
	for i, ob := range orderBy {
		if cr, ok := ob.Expr.(*sqlparser.ColumnRef); ok && cr.Table == "" {
			matched := false
			for _, it := range items {
				if it.Alias != "" && equalFold(it.Alias, cr.Name) {
					orderBy[i].Expr = it.Expr
					matched = true
					break
				}
			}
			if matched {
				continue
			}
		}
		// An ORDER BY expression textually equal to a select item follows
		// that item through the aggregate/window rewrites.
		obText := ob.Expr.String()
		for j, orig := range origItemStrings {
			if obText == orig {
				orderBy[i].Expr = items[j].Expr
				break
			}
		}
	}
	if len(orderBy) > 0 {
		keys, err := p.compileOrderBy(orderBy, op.Schema())
		if err != nil {
			return nil, err
		}
		op = &exec.Sort{Input: op, Keys: keys, NoVectorize: p.Opts.DisableVectorized, Ctx: p.Opts.Ctx, Spill: p.Opts.Spill}
	}

	// ---- projection ----
	exprs := make([]expr.Expr, len(items))
	names := make([]string, len(items))
	for i, it := range items {
		e, err := expr.Compile(it.Expr, op.Schema())
		if err != nil {
			return nil, err
		}
		exprs[i] = e
		names[i] = it.outName(i)
	}
	op = exec.NewProject(op, exprs, names)

	if sel.Distinct {
		op = &exec.Distinct{Input: op}
	}
	return p.applyLimit(op, sel.Limit)
}

// item is a select item with stars expanded.
type item struct {
	Expr  sqlparser.Expr
	Alias string
}

func (it item) outName(i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*sqlparser.ColumnRef); ok {
		return cr.Name
	}
	return fmt.Sprintf("column_%d", i+1)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

func expandStars(items []sqlparser.SelectItem, schema *expr.Schema) ([]item, error) {
	var out []item
	for _, it := range items {
		if !it.Star {
			out = append(out, item{Expr: it.Expr, Alias: it.Alias})
			continue
		}
		matched := false
		for _, c := range schema.Cols {
			if it.Table != "" && !equalFold(c.Table, it.Table) {
				continue
			}
			if c.Name == "" {
				return nil, fmt.Errorf("cannot expand * over unnamed columns")
			}
			out = append(out, item{Expr: &sqlparser.ColumnRef{Table: c.Table, Name: c.Name}})
			matched = true
		}
		if !matched {
			return nil, fmt.Errorf("star expansion %s.* matches no columns", it.Table)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty select list")
	}
	return out, nil
}

// planAggregation lowers GROUP BY + aggregates into a HashAggregate and
// rewrites items/having to reference the aggregate's output columns.
func (p *Planner) planAggregation(input exec.Operator, groupBy []sqlparser.Expr, items []item, having sqlparser.Expr) (exec.Operator, []item, sqlparser.Expr, error) {
	groupExprs := make([]expr.Expr, len(groupBy))
	groupNames := make([]string, len(groupBy))
	for i, g := range groupBy {
		e, err := expr.Compile(g, input.Schema())
		if err != nil {
			return nil, nil, nil, err
		}
		groupExprs[i] = e
		groupNames[i] = fmt.Sprintf("__grp_%d", i)
	}

	// Collect aggregate calls (deduplicated by rendered text) from items and
	// HAVING, including those nested inside window-function arguments.
	var specs []exec.AggSpec
	seen := map[string]string{} // rendered aggregate -> output column name
	collect := func(e sqlparser.Expr) (sqlparser.Expr, error) {
		var compileErr error
		out := rewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
			fn, ok := x.(*sqlparser.FuncExpr)
			if !ok || !expr.AggregateNames[fn.Name] {
				return nil
			}
			key := fn.String()
			if name, ok := seen[key]; ok {
				return &sqlparser.ColumnRef{Name: name}
			}
			name := fmt.Sprintf("__agg_%d", len(specs))
			var arg expr.Expr
			if !fn.Star {
				if len(fn.Args) != 1 {
					compileErr = fmt.Errorf("%s() takes exactly one argument", fn.Name)
					return nil
				}
				var err error
				arg, err = expr.Compile(fn.Args[0], input.Schema())
				if err != nil {
					compileErr = err
					return nil
				}
			}
			specs = append(specs, exec.AggSpec{Name: fn.Name, Arg: arg, OutName: name})
			seen[key] = name
			return &sqlparser.ColumnRef{Name: name}
		})
		return out, compileErr
	}

	// Substitute group-by expressions (textual match) and aggregates.
	substGroup := func(e sqlparser.Expr) sqlparser.Expr {
		return rewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
			for i, g := range groupBy {
				if x.String() == g.String() {
					return &sqlparser.ColumnRef{Name: groupNames[i]}
				}
			}
			return nil
		})
	}

	// Extract aggregates first (their arguments compile against the input
	// schema), then substitute group-by expressions in what remains.
	newItems := make([]item, len(items))
	for i, it := range items {
		rewritten, err := collect(it.Expr)
		if err != nil {
			return nil, nil, nil, err
		}
		newItems[i] = item{Expr: substGroup(rewritten), Alias: it.Alias}
	}
	var newHaving sqlparser.Expr
	if having != nil {
		rewritten, err := collect(having)
		if err != nil {
			return nil, nil, nil, err
		}
		newHaving = substGroup(rewritten)
	}

	agg := exec.NewHashAggregate(input, groupExprs, groupNames, specs)
	return agg, newItems, newHaving, nil
}

// windowGroup is one distinct window spec and the OVER expressions planned
// over it; one Window operator computes every member function.
type windowGroup struct {
	spec     WindowSpec
	astFuncs []*sqlparser.WindowExpr
}

// planWindows extracts window expressions from the items, groups them by
// canonical WindowSpec, and plans the Window operator stack: a single spec
// (or NoSharedSort) uses the classic per-operator sorts; multiple specs go
// through the shared-sort pass, which orders the stream once per
// ordering-compatible spec class instead of once per operator.
func (p *Planner) planWindows(input exec.Operator, items []item) (exec.Operator, []item, error) {
	var groups []*windowGroup
	groupIndex := map[string]*windowGroup{}
	nameOf := map[*sqlparser.WindowExpr]string{}
	counter := 0

	newItems := make([]item, len(items))
	for i, it := range items {
		rewritten := rewriteExpr(it.Expr, func(x sqlparser.Expr) sqlparser.Expr {
			w, ok := x.(*sqlparser.WindowExpr)
			if !ok {
				return nil
			}
			name := fmt.Sprintf("__win_%d", counter)
			counter++
			nameOf[w] = name
			spec := SpecOf(w)
			key := spec.Key()
			g, ok := groupIndex[key]
			if !ok {
				g = &windowGroup{spec: spec}
				groupIndex[key] = g
				groups = append(groups, g)
			}
			g.astFuncs = append(g.astFuncs, w)
			return &sqlparser.ColumnRef{Name: name}
		})
		newItems[i] = item{Expr: rewritten, Alias: it.Alias}
	}

	if len(groups) <= 1 || p.Opts.NoSharedSort {
		op := input
		for _, g := range groups {
			win, err := p.buildWindow(input.Schema(), op, g, nameOf)
			if err != nil {
				return nil, nil, err
			}
			op = win
		}
		return op, newItems, nil
	}
	op, err := p.planWindowsShared(input, groups, nameOf)
	if err != nil {
		return nil, nil, err
	}
	return op, newItems, nil
}

// buildWindow compiles one window group into a Window operator over op.
// Key, partition and argument expressions compile against the pre-window
// input schema — stacked window (and ordinal) columns are appended after it,
// so the indices stay valid on the extended stream.
func (p *Planner) buildWindow(inSchema *expr.Schema, op exec.Operator, g *windowGroup, nameOf map[*sqlparser.WindowExpr]string) (*exec.Window, error) {
	pb := make([]expr.Expr, len(g.spec.Partition))
	for i, k := range g.spec.Partition {
		compiled, err := expr.Compile(k.AST, inSchema)
		if err != nil {
			return nil, err
		}
		pb[i] = compiled
	}
	ob, err := p.compileSpecKeys(g.spec.Order, inSchema)
	if err != nil {
		return nil, err
	}
	funcs := make([]exec.WindowFunc, len(g.astFuncs))
	for i, w := range g.astFuncs {
		if !expr.AggregateNames[w.Func.Name] {
			return nil, fmt.Errorf("unknown reporting function %s()", w.Func.Name)
		}
		var arg expr.Expr
		if !w.Func.Star {
			if len(w.Func.Args) != 1 {
				return nil, fmt.Errorf("%s() OVER takes exactly one argument", w.Func.Name)
			}
			compiled, err := expr.Compile(w.Func.Args[0], inSchema)
			if err != nil {
				return nil, err
			}
			arg = compiled
		}
		frame, err := convertFrame(w.Frame, len(g.spec.Order) > 0)
		if err != nil {
			return nil, err
		}
		funcs[i] = exec.WindowFunc{Name: w.Func.Name, Arg: arg, Frame: frame, OutName: nameOf[w]}
	}
	win := exec.NewWindow(op, pb, ob, funcs)
	win.Parallelism = p.Opts.windowParallelism()
	win.Ctx = p.Opts.Ctx
	win.Stats = p.Opts.WindowStats
	win.NoVectorize = p.Opts.DisableVectorized
	win.Spill = p.Opts.Spill
	return win, nil
}

// compileSpecKeys compiles spec keys into executor sort keys.
func (p *Planner) compileSpecKeys(keys []SpecKey, schema *expr.Schema) ([]exec.SortKey, error) {
	out := make([]exec.SortKey, len(keys))
	for i, k := range keys {
		compiled, err := expr.Compile(k.AST, schema)
		if err != nil {
			return nil, err
		}
		out[i] = exec.SortKey{Expr: compiled, Desc: k.Desc, Nulls: k.execNulls()}
	}
	return out, nil
}

// convertFrame maps the parser's frame clause onto the executor's, applying
// the SQL default when absent.
func convertFrame(f *sqlparser.FrameClause, hasOrder bool) (exec.FrameSpec, error) {
	if f == nil {
		return exec.DefaultFrame(hasOrder), nil
	}
	conv := func(b sqlparser.FrameBound) (exec.FrameBound, error) {
		switch b.Type {
		case sqlparser.UnboundedPreceding:
			return exec.FrameBound{Kind: exec.BoundUnboundedPreceding}, nil
		case sqlparser.OffsetPreceding:
			return exec.FrameBound{Kind: exec.BoundPreceding, Offset: b.Offset}, nil
		case sqlparser.CurrentRow:
			return exec.FrameBound{Kind: exec.BoundCurrentRow}, nil
		case sqlparser.OffsetFollowing:
			return exec.FrameBound{Kind: exec.BoundFollowing, Offset: b.Offset}, nil
		case sqlparser.UnboundedFollowing:
			return exec.FrameBound{Kind: exec.BoundUnboundedFollowing}, nil
		default:
			return exec.FrameBound{}, fmt.Errorf("unknown frame bound")
		}
	}
	start, err := conv(f.Start)
	if err != nil {
		return exec.FrameSpec{}, err
	}
	end, err := conv(f.End)
	if err != nil {
		return exec.FrameSpec{}, err
	}
	return exec.FrameSpec{Start: start, End: end}, nil
}

// OutputNames returns the column names of a planned operator.
func OutputNames(op exec.Operator) []string {
	cols := op.Schema().Cols
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}
