// Command rfgen emits synthetic workloads as SQL scripts that rfsql (or any
// engine embedding) can replay: the uniform sequence table the evaluation
// section uses, and the credit-card warehouse schema of the paper's
// introduction.
//
// Usage:
//
//	rfgen -kind seq -n 5000 [-seed 42] > seq.sql
//	rfgen -kind creditcard -n 10000 [-customers 100] [-locations 20] > cc.sql
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
)

func main() {
	kind := flag.String("kind", "seq", "workload kind: seq or creditcard")
	n := flag.Int("n", 5000, "row count (sequence length or transaction count)")
	seed := flag.Int64("seed", 42, "random seed")
	customers := flag.Int("customers", 100, "creditcard: number of customers")
	locations := flag.Int("locations", 20, "creditcard: number of locations")
	flag.Parse()

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	rng := rand.New(rand.NewSource(*seed))

	switch *kind {
	case "seq":
		fmt.Fprintln(out, "CREATE TABLE seq (pos INTEGER, val INTEGER);")
		fmt.Fprintln(out, "CREATE UNIQUE INDEX seq_pk ON seq (pos);")
		emitChunks(out, *n, 1000, func(i int) string {
			return fmt.Sprintf("(%d, %d)", i, rng.Intn(1000))
		}, "INSERT INTO seq (pos, val) VALUES ")
	case "creditcard":
		fmt.Fprintln(out, "CREATE TABLE c_transactions (c_custid INTEGER, c_locid INTEGER, c_date DATE, c_transaction INTEGER);")
		fmt.Fprintln(out, "CREATE TABLE l_locations (l_locid INTEGER, l_city VARCHAR(30), l_region VARCHAR(30));")
		regions := []string{"Bavaria", "Saxony", "Hesse", "Berlin"}
		cities := []string{"Erlangen", "Dresden", "Frankfurt", "Berlin", "Munich", "Leipzig"}
		emitChunks(out, *locations, 500, func(i int) string {
			return fmt.Sprintf("(%d, '%s', '%s')", i,
				cities[rng.Intn(len(cities))], regions[rng.Intn(len(regions))])
		}, "INSERT INTO l_locations VALUES ")
		emitChunks(out, *n, 500, func(i int) string {
			return fmt.Sprintf("(%d, %d, DATE '2001-%02d-%02d', %d)",
				1+rng.Intn(*customers), 1+rng.Intn(*locations),
				1+rng.Intn(12), 1+rng.Intn(28), 5+rng.Intn(500))
		}, "INSERT INTO c_transactions VALUES ")
	default:
		fmt.Fprintf(os.Stderr, "rfgen: unknown kind %q\n", *kind)
		os.Exit(1)
	}
}

// emitChunks prints INSERT statements of at most chunk rows each.
func emitChunks(out *bufio.Writer, n, chunk int, row func(i int) string, prefix string) {
	for lo := 1; lo <= n; lo += chunk {
		hi := lo + chunk - 1
		if hi > n {
			hi = n
		}
		fmt.Fprint(out, prefix)
		for i := lo; i <= hi; i++ {
			if i > lo {
				fmt.Fprint(out, ", ")
			}
			fmt.Fprint(out, row(i))
		}
		fmt.Fprintln(out, ";")
	}
}
