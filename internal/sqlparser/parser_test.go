package sqlparser

import (
	"strings"
	"testing"

	"rfview/internal/sqltypes"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT pos, val FROM seq WHERE pos > 5")
	sel, ok := stmt.(*Select)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if len(sel.Items) != 2 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	tn, ok := sel.From.(*TableName)
	if !ok || tn.Name != "seq" {
		t.Fatalf("from = %v", sel.From)
	}
	cmp, ok := sel.Where.(*ComparisonExpr)
	if !ok || cmp.Op != ">" {
		t.Fatalf("where = %v", sel.Where)
	}
}

func TestParseSelectStarAndAliases(t *testing.T) {
	sel := mustParse(t, "SELECT *, s.*, val AS v, pos p FROM seq s").(*Select)
	if !sel.Items[0].Star || sel.Items[0].Table != "" {
		t.Error("bare star misparsed")
	}
	if !sel.Items[1].Star || sel.Items[1].Table != "s" {
		t.Error("qualified star misparsed")
	}
	if sel.Items[2].Alias != "v" || sel.Items[3].Alias != "p" {
		t.Error("aliases misparsed")
	}
	tn := sel.From.(*TableName)
	if tn.Alias != "s" || tn.RefName() != "s" {
		t.Error("table alias misparsed")
	}
}

func TestParsePaperIntroQuery(t *testing.T) {
	// The introduction's credit-card query, lightly adapted to the dialect
	// (month() is a scalar function; the join is expressed in the WHERE).
	sql := `
	SELECT c_date, c_transaction,
	  SUM(c_transaction) OVER -- overall cumulative sum
	    ( ORDER BY c_date ROWS UNBOUNDED PRECEDING ) AS cum_sum_total,
	  SUM(c_transaction) OVER
	    ( PARTITION BY month(c_date) ORDER BY c_date
	      ROWS UNBOUNDED PRECEDING ) AS cum_sum_month,
	  AVG(c_transaction) OVER
	    ( PARTITION BY month(c_date), l_region ORDER BY c_date
	      ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS c_3mvg_avg,
	  AVG(c_transaction) OVER
	    ( ORDER BY c_date
	      ROWS BETWEEN CURRENT ROW AND 6 FOLLOWING) AS c_7mvg_avg
	FROM c_transactions, l_locations
	WHERE c_locid = l_locid AND c_custid = 4711`
	sel := mustParse(t, sql).(*Select)
	if len(sel.Items) != 6 {
		t.Fatalf("items = %d, want 6", len(sel.Items))
	}
	w1 := sel.Items[2].Expr.(*WindowExpr)
	if w1.Frame.Start.Type != UnboundedPreceding || w1.Frame.End.Type != CurrentRow {
		t.Errorf("cum_sum_total frame = %v", w1.Frame)
	}
	if len(w1.PartitionBy) != 0 || len(w1.OrderBy) != 1 {
		t.Error("cum_sum_total clauses misparsed")
	}
	w2 := sel.Items[3].Expr.(*WindowExpr)
	if len(w2.PartitionBy) != 1 {
		t.Error("cum_sum_month partition misparsed")
	}
	if fn, ok := w2.PartitionBy[0].(*FuncExpr); !ok || fn.Name != "MONTH" {
		t.Error("month() partition expression misparsed")
	}
	w3 := sel.Items[4].Expr.(*WindowExpr)
	if w3.Frame.Start.Type != OffsetPreceding || w3.Frame.Start.Offset != 1 ||
		w3.Frame.End.Type != OffsetFollowing || w3.Frame.End.Offset != 1 {
		t.Errorf("c_3mvg_avg frame = %v", w3.Frame)
	}
	if len(w3.PartitionBy) != 2 {
		t.Error("c_3mvg_avg partition misparsed")
	}
	w4 := sel.Items[5].Expr.(*WindowExpr)
	if w4.Frame.Start.Type != CurrentRow || w4.Frame.End.Type != OffsetFollowing || w4.Frame.End.Offset != 6 {
		t.Errorf("c_7mvg_avg frame = %v", w4.Frame)
	}
	// The comma join parses as a cross join.
	j, ok := sel.From.(*Join)
	if !ok || j.Type != CrossJoin {
		t.Fatalf("from = %v", sel.From)
	}
}

func TestParseFig2SelfJoinQuery(t *testing.T) {
	// The paper's Fig. 2 sample query.
	sql := `SELECT pos, SUM(val) OVER (ORDER BY pos
	         ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING)
	        FROM seq`
	sel := mustParse(t, sql).(*Select)
	w := sel.Items[1].Expr.(*WindowExpr)
	if w.Func.Name != "SUM" {
		t.Error("window function name misparsed")
	}
	if w.Frame.Start.Offset != 1 || w.Frame.End.Offset != 1 {
		t.Error("frame offsets misparsed")
	}
}

func TestParseJoins(t *testing.T) {
	sel := mustParse(t, `SELECT * FROM a JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = c.y`).(*Select)
	outer, ok := sel.From.(*Join)
	if !ok || outer.Type != LeftOuterJoin {
		t.Fatalf("outer join misparsed: %v", sel.From)
	}
	inner, ok := outer.Left.(*Join)
	if !ok || inner.Type != InnerJoin {
		t.Fatalf("inner join misparsed: %v", outer.Left)
	}
	sel2 := mustParse(t, `SELECT * FROM a CROSS JOIN b`).(*Select)
	if j := sel2.From.(*Join); j.Type != CrossJoin || j.On != nil {
		t.Error("cross join misparsed")
	}
	sel3 := mustParse(t, `SELECT * FROM a INNER JOIN b ON a.x = b.x`).(*Select)
	if j := sel3.From.(*Join); j.Type != InnerJoin {
		t.Error("INNER JOIN misparsed")
	}
}

func TestParseDerivedTable(t *testing.T) {
	sel := mustParse(t, `SELECT v FROM (SELECT val AS v FROM seq) AS d WHERE v > 0`).(*Select)
	d, ok := sel.From.(*DerivedTable)
	if !ok || d.Alias != "d" {
		t.Fatalf("derived table misparsed: %v", sel.From)
	}
	// Alias without AS.
	sel2 := mustParse(t, `SELECT v FROM (SELECT val v FROM seq) d`).(*Select)
	if sel2.From.(*DerivedTable).Alias != "d" {
		t.Error("derived table alias without AS misparsed")
	}
	if _, err := Parse(`SELECT v FROM (SELECT val FROM seq)`); err == nil {
		t.Error("derived table without alias must fail")
	}
}

func TestParseCaseExpr(t *testing.T) {
	e, err := ParseExpr(`CASE WHEN s1.pos = s2.pos THEN s2.val ELSE (-1) * s2.val END`)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := e.(*CaseExpr)
	if !ok || len(c.Whens) != 1 || c.Else == nil {
		t.Fatalf("case misparsed: %v", e)
	}
	// Multiple arms, no else.
	e2, err := ParseExpr(`CASE WHEN a = 1 THEN 'x' WHEN a = 2 THEN 'y' END`)
	if err != nil {
		t.Fatal(err)
	}
	if c := e2.(*CaseExpr); len(c.Whens) != 2 || c.Else != nil {
		t.Error("multi-arm case misparsed")
	}
	if _, err := ParseExpr(`CASE END`); err == nil {
		t.Error("CASE without WHEN must fail")
	}
}

func TestParsePredicates(t *testing.T) {
	e, err := ParseExpr(`s1.pos IN (s2.pos - 1, s2.pos, s2.pos + 1)`)
	if err != nil {
		t.Fatal(err)
	}
	in := e.(*InExpr)
	if len(in.List) != 3 || in.Negated {
		t.Fatalf("IN misparsed: %v", e)
	}
	e, _ = ParseExpr(`x NOT IN (1, 2)`)
	if !e.(*InExpr).Negated {
		t.Error("NOT IN misparsed")
	}
	e, _ = ParseExpr(`x BETWEEN 1 AND 10`)
	if b := e.(*BetweenExpr); b.Negated {
		t.Error("BETWEEN misparsed")
	}
	e, _ = ParseExpr(`x NOT BETWEEN 1 AND 10`)
	if !e.(*BetweenExpr).Negated {
		t.Error("NOT BETWEEN misparsed")
	}
	e, _ = ParseExpr(`x IS NULL`)
	if e.(*IsNullExpr).Negated {
		t.Error("IS NULL misparsed")
	}
	e, _ = ParseExpr(`x IS NOT NULL`)
	if !e.(*IsNullExpr).Negated {
		t.Error("IS NOT NULL misparsed")
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr(`a + b * c`)
	if err != nil {
		t.Fatal(err)
	}
	add := e.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top op = %s", add.Op)
	}
	if mul := add.Right.(*BinaryExpr); mul.Op != "*" {
		t.Error("* must bind tighter than +")
	}
	// AND binds tighter than OR; NOT tighter than AND.
	e, _ = ParseExpr(`a = 1 OR b = 2 AND c = 3`)
	if _, ok := e.(*OrExpr); !ok {
		t.Error("OR must be top-level")
	}
	e, _ = ParseExpr(`NOT a = 1 AND b = 2`)
	and, ok := e.(*AndExpr)
	if !ok {
		t.Fatal("AND must be top-level")
	}
	if _, ok := and.Left.(*NotExpr); !ok {
		t.Error("NOT must bind tighter than AND")
	}
	// Parenthesized grouping.
	e, _ = ParseExpr(`(a + b) * c`)
	if mul := e.(*BinaryExpr); mul.Op != "*" {
		t.Error("parenthesized grouping lost")
	}
	// Unary minus.
	e, _ = ParseExpr(`-x + 1`)
	if add := e.(*BinaryExpr); add.Op != "+" {
		t.Error("unary minus precedence wrong")
	} else if _, ok := add.Left.(*UnaryExpr); !ok {
		t.Error("unary minus lost")
	}
}

func TestParseLiterals(t *testing.T) {
	cases := map[string]sqltypes.Type{
		`42`:                sqltypes.Int,
		`4.5`:               sqltypes.Float,
		`1e3`:               sqltypes.Float,
		`'it''s'`:           sqltypes.String,
		`NULL`:              sqltypes.Null,
		`TRUE`:              sqltypes.Bool,
		`FALSE`:             sqltypes.Bool,
		`DATE '2002-02-26'`: sqltypes.Date,
	}
	for sql, typ := range cases {
		e, err := ParseExpr(sql)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", sql, err)
		}
		lit, ok := e.(*Literal)
		if !ok || lit.Val.Typ() != typ {
			t.Errorf("ParseExpr(%q) = %v (type %v), want type %v", sql, e, lit.Val.Typ(), typ)
		}
	}
	if e, _ := ParseExpr(`'it''s'`); e.(*Literal).Val.Str() != "it's" {
		t.Error("quote escape mishandled")
	}
}

func TestParseFunctions(t *testing.T) {
	e, err := ParseExpr(`MOD(s1.pos, 4)`)
	if err != nil {
		t.Fatal(err)
	}
	fn := e.(*FuncExpr)
	if fn.Name != "MOD" || len(fn.Args) != 2 {
		t.Fatalf("MOD misparsed: %v", e)
	}
	e, _ = ParseExpr(`COUNT(*)`)
	if fn := e.(*FuncExpr); !fn.Star || fn.Name != "COUNT" {
		t.Error("COUNT(*) misparsed")
	}
	e, _ = ParseExpr(`COALESCE(val, 0)`)
	if fn := e.(*FuncExpr); fn.Name != "COALESCE" || len(fn.Args) != 2 {
		t.Error("COALESCE misparsed")
	}
}

func TestParseUnion(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t1 UNION ALL SELECT a FROM t2 UNION SELECT a FROM t3 ORDER BY a LIMIT 10`)
	u, ok := stmt.(*Union)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if u.All {
		t.Error("outer union must be distinct")
	}
	if len(u.OrderBy) != 1 || u.Limit == nil {
		t.Error("union ORDER BY / LIMIT lost")
	}
	inner, ok := u.Left.(*Union)
	if !ok || !inner.All {
		t.Error("left-associative union chain misparsed")
	}
}

func TestParseGroupByHavingOrderLimit(t *testing.T) {
	sel := mustParse(t, `SELECT a, SUM(b) FROM t GROUP BY a HAVING SUM(b) > 10 ORDER BY a DESC, b ASC LIMIT 5`).(*Select)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("GROUP BY / HAVING misparsed")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Error("ORDER BY misparsed")
	}
	if sel.Limit == nil {
		t.Error("LIMIT lost")
	}
}

func TestParseDDL(t *testing.T) {
	ct := mustParse(t, `CREATE TABLE seq (pos INTEGER, val FLOAT, name VARCHAR(30), d DATE, ok BOOLEAN)`).(*CreateTable)
	if ct.Name != "seq" || len(ct.Columns) != 5 {
		t.Fatalf("create table misparsed: %+v", ct)
	}
	wantTypes := []sqltypes.Type{sqltypes.Int, sqltypes.Float, sqltypes.String, sqltypes.Date, sqltypes.Bool}
	for i, w := range wantTypes {
		if ct.Columns[i].Type != w {
			t.Errorf("column %d type = %v, want %v", i, ct.Columns[i].Type, w)
		}
	}
	ci := mustParse(t, `CREATE UNIQUE INDEX seq_pk ON seq (pos)`).(*CreateIndex)
	if !ci.Unique || ci.Table != "seq" || len(ci.Columns) != 1 {
		t.Fatalf("create index misparsed: %+v", ci)
	}
	cv := mustParse(t, `CREATE MATERIALIZED VIEW matseq AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`).(*CreateMatView)
	if cv.Name != "matseq" {
		t.Fatalf("create view misparsed: %+v", cv)
	}
	if _, ok := mustParse(t, `DROP TABLE seq`).(*DropTable); !ok {
		t.Error("drop table misparsed")
	}
	if _, ok := mustParse(t, `DROP MATERIALIZED VIEW matseq`).(*DropMatView); !ok {
		t.Error("drop view misparsed")
	}
	di := mustParse(t, `DROP INDEX seq_pk ON seq`).(*DropIndex)
	if di.Name != "seq_pk" || di.Table != "seq" {
		t.Error("drop index misparsed")
	}
	rv := mustParse(t, `REFRESH MATERIALIZED VIEW matseq`).(*RefreshMatView)
	if rv.Name != "matseq" {
		t.Error("refresh misparsed")
	}
}

func TestParseDML(t *testing.T) {
	ins := mustParse(t, `INSERT INTO seq (pos, val) VALUES (1, 10), (2, 20)`).(*Insert)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("insert misparsed: %+v", ins)
	}
	ins2 := mustParse(t, `INSERT INTO seq SELECT pos, val FROM other`).(*Insert)
	if ins2.Select == nil {
		t.Error("INSERT…SELECT misparsed")
	}
	upd := mustParse(t, `UPDATE seq SET val = val + 1, pos = 2 WHERE pos = 1`).(*Update)
	if len(upd.Set) != 2 || upd.Where == nil {
		t.Fatalf("update misparsed: %+v", upd)
	}
	del := mustParse(t, `DELETE FROM seq WHERE pos = 3`).(*Delete)
	if del.Where == nil {
		t.Error("delete misparsed")
	}
	del2 := mustParse(t, `DELETE FROM seq`).(*Delete)
	if del2.Where != nil {
		t.Error("unfiltered delete misparsed")
	}
}

func TestParseExplain(t *testing.T) {
	ex := mustParse(t, `EXPLAIN SELECT * FROM t`).(*Explain)
	if _, ok := ex.Stmt.(*Select); !ok {
		t.Error("explain misparsed")
	}
}

func TestParseMultipleStatements(t *testing.T) {
	stmts, err := ParseAll(`CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseComments(t *testing.T) {
	sel := mustParse(t, `SELECT a -- trailing comment
	  /* block
	     comment */
	FROM t`).(*Select)
	if len(sel.Items) != 1 {
		t.Error("comments broke parsing")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT FROM t`,
		`SELECT * FROM`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM t GROUP`,
		`CREATE`,
		`CREATE TABLE`,
		`CREATE TABLE t ()`,
		`CREATE TABLE t (a NOTATYPE)`,
		`CREATE UNIQUE TABLE t (a INT)`,
		`INSERT INTO`,
		`INSERT INTO t VALUES`,
		`UPDATE t`,
		`DELETE t`,
		`SELECT 'unterminated FROM t`,
		`SELECT a FROM t WHERE a NOT 5`,
		`SELECT a ~ b FROM t`,
		`SELECT SUM(v) OVER (ROWS BETWEEN 1 WRONG AND CURRENT ROW) FROM t`,
		`SELECT SUM(v) OVER (ROWS BETWEEN UNBOUNDED AND CURRENT ROW) FROM t`,
		`SELECT a FROM t; garbage`,
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("SELECT a\nFROM t WHERE ~")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should carry line info: %v", err)
	}
}

// Round-trip: parse, render with String(), reparse; the two ASTs must render
// identically. This keeps the printer (used by the rewriter's golden tests)
// honest.
func TestStringRoundTrip(t *testing.T) {
	queries := []string{
		`SELECT pos, val FROM seq WHERE pos > 5`,
		`SELECT s1.pos, SUM(CASE WHEN s1.pos = s2.pos THEN s2.val ELSE ((-1) * s2.val) END) AS val FROM matseq s1, matseq s2 WHERE s1.pos IN (s2.pos - 1, s2.pos) GROUP BY s1.pos`,
		`SELECT a FROM t1 UNION ALL SELECT a FROM t2`,
		`SELECT pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM seq`,
		`SELECT s.pos, s.val + COALESCE(d.val, 0) AS val FROM matseq s LEFT OUTER JOIN (SELECT pos, val FROM matseq) AS d ON s.pos = d.pos`,
		`INSERT INTO t (a) VALUES (1), (2)`,
		`UPDATE t SET a = a + 1 WHERE a < 3`,
		`DELETE FROM t WHERE a IS NOT NULL`,
		`CREATE TABLE t (a INTEGER, b FLOAT)`,
		`SELECT a FROM t ORDER BY a DESC LIMIT 3`,
		`SELECT COUNT(*) FROM t HAVING COUNT(*) > 1`,
		`SELECT a FROM t WHERE a BETWEEN 1 AND 2 OR NOT a = 5`,
	}
	for _, sql := range queries {
		s1 := mustParse(t, sql)
		s2 := mustParse(t, s1.String())
		if s1.String() != s2.String() {
			t.Errorf("round trip diverged:\n  first:  %s\n  second: %s", s1, s2)
		}
	}
}

func TestWalkExpr(t *testing.T) {
	e, err := ParseExpr(`CASE WHEN a = 1 THEN SUM(b) OVER (ORDER BY c ROWS 1 PRECEDING) ELSE COALESCE(d, -e) END`)
	if err != nil {
		t.Fatal(err)
	}
	var cols []string
	WalkExpr(e, func(x Expr) bool {
		if c, ok := x.(*ColumnRef); ok {
			cols = append(cols, c.Name)
		}
		return true
	})
	if len(cols) != 5 { // a, b, c, d, e
		t.Fatalf("WalkExpr found columns %v, want 5", cols)
	}
	// Early stop: don't descend into CASE.
	count := 0
	WalkExpr(e, func(x Expr) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early-stopped walk visited %d nodes", count)
	}
}

func TestParseNullsOrder(t *testing.T) {
	cases := []struct {
		sql  string
		want []NullsOrder
		desc []bool
	}{
		{`SELECT v FROM t ORDER BY a`, []NullsOrder{NullsDefault}, []bool{false}},
		{`SELECT v FROM t ORDER BY a NULLS FIRST`, []NullsOrder{NullsFirst}, []bool{false}},
		{`SELECT v FROM t ORDER BY a NULLS LAST`, []NullsOrder{NullsLast}, []bool{false}},
		{`SELECT v FROM t ORDER BY a DESC NULLS FIRST`, []NullsOrder{NullsFirst}, []bool{true}},
		{`SELECT v FROM t ORDER BY a ASC NULLS LAST, b DESC`, []NullsOrder{NullsLast, NullsDefault}, []bool{false, true}},
	}
	for _, tc := range cases {
		sel := mustParse(t, tc.sql).(*Select)
		if len(sel.OrderBy) != len(tc.want) {
			t.Fatalf("%q: %d order keys, want %d", tc.sql, len(sel.OrderBy), len(tc.want))
		}
		for i, it := range sel.OrderBy {
			if it.Nulls != tc.want[i] || it.Desc != tc.desc[i] {
				t.Errorf("%q key %d: Nulls=%v Desc=%v, want %v/%v",
					tc.sql, i, it.Nulls, it.Desc, tc.want[i], tc.desc[i])
			}
		}
	}
}

func TestParseNullsOrderInOverClause(t *testing.T) {
	sel := mustParse(t,
		`SELECT SUM(v) OVER (PARTITION BY g ORDER BY a DESC NULLS FIRST, b NULLS LAST) FROM t`).(*Select)
	w, ok := sel.Items[0].Expr.(*WindowExpr)
	if !ok {
		t.Fatalf("item is %T", sel.Items[0].Expr)
	}
	if len(w.OrderBy) != 2 {
		t.Fatalf("%d order keys", len(w.OrderBy))
	}
	if w.OrderBy[0].Nulls != NullsFirst || !w.OrderBy[0].Desc {
		t.Errorf("key 0 = %+v, want DESC NULLS FIRST", w.OrderBy[0])
	}
	if w.OrderBy[1].Nulls != NullsLast || w.OrderBy[1].Desc {
		t.Errorf("key 1 = %+v, want ASC NULLS LAST", w.OrderBy[1])
	}
}

func TestParseNullsOrderErrors(t *testing.T) {
	for _, sql := range []string{
		`SELECT v FROM t ORDER BY a NULLS`,
		`SELECT v FROM t ORDER BY a NULLS MAYBE`,
		`SELECT SUM(v) OVER (ORDER BY a NULLS) FROM t`,
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestNullsOrderStringFixedPoint(t *testing.T) {
	// String() must be a rendering fixed point for every NULLS spelling —
	// the plan cache keys on rendered text.
	for _, sql := range []string{
		`SELECT v FROM t ORDER BY a NULLS LAST`,
		`SELECT v FROM t ORDER BY a DESC NULLS FIRST`,
		`SELECT SUM(v) OVER (PARTITION BY g ORDER BY a NULLS LAST, b DESC NULLS FIRST) AS w FROM t`,
	} {
		first := mustParse(t, sql).String()
		second := mustParse(t, first).String()
		if first != second {
			t.Errorf("not a fixed point:\nfirst:  %q\nsecond: %q", first, second)
		}
	}
}
