// Package server exposes an engine over TCP as a concurrent query service.
//
// The protocol is newline-delimited JSON: the client writes one request
// object per line, the server answers with one response object per line, in
// order. One goroutine serves each connection; reads run lock-free against
// MVCC snapshots, so SELECTs from many connections proceed even while a
// writer's transaction is open, and DML from different connections
// serializes only at commit.
//
// Each connection owns an engine session, so transactions work over the
// wire: send BEGIN / COMMIT / ROLLBACK as ordinary "exec" statements.
// Statements between BEGIN and COMMIT read at the transaction's snapshot and
// stay invisible to other connections until COMMIT. A write-write conflict
// answers with code "conflict" and the transaction is already rolled back; a
// dropped connection rolls back its open transaction.
//
// Operations:
//
//	ping     liveness check; echoes the session id
//	query    execute a statement, return columns + rows
//	exec     execute a statement, return the affected count
//	explain  plan a read statement, return the plan text
//	stats    server and session counters, plan cache stats, parallelism
//	metrics  Prometheus text exposition of the engine's registry
//
// Failed requests carry a stable machine-readable "code" field (see
// rfview/errors) alongside the human-readable "error" text; clients map the
// code back onto the same error sentinels the embedded engine returns. A
// request may set "timeout_ms" to bound its execution; statements that
// exceed it abort with code "cancelled".
//
// Example session:
//
//	→ {"id":1,"op":"query","sql":"SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS s FROM seq"}
//	← {"id":1,"ok":true,"columns":["pos","s"],"rows":[[1,9],[2,14]],"affected":2}
//	→ {"id":2,"op":"exec","sql":"BEGIN"}
//	← {"id":2,"ok":true}
//	→ {"id":3,"op":"exec","sql":"UPDATE seq SET val = 9 WHERE pos = 1"}
//	← {"id":3,"ok":true,"affected":1}
//	→ {"id":4,"op":"exec","sql":"COMMIT"}
//	← {"id":4,"ok":true}
package server

import (
	"fmt"

	"rfview/internal/sqltypes"
)

// Request is one client→server message.
type Request struct {
	// ID is echoed verbatim in the response so clients can match replies.
	ID uint64 `json:"id"`
	// Op is one of "ping", "query", "exec", "explain", "stats", "metrics".
	Op string `json:"op"`
	// SQL is the statement text (unused for ping/stats/metrics).
	SQL string `json:"sql,omitempty"`
	// TimeoutMs, when positive, cancels the statement after this many
	// milliseconds; the response then carries code "cancelled".
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Analyze asks query/explain ops for the instrumented plan (per-operator
	// rows and timings) in the response's "plan" field.
	Analyze bool `json:"analyze,omitempty"`
}

// Response is one server→client message.
type Response struct {
	ID    uint64 `json:"id"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Code is the stable machine-readable error classification (see
	// rfview/errors.Code); empty on success.
	Code    string `json:"code,omitempty"`
	Session uint64 `json:"session,omitempty"`

	Columns  []string `json:"columns,omitempty"`
	Rows     [][]any  `json:"rows,omitempty"`
	Affected int      `json:"affected,omitempty"`
	Plan     string   `json:"plan,omitempty"`
	// Rewritten carries the derivation/self-join SQL when a rewrite fired.
	Rewritten string `json:"rewritten,omitempty"`
	// ElapsedUs is the server-side execution time in microseconds.
	ElapsedUs int64 `json:"elapsed_us,omitempty"`
	// Stats carries the answer to a "stats" request.
	Stats *StatsReply `json:"stats,omitempty"`
	// Metrics carries the Prometheus text exposition for a "metrics" request.
	Metrics string `json:"metrics,omitempty"`
}

// StatsReply is the payload of a "stats" response: server-wide counters,
// the asking session's counters, and the engine's cache and parallelism
// configuration.
type StatsReply struct {
	// UptimeSec is seconds since the server was created.
	UptimeSec int64 `json:"uptime_sec"`
	// Accepted counts connections over the server's lifetime; ActiveSessions
	// counts connections open right now.
	Accepted       uint64 `json:"accepted"`
	ActiveSessions int    `json:"active_sessions"`
	// Requests and Errors are server-wide request counters.
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`

	// SessionID identifies the asking connection; SessionQueries and
	// SessionExecs split its statement traffic by op. SessionInTxn reports
	// whether the asking connection has a transaction open.
	SessionID      uint64 `json:"session_id"`
	SessionQueries uint64 `json:"session_queries"`
	SessionExecs   uint64 `json:"session_execs"`
	SessionInTxn   bool   `json:"session_in_txn"`

	// PlanCache mirrors the engine's combined plan/result cache counters.
	PlanCache CacheStats `json:"plan_cache"`

	// WindowParallelism is the resolved partition-worker count the window
	// operator uses (GOMAXPROCS substituted for the ≤0 "auto" setting).
	WindowParallelism int `json:"window_parallelism"`

	// Spill mirrors the engine's out-of-core execution counters, so wire
	// clients (rfload -mem-budget) can confirm the spill path actually ran.
	Spill SpillStats `json:"spill"`

	// BufferPool mirrors the paged-storage buffer pool, so wire clients can
	// watch residency and hit ratios of the heap page cache.
	BufferPool BufferPoolStats `json:"buffer_pool"`

	// Maintenance mirrors the engine's view-maintenance counters, so wire
	// clients can confirm the delta path (rather than full REFRESH) ran.
	Maintenance MaintenanceStats `json:"maintenance"`

	// Txn mirrors the engine's transaction counters, so wire clients can
	// watch commit/conflict rates under concurrent load.
	Txn TxnStats `json:"txn"`
}

// TxnStats is the wire form of the engine's transaction counters.
type TxnStats struct {
	// Begins counts transactions started (explicit BEGIN and auto-commit
	// statements alike); Commits and Rollbacks split how they ended.
	Begins    int64 `json:"begins"`
	Commits   int64 `json:"commits"`
	Rollbacks int64 `json:"rollbacks"`
	// ConflictAborts counts rollbacks forced by first-committer-wins
	// write-write conflict detection (a subset of Rollbacks).
	ConflictAborts int64 `json:"conflict_aborts"`
}

// MaintenanceStats is the wire form of the engine's view-maintenance
// counters.
type MaintenanceStats struct {
	// Mode is the configured maintenance mode: eager, deferred, or off.
	Mode string `json:"mode"`
	// DeltaApplied counts DML deltas folded into views incrementally;
	// FullRefreshes counts full REFRESH recomputes of sequence views.
	DeltaApplied  int64 `json:"delta_applied"`
	FullRefreshes int64 `json:"full_refreshes"`
	// Pending is the number of deferred deltas currently queued.
	Pending int64 `json:"pending"`
}

// SpillStats is the wire form of the engine's spill counters.
type SpillStats struct {
	// BudgetBytes is the configured executor memory budget (0 = unlimited);
	// BudgetUsedBytes is the memory currently charged against it.
	BudgetBytes     int64 `json:"budget_bytes"`
	BudgetUsedBytes int64 `json:"budget_used_bytes"`
	// Runs counts run files flushed to disk, RunBytes the bytes written to
	// them, Merges the merge passes, and Operators the operator executions
	// that spilled at least once.
	Runs      int64 `json:"runs"`
	RunBytes  int64 `json:"run_bytes"`
	Merges    int64 `json:"merges"`
	Operators int64 `json:"operators"`
}

// BufferPoolStats is the wire form of the paged-storage buffer pool. All
// zeros (PageSize 0) means paged storage is disabled.
type BufferPoolStats struct {
	// PageSize is the heap page size in bytes.
	PageSize int `json:"page_size"`
	// PagesCached / PagesPinned / PagesDirty describe current residency.
	PagesCached int64 `json:"pages_cached"`
	PagesPinned int64 `json:"pages_pinned"`
	PagesDirty  int64 `json:"pages_dirty"`
	// Hits/Misses count page pins served from / loaded into the pool;
	// HitRatio is their ratio (1.0 on an untouched pool). Evictions counts
	// victim pages dropped; Writebacks counts dirty pages written to disk.
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	Evictions  int64   `json:"evictions"`
	Writebacks int64   `json:"writebacks"`
	HitRatio   float64 `json:"hit_ratio"`
}

// CacheStats is the wire form of the engine's plan/result cache counters.
type CacheStats struct {
	Len           int    `json:"len"`
	Capacity      int    `json:"capacity"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
}

// rowsToJSON converts engine rows into JSON-friendly values: INTEGER →
// number, FLOAT → number, STRING → string, BOOL → bool, DATE → "YYYY-MM-DD",
// NULL → null.
func rowsToJSON(rows []sqltypes.Row) [][]any {
	if rows == nil {
		return nil
	}
	out := make([][]any, len(rows))
	for i, r := range rows {
		jr := make([]any, len(r))
		for j, d := range r {
			jr[j] = datumToJSON(d)
		}
		out[i] = jr
	}
	return out
}

func datumToJSON(d sqltypes.Datum) any {
	switch d.Typ() {
	case sqltypes.Null:
		return nil
	case sqltypes.Int:
		return d.Int()
	case sqltypes.Float:
		return d.Float()
	case sqltypes.Bool:
		return d.Bool()
	case sqltypes.String:
		return d.Str()
	default:
		// Dates (and any future type) render through the SQL formatter.
		return fmt.Sprintf("%v", d)
	}
}
