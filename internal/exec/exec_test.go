package exec

import (
	"math/rand"
	"testing"

	"rfview/internal/catalog"
	"rfview/internal/expr"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
)

func intRow(vals ...int64) sqltypes.Row {
	r := make(sqltypes.Row, len(vals))
	for i, v := range vals {
		r[i] = sqltypes.NewInt(v)
	}
	return r
}

func schema2(t1, c1, t2, c2 string) *expr.Schema {
	return expr.NewSchema(
		expr.ColInfo{Table: t1, Name: c1, Type: sqltypes.Int},
		expr.ColInfo{Table: t2, Name: c2, Type: sqltypes.Int},
	)
}

func valuesOp(schema *expr.Schema, rows ...sqltypes.Row) *Values {
	return NewValues(schema, rows)
}

func newCatalogTable(t *testing.T, rows ...sqltypes.Row) *catalog.Table {
	t.Helper()
	cat := catalog.New()
	tbl, err := cat.CreateTable("t", []catalog.Column{
		{Name: "a", Type: sqltypes.Int}, {Name: "b", Type: sqltypes.Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if _, err := tbl.Heap.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestScanAndFilter(t *testing.T) {
	tbl := newCatalogTable(t, intRow(1, 10), intRow(2, 20), intRow(3, 30))
	scan := NewScan(tbl, "t")
	rows, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("scan rows = %d", len(rows))
	}
	// Filter a > 1.
	pred, err := expr.Compile(mustExpr(t, "a > 1"), scan.Schema())
	if err != nil {
		t.Fatal(err)
	}
	rows, err = Collect(&Filter{Input: NewScan(tbl, "t"), Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("filtered rows = %d", len(rows))
	}
}

func TestProjectAndLimit(t *testing.T) {
	tbl := newCatalogTable(t, intRow(1, 10), intRow(2, 20), intRow(3, 30))
	scan := NewScan(tbl, "t")
	e, _ := expr.Compile(mustExpr(t, "a + b"), scan.Schema())
	proj := NewProject(scan, []expr.Expr{e}, []string{"s"})
	rows, err := Collect(&Limit{Input: proj, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1][0].Int() != 22 {
		t.Fatalf("rows = %v", rows)
	}
	if proj.Schema().Cols[0].Name != "s" {
		t.Fatalf("schema = %v", proj.Schema().Cols)
	}
}

func TestNestedLoopJoinKinds(t *testing.T) {
	left := valuesOp(expr.NewSchema(expr.ColInfo{Table: "l", Name: "x", Type: sqltypes.Int}),
		intRow(1), intRow(2), intRow(3))
	right := valuesOp(expr.NewSchema(expr.ColInfo{Table: "r", Name: "y", Type: sqltypes.Int}),
		intRow(2), intRow(3), intRow(4))
	pred, err := expr.Compile(mustExpr(t, "x = y"), schema2("l", "x", "r", "y"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(NewNestedLoopJoin(left, right, JoinInner, pred))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("inner rows = %v", rows)
	}
	left2 := valuesOp(left.Schema(), intRow(1), intRow(2), intRow(3))
	right2 := valuesOp(right.Schema(), intRow(2), intRow(3), intRow(4))
	rows, err = Collect(NewNestedLoopJoin(left2, right2, JoinLeftOuter, pred))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("louter rows = %v", rows)
	}
	foundNull := false
	for _, r := range rows {
		if r[1].IsNull() {
			foundNull = true
		}
	}
	if !foundNull {
		t.Fatal("unmatched left row must produce NULLs")
	}
	// Cross join (nil predicate).
	left3 := valuesOp(left.Schema(), intRow(1), intRow(2))
	right3 := valuesOp(right.Schema(), intRow(5), intRow(6), intRow(7))
	rows, err = Collect(NewNestedLoopJoin(left3, right3, JoinInner, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("cross rows = %d", len(rows))
	}
}

func TestHashJoin(t *testing.T) {
	lschema := expr.NewSchema(expr.ColInfo{Table: "l", Name: "x", Type: sqltypes.Int})
	rschema := expr.NewSchema(expr.ColInfo{Table: "r", Name: "y", Type: sqltypes.Int})
	left := valuesOp(lschema, intRow(1), intRow(2), intRow(2), intRow(9))
	right := valuesOp(rschema, intRow(2), intRow(2), intRow(3))
	lk, _ := expr.Compile(mustExpr(t, "x"), lschema)
	rk, _ := expr.Compile(mustExpr(t, "y"), rschema)
	rows, err := Collect(NewHashJoin(left, right, []expr.Expr{lk}, []expr.Expr{rk}, nil, JoinInner))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2x2 matches
		t.Fatalf("hash inner rows = %v", rows)
	}
	left2 := valuesOp(lschema, intRow(1), intRow(2))
	right2 := valuesOp(rschema, intRow(2), intRow(3))
	rows, err = Collect(NewHashJoin(left2, right2, []expr.Expr{lk}, []expr.Expr{rk}, nil, JoinLeftOuter))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("hash louter rows = %v", rows)
	}
	// NULL keys never match but survive left outer.
	left3 := valuesOp(lschema, sqltypes.Row{sqltypes.NullDatum})
	right3 := valuesOp(rschema, sqltypes.Row{sqltypes.NullDatum})
	rows, err = Collect(NewHashJoin(left3, right3, []expr.Expr{lk}, []expr.Expr{rk}, nil, JoinLeftOuter))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0][1].IsNull() {
		t.Fatalf("NULL-key louter rows = %v", rows)
	}
}

func TestIndexNestedLoopJoin(t *testing.T) {
	tbl := newCatalogTable(t, intRow(1, 10), intRow(2, 20), intRow(3, 30), intRow(4, 40))
	if _, err := tbl.Heap.AddIndex("pk", []int{0}, true, true); err != nil {
		t.Fatal(err)
	}
	handle := tbl.Heap.IndexOn([]int{0})
	outerSchema := expr.NewSchema(expr.ColInfo{Table: "o", Name: "k", Type: sqltypes.Int})
	outer := valuesOp(outerSchema, intRow(2), intRow(4), intRow(9))
	key, _ := expr.Compile(mustExpr(t, "k"), outerSchema)
	join := NewIndexNestedLoopJoin(outer, tbl, "t", handle, []expr.Expr{key}, nil, JoinInner, true)
	rows, err := Collect(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("inlj rows = %v", rows)
	}
	// Multiple probe keys (IN-list style): k-1 and k+1.
	outer2 := valuesOp(outerSchema, intRow(2))
	k1, _ := expr.Compile(mustExpr(t, "k - 1"), outerSchema)
	k2, _ := expr.Compile(mustExpr(t, "k + 1"), outerSchema)
	join2 := NewIndexNestedLoopJoin(outer2, tbl, "t", handle, []expr.Expr{k1, k2}, nil, JoinInner, true)
	rows, err = Collect(join2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("multi-probe rows = %v", rows)
	}
	// Left outer keeps unmatched outer rows.
	outer3 := valuesOp(outerSchema, intRow(99))
	join3 := NewIndexNestedLoopJoin(outer3, tbl, "t", handle, []expr.Expr{key}, nil, JoinLeftOuter, true)
	rows, err = Collect(join3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0][1].IsNull() {
		t.Fatalf("louter rows = %v", rows)
	}
	// Swapped emission order: probed columns first.
	outer4 := valuesOp(outerSchema, intRow(3))
	join4 := NewIndexNestedLoopJoin(outer4, tbl, "t", handle, []expr.Expr{key}, nil, JoinInner, false)
	rows, err = Collect(join4)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() != 3 || rows[0][1].Int() != 30 || rows[0][2].Int() != 3 {
		t.Fatalf("swapped row = %v", rows[0])
	}
	if join4.Schema().Cols[0].Table != "t" {
		t.Fatalf("swapped schema = %v", join4.Schema().Cols)
	}
}

func TestSortOperator(t *testing.T) {
	schema := expr.NewSchema(expr.ColInfo{Name: "a", Type: sqltypes.Int})
	input := valuesOp(schema, intRow(3), intRow(1), intRow(2), sqltypes.Row{sqltypes.NullDatum})
	key, _ := expr.Compile(mustExpr(t, "a"), schema)
	rows, err := Collect(&Sort{Input: valuesOp(schema, input.Rows...), Keys: []SortKey{{Expr: key}}})
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0][0].IsNull() || rows[1][0].Int() != 1 || rows[3][0].Int() != 3 {
		t.Fatalf("asc rows = %v", rows)
	}
	rows, err = Collect(&Sort{Input: valuesOp(schema, input.Rows...), Keys: []SortKey{{Expr: key, Desc: true}}})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() != 3 || !rows[3][0].IsNull() {
		t.Fatalf("desc rows = %v", rows)
	}
}

func TestUnionAllAndDistinct(t *testing.T) {
	schema := expr.NewSchema(expr.ColInfo{Name: "a", Type: sqltypes.Int})
	u := &UnionAll{Inputs: []Operator{
		valuesOp(schema, intRow(1), intRow(2)),
		valuesOp(schema, intRow(2), intRow(3)),
	}}
	rows, err := Collect(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("union all rows = %v", rows)
	}
	d := &Distinct{Input: &UnionAll{Inputs: []Operator{
		valuesOp(schema, intRow(1), intRow(2)),
		valuesOp(schema, intRow(2), intRow(3)),
	}}}
	rows, err = Collect(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("distinct rows = %v", rows)
	}
}

func TestHashAggregate(t *testing.T) {
	schema := expr.NewSchema(
		expr.ColInfo{Name: "g", Type: sqltypes.Int},
		expr.ColInfo{Name: "v", Type: sqltypes.Int},
	)
	input := valuesOp(schema, intRow(1, 10), intRow(2, 20), intRow(1, 30), intRow(2, 5))
	g, _ := expr.Compile(mustExpr(t, "g"), schema)
	v, _ := expr.Compile(mustExpr(t, "v"), schema)
	agg := NewHashAggregate(input, []expr.Expr{g}, []string{"g"}, []AggSpec{
		{Name: "SUM", Arg: v, OutName: "s"},
		{Name: "COUNT", Arg: nil, OutName: "c"},
		{Name: "MIN", Arg: v, OutName: "mn"},
		{Name: "MAX", Arg: v, OutName: "mx"},
		{Name: "AVG", Arg: v, OutName: "av"},
	})
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups = %v", rows)
	}
	// First-appearance order: group 1 first.
	if rows[0][0].Int() != 1 || rows[0][1].Int() != 40 || rows[0][2].Int() != 2 ||
		rows[0][3].Int() != 10 || rows[0][4].Int() != 30 || rows[0][5].Float() != 20 {
		t.Fatalf("group1 = %v", rows[0])
	}
	if rows[1][1].Int() != 25 {
		t.Fatalf("group2 = %v", rows[1])
	}
}

func TestWindowOperatorAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	schema := expr.NewSchema(
		expr.ColInfo{Name: "pos", Type: sqltypes.Int},
		expr.ColInfo{Name: "v", Type: sqltypes.Int},
	)
	n := 50
	rows := make([]sqltypes.Row, n)
	vals := make([]int64, n)
	perm := rng.Perm(n) // shuffled input order: the operator must sort
	for i, p := range perm {
		vals[p] = int64(rng.Intn(100) - 50)
		rows[i] = intRow(int64(p+1), vals[p])
	}
	posEx, _ := expr.Compile(mustExpr(t, "pos"), schema)
	vEx, _ := expr.Compile(mustExpr(t, "v"), schema)
	frames := []FrameSpec{
		{Start: FrameBound{Kind: BoundUnboundedPreceding}, End: FrameBound{Kind: BoundCurrentRow}},
		{Start: FrameBound{Kind: BoundPreceding, Offset: 2}, End: FrameBound{Kind: BoundFollowing, Offset: 1}},
		{Start: FrameBound{Kind: BoundCurrentRow}, End: FrameBound{Kind: BoundFollowing, Offset: 6}},
		{Start: FrameBound{Kind: BoundUnboundedPreceding}, End: FrameBound{Kind: BoundUnboundedFollowing}},
		{Start: FrameBound{Kind: BoundFollowing, Offset: 1}, End: FrameBound{Kind: BoundFollowing, Offset: 3}},
	}
	for _, fr := range frames {
		for _, agg := range []string{"SUM", "MIN", "MAX", "COUNT", "AVG"} {
			w := NewWindow(valuesOp(schema, rows...), nil,
				[]SortKey{{Expr: posEx}},
				[]WindowFunc{{Name: agg, Arg: vEx, Frame: fr, OutName: "w"}})
			out, err := Collect(w)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != n {
				t.Fatalf("window emitted %d rows", len(out))
			}
			for _, r := range out {
				k := int(r[0].Int()) // 1-based position
				i := k - 1
				lo := fr.Start.resolve(i, n)
				hi := fr.End.resolve(i, n)
				if lo < 0 {
					lo = 0
				}
				if hi > n-1 {
					hi = n - 1
				}
				acc, _ := expr.NewAgg(agg)
				for j := lo; j <= hi; j++ {
					acc.Add(sqltypes.NewInt(vals[j]))
				}
				want := acc.Result()
				got := r[2]
				if want.IsNull() != got.IsNull() {
					t.Fatalf("%s frame %v pos %d: got %v want %v", agg, fr, k, got, want)
				}
				if !want.IsNull() {
					cmp, _ := sqltypes.Compare(got, want)
					if cmp != 0 {
						t.Fatalf("%s frame %v pos %d: got %v want %v", agg, fr, k, got, want)
					}
				}
			}
		}
	}
}

// TestWindowPreservesInputOrder: rows come back in arrival order even though
// frames are computed in sorted order.
func TestWindowPreservesInputOrder(t *testing.T) {
	schema := expr.NewSchema(
		expr.ColInfo{Name: "pos", Type: sqltypes.Int},
		expr.ColInfo{Name: "v", Type: sqltypes.Int},
	)
	rows := []sqltypes.Row{intRow(3, 30), intRow(1, 10), intRow(2, 20)}
	posEx, _ := expr.Compile(mustExpr(t, "pos"), schema)
	vEx, _ := expr.Compile(mustExpr(t, "v"), schema)
	w := NewWindow(valuesOp(schema, rows...), nil, []SortKey{{Expr: posEx}},
		[]WindowFunc{{Name: "SUM", Arg: vEx,
			Frame: DefaultFrame(true), OutName: "cum"}})
	out, err := Collect(w)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0].Int() != 3 || out[0][2].Int() != 60 {
		t.Fatalf("first row = %v (input order lost?)", out[0])
	}
	if out[1][0].Int() != 1 || out[1][2].Int() != 10 {
		t.Fatalf("second row = %v", out[1])
	}
}

func TestPlanHelpers(t *testing.T) {
	tbl := newCatalogTable(t, intRow(1, 2))
	scan := NewScan(tbl, "t")
	f := &Filter{Input: scan, Pred: mustCompile(t, "a = 1", scan.Schema())}
	txt := FormatPlan(f)
	if !PlanContains(f, "SeqScan") || !PlanContains(f, "Filter") {
		t.Fatalf("plan = %s", txt)
	}
	if PlanContains(f, "HashJoin") {
		t.Fatal("plan should not contain HashJoin")
	}
	if CountOps(f, "SeqScan") != 1 {
		t.Fatal("CountOps mismatch")
	}
}

func mustCompile(t *testing.T, src string, schema *expr.Schema) expr.Expr {
	t.Helper()
	e, err := expr.Compile(mustExpr(t, src), schema)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustExpr(t *testing.T, src string) sqlparser.Expr {
	t.Helper()
	e, err := sqlparser.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
