package mview

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"rfview/internal/catalog"
	"rfview/internal/sqltypes"
	"rfview/internal/storage"
	"rfview/internal/txn"
)

// This file folds base-table DML into materialized sequence views using the
// incremental rules of §2.3. Density-preserving changes patch only the
// affected band of view rows; anything else marks the view stale. The After*
// hooks run under the engine's exclusive lock; depending on the manager's
// mode they apply the delta immediately (eager), queue it (deferred), or
// mark the view stale (off).

// AfterInsert is called by the engine once rows have been inserted into a
// base table. tx, when non-nil, is the committing transaction: backing-table
// writes join its write-set and become visible at its publication instant.
func (m *Manager) AfterInsert(tx *txn.Txn, table string, rows []sqltypes.Row, cols []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.curTx = tx
	defer func() { m.curTx = nil }()
	for _, sv := range m.seq {
		if !strings.EqualFold(sv.mv.BaseTable, table) || sv.stale {
			continue
		}
		m.dispatch(sv, pendingDelta{kind: deltaInsert, rows: rows, cols: cols})
	}
}

// AfterUpdate is called with the before/after images of updated base rows.
func (m *Manager) AfterUpdate(tx *txn.Txn, table string, before, after []sqltypes.Row, cols []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.curTx = tx
	defer func() { m.curTx = nil }()
	for _, sv := range m.seq {
		if !strings.EqualFold(sv.mv.BaseTable, table) || sv.stale {
			continue
		}
		m.dispatch(sv, pendingDelta{kind: deltaUpdate, before: before, after: after, cols: cols})
	}
}

// AfterDelete is called with the images of deleted base rows.
func (m *Manager) AfterDelete(tx *txn.Txn, table string, deleted []sqltypes.Row, cols []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.curTx = tx
	defer func() { m.curTx = nil }()
	for _, sv := range m.seq {
		if !strings.EqualFold(sv.mv.BaseTable, table) || sv.stale {
			continue
		}
		m.dispatch(sv, pendingDelta{kind: deltaDelete, rows: deleted, cols: cols})
	}
}

// dispatch routes one DML delta for one view according to the mode.
func (m *Manager) dispatch(sv *seqView, d pendingDelta) {
	switch m.mode {
	case ModeOff:
		m.markStale(sv, "view maintenance is off")
	case ModeDeferred:
		m.enqueue(sv, d)
	default:
		m.applyDelta(sv, d)
	}
}

// colIndex finds a column in the insert layout (cols may be the insert
// statement's explicit column list).
func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

func (m *Manager) applyInserts(sv *seqView, rows []sqltypes.Row, cols []string) {
	pi := colIndex(cols, sv.mv.PosColumn)
	vi := colIndex(cols, sv.mv.ValColumn)
	if pi < 0 || vi < 0 {
		m.markStale(sv, "insert without position or value column")
		return
	}
	if sv.partitioned() {
		gi := colIndex(cols, sv.mv.PartColumn)
		if gi < 0 {
			m.markStale(sv, "insert without partition column")
			return
		}
		ordered := append([]sqltypes.Row(nil), rows...)
		sort.Slice(ordered, func(a, b int) bool { return ordered[a][pi].Int() < ordered[b][pi].Int() })
		for _, row := range ordered {
			p, v, g := row[pi], row[vi], row[gi]
			if p.IsNull() || p.Typ() != sqltypes.Int || v.IsNull() || !v.Typ().Numeric() || g.IsNull() {
				m.markStale(sv, "inserted row has bad position, value, or partition key")
				return
			}
			m.applyPartitionedInsert(sv, g, int(p.Int()), v.Float())
			if sv.stale {
				return
			}
		}
		return
	}
	// Appends must arrive in position order n+1, n+2, …
	ordered := append([]sqltypes.Row(nil), rows...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a][pi].Int() < ordered[b][pi].Int() })
	for _, row := range ordered {
		p, v := row[pi], row[vi]
		if p.IsNull() || p.Typ() != sqltypes.Int || v.IsNull() || !v.Typ().Numeric() {
			m.markStale(sv, "inserted row has non-integer position or non-numeric value")
			return
		}
		n := sv.maint.Len()
		if p.Int() != int64(n+1) {
			m.markStale(sv, fmt.Sprintf("insert at position %d is not an append (n=%d)", p.Int(), n))
			return
		}
		if err := m.seqInsert(sv, n+1, v.Float()); err != nil {
			m.markStale(sv, err.Error())
			return
		}
		m.MaintenanceEvents++
		if err := m.patchAppend(sv, n+1); err != nil {
			m.markStale(sv, err.Error())
			return
		}
	}
}

func (m *Manager) applyUpdates(sv *seqView, before, after []sqltypes.Row, cols []string) {
	pi := colIndex(cols, sv.mv.PosColumn)
	vi := colIndex(cols, sv.mv.ValColumn)
	if pi < 0 || vi < 0 {
		m.markStale(sv, "update on untracked columns")
		return
	}
	gi := -1
	if sv.partitioned() {
		gi = colIndex(cols, sv.mv.PartColumn)
		if gi < 0 {
			m.markStale(sv, "update without partition column")
			return
		}
	}
	for i := range before {
		bp, ap := before[i][pi], after[i][pi]
		bv, av := before[i][vi], after[i][vi]
		if !sqltypes.Equal(bp, ap) {
			m.markStale(sv, "position column updated")
			return
		}
		if valueUnchanged(bv, av) {
			continue
		}
		if av.IsNull() || !av.Typ().Numeric() {
			m.markStale(sv, "value updated to non-numeric")
			return
		}
		if sv.partitioned() {
			if !sqltypes.Equal(before[i][gi], after[i][gi]) {
				m.markStale(sv, "partition column updated")
				return
			}
			m.applyPartitionedUpdate(sv, after[i][gi], int(ap.Int()), av.Float())
			if sv.stale {
				return
			}
			continue
		}
		k := int(ap.Int())
		if err := m.seqUpdate(sv, k, av.Float()); err != nil {
			m.markStale(sv, err.Error())
			return
		}
		m.MaintenanceEvents++
		if err := m.patchBand(sv, k); err != nil {
			m.markStale(sv, err.Error())
			return
		}
	}
}

// valueUnchanged reports whether an updated value carries the same bits.
// sqltypes.Equal is a SQL comparison: it calls NaN equal to any float and −0
// equal to +0, which would silently drop exactly the updates whose bit
// patterns the view must track to stay refresh-identical.
func valueUnchanged(a, b sqltypes.Datum) bool {
	if (a.Typ() == sqltypes.Float || b.Typ() == sqltypes.Float) &&
		!a.IsNull() && !b.IsNull() && a.Typ().Numeric() && b.Typ().Numeric() {
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	}
	return sqltypes.Equal(a, b)
}

func (m *Manager) applyDeletes(sv *seqView, deleted []sqltypes.Row, cols []string) {
	pi := colIndex(cols, sv.mv.PosColumn)
	if pi < 0 {
		m.markStale(sv, "delete without position column")
		return
	}
	if sv.partitioned() {
		gi := colIndex(cols, sv.mv.PartColumn)
		if gi < 0 {
			m.markStale(sv, "delete without partition column")
			return
		}
		ordered := append([]sqltypes.Row(nil), deleted...)
		sort.Slice(ordered, func(a, b int) bool { return ordered[a][pi].Int() > ordered[b][pi].Int() })
		for _, row := range ordered {
			if row[pi].IsNull() || row[gi].IsNull() {
				m.markStale(sv, "deleted row lacks position or partition key")
				return
			}
			m.applyPartitionedDelete(sv, row[gi], int(row[pi].Int()))
			if sv.stale {
				return
			}
		}
		return
	}
	// Deleting a suffix (n, n−1, …) keeps positions dense.
	ordered := append([]sqltypes.Row(nil), deleted...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a][pi].Int() > ordered[b][pi].Int() })
	for _, row := range ordered {
		n := sv.maint.Len()
		if row[pi].IsNull() || row[pi].Int() != int64(n) {
			m.markStale(sv, fmt.Sprintf("delete at position %v is not a suffix delete (n=%d)", row[pi], n))
			return
		}
		if err := m.seqDelete(sv, n); err != nil {
			m.markStale(sv, err.Error())
			return
		}
		m.MaintenanceEvents++
		if err := m.patchShrink(sv, n); err != nil {
			m.markStale(sv, err.Error())
			return
		}
	}
}

// seqUpdate / seqInsert / seqDelete mutate a simple view's maintainer pair:
// AVG views carry a COUNT maintainer alongside the SUM one (§2.1), and both
// must track the raw data.
func (m *Manager) seqUpdate(sv *seqView, k int, v float64) error {
	if err := sv.maint.Update(k, v); err != nil {
		return err
	}
	if sv.cnt != nil {
		return sv.cnt.Update(k, v)
	}
	return nil
}

func (m *Manager) seqInsert(sv *seqView, k int, v float64) error {
	if err := sv.maint.Insert(k, v); err != nil {
		return err
	}
	if sv.cnt != nil {
		return sv.cnt.Insert(k, v)
	}
	return nil
}

func (m *Manager) seqDelete(sv *seqView, k int) error {
	if err := sv.maint.Delete(k); err != nil {
		return err
	}
	if sv.cnt != nil {
		return sv.cnt.Delete(k)
	}
	return nil
}

func (m *Manager) markStale(sv *seqView, why string) {
	if !sv.stale {
		sv.staleSince = time.Now()
	}
	sv.stale = true
	sv.staleWhy = why
}

// upsert writes (pos, val/ok) into the backing table through its pk index.
func (m *Manager) upsert(sv *seqView, pos int, val float64, ok bool) error {
	h := sv.mv.Table.Heap.IndexOn([]int{0})
	if h == nil {
		return fmt.Errorf("mview: backing table of %q lost its index", sv.mv.Name)
	}
	key := sqltypes.Row{sqltypes.NewInt(int64(pos))}
	id, found := m.hFirst(sv.mv.Table, h, key)
	if !ok {
		if found {
			return m.hDelete(sv.mv.Table, id)
		}
		return nil
	}
	row := sqltypes.Row{sqltypes.NewInt(int64(pos)), sv.datum(val)}
	if found {
		return m.hUpdate(sv.mv.Table, id, row)
	}
	return m.hInsert(sv.mv.Table, row)
}

func (m *Manager) deleteRow(sv *seqView, pos int) error {
	h := sv.mv.Table.Heap.IndexOn([]int{0})
	if h == nil {
		return fmt.Errorf("mview: backing table of %q lost its index", sv.mv.Name)
	}
	if id, found := m.hFirst(sv.mv.Table, h, sqltypes.Row{sqltypes.NewInt(int64(pos))}); found {
		return m.hDelete(sv.mv.Table, id)
	}
	return nil
}

// syncRange re-writes the backing rows for positions [lo, hi] from the
// maintained sequence (removing rows the sequence no longer stores).
func (m *Manager) syncRange(sv *seqView, lo, hi int) error {
	seq := sv.maint.Seq()
	for k := lo; k <= hi; k++ {
		if k < seq.Lo() || k > seq.Hi() {
			if err := m.deleteRow(sv, k); err != nil {
				return err
			}
			continue
		}
		v, ok := sv.valueAt(k)
		if err := m.upsert(sv, k, v, ok); err != nil {
			return err
		}
	}
	m.setBaseRows(sv.mv, seq.N)
	return nil
}

// fullRecomputed reports whether the last mutation of sv's maintainer(s)
// took the exotic-value fallback: NaN and Inf poison the pipelined running
// sums past the §2.3 band, so the rebuilt sequence can differ at every
// stored position and the backing must resync in full.
func fullRecomputed(sv *seqView) bool {
	return sv.maint.FullRecompute() || (sv.cnt != nil && sv.cnt.FullRecompute())
}

// patchBand handles a value update at position k: only the §2.3 band
// [k−h, k+l] changes.
func (m *Manager) patchBand(sv *seqView, k int) error {
	seq := sv.maint.Seq()
	if fullRecomputed(sv) {
		return m.syncRange(sv, seq.Lo(), seq.Hi())
	}
	if seq.Win.Cumulative {
		// Cumulative updates ripple right: [k, hi].
		return m.syncRange(sv, k, seq.Hi())
	}
	return m.syncRange(sv, k-seq.Win.Following, k+seq.Win.Preceding)
}

// patchAppend handles an append at position k = n+1: the band plus the one
// new trailer position.
func (m *Manager) patchAppend(sv *seqView, k int) error {
	seq := sv.maint.Seq()
	if fullRecomputed(sv) {
		return m.syncRange(sv, seq.Lo(), seq.Hi())
	}
	if seq.Win.Cumulative {
		return m.syncRange(sv, k, seq.Hi())
	}
	return m.syncRange(sv, k-seq.Win.Following, seq.Hi())
}

// patchShrink handles a suffix delete of the old position n: band plus the
// vanished trailer position.
func (m *Manager) patchShrink(sv *seqView, oldN int) error {
	seq := sv.maint.Seq()
	if fullRecomputed(sv) {
		// The old stored range extended past the new Hi; cover both so the
		// vanished trailer rows are deleted too.
		hi := oldN + seq.Win.Preceding
		if seq.Win.Cumulative {
			hi = oldN
		}
		return m.syncRange(sv, seq.Lo(), hi)
	}
	if seq.Win.Cumulative {
		return m.syncRange(sv, oldN, oldN)
	}
	// New stored max is seq.Hi(); the old max was oldN + l.
	return m.syncRange(sv, oldN-seq.Win.Following, oldN+seq.Win.Preceding)
}

// ShiftInsert performs the paper's positional insert (§2.3): a value enters
// at position k and every later position shifts right — applied to BOTH the
// base table (renumbering its position column) and the view (via the
// incremental insert rule). This is the sequence-semantics operation the
// relational INSERT cannot express while keeping positions dense.
func (m *Manager) ShiftInsert(viewName string, k int, val float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sv, ok := m.seq[lower(viewName)]
	if !ok {
		return fmt.Errorf("materialized view %q is not a sequence view", viewName)
	}
	if sv.partitioned() {
		return fmt.Errorf("positional shifts apply to simple sequence views only")
	}
	base, err := m.cat.Table(sv.mv.BaseTable)
	if err != nil {
		return err
	}
	if err := shiftBase(base, sv.mv.PosColumn, sv.mv.ValColumn, k, &val, true); err != nil {
		return err
	}
	if err := m.seqInsert(sv, k, val); err != nil {
		return err
	}
	m.MaintenanceEvents++
	seq := sv.maint.Seq()
	if seq.Win.Cumulative {
		return m.syncRange(sv, k, seq.Hi())
	}
	// Positions right of k+l shift; patch everything from the band start.
	return m.syncRange(sv, k-seq.Win.Following, seq.Hi())
}

// ShiftDelete removes position k, shifting later positions left (§2.3).
func (m *Manager) ShiftDelete(viewName string, k int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sv, ok := m.seq[lower(viewName)]
	if !ok {
		return fmt.Errorf("materialized view %q is not a sequence view", viewName)
	}
	if sv.partitioned() {
		return fmt.Errorf("positional shifts apply to simple sequence views only")
	}
	base, err := m.cat.Table(sv.mv.BaseTable)
	if err != nil {
		return err
	}
	oldHi := sv.maint.Seq().Hi()
	if err := shiftBase(base, sv.mv.PosColumn, sv.mv.ValColumn, k, nil, false); err != nil {
		return err
	}
	if err := m.seqDelete(sv, k); err != nil {
		return err
	}
	m.MaintenanceEvents++
	seq := sv.maint.Seq()
	if seq.Win.Cumulative {
		return m.syncRange(sv, k, oldHi)
	}
	return m.syncRange(sv, k-seq.Win.Following, oldHi)
}

// shiftBase renumbers the base table's position column around a positional
// insert (withValue=true) or delete.
func shiftBase(base *catalog.Table, posCol, valCol string, k int, val *float64, insert bool) error {
	pi := base.ColumnIndex(posCol)
	vi := base.ColumnIndex(valCol)
	if pi < 0 || vi < 0 {
		return fmt.Errorf("mview: base table lost its sequence columns")
	}
	type target struct {
		id  storage.RowID
		row sqltypes.Row
	}
	var touch []target
	if err := base.Heap.Scan(func(id storage.RowID, row sqltypes.Row) bool {
		if int(row[pi].Int()) >= k {
			touch = append(touch, target{id, row})
		}
		return true
	}); err != nil {
		return err
	}
	if insert {
		// Shift right in descending order to avoid transient duplicates.
		sort.Slice(touch, func(a, b int) bool { return touch[a].row[pi].Int() > touch[b].row[pi].Int() })
		for _, t := range touch {
			nr := t.row.Clone()
			nr[pi] = sqltypes.NewInt(t.row[pi].Int() + 1)
			if _, err := base.Heap.Update(t.id, nr); err != nil {
				return err
			}
		}
		nr := make(sqltypes.Row, len(base.Columns))
		for i := range nr {
			nr[i] = sqltypes.NullDatum
		}
		nr[pi] = sqltypes.NewInt(int64(k))
		if base.Columns[vi].Type == sqltypes.Int {
			nr[vi] = sqltypes.NewInt(int64(*val))
		} else {
			nr[vi] = sqltypes.NewFloat(*val)
		}
		_, err := base.Heap.Insert(nr)
		return err
	}
	// Delete: remove position k, shift the rest left in ascending order.
	sort.Slice(touch, func(a, b int) bool { return touch[a].row[pi].Int() < touch[b].row[pi].Int() })
	for _, t := range touch {
		if int(t.row[pi].Int()) == k {
			if err := base.Heap.Delete(t.id); err != nil {
				return err
			}
			continue
		}
		nr := t.row.Clone()
		nr[pi] = sqltypes.NewInt(t.row[pi].Int() - 1)
		if _, err := base.Heap.Update(t.id, nr); err != nil {
			return err
		}
	}
	return nil
}
