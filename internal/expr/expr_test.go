package expr

import (
	"testing"

	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
)

func testSchema() *Schema {
	return NewSchema(
		ColInfo{Table: "t", Name: "a", Type: sqltypes.Int},
		ColInfo{Table: "t", Name: "b", Type: sqltypes.Int},
		ColInfo{Table: "u", Name: "c", Type: sqltypes.Float},
		ColInfo{Table: "u", Name: "d", Type: sqltypes.String},
		ColInfo{Table: "u", Name: "e", Type: sqltypes.Date},
	)
}

func compile(t *testing.T, src string) Expr {
	t.Helper()
	ast, err := sqlparser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	e, err := Compile(ast, testSchema())
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return e
}

func evalOn(t *testing.T, src string, row sqltypes.Row) sqltypes.Datum {
	t.Helper()
	v, err := compile(t, src).Eval(row)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func row(a, b int64) sqltypes.Row {
	d, _ := sqltypes.ParseDate("2001-06-15")
	return sqltypes.Row{
		sqltypes.NewInt(a), sqltypes.NewInt(b),
		sqltypes.NewFloat(1.5), sqltypes.NewString("xyz"), d,
	}
}

func TestCompileColumnResolution(t *testing.T) {
	if v := evalOn(t, "a", row(7, 8)); v.Int() != 7 {
		t.Fatalf("a = %v", v)
	}
	if v := evalOn(t, "t.b", row(7, 8)); v.Int() != 8 {
		t.Fatalf("t.b = %v", v)
	}
	ast, _ := sqlparser.ParseExpr("nope")
	if _, err := Compile(ast, testSchema()); err == nil {
		t.Fatal("unknown column must fail")
	}
	ast, _ = sqlparser.ParseExpr("x.a")
	if _, err := Compile(ast, testSchema()); err == nil {
		t.Fatal("unknown qualifier must fail")
	}
	// Ambiguity.
	amb := NewSchema(
		ColInfo{Table: "t1", Name: "k", Type: sqltypes.Int},
		ColInfo{Table: "t2", Name: "k", Type: sqltypes.Int},
	)
	ast, _ = sqlparser.ParseExpr("k")
	if _, err := Compile(ast, amb); err == nil {
		t.Fatal("ambiguous column must fail")
	}
	ast, _ = sqlparser.ParseExpr("t1.k")
	if _, err := Compile(ast, amb); err != nil {
		t.Fatalf("qualified reference must resolve: %v", err)
	}
}

func TestArithmeticAndComparisons(t *testing.T) {
	if v := evalOn(t, "a + b * 2", row(3, 4)); v.Int() != 11 {
		t.Fatalf("a+b*2 = %v", v)
	}
	if v := evalOn(t, "-a", row(3, 4)); v.Int() != -3 {
		t.Fatalf("-a = %v", v)
	}
	if v := evalOn(t, "a < b", row(3, 4)); !v.Bool() {
		t.Fatalf("a<b = %v", v)
	}
	if v := evalOn(t, "a <> b", row(3, 3)); v.Bool() {
		t.Fatalf("a<>b = %v", v)
	}
	if v := evalOn(t, "a >= 3 AND b <= 4", row(3, 4)); !v.Bool() {
		t.Fatalf("and = %v", v)
	}
	if v := evalOn(t, "a = 9 OR b = 4", row(3, 4)); !v.Bool() {
		t.Fatalf("or = %v", v)
	}
	if v := evalOn(t, "NOT a = 9", row(3, 4)); !v.Bool() {
		t.Fatalf("not = %v", v)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	nullRow := sqltypes.Row{sqltypes.NullDatum, sqltypes.NewInt(1),
		sqltypes.NewFloat(0), sqltypes.NewString(""), sqltypes.NullDatum}
	// Comparison with NULL is unknown.
	if v := evalOn(t, "a = 1", nullRow); !v.IsNull() {
		t.Fatalf("NULL = 1 -> %v", v)
	}
	// false AND unknown = false; true OR unknown = true.
	if v := evalOn(t, "b = 2 AND a = 1", nullRow); v.IsNull() || v.Bool() {
		t.Fatalf("false AND unknown = %v", v)
	}
	if v := evalOn(t, "b = 1 OR a = 1", nullRow); v.IsNull() || !v.Bool() {
		t.Fatalf("true OR unknown = %v", v)
	}
	// true AND unknown = unknown; false OR unknown = unknown.
	if v := evalOn(t, "b = 1 AND a = 1", nullRow); !v.IsNull() {
		t.Fatalf("true AND unknown = %v", v)
	}
	if v := evalOn(t, "b = 2 OR a = 1", nullRow); !v.IsNull() {
		t.Fatalf("false OR unknown = %v", v)
	}
	// NOT unknown = unknown.
	if v := evalOn(t, "NOT a = 1", nullRow); !v.IsNull() {
		t.Fatalf("NOT unknown = %v", v)
	}
	// IS NULL / IS NOT NULL are never unknown.
	if v := evalOn(t, "a IS NULL", nullRow); !v.Bool() {
		t.Fatalf("IS NULL = %v", v)
	}
	if v := evalOn(t, "b IS NOT NULL", nullRow); !v.Bool() {
		t.Fatalf("IS NOT NULL = %v", v)
	}
	if !Truthy(sqltypes.NewBool(true)) || Truthy(sqltypes.NullDatum) || Truthy(sqltypes.NewBool(false)) {
		t.Fatal("Truthy misclassifies")
	}
}

func TestInAndBetween(t *testing.T) {
	if v := evalOn(t, "a IN (1, 3, 5)", row(3, 0)); !v.Bool() {
		t.Fatalf("IN = %v", v)
	}
	if v := evalOn(t, "a IN (1, 5)", row(3, 0)); v.Bool() {
		t.Fatalf("IN = %v", v)
	}
	if v := evalOn(t, "a NOT IN (1, 5)", row(3, 0)); !v.Bool() {
		t.Fatalf("NOT IN = %v", v)
	}
	// x IN (…, NULL) with no match is unknown.
	if v := evalOn(t, "a IN (1, NULL)", row(3, 0)); !v.IsNull() {
		t.Fatalf("IN with NULL = %v", v)
	}
	// … but a match wins.
	if v := evalOn(t, "a IN (3, NULL)", row(3, 0)); !v.Bool() {
		t.Fatalf("IN match with NULL = %v", v)
	}
	if v := evalOn(t, "a BETWEEN 2 AND 4", row(3, 0)); !v.Bool() {
		t.Fatalf("BETWEEN = %v", v)
	}
	if v := evalOn(t, "a NOT BETWEEN 2 AND 4", row(3, 0)); v.Bool() {
		t.Fatalf("NOT BETWEEN = %v", v)
	}
}

func TestCaseExprEval(t *testing.T) {
	src := "CASE WHEN a = 1 THEN 10 WHEN a = 2 THEN 20 ELSE 30 END"
	if v := evalOn(t, src, row(1, 0)); v.Int() != 10 {
		t.Fatalf("case = %v", v)
	}
	if v := evalOn(t, src, row(2, 0)); v.Int() != 20 {
		t.Fatalf("case = %v", v)
	}
	if v := evalOn(t, src, row(9, 0)); v.Int() != 30 {
		t.Fatalf("case = %v", v)
	}
	// No ELSE: NULL.
	if v := evalOn(t, "CASE WHEN a = 1 THEN 10 END", row(9, 0)); !v.IsNull() {
		t.Fatalf("case without else = %v", v)
	}
}

func TestScalarFunctions(t *testing.T) {
	if v := evalOn(t, "MOD(a, 4)", row(7, 0)); v.Int() != 3 {
		t.Fatalf("MOD = %v", v)
	}
	if v := evalOn(t, "ABS(a)", row(-7, 0)); v.Int() != 7 {
		t.Fatalf("ABS = %v", v)
	}
	if v := evalOn(t, "COALESCE(NULL, NULL, a)", row(5, 0)); v.Int() != 5 {
		t.Fatalf("COALESCE = %v", v)
	}
	if v := evalOn(t, "LEAST(a, b)", row(5, 3)); v.Int() != 3 {
		t.Fatalf("LEAST = %v", v)
	}
	if v := evalOn(t, "GREATEST(a, b)", row(5, 3)); v.Int() != 5 {
		t.Fatalf("GREATEST = %v", v)
	}
	if v := evalOn(t, "LEAST(a, NULL)", row(5, 3)); !v.IsNull() {
		t.Fatalf("LEAST with NULL = %v", v)
	}
	if v := evalOn(t, "FLOOR(c)", row(0, 0)); v.Int() != 1 {
		t.Fatalf("FLOOR(1.5) = %v", v)
	}
	if v := evalOn(t, "CEIL(c)", row(0, 0)); v.Int() != 2 {
		t.Fatalf("CEIL(1.5) = %v", v)
	}
	if v := evalOn(t, "MONTH(e)", row(0, 0)); v.Int() != 6 {
		t.Fatalf("MONTH = %v", v)
	}
	if v := evalOn(t, "YEAR(e)", row(0, 0)); v.Int() != 2001 {
		t.Fatalf("YEAR = %v", v)
	}
	if v := evalOn(t, "DAY(e)", row(0, 0)); v.Int() != 15 {
		t.Fatalf("DAY = %v", v)
	}
}

func TestCompileRejections(t *testing.T) {
	bad := []string{
		"SUM(a)",                   // aggregate outside aggregation
		"SUM(a) OVER (ORDER BY a)", // window outside planner
		"NOSUCHFN(a)",              // unknown function
		"MOD(a)",                   // arity
		"ABS(a, b)",                // arity
		"COALESCE()",               // arity
		"MONTH(a, b)",              // arity
	}
	for _, src := range bad {
		ast, err := sqlparser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Compile(ast, testSchema()); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestAggAccumulators(t *testing.T) {
	cases := []struct {
		name   string
		inputs []sqltypes.Datum
		want   string
	}{
		{"SUM", []sqltypes.Datum{sqltypes.NewInt(1), sqltypes.NewInt(2), sqltypes.NullDatum}, "3"},
		{"SUM", []sqltypes.Datum{sqltypes.NewInt(1), sqltypes.NewFloat(0.5)}, "1.5"},
		{"COUNT", []sqltypes.Datum{sqltypes.NewInt(1), sqltypes.NullDatum, sqltypes.NewInt(2)}, "2"},
		{"AVG", []sqltypes.Datum{sqltypes.NewInt(1), sqltypes.NewInt(3)}, "2"},
		{"MIN", []sqltypes.Datum{sqltypes.NewInt(5), sqltypes.NewInt(2), sqltypes.NewInt(9)}, "2"},
		{"MAX", []sqltypes.Datum{sqltypes.NewInt(5), sqltypes.NewInt(2), sqltypes.NewInt(9)}, "9"},
	}
	for _, c := range cases {
		acc, err := NewAgg(c.name)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range c.inputs {
			acc.Add(d)
		}
		if got := acc.Result().String(); got != c.want {
			t.Errorf("%s(%v) = %s, want %s", c.name, c.inputs, got, c.want)
		}
		acc.Reset()
		if c.name == "COUNT" {
			if acc.Result().Int() != 0 {
				t.Errorf("COUNT after reset = %v", acc.Result())
			}
		} else if !acc.Result().IsNull() {
			t.Errorf("%s after reset = %v, want NULL", c.name, acc.Result())
		}
	}
	if _, err := NewAgg("MEDIAN"); err == nil {
		t.Error("unknown aggregate must fail")
	}
}

func TestAggRemove(t *testing.T) {
	sum, _ := NewAgg("SUM")
	sum.Add(sqltypes.NewInt(5))
	sum.Add(sqltypes.NewInt(7))
	sum.Remove(sqltypes.NewInt(5))
	if sum.Result().Int() != 7 {
		t.Fatalf("sum after remove = %v", sum.Result())
	}
	sum.Remove(sqltypes.NewInt(7))
	if !sum.Result().IsNull() {
		t.Fatalf("empty sum = %v", sum.Result())
	}
	if !sum.Removable() {
		t.Fatal("SUM must be removable")
	}
	mn, _ := NewAgg("MIN")
	if mn.Removable() {
		t.Fatal("MIN must not be removable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MIN.Remove must panic")
		}
	}()
	mn.Remove(sqltypes.NewInt(1))
}

func TestAggResultType(t *testing.T) {
	if AggResultType("COUNT", sqltypes.Float) != sqltypes.Int {
		t.Error("COUNT type")
	}
	if AggResultType("AVG", sqltypes.Int) != sqltypes.Float {
		t.Error("AVG type")
	}
	if AggResultType("SUM", sqltypes.Int) != sqltypes.Int {
		t.Error("SUM int type")
	}
	if AggResultType("SUM", sqltypes.Float) != sqltypes.Float {
		t.Error("SUM float type")
	}
	if AggResultType("MIN", sqltypes.String) != sqltypes.String {
		t.Error("MIN type")
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := testSchema()
	s2 := s.Append(ColInfo{Name: "extra", Type: sqltypes.Int})
	if len(s.Cols) == len(s2.Cols) {
		t.Fatal("Append must not mutate the receiver")
	}
	idx, err := s2.Resolve("", "extra")
	if err != nil || idx != 5 {
		t.Fatalf("Resolve(extra) = %d (%v)", idx, err)
	}
	joined := Concat(s, s)
	if len(joined.Cols) != 2*len(s.Cols) {
		t.Fatal("Concat arity")
	}
	if _, err := joined.Resolve("", "a"); err == nil {
		t.Fatal("duplicated column must be ambiguous after Concat")
	}
	if _, err := joined.Resolve("t", "a"); err == nil {
		// Both copies carry qualifier t — still ambiguous.
		t.Log("qualified resolution over duplicate schema is ambiguous (expected)")
	}
}

func TestIsAggregateHelper(t *testing.T) {
	agg, _ := sqlparser.ParseExpr("SUM(x)")
	if !IsAggregate(agg) {
		t.Error("SUM(x) is an aggregate")
	}
	fn, _ := sqlparser.ParseExpr("MOD(x, 2)")
	if IsAggregate(fn) {
		t.Error("MOD is not an aggregate")
	}
	w, _ := sqlparser.ParseExpr("SUM(x) OVER (ORDER BY x)")
	if IsAggregate(w) {
		t.Error("window expressions are not bare aggregates")
	}
}

// TestCompiledExprRendering exercises String() and Type() across node kinds
// (these feed EXPLAIN output).
func TestCompiledExprRendering(t *testing.T) {
	cases := map[string]sqltypes.Type{
		`a`:                          sqltypes.Int,
		`42`:                         sqltypes.Int,
		`a + b`:                      sqltypes.Int,
		`a / b`:                      sqltypes.Int,
		`c * 2`:                      sqltypes.Float,
		`-a`:                         sqltypes.Int,
		`a = b`:                      sqltypes.Bool,
		`a = 1 AND b = 2`:            sqltypes.Bool,
		`a = 1 OR b = 2`:             sqltypes.Bool,
		`NOT a = 1`:                  sqltypes.Bool,
		`a IN (1, 2)`:                sqltypes.Bool,
		`a IS NULL`:                  sqltypes.Bool,
		`CASE WHEN a = 1 THEN b END`: sqltypes.Int,
		`MOD(a, 2)`:                  sqltypes.Int,
		`COALESCE(NULL, a)`:          sqltypes.Int,
	}
	for src, wantType := range cases {
		e := compile(t, src)
		if e.Type() != wantType {
			t.Errorf("Type(%q) = %v, want %v", src, e.Type(), wantType)
		}
		if e.String() == "" {
			t.Errorf("String(%q) is empty", src)
		}
		// Rendered text must itself parse and compile (EXPLAIN round trip).
		ast, err := sqlparser.ParseExpr(e.String())
		if err != nil {
			t.Errorf("String(%q) = %q does not reparse: %v", src, e.String(), err)
			continue
		}
		if _, err := Compile(ast, testSchema()); err != nil {
			t.Errorf("String(%q) = %q does not recompile: %v", src, e.String(), err)
		}
	}
}

// TestNewColHelper covers the operator-facing constructor.
func TestNewColHelper(t *testing.T) {
	c := NewCol(1, "t.b", sqltypes.Int)
	v, err := c.Eval(sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewInt(9)})
	if err != nil || v.Int() != 9 {
		t.Fatalf("Eval = %v (%v)", v, err)
	}
	if c.String() != "t.b" || c.Type() != sqltypes.Int {
		t.Fatal("metadata mismatch")
	}
	if _, err := c.Eval(sqltypes.Row{sqltypes.NewInt(1)}); err == nil {
		t.Fatal("short row must error")
	}
}

// TestAggRemoveRoundTrip drives Remove across all removable accumulators —
// the §2.2 pipelined window machinery.
func TestAggRemoveRoundTrip(t *testing.T) {
	for _, name := range []string{"SUM", "COUNT", "AVG"} {
		acc, err := NewAgg(name)
		if err != nil {
			t.Fatal(err)
		}
		if !acc.Removable() {
			t.Fatalf("%s must be removable", name)
		}
		for i := int64(1); i <= 10; i++ {
			acc.Add(sqltypes.NewInt(i))
		}
		for i := int64(1); i <= 5; i++ {
			acc.Remove(sqltypes.NewInt(i))
		}
		// Remaining: 6..10 → SUM 40, COUNT 5, AVG 8.
		got := acc.Result()
		switch name {
		case "SUM":
			if got.Int() != 40 {
				t.Fatalf("SUM = %v", got)
			}
		case "COUNT":
			if got.Int() != 5 {
				t.Fatalf("COUNT = %v", got)
			}
		case "AVG":
			if got.Float() != 8 {
				t.Fatalf("AVG = %v", got)
			}
		}
		// NULLs are ignored by Remove as by Add.
		acc.Remove(sqltypes.NullDatum)
		if acc.Result().IsNull() {
			t.Fatalf("%s: NULL remove corrupted the accumulator", name)
		}
	}
}
