package sqlparser

import "testing"

// FuzzParse asserts the two parser robustness invariants:
//
//  1. the parser never panics, whatever bytes arrive (the server feeds it
//     raw wire input);
//  2. rendering is a fixed point: a successfully parsed statement's
//     String() must reparse, and reparse to the same rendering — otherwise
//     the engine's text-keyed plan cache and the rewriter's rendered SQL
//     would disagree about what a statement means.
//
// CI runs this as a 30-second smoke (-fuzz=FuzzParse -fuzztime=30s) on top
// of the seeded regression corpus that plain `go test` replays.
func FuzzParse(f *testing.F) {
	seeds := []string{
		``,
		`;`,
		`SELECT 1`,
		`SELECT * FROM seq`,
		`SELECT pos, val FROM seq WHERE pos >= 2 AND pos <= 4 ORDER BY pos DESC LIMIT 3`,
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS w FROM seq`,
		`SELECT grp, pos, MIN(val) OVER (PARTITION BY grp ORDER BY pos ROWS UNBOUNDED PRECEDING) FROM pt`,
		`SELECT SUM(v) OVER (PARTITION BY g ORDER BY k1 NULLS LAST), MIN(v) OVER (ORDER BY k1 DESC NULLS FIRST, k2 ASC NULLS LAST) FROM d`,
		`SELECT SUM(v) OVER (PARTITION BY g ORDER BY k1), COUNT(v) OVER (PARTITION BY g ORDER BY k1, k2), MIN(v) OVER (ORDER BY k2 DESC), MAX(v) OVER (ORDER BY k2 DESC, k1), AVG(v) OVER (PARTITION BY h, g ORDER BY k1 DESC) FROM d`,
		`SELECT pos FROM seq ORDER BY pos DESC NULLS FIRST, val NULLS LAST`,
		`SELECT COUNT(*) OVER (PARTITION BY g, h), SUM(v) OVER (ORDER BY k1 ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) FROM d`,
		`SELECT a.x, b.y FROM a LEFT OUTER JOIN b ON a.id = b.id WHERE b.y IN (1, 2, 3)`,
		`SELECT g, COUNT(*) AS c FROM t GROUP BY g HAVING COUNT(*) > 2`,
		`SELECT CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END FROM t`,
		`SELECT * FROM (SELECT pos + 1 AS p FROM seq) d WHERE MOD(p, 7) = 0`,
		`SELECT x FROM t UNION ALL SELECT y FROM u ORDER BY 1`,
		`CREATE TABLE seq (pos INTEGER, val INTEGER)`,
		`CREATE UNIQUE INDEX seq_pk ON seq (pos)`,
		`CREATE MATERIALIZED VIEW mv AS SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS val FROM seq`,
		`REFRESH MATERIALIZED VIEW mv`,
		`DROP MATERIALIZED VIEW mv; DROP TABLE seq`,
		`INSERT INTO seq (pos, val) VALUES (1, 10), (2, -20)`,
		`UPDATE seq SET val = val + 1 WHERE pos BETWEEN 3 AND 5`,
		`DELETE FROM seq WHERE val IS NULL`,
		`EXPLAIN SELECT pos FROM seq`,
		`BEGIN`,
		`BEGIN TRANSACTION`,
		`BEGIN WORK; INSERT INTO seq (pos, val) VALUES (6, 60); COMMIT`,
		`COMMIT TRANSACTION`,
		`ROLLBACK`,
		`ROLLBACK WORK`,
		`SELECT 'it''s', "quoted", 1.5e10, -0.5, NULL, TRUE FROM t`,
		`SELECT COALESCE(a, ABS(-b), 0) FROM t WHERE NOT (a = 1 OR b <> 2)`,
		"SELECT\t/*nothing*/ 1 --trailing",
		`SELECT ( ( ( 1 ) ) )`,
		"\x00\xff\xfe",
		"SELECT \xaa()", // latin-1 byte in an identifier: must be rejected, not case-folded to U+FFFD
		`SELECT * FROM`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmts, err := ParseAll(sql) // must never panic
		if err != nil {
			return
		}
		for _, stmt := range stmts {
			rendered := stmt.String()
			again, err := Parse(rendered)
			if err != nil {
				t.Fatalf("String() of a parsed statement does not reparse\ninput:    %q\nrendered: %q\nerror:    %v", sql, rendered, err)
			}
			if got := again.String(); got != rendered {
				t.Fatalf("String() is not a rendering fixed point\ninput:  %q\nfirst:  %q\nsecond: %q", sql, rendered, got)
			}
		}
	})
}
