package exec

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"rfview/internal/expr"
	"rfview/internal/sqltypes"
)

// These tests pin the executor half of shared-sort window planning: a Window
// consuming a shared Sort (bracketed by Ordinal/Restore) must produce rows
// bit-identical — values and order — to the same Window sorting internally
// over the raw input. The edge cases that cannot be written in SQL are built
// here from raw datums: NaN keys (Compare treats NaN as equal to anything,
// defeating boundary and tie detection), negative zero (Equal to +0.0 but
// hashed by float bits), and Int/Float mixes (defeat the byte encoding).

// sharedStack builds the shared-plan bracket over rows:
// Values → Ordinal → Sort(sortKeys) → Window(shared) → Restore.
func sharedStack(schema *expr.Schema, rows []sqltypes.Row, pb []expr.Expr, ob, sortKeys []SortKey, funcs []WindowFunc, preSorted bool) Operator {
	ordCol := len(schema.Cols)
	var op Operator = NewOrdinal(valuesOp(schema, rows...), "__rf_ord")
	op = &Sort{Input: op, Keys: sortKeys, SharedClass: 1}
	w := NewWindow(op, pb, ob, funcs)
	w.Shared = true
	w.PreSorted = preSorted
	w.OrdinalCol = ordCol
	w.Class = 1
	return NewRestore(w, ordCol)
}

// diffSharedUnshared collects both plans and requires bit-identical output.
func diffSharedUnshared(t *testing.T, label string, schema *expr.Schema, rows []sqltypes.Row, pb []expr.Expr, ob, sortKeys []SortKey, funcs []WindowFunc, preSorted bool) {
	t.Helper()
	want, err := Collect(NewWindow(valuesOp(schema, rows...), pb, ob, funcs))
	if err != nil {
		t.Fatalf("%s: unshared: %v", label, err)
	}
	got, err := Collect(sharedStack(schema, rows, pb, ob, sortKeys, funcs, preSorted))
	if err != nil {
		t.Fatalf("%s: shared: %v", label, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Fatalf("%s: row %d = %s, want %s", label, i, got[i], want[i])
		}
	}
}

// keysOf compiles column names into partition expressions.
func keysOf(t *testing.T, schema *expr.Schema, cols ...string) []expr.Expr {
	t.Helper()
	out := make([]expr.Expr, len(cols))
	for i, c := range cols {
		e, err := expr.Compile(mustExpr(t, c), schema)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = e
	}
	return out
}

func sortKeysOf(t *testing.T, schema *expr.Schema, specs ...string) []SortKey {
	t.Helper()
	out := make([]SortKey, len(specs))
	for i, s := range specs {
		name, desc := s, false
		if strings.HasSuffix(s, " DESC") {
			name, desc = strings.TrimSuffix(s, " DESC"), true
		}
		e, err := expr.Compile(mustExpr(t, name), schema)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = SortKey{Expr: e, Desc: desc}
	}
	return out
}

func sumCum(arg expr.Expr) []WindowFunc {
	return []WindowFunc{{Name: "SUM", Arg: arg, Frame: DefaultFrame(true), OutName: "w"}}
}

// pkvSchema is the shared three-column fixture: p (partition), k (order), v
// (value).
func pkvSchema(pTyp, kTyp sqltypes.Type) *expr.Schema {
	return expr.NewSchema(
		expr.ColInfo{Name: "p", Type: pTyp},
		expr.ColInfo{Name: "k", Type: kTyp},
		expr.ColInfo{Name: "v", Type: sqltypes.Int},
	)
}

// TestSharedWindowTiesMatchUnshared: the shared sort refines the window's
// ORDER BY with an extra key, so rows tying on k arrive in refined order; tie
// normalization must restore the unshared (input-order) tie-break, which is
// observable through the cumulative ROWS frame.
func TestSharedWindowTiesMatchUnshared(t *testing.T) {
	schema := pkvSchema(sqltypes.Int, sqltypes.Int)
	var rows []sqltypes.Row
	// Many duplicate (p, k) pairs with distinct v: the refinement key v
	// reorders ties unless normalization undoes it.
	for i := 0; i < 40; i++ {
		rows = append(rows, intRow(int64(i%3), int64(i%4), int64(37-i)))
	}
	pb := keysOf(t, schema, "p")
	ob := sortKeysOf(t, schema, "k")
	shared := sortKeysOf(t, schema, "p", "k", "v DESC") // refined class sort
	diffSharedUnshared(t, "ties", schema, rows, pb, ob, shared, sumCum(keysOf(t, schema, "v")[0]), true)
}

// TestSharedWindowNaNPartitionKeys: NaN partition keys force the hash
// fallback (Equal treats NaN as equal to any numeric, so boundary detection
// is unsound); results must still match the unshared plan exactly.
func TestSharedWindowNaNPartitionKeys(t *testing.T) {
	schema := pkvSchema(sqltypes.Float, sqltypes.Int)
	nan := math.NaN()
	var rows []sqltypes.Row
	for i := 0; i < 24; i++ {
		p := float64(i % 3)
		if i%5 == 0 {
			p = nan
		}
		rows = append(rows, sqltypes.Row{sqltypes.NewFloat(p), sqltypes.NewInt(int64(i % 4)), sqltypes.NewInt(int64(i))})
	}
	pb := keysOf(t, schema, "p")
	ob := sortKeysOf(t, schema, "k")
	shared := sortKeysOf(t, schema, "p", "k")
	w := sharedStack(schema, rows, pb, ob, shared, sumCum(keysOf(t, schema, "v")[0]), true)
	diffSharedUnshared(t, "nan-partition", schema, rows, pb, ob, shared, sumCum(keysOf(t, schema, "v")[0]), true)
	// The fallback is observable: the run counts as a performed sort, not a
	// shared consumption.
	stats := &WindowStats{}
	findWindow(w).Stats = stats
	if _, err := Collect(w); err != nil {
		t.Fatal(err)
	}
	if stats.SortsPerformed.Load() != 1 || stats.SortsShared.Load() != 0 {
		t.Fatalf("NaN fallback stats: performed=%d shared=%d, want 1/0",
			stats.SortsPerformed.Load(), stats.SortsShared.Load())
	}
}

// findWindow digs the Window operator out of a shared stack.
func findWindow(op Operator) *Window {
	for op != nil {
		if w, ok := op.(*Window); ok {
			return w
		}
		kids := op.Children()
		if len(kids) == 0 {
			return nil
		}
		op = kids[0]
	}
	return nil
}

// TestSharedWindowNaNOrderKeys: NaN order keys defeat tie-run detection; the
// pre-sorted path must fall back to the full per-partition sort and still
// match the unshared plan (which takes the comparator path on the same data).
func TestSharedWindowNaNOrderKeys(t *testing.T) {
	schema := pkvSchema(sqltypes.Int, sqltypes.Float)
	nan := math.NaN()
	var rows []sqltypes.Row
	for i := 0; i < 24; i++ {
		k := float64(i % 4)
		if i%6 == 0 {
			k = nan
		}
		rows = append(rows, sqltypes.Row{sqltypes.NewInt(int64(i % 3)), sqltypes.NewFloat(k), sqltypes.NewInt(int64(i))})
	}
	pb := keysOf(t, schema, "p")
	ob := sortKeysOf(t, schema, "k")
	shared := sortKeysOf(t, schema, "p", "k")
	diffSharedUnshared(t, "nan-order", schema, rows, pb, ob, shared, sumCum(keysOf(t, schema, "v")[0]), true)
}

// TestSharedWindowNegativeZeroPartitionKeys: -0.0 and +0.0 are Equal but hash
// to different partitions in the unshared plan; the shared path must fall
// back to hashing so both plans split them identically.
func TestSharedWindowNegativeZeroPartitionKeys(t *testing.T) {
	schema := pkvSchema(sqltypes.Float, sqltypes.Int)
	negz := math.Copysign(0, -1)
	var rows []sqltypes.Row
	for i := 0; i < 20; i++ {
		p := 0.0
		if i%2 == 0 {
			p = negz
		}
		rows = append(rows, sqltypes.Row{sqltypes.NewFloat(p), sqltypes.NewInt(int64(i % 4)), sqltypes.NewInt(int64(i))})
	}
	pb := keysOf(t, schema, "p")
	ob := sortKeysOf(t, schema, "k")
	shared := sortKeysOf(t, schema, "p", "k")
	diffSharedUnshared(t, "negzero", schema, rows, pb, ob, shared, sumCum(keysOf(t, schema, "v")[0]), true)
}

// TestSharedWindowMixedIntFloatKeys: an Int/Float mix defeats the byte
// encoding (1 and 1.0 compare equal but encode differently), forcing the
// comparator path in both plans; results must agree.
func TestSharedWindowMixedIntFloatKeys(t *testing.T) {
	schema := pkvSchema(sqltypes.Int, sqltypes.Float) // declared Float, holds a mix
	var rows []sqltypes.Row
	for i := 0; i < 24; i++ {
		var k sqltypes.Datum
		if i%2 == 0 {
			k = sqltypes.NewInt(int64(i % 4))
		} else {
			k = sqltypes.NewFloat(float64(i % 4))
		}
		rows = append(rows, sqltypes.Row{sqltypes.NewInt(int64(i % 3)), k, sqltypes.NewInt(int64(i))})
	}
	pb := keysOf(t, schema, "p")
	ob := sortKeysOf(t, schema, "k")
	shared := sortKeysOf(t, schema, "p", "k")
	diffSharedUnshared(t, "int-float-mix", schema, rows, pb, ob, shared, sumCum(keysOf(t, schema, "v")[0]), true)
}

// TestSharedWindowSegmentedResort: the stream is sorted for another spec of
// the same class (same partition set, different order), so the operator runs
// PreSorted=false — it reuses the contiguous partitions and re-sorts each
// segment. Results must match the unshared plan, including DESC-vs-ASC on
// the same key.
func TestSharedWindowSegmentedResort(t *testing.T) {
	schema := pkvSchema(sqltypes.Int, sqltypes.Int)
	var rows []sqltypes.Row
	for i := 0; i < 30; i++ {
		rows = append(rows, intRow(int64(i%4), int64(i%5), int64(i)))
	}
	pb := keysOf(t, schema, "p")
	for _, spec := range []string{"k", "k DESC"} {
		ob := sortKeysOf(t, schema, spec)
		// The class sort orders by a different key entirely.
		shared := sortKeysOf(t, schema, "p", "v DESC")
		diffSharedUnshared(t, "segmented/"+spec, schema, rows, pb, ob, shared,
			sumCum(keysOf(t, schema, "v")[0]), false)
	}
}

// TestSharedWindowNoOrder: OVER (PARTITION BY p) with no ORDER BY — the
// shared consumer must restore input order within each partition (whole-
// partition frames are order-insensitive, but ROWS frames over the explicit
// frame clause are not).
func TestSharedWindowNoOrder(t *testing.T) {
	schema := pkvSchema(sqltypes.Int, sqltypes.Int)
	var rows []sqltypes.Row
	for i := 0; i < 20; i++ {
		rows = append(rows, intRow(int64(i%3), int64(i%4), int64(i)))
	}
	pb := keysOf(t, schema, "p")
	frame := FrameSpec{
		Start: FrameBound{Kind: BoundPreceding, Offset: 1},
		End:   FrameBound{Kind: BoundCurrentRow},
	}
	funcs := []WindowFunc{{Name: "SUM", Arg: keysOf(t, schema, "v")[0], Frame: frame, OutName: "w"}}
	shared := sortKeysOf(t, schema, "p")
	diffSharedUnshared(t, "no-order", schema, rows, pb, nil, shared, funcs, true)
}

// TestOrdinalRestoreRoundTrip: the bracket alone (no windows) is an identity
// — Ordinal appends the position column, Restore strips it and re-emits the
// original order even after an intervening sort.
func TestOrdinalRestoreRoundTrip(t *testing.T) {
	schema := pkvSchema(sqltypes.Int, sqltypes.Int)
	var rows []sqltypes.Row
	for i := 0; i < 15; i++ {
		rows = append(rows, intRow(int64(14-i), int64(i%3), int64(i)))
	}
	ord := NewOrdinal(valuesOp(schema, rows...), "__rf_ord")
	if got, want := len(ord.Schema().Cols), 4; got != want {
		t.Fatalf("ordinal schema has %d cols, want %d", got, want)
	}
	s := &Sort{Input: ord, Keys: sortKeysOf(t, schema, "p")}
	r := NewRestore(s, 3)
	if got, want := len(r.Schema().Cols), 3; got != want {
		t.Fatalf("restore schema has %d cols, want %d", got, want)
	}
	out, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(rows) {
		t.Fatalf("%d rows, want %d", len(out), len(rows))
	}
	for i := range rows {
		if out[i].String() != rows[i].String() {
			t.Fatalf("row %d = %s, want %s", i, out[i], rows[i])
		}
	}
}

// TestRestoreRejectsBadOrdinals: Restore validates the ordinal column is a
// permutation — duplicates, out-of-range values, and non-integers are plan
// bugs surfaced as errors, not silent misplacement.
func TestRestoreRejectsBadOrdinals(t *testing.T) {
	schema := expr.NewSchema(
		expr.ColInfo{Name: "v", Type: sqltypes.Int},
		expr.ColInfo{Name: "ord", Type: sqltypes.Int},
	)
	cases := []struct {
		name string
		rows []sqltypes.Row
	}{
		{"duplicate", []sqltypes.Row{intRow(10, 0), intRow(11, 0)}},
		{"out-of-range", []sqltypes.Row{intRow(10, 0), intRow(11, 7)}},
		{"non-int", []sqltypes.Row{{sqltypes.NewInt(10), sqltypes.NewString("x")}}},
	}
	for _, tc := range cases {
		r := NewRestore(valuesOp(schema, tc.rows...), 1)
		if _, err := Collect(r); err == nil {
			t.Fatalf("%s: Collect succeeded, want permutation error", tc.name)
		}
	}
}

// TestSharedWindowStatsCounters pins the telemetry split: a pre-sorted
// consumer counts SortsShared, a segmented one SortsSegmented, and the class
// Sort itself SortsPerformed.
func TestSharedWindowStatsCounters(t *testing.T) {
	schema := pkvSchema(sqltypes.Int, sqltypes.Int)
	var rows []sqltypes.Row
	for i := 0; i < 12; i++ {
		rows = append(rows, intRow(int64(i%3), int64(i%4), int64(i)))
	}
	pb := keysOf(t, schema, "p")
	for _, tc := range []struct {
		preSorted                   bool
		wantShared, wantSegmented   int64
	}{
		{true, 1, 0},
		{false, 0, 1},
	} {
		stats := &WindowStats{}
		op := sharedStack(schema, rows, pb, sortKeysOf(t, schema, "k"),
			sortKeysOf(t, schema, "p", "k"), sumCum(keysOf(t, schema, "v")[0]), tc.preSorted)
		w := findWindow(op)
		w.Stats = stats
		sortOp := w.Input.(*Sort)
		sortOp.WinStats = stats
		if _, err := Collect(op); err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("preSorted=%v", tc.preSorted)
		if got := stats.SortsPerformed.Load(); got != 1 {
			t.Fatalf("%s: SortsPerformed = %d, want 1 (the class sort)", label, got)
		}
		if got := stats.SortsShared.Load(); got != tc.wantShared {
			t.Fatalf("%s: SortsShared = %d, want %d", label, got, tc.wantShared)
		}
		if got := stats.SortsSegmented.Load(); got != tc.wantSegmented {
			t.Fatalf("%s: SortsSegmented = %d, want %d", label, got, tc.wantSegmented)
		}
	}
}
