module rfview

go 1.22
