// Package bench contains the workload generators and experiment drivers that
// regenerate the paper's evaluation: Table 1 (computing sequence data from
// raw tables — native reporting functionality vs. the Fig. 2 self-join
// simulation, with and without a position index) and Table 2 (deriving a
// sequence query from a materialized sequence view — MaxOA vs. MinOA,
// disjunctive join predicate vs. UNION of simple-predicate queries).
//
// Absolute durations are machine-dependent; the experiments reproduce the
// paper's *shape*: who wins, how the strategies scale, and where behaviour
// crosses over. EXPERIMENTS.md records a paper-vs-measured comparison.
package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"rfview/internal/engine"
	"rfview/internal/sqltypes"
)

// LoadSequenceTable creates seq(pos INTEGER, val INTEGER) with n rows of
// uniform random values (deterministic per seed) inside the engine.
func LoadSequenceTable(e *engine.Engine, n int, seed int64) error {
	if _, err := e.Exec(`CREATE TABLE seq (pos INTEGER, val INTEGER)`); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	const chunk = 1000
	for lo := 1; lo <= n; lo += chunk {
		hi := lo + chunk - 1
		if hi > n {
			hi = n
		}
		var b strings.Builder
		b.WriteString("INSERT INTO seq (pos, val) VALUES ")
		for i := lo; i <= hi; i++ {
			if i > lo {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d)", i, rng.Intn(1000))
		}
		if _, err := e.Exec(b.String()); err != nil {
			return err
		}
	}
	return nil
}

// CreditCardConfig sizes the warehouse workload of the paper's introduction.
type CreditCardConfig struct {
	Customers    int
	Locations    int
	Transactions int
	Seed         int64
}

// LoadCreditCard creates and fills the intro's schema: c_transactions
// (credit-card transactions) and l_locations (shop → city/region mapping).
func LoadCreditCard(e *engine.Engine, cfg CreditCardConfig) error {
	stmts := `
	  CREATE TABLE c_transactions (c_custid INTEGER, c_locid INTEGER, c_date DATE, c_transaction INTEGER);
	  CREATE TABLE l_locations (l_locid INTEGER, l_city VARCHAR(30), l_region VARCHAR(30));
	`
	if _, err := e.ExecAll(stmts); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	regions := []string{"Bavaria", "Saxony", "Hesse", "Berlin"}
	cities := []string{"Erlangen", "Dresden", "Frankfurt", "Berlin", "Munich", "Leipzig"}
	var b strings.Builder
	b.WriteString("INSERT INTO l_locations VALUES ")
	for l := 1; l <= cfg.Locations; l++ {
		if l > 1 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, '%s', '%s')", l,
			cities[rng.Intn(len(cities))], regions[rng.Intn(len(regions))])
	}
	if _, err := e.Exec(b.String()); err != nil {
		return err
	}
	const chunk = 500
	for lo := 0; lo < cfg.Transactions; lo += chunk {
		hi := lo + chunk
		if hi > cfg.Transactions {
			hi = cfg.Transactions
		}
		var tb strings.Builder
		tb.WriteString("INSERT INTO c_transactions VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				tb.WriteString(", ")
			}
			day := 1 + rng.Intn(28)
			month := 1 + rng.Intn(12)
			fmt.Fprintf(&tb, "(%d, %d, DATE '2001-%02d-%02d', %d)",
				1+rng.Intn(cfg.Customers), 1+rng.Intn(cfg.Locations),
				month, day, 5+rng.Intn(500))
		}
		if _, err := e.Exec(tb.String()); err != nil {
			return err
		}
	}
	return nil
}

// timeQuery runs the query enough times to get a stable reading and returns
// the fastest observed duration plus the rows of the last run.
func timeQuery(e *engine.Engine, sql string, minReps int) (time.Duration, []sqltypes.Row, error) {
	best := time.Duration(0)
	var rows []sqltypes.Row
	reps := 0
	var total time.Duration
	for reps < minReps || (total < 30*time.Millisecond && reps < 20) {
		start := time.Now()
		res, err := e.Exec(sql)
		d := time.Since(start)
		if err != nil {
			return 0, nil, err
		}
		rows = res.Rows
		if best == 0 || d < best {
			best = d
		}
		total += d
		reps++
	}
	return best, rows, nil
}

// sameSeries reports whether two (pos, value) result sets agree.
func sameSeries(a, b []sqltypes.Row) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[int64]float64, len(a))
	for _, r := range a {
		am[r[0].Int()] = r[1].Float()
	}
	for _, r := range b {
		v, ok := am[r[0].Int()]
		if !ok {
			return false
		}
		d := v - r[1].Float()
		if d < -1e-6 || d > 1e-6 {
			return false
		}
	}
	return true
}
