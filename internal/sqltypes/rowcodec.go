package sqltypes

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Row value codec for the spill layer: a compact, self-delimiting encoding
// of a whole row, paired with the memcomparable EncodeKey bytes inside a
// spill run record. Unlike EncodeKey this encoding is not order-preserving —
// it only needs to round-trip exactly, so every datum decodes back to a
// value Equal (and bit-identical for floats, NaN included) to the original.
//
// Layout: uvarint column count, then per column a type tag byte followed by
//
//	Null          nothing
//	Bool/Int/Date zigzag varint
//	Float         8 bytes little-endian IEEE 754 bits
//	String        uvarint length ++ bytes

// EncodeRowData appends the encoding of r to dst and returns the extended
// slice.
func EncodeRowData(dst []byte, r Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for _, d := range r {
		dst = append(dst, byte(d.typ))
		switch d.typ {
		case Null:
		case Bool, Int, Date:
			dst = binary.AppendVarint(dst, d.i)
		case Float:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d.f))
		case String:
			dst = binary.AppendUvarint(dst, uint64(len(d.s)))
			dst = append(dst, d.s...)
		}
	}
	return dst
}

// DecodeRowData decodes one row from data, which must contain exactly one
// encoded row (the spill record framing delimits it).
func DecodeRowData(data []byte) (Row, error) {
	n, off := binary.Uvarint(data)
	if off <= 0 {
		return nil, fmt.Errorf("sqltypes: corrupt row (column count)")
	}
	if n > uint64(len(data)) { // each column needs at least its tag byte
		return nil, fmt.Errorf("sqltypes: corrupt row (%d columns in %d bytes)", n, len(data))
	}
	row := make(Row, n)
	for i := range row {
		if off >= len(data) {
			return nil, fmt.Errorf("sqltypes: corrupt row (truncated at column %d)", i)
		}
		typ := Type(data[off])
		off++
		switch typ {
		case Null:
		case Bool, Int, Date:
			v, k := binary.Varint(data[off:])
			if k <= 0 {
				return nil, fmt.Errorf("sqltypes: corrupt row (bad varint at column %d)", i)
			}
			off += k
			row[i] = Datum{typ: typ, i: v}
		case Float:
			if len(data)-off < 8 {
				return nil, fmt.Errorf("sqltypes: corrupt row (truncated float at column %d)", i)
			}
			row[i] = Datum{typ: Float, f: math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))}
			off += 8
		case String:
			l, k := binary.Uvarint(data[off:])
			if k <= 0 || uint64(len(data)-off-k) < l {
				return nil, fmt.Errorf("sqltypes: corrupt row (bad string at column %d)", i)
			}
			off += k
			row[i] = Datum{typ: String, s: string(data[off : off+int(l)])}
			off += int(l)
		default:
			return nil, fmt.Errorf("sqltypes: corrupt row (type tag %d at column %d)", typ, i)
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("sqltypes: corrupt row (%d trailing bytes)", len(data)-off)
	}
	return row, nil
}

// MemSize estimates the resident bytes of the row for budget accounting:
// the Datum headers plus string payloads. An estimate, not an exact
// allocator count — the budget only needs proportionality.
func (r Row) MemSize() int64 {
	const datumSize = 40 // struct Datum: tag + int64 + float64 + string header
	n := int64(24) + int64(len(r))*datumSize
	for _, d := range r {
		if d.typ == String {
			n += int64(len(d.s))
		}
	}
	return n
}
