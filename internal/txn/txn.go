// Package txn implements the engine's MVCC transaction machinery: a global
// commit clock, snapshots, version-visibility rules, and the write-set a
// transaction accumulates so commit can stamp every created or deleted row
// version with one epoch, atomically with respect to concurrent readers.
//
// The model is snapshot isolation with first-updater-wins conflict handling
// (which realizes first-committer-wins: the statement that would create the
// second committed version of the same row fails immediately instead of at
// commit). Row versions carry begin/end epochs:
//
//   - a committed stamp is a plain epoch value e <= Infinity;
//   - a pending stamp has the high bit set and carries the owning
//     transaction id, so concurrent snapshots can tell "not yet committed"
//     from "committed before me";
//   - Infinity as an end stamp means "live"; Infinity as a begin stamp means
//     "aborted insert, never visible".
//
// The package deliberately knows nothing about tables or SQL: the storage
// layer implements SlotRef for its row versions, the engine drives the
// commit protocol, and Delta carries logical row images to view maintenance
// and the WAL.
package txn

import (
	"sync/atomic"

	"rfview/internal/sqltypes"
)

// pendingBit tags a stamp as uncommitted; the low 63 bits then hold the
// owning transaction id rather than an epoch.
const pendingBit = uint64(1) << 63

// Infinity is the largest committed epoch value. As an end stamp it means
// the version is live; as a begin stamp it means the insert was aborted and
// the version is visible to no snapshot (no snapshot epoch reaches it).
const Infinity = pendingBit - 1

// Pending reports whether a stamp is an uncommitted claim.
func Pending(stamp uint64) bool { return stamp&pendingBit != 0 }

// PendingStamp builds the uncommitted claim stamp for a transaction.
func PendingStamp(txnID uint64) uint64 { return pendingBit | txnID }

// Owner extracts the transaction id from a pending stamp.
func Owner(stamp uint64) uint64 { return stamp &^ pendingBit }

// Snapshot is an immutable visibility horizon: every version committed at or
// before Epoch is visible, plus the pending writes of TxnID (0 = none). A
// snapshot is what makes reads lock-free — it never changes, so a reader
// consults only the atomic begin/end stamps of each version against it.
type Snapshot struct {
	Epoch uint64
	TxnID uint64
}

// Visible reports whether a version stamped (begin, end) is visible in s.
func Visible(begin, end uint64, s Snapshot) bool {
	if Pending(begin) {
		if s.TxnID == 0 || Owner(begin) != s.TxnID {
			return false // someone else's uncommitted insert
		}
	} else if begin > s.Epoch {
		return false // committed after the snapshot (or aborted: Infinity)
	}
	if Pending(end) {
		if s.TxnID != 0 && Owner(end) == s.TxnID {
			return false // deleted by this transaction itself
		}
		return true // someone else's uncommitted delete: still visible to us
	}
	return end > s.Epoch
}

// Clock is the global commit clock: a single monotone epoch counter. Readers
// load it to build snapshots; committers — which the engine serializes —
// stamp their writes with Now()+1 and Publish it, making the whole
// transaction visible in one atomic store. Tick is the immediate path for
// standalone single-operation writes (storage-layer library use and WAL
// restore), which commit each operation at its own epoch.
type Clock struct{ c atomic.Uint64 }

// NewClock returns a clock at epoch 0.
func NewClock() *Clock { return &Clock{} }

// Now returns the latest published epoch.
func (c *Clock) Now() uint64 { return c.c.Load() }

// Next returns the epoch a committer should stamp with (Now()+1). Callers
// must be serialized with every other committer of tables on this clock.
func (c *Clock) Next() uint64 { return c.c.Load() + 1 }

// Publish makes epoch e the latest. Paired with Next under the committer
// serialization described there.
func (c *Clock) Publish(e uint64) { c.c.Store(e) }

// Tick atomically claims and publishes the next epoch, for single-operation
// immediate commits.
func (c *Clock) Tick() uint64 { return c.c.Add(1) }

// Op distinguishes the two physical write kinds a transaction records.
type Op uint8

// Write kinds.
const (
	OpInsert Op = iota // a new version this txn created (pending begin)
	OpDelete           // a claim on an existing version's end stamp
)

// SlotRef is one physical row version in a transaction's write-set. The
// storage layer implements it: CommitWrite replaces the pending stamp with
// the commit epoch (and maintains the table's live-row count); AbortWrite
// restores the slot as if the claim never happened.
type SlotRef interface {
	CommitWrite(op Op, epoch uint64)
	AbortWrite(op Op)
}

// Bumper is anything whose plan-cache version must advance when a
// transaction touching it commits (the storage layer's tables).
type Bumper interface{ BumpVersion() }

// DeltaKind discriminates logical DML deltas.
type DeltaKind uint8

// Delta kinds.
const (
	DeltaInsert DeltaKind = iota
	DeltaUpdate
	DeltaDelete
)

// Delta is the logical row-image record of one DML statement against one
// table: what view maintenance folds in at commit and what the WAL commit
// record carries so recovery replays exactly the committed effects. Rows
// holds insert or delete images; Before/After hold update image pairs. The
// rows reference the immutable version payloads — never mutate them.
type Delta struct {
	Table         string
	Kind          DeltaKind
	Cols          []string
	Rows          []sqltypes.Row
	Before, After []sqltypes.Row
}

// Txn is one transaction: a fixed snapshot, a write-set of physical slot
// claims, the logical deltas for maintenance and the WAL, and deferred
// publish hooks. A Txn is not safe for concurrent use — it belongs to one
// session, which runs statements sequentially.
type Txn struct {
	ID   uint64
	Snap Snapshot
	// Explicit distinguishes BEGIN…COMMIT transactions from the single-
	// statement auto-commit transactions the engine creates internally.
	Explicit bool

	// Deltas accumulates the logical row images of every completed
	// statement, in order, for commit-time view maintenance and the WAL
	// commit record.
	Deltas []Delta

	writes    []write
	touched   []Bumper
	onPublish []func()
}

type write struct {
	ref SlotRef
	op  Op
}

// Record adds one physical write to the write-set.
func (t *Txn) Record(ref SlotRef, op Op) { t.writes = append(t.writes, write{ref, op}) }

// Touch registers a table for a commit-time version bump (deduplicated; the
// set stays tiny — a transaction touches few tables).
func (t *Txn) Touch(b Bumper) {
	for _, x := range t.touched {
		if x == b {
			return
		}
	}
	t.touched = append(t.touched, b)
}

// OnPublish defers fn to the instant the commit epoch is published, inside
// the engine's publication window — for plan-affecting scalar state (like a
// view's BaseRows) that must flip together with row visibility.
func (t *Txn) OnPublish(fn func()) { t.onPublish = append(t.onPublish, fn) }

// AddDelta appends one statement's logical delta.
func (t *Txn) AddDelta(d Delta) { t.Deltas = append(t.Deltas, d) }

// HasWrites reports whether the transaction changed anything.
func (t *Txn) HasWrites() bool { return len(t.writes) > 0 }

// Mark returns a write-set watermark for statement-level rollback.
func (t *Txn) Mark() (writes, deltas int) { return len(t.writes), len(t.Deltas) }

// AbortTo rolls back every write recorded after a Mark, restoring the slots
// in reverse order, and drops the deltas recorded since. Statement-level
// atomicity: a failed statement unwinds its own writes while the
// transaction stays open.
func (t *Txn) AbortTo(writes, deltas int) {
	for i := len(t.writes) - 1; i >= writes; i-- {
		w := t.writes[i]
		w.ref.AbortWrite(w.op)
	}
	t.writes = t.writes[:writes]
	t.Deltas = t.Deltas[:deltas]
}

// Abort rolls back the whole write-set.
func (t *Txn) Abort() { t.AbortTo(0, 0) }

// CommitStamps replaces every pending stamp in the write-set with the commit
// epoch. The caller (the engine) is responsible for ordering: stamps first,
// then clock publication, then publish hooks and version bumps.
func (t *Txn) CommitStamps(epoch uint64) {
	for _, w := range t.writes {
		w.ref.CommitWrite(w.op, epoch)
	}
}

// RunPublishHooks runs the deferred publish hooks in registration order.
func (t *Txn) RunPublishHooks() {
	for _, fn := range t.onPublish {
		fn()
	}
}

// BumpTouched advances the version counter of every touched table.
func (t *Txn) BumpTouched() {
	for _, b := range t.touched {
		b.BumpVersion()
	}
}
