package spill

import (
	"bytes"
	"container/heap"
	"fmt"
	"io"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"context"
)

// Defaults for Config knobs left zero.
const (
	// defaultMinRunRows is the floor below which a Sorter overdrafts the
	// budget instead of flushing: with a pathologically small limit (or a
	// busy shared budget) flushing one-record runs would turn the external
	// sort into one syscall per row.
	defaultMinRunRows = 128
	// defaultMaxFanIn bounds how many runs one merge pass reads at once;
	// more runs than this triggers intermediate passes that merge batches
	// back into single runs.
	defaultMaxFanIn = 16
	// recOverhead approximates the per-record bookkeeping (offsets slice
	// entry, arena slack) charged on top of the key and payload bytes.
	recOverhead = 32
	// cancelCheckEvery is how many records pass between context checks in
	// Add and merge loops.
	cancelCheckEvery = 256
)

// Stats aggregates spill activity across every Sorter of one engine; the
// engine exposes the counters as rfview_spill_* metrics.
type Stats struct {
	// Runs counts run files flushed to disk.
	Runs atomic.Int64
	// RunBytes counts bytes written to run files (initial runs and
	// intermediate merge passes both count: it is real disk traffic).
	RunBytes atomic.Int64
	// Merges counts merge passes (intermediate and final).
	Merges atomic.Int64
	// MergeNanos accumulates wall time spent inside merge passes.
	MergeNanos atomic.Int64
	// Spills counts operators that spilled at least one run.
	Spills atomic.Int64
}

// Config carries everything a Sorter needs from its engine. The zero value
// (and a nil pointer) disable spilling entirely.
type Config struct {
	// Budget is the shared engine budget; a nil budget or one without a
	// limit means Add never trips and nothing is written to disk.
	Budget *Budget
	// Env owns the temp directory run files are created in.
	Env *Env
	// Stats receives counters; may be nil.
	Stats *Stats
	// ObserveMerge, when set, receives the wall-seconds of each merge pass
	// (the engine points it at the rfview_spill_merge_seconds histogram).
	ObserveMerge func(seconds float64)
	// MinRunRows overrides defaultMinRunRows when positive.
	MinRunRows int
	// MaxFanIn overrides defaultMaxFanIn when > 1.
	MaxFanIn int
}

// Enabled reports whether this configuration can actually spill: it needs a
// directory owner and a budget with a limit to trip.
func (c *Config) Enabled() bool {
	return c != nil && c.Env != nil && c.Budget.Limit() > 0
}

func (c *Config) minRunRows() int {
	if c.MinRunRows > 0 {
		return c.MinRunRows
	}
	return defaultMinRunRows
}

func (c *Config) maxFanIn() int {
	if c.MaxFanIn > 1 {
		return c.MaxFanIn
	}
	return defaultMaxFanIn
}

func (c *Config) observeMerge(d time.Duration) {
	if c.Stats != nil {
		c.Stats.Merges.Add(1)
		c.Stats.MergeNanos.Add(int64(d))
	}
	if c.ObserveMerge != nil {
		c.ObserveMerge(d.Seconds())
	}
}

// recRef locates one record inside a Sorter's arena.
type recRef struct {
	off    int32
	keyLen int32
	len    int32
}

// Iterator streams (key, payload) records in stable key order. Next returns
// io.EOF after the last record; the returned slices are valid only until the
// following Next. Close releases budget and removes run files and must be
// called even after an error.
type Iterator interface {
	Next() (key, payload []byte, err error)
	Close() error
}

// Sorter is a budget-tracked external merge sorter over (key, payload) byte
// pairs. Keys compare with bytes.Compare; records with equal keys come back
// in insertion order (the stable-sort contract the executor relies on).
//
// The lifecycle is Add* → Finish → iterate → Close the iterator; Close on
// the Sorter itself is an abort path that releases everything (safe to defer
// alongside a successful Finish — it becomes a no-op once the iterator owns
// the state).
type Sorter struct {
	ctx context.Context
	cfg *Config

	arena   []byte
	recs    []recRef
	charged int64
	adds    int

	runs        []*os.File // flushed, finished (rewound) run files
	runsFlushed int64      // initial runs only (not intermediate merge outputs)
	runBytes    int64      // bytes in initial runs, for EXPLAIN annotations
	finished    bool
	closed      bool
}

// NewSorter returns a sorter charging cfg.Budget and spilling through
// cfg.Env. ctx is checked periodically during Add and merge; cancellation
// surfaces as ctx.Err() from the failing call.
func NewSorter(ctx context.Context, cfg *Config) *Sorter {
	if cfg == nil {
		cfg = &Config{}
	}
	return &Sorter{ctx: ctx, cfg: cfg}
}

// Spilled reports whether any run hit the disk.
func (s *Sorter) Spilled() bool { return len(s.runs) > 0 || s.runBytes > 0 }

// RunCount returns how many initial runs were flushed.
func (s *Sorter) RunCount() int { return int(s.runsFlushed) }

// SpillBytes returns bytes written to initial runs.
func (s *Sorter) SpillBytes() int64 { return s.runBytes }

// Add appends one record. The key and payload are copied; callers may reuse
// their buffers.
func (s *Sorter) Add(key, payload []byte) error {
	if s.finished || s.closed {
		return fmt.Errorf("spill: Add after Finish/Close")
	}
	s.adds++
	if s.adds%cancelCheckEvery == 0 {
		if err := s.ctx.Err(); err != nil {
			return err
		}
	}
	n := int64(len(key)+len(payload)) + recOverhead
	if !s.cfg.Budget.Charge(n) {
		if s.cfg.Enabled() && len(s.recs) >= s.cfg.minRunRows() {
			if err := s.flushRun(); err != nil {
				return err
			}
		}
		// Either the run was just flushed (freeing our own charge) or the
		// record must be held regardless; overdraft rather than losing it.
		if !s.cfg.Budget.Charge(n) {
			s.cfg.Budget.Force(n)
		}
	}
	s.charged += n
	off := len(s.arena)
	s.arena = append(s.arena, key...)
	s.arena = append(s.arena, payload...)
	s.recs = append(s.recs, recRef{off: int32(off), keyLen: int32(len(key)), len: int32(len(key) + len(payload))})
	return nil
}

// sortRecs stable-sorts the in-memory records by key bytes.
func (s *Sorter) sortRecs() {
	arena := s.arena
	sort.SliceStable(s.recs, func(i, j int) bool {
		a, b := s.recs[i], s.recs[j]
		return bytes.Compare(arena[a.off:a.off+a.keyLen], arena[b.off:b.off+b.keyLen]) < 0
	})
}

// flushRun sorts the buffered records, writes them as one run file, and
// resets the in-memory state (releasing its budget charge).
func (s *Sorter) flushRun() error {
	if len(s.recs) == 0 {
		return nil
	}
	s.sortRecs()
	f, err := s.cfg.Env.CreateRun()
	if err != nil {
		return err
	}
	w := newRunWriter(f)
	for _, r := range s.recs {
		rec := s.arena[r.off : r.off+r.len]
		if err := w.append(rec[:r.keyLen], rec[r.keyLen:]); err != nil {
			closeAndRemove(f)
			return err
		}
	}
	if err := w.finish(); err != nil {
		closeAndRemove(f)
		return err
	}
	if !s.Spilled() {
		if s.cfg.Stats != nil {
			s.cfg.Stats.Spills.Add(1)
		}
	}
	s.runs = append(s.runs, f)
	s.runsFlushed++
	s.runBytes += w.bytes
	if s.cfg.Stats != nil {
		s.cfg.Stats.Runs.Add(1)
		s.cfg.Stats.RunBytes.Add(w.bytes)
	}
	s.cfg.Budget.Release(s.charged)
	s.charged = 0
	s.recs = s.recs[:0]
	s.arena = s.arena[:0]
	return nil
}

// Finish seals the sorter and returns the merged iterator. On success the
// iterator owns the budget charge and run files; the Sorter's own Close
// becomes a no-op.
func (s *Sorter) Finish() (Iterator, error) {
	if s.finished || s.closed {
		return nil, fmt.Errorf("spill: Finish after Finish/Close")
	}
	if len(s.runs) == 0 {
		// Pure in-memory sort: nothing ever hit the disk.
		s.sortRecs()
		s.finished = true
		it := &memIter{budget: s.cfg.Budget, charged: s.charged, arena: s.arena, recs: s.recs}
		s.charged = 0
		return it, nil
	}
	if err := s.flushRun(); err != nil {
		return nil, err
	}
	s.finished = true
	runs := s.runs
	s.runs = nil
	// Intermediate passes keep the final fan-in bounded. Each pass merges
	// consecutive batches and keeps the outputs in batch order: run order is
	// insertion order, and the tie-break in the merge heap leans on it, so
	// reordering runs here would break the stable-sort contract.
	fanIn := s.cfg.maxFanIn()
	for len(runs) > fanIn {
		next := runs[:0]
		for start := 0; start < len(runs); start += fanIn {
			end := start + fanIn
			if end > len(runs) {
				end = len(runs)
			}
			if end-start == 1 {
				next = append(next, runs[start])
				continue
			}
			batch := append([]*os.File(nil), runs[start:end]...)
			merged, err := s.mergePass(batch) // removes the batch's inputs
			if err != nil {
				closeAndRemoveAll(next)
				closeAndRemoveAll(runs[end:])
				return nil, err
			}
			next = append(next, merged)
		}
		runs = next
	}
	return newMergeIter(s.ctx, s.cfg, runs), nil
}

// mergePass merges a batch of runs into one new run file, removing the
// inputs.
func (s *Sorter) mergePass(in []*os.File) (*os.File, error) {
	start := time.Now()
	out, err := s.cfg.Env.CreateRun()
	if err != nil {
		return nil, err
	}
	w := newRunWriter(out)
	err = mergeRuns(s.ctx, in, func(key, payload []byte) error {
		return w.append(key, payload)
	})
	if err == nil {
		err = w.finish()
	}
	closeAndRemoveAll(in)
	if err != nil {
		closeAndRemove(out)
		return nil, err
	}
	if s.cfg.Stats != nil {
		// Intermediate output is real disk traffic but not a fresh spill run.
		s.cfg.Stats.RunBytes.Add(w.bytes)
	}
	s.cfg.observeMerge(time.Since(start))
	return out, nil
}

// Close aborts the sorter: budget released, run files removed. A no-op after
// a successful Finish (the iterator owns cleanup then).
func (s *Sorter) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.cfg.Budget.Release(s.charged)
	s.charged = 0
	s.arena = nil
	s.recs = nil
	closeAndRemoveAll(s.runs)
	s.runs = nil
	return nil
}

func closeAndRemove(f *os.File) {
	name := f.Name()
	f.Close()
	os.Remove(name)
}

func closeAndRemoveAll(fs []*os.File) {
	for _, f := range fs {
		closeAndRemove(f)
	}
}

// memIter iterates the pure in-memory case.
type memIter struct {
	budget  *Budget
	charged int64
	arena   []byte
	recs    []recRef
	pos     int
}

func (m *memIter) Next() (key, payload []byte, err error) {
	if m.pos >= len(m.recs) {
		return nil, nil, io.EOF
	}
	r := m.recs[m.pos]
	m.pos++
	rec := m.arena[r.off : r.off+r.len]
	return rec[:r.keyLen], rec[r.keyLen:], nil
}

func (m *memIter) Close() error {
	m.budget.Release(m.charged)
	m.charged = 0
	m.arena = nil
	m.recs = nil
	m.pos = 0
	return nil
}

// cursor is one run's head inside the merge heap.
type cursor struct {
	r       *runReader
	f       *os.File
	idx     int // run index; ties break toward the earlier run (stability)
	key     []byte
	payload []byte
}

// mergeHeap orders cursors by (key bytes, run index).
type mergeHeap []*cursor

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if c := bytes.Compare(h[i].key, h[j].key); c != 0 {
		return c < 0
	}
	return h[i].idx < h[j].idx
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(*cursor)) }
func (h *mergeHeap) Pop() any     { old := *h; n := len(old); c := old[n-1]; *h = old[:n-1]; return c }
func (h mergeHeap) peek() *cursor { return h[0] }

// buildHeap opens a cursor per run and heapifies.
func buildHeap(files []*os.File) (mergeHeap, error) {
	h := make(mergeHeap, 0, len(files))
	for i, f := range files {
		c := &cursor{r: newRunReader(f), f: f, idx: i}
		key, payload, err := c.r.next()
		if err == io.EOF {
			continue // empty run (shouldn't happen, but harmless)
		}
		if err != nil {
			return nil, err
		}
		c.key, c.payload = key, payload
		h = append(h, c)
	}
	heap.Init(&h)
	return h, nil
}

// advance moves the heap root to its run's next record (or drops the run at
// EOF) and restores heap order.
func (h *mergeHeap) advance() error {
	c := h.peek()
	key, payload, err := c.r.next()
	if err == io.EOF {
		heap.Pop(h)
		return nil
	}
	if err != nil {
		return err
	}
	c.key, c.payload = key, payload
	heap.Fix(h, 0)
	return nil
}

// mergeRuns streams the merged record sequence of files through emit.
func mergeRuns(ctx context.Context, files []*os.File, emit func(key, payload []byte) error) error {
	h, err := buildHeap(files)
	if err != nil {
		return err
	}
	n := 0
	for len(h) > 0 {
		n++
		if n%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		c := h.peek()
		if err := emit(c.key, c.payload); err != nil {
			return err
		}
		if err := h.advance(); err != nil {
			return err
		}
	}
	return nil
}

// mergeIter is the streaming final merge over the surviving runs.
type mergeIter struct {
	ctx    context.Context
	cfg    *Config
	files  []*os.File
	h      mergeHeap
	opened bool
	n      int
	start  time.Time
	closed bool
}

func newMergeIter(ctx context.Context, cfg *Config, files []*os.File) *mergeIter {
	return &mergeIter{ctx: ctx, cfg: cfg, files: files, start: time.Now()}
}

func (m *mergeIter) Next() (key, payload []byte, err error) {
	if m.closed {
		return nil, nil, fmt.Errorf("spill: iterator closed")
	}
	if !m.opened {
		m.opened = true
		h, err := buildHeap(m.files)
		if err != nil {
			return nil, nil, err
		}
		m.h = h
	} else if len(m.h) > 0 {
		// The previous record aliased the root reader's buffer; only now that
		// the caller is done with it may the reader advance.
		if err := m.h.advance(); err != nil {
			return nil, nil, err
		}
	}
	if len(m.h) == 0 {
		return nil, nil, io.EOF
	}
	m.n++
	if m.n%cancelCheckEvery == 0 {
		if err := m.ctx.Err(); err != nil {
			return nil, nil, err
		}
	}
	c := m.h.peek()
	return c.key, c.payload, nil
}

func (m *mergeIter) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	m.h = nil
	closeAndRemoveAll(m.files)
	m.files = nil
	m.cfg.observeMerge(time.Since(m.start))
	return nil
}
