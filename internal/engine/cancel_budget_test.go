//go:build !race

package engine

import "time"

// cancelLatencyBudget bounds how long a statement may keep running after its
// context is cancelled (the acceptance bound of the observability work).
const cancelLatencyBudget = 100 * time.Millisecond
