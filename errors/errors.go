// Package errors is the stable error surface of the rfview engine: every
// failure a caller may want to branch on carries a Code, and each code has a
// sentinel value usable with the standard library's errors.Is. The server
// protocol transports the code in a dedicated field, and the client maps it
// back to the same sentinels — so
//
//	errors.Is(err, rferrors.ErrStaleView)
//
// holds whether the engine was called in-process or across the wire.
//
// Import with an alias to avoid shadowing the standard library:
//
//	import rferrors "rfview/errors"
package errors

import (
	"context"
	"errors"
	"fmt"
)

// Code is a stable, machine-readable error class. Codes are lowercase
// identifiers so they can travel through the JSON protocol unchanged.
type Code string

// The error codes of the engine.
const (
	// CodeOK is the zero code: no error.
	CodeOK Code = ""
	// CodeParse marks SQL that failed to parse.
	CodeParse Code = "parse"
	// CodeUnknownTable marks references to tables that do not exist.
	CodeUnknownTable Code = "unknown_table"
	// CodeUnknownView marks references to materialized views that do not
	// exist.
	CodeUnknownView Code = "unknown_view"
	// CodeStaleView marks queries refused because a required materialized
	// view is stale and needs REFRESH MATERIALIZED VIEW.
	CodeStaleView Code = "stale_view"
	// CodeNotDerivable marks derivation requests (§3–§5) that no algorithm
	// can answer from the materialized sequence.
	CodeNotDerivable Code = "not_derivable"
	// CodeCancelled marks statements abandoned because the caller's context
	// was cancelled or its deadline expired.
	CodeCancelled Code = "cancelled"
	// CodeUnsupported marks statements the engine recognizes but does not
	// implement.
	CodeUnsupported Code = "unsupported"
	// CodeConflict marks write-write conflicts under snapshot isolation:
	// the statement tried to modify a row version another transaction has
	// already updated or deleted (first-committer-wins). The transaction is
	// rolled back; clients can safely retry it from the top.
	CodeConflict Code = "conflict"
	// CodeTxnState marks transaction-control misuse: COMMIT or ROLLBACK
	// outside a transaction, BEGIN inside one, or a statement kind that is
	// not allowed inside an explicit transaction (DDL, REFRESH).
	CodeTxnState Code = "txn_state"
	// CodeInternal is the catch-all for errors without a more specific class.
	CodeInternal Code = "internal"
)

// Error is a code-carrying error. It may wrap a cause, and two Errors match
// under errors.Is when their codes are equal — which is what makes the
// sentinels below work across wrapping layers and the wire protocol.
type Error struct {
	Code  Code
	Msg   string
	Cause error
}

// Error implements the error interface.
func (e *Error) Error() string {
	switch {
	case e.Msg != "" && e.Cause != nil:
		return e.Msg + ": " + e.Cause.Error()
	case e.Cause != nil:
		return e.Cause.Error()
	default:
		return e.Msg
	}
}

// Unwrap exposes the cause to the errors package.
func (e *Error) Unwrap() error { return e.Cause }

// Is matches any *Error with the same code, so sentinel comparisons work no
// matter how many layers of wrapping sit between the failure and the caller.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code == e.Code
}

// Sentinels, one per code, for errors.Is branching.
var (
	ErrParse        = &Error{Code: CodeParse, Msg: "parse error"}
	ErrUnknownTable = &Error{Code: CodeUnknownTable, Msg: "unknown table"}
	ErrUnknownView  = &Error{Code: CodeUnknownView, Msg: "unknown materialized view"}
	ErrStaleView    = &Error{Code: CodeStaleView, Msg: "stale materialized view"}
	ErrNotDerivable = &Error{Code: CodeNotDerivable, Msg: "not derivable"}
	ErrCancelled    = &Error{Code: CodeCancelled, Msg: "statement cancelled"}
	ErrUnsupported  = &Error{Code: CodeUnsupported, Msg: "unsupported"}
	ErrConflict     = &Error{Code: CodeConflict, Msg: "write-write conflict"}
	ErrTxnState     = &Error{Code: CodeTxnState, Msg: "invalid transaction state"}
)

// New builds a coded error from a format string.
func New(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Wrap attaches a code to an existing error, keeping it reachable through
// errors.Is / errors.As. Wrapping nil returns nil.
func Wrap(code Code, err error) error {
	if err == nil {
		return nil
	}
	return &Error{Code: code, Cause: err}
}

// Wrapf is Wrap with a message prefix.
func Wrapf(code Code, err error, format string, args ...any) error {
	if err == nil {
		return nil
	}
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...), Cause: err}
}

// CodeOf classifies any error: coded errors report their code, bare context
// cancellations map to CodeCancelled, nil maps to CodeOK, and everything else
// is CodeInternal.
func CodeOf(err error) Code {
	if err == nil {
		return CodeOK
	}
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return CodeCancelled
	}
	return CodeInternal
}

// FromCode reconstructs a coded error from its wire form (code + message).
// The client uses it so server-side failures satisfy the same errors.Is
// checks as in-process ones. An empty or unknown code yields CodeInternal.
func FromCode(code Code, msg string) error {
	switch code {
	case CodeParse, CodeUnknownTable, CodeUnknownView, CodeStaleView,
		CodeNotDerivable, CodeCancelled, CodeUnsupported, CodeConflict,
		CodeTxnState:
		return &Error{Code: code, Msg: msg}
	default:
		return &Error{Code: CodeInternal, Msg: msg}
	}
}
