// Package core implements the sequence algebra of Lehner, Hümmer and
// Schlesinger, "Processing Reporting Function Views in a Data Warehouse
// Environment" (ICDE 2002).
//
// A reporting function — an SQL aggregate with an OVER() clause — defines a
// *simple sequence* (S, W, FA) over raw values x_1 … x_n: for every position
// k the sequence value is the aggregate FA applied to the raw values inside
// the window W(k). The paper distinguishes two window shapes:
//
//   - cumulative windows (ROWS UNBOUNDED PRECEDING), where the window at
//     position k is [1, k], and
//   - sliding windows (l, h) (ROWS BETWEEN l PRECEDING AND h FOLLOWING),
//     where the window at position k is [k-l, k+h].
//
// The package provides:
//
//   - computation of complete sequences, naive and pipelined (§2.2),
//   - incremental maintenance of materialized sequences (§2.3),
//   - reconstruction of raw data from materialized sequences (§3),
//   - the MaxOA derivation algorithm, recursive and explicit (§4),
//   - the MinOA derivation algorithm (§5), and
//   - reporting sequences with multi-column ordering and partitioning,
//     including the ordering- and partitioning-reduction lemmas (§6).
//
// Values are float64; all the SUM/COUNT identities are exact when raw values
// are integer-valued (the regime used by every test and benchmark).
package core

import "fmt"

// Agg identifies the aggregation function FA of a sequence.
type Agg uint8

// The aggregation functions considered by the paper. SUM is the canonical
// case: COUNT is the SUM of an all-ones raw sequence, and AVG is SUM/COUNT.
// MIN and MAX are "semi-algebraic": they can be computed and (with MaxOA)
// derived, but admit no subtraction-based pipelining.
const (
	Sum Agg = iota
	Count
	Avg
	Min
	Max
)

// String returns the SQL name of the aggregate.
func (a Agg) String() string {
	switch a {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("Agg(%d)", uint8(a))
	}
}

// Algebraic reports whether the aggregate supports subtraction (an inverse),
// which the pipelined computation of sliding windows and the MinOA
// derivation rely on.
func (a Agg) Algebraic() bool { return a == Sum || a == Count || a == Avg }

// Window is the window specification W of a simple sequence.
//
// A cumulative window (Cumulative == true) spans [1, k] at position k; the
// Preceding and Following fields are ignored. A sliding window spans
// [k-Preceding, k+Following] at position k; the paper writes this as the
// pair (l, h).
type Window struct {
	Cumulative bool
	Preceding  int // l: offset of the lower bound, l >= 0
	Following  int // h: offset of the upper bound, h >= 0
}

// Cumul returns the cumulative window specification.
func Cumul() Window { return Window{Cumulative: true} }

// Sliding returns the sliding window specification (l, h).
func Sliding(l, h int) Window { return Window{Preceding: l, Following: h} }

// Validate checks the constraints the paper places on window specs: for
// sliding windows l >= 0, h >= 0 and l+h > 0 (a size-1 window is the raw
// data itself).
func (w Window) Validate() error {
	if w.Cumulative {
		return nil
	}
	if w.Preceding < 0 || w.Following < 0 {
		return fmt.Errorf("sliding window (%d,%d): bounds must be non-negative", w.Preceding, w.Following)
	}
	if w.Preceding+w.Following == 0 {
		return fmt.Errorf("sliding window (0,0): window size 1 is the identity; l+h must be > 0")
	}
	return nil
}

// Size returns the window size W(k) for sliding windows (constant 1+l+h).
// For cumulative windows the size grows with k and Size returns -1.
func (w Window) Size() int {
	if w.Cumulative {
		return -1
	}
	return 1 + w.Preceding + w.Following
}

// Bounds returns the inclusive raw-data positions [lo, hi] covered by the
// window at sequence position k.
func (w Window) Bounds(k int) (lo, hi int) {
	if w.Cumulative {
		return 1, k
	}
	return k - w.Preceding, k + w.Following
}

// String renders the window the way the paper writes it.
func (w Window) String() string {
	if w.Cumulative {
		return "cumulative"
	}
	return fmt.Sprintf("(%d,%d)", w.Preceding, w.Following)
}

// Equal reports whether two windows are identical.
func (w Window) Equal(o Window) bool {
	if w.Cumulative != o.Cumulative {
		return false
	}
	if w.Cumulative {
		return true
	}
	return w.Preceding == o.Preceding && w.Following == o.Following
}
