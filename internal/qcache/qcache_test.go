package qcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	c := New[int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" must evict it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a evicted wrongly: %d, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("c = %d, %v", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Len != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutReplacesAndTouches(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // replace, and make "a" most recent
	c.Put("c", 3)  // must evict "b"
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
}

func TestRemoveAndPurge(t *testing.T) {
	c := New[string](4)
	c.Put("a", "x")
	c.Put("b", "y")
	c.Remove("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived Remove")
	}
	c.Remove("a") // removing a non-resident key is a no-op
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d", c.Len())
	}
	if st := c.Stats(); st.Invalidations != 2 {
		t.Fatalf("invalidations = %d", st.Invalidations)
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := New[int](0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%32)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Error("negative value")
					return
				}
				c.Put(k, i)
				if i%97 == 0 {
					c.Remove(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("len %d exceeds capacity", c.Len())
	}
}
