package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"rfview/internal/sqltypes"
)

// Parser is a recursive-descent parser over the lexer's token stream.
type Parser struct {
	lex    lexer
	tokens []token
	cur    int
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(sql string) (Statement, error) {
	stmts, err := ParseAll(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated statement list.
func ParseAll(sql string) ([]Statement, error) {
	p := &Parser{lex: lexer{src: sql}}
	for {
		tok, err := p.lex.next()
		if err != nil {
			return nil, err
		}
		p.tokens = append(p.tokens, tok)
		if tok.kind == tkEOF {
			break
		}
	}
	var out []Statement
	for {
		for p.peek().kind == tkOp && p.peek().text == ";" {
			p.advance()
		}
		if p.peek().kind == tkEOF {
			break
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
		if p.peek().kind == tkOp && p.peek().text == ";" {
			continue
		}
		if p.peek().kind != tkEOF {
			return nil, p.errHere("unexpected input after statement: %q", p.peek().text)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty statement")
	}
	return out, nil
}

// ParseExpr parses a standalone scalar expression (used by tests and the
// rewriter).
func ParseExpr(sql string) (Expr, error) {
	p := &Parser{lex: lexer{src: sql}}
	for {
		tok, err := p.lex.next()
		if err != nil {
			return nil, err
		}
		p.tokens = append(p.tokens, tok)
		if tok.kind == tkEOF {
			break
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tkEOF {
		return nil, p.errHere("unexpected input after expression: %q", p.peek().text)
	}
	return e, nil
}

func (p *Parser) peek() token { return p.tokens[p.cur] }
func (p *Parser) peek2() token {
	if p.cur+1 < len(p.tokens) {
		return p.tokens[p.cur+1]
	}
	return p.tokens[len(p.tokens)-1]
}

func (p *Parser) advance() token {
	t := p.tokens[p.cur]
	if p.cur < len(p.tokens)-1 {
		p.cur++
	}
	return t
}

func (p *Parser) errHere(format string, args ...any) error {
	return p.lex.errorf(p.peek().pos, format, args...)
}

// atKeyword reports whether the current token is the given keyword.
func (p *Parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tkKeyword && t.text == kw
}

// acceptKeyword consumes the keyword if present.
func (p *Parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errHere("expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *Parser) atOp(op string) bool {
	t := p.peek()
	return t.kind == tkOp && t.text == op
}

func (p *Parser) acceptOp(op string) bool {
	if p.atOp(op) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errHere("expected %q, found %q", op, p.peek().text)
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tkIdent {
		return "", p.errHere("expected identifier, found %q", t.text)
	}
	p.advance()
	return t.text, nil
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.atKeyword("SELECT"):
		return p.parseSelectStatement()
	case p.atKeyword("EXPLAIN"):
		p.advance()
		analyze := p.acceptKeyword("ANALYZE")
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: inner, Analyze: analyze}, nil
	case p.atKeyword("CREATE"):
		return p.parseCreate()
	case p.atKeyword("DROP"):
		return p.parseDrop()
	case p.atKeyword("REFRESH"):
		p.advance()
		if err := p.expectKeyword("MATERIALIZED"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &RefreshMatView{Name: name}, nil
	case p.atKeyword("INSERT"):
		return p.parseInsert()
	case p.atKeyword("UPDATE"):
		return p.parseUpdate()
	case p.atKeyword("DELETE"):
		return p.parseDelete()
	case p.atKeyword("BEGIN"):
		p.advance()
		p.acceptTxnNoiseWord()
		return &Begin{}, nil
	case p.atKeyword("COMMIT"):
		p.advance()
		p.acceptTxnNoiseWord()
		return &Commit{}, nil
	case p.atKeyword("ROLLBACK"):
		p.advance()
		p.acceptTxnNoiseWord()
		return &Rollback{}, nil
	default:
		return nil, p.errHere("expected a statement, found %q", p.peek().text)
	}
}

// acceptTxnNoiseWord swallows the optional TRANSACTION / WORK after BEGIN,
// COMMIT, and ROLLBACK.
func (p *Parser) acceptTxnNoiseWord() {
	if !p.acceptKeyword("TRANSACTION") {
		p.acceptKeyword("WORK")
	}
}

func (p *Parser) parseCreate() (Statement, error) {
	p.advance() // CREATE
	unique := p.acceptKeyword("UNIQUE")
	switch {
	case p.acceptKeyword("TABLE"):
		if unique {
			return nil, p.errHere("UNIQUE applies to indexes, not tables")
		}
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex(unique)
	case p.acceptKeyword("MATERIALIZED"):
		if unique {
			return nil, p.errHere("UNIQUE applies to indexes, not views")
		}
		if err := p.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		sel, err := p.parseSelectStatement()
		if err != nil {
			return nil, err
		}
		return &CreateMatView{Name: name, Select: sel}, nil
	default:
		return nil, p.errHere("expected TABLE, INDEX, or MATERIALIZED VIEW after CREATE")
	}
}

func (p *Parser) parseCreateTable() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		colName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		cols = append(cols, ColumnDef{Name: colName, Type: typ})
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CreateTable{Name: name, Columns: cols}, nil
}

func (p *Parser) parseType() (sqltypes.Type, error) {
	t := p.peek()
	if t.kind != tkKeyword {
		return sqltypes.Null, p.errHere("expected a type name, found %q", t.text)
	}
	p.advance()
	switch t.text {
	case "INTEGER", "INT", "BIGINT":
		return sqltypes.Int, nil
	case "FLOAT", "DOUBLE":
		return sqltypes.Float, nil
	case "VARCHAR", "TEXT":
		// Optional length: VARCHAR(30).
		if p.acceptOp("(") {
			if p.peek().kind != tkNumber {
				return sqltypes.Null, p.errHere("expected length after VARCHAR(")
			}
			p.advance()
			if err := p.expectOp(")"); err != nil {
				return sqltypes.Null, err
			}
		}
		return sqltypes.String, nil
	case "DATE":
		return sqltypes.Date, nil
	case "BOOLEAN":
		return sqltypes.Bool, nil
	default:
		return sqltypes.Null, p.errHere("unknown type %q", t.text)
	}
}

func (p *Parser) parseCreateIndex(unique bool) (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Columns: cols, Unique: unique}, nil
}

func (p *Parser) parseDrop() (Statement, error) {
	p.advance() // DROP
	switch {
	case p.acceptKeyword("TABLE"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	case p.acceptKeyword("MATERIALIZED"):
		if err := p.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropMatView{Name: name}, nil
	case p.acceptKeyword("INDEX"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropIndex{Name: name, Table: table}, nil
	default:
		return nil, p.errHere("expected TABLE, INDEX, or MATERIALIZED VIEW after DROP")
	}
}

func (p *Parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.acceptOp("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.atKeyword("SELECT") {
		sel, err := p.parseSelectStatement()
		if err != nil {
			return nil, err
		}
		ins.Select = sel
		return ins, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	return ins, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	p.advance() // UPDATE
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	upd := &Update{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assignment{Column: col, Value: val})
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		upd.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return upd, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	p.advance() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.acceptKeyword("WHERE") {
		del.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return del, nil
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

// parseSelectStatement parses a SELECT core, optional UNION chain, and the
// trailing ORDER BY / LIMIT (which bind to the whole union).
func (p *Parser) parseSelectStatement() (SelectStatement, error) {
	left, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	var stmt SelectStatement = left
	for p.atKeyword("UNION") {
		p.advance()
		all := p.acceptKeyword("ALL")
		right, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		stmt = &Union{Left: stmt, Right: right, All: all}
	}
	var orderBy []OrderItem
	var limit Expr
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		orderBy, err = p.parseOrderItems()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("LIMIT") {
		limit, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	switch s := stmt.(type) {
	case *Select:
		s.OrderBy = orderBy
		s.Limit = limit
	case *Union:
		s.OrderBy = orderBy
		s.Limit = limit
	}
	return stmt, nil
}

// parseSelectCore parses SELECT … [FROM …] [WHERE …] [GROUP BY …] [HAVING …]
// without ORDER BY / LIMIT (those attach at the statement level).
func (p *Parser) parseSelectCore() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	sel.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("FROM") {
		from, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	return sel, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.atOp("*") {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	// t.* form.
	if p.peek().kind == tkIdent && p.peek2().kind == tkOp && p.peek2().text == "." {
		save := p.cur
		tbl := p.advance().text
		p.advance() // .
		if p.atOp("*") {
			p.advance()
			return SelectItem{Star: true, Table: tbl}, nil
		}
		p.cur = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().kind == tkIdent {
		item.Alias = p.advance().text
	}
	return item, nil
}

func (p *Parser) parseOrderItems() ([]OrderItem, error) {
	var out []OrderItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		it := OrderItem{Expr: e}
		if p.acceptKeyword("DESC") {
			it.Desc = true
		} else {
			p.acceptKeyword("ASC")
		}
		if p.acceptKeyword("NULLS") {
			switch {
			case p.acceptKeyword("FIRST"):
				it.Nulls = NullsFirst
			case p.acceptKeyword("LAST"):
				it.Nulls = NullsLast
			default:
				return nil, p.errHere("expected FIRST or LAST after NULLS, found %q", p.peek().text)
			}
		}
		out = append(out, it)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// FROM clause
// ---------------------------------------------------------------------------

func (p *Parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp(","):
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			left = &Join{Left: left, Right: right, Type: CrossJoin}
		case p.atKeyword("JOIN") || p.atKeyword("INNER"):
			p.acceptKeyword("INNER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			left = &Join{Left: left, Right: right, Type: InnerJoin, On: on}
		case p.atKeyword("LEFT"):
			p.advance()
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			left = &Join{Left: left, Right: right, Type: LeftOuterJoin, On: on}
		case p.atKeyword("CROSS"):
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			left = &Join{Left: left, Right: right, Type: CrossJoin}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseTablePrimary() (TableExpr, error) {
	if p.acceptOp("(") {
		sel, err := p.parseSelectStatement()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		p.acceptKeyword("AS")
		alias, err := p.expectIdent()
		if err != nil {
			return nil, p.errHere("derived table requires an alias")
		}
		return &DerivedTable{Select: sel, Alias: alias}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	t := &TableName{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t.Alias = alias
	} else if p.peek().kind == tkIdent {
		t.Alias = p.advance().text
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &OrExpr{Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.advance()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &AndExpr{Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Expr: inner}, nil
	}
	return p.parsePredicate()
}

func (p *Parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	negated := false
	if p.atKeyword("NOT") && (p.peek2().text == "IN" || p.peek2().text == "BETWEEN") {
		p.advance()
		negated = true
	}
	switch {
	case p.atOp("=") || p.atOp("<>") || p.atOp("<") || p.atOp("<=") || p.atOp(">") || p.atOp(">="):
		op := p.advance().text
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &ComparisonExpr{Op: op, Left: left, Right: right}, nil
	case p.atKeyword("IN"):
		p.advance()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InExpr{Left: left, List: list, Negated: negated}, nil
	case p.atKeyword("BETWEEN"):
		p.advance()
		from, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		to, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Expr: left, From: from, To: to, Negated: negated}, nil
	case p.atKeyword("IS"):
		p.advance()
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Expr: left, Negated: neg}, nil
	default:
		if negated {
			return nil, p.errHere("expected IN or BETWEEN after NOT")
		}
		return left, nil
	}
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") {
		op := p.advance().text
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atOp("*") || p.atOp("/") {
		op := p.advance().text
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.atOp("-") {
		p.advance()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Expr: inner}, nil
	}
	if p.atOp("+") {
		p.advance()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tkNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errHere("bad numeric literal %q", t.text)
			}
			return &Literal{Val: sqltypes.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errHere("bad integer literal %q", t.text)
		}
		return &Literal{Val: sqltypes.NewInt(i)}, nil
	case tkString:
		p.advance()
		return &Literal{Val: sqltypes.NewString(t.text)}, nil
	case tkKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return &Literal{Val: sqltypes.NullDatum}, nil
		case "TRUE":
			p.advance()
			return &Literal{Val: sqltypes.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Val: sqltypes.NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "DATE":
			// DATE 'YYYY-MM-DD' literal.
			p.advance()
			if p.peek().kind != tkString {
				return nil, p.errHere("expected string after DATE")
			}
			s := p.advance().text
			d, err := sqltypes.ParseDate(s)
			if err != nil {
				return nil, p.errHere("%v", err)
			}
			return &Literal{Val: d}, nil
		}
		return nil, p.errHere("unexpected keyword %q in expression", t.text)
	case tkOp:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errHere("unexpected %q in expression", t.text)
	case tkIdent:
		// Function call?
		if p.peek2().kind == tkOp && p.peek2().text == "(" {
			return p.parseFuncOrWindow()
		}
		p.advance()
		// Qualified column?
		if p.atOp(".") {
			p.advance()
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Name: col}, nil
		}
		return &ColumnRef{Name: t.text}, nil
	default:
		return nil, p.errHere("unexpected end of input in expression")
	}
}

func (p *Parser) parseCase() (Expr, error) {
	p.advance() // CASE
	e := &CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		e.Whens = append(e.Whens, When{Cond: cond, Then: then})
	}
	if len(e.Whens) == 0 {
		return nil, p.errHere("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		els, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		e.Else = els
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *Parser) parseFuncOrWindow() (Expr, error) {
	name := p.advance().text // function name
	p.advance()              // (
	fn := &FuncExpr{Name: strings.ToUpper(name)}
	if p.atOp("*") {
		p.advance()
		fn.Star = true
	} else if !p.atOp(")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fn.Args = append(fn.Args, a)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if !p.atKeyword("OVER") {
		return fn, nil
	}
	p.advance() // OVER
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	w := &WindowExpr{Func: fn}
	if p.acceptKeyword("PARTITION") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			w.PartitionBy = append(w.PartitionBy, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderItems()
		if err != nil {
			return nil, err
		}
		w.OrderBy = items
	}
	if p.acceptKeyword("ROWS") {
		frame, err := p.parseFrame()
		if err != nil {
			return nil, err
		}
		w.Frame = frame
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return w, nil
}

func (p *Parser) parseFrame() (*FrameClause, error) {
	if p.acceptKeyword("BETWEEN") {
		start, err := p.parseFrameBound()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		end, err := p.parseFrameBound()
		if err != nil {
			return nil, err
		}
		return &FrameClause{Start: start, End: end}, nil
	}
	// One-bound shorthand: ROWS <bound> means BETWEEN <bound> AND CURRENT ROW.
	start, err := p.parseFrameBound()
	if err != nil {
		return nil, err
	}
	return &FrameClause{Start: start, End: FrameBound{Type: CurrentRow}}, nil
}

func (p *Parser) parseFrameBound() (FrameBound, error) {
	switch {
	case p.acceptKeyword("UNBOUNDED"):
		switch {
		case p.acceptKeyword("PRECEDING"):
			return FrameBound{Type: UnboundedPreceding}, nil
		case p.acceptKeyword("FOLLOWING"):
			return FrameBound{Type: UnboundedFollowing}, nil
		default:
			return FrameBound{}, p.errHere("expected PRECEDING or FOLLOWING after UNBOUNDED")
		}
	case p.acceptKeyword("CURRENT"):
		if err := p.expectKeyword("ROW"); err != nil {
			return FrameBound{}, err
		}
		return FrameBound{Type: CurrentRow}, nil
	case p.peek().kind == tkNumber:
		n, err := strconv.Atoi(p.advance().text)
		if err != nil || n < 0 {
			return FrameBound{}, p.errHere("frame offset must be a non-negative integer")
		}
		switch {
		case p.acceptKeyword("PRECEDING"):
			return FrameBound{Type: OffsetPreceding, Offset: n}, nil
		case p.acceptKeyword("FOLLOWING"):
			return FrameBound{Type: OffsetFollowing, Offset: n}, nil
		default:
			return FrameBound{}, p.errHere("expected PRECEDING or FOLLOWING after frame offset")
		}
	default:
		return FrameBound{}, p.errHere("bad frame bound near %q", p.peek().text)
	}
}
