// Incremental maintenance: the §2.3 rules in action. A materialized
// reporting-function view absorbs a stream of base-table changes — value
// updates, appends, suffix deletes through plain SQL DML, and the paper's
// positional shift-insert/shift-delete through the view manager — while
// every derived query stays correct. The example also shows the locality the
// paper argues for: an update touches only l+h+1 view positions.
//
// Run with: go run ./examples/maintenance
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"rfview"
)

func main() {
	ctx := context.Background()
	db := rfview.OpenDefault()
	const n = 2000
	load(ctx, db, n)
	if _, err := db.ExecContext(ctx, `CREATE MATERIALIZED VIEW mv AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 2 FOLLOWING) AS val
	  FROM seq`); err != nil {
		log.Fatal(err)
	}
	mgr := db.Engine().Views

	fmt.Printf("materialized mv = (3,2) over %d rows; window size W = 6\n\n", n)

	// 1. Value updates: the §2.3 update rule touches exactly W positions.
	before := mgr.MaintenanceEvents
	for i := 0; i < 50; i++ {
		pos := 10 + i*37%n
		if _, err := db.ExecContext(ctx, fmt.Sprintf(`UPDATE seq SET val = %d WHERE pos = %d`, i*3, pos)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("50 value updates  → %d incremental maintenance events, view fresh: %v\n",
		mgr.MaintenanceEvents-before, !mgr.Stale("mv"))
	verify(ctx, db, "after updates")

	// 2. Appends at position n+1 fold in incrementally.
	for i := 1; i <= 20; i++ {
		if _, err := db.ExecContext(ctx, fmt.Sprintf(`INSERT INTO seq VALUES (%d, %d)`, n+i, i*7)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("20 appends        → view fresh: %v\n", !mgr.Stale("mv"))
	verify(ctx, db, "after appends")

	// 3. Suffix deletes shrink the sequence incrementally.
	for i := 20; i >= 11; i-- {
		if _, err := db.ExecContext(ctx, fmt.Sprintf(`DELETE FROM seq WHERE pos = %d`, n+i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("10 suffix deletes → view fresh: %v\n", !mgr.Stale("mv"))
	verify(ctx, db, "after suffix deletes")

	// 4. The paper's positional operations: insert a value *into the middle*
	//    of the sequence (everything right of it shifts) and delete one.
	//    SQL DML cannot express this while keeping positions dense, so the
	//    view manager applies the §2.3 insert/delete rules and renumbers the
	//    base table in the same step.
	if err := mgr.ShiftInsert("mv", 500, 12345); err != nil {
		log.Fatal(err)
	}
	if err := mgr.ShiftDelete("mv", 1200); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("positional shift insert@500 + delete@1200 → view fresh: %v\n", !mgr.Stale("mv"))
	verify(ctx, db, "after positional shifts")

	// 5. A density-breaking change marks the view stale; REFRESH recovers.
	if _, err := db.ExecContext(ctx, `DELETE FROM seq WHERE pos = 700`); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("middle DELETE     → view stale: %v (queries now refuse the view)\n", mgr.Stale("mv"))
	if _, err := db.QueryContext(ctx, `SELECT pos, val FROM mv LIMIT 1`); err != nil {
		fmt.Printf("                  → %v\n", err)
	}
	// Repair density (move the last row into the gap), then refresh.
	res, err := db.QueryContext(ctx, `SELECT COUNT(*) AS c FROM seq`)
	if err != nil {
		log.Fatal(err)
	}
	last := res.Rows[0][0].Int() + 1 // rows count back to dense upper bound
	if _, err := db.ExecContext(ctx, fmt.Sprintf(`UPDATE seq SET pos = 700 WHERE pos = %d`, last)); err != nil {
		log.Fatal(err)
	}
	if _, err := db.ExecContext(ctx, `REFRESH MATERIALIZED VIEW mv`); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("REFRESH           → view fresh: %v\n", !mgr.Stale("mv"))
	verify(ctx, db, "after refresh")
	fmt.Println("\nevery derived query stayed consistent with recomputation from raw data")
}

// verify answers a (4,2) window query from the view and compares with native
// evaluation over the (current) raw data.
func verify(ctx context.Context, db *rfview.DB, label string) {
	const q = `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 4 PRECEDING AND 2 FOLLOWING) AS w FROM seq`
	eng := db.Engine()
	opts := eng.Opts

	opts.UseMatViews = true
	eng.Opts = opts
	derived, err := db.QueryContext(ctx, q)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	opts.UseMatViews = false
	eng.Opts = opts
	native, err := db.QueryContext(ctx, q)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	opts.UseMatViews = true
	eng.Opts = opts

	if derived.Derivation == nil {
		log.Fatalf("%s: expected the view to answer the query", label)
	}
	m := make(map[int64]float64, len(native.Rows))
	for _, r := range native.Rows {
		m[r[0].Int()] = r[1].Float()
	}
	for _, r := range derived.Rows {
		if v, ok := m[r[0].Int()]; !ok || v != r[1].Float() {
			log.Fatalf("%s: mismatch at pos %v: derived %v native %v", label, r[0], r[1], v)
		}
	}
}

func load(ctx context.Context, db *rfview.DB, n int) {
	if _, err := db.ExecContext(ctx, `CREATE TABLE seq (pos INTEGER, val INTEGER)`); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for lo := 1; lo <= n; lo += 1000 {
		hi := lo + 999
		if hi > n {
			hi = n
		}
		var b strings.Builder
		b.WriteString("INSERT INTO seq VALUES ")
		for i := lo; i <= hi; i++ {
			if i > lo {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d)", i, rng.Intn(100))
		}
		if _, err := db.ExecContext(ctx, b.String()); err != nil {
			log.Fatal(err)
		}
	}
}
