package rfview_test

// Benchmark harness: one testing.B benchmark per table of the paper's
// evaluation section, plus per-strategy micro-benchmarks. `go test -bench=.`
// prints measurements; cmd/rfbench renders the same experiments as
// paper-style tables (see EXPERIMENTS.md for the paper-vs-measured record).

import (
	"fmt"
	"strings"
	"testing"

	"rfview/internal/bench"
	"rfview/internal/core"
	"rfview/internal/engine"
)

// BenchmarkTable1 measures the four strategies of Table 1 — native window
// operator vs. Fig. 2 self-join simulation, with and without an index on the
// position column — at the paper's sizes (shrunk for the no-index self join,
// which is quadratic, exactly as the paper's 357s/15000-row cell shows).
func BenchmarkTable1(b *testing.B) {
	type cfg struct {
		name      string
		native    bool
		withIndex bool
		sizes     []int
	}
	cases := []cfg{
		{"native/noindex", true, false, []int{5000, 10000, 15000}},
		{"selfjoin/noindex", false, false, []int{1000, 2000, 4000}},
		{"native/index", true, true, []int{5000, 10000, 15000}},
		{"selfjoin/index", false, true, []int{5000, 10000, 15000}},
	}
	for _, c := range cases {
		for _, n := range c.sizes {
			b.Run(fmt.Sprintf("%s/n=%d", c.name, n), func(b *testing.B) {
				opts := engine.DefaultOptions()
				opts.UseMatViews = false
				opts.NativeWindow = c.native
				opts.UseIndexes = c.withIndex
				e := engine.New(opts)
				if err := bench.LoadSequenceTable(e, n, 42); err != nil {
					b.Fatal(err)
				}
				if c.withIndex {
					if _, err := e.Exec(`CREATE UNIQUE INDEX seq_pk ON seq (pos)`); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Exec(bench.Table1Query); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable2 measures the four derivation strategies of Table 2 —
// MaxOA/MinOA × disjunctive/UNION — deriving ỹ=(3,1) from the materialized
// x̃=(2,1) view at the paper's sizes.
func BenchmarkTable2(b *testing.B) {
	for _, st := range bench.Table2Strategies {
		for _, n := range []int{100, 500, 1000, 1500, 2000} {
			b.Run(fmt.Sprintf("%s/n=%d", st.Name, n), func(b *testing.B) {
				e, err := bench.NewTable2Engine(n)
				if err != nil {
					b.Fatal(err)
				}
				opts := engine.DefaultOptions()
				opts.Strategy = st.Strategy
				opts.Form = st.Form
				e.Opts = opts
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Exec(bench.Table2Query); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCoreCompute is the ablation behind Table 1's "reporting
// functionality" column: naive O(n·W) evaluation vs. the §2.2 pipelined
// recursion, at the algebra level (no SQL overhead).
func BenchmarkCoreCompute(b *testing.B) {
	raw := make([]float64, 15000)
	for i := range raw {
		raw[i] = float64(i % 97)
	}
	for _, w := range []core.Window{core.Sliding(1, 1), core.Sliding(25, 25), core.Cumul()} {
		b.Run(fmt.Sprintf("naive/w=%v", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ComputeNaive(raw, w, core.Sum); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("pipelined/w=%v", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ComputePipelined(raw, w, core.Sum); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoreDerive compares the derivation algorithms at the algebra
// level: MaxOA explicit, MaxOA recursive (compensation sequences), MinOA,
// and full recomputation from raw data as the baseline.
func BenchmarkCoreDerive(b *testing.B) {
	raw := make([]float64, 10000)
	for i := range raw {
		raw[i] = float64((i * 31) % 101)
	}
	src, err := core.ComputePipelined(raw, core.Sliding(2, 1), core.Sum)
	if err != nil {
		b.Fatal(err)
	}
	target := core.Sliding(3, 1)
	b.Run("recompute-from-raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ComputePipelined(raw, target, core.Sum); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MaxOA-explicit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MaxOA(src, target); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MaxOA-recursive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MaxOARecursive(src, target); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MinOA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MinOA(src, target); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMaintenance is the §2.3 ablation: one incremental update against
// full recomputation of the materialized sequence.
func BenchmarkMaintenance(b *testing.B) {
	raw := make([]float64, 10000)
	for i := range raw {
		raw[i] = float64(i % 53)
	}
	b.Run("incremental-update", func(b *testing.B) {
		m, err := core.NewMaintainer(raw, core.Sliding(2, 1), core.Sum)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Update(1+i%len(raw), float64(i%97)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			raw[i%len(raw)] = float64(i % 97)
			if _, err := core.ComputePipelined(raw, core.Sliding(2, 1), core.Sum); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPartitionedDerivation measures §6.2 in SQL form: deriving a
// per-partition window query from a partitioned sequence view, against
// native evaluation over the raw data.
func BenchmarkPartitionedDerivation(b *testing.B) {
	build := func() *engine.Engine {
		e := engine.New(engine.DefaultOptions())
		if _, err := e.Exec(`CREATE TABLE pseq (grp INTEGER, pos INTEGER, val INTEGER)`); err != nil {
			b.Fatal(err)
		}
		var sb strings.Builder
		sb.WriteString("INSERT INTO pseq VALUES ")
		first := true
		for g := 1; g <= 8; g++ {
			for i := 1; i <= 100; i++ {
				if !first {
					sb.WriteString(", ")
				}
				first = false
				fmt.Fprintf(&sb, "(%d, %d, %d)", g, i, (g*31+i*7)%100)
			}
		}
		if _, err := e.Exec(sb.String()); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Exec(`CREATE MATERIALIZED VIEW pmv AS
		  SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos
		    ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM pseq`); err != nil {
			b.Fatal(err)
		}
		return e
	}
	const q = `SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos
	  ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w FROM pseq`
	b.Run("native", func(b *testing.B) {
		e := build()
		opts := e.Opts
		opts.UseMatViews = false
		e.Opts = opts
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("derived", func(b *testing.B) {
		e := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := e.Exec(q)
			if err != nil {
				b.Fatal(err)
			}
			if res.Derivation == nil {
				b.Fatal("derivation did not fire")
			}
		}
	})
}
