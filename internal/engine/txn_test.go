package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	rferrors "rfview/errors"
)

// This file is the snapshot-isolation anomaly suite: each test stages one of
// the classic anomalies and asserts MVCC suppresses it — no dirty reads, no
// non-repeatable reads, no lost updates (first-committer-wins aborts), plus
// the positive guarantees (read-your-writes, atomic publication) and the
// non-blocking property the whole design exists for: readers complete while
// a writer's transaction is open.

func mustSess(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("session Exec(%q): %v", sql, err)
	}
	return res
}

func count(t *testing.T, ex interface {
	Exec(string) (*Result, error)
}, table string) int64 {
	t.Helper()
	res, err := ex.Exec("SELECT COUNT(*) AS c FROM " + table)
	if err != nil {
		t.Fatalf("COUNT(*) FROM %s: %v", table, err)
	}
	return res.Rows[0][0].Int()
}

func TestTxnNoDirtyReads(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 5, func(i int) int64 { return int64(i) })

	writer := e.NewSession()
	mustSess(t, writer, "BEGIN")
	mustSess(t, writer, "INSERT INTO seq VALUES (6, 60)")
	mustSess(t, writer, "UPDATE seq SET val = 99 WHERE pos = 1")
	mustSess(t, writer, "DELETE FROM seq WHERE pos = 2")

	// Another session — and the bare engine — must see none of it.
	if got := count(t, e, "seq"); got != 5 {
		t.Fatalf("dirty read: COUNT = %d while writer txn open, want 5", got)
	}
	res := mustExec(t, e, "SELECT val FROM seq WHERE pos = 1")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("dirty read: pos 1 val = %d while writer txn open, want 1", res.Rows[0][0].Int())
	}
	reader := e.NewSession()
	if got := count(t, reader, "seq"); got != 5 {
		t.Fatalf("dirty read via session: COUNT = %d, want 5", got)
	}

	mustSess(t, writer, "COMMIT")
	if got := count(t, e, "seq"); got != 5 { // +1 insert, -1 delete
		t.Fatalf("after commit: COUNT = %d, want 5", got)
	}
	res = mustExec(t, e, "SELECT val FROM seq WHERE pos = 1")
	if res.Rows[0][0].Int() != 99 {
		t.Fatalf("after commit: pos 1 val = %d, want 99", res.Rows[0][0].Int())
	}
}

func TestTxnRepeatableReads(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 5, func(i int) int64 { return int64(i) })

	reader := e.NewSession()
	mustSess(t, reader, "BEGIN")
	if got := count(t, reader, "seq"); got != 5 {
		t.Fatalf("first read: COUNT = %d, want 5", got)
	}

	// A concurrent auto-commit write publishes while the reader is open.
	mustExec(t, e, "INSERT INTO seq VALUES (6, 60)")
	mustExec(t, e, "UPDATE seq SET val = 77 WHERE pos = 3")

	// The open transaction keeps seeing its snapshot.
	if got := count(t, reader, "seq"); got != 5 {
		t.Fatalf("repeatable read broken: COUNT = %d inside txn, want 5", got)
	}
	res := mustSess(t, reader, "SELECT val FROM seq WHERE pos = 3")
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("repeatable read broken: pos 3 val = %d inside txn, want 3", res.Rows[0][0].Int())
	}
	mustSess(t, reader, "COMMIT")

	// A fresh transaction sees the published state.
	mustSess(t, reader, "BEGIN")
	if got := count(t, reader, "seq"); got != 6 {
		t.Fatalf("new txn: COUNT = %d, want 6", got)
	}
	mustSess(t, reader, "ROLLBACK")
}

func TestTxnLostUpdateAborts(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 5, func(i int) int64 { return int64(i) })

	a := e.NewSession()
	b := e.NewSession()
	mustSess(t, a, "BEGIN")
	mustSess(t, b, "BEGIN")
	mustSess(t, a, "UPDATE seq SET val = 100 WHERE pos = 2")

	// B updating the same row must abort with code "conflict" — committing
	// it would overwrite A's update without having seen it (a lost update).
	_, err := b.Exec("UPDATE seq SET val = 200 WHERE pos = 2")
	if err == nil {
		t.Fatal("conflicting update succeeded; lost update possible")
	}
	if rferrors.CodeOf(err) != rferrors.CodeConflict {
		t.Fatalf("conflict error code = %q (%v), want %q", rferrors.CodeOf(err), err, rferrors.CodeConflict)
	}
	// The conflict rolled B back entirely; it is out of the transaction.
	if b.InTxn() {
		t.Fatal("session still reports an open transaction after conflict abort")
	}
	if _, err := b.Exec("COMMIT"); err == nil {
		t.Fatal("COMMIT after conflict abort should fail with no transaction in progress")
	}

	mustSess(t, a, "COMMIT")
	res := mustExec(t, e, "SELECT val FROM seq WHERE pos = 2")
	if res.Rows[0][0].Int() != 100 {
		t.Fatalf("pos 2 val = %d, want 100 (A's committed update)", res.Rows[0][0].Int())
	}
	if e.TxnStats().ConflictAborts == 0 {
		t.Fatal("conflict abort not counted in TxnStats")
	}
}

// TestTxnUniqueUpdateConflictNotDuplicate pins the error classification when
// a transaction updates a unique-indexed row that a later committer already
// replaced: the replacement's key collides only with a committed version the
// transaction's snapshot cannot see, which is a first-committer-wins conflict
// (retryable, code "conflict"), not a duplicate-key violation.
func TestTxnUniqueUpdateConflictNotDuplicate(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE seq (pos INTEGER, val INTEGER)")
	mustExec(t, e, "CREATE UNIQUE INDEX seq_pk ON seq (pos)")
	mustExec(t, e, "INSERT INTO seq VALUES (1, 1)")

	s := e.NewSession()
	defer s.Close()
	mustSess(t, s, "BEGIN")
	// Pin the snapshot before the concurrent commit lands.
	mustSess(t, s, "SELECT val FROM seq WHERE pos = 1")
	// Another writer replaces the row and commits; pos 1 now lives in a new
	// version invisible to s's snapshot.
	mustExec(t, e, "UPDATE seq SET val = 10 WHERE pos = 1")

	_, err := s.Exec("UPDATE seq SET val = val + 1 WHERE pos = 1")
	if err == nil {
		t.Fatal("stale update succeeded; lost update possible")
	}
	if rferrors.CodeOf(err) != rferrors.CodeConflict {
		t.Fatalf("stale update error code = %q (%v), want %q", rferrors.CodeOf(err), err, rferrors.CodeConflict)
	}
}

func TestTxnReadYourWrites(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 5, func(i int) int64 { return int64(i) })

	s := e.NewSession()
	mustSess(t, s, "BEGIN")
	mustSess(t, s, "INSERT INTO seq VALUES (6, 60)")
	mustSess(t, s, "UPDATE seq SET val = 42 WHERE pos = 6")
	if got := count(t, s, "seq"); got != 6 {
		t.Fatalf("txn does not see its own insert: COUNT = %d, want 6", got)
	}
	res := mustSess(t, s, "SELECT val FROM seq WHERE pos = 6")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 42 {
		t.Fatalf("txn does not see its own update: %v", res.Rows)
	}
	mustSess(t, s, "DELETE FROM seq WHERE pos = 6")
	if got := count(t, s, "seq"); got != 5 {
		t.Fatalf("txn does not see its own delete: COUNT = %d, want 5", got)
	}
	mustSess(t, s, "COMMIT")
	if got := count(t, e, "seq"); got != 5 {
		t.Fatalf("after commit: COUNT = %d, want 5", got)
	}
}

func TestTxnRollbackDiscardsEverything(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 5, func(i int) int64 { return int64(i) })

	s := e.NewSession()
	mustSess(t, s, "BEGIN")
	mustSess(t, s, "INSERT INTO seq VALUES (6, 60)")
	mustSess(t, s, "UPDATE seq SET val = 99 WHERE pos = 1")
	mustSess(t, s, "DELETE FROM seq WHERE pos = 2")
	mustSess(t, s, "ROLLBACK")

	if got := count(t, e, "seq"); got != 5 {
		t.Fatalf("rollback leaked rows: COUNT = %d, want 5", got)
	}
	res := mustExec(t, e, "SELECT val FROM seq WHERE pos = 1")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("rollback leaked update: pos 1 val = %d, want 1", res.Rows[0][0].Int())
	}
	res = mustExec(t, e, "SELECT COUNT(*) AS c FROM seq WHERE pos = 2")
	if res.Rows[0][0].Int() != 1 {
		t.Fatal("rollback leaked delete: pos 2 vanished")
	}
}

// TestReaderCompletesWhileWriterTxnOpen is the acceptance check for the
// non-blocking property: a SELECT issued — and finished — while another
// session holds an open transaction with pending writes.
func TestReaderCompletesWhileWriterTxnOpen(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 100, func(i int) int64 { return int64(i) })

	writer := e.NewSession()
	mustSess(t, writer, "BEGIN")
	mustSess(t, writer, "UPDATE seq SET val = 0 WHERE pos <= 50")

	done := make(chan error, 1)
	go func() {
		res, err := e.Exec("SELECT SUM(val) AS s FROM seq")
		if err == nil && res.Rows[0][0].Float() != 5050 {
			err = fmt.Errorf("reader saw writer's uncommitted state: SUM = %v", res.Rows[0][0])
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reader blocked behind an open writer transaction")
	}
	mustSess(t, writer, "COMMIT")
	res := mustExec(t, e, "SELECT SUM(val) AS s FROM seq")
	if got := res.Rows[0][0].Float(); got != 5050-1275 {
		t.Fatalf("after commit SUM = %v, want %v", got, 5050-1275)
	}
}

func TestTxnStateErrors(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 3, func(i int) int64 { return int64(i) })
	s := e.NewSession()

	for _, sql := range []string{"COMMIT", "ROLLBACK"} {
		if _, err := s.Exec(sql); rferrors.CodeOf(err) != rferrors.CodeTxnState {
			t.Fatalf("%s outside txn: code = %q, want %q", sql, rferrors.CodeOf(err), rferrors.CodeTxnState)
		}
	}
	mustSess(t, s, "BEGIN")
	if _, err := s.Exec("BEGIN"); rferrors.CodeOf(err) != rferrors.CodeTxnState {
		t.Fatalf("nested BEGIN: code = %q, want %q", rferrors.CodeOf(err), rferrors.CodeTxnState)
	}
	// DDL and REFRESH auto-commit; inside a transaction they are rejected.
	for _, sql := range []string{
		"CREATE TABLE other (a INTEGER)",
		"DROP TABLE seq",
		"CREATE UNIQUE INDEX seq_pk ON seq (pos)",
	} {
		if _, err := s.Exec(sql); rferrors.CodeOf(err) != rferrors.CodeTxnState {
			t.Fatalf("%q inside txn: code = %q, want %q", sql, rferrors.CodeOf(err), rferrors.CodeTxnState)
		}
	}
	mustSess(t, s, "ROLLBACK")

	// Transaction control without a session has no connection to pin the
	// transaction to; the engine rejects it with a pointer to sessions.
	if _, err := e.Exec("BEGIN"); rferrors.CodeOf(err) != rferrors.CodeTxnState {
		t.Fatalf("engine-level BEGIN: code = %q, want %q", rferrors.CodeOf(err), rferrors.CodeTxnState)
	}
}

func TestTxnCommitIsAtomic(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE acct (id INTEGER, bal INTEGER)")
	mustExec(t, e, "INSERT INTO acct VALUES (1, 100), (2, 100)")

	// A transfer: both sides must publish together. Concurrent readers may
	// see the pre-state or the post-state, never a half-applied transfer.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var torn error
	var mu sync.Mutex
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := e.Exec("SELECT SUM(bal) AS s FROM acct")
				if err != nil {
					mu.Lock()
					torn = err
					mu.Unlock()
					return
				}
				if got := res.Rows[0][0].Float(); got != 200 {
					mu.Lock()
					torn = fmt.Errorf("torn read: SUM(bal) = %v, want 200", got)
					mu.Unlock()
					return
				}
			}
		}()
	}
	s := e.NewSession()
	for i := 0; i < 50; i++ {
		mustSess(t, s, "BEGIN")
		mustSess(t, s, "UPDATE acct SET bal = bal - 10 WHERE id = 1")
		mustSess(t, s, "UPDATE acct SET bal = bal + 10 WHERE id = 2")
		if i%2 == 0 {
			mustSess(t, s, "COMMIT")
		} else {
			mustSess(t, s, "ROLLBACK")
		}
	}
	close(stop)
	wg.Wait()
	if torn != nil {
		t.Fatal(torn)
	}
}

// TestTxnConcurrentMixedStress is the mixed-workload stress: concurrent
// sessions run read-only queries and multi-statement write transactions
// against shared tables; conflicts abort cleanly, everything else commits,
// and the final state must balance the commit ledger exactly.
func TestTxnConcurrentMixedStress(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE seq (pos INTEGER, val INTEGER)")
	mustExec(t, e, "CREATE UNIQUE INDEX seq_pk ON seq (pos)")
	mustExec(t, e, "INSERT INTO seq VALUES (1, 1), (2, 2), (3, 3), (4, 4), (5, 5), (6, 6), (7, 7), (8, 8)")

	const (
		writers = 4
		readers = 4
		iters   = 60
	)
	var inserted, conflicts int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			s := e.NewSession()
			defer s.Close()
			for i := 0; i < iters; i++ {
				pos := 100 + w*iters + i // unique per writer: inserts never conflict
				hot := 1 + rng.Intn(8)   // shared hot rows: updates conflict
				if _, err := s.Exec("BEGIN"); err != nil {
					t.Errorf("writer %d: BEGIN: %v", w, err)
					return
				}
				_, err := s.Exec(fmt.Sprintf("INSERT INTO seq VALUES (%d, %d)", pos, pos))
				if err == nil {
					_, err = s.Exec(fmt.Sprintf("UPDATE seq SET val = val + 1 WHERE pos = %d", hot))
				}
				if err == nil {
					_, err = s.Exec("COMMIT")
				}
				switch {
				case err == nil:
					mu.Lock()
					inserted++
					mu.Unlock()
				case rferrors.CodeOf(err) == rferrors.CodeConflict:
					mu.Lock()
					conflicts++
					mu.Unlock() // whole txn rolled back: the insert is gone too
				default:
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters*2; i++ {
				res, err := e.Exec("SELECT COUNT(*) AS c, SUM(pos) AS s FROM seq")
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if res.Rows[0][0].Int() < 8 {
					t.Errorf("reader %d: COUNT = %d < initial 8", r, res.Rows[0][0].Int())
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := count(t, e, "seq"); got != 8+inserted {
		t.Fatalf("final COUNT = %d, want 8 + %d committed inserts (conflict aborts must leave no trace)", got, inserted)
	}
	st := e.TxnStats()
	if st.ConflictAborts != conflicts {
		t.Fatalf("engine counted %d conflict aborts, clients saw %d", st.ConflictAborts, conflicts)
	}
	t.Logf("stress: %d commits, %d conflict aborts", inserted, conflicts)
}

func TestTxnSessionExecAllScript(t *testing.T) {
	e := newEngine(t)
	s := e.NewSession()
	results, err := s.ExecAll(`
		CREATE TABLE seq (pos INTEGER, val INTEGER);
		INSERT INTO seq VALUES (1, 1), (2, 2);
		BEGIN;
		INSERT INTO seq VALUES (3, 3);
		COMMIT;
		BEGIN;
		INSERT INTO seq VALUES (4, 4);
		ROLLBACK;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d results, want 8", len(results))
	}
	if got := count(t, e, "seq"); got != 3 {
		t.Fatalf("COUNT = %d, want 3 (committed block applied, rolled-back block not)", got)
	}
	// An error mid-script surfaces with the offending statement named.
	_, err = s.ExecAll("SELECT pos FROM seq; SELECT nope FROM seq")
	if err == nil || !strings.Contains(err.Error(), "SELECT nope FROM seq") {
		t.Fatalf("mid-script error not attributed: %v", err)
	}
}

func TestTxnCounters(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 3, func(i int) int64 { return int64(i) })
	base := e.TxnStats()

	s := e.NewSession()
	mustSess(t, s, "BEGIN")
	mustSess(t, s, "UPDATE seq SET val = 9 WHERE pos = 1")
	mustSess(t, s, "COMMIT")
	mustSess(t, s, "BEGIN")
	mustSess(t, s, "ROLLBACK")

	st := e.TxnStats()
	if st.Begins-base.Begins < 2 {
		t.Fatalf("begins delta = %d, want >= 2", st.Begins-base.Begins)
	}
	if st.Commits-base.Commits < 1 {
		t.Fatalf("commits delta = %d, want >= 1", st.Commits-base.Commits)
	}
	if st.Rollbacks-base.Rollbacks < 1 {
		t.Fatalf("rollbacks delta = %d, want >= 1", st.Rollbacks-base.Rollbacks)
	}
	// The counters are exposed on the metrics registry too.
	text := e.Metrics().Expose()
	for _, name := range []string{
		"rfview_txn_begins_total", "rfview_txn_commits_total",
		"rfview_txn_rollbacks_total", "rfview_txn_conflict_aborts_total",
		"rfview_txn_snapshot_wait_seconds", "rfview_txn_commit_lock_wait_seconds",
	} {
		if !strings.Contains(text, name) {
			t.Fatalf("metric %s missing from exposition", name)
		}
	}
}

func TestTxnFailedStatementKeepsTxnAlive(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 3, func(i int) int64 { return int64(i) })
	mustExec(t, e, "CREATE UNIQUE INDEX seq_pk ON seq (pos)")

	s := e.NewSession()
	mustSess(t, s, "BEGIN")
	mustSess(t, s, "INSERT INTO seq VALUES (4, 4)")
	// A duplicate-key failure aborts the statement, not the transaction:
	// statement-level atomicity.
	if _, err := s.Exec("INSERT INTO seq VALUES (4, 99)"); err == nil {
		t.Fatal("duplicate insert succeeded")
	} else if rferrors.CodeOf(err) == rferrors.CodeConflict {
		t.Fatalf("duplicate key misclassified as write-write conflict: %v", err)
	}
	if !s.InTxn() {
		t.Fatal("failed statement tore down the transaction")
	}
	mustSess(t, s, "INSERT INTO seq VALUES (5, 5)")
	mustSess(t, s, "COMMIT")
	if got := count(t, e, "seq"); got != 5 {
		t.Fatalf("COUNT = %d, want 5 (3 + two successful inserts)", got)
	}
}

func TestTxnErrorsIsConflict(t *testing.T) {
	// The conflict error must be matchable with errors.Is through the
	// rferrors sentinel machinery, same as every other engine error code.
	e := newEngine(t)
	loadSeq(t, e, 2, func(i int) int64 { return int64(i) })
	a, b := e.NewSession(), e.NewSession()
	mustSess(t, a, "BEGIN")
	mustSess(t, b, "BEGIN")
	mustSess(t, a, "UPDATE seq SET val = 10 WHERE pos = 1")
	_, err := b.Exec("UPDATE seq SET val = 20 WHERE pos = 1")
	if err == nil {
		t.Fatal("expected conflict")
	}
	sentinel := rferrors.FromCode(rferrors.CodeConflict, "x")
	if !errors.Is(err, errors.Unwrap(sentinel)) && rferrors.CodeOf(err) != rferrors.CodeConflict {
		t.Fatalf("conflict not matchable: %v", err)
	}
	mustSess(t, a, "ROLLBACK")
}
