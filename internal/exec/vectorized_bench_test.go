package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"rfview/internal/expr"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
)

// Microbenchmarks for the typed columnar fast path: each pair runs the same
// operator with vectorization on (key-normalized sorts, typed kernels) and
// off (boxed Datum path), so `benchstat` or a CI artifact diff shows the
// per-op time and allocation delta directly. No thresholds are enforced —
// these are recorded measurements, not gates.

func benchExpr(src string, schema *expr.Schema) expr.Expr {
	ast, err := sqlparser.ParseExpr(src)
	if err != nil {
		panic(err)
	}
	e, err := expr.Compile(ast, schema)
	if err != nil {
		panic(err)
	}
	return e
}

// benchSortRows builds n rows with a low-cardinality int key, a short string
// key, and a payload column, per the given key shape.
func benchSortRows(n int, shape string) ([]sqltypes.Row, *expr.Schema) {
	schema := expr.NewSchema(
		expr.ColInfo{Name: "k1", Type: sqltypes.Int},
		expr.ColInfo{Name: "k2", Type: sqltypes.String},
		expr.ColInfo{Name: "payload", Type: sqltypes.Int},
	)
	rng := rand.New(rand.NewSource(1))
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		var k1 sqltypes.Datum
		switch shape {
		case "float":
			k1 = sqltypes.NewFloat(rng.Float64() * 1000)
		case "mixed":
			if i%2 == 0 {
				k1 = sqltypes.NewInt(int64(rng.Intn(1000)))
			} else {
				k1 = sqltypes.NewFloat(rng.Float64() * 1000)
			}
		default:
			k1 = sqltypes.NewInt(int64(rng.Intn(1000)))
		}
		rows[i] = sqltypes.Row{
			k1,
			sqltypes.NewString(fmt.Sprintf("s%03d", rng.Intn(500))),
			sqltypes.NewInt(int64(i)),
		}
	}
	return rows, schema
}

// BenchmarkSortNormalizedVsCompare measures exec.Sort on both paths over
// INT+STRING keys (byte-encodable), FLOAT keys, and an Int/Float-mixed key
// column (which silently takes the comparator path on both settings).
func BenchmarkSortNormalizedVsCompare(b *testing.B) {
	const n = 4096
	for _, shape := range []string{"int", "float", "mixed"} {
		rows, schema := benchSortRows(n, shape)
		keys := []SortKey{
			{Expr: benchExpr("k1", schema)},
			{Expr: benchExpr("k2", schema), Desc: true},
		}
		for _, mode := range []struct {
			name  string
			noVec bool
		}{{"normalized", false}, {"compare", true}} {
			b.Run(shape+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s := &Sort{Input: NewValues(schema, rows), Keys: keys, NoVectorize: mode.noVec}
					if _, err := Collect(s); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchWindowRows builds parts partitions of rowsPer rows each, with val
// datums of the given shape ("mixed" alternates Int and Float — the
// fallback-forcing DECIMAL stand-in).
func benchWindowRows(parts, rowsPer int, shape string) []sqltypes.Row {
	rng := rand.New(rand.NewSource(2))
	rows := make([]sqltypes.Row, 0, parts*rowsPer)
	for g := 0; g < parts; g++ {
		for i := 1; i <= rowsPer; i++ {
			var val sqltypes.Datum
			switch shape {
			case "float":
				val = sqltypes.NewFloat(rng.Float64() * 100)
			case "mixed":
				if i%2 == 0 {
					val = sqltypes.NewInt(int64(rng.Intn(100)))
				} else {
					val = sqltypes.NewFloat(rng.Float64() * 100)
				}
			default:
				val = sqltypes.NewInt(int64(rng.Intn(100)))
			}
			rows = append(rows, sqltypes.Row{
				sqltypes.NewInt(int64(g)), sqltypes.NewInt(int64(i)), val,
			})
		}
	}
	return rows
}

// BenchmarkWindowTypedVsBoxed measures the Window operator — sliding
// SUM/MIN/AVG over 8 partitions of 512 rows — with typed kernels against the
// boxed accumulator path, for INT, FLOAT, and mixed argument columns (mixed
// falls back at runtime on both settings, so that pair bounds the fast-path
// bookkeeping overhead).
func BenchmarkWindowTypedVsBoxed(b *testing.B) {
	schema := expr.NewSchema(
		expr.ColInfo{Name: "grp", Type: sqltypes.Int},
		expr.ColInfo{Name: "pos", Type: sqltypes.Int},
		expr.ColInfo{Name: "val", Type: sqltypes.Float},
	)
	grpEx := benchExpr("grp", schema)
	posEx := benchExpr("pos", schema)
	valEx := benchExpr("val", schema)
	frame := FrameSpec{
		Start: FrameBound{Kind: BoundPreceding, Offset: 8},
		End:   FrameBound{Kind: BoundFollowing, Offset: 8},
	}
	funcs := []WindowFunc{
		{Name: "SUM", Arg: valEx, Frame: frame, OutName: "s"},
		{Name: "MIN", Arg: valEx, Frame: frame, OutName: "m"},
		{Name: "AVG", Arg: valEx, Frame: frame, OutName: "a"},
	}
	for _, shape := range []string{"int", "float", "mixed"} {
		rows := benchWindowRows(8, 512, shape)
		for _, mode := range []struct {
			name  string
			noVec bool
		}{{"typed", false}, {"boxed", true}} {
			b.Run(shape+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					w := NewWindow(NewValues(schema, rows), []expr.Expr{grpEx},
						[]SortKey{{Expr: posEx}}, funcs)
					w.NoVectorize = mode.noVec
					if _, err := Collect(w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
