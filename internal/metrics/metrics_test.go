package metrics

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	if again := r.Counter("c_total", "ignored"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}
}

func TestGaugeSetAndAdd(t *testing.T) {
	g := NewRegistry().Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(1.0)
	g.Add(-0.5)
	if g.Value() != 3.0 {
		t.Fatalf("Value = %v, want 3.0", g.Value())
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	g := NewRegistry().Gauge("g", "a gauge")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Fatalf("after balanced concurrent adds, Value = %v, want 0", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("h_seconds", "h", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-105.65) > 1e-9 {
		t.Fatalf("Sum = %v, want 105.65", h.Sum())
	}
}

func TestCounterVec(t *testing.T) {
	cv := NewRegistry().CounterVec("q_total", "queries", "strategy")
	cv.With("native").Inc()
	cv.With("native").Inc()
	cv.With("maxoa").Inc()
	got := cv.Values()
	if got["native"] != 2 || got["maxoa"] != 1 {
		t.Fatalf("Values = %v", got)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a").Add(3)
	cv := r.CounterVec("b_total", "counts b", "kind")
	cv.With("y").Inc()
	cv.With("x").Add(2)
	g := r.Gauge("c_now", "gauges c")
	g.Set(1.5)
	r.GaugeFunc("d_now", "computed d", func() float64 { return 7 })
	r.GaugeSetFunc("e_age", "ages", "view", func() map[string]float64 {
		return map[string]float64{"v2": 2, "v1": 0.25}
	})
	h := r.Histogram("f_seconds", "latency", []float64{0.5, 2})
	h.Observe(0.3)
	h.Observe(1)
	h.Observe(9)

	text := r.Expose()
	want := []string{
		"# HELP a_total counts a",
		"# TYPE a_total counter",
		"a_total 3",
		"# TYPE b_total counter",
		"b_total{kind=\"x\"} 2",
		"b_total{kind=\"y\"} 1",
		"# TYPE c_now gauge",
		"c_now 1.5",
		"d_now 7",
		"e_age{view=\"v1\"} 0.25",
		"e_age{view=\"v2\"} 2",
		"# TYPE f_seconds histogram",
		"f_seconds_bucket{le=\"0.5\"} 1",
		"f_seconds_bucket{le=\"2\"} 2",
		"f_seconds_bucket{le=\"+Inf\"} 3",
		"f_seconds_sum 10.3",
		"f_seconds_count 3",
	}
	idx := 0
	for _, line := range strings.Split(text, "\n") {
		if idx < len(want) && line == want[idx] {
			idx++
		}
	}
	if idx != len(want) {
		t.Fatalf("exposition missing (or out of order) line %q; full text:\n%s", want[idx], text)
	}
	// Label values sort within a family regardless of creation order.
	if strings.Index(text, `b_total{kind="x"}`) > strings.Index(text, `b_total{kind="y"}`) {
		t.Fatalf("label values not sorted:\n%s", text)
	}
}

func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("op_seconds", "per-op latency", "op", []float64{1})
	hv.With("query").Observe(0.5)
	hv.With("exec").Observe(2)
	text := r.Expose()
	for _, want := range []string{
		`op_seconds_bucket{op="exec",le="1"} 0`,
		`op_seconds_bucket{op="exec",le="+Inf"} 1`,
		`op_seconds_bucket{op="query",le="1"} 1`,
		`op_seconds_sum{op="query"} 0.5`,
		`op_seconds_count{op="exec"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:          "1.5",
		7:            "7",
		0.25:         "0.25",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.000000001:  "0.000000001",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(rec.Result().Body)
	if !strings.Contains(string(body), "hits_total 1") {
		t.Fatalf("body missing series:\n%s", body)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "c")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "g")
}
