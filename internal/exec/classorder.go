package exec

import "rfview/internal/sqltypes"

// ClassOrderMeta is the execution-time handshake between one shared class
// Sort and the Window operators stacked directly above it (see plan's
// shared-sort pass). The sort already compares every adjacent row pair while
// ordering the class stream, so it records, for each emitted position, how
// many leading sort keys equal the previous row's — and the windows read
// partition boundaries and ORDER BY tie runs straight off that table instead
// of each re-evaluating its keys over the whole stream.
//
// Only the in-memory normalized sort produces the metadata. An external
// (spilled) sort, the comparator fallback (NaN or Int/Float-mix keys), or a
// disabled vectorizer leave it invalid, and consumers fall back to their
// evaluating scans. Validity therefore also certifies that no sort key holds
// a NaN, which is what lets pre-sorted consumers skip the NaN fallback scan:
// encoded-key equality coincides with Compare equality on everything the
// normalized path accepts (including -0.0, which encodes as +0.0 exactly as
// Compare ties them).
type ClassOrderMeta struct {
	// partKeys is the class's canonical partition key count — how many
	// leading sort keys are partition keys. Set by the planner; fixed across
	// executions. Members use it (not their own PartitionBy length) so
	// duplicate partition keys cannot skew the boundary threshold.
	partKeys int

	tieDepth []int32
	keyTypes []sqltypes.Type
	valid    bool
}

// NewClassOrderMeta builds the metadata slot for one class sort whose first
// partKeys keys are the class partition keys.
func NewClassOrderMeta(partKeys int) *ClassOrderMeta {
	return &ClassOrderMeta{partKeys: partKeys}
}

// reset invalidates the metadata at the start of an execution; the sort
// refills it only when the normalized in-memory path runs.
func (m *ClassOrderMeta) reset() {
	if m != nil {
		m.valid = false
	}
}

// Valid reports whether the metadata describes a stream of exactly n rows.
func (m *ClassOrderMeta) Valid(n int) bool {
	return m != nil && m.valid && len(m.tieDepth) == n
}

// PartKeys returns the class's canonical partition key count.
func (m *ClassOrderMeta) PartKeys() int { return m.partKeys }

// TieDepths returns the adjacency table: entry i is the number of leading
// sort keys on which stream rows i-1 and i compare equal (entry 0 is 0).
func (m *ClassOrderMeta) TieDepths() []int32 { return m.tieDepth }

// KeyType returns sort key ki's observed runtime type (sqltypes.Null when
// the column held only NULLs).
func (m *ClassOrderMeta) KeyType(ki int) sqltypes.Type { return m.keyTypes[ki] }
