package exec

import (
	"errors"
	"testing"

	"rfview/internal/expr"
	"rfview/internal/sqltypes"
)

// failingOp injects errors at a chosen point of the Volcano lifecycle, to
// verify every operator propagates child failures instead of swallowing
// them.
type failingOp struct {
	schema   *expr.Schema
	failOpen bool
	failAt   int // fail on the Nth Next call (1-based); 0 = never
	rows     []sqltypes.Row
	pos      int
	calls    int
}

var errInjected = errors.New("injected failure")

func (f *failingOp) Schema() *expr.Schema { return f.schema }

func (f *failingOp) Open() error {
	f.pos = 0
	f.calls = 0
	if f.failOpen {
		return errInjected
	}
	return nil
}

func (f *failingOp) Next() (sqltypes.Row, error) {
	f.calls++
	if f.failAt > 0 && f.calls >= f.failAt {
		return nil, errInjected
	}
	if f.pos >= len(f.rows) {
		return nil, nil
	}
	row := f.rows[f.pos]
	f.pos++
	return row, nil
}

func (f *failingOp) Close() error         { return nil }
func (f *failingOp) Describe() string     { return "FailingOp" }
func (f *failingOp) Children() []Operator { return nil }

func intSchema(names ...string) *expr.Schema {
	cols := make([]expr.ColInfo, len(names))
	for i, n := range names {
		cols[i] = expr.ColInfo{Name: n, Type: sqltypes.Int}
	}
	return expr.NewSchema(cols...)
}

func expectInjected(t *testing.T, op Operator, ctx string) {
	t.Helper()
	_, err := Collect(op)
	if !errors.Is(err, errInjected) {
		t.Fatalf("%s: error = %v, want injected failure", ctx, err)
	}
}

func TestOperatorsPropagateChildErrors(t *testing.T) {
	mkFail := func(open bool, at int) *failingOp {
		return &failingOp{
			schema:   intSchema("a"),
			failOpen: open,
			failAt:   at,
			rows:     []sqltypes.Row{intRow(1), intRow(2), intRow(3)},
		}
	}
	colA := func(s *expr.Schema) expr.Expr { return mustCompile(t, "a", s) }

	// Filter: open and mid-stream.
	expectInjected(t, &Filter{Input: mkFail(true, 0), Pred: colA(intSchema("a"))}, "filter open")
	f := mkFail(false, 2)
	expectInjected(t, &Filter{Input: f, Pred: mustCompile(t, "a > 0", f.schema)}, "filter next")

	// Project.
	p := mkFail(false, 2)
	expectInjected(t, NewProject(p, []expr.Expr{colA(p.schema)}, []string{"a"}), "project next")

	// Sort materializes on Open.
	s := mkFail(false, 2)
	expectInjected(t, &Sort{Input: s, Keys: []SortKey{{Expr: colA(s.schema)}}}, "sort")

	// Limit.
	l := mkFail(false, 1)
	expectInjected(t, &Limit{Input: l, N: 10}, "limit")

	// Distinct.
	d := mkFail(false, 2)
	expectInjected(t, &Distinct{Input: d}, "distinct")

	// UnionAll: failure in the second input.
	ok := &failingOp{schema: intSchema("a"), rows: []sqltypes.Row{intRow(9)}}
	u := &UnionAll{Inputs: []Operator{ok, mkFail(false, 1)}}
	expectInjected(t, u, "union all")

	// HashAggregate drains its input in Open.
	h := mkFail(false, 2)
	expectInjected(t, NewHashAggregate(h, []expr.Expr{colA(h.schema)}, []string{"g"},
		[]AggSpec{{Name: "COUNT", OutName: "c"}}), "hash aggregate")

	// Window drains in Open.
	w := mkFail(false, 2)
	expectInjected(t, NewWindow(w, nil, []SortKey{{Expr: colA(w.schema)}},
		[]WindowFunc{{Name: "SUM", Arg: colA(w.schema), Frame: DefaultFrame(true), OutName: "x"}}), "window")

	// Joins: failure on either side.
	left := mkFail(false, 2)
	right := &failingOp{schema: intSchema("b"), rows: []sqltypes.Row{intRow(1)}}
	expectInjected(t, NewNestedLoopJoin(left, right, JoinInner, nil), "nlj left")
	left2 := &failingOp{schema: intSchema("a"), rows: []sqltypes.Row{intRow(1)}}
	expectInjected(t, NewNestedLoopJoin(left2, mkFail(false, 1), JoinInner, nil), "nlj right (materialized in open)")

	colB := mustCompile(t, "b", intSchema("b"))
	hj := NewHashJoin(mkFail(false, 2), &failingOp{schema: intSchema("b"), rows: []sqltypes.Row{intRow(1)}},
		[]expr.Expr{colA(intSchema("a"))}, []expr.Expr{colB}, nil, JoinInner)
	expectInjected(t, hj, "hash join probe side")
	hj2 := NewHashJoin(&failingOp{schema: intSchema("a"), rows: []sqltypes.Row{intRow(1)}}, mkFail(false, 1),
		[]expr.Expr{colA(intSchema("a"))}, []expr.Expr{colB}, nil, JoinInner)
	expectInjected(t, hj2, "hash join build side")
}

// TestExprErrorsPropagate: a type error inside a predicate surfaces as a
// query error, not a silent skip.
func TestExprErrorsPropagate(t *testing.T) {
	schema := expr.NewSchema(
		expr.ColInfo{Name: "a", Type: sqltypes.Int},
		expr.ColInfo{Name: "s", Type: sqltypes.String},
	)
	rows := []sqltypes.Row{{sqltypes.NewInt(1), sqltypes.NewString("x")}}
	pred := mustCompile(t, "a + s > 0", schema) // int + string fails at eval
	_, err := Collect(&Filter{Input: NewValues(schema, rows), Pred: pred})
	if err == nil {
		t.Fatal("type error must propagate")
	}
	// Same inside an aggregate argument.
	agg := NewHashAggregate(NewValues(schema, rows), nil, nil,
		[]AggSpec{{Name: "SUM", Arg: mustCompile(t, "a + s", schema), OutName: "x"}})
	if _, err := Collect(agg); err == nil {
		t.Fatal("aggregate argument error must propagate")
	}
	// And inside a window argument.
	w := NewWindow(NewValues(schema, rows), nil, nil,
		[]WindowFunc{{Name: "SUM", Arg: mustCompile(t, "a + s", schema),
			Frame: DefaultFrame(false), OutName: "x"}})
	if _, err := Collect(w); err == nil {
		t.Fatal("window argument error must propagate")
	}
}

// TestDivisionByZeroSurfaces at the SQL operator level.
func TestDivisionByZeroSurfaces(t *testing.T) {
	schema := intSchema("a")
	rows := []sqltypes.Row{intRow(0)}
	proj := NewProject(NewValues(schema, rows),
		[]expr.Expr{mustCompile(t, "1 / a", schema)}, []string{"x"})
	if _, err := Collect(proj); err == nil {
		t.Fatal("division by zero must propagate")
	}
}
