package rewrite

import (
	"testing"

	"rfview/internal/catalog"
	"rfview/internal/sqltypes"
)

// multiViewCatalog builds a catalog with one sliding sequence view per entry
// of wins, registered in the given order.
func multiViewCatalog(t *testing.T, names []string, wins []catalog.WindowSpec) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	if _, err := cat.CreateTable("seq", []catalog.Column{{Name: "pos", Type: sqltypes.Int}, {Name: "val", Type: sqltypes.Int}}); err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		backing, err := cat.CreateTable("__mv_"+name, []catalog.Column{{Name: "pos", Type: sqltypes.Int}, {Name: "val", Type: sqltypes.Int}})
		if err != nil {
			t.Fatal(err)
		}
		mv := &catalog.MatView{
			Name: name, Kind: catalog.SequenceView, Table: backing,
			BaseTable: "seq", PosColumn: "pos", ValColumn: "val", Agg: "SUM",
			Window: wins[i],
		}
		mv.BaseRows.Store(100)
		if err := cat.RegisterMatView(mv); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// TestPickViewNameTieBreak: among equally wide applicable views the
// lexicographically smallest name wins, independent of registration order,
// so plans (and the plan cache keyed on them) are deterministic.
func TestPickViewNameTieBreak(t *testing.T) {
	win := catalog.WindowSpec{Preceding: 2, Following: 1}
	sel := parseSelect(t, `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w FROM seq`)
	for _, names := range [][]string{{"zeta", "alpha"}, {"alpha", "zeta"}} {
		cat := multiViewCatalog(t, names, []catalog.WindowSpec{win, win})
		d, err := Derive(cat, sel, StrategyMaxOA, FormDisjunctive)
		if err != nil {
			t.Fatal(err)
		}
		if d == nil || d.View.Name != "alpha" {
			t.Fatalf("registration order %v: picked %+v, want alpha", names, d)
		}
	}
}

// TestPickViewPrefersWiderWindow: a wider materialized window beats a
// smaller lexicographic name — the tie-break applies only among equals.
func TestPickViewPrefersWiderWindow(t *testing.T) {
	cat := multiViewCatalog(t,
		[]string{"aaa", "zzz"},
		[]catalog.WindowSpec{{Preceding: 1, Following: 1}, {Preceding: 2, Following: 2}})
	sel := parseSelect(t, `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 3 PRECEDING AND 2 FOLLOWING) AS w FROM seq`)
	d, err := Derive(cat, sel, StrategyMaxOA, FormDisjunctive)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.View.Name != "zzz" {
		t.Fatalf("picked %+v, want the wider view zzz", d)
	}
}

// TestPickViewCumulativeTieBreak: when only cumulative views apply, the
// smallest name is chosen deterministically.
func TestPickViewCumulativeTieBreak(t *testing.T) {
	cum := catalog.WindowSpec{Cumulative: true}
	sel := parseSelect(t, `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM seq`)
	for _, names := range [][]string{{"zc", "ac"}, {"ac", "zc"}} {
		cat := multiViewCatalog(t, names, []catalog.WindowSpec{cum, cum})
		d, err := Derive(cat, sel, StrategyAuto, FormDisjunctive)
		if err != nil {
			t.Fatal(err)
		}
		if d == nil || d.View.Name != "ac" {
			t.Fatalf("registration order %v: picked %+v, want ac", names, d)
		}
	}
}
