package engine

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"rfview/internal/sqltypes"
	"rfview/internal/storage"
	"rfview/internal/txn"
)

// Commit records are how transactions reach the write-ahead log. Individual
// DML statements are never logged as SQL: a transaction's effects hit the log
// as one record, at commit, so recovery replays exactly the committed work —
// a transaction killed mid-flight left nothing in the log and is invisible
// after replay. The record rides the existing SQL-record transport, prefixed
// with a marker no parsable statement can start with; the payload is the
// transaction's delta list, values encoded bit-exactly (floats travel as
// their IEEE-754 bit patterns, like the snapshot codec, so replayed rows are
// byte-identical to the originals).

// commitMarker prefixes every commit record in the log.
const commitMarker = "--txn-commit:v1 "

// IsCommitRecord reports whether a logged record is a transaction commit
// record rather than a SQL statement.
func IsCommitRecord(sql string) bool { return strings.HasPrefix(sql, commitMarker) }

// logDatum is one value inside a commit record. T is the sqltypes.Type; Bool,
// Int, and Date ride in I; Float rides in F as raw bits; String rides in S.
type logDatum struct {
	T uint8   `json:"t"`
	I int64   `json:"i,omitempty"`
	F uint64  `json:"f,omitempty"`
	S *string `json:"s,omitempty"`
}

// logDelta is one table's worth of a transaction's effects.
type logDelta struct {
	Table  string       `json:"table"`
	Kind   int          `json:"kind"` // txn.DeltaKind
	Cols   []string     `json:"cols,omitempty"`
	Rows   [][]logDatum `json:"rows,omitempty"`
	Before [][]logDatum `json:"before,omitempty"`
	After  [][]logDatum `json:"after,omitempty"`
}

func encodeDatum(d sqltypes.Datum) logDatum {
	switch d.Typ() {
	case sqltypes.Bool:
		var i int64
		if d.Bool() {
			i = 1
		}
		return logDatum{T: uint8(sqltypes.Bool), I: i}
	case sqltypes.Int, sqltypes.Date:
		return logDatum{T: uint8(d.Typ()), I: d.Int()}
	case sqltypes.Float:
		return logDatum{T: uint8(sqltypes.Float), F: math.Float64bits(d.Float())}
	case sqltypes.String:
		s := d.Str()
		return logDatum{T: uint8(sqltypes.String), S: &s}
	default:
		return logDatum{T: uint8(sqltypes.Null)}
	}
}

func decodeDatum(ld logDatum) sqltypes.Datum {
	switch sqltypes.Type(ld.T) {
	case sqltypes.Bool:
		return sqltypes.NewBool(ld.I != 0)
	case sqltypes.Int:
		return sqltypes.NewInt(ld.I)
	case sqltypes.Date:
		return sqltypes.NewDate(ld.I)
	case sqltypes.Float:
		return sqltypes.NewFloat(math.Float64frombits(ld.F))
	case sqltypes.String:
		var s string
		if ld.S != nil {
			s = *ld.S
		}
		return sqltypes.NewString(s)
	default:
		return sqltypes.NullDatum
	}
}

func encodeRows(rows []sqltypes.Row) [][]logDatum {
	if rows == nil {
		return nil
	}
	out := make([][]logDatum, len(rows))
	for i, r := range rows {
		enc := make([]logDatum, len(r))
		for j, d := range r {
			enc[j] = encodeDatum(d)
		}
		out[i] = enc
	}
	return out
}

func decodeRows(enc [][]logDatum) []sqltypes.Row {
	if enc == nil {
		return nil
	}
	out := make([]sqltypes.Row, len(enc))
	for i, r := range enc {
		row := make(sqltypes.Row, len(r))
		for j, ld := range r {
			row[j] = decodeDatum(ld)
		}
		out[i] = row
	}
	return out
}

// encodeCommitRecord renders a transaction's deltas as one log record.
func encodeCommitRecord(deltas []txn.Delta) (string, error) {
	enc := make([]logDelta, len(deltas))
	for i, d := range deltas {
		enc[i] = logDelta{
			Table:  d.Table,
			Kind:   int(d.Kind),
			Cols:   d.Cols,
			Rows:   encodeRows(d.Rows),
			Before: encodeRows(d.Before),
			After:  encodeRows(d.After),
		}
	}
	payload, err := json.Marshal(enc)
	if err != nil {
		return "", fmt.Errorf("encode commit record: %w", err)
	}
	return commitMarker + string(payload), nil
}

func decodeCommitRecord(sql string) ([]txn.Delta, error) {
	if !IsCommitRecord(sql) {
		return nil, fmt.Errorf("not a commit record")
	}
	var enc []logDelta
	if err := json.Unmarshal([]byte(strings.TrimPrefix(sql, commitMarker)), &enc); err != nil {
		return nil, fmt.Errorf("decode commit record: %w", err)
	}
	out := make([]txn.Delta, len(enc))
	for i, d := range enc {
		out[i] = txn.Delta{
			Table:  d.Table,
			Kind:   txn.DeltaKind(d.Kind),
			Cols:   d.Cols,
			Rows:   decodeRows(d.Rows),
			Before: decodeRows(d.Before),
			After:  decodeRows(d.After),
		}
	}
	return out, nil
}

// datumIdentical is bit-exact equality: the replay locator must match the
// logged before-image byte for byte, not by SQL comparison semantics (which
// would conflate 1 and 1.0, or error on cross-type rows).
func datumIdentical(a, b sqltypes.Datum) bool {
	if a.Typ() != b.Typ() {
		return false
	}
	switch a.Typ() {
	case sqltypes.Null:
		return true
	case sqltypes.Float:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case sqltypes.String:
		return a.Str() == b.Str()
	default:
		return a.Int() == b.Int()
	}
}

func rowIdentical(a, b sqltypes.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !datumIdentical(a[i], b[i]) {
			return false
		}
	}
	return true
}

// ApplyCommitRecord re-applies one logged commit record during recovery. The
// record's deltas replay inside a fresh internal transaction — committed as
// a unit, exactly like the original — with view maintenance folding in at
// commit just as it did the first time. Updates and deletes locate their
// target rows by before-image (row ids do not survive a snapshot/replay
// cycle); the locate scan runs at the transaction's own write view so later
// deltas in the same record see earlier ones.
func (e *Engine) ApplyCommitRecord(sql string) error {
	deltas, err := decodeCommitRecord(sql)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	tx := e.newTxn(false)
	fail := func(err error) error {
		tx.Abort()
		e.txnRollbacks.Add(1)
		return err
	}
	for _, d := range deltas {
		tbl, err := e.Cat.Table(d.Table)
		if err != nil {
			return fail(fmt.Errorf("replay commit record: %w", err))
		}
		locate := func(image sqltypes.Row) (uint64, bool) {
			var id uint64
			found := false
			// A heap IO failure here reads as "not found"; the caller turns
			// that into a replay error, which is the right failure mode.
			_ = tbl.Heap.ScanAt(tbl.Heap.WriteView(tx), func(rid storage.RowID, row sqltypes.Row) bool {
				if rowIdentical(row, image) {
					id, found = uint64(rid), true
					return false
				}
				return true
			})
			return id, found
		}
		switch d.Kind {
		case txn.DeltaInsert:
			for _, row := range d.Rows {
				if _, err := tbl.Heap.InsertTx(tx, row); err != nil {
					return fail(fmt.Errorf("replay commit record: %w", err))
				}
			}
		case txn.DeltaUpdate:
			for i, before := range d.Before {
				id, ok := locate(before)
				if !ok {
					return fail(fmt.Errorf("replay commit record: %s: update target row not found", d.Table))
				}
				if _, err := tbl.Heap.UpdateTx(tx, storage.RowID(id), d.After[i]); err != nil {
					return fail(fmt.Errorf("replay commit record: %w", err))
				}
			}
		case txn.DeltaDelete:
			for _, image := range d.Rows {
				id, ok := locate(image)
				if !ok {
					return fail(fmt.Errorf("replay commit record: %s: delete target row not found", d.Table))
				}
				if err := tbl.Heap.DeleteTx(tx, storage.RowID(id)); err != nil {
					return fail(fmt.Errorf("replay commit record: %w", err))
				}
			}
		default:
			return fail(fmt.Errorf("replay commit record: unknown delta kind %d", d.Kind))
		}
		tx.AddDelta(d)
	}
	return e.commitTxnLocked(tx, false)
}
