package main

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rfview/internal/engine"
)

// TestGeneratedScriptsReplay: rfgen's output must parse and load cleanly.
func TestGeneratedScriptsReplay(t *testing.T) {
	var out strings.Builder
	// Reproduce the seq generator inline (main() writes to stdout).
	rng := rand.New(rand.NewSource(42))
	fmt.Fprintln(&out, "CREATE TABLE seq (pos INTEGER, val INTEGER);")
	fmt.Fprintln(&out, "CREATE UNIQUE INDEX seq_pk ON seq (pos);")
	writeChunksTo(&out, 250, 100, func(i int) string {
		return fmt.Sprintf("(%d, %d)", i, rng.Intn(1000))
	}, "INSERT INTO seq (pos, val) VALUES ")

	e := engine.New(engine.DefaultOptions())
	if _, err := e.ExecAll(out.String()); err != nil {
		t.Fatalf("generated script failed: %v", err)
	}
	res, err := e.Exec(`SELECT COUNT(*) AS c FROM seq`)
	if err != nil || res.Rows[0][0].Int() != 250 {
		t.Fatalf("rows = %v (%v)", res.Rows, err)
	}
	// Dense positions: a sequence view materializes.
	if _, err := e.Exec(`CREATE MATERIALIZED VIEW mv AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS val FROM seq`); err != nil {
		t.Fatal(err)
	}
}

// writeChunksTo mirrors emitChunks onto a strings.Builder for testing.
func writeChunksTo(out *strings.Builder, n, chunk int, row func(i int) string, prefix string) {
	for lo := 1; lo <= n; lo += chunk {
		hi := lo + chunk - 1
		if hi > n {
			hi = n
		}
		out.WriteString(prefix)
		for i := lo; i <= hi; i++ {
			if i > lo {
				out.WriteString(", ")
			}
			out.WriteString(row(i))
		}
		out.WriteString(";\n")
	}
}
