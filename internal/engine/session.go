package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"

	rferrors "rfview/errors"
	"rfview/internal/sqlparser"
	"rfview/internal/txn"
)

// Session is a connection-scoped statement executor that understands BEGIN /
// COMMIT / ROLLBACK. Outside a transaction it delegates to the engine
// directly (keeping the plan cache and read-repair drains); inside one it
// pins every statement to the transaction's snapshot. The server gives each
// client connection a Session; library callers embedding the engine create
// one with NewSession when they need multi-statement transactions.
//
// A Session serializes its own statements (one transaction is a single
// logical thread of control); different Sessions run concurrently.
type Session struct {
	eng *Engine
	mu  sync.Mutex
	tx  *txn.Txn
}

// NewSession creates a session bound to the engine.
func (e *Engine) NewSession() *Session { return &Session{eng: e} }

// InTxn reports whether the session has an open transaction.
func (s *Session) InTxn() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tx != nil
}

// txnControl classifies sql's leading keyword as one of the transaction
// control statements, without a full parse.
func txnControl(sql string) string {
	i := 0
	for i < len(sql) && (sql[i] == ' ' || sql[i] == '\t' || sql[i] == '\n' || sql[i] == '\r' || sql[i] == ';') {
		i++
	}
	j := i
	for j < len(sql) && ((sql[j] >= 'a' && sql[j] <= 'z') || (sql[j] >= 'A' && sql[j] <= 'Z')) {
		j++
	}
	switch kw := strings.ToUpper(sql[i:j]); kw {
	case "BEGIN", "START", "COMMIT", "ROLLBACK", "END":
		return kw
	}
	return ""
}

// Exec executes one statement in the session without a deadline.
func (s *Session) Exec(sql string) (*Result, error) {
	return s.ExecContext(context.Background(), sql)
}

// ExecContext executes one statement in the session. BEGIN opens a
// transaction (an error if one is open); COMMIT publishes it atomically;
// ROLLBACK discards it. Statements between BEGIN and COMMIT read at the
// transaction's snapshot and write pending versions invisible to other
// sessions; DDL and REFRESH are rejected inside a transaction. A write-write
// conflict rolls the whole transaction back — the returned error carries
// code "conflict" and the session is out of the transaction.
func (s *Session) ExecContext(ctx context.Context, sql string, opts ...ExecOption) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if kw := txnControl(sql); kw != "" {
		// Full parse validates trailing noise words ("BEGIN TRANSACTION",
		// "COMMIT WORK") and rejects garbage after the keyword.
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			return nil, rferrors.Wrap(rferrors.CodeParse, err)
		}
		switch stmt.(type) {
		case *sqlparser.Begin:
			if s.tx != nil {
				return nil, rferrors.New(rferrors.CodeTxnState, "already in a transaction")
			}
			s.tx = s.eng.BeginTxn()
			return &Result{}, nil
		case *sqlparser.Commit:
			if s.tx == nil {
				return nil, rferrors.New(rferrors.CodeTxnState, "no transaction in progress")
			}
			tx := s.tx
			s.tx = nil
			if err := s.eng.CommitTxn(tx); err != nil {
				return nil, err
			}
			return &Result{}, nil
		case *sqlparser.Rollback:
			if s.tx == nil {
				return nil, rferrors.New(rferrors.CodeTxnState, "no transaction in progress")
			}
			tx := s.tx
			s.tx = nil
			s.eng.RollbackTxn(tx)
			return &Result{}, nil
		default:
			// START/END parsed as something else (e.g. an identifier): fall
			// through to the ordinary path.
		}
		return s.execOrdinary(ctx, stmt.String(), opts)
	}
	return s.execOrdinary(ctx, sql, opts)
}

func (s *Session) execOrdinary(ctx context.Context, sql string, opts []ExecOption) (*Result, error) {
	if s.tx == nil {
		return s.eng.ExecContext(ctx, sql, opts...)
	}
	res, err := s.eng.ExecTxn(ctx, s.tx, sql, opts...)
	if err != nil && rferrors.CodeOf(err) == rferrors.CodeConflict {
		// The engine already rolled the transaction back (first-committer
		// wins); the session just forgets it.
		s.tx = nil
	}
	return res, err
}

// ExecAll executes a semicolon-separated script through the session.
//
// Deprecated: new code should use ExecAllContext, which supports
// cancellation.
func (s *Session) ExecAll(script string) ([]*Result, error) {
	return s.ExecAllContext(context.Background(), script)
}

// ExecAllContext executes a semicolon-separated script through the session
// under ctx, returning one result per statement and stopping at the first
// error. Unlike Engine.ExecAllContext it understands BEGIN/COMMIT/ROLLBACK,
// so scripts can group statements into transactions. A transaction left open
// at the end of the script stays open on the session.
func (s *Session) ExecAllContext(ctx context.Context, script string) ([]*Result, error) {
	stmts, err := sqlparser.ParseAll(script)
	if err != nil {
		return nil, rferrors.Wrap(rferrors.CodeParse, err)
	}
	out := make([]*Result, 0, len(stmts))
	for _, stmt := range stmts {
		res, err := s.ExecContext(ctx, stmt.String())
		if err != nil {
			return out, fmt.Errorf("in %q: %w", stmt.String(), err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Close rolls back any open transaction. The server calls it when a client
// disconnects; it is safe to call multiple times.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tx != nil {
		s.eng.RollbackTxn(s.tx)
		s.tx = nil
	}
}
