package plan

import (
	"sort"

	"rfview/internal/exec"
	"rfview/internal/expr"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
)

// This file is the shared-sort multi-window pass (after Cao et al.,
// "Optimization of Analytic Window Functions"): instead of one sort inside
// every Window operator, specs are grouped into ordering-compatible classes,
// each class gets at most one shared Sort, the classes are sequenced to reuse
// each other's orderings (full reuse, or segmented re-partitioning when only
// the partition keys match), and the whole stack is bracketed by
// Ordinal/Restore so the output is bit-identical to the unshared plan.
//
// Plan shape for k classes over input I:
//
//	Restore ── Window* ── [Sort_k] ── … ── Window* ── [Sort_1] ── Ordinal ── I
//
// Each Sort_i orders by class i's canonical partition keys followed by its
// merged order suffix; the Window operators above it consume that order
// (sort=shared) or re-sort within partition segments (resort=segmented).

// specClass is one ordering-compatible class of window groups: all members
// share a set-equal partition key set. part holds the canonical partition
// ordering (most-frequent key first, maximizing cross-class prefix reuse);
// suffix is the merged ORDER BY chain — every presorted member's order keys
// are a leading prefix of it.
type specClass struct {
	part    []SpecKey
	suffix  []SpecKey
	members []*windowGroup
	presort []bool // per member: order keys are a prefix of suffix
}

// ordering is the sort order the class's shared Sort produces.
func (c *specClass) ordering() []SpecKey {
	out := make([]SpecKey, 0, len(c.part)+len(c.suffix))
	out = append(out, c.part...)
	return append(out, c.suffix...)
}

// spec views the class as a WindowSpec for Compatible checks against a
// stream ordering.
func (c *specClass) spec() WindowSpec { return WindowSpec{Partition: c.part, Order: c.suffix} }

// buildSpecClasses groups the window groups into classes. Partition keys are
// canonically reordered by descending cross-spec frequency (ties
// lexicographic) — partition equality is set-based, so the planner is free to
// pick the permutation that makes one class's sort a prefix of another's.
// Within a class, members whose order keys chain by prefix extend the shared
// suffix and run presorted; members with incompatible order keys re-sort per
// partition segment.
func buildSpecClasses(groups []*windowGroup) []*specClass {
	freq := map[string]int{}
	for _, g := range groups {
		for _, k := range g.spec.Partition {
			freq[k.Expr]++
		}
	}
	var classes []*specClass
	for _, g := range groups {
		var c *specClass
		for _, cand := range classes {
			if exprSetEqual(g.spec.Partition, cand.part) {
				c = cand
				break
			}
		}
		if c == nil {
			part := append([]SpecKey(nil), g.spec.Partition...)
			sort.SliceStable(part, func(i, j int) bool {
				fi, fj := freq[part[i].Expr], freq[part[j].Expr]
				if fi != fj {
					return fi > fj
				}
				return part[i].Expr < part[j].Expr
			})
			c = &specClass{part: part}
			classes = append(classes, c)
		}
		switch {
		case isKeyPrefix(g.spec.Order, c.suffix):
			c.members = append(c.members, g)
			c.presort = append(c.presort, true)
		case isKeyPrefix(c.suffix, g.spec.Order):
			c.suffix = g.spec.Order
			c.members = append(c.members, g)
			c.presort = append(c.presort, true)
		default:
			c.members = append(c.members, g)
			c.presort = append(c.presort, false)
		}
	}
	return classes
}

// classStep is one emitted class of the sequenced plan.
type classStep struct {
	class *specClass
	// needSort: the class emits its own shared Sort (ReuseNone against the
	// stream). resortFull additionally marks that an earlier class had
	// already ordered the stream — the full re-sort the sequencing tries to
	// avoid. segmented demotes every member to per-segment re-sorts (the
	// class reused only the stream's partition grouping).
	needSort, resortFull, segmented bool
}

// sequenceClasses greedily orders the classes to minimize full re-sorts:
// at each step it takes the first remaining class with the best reuse grade
// against the current stream ordering (full > segmented > none). A Window
// operator always emits rows in its input order, so the stream ordering only
// changes when a class emits a Sort.
func sequenceClasses(classes []*specClass) []classStep {
	remaining := append([]*specClass(nil), classes...)
	steps := make([]classStep, 0, len(classes))
	grade := func(c *specClass, cur []SpecKey) Reuse {
		r := c.spec().Compatible(cur)
		if r == ReuseSegmented && len(c.part) == 0 {
			// One giant segment: an in-operator re-sort would be a full sort
			// per member. Emit a shared Sort instead.
			return ReuseNone
		}
		return r
	}
	var cur []SpecKey
	for len(remaining) > 0 {
		pick, best := 0, ReuseNone
		for i, c := range remaining {
			if r := grade(c, cur); i == 0 || r > best {
				pick, best = i, r
				if r == ReuseFull {
					break
				}
			}
		}
		c := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		step := classStep{class: c}
		switch best {
		case ReuseFull:
			// Stream order already satisfies the class; members keep their
			// in-class presort status.
		case ReuseSegmented:
			step.segmented = true
		default:
			step.needSort = true
			step.resortFull = cur != nil
			cur = c.ordering()
		}
		steps = append(steps, step)
	}
	return steps
}

// sharedOrdinalName is the hidden column Ordinal appends and Restore strips;
// prefixed to stay clear of user column names.
const sharedOrdinalName = "__rf_ord"

// planWindowsShared emits the shared-sort plan for ≥2 window spec groups:
// Ordinal tags the input order, each sequenced class contributes at most one
// shared Sort plus its stacked Window operators, and Restore re-establishes
// the original row order (dropping the tag), so downstream operators — and
// result rows — are bit-identical to the unshared plan.
func (p *Planner) planWindowsShared(input exec.Operator, groups []*windowGroup, nameOf map[*sqlparser.WindowExpr]string) (exec.Operator, error) {
	inSchema := input.Schema()
	ordCol := len(inSchema.Cols)
	var op exec.Operator = exec.NewOrdinal(input, sharedOrdinalName)

	steps := sequenceClasses(buildSpecClasses(groups))
	for i, step := range steps {
		classID := i + 1
		var order *exec.ClassOrderMeta
		if step.needSort {
			keys, err := p.compileSpecKeys(step.class.ordering(), inSchema)
			if err != nil {
				return nil, err
			}
			// Ties on the class ordering must come out in original input
			// order for every class sort in the stack, so members whose
			// ORDER BY is the full suffix need no tie normalization at all
			// (OrderExact below). Until a sort reorders it, the stream is
			// still in ordinal order and both sort paths are stable, so the
			// first emitted sort gets input-order ties for free; a full
			// re-sort of an already-reordered stream must encode the ordinal
			// tag as its final key to get back to it.
			if step.resortFull {
				keys = append(keys, exec.SortKey{Expr: expr.NewCol(ordCol, sharedOrdinalName, sqltypes.Int)})
			}
			order = exec.NewClassOrderMeta(len(step.class.part))
			op = &exec.Sort{
				Input:       op,
				Keys:        keys,
				NoVectorize: p.Opts.DisableVectorized,
				Ctx:         p.Opts.Ctx,
				Spill:       p.Opts.Spill,
				SharedClass: classID,
				ResortFull:  step.resortFull,
				WinStats:    p.Opts.WindowStats,
				Order:       order,
			}
		}
		for mi, g := range step.class.members {
			win, err := p.buildWindow(inSchema, op, g, nameOf)
			if err != nil {
				return nil, err
			}
			win.Shared = true
			win.PreSorted = step.class.presort[mi] && !step.segmented
			// Exactness requires this step's own sort: a fully reused stream
			// may refine ties with keys between this member's suffix and the
			// ordinal, so only a sort emitted for this class guarantees its
			// full-suffix members tie-break straight to input order. The same
			// restriction scopes the sort's adjacency metadata: only members
			// stacked over their own class sort may read boundaries and tie
			// runs from it.
			win.OrderExact = step.needSort && win.PreSorted &&
				len(g.spec.Order) == len(step.class.suffix)
			win.ClassOrder = order
			win.OrdinalCol = ordCol
			win.Class = classID
			op = win
		}
	}
	restore := exec.NewRestore(op, ordCol)
	restore.Ctx = p.Opts.Ctx
	return restore, nil
}
