// Package sqltypes implements the value system shared by every layer of the
// rfview engine: the storage layer stores Datums, the expression evaluator
// computes over Datums, and query results are rows of Datums.
//
// The type lattice is deliberately small — NULL, BOOL, INT (int64),
// FLOAT (float64), STRING, and DATE (days since 1970-01-01) — which covers
// everything the paper's workloads (sequence tables and the credit-card
// warehouse schema) need.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Type identifies the runtime type of a Datum.
type Type uint8

// The supported runtime types.
const (
	Null Type = iota
	Bool
	Int
	Float
	String
	Date
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Null:
		return "NULL"
	case Bool:
		return "BOOLEAN"
	case Int:
		return "INTEGER"
	case Float:
		return "FLOAT"
	case String:
		return "VARCHAR"
	case Date:
		return "DATE"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Numeric reports whether the type supports arithmetic.
func (t Type) Numeric() bool { return t == Int || t == Float }

// Datum is a single SQL value. The zero value is SQL NULL.
type Datum struct {
	typ Type
	i   int64   // Bool (0/1), Int, Date (days since epoch)
	f   float64 // Float
	s   string  // String
}

// NullDatum is the SQL NULL value.
var NullDatum = Datum{}

// NewInt returns an INTEGER datum.
func NewInt(v int64) Datum { return Datum{typ: Int, i: v} }

// NewFloat returns a FLOAT datum.
func NewFloat(v float64) Datum { return Datum{typ: Float, f: v} }

// NewString returns a VARCHAR datum.
func NewString(v string) Datum { return Datum{typ: String, s: v} }

// NewBool returns a BOOLEAN datum.
func NewBool(v bool) Datum {
	var i int64
	if v {
		i = 1
	}
	return Datum{typ: Bool, i: i}
}

// NewDate returns a DATE datum from days since the Unix epoch.
func NewDate(daysSinceEpoch int64) Datum { return Datum{typ: Date, i: daysSinceEpoch} }

// NewDateFromTime returns a DATE datum from the calendar day of t (UTC).
func NewDateFromTime(t time.Time) Datum {
	t = t.UTC()
	days := t.Unix() / 86400
	if t.Unix() < 0 && t.Unix()%86400 != 0 {
		days--
	}
	return NewDate(days)
}

// ParseDate parses "YYYY-MM-DD" into a DATE datum.
func ParseDate(s string) (Datum, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return NullDatum, fmt.Errorf("invalid DATE literal %q: %w", s, err)
	}
	return NewDateFromTime(t), nil
}

// Typ returns the runtime type of the datum.
func (d Datum) Typ() Type { return d.typ }

// IsNull reports whether the datum is SQL NULL.
func (d Datum) IsNull() bool { return d.typ == Null }

// Int returns the int64 payload. Valid for Int and Date datums.
func (d Datum) Int() int64 { return d.i }

// Float returns the float64 payload for Float datums, or the converted
// integer payload for Int datums.
func (d Datum) Float() float64 {
	if d.typ == Int {
		return float64(d.i)
	}
	return d.f
}

// Str returns the string payload. Valid for String datums.
func (d Datum) Str() string { return d.s }

// Bool returns the boolean payload. Valid for Bool datums.
func (d Datum) Bool() bool { return d.i != 0 }

// Time returns the DATE payload as a time.Time at UTC midnight.
func (d Datum) Time() time.Time {
	return time.Unix(d.i*86400, 0).UTC()
}

// String renders the datum the way the rfsql shell prints it.
func (d Datum) String() string {
	switch d.typ {
	case Null:
		return "NULL"
	case Bool:
		if d.i != 0 {
			return "true"
		}
		return "false"
	case Int:
		return strconv.FormatInt(d.i, 10)
	case Float:
		return strconv.FormatFloat(d.f, 'g', -1, 64)
	case String:
		return d.s
	case Date:
		return d.Time().Format("2006-01-02")
	default:
		return fmt.Sprintf("<bad datum %d>", d.typ)
	}
}

// ErrTypeMismatch is returned when an operation receives operands of
// incompatible types.
type ErrTypeMismatch struct {
	Op    string
	Left  Type
	Right Type
}

func (e *ErrTypeMismatch) Error() string {
	return fmt.Sprintf("type mismatch: %s not defined for (%s, %s)", e.Op, e.Left, e.Right)
}

func mismatch(op string, a, b Datum) error {
	return &ErrTypeMismatch{Op: op, Left: a.typ, Right: b.typ}
}

// Compare orders two datums. NULL sorts before every non-NULL value (the
// convention used by the sort operator; comparison *predicates* involving
// NULL are handled at the expression layer and never reach here).
// Int and Float compare numerically with each other.
func Compare(a, b Datum) (int, error) {
	if a.typ == Null || b.typ == Null {
		switch {
		case a.typ == Null && b.typ == Null:
			return 0, nil
		case a.typ == Null:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if a.typ.Numeric() && b.typ.Numeric() {
		if a.typ == Int && b.typ == Int {
			return cmpInt(a.i, b.i), nil
		}
		return cmpFloat(a.Float(), b.Float()), nil
	}
	if a.typ != b.typ {
		return 0, mismatch("compare", a, b)
	}
	switch a.typ {
	case Bool, Date:
		return cmpInt(a.i, b.i), nil
	case String:
		switch {
		case a.s < b.s:
			return -1, nil
		case a.s > b.s:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return 0, mismatch("compare", a, b)
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Add returns a+b with SQL NULL propagation and Int/Float promotion.
func Add(a, b Datum) (Datum, error) { return arith("+", a, b) }

// Sub returns a-b with SQL NULL propagation and Int/Float promotion.
func Sub(a, b Datum) (Datum, error) { return arith("-", a, b) }

// Mul returns a*b with SQL NULL propagation and Int/Float promotion.
func Mul(a, b Datum) (Datum, error) { return arith("*", a, b) }

// Div returns a/b. Integer division truncates toward zero, as in DB2.
// Division by zero returns an error.
func Div(a, b Datum) (Datum, error) { return arith("/", a, b) }

// Mod returns MOD(a, b) for integer operands; the result takes the sign of
// the dividend, matching SQL MOD semantics.
func Mod(a, b Datum) (Datum, error) {
	if a.IsNull() || b.IsNull() {
		return NullDatum, nil
	}
	if a.typ != Int || b.typ != Int {
		return NullDatum, mismatch("MOD", a, b)
	}
	if b.i == 0 {
		return NullDatum, fmt.Errorf("MOD by zero")
	}
	return NewInt(a.i % b.i), nil
}

func arith(op string, a, b Datum) (Datum, error) {
	if a.IsNull() || b.IsNull() {
		return NullDatum, nil
	}
	if !a.typ.Numeric() || !b.typ.Numeric() {
		return NullDatum, mismatch(op, a, b)
	}
	if a.typ == Int && b.typ == Int {
		switch op {
		case "+":
			return NewInt(a.i + b.i), nil
		case "-":
			return NewInt(a.i - b.i), nil
		case "*":
			return NewInt(a.i * b.i), nil
		case "/":
			if b.i == 0 {
				return NullDatum, fmt.Errorf("division by zero")
			}
			return NewInt(a.i / b.i), nil
		}
	}
	x, y := a.Float(), b.Float()
	switch op {
	case "+":
		return NewFloat(x + y), nil
	case "-":
		return NewFloat(x - y), nil
	case "*":
		return NewFloat(x * y), nil
	case "/":
		if y == 0 {
			return NullDatum, fmt.Errorf("division by zero")
		}
		return NewFloat(x / y), nil
	}
	return NullDatum, fmt.Errorf("unknown arithmetic op %q", op)
}

// Neg returns -a for numeric a.
func Neg(a Datum) (Datum, error) {
	switch a.typ {
	case Null:
		return NullDatum, nil
	case Int:
		return NewInt(-a.i), nil
	case Float:
		return NewFloat(-a.f), nil
	default:
		return NullDatum, fmt.Errorf("unary minus not defined for %s", a.typ)
	}
}

// Abs returns |a| for numeric a.
func Abs(a Datum) (Datum, error) {
	switch a.typ {
	case Null:
		return NullDatum, nil
	case Int:
		if a.i < 0 {
			return NewInt(-a.i), nil
		}
		return a, nil
	case Float:
		return NewFloat(math.Abs(a.f)), nil
	default:
		return NullDatum, fmt.Errorf("ABS not defined for %s", a.typ)
	}
}

// Hash returns a 64-bit hash of the datum, used by hash joins and hash
// aggregation. Int and Float datums that compare equal hash equally.
func (d Datum) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	switch d.typ {
	case Null:
		mix(0)
	case Bool, Date:
		mix(byte(d.typ))
		v := uint64(d.i)
		for s := 0; s < 64; s += 8 {
			mix(byte(v >> s))
		}
	case Int, Float:
		// Hash the float64 image so 1 and 1.0 collide (they compare equal).
		v := math.Float64bits(d.Float())
		mix(1)
		for s := 0; s < 64; s += 8 {
			mix(byte(v >> s))
		}
	case String:
		mix(byte(String))
		for i := 0; i < len(d.s); i++ {
			mix(d.s[i])
		}
	}
	return h
}

// Equal reports whether two datums are identical for grouping purposes
// (NULL equals NULL here; this is GROUP BY equality, not predicate equality).
func Equal(a, b Datum) bool {
	if a.typ == Null || b.typ == Null {
		return a.typ == Null && b.typ == Null
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Cast converts d to the target type, following DB2-style rules for the
// small lattice we support.
func Cast(d Datum, to Type) (Datum, error) {
	if d.typ == Null || d.typ == to {
		if d.typ == Null {
			return NullDatum, nil
		}
		return d, nil
	}
	switch to {
	case Int:
		switch d.typ {
		case Float:
			return NewInt(int64(d.f)), nil
		case Bool:
			return NewInt(d.i), nil
		case String:
			v, err := strconv.ParseInt(d.s, 10, 64)
			if err != nil {
				return NullDatum, fmt.Errorf("cannot cast %q to INTEGER", d.s)
			}
			return NewInt(v), nil
		}
	case Float:
		switch d.typ {
		case Int:
			return NewFloat(float64(d.i)), nil
		case String:
			v, err := strconv.ParseFloat(d.s, 64)
			if err != nil {
				return NullDatum, fmt.Errorf("cannot cast %q to FLOAT", d.s)
			}
			return NewFloat(v), nil
		}
	case String:
		return NewString(d.String()), nil
	case Date:
		if d.typ == String {
			return ParseDate(d.s)
		}
		if d.typ == Int {
			return NewDate(d.i), nil
		}
	case Bool:
		if d.typ == Int {
			return NewBool(d.i != 0), nil
		}
	}
	return NullDatum, fmt.Errorf("cannot cast %s to %s", d.typ, to)
}

// Row is a tuple of datums.
type Row []Datum

// Clone returns a deep copy of the row (datums are values, so a slice copy
// suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row for debugging.
func (r Row) String() string {
	s := "("
	for i, d := range r {
		if i > 0 {
			s += ", "
		}
		s += d.String()
	}
	return s + ")"
}
