package plan

import (
	"strings"
	"testing"

	"rfview/internal/exec"
)

// TestVectorizedInPlan: planned Window and Sort operators advertise the
// typed columnar fast path in EXPLAIN as vectorized=true, and the
// DisableVectorized option removes both the marker and the fast path.
func TestVectorizedInPlan(t *testing.T) {
	cat := newTestCatalog(t, false)
	sortSQL := windowSQL + " ORDER BY pos DESC"

	op := planQuery(t, cat, DefaultOptions(), sortSQL)
	txt := exec.FormatPlan(op)
	if !strings.Contains(txt, "Window") || !strings.Contains(txt, "Sort") {
		t.Fatalf("plan misses expected operators:\n%s", txt)
	}
	if strings.Count(txt, "vectorized=true") < 2 {
		t.Fatalf("Window and Sort must both advertise vectorized=true:\n%s", txt)
	}

	opts := DefaultOptions()
	opts.DisableVectorized = true
	op = planQuery(t, cat, opts, sortSQL)
	if txt := exec.FormatPlan(op); strings.Contains(txt, "vectorized") {
		t.Fatalf("DisableVectorized plan must not advertise vectorization:\n%s", txt)
	}
}
