package spill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Run file format. A run is a sequence of framed records, each one
// (key, payload) pair, written in key order:
//
//	uint32 LE  payload length
//	uint32 LE  CRC32 (IEEE) of the payload
//	payload =  uvarint key length ++ key bytes ++ payload bytes
//
// The framing mirrors the WAL's record format, but the integrity contract
// differs: a WAL tolerates a torn tail (the crash happened mid-append), a
// spill run does not — runs are written completely before they are read, so
// any framing or CRC failure is corruption and fails the query rather than
// silently dropping rows.

// maxSpillRecordBytes bounds one record; longer lengths in a header are
// corruption, not allocations.
const maxSpillRecordBytes = 64 << 20

// runWriter appends framed records to a run file through a buffered writer.
type runWriter struct {
	f     *os.File
	w     *bufio.Writer
	hdr   [8]byte
	bytes int64
	recs  int64
}

func newRunWriter(f *os.File) *runWriter {
	return &runWriter{f: f, w: bufio.NewWriterSize(f, 64<<10)}
}

// append writes one (key, payload) record.
func (rw *runWriter) append(key, payload []byte) error {
	var klen [binary.MaxVarintLen64]byte
	kn := binary.PutUvarint(klen[:], uint64(len(key)))
	payloadLen := kn + len(key) + len(payload)
	crc := crc32.NewIEEE()
	crc.Write(klen[:kn])
	crc.Write(key)
	crc.Write(payload)
	binary.LittleEndian.PutUint32(rw.hdr[0:4], uint32(payloadLen))
	binary.LittleEndian.PutUint32(rw.hdr[4:8], crc.Sum32())
	for _, b := range [][]byte{rw.hdr[:], klen[:kn], key, payload} {
		if _, err := rw.w.Write(b); err != nil {
			return fmt.Errorf("spill: write run: %w", err)
		}
	}
	rw.bytes += int64(8 + payloadLen)
	rw.recs++
	return nil
}

// finish flushes the writer and rewinds the file for reading.
func (rw *runWriter) finish() error {
	if err := rw.w.Flush(); err != nil {
		return fmt.Errorf("spill: flush run: %w", err)
	}
	if _, err := rw.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("spill: rewind run: %w", err)
	}
	return nil
}

// runReader streams framed records back out of a run file.
type runReader struct {
	r   *bufio.Reader
	buf []byte // reused record buffer; key/payload returned by next alias it
}

func newRunReader(f *os.File) *runReader {
	return &runReader{r: bufio.NewReaderSize(f, 64<<10)}
}

// next returns the next record's key and payload, valid until the following
// call. io.EOF (returned bare) signals a clean end of run.
func (rr *runReader) next() (key, payload []byte, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(rr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, nil, io.EOF
		}
		return nil, nil, fmt.Errorf("spill: corrupt run (torn header): %w", err)
	}
	payloadLen := int(binary.LittleEndian.Uint32(hdr[0:4]))
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	if payloadLen < 1 || payloadLen > maxSpillRecordBytes {
		return nil, nil, fmt.Errorf("spill: corrupt run (record length %d)", payloadLen)
	}
	if cap(rr.buf) < payloadLen {
		rr.buf = make([]byte, payloadLen)
	}
	rr.buf = rr.buf[:payloadLen]
	if _, err := io.ReadFull(rr.r, rr.buf); err != nil {
		return nil, nil, fmt.Errorf("spill: corrupt run (torn record): %w", err)
	}
	if crc32.ChecksumIEEE(rr.buf) != wantCRC {
		return nil, nil, fmt.Errorf("spill: corrupt run (CRC mismatch)")
	}
	klen, kn := binary.Uvarint(rr.buf)
	if kn <= 0 || int(klen) > payloadLen-kn {
		return nil, nil, fmt.Errorf("spill: corrupt run (bad key length)")
	}
	key = rr.buf[kn : kn+int(klen)]
	payload = rr.buf[kn+int(klen):]
	return key, payload, nil
}
