package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rfview/internal/rewrite"
	"rfview/internal/sqltypes"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	return New(DefaultOptions())
}

// newEagerEngine pins eager view maintenance, for tests that assert the
// immediate (in-write) effects of DML on views; these must hold even when
// RFVIEW_TEST_VIEW_MAINTENANCE forces the rest of the suite deferred.
func newEagerEngine(t *testing.T) *Engine {
	t.Helper()
	opts := DefaultOptions()
	opts.ViewMaintenance = "eager"
	return New(opts)
}

func mustExec(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	res, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func mustExecAll(t *testing.T, e *Engine, sql string) {
	t.Helper()
	if _, err := e.ExecAll(sql); err != nil {
		t.Fatalf("ExecAll: %v", err)
	}
}

// loadSeq creates seq(pos,val) with values val = f(pos).
func loadSeq(t *testing.T, e *Engine, n int, f func(int) int64) {
	t.Helper()
	mustExec(t, e, `CREATE TABLE seq (pos INTEGER, val INTEGER)`)
	var b strings.Builder
	b.WriteString("INSERT INTO seq (pos, val) VALUES ")
	for i := 1; i <= n; i++ {
		if i > 1 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d)", i, f(i))
	}
	mustExec(t, e, b.String())
}

func rowsToPairs(t *testing.T, rows []sqltypes.Row) map[int64]float64 {
	t.Helper()
	out := make(map[int64]float64, len(rows))
	for _, r := range rows {
		if len(r) < 2 {
			t.Fatalf("row too short: %v", r)
		}
		out[r[0].Int()] = r[1].Float()
	}
	return out
}

func TestBasicSelect(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 5, func(i int) int64 { return int64(i * 10) })
	res := mustExec(t, e, `SELECT pos, val FROM seq WHERE pos >= 2 AND pos <= 4 ORDER BY pos`)
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if res.Rows[0][0].Int() != 2 || res.Rows[2][1].Int() != 40 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "pos" || res.Columns[1] != "val" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestSelectExpressionsAndFunctions(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 4, func(i int) int64 { return int64(i) })
	res := mustExec(t, e, `SELECT pos * 2 + 1 AS a, MOD(pos, 2) AS b, ABS(0 - pos) AS c FROM seq ORDER BY pos`)
	if res.Rows[3][0].Int() != 9 || res.Rows[2][1].Int() != 1 || res.Rows[1][2].Int() != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, e, `SELECT COALESCE(NULL, 7) AS x`)
	if res.Rows[0][0].Int() != 7 {
		t.Fatalf("coalesce = %v", res.Rows)
	}
	res = mustExec(t, e, `SELECT CASE WHEN 1 = 2 THEN 'a' WHEN 2 = 2 THEN 'b' ELSE 'c' END AS x`)
	if res.Rows[0][0].Str() != "b" {
		t.Fatalf("case = %v", res.Rows)
	}
}

func TestGroupByHaving(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 10, func(i int) int64 { return int64(i) })
	res := mustExec(t, e, `SELECT MOD(pos, 3) AS g, SUM(val) AS s, COUNT(*) AS c
	                       FROM seq GROUP BY MOD(pos, 3) HAVING COUNT(*) > 3 ORDER BY g`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// g=1: positions 1,4,7,10 → sum 22, count 4.
	if res.Rows[0][0].Int() != 1 || res.Rows[0][1].Int() != 22 || res.Rows[0][2].Int() != 4 {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, `CREATE TABLE t (a INTEGER)`)
	res := mustExec(t, e, `SELECT COUNT(*) AS c, SUM(a) AS s FROM t`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 0 || !res.Rows[0][1].IsNull() {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoins(t *testing.T) {
	e := newEngine(t)
	mustExecAll(t, e, `
	  CREATE TABLE a (id INTEGER, x INTEGER);
	  CREATE TABLE b (id INTEGER, y INTEGER);
	  INSERT INTO a VALUES (1, 10), (2, 20), (3, 30);
	  INSERT INTO b VALUES (1, 100), (3, 300), (4, 400);
	`)
	res := mustExec(t, e, `SELECT a.id, a.x, b.y FROM a JOIN b ON a.id = b.id ORDER BY a.id`)
	if len(res.Rows) != 2 || res.Rows[1][2].Int() != 300 {
		t.Fatalf("inner join rows = %v", res.Rows)
	}
	res = mustExec(t, e, `SELECT a.id, b.y FROM a LEFT OUTER JOIN b ON a.id = b.id ORDER BY a.id`)
	if len(res.Rows) != 3 {
		t.Fatalf("left join rows = %v", res.Rows)
	}
	if !res.Rows[1][1].IsNull() {
		t.Fatalf("unmatched left row should carry NULL: %v", res.Rows[1])
	}
	res = mustExec(t, e, `SELECT a.id, b.id FROM a, b WHERE a.id < b.id ORDER BY a.id, b.id`)
	if len(res.Rows) != 5 { // (1,3) (1,4) (2,3) (2,4) (3,4)
		t.Fatalf("theta join rows = %v", res.Rows)
	}
}

func TestDerivedTableAndUnion(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 6, func(i int) int64 { return int64(i) })
	res := mustExec(t, e, `SELECT d.v FROM (SELECT val * 2 AS v FROM seq WHERE pos <= 2) AS d ORDER BY d.v`)
	if len(res.Rows) != 2 || res.Rows[1][0].Int() != 4 {
		t.Fatalf("derived rows = %v", res.Rows)
	}
	res = mustExec(t, e, `SELECT pos FROM seq WHERE pos <= 2 UNION ALL SELECT pos FROM seq WHERE pos <= 3 ORDER BY pos`)
	if len(res.Rows) != 5 {
		t.Fatalf("union all rows = %v", res.Rows)
	}
	res = mustExec(t, e, `SELECT pos FROM seq WHERE pos <= 2 UNION SELECT pos FROM seq WHERE pos <= 3 ORDER BY pos`)
	if len(res.Rows) != 3 {
		t.Fatalf("union distinct rows = %v", res.Rows)
	}
	res = mustExec(t, e, `SELECT DISTINCT MOD(pos, 2) AS m FROM seq ORDER BY m`)
	if len(res.Rows) != 2 {
		t.Fatalf("distinct rows = %v", res.Rows)
	}
	res = mustExec(t, e, `SELECT pos FROM seq ORDER BY pos DESC LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 6 {
		t.Fatalf("limit rows = %v", res.Rows)
	}
}

func TestDML(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, `CREATE TABLE t (a INTEGER, b VARCHAR(10))`)
	res := mustExec(t, e, `INSERT INTO t VALUES (1, 'x'), (2, 'y')`)
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	mustExec(t, e, `UPDATE t SET b = 'z' WHERE a = 2`)
	r := mustExec(t, e, `SELECT b FROM t WHERE a = 2`)
	if r.Rows[0][0].Str() != "z" {
		t.Fatalf("update lost: %v", r.Rows)
	}
	mustExec(t, e, `DELETE FROM t WHERE a = 1`)
	r = mustExec(t, e, `SELECT COUNT(*) AS c FROM t`)
	if r.Rows[0][0].Int() != 1 {
		t.Fatalf("delete lost: %v", r.Rows)
	}
	// INSERT … SELECT.
	mustExec(t, e, `CREATE TABLE t2 (a INTEGER, b VARCHAR(10))`)
	mustExec(t, e, `INSERT INTO t2 SELECT a, b FROM t`)
	r = mustExec(t, e, `SELECT COUNT(*) AS c FROM t2`)
	if r.Rows[0][0].Int() != 1 {
		t.Fatalf("insert-select lost: %v", r.Rows)
	}
}

func TestUniqueIndexEnforcement(t *testing.T) {
	e := newEngine(t)
	mustExecAll(t, e, `
	  CREATE TABLE t (a INTEGER);
	  CREATE UNIQUE INDEX t_pk ON t (a);
	  INSERT INTO t VALUES (1);
	`)
	if _, err := e.Exec(`INSERT INTO t VALUES (1)`); err == nil {
		t.Fatal("duplicate insert should fail")
	}
}

// TestWindowMatchesCore: the native Window operator agrees with the core
// sequence algebra for the paper's window shapes.
func TestWindowMatchesCore(t *testing.T) {
	e := newEngine(t)
	rng := rand.New(rand.NewSource(7))
	n := 60
	vals := make([]int64, n+1)
	loadSeq(t, e, n, func(i int) int64 {
		vals[i] = int64(rng.Intn(100) - 50)
		return vals[i]
	})
	cases := []struct {
		frame string
		calc  func(k int) float64
	}{
		{"ROWS UNBOUNDED PRECEDING", func(k int) float64 {
			s := 0.0
			for j := 1; j <= k; j++ {
				s += float64(vals[j])
			}
			return s
		}},
		{"ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING", func(k int) float64 {
			s := 0.0
			for j := k - 1; j <= k+1; j++ {
				if j >= 1 && j <= n {
					s += float64(vals[j])
				}
			}
			return s
		}},
		{"ROWS BETWEEN CURRENT ROW AND 6 FOLLOWING", func(k int) float64 {
			s := 0.0
			for j := k; j <= k+6; j++ {
				if j >= 1 && j <= n {
					s += float64(vals[j])
				}
			}
			return s
		}},
		{"ROWS BETWEEN 3 PRECEDING AND CURRENT ROW", func(k int) float64 {
			s := 0.0
			for j := k - 3; j <= k; j++ {
				if j >= 1 && j <= n {
					s += float64(vals[j])
				}
			}
			return s
		}},
	}
	for _, c := range cases {
		q := fmt.Sprintf(`SELECT pos, SUM(val) OVER (ORDER BY pos %s) AS w FROM seq`, c.frame)
		res := mustExec(t, e, q)
		if len(res.Rows) != n {
			t.Fatalf("%s: %d rows", c.frame, len(res.Rows))
		}
		got := rowsToPairs(t, res.Rows)
		for k := 1; k <= n; k++ {
			if math.Abs(got[int64(k)]-c.calc(k)) > 1e-9 {
				t.Fatalf("%s at pos %d: got %v want %v", c.frame, k, got[int64(k)], c.calc(k))
			}
		}
	}
}

func TestWindowMinMaxAvgCount(t *testing.T) {
	e := newEngine(t)
	rng := rand.New(rand.NewSource(9))
	n := 40
	vals := make([]int64, n+1)
	loadSeq(t, e, n, func(i int) int64 {
		vals[i] = int64(rng.Intn(100) - 50)
		return vals[i]
	})
	res := mustExec(t, e, `SELECT pos,
	    MIN(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS mn,
	    MAX(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS mx,
	    AVG(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS av,
	    COUNT(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS ct
	  FROM seq`)
	for _, r := range res.Rows {
		k := int(r[0].Int())
		mn, mx, sum, ct := math.Inf(1), math.Inf(-1), 0.0, 0
		for j := k - 2; j <= k+1; j++ {
			if j >= 1 && j <= n {
				v := float64(vals[j])
				mn = math.Min(mn, v)
				mx = math.Max(mx, v)
				sum += v
				ct++
			}
		}
		if r[1].Float() != mn || r[2].Float() != mx || r[4].Int() != int64(ct) {
			t.Fatalf("pos %d: %v (want mn=%v mx=%v ct=%d)", k, r, mn, mx, ct)
		}
		if math.Abs(r[3].Float()-sum/float64(ct)) > 1e-9 {
			t.Fatalf("pos %d avg: %v want %v", k, r[3].Float(), sum/float64(ct))
		}
	}
}

// TestWindowPartitionBy checks per-partition frame resets — the paper's
// cumulative-sum-per-month example in miniature.
func TestWindowPartitionBy(t *testing.T) {
	e := newEngine(t)
	mustExecAll(t, e, `
	  CREATE TABLE tx (grp INTEGER, pos INTEGER, amt INTEGER);
	  INSERT INTO tx VALUES (1, 1, 10), (1, 2, 20), (2, 3, 5), (2, 4, 7), (1, 5, 30);
	`)
	res := mustExec(t, e, `SELECT pos, SUM(amt) OVER (PARTITION BY grp ORDER BY pos ROWS UNBOUNDED PRECEDING) AS cum FROM tx ORDER BY pos`)
	want := map[int64]int64{1: 10, 2: 30, 3: 5, 4: 12, 5: 60}
	for _, r := range res.Rows {
		if r[1].Int() != want[r[0].Int()] {
			t.Fatalf("pos %d: cum %d want %d", r[0].Int(), r[1].Int(), want[r[0].Int()])
		}
	}
}

// TestSelfJoinSimulationMatchesNative — Table 1's two strategies must agree.
func TestSelfJoinSimulationMatchesNative(t *testing.T) {
	opts := DefaultOptions()
	opts.UseMatViews = false
	native := New(opts)
	simOpts := opts
	simOpts.NativeWindow = false
	sim := New(simOpts)

	rng := rand.New(rand.NewSource(21))
	n := 50
	for _, e := range []*Engine{native, sim} {
		rng = rand.New(rand.NewSource(21))
		loadSeq(t, e, n, func(int) int64 { return int64(rng.Intn(100)) })
	}
	queries := []string{
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM seq`,
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 2 FOLLOWING) AS w FROM seq`,
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS w FROM seq`,
		`SELECT pos, MIN(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS w FROM seq`,
		`SELECT pos, AVG(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM seq`,
	}
	for _, q := range queries {
		rn := mustExec(t, native, q)
		rs := mustExec(t, sim, q)
		if rs.Rewritten == "" {
			t.Fatalf("%s: simulation engine did not rewrite", q)
		}
		gn, gs := rowsToPairs(t, rn.Rows), rowsToPairs(t, rs.Rows)
		if len(gn) != len(gs) {
			t.Fatalf("%s: cardinality %d vs %d", q, len(gn), len(gs))
		}
		for k, v := range gn {
			if math.Abs(gs[k]-v) > 1e-9 {
				t.Fatalf("%s at pos %d: native %v selfjoin %v", q, k, v, gs[k])
			}
		}
	}
}

// TestDerivationMatchesNative — the four Table 2 strategies must all agree
// with native evaluation over raw data.
func TestDerivationMatchesNative(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 80
	vals := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		vals = append(vals, int64(rng.Intn(100)-50))
	}
	build := func(opts Options) *Engine {
		e := New(opts)
		loadSeq(t, e, n, func(i int) int64 { return vals[i-1] })
		mustExec(t, e, `CREATE UNIQUE INDEX seq_pk ON seq (pos)`)
		mustExec(t, e, `CREATE MATERIALIZED VIEW matseq AS
		  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`)
		return e
	}
	nativeOpts := DefaultOptions()
	nativeOpts.UseMatViews = false
	native := build(nativeOpts)

	queries := []string{
		// The paper's running example (3,1) from (2,1) (Δl=1, Δh=0).
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w FROM seq`,
		// Double-sided (3,2) (Δl=1, Δh=1).
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 2 FOLLOWING) AS w FROM seq`,
		// Exact window match.
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS w FROM seq`,
		// Narrower window — only MinOA can do this.
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM seq`,
	}
	for _, strat := range []rewrite.Strategy{rewrite.StrategyAuto, rewrite.StrategyMaxOA, rewrite.StrategyMinOA} {
		for _, form := range []rewrite.Form{rewrite.FormDisjunctive, rewrite.FormUnion} {
			opts := DefaultOptions()
			opts.Strategy = strat
			opts.Form = form
			derived := build(opts)
			for qi, q := range queries {
				if strat == rewrite.StrategyMaxOA && qi == 3 {
					continue // MaxOA cannot narrow a window; engine falls back to native
				}
				rn := mustExec(t, native, q)
				rd := mustExec(t, derived, q)
				gn, gd := rowsToPairs(t, rn.Rows), rowsToPairs(t, rd.Rows)
				if len(gd) != len(gn) {
					t.Fatalf("strat=%v form=%v q%d: cardinality %d vs %d", strat, form, qi, len(gd), len(gn))
				}
				for k, v := range gn {
					if math.Abs(gd[k]-v) > 1e-9 {
						t.Fatalf("strat=%v form=%v q%d pos %d: native %v derived %v",
							strat, form, qi, k, v, gd[k])
					}
				}
				if qi != 3 && rd.Derivation == nil {
					t.Fatalf("strat=%v form=%v q%d: expected a derivation rewrite", strat, form, qi)
				}
			}
		}
	}
}

// TestDerivationFromCumulativeView — §3.1: sliding windows from a
// materialized cumulative view.
func TestDerivationFromCumulativeView(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	n := 60
	vals := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		vals = append(vals, int64(rng.Intn(60)-30))
	}
	build := func(useViews bool) *Engine {
		opts := DefaultOptions()
		opts.UseMatViews = useViews
		e := New(opts)
		loadSeq(t, e, n, func(i int) int64 { return vals[i-1] })
		if useViews {
			mustExec(t, e, `CREATE MATERIALIZED VIEW cumview AS
			  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS val FROM seq`)
		}
		return e
	}
	native, derived := build(false), build(true)
	q := `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 3 FOLLOWING) AS w FROM seq`
	rn, rd := mustExec(t, native, q), mustExec(t, derived, q)
	if rd.Derivation == nil {
		t.Fatal("expected derivation from the cumulative view")
	}
	gn, gd := rowsToPairs(t, rn.Rows), rowsToPairs(t, rd.Rows)
	for k, v := range gn {
		if math.Abs(gd[k]-v) > 1e-9 {
			t.Fatalf("pos %d: native %v derived %v", k, v, gd[k])
		}
	}
}

// TestDerivationMinMax — §4.2: MIN/MAX derivation via MaxOA.
func TestDerivationMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	n := 50
	vals := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		vals = append(vals, int64(rng.Intn(200)-100))
	}
	for _, agg := range []string{"MIN", "MAX"} {
		build := func(useViews bool) *Engine {
			opts := DefaultOptions()
			opts.UseMatViews = useViews
			e := New(opts)
			loadSeq(t, e, n, func(i int) int64 { return vals[i-1] })
			if useViews {
				mustExec(t, e, fmt.Sprintf(`CREATE MATERIALIZED VIEW mm AS
				  SELECT pos, %s(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS val FROM seq`, agg))
			}
			return e
		}
		native, derived := build(false), build(true)
		q := fmt.Sprintf(`SELECT pos, %s(val) OVER (ORDER BY pos ROWS BETWEEN 4 PRECEDING AND 3 FOLLOWING) AS w FROM seq`, agg)
		rn, rd := mustExec(t, native, q), mustExec(t, derived, q)
		if rd.Derivation == nil {
			t.Fatalf("%s: expected MIN/MAX derivation", agg)
		}
		gn, gd := rowsToPairs(t, rn.Rows), rowsToPairs(t, rd.Rows)
		for k, v := range gn {
			if gd[k] != v {
				t.Fatalf("%s pos %d: native %v derived %v", agg, k, v, gd[k])
			}
		}
	}
}

// TestViewMaintenanceThroughDML — §2.3 wired through SQL: updates, appends,
// and suffix deletes maintain the view; derivations stay correct.
func TestViewMaintenanceThroughDML(t *testing.T) {
	e := newEagerEngine(t)
	loadSeq(t, e, 30, func(i int) int64 { return int64(i) })
	mustExec(t, e, `CREATE MATERIALIZED VIEW mv AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`)

	check := func(ctx string) {
		t.Helper()
		q := `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w FROM seq`
		rd := mustExec(t, e, q)
		if rd.Derivation == nil {
			t.Fatalf("%s: derivation did not fire", ctx)
		}
		noViews := New(Options{NativeWindow: true, UseIndexes: true, UseHashJoin: true})
		noViews.Cat = e.Cat // same data, no view matching
		rn, err := noViews.Exec(q)
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		gn, gd := rowsToPairs(t, rn.Rows), rowsToPairs(t, rd.Rows)
		if len(gn) != len(gd) {
			t.Fatalf("%s: cardinality %d vs %d", ctx, len(gn), len(gd))
		}
		for k, v := range gn {
			if math.Abs(gd[k]-v) > 1e-9 {
				t.Fatalf("%s pos %d: native %v derived %v", ctx, k, v, gd[k])
			}
		}
	}

	check("initial")
	mustExec(t, e, `UPDATE seq SET val = 99 WHERE pos = 10`)
	check("after update")
	mustExec(t, e, `INSERT INTO seq VALUES (31, 500)`)
	check("after append")
	mustExec(t, e, `DELETE FROM seq WHERE pos = 31`)
	check("after suffix delete")
	if e.Views.Stale("mv") {
		t.Fatal("view should still be fresh")
	}
	if e.Views.MaintenanceEvents == 0 {
		t.Fatal("incremental maintenance should have fired")
	}

	// A non-append insert makes the view stale; queries error until REFRESH.
	mustExec(t, e, `DELETE FROM seq WHERE pos = 15`)
	if !e.Views.Stale("mv") {
		t.Fatal("middle delete must mark the view stale")
	}
	if _, err := e.Exec(`SELECT pos, val FROM mv`); err == nil {
		t.Fatal("querying a stale view must fail")
	}
	// Make the base dense again, then refresh.
	mustExec(t, e, `UPDATE seq SET pos = 15 WHERE pos = 30`)
	mustExec(t, e, `REFRESH MATERIALIZED VIEW mv`)
	if e.Views.Stale("mv") {
		t.Fatal("refresh must clear staleness")
	}
	check("after refresh")
}

func TestExplain(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 10, func(i int) int64 { return int64(i) })
	mustExec(t, e, `CREATE UNIQUE INDEX seq_pk ON seq (pos)`)
	res := mustExec(t, e, `EXPLAIN SELECT s1.pos, SUM(s2.val) AS w FROM seq s1, seq s2
	  WHERE s1.pos IN (s2.pos - 1, s2.pos, s2.pos + 1) GROUP BY s1.pos`)
	if !strings.Contains(res.Plan, "IndexNestedLoopJoin") {
		t.Fatalf("expected index join in plan:\n%s", res.Plan)
	}
	if !strings.Contains(res.Plan, "HashAggregate") {
		t.Fatalf("expected aggregation in plan:\n%s", res.Plan)
	}
}

func TestEngineErrors(t *testing.T) {
	e := newEngine(t)
	cases := []string{
		`SELECT * FROM missing`,
		`SELECT nope FROM missing`,
		`INSERT INTO missing VALUES (1)`,
		`UPDATE missing SET a = 1`,
		`DELETE FROM missing`,
		`DROP TABLE missing`,
		`DROP MATERIALIZED VIEW missing`,
		`REFRESH MATERIALIZED VIEW missing`,
		`CREATE INDEX i ON missing (a)`,
	}
	for _, q := range cases {
		if _, err := e.Exec(q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
	mustExec(t, e, `CREATE TABLE t (a INTEGER)`)
	if _, err := e.Exec(`SELECT b FROM t`); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := e.Exec(`INSERT INTO t (b) VALUES (1)`); err == nil {
		t.Error("insert into unknown column should fail")
	}
	if _, err := e.Exec(`INSERT INTO t VALUES (1, 2)`); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := e.Exec(`SELECT a FROM t UNION SELECT a, a FROM t`); err == nil {
		t.Error("union arity mismatch should fail")
	}
}

// TestSequenceViewValidation — density and shape checks at creation time.
func TestSequenceViewValidation(t *testing.T) {
	e := newEngine(t)
	mustExecAll(t, e, `
	  CREATE TABLE gaps (pos INTEGER, val INTEGER);
	  INSERT INTO gaps VALUES (1, 10), (3, 30);
	`)
	err := func() error {
		_, err := e.Exec(`CREATE MATERIALIZED VIEW g AS
		  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS val FROM gaps`)
		return err
	}()
	if err == nil || !strings.Contains(err.Error(), "dense") {
		t.Fatalf("gap positions must be rejected: %v", err)
	}
}

// TestPlainMatView — non-sequence view materialization and refresh.
func TestPlainMatView(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 10, func(i int) int64 { return int64(i) })
	mustExec(t, e, `CREATE MATERIALIZED VIEW totals AS
	  SELECT MOD(pos, 2) AS par, SUM(val) AS s FROM seq GROUP BY MOD(pos, 2)`)
	res := mustExec(t, e, `SELECT par, s FROM totals ORDER BY par`)
	if len(res.Rows) != 2 || res.Rows[0][1].Int() != 30 || res.Rows[1][1].Int() != 25 {
		t.Fatalf("plain view rows = %v", res.Rows)
	}
	// Snapshots don't see base changes until refresh.
	mustExec(t, e, `UPDATE seq SET val = 100 WHERE pos = 2`)
	res = mustExec(t, e, `SELECT s FROM totals WHERE par = 0`)
	if res.Rows[0][0].Int() != 30 {
		t.Fatalf("plain view must be a snapshot: %v", res.Rows)
	}
	mustExec(t, e, `REFRESH MATERIALIZED VIEW totals`)
	res = mustExec(t, e, `SELECT s FROM totals WHERE par = 0`)
	if res.Rows[0][0].Int() != 128 {
		t.Fatalf("refreshed view rows = %v", res.Rows)
	}
}

// TestOrderByStability checks NULLs-first ordering and DESC.
func TestOrderBySemantics(t *testing.T) {
	e := newEngine(t)
	mustExecAll(t, e, `
	  CREATE TABLE t (a INTEGER, b INTEGER);
	  INSERT INTO t (a, b) VALUES (3, 1), (1, 2), (2, 3);
	  INSERT INTO t (b) VALUES (4);
	`)
	res := mustExec(t, e, `SELECT a FROM t ORDER BY a`)
	if !res.Rows[0][0].IsNull() || res.Rows[1][0].Int() != 1 {
		t.Fatalf("NULLs must sort first: %v", res.Rows)
	}
	res = mustExec(t, e, `SELECT a FROM t ORDER BY a DESC`)
	if res.Rows[0][0].Int() != 3 || !res.Rows[3][0].IsNull() {
		t.Fatalf("DESC order wrong: %v", res.Rows)
	}
}

// TestIntroQueryEndToEnd runs the paper's introduction query (adapted) over
// a small generated credit-card workload.
func TestIntroQueryEndToEnd(t *testing.T) {
	e := newEngine(t)
	mustExecAll(t, e, `
	  CREATE TABLE c_transactions (c_custid INTEGER, c_locid INTEGER, c_date DATE, c_transaction INTEGER);
	  CREATE TABLE l_locations (l_locid INTEGER, l_city VARCHAR(20), l_region VARCHAR(20));
	  INSERT INTO l_locations VALUES (1, 'Erlangen', 'Bavaria'), (2, 'Dresden', 'Saxony');
	  INSERT INTO c_transactions VALUES
	    (4711, 1, DATE '2001-01-05', 100),
	    (4711, 1, DATE '2001-01-20', 50),
	    (4711, 2, DATE '2001-02-03', 70),
	    (4711, 2, DATE '2001-02-14', 30),
	    (4711, 1, DATE '2001-03-02', 20),
	    (9999, 1, DATE '2001-01-06', 999);
	`)
	res := mustExec(t, e, `
	  SELECT c_date, c_transaction,
	    SUM(c_transaction) OVER (ORDER BY c_date ROWS UNBOUNDED PRECEDING) AS cum_sum_total,
	    SUM(c_transaction) OVER (PARTITION BY MONTH(c_date) ORDER BY c_date ROWS UNBOUNDED PRECEDING) AS cum_sum_month,
	    AVG(c_transaction) OVER (PARTITION BY MONTH(c_date), l_region ORDER BY c_date
	                             ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS c_3mvg_avg,
	    AVG(c_transaction) OVER (ORDER BY c_date ROWS BETWEEN CURRENT ROW AND 6 FOLLOWING) AS c_7mvg_avg
	  FROM c_transactions, l_locations
	  WHERE c_locid = l_locid AND c_custid = 4711
	  ORDER BY c_date`)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Cumulative total over dates: 100, 150, 220, 250, 270.
	wantCum := []int64{100, 150, 220, 250, 270}
	for i, r := range res.Rows {
		if r[2].Int() != wantCum[i] {
			t.Fatalf("cum_sum_total[%d] = %v, want %d", i, r[2], wantCum[i])
		}
	}
	// Monthly cumulative resets: Jan 100,150; Feb 70,100; Mar 20.
	wantMonth := []int64{100, 150, 70, 100, 20}
	for i, r := range res.Rows {
		if r[3].Int() != wantMonth[i] {
			t.Fatalf("cum_sum_month[%d] = %v, want %d", i, r[3], wantMonth[i])
		}
	}
}

// TestMultisetsEqual guards the helper used across benchmarks: results may
// arrive in any order; compare sorted.
func TestResultOrderIndependence(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 10, func(i int) int64 { return int64(i) })
	res := mustExec(t, e, `SELECT pos FROM seq`)
	got := make([]int64, len(res.Rows))
	for i, r := range res.Rows {
		got[i] = r[0].Int()
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i, v := range got {
		if v != int64(i+1) {
			t.Fatalf("positions = %v", got)
		}
	}
}
