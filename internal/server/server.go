package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	rferrors "rfview/errors"
	"rfview/internal/engine"
	"rfview/internal/metrics"
)

// ErrServerClosed is returned by Serve after Shutdown begins.
var ErrServerClosed = errors.New("server: closed")

// maxLineBytes bounds one request line; a longer line stops the read and
// closes the connection before it can buffer unbounded input.
const maxLineBytes = 1 << 20

// Session is the per-connection state: identity and counters. It is created
// at accept time and lives until the connection closes.
type Session struct {
	ID         uint64
	RemoteAddr string
	Started    time.Time

	conn     net.Conn
	requests atomic.Uint64
	queries  atomic.Uint64 // "query" and "explain" requests
	execs    atomic.Uint64 // "exec" requests

	// db is the engine session this connection's statements run through; it
	// holds the connection's open transaction (if any), so BEGIN/COMMIT/
	// ROLLBACK work over the wire. Closed (rolling back) on disconnect.
	db *engine.Session
}

// Requests returns the number of requests this session has served.
func (s *Session) Requests() uint64 { return s.requests.Load() }

// Stats aggregates server-wide counters.
type Stats struct {
	Accepted uint64 // connections accepted over the server's lifetime
	Active   int    // connections open right now
	Requests uint64 // requests served
	Errors   uint64 // requests answered with ok=false
}

// Server serves an engine over TCP.
type Server struct {
	eng     *engine.Engine
	started time.Time

	mu         sync.Mutex
	lis        net.Listener
	sessions   map[*Session]struct{}
	nextSessID uint64

	wg         sync.WaitGroup
	inShutdown atomic.Bool

	accepted atomic.Uint64
	requests atomic.Uint64
	errors   atomic.Uint64

	// opSeconds times each protocol op; inFlight counts requests currently
	// being dispatched. Both live on the engine's registry so one scrape
	// covers engine, WAL, and server.
	opSeconds *metrics.HistogramVec
	inFlight  *metrics.Gauge
}

// New wraps an engine in a server.
func New(eng *engine.Engine) *Server {
	s := &Server{eng: eng, started: time.Now(), sessions: make(map[*Session]struct{})}
	reg := eng.Metrics()
	s.opSeconds = reg.HistogramVec("rfview_server_op_seconds",
		"Server-side request latency, by protocol op.", "op", metrics.DefBuckets)
	s.inFlight = reg.Gauge("rfview_server_in_flight_requests",
		"Requests currently being dispatched.")
	reg.GaugeFunc("rfview_server_active_sessions",
		"Connections open right now.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.sessions))
		})
	return s
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	active := len(s.sessions)
	s.mu.Unlock()
	return Stats{
		Accepted: s.accepted.Load(),
		Active:   active,
		Requests: s.requests.Load(),
		Errors:   s.errors.Load(),
	}
}

// Addr returns the listener address, once serving.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// ListenAndServe listens on addr ("host:port") and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections on lis, one goroutine per connection, until
// Shutdown. It returns ErrServerClosed after a clean shutdown.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.inShutdown.Load() {
		s.mu.Unlock()
		lis.Close()
		return ErrServerClosed
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if s.inShutdown.Load() {
				return ErrServerClosed
			}
			return err
		}
		s.accepted.Add(1)
		sess := &Session{RemoteAddr: conn.RemoteAddr().String(), Started: time.Now(), conn: conn, db: s.eng.NewSession()}
		s.mu.Lock()
		s.nextSessID++
		sess.ID = s.nextSessID
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(sess)
	}
}

// Shutdown stops accepting connections and drains in-flight requests: every
// request already read off a socket gets its response, then connections
// close. If ctx expires first, remaining connections are closed forcibly and
// the context error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.inShutdown.Store(true)
	s.mu.Lock()
	if s.lis != nil {
		s.lis.Close()
	}
	// Wake sessions blocked reading their next request. Sessions that are
	// mid-request keep going: the deadline only gates future reads, and the
	// handler checks inShutdown after responding.
	for sess := range s.sessions {
		sess.conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (s *Server) serveConn(sess *Session) {
	defer s.wg.Done()
	defer func() {
		sess.db.Close() // roll back any transaction left open by a vanished client
		sess.conn.Close()
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
	}()
	sc := bufio.NewScanner(sess.conn)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	w := bufio.NewWriterSize(sess.conn, 64<<10)
	enc := json.NewEncoder(w)
	for {
		if !sc.Scan() {
			// EOF, oversized line, shutdown wake-up, or broken pipe:
			// close quietly.
			return
		}
		line := sc.Bytes()
		var req Request
		var resp Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = Response{OK: false, Error: fmt.Sprintf("bad request: %v", err)}
		} else {
			resp = s.dispatch(sess, &req)
		}
		s.requests.Add(1)
		sess.requests.Add(1)
		if !resp.OK {
			s.errors.Add(1)
		}
		err := enc.Encode(&resp) // Encode appends the delimiting newline
		if err == nil {
			err = w.Flush()
		}
		if err != nil {
			return
		}
		if s.inShutdown.Load() {
			return // drained: the response above was this session's last
		}
	}
}

// dispatch executes one request against the engine.
func (s *Server) dispatch(sess *Session, req *Request) Response {
	resp := Response{ID: req.ID, Session: sess.ID}
	start := time.Now()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	switch req.Op {
	case "ping":
		resp.OK = true
	case "stats":
		resp.OK = true
		resp.Stats = s.statsReply(sess)
	case "metrics":
		resp.OK = true
		resp.Metrics = s.eng.Metrics().Expose()
	case "query", "exec", "explain":
		sql := req.SQL
		if req.Op == "exec" {
			sess.execs.Add(1)
		} else {
			sess.queries.Add(1)
		}
		if req.Op == "explain" {
			if req.Analyze {
				sql = "EXPLAIN ANALYZE " + sql
			} else {
				sql = "EXPLAIN " + sql
			}
		}
		ctx := context.Background()
		if req.TimeoutMs > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
			defer cancel()
		}
		var opts []engine.ExecOption
		if req.Analyze && req.Op != "explain" {
			opts = append(opts, engine.WithAnalyze())
		}
		res, err := sess.db.ExecContext(ctx, sql, opts...)
		if err != nil {
			resp.Error = err.Error()
			resp.Code = string(rferrors.CodeOf(err))
			break
		}
		resp.OK = true
		resp.Affected = res.Affected
		resp.Rewritten = res.Rewritten
		if req.Op == "explain" {
			resp.Plan = res.Plan
		} else {
			resp.Columns = res.Columns
			resp.Rows = rowsToJSON(res.Rows)
			resp.Plan = res.Analyzed
		}
	default:
		resp.Error = fmt.Sprintf("unknown op %q", req.Op)
		resp.Code = string(rferrors.CodeUnsupported)
	}
	resp.ElapsedUs = time.Since(start).Microseconds()
	// Unknown ops share one label value: client-controlled strings must not
	// mint unbounded series.
	op := req.Op
	switch op {
	case "ping", "stats", "metrics", "query", "exec", "explain":
	default:
		op = "unknown"
	}
	s.opSeconds.With(op).ObserveDuration(time.Since(start))
	return resp
}

// bufferPoolStats converts the engine's pool snapshot to wire form.
func bufferPoolStats(eng *engine.Engine) BufferPoolStats {
	ps := eng.StorageStats()
	if ps.PageSize == 0 {
		return BufferPoolStats{}
	}
	return BufferPoolStats{
		PageSize:    ps.PageSize,
		PagesCached: ps.PagesCached,
		PagesPinned: ps.PagesPinned,
		PagesDirty:  ps.PagesDirty,
		Hits:        ps.Hits,
		Misses:      ps.Misses,
		Evictions:   ps.Evictions,
		Writebacks:  ps.Writebacks,
		HitRatio:    ps.HitRatio(),
	}
}

// statsReply assembles the "stats" payload for one asking session.
func (s *Server) statsReply(sess *Session) *StatsReply {
	st := s.Stats()
	cs := s.eng.PlanCacheStats()
	ts := s.eng.TxnStats()
	par := s.eng.Opts.WindowParallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	return &StatsReply{
		UptimeSec:      int64(time.Since(s.started).Seconds()),
		Accepted:       st.Accepted,
		ActiveSessions: st.Active,
		Requests:       st.Requests,
		Errors:         st.Errors,
		SessionID:      sess.ID,
		SessionQueries: sess.queries.Load(),
		SessionExecs:   sess.execs.Load(),
		SessionInTxn:   sess.db.InTxn(),
		PlanCache: CacheStats{
			Len: cs.Len, Capacity: cs.Capacity,
			Hits: cs.Hits, Misses: cs.Misses,
			Evictions: cs.Evictions, Invalidations: cs.Invalidations,
		},
		WindowParallelism: par,
		Spill: SpillStats{
			BudgetBytes:     s.eng.SpillBudget().Limit(),
			BudgetUsedBytes: s.eng.SpillBudget().Used(),
			Runs:            s.eng.SpillStats().Runs.Load(),
			RunBytes:        s.eng.SpillStats().RunBytes.Load(),
			Merges:          s.eng.SpillStats().Merges.Load(),
			Operators:       s.eng.SpillStats().Spills.Load(),
		},
		BufferPool: bufferPoolStats(s.eng),
		Maintenance: MaintenanceStats{
			Mode:          s.eng.MaintenanceMode().String(),
			DeltaApplied:  s.eng.Views.Stats().DeltaApplied.Load(),
			FullRefreshes: s.eng.Views.Stats().FullRefreshes.Load(),
			Pending:       s.eng.Views.PendingTotal(),
		},
		Txn: TxnStats{
			Begins:         ts.Begins,
			Commits:        ts.Commits,
			Rollbacks:      ts.Rollbacks,
			ConflictAborts: ts.ConflictAborts,
		},
	}
}
