package engine

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"rfview/internal/rewrite"
)

// loadPartitionedSeq creates pseq(grp, pos, val) with per-partition dense
// positions 1…n_g — the §6.2 layout (e.g. day-of-month within each month).
func loadPartitionedSeq(t *testing.T, e *Engine, groups []string, perGroup int, seed int64) {
	t.Helper()
	mustExec(t, e, `CREATE TABLE pseq (grp VARCHAR(10), pos INTEGER, val INTEGER)`)
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("INSERT INTO pseq VALUES ")
	first := true
	for _, g := range groups {
		for i := 1; i <= perGroup; i++ {
			if !first {
				b.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&b, "('%s', %d, %d)", g, i, rng.Intn(100)-50)
		}
	}
	mustExec(t, e, b.String())
}

const partViewDDL = `CREATE MATERIALIZED VIEW pmv AS
  SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos
    ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM pseq`

// partPairs keys derived results by (grp, pos).
func partPairs(t *testing.T, res *Result) map[string]float64 {
	t.Helper()
	out := make(map[string]float64, len(res.Rows))
	for _, r := range res.Rows {
		out[r[0].Str()+"#"+r[1].String()] = r[2].Float()
	}
	return out
}

func checkPartitionedAgainstNative(t *testing.T, e *Engine, q, ctx string) {
	t.Helper()
	derived := mustExec(t, e, q)
	if derived.Derivation == nil {
		t.Fatalf("%s: partitioned derivation did not fire", ctx)
	}
	opts := e.Opts
	noViews := opts
	noViews.UseMatViews = false
	e.Opts = noViews
	native := mustExec(t, e, q)
	e.Opts = opts
	gn, gd := partPairs(t, native), partPairs(t, derived)
	if len(gn) != len(gd) {
		t.Fatalf("%s: cardinality %d vs %d", ctx, len(gn), len(gd))
	}
	for k, v := range gn {
		if math.Abs(gd[k]-v) > 1e-9 {
			t.Fatalf("%s at %s: native %v derived %v", ctx, k, v, gd[k])
		}
	}
}

// TestPartitionedExactMatch — a partitioned view answers the identical
// query directly.
func TestPartitionedExactMatch(t *testing.T) {
	e := newEngine(t)
	loadPartitionedSeq(t, e, []string{"jan", "feb", "mar"}, 15, 1)
	mustExec(t, e, partViewDDL)
	checkPartitionedAgainstNative(t, e, `SELECT grp, pos, SUM(val) OVER (PARTITION BY grp
	  ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS w FROM pseq`, "exact")
}

// TestPartitionedDerivation — MaxOA/MinOA across a different window, per
// partition, in both forms.
func TestPartitionedDerivation(t *testing.T) {
	for _, form := range []string{"disjunctive", "union"} {
		opts := DefaultOptions()
		if form == "union" {
			opts.Form = rewrite.FormUnion
		}
		e := New(opts)
		// Uneven partition sizes stress the per-partition header/trailer.
		mustExec(t, e, `CREATE TABLE pseq (grp VARCHAR(10), pos INTEGER, val INTEGER)`)
		rng := rand.New(rand.NewSource(9))
		var b strings.Builder
		b.WriteString("INSERT INTO pseq VALUES ")
		first := true
		for gi, g := range []string{"a", "b", "c"} {
			for i := 1; i <= 8+gi*5; i++ {
				if !first {
					b.WriteString(", ")
				}
				first = false
				fmt.Fprintf(&b, "('%s', %d, %d)", g, i, rng.Intn(60)-30)
			}
		}
		mustExec(t, e, b.String())
		mustExec(t, e, partViewDDL)
		checkPartitionedAgainstNative(t, e, `SELECT grp, pos, SUM(val) OVER (PARTITION BY grp
		  ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 2 FOLLOWING) AS w FROM pseq`, form+" widened")
		checkPartitionedAgainstNative(t, e, `SELECT grp, pos, SUM(val) OVER (PARTITION BY grp
		  ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM pseq`, form+" narrowed")
	}
}

// TestPartitionedMinMaxDerivation — §4.2 MIN/MAX per partition.
func TestPartitionedMinMaxDerivation(t *testing.T) {
	e := newEngine(t)
	loadPartitionedSeq(t, e, []string{"x", "y"}, 12, 3)
	mustExec(t, e, `CREATE MATERIALIZED VIEW pmm AS
	  SELECT grp, pos, MIN(val) OVER (PARTITION BY grp ORDER BY pos
	    ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS val FROM pseq`)
	checkPartitionedAgainstNative(t, e, `SELECT grp, pos, MIN(val) OVER (PARTITION BY grp
	  ORDER BY pos ROWS BETWEEN 4 PRECEDING AND 3 FOLLOWING) AS w FROM pseq`, "min")
}

// TestPartitionedMaintenance — per-partition incremental maintenance through
// SQL DML.
func TestPartitionedMaintenance(t *testing.T) {
	e := newEagerEngine(t)
	loadPartitionedSeq(t, e, []string{"jan", "feb"}, 10, 5)
	mustExec(t, e, partViewDDL)
	q := `SELECT grp, pos, SUM(val) OVER (PARTITION BY grp
	  ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w FROM pseq`

	// Value update inside one partition.
	mustExec(t, e, `UPDATE pseq SET val = 77 WHERE grp = 'jan' AND pos = 5`)
	if e.Views.Stale("pmv") {
		t.Fatal("value update must stay incremental")
	}
	checkPartitionedAgainstNative(t, e, q, "after update")

	// Append to one partition.
	mustExec(t, e, `INSERT INTO pseq VALUES ('feb', 11, 99)`)
	if e.Views.Stale("pmv") {
		t.Fatal("append must stay incremental")
	}
	checkPartitionedAgainstNative(t, e, q, "after append")

	// A brand-new partition starting at position 1.
	mustExec(t, e, `INSERT INTO pseq VALUES ('mar', 1, 5), ('mar', 2, 6)`)
	if e.Views.Stale("pmv") {
		t.Fatal("new partition must stay incremental")
	}
	checkPartitionedAgainstNative(t, e, q, "after new partition")

	// Suffix delete within a partition.
	mustExec(t, e, `DELETE FROM pseq WHERE grp = 'feb' AND pos = 11`)
	if e.Views.Stale("pmv") {
		t.Fatal("suffix delete must stay incremental")
	}
	checkPartitionedAgainstNative(t, e, q, "after suffix delete")

	if e.Views.MaintenanceEvents == 0 {
		t.Fatal("expected incremental maintenance events")
	}

	// Middle delete breaks per-partition density → stale.
	mustExec(t, e, `DELETE FROM pseq WHERE grp = 'jan' AND pos = 4`)
	if !e.Views.Stale("pmv") {
		t.Fatal("middle delete must mark the view stale")
	}
	// Restore density and refresh.
	mustExec(t, e, `UPDATE pseq SET pos = 4 WHERE grp = 'jan' AND pos = 10`)
	mustExec(t, e, `REFRESH MATERIALIZED VIEW pmv`)
	if e.Views.Stale("pmv") {
		t.Fatal("refresh must clear staleness")
	}
	checkPartitionedAgainstNative(t, e, q, "after refresh")
}

// TestPartitionedViewRequiresPerPartitionDensity — creation fails on gaps.
func TestPartitionedViewDensityValidation(t *testing.T) {
	e := newEngine(t)
	mustExecAll(t, e, `
	  CREATE TABLE pseq (grp VARCHAR(10), pos INTEGER, val INTEGER);
	  INSERT INTO pseq VALUES ('a', 1, 1), ('a', 3, 3);
	`)
	_, err := e.Exec(partViewDDL)
	if err == nil || !strings.Contains(err.Error(), "dense") {
		t.Fatalf("per-partition gap must be rejected: %v", err)
	}
}

// TestPartitionedCumulativeExactOnly — cumulative partitioned views answer
// exact matches; different windows fall back to native evaluation.
func TestPartitionedCumulativeExactOnly(t *testing.T) {
	e := newEngine(t)
	loadPartitionedSeq(t, e, []string{"a", "b"}, 8, 11)
	mustExec(t, e, `CREATE MATERIALIZED VIEW pcum AS
	  SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos
	    ROWS UNBOUNDED PRECEDING) AS val FROM pseq`)
	checkPartitionedAgainstNative(t, e, `SELECT grp, pos, SUM(val) OVER (PARTITION BY grp
	  ORDER BY pos ROWS UNBOUNDED PRECEDING) AS w FROM pseq`, "cumulative exact")
	res := mustExec(t, e, `SELECT grp, pos, SUM(val) OVER (PARTITION BY grp
	  ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM pseq`)
	if res.Derivation != nil {
		t.Fatal("partitioned cumulative view must not answer sliding windows")
	}
}
