package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randRaw returns n integer-valued raw data points in [-50, 50] so that all
// SUM identities are exact in float64.
func randRaw(rng *rand.Rand, n int) []float64 {
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = float64(rng.Intn(101) - 50)
	}
	return raw
}

func TestWindowValidate(t *testing.T) {
	cases := []struct {
		w  Window
		ok bool
	}{
		{Cumul(), true},
		{Sliding(1, 1), true},
		{Sliding(0, 3), true},
		{Sliding(3, 0), true},
		{Sliding(0, 0), false},
		{Sliding(-1, 2), false},
		{Sliding(2, -1), false},
	}
	for _, c := range cases {
		err := c.w.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v) error=%v, want ok=%v", c.w, err, c.ok)
		}
	}
}

func TestWindowBoundsAndSize(t *testing.T) {
	w := Sliding(2, 1)
	if got := w.Size(); got != 4 {
		t.Fatalf("Size() = %d, want 4", got)
	}
	lo, hi := w.Bounds(10)
	if lo != 8 || hi != 11 {
		t.Fatalf("Bounds(10) = [%d,%d], want [8,11]", lo, hi)
	}
	c := Cumul()
	if c.Size() != -1 {
		t.Fatalf("cumulative Size() = %d, want -1", c.Size())
	}
	lo, hi = c.Bounds(7)
	if lo != 1 || hi != 7 {
		t.Fatalf("cumulative Bounds(7) = [%d,%d], want [1,7]", lo, hi)
	}
}

func TestStoredRange(t *testing.T) {
	// A complete (l,h) sequence stores header 1-h..0 and trailer n+1..n+l
	// (§3.2, Fig. 7): for x̃=(2,1) over n=5 that is positions 0..7.
	s, err := ComputeNaive(make([]float64, 5), Sliding(2, 1), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if s.Lo() != 0 || s.Hi() != 7 {
		t.Fatalf("stored range [%d,%d], want [0,7]", s.Lo(), s.Hi())
	}
	// Left-bounded (l=0): no trailer. Right-bounded (h=0): no header.
	s, _ = ComputeNaive(make([]float64, 5), Sliding(0, 2), Sum)
	if s.Lo() != -1 || s.Hi() != 5 {
		t.Fatalf("left-bounded stored range [%d,%d], want [-1,5]", s.Lo(), s.Hi())
	}
	s, _ = ComputeNaive(make([]float64, 5), Sliding(2, 0), Sum)
	if s.Lo() != 1 || s.Hi() != 7 {
		t.Fatalf("right-bounded stored range [%d,%d], want [1,7]", s.Lo(), s.Hi())
	}
}

func TestComputeNaiveKnownValues(t *testing.T) {
	raw := []float64{1, 2, 3, 4, 5}
	s, err := ComputeNaive(raw, Sliding(1, 1), Sum)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{
		0: 1,  // header: window [-1,1] ∩ [1,5] = {1}
		1: 3,  // 1+2
		2: 6,  // 1+2+3
		3: 9,  // 2+3+4
		4: 12, // 3+4+5
		5: 9,  // 4+5
		6: 5,  // trailer: {5}
	}
	for k, v := range want {
		if got := s.At(k); got != v {
			t.Errorf("At(%d) = %v, want %v", k, got, v)
		}
	}
	// Outside the stored range the zero convention applies.
	if s.At(-1) != 0 || s.At(7) != 0 {
		t.Errorf("outside stored range: At(-1)=%v At(7)=%v, want 0, 0", s.At(-1), s.At(7))
	}
}

func TestComputeCumulativeKnownValues(t *testing.T) {
	raw := []float64{3, 1, 4, 1, 5}
	s, err := ComputePipelined(raw, Cumul(), Sum)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 3, 4, 8, 9, 14}
	for k := 0; k <= 5; k++ {
		if got := s.At(k); got != want[k] {
			t.Errorf("At(%d) = %v, want %v", k, got, want[k])
		}
	}
	// Right of n a cumulative sequence stays at the grand total.
	if got := s.At(9); got != 14 {
		t.Errorf("At(9) = %v, want 14 (grand total)", got)
	}
	if got := s.At(-3); got != 0 {
		t.Errorf("At(-3) = %v, want 0 (empty prefix)", got)
	}
}

// TestPipelinedMatchesNaive is the §2.2 equivalence: the three-operation
// recursion computes the same sequence as the explicit form, for every
// aggregate and window shape.
func TestPipelinedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	aggs := []Agg{Sum, Count, Avg, Min, Max}
	wins := []Window{Cumul(), Sliding(1, 1), Sliding(2, 1), Sliding(0, 6), Sliding(3, 0), Sliding(5, 7)}
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(60)
		raw := randRaw(rng, n)
		for _, agg := range aggs {
			for _, w := range wins {
				naive, err := ComputeNaive(raw, w, agg)
				if err != nil {
					t.Fatal(err)
				}
				fast, err := ComputePipelined(raw, w, agg)
				if err != nil {
					t.Fatal(err)
				}
				if !EqualSeq(naive, fast, 1e-9) {
					t.Fatalf("trial %d: pipelined != naive for agg=%v win=%v n=%d", trial, agg, w, n)
				}
			}
		}
	}
}

// TestNeighbourRelationship verifies the algebraic relationship of Fig. 3:
// x̃_k + x_{k−l−1} = x̃_{k−1} + x_{k+h}.
func TestNeighbourRelationship(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(40)
		l, h := rng.Intn(4), rng.Intn(4)
		if l+h == 0 {
			h = 1
		}
		raw := randRaw(rng, n)
		s, err := ComputeNaive(raw, Sliding(l, h), Sum)
		if err != nil {
			t.Fatal(err)
		}
		for k := s.Lo() + 1; k <= s.Hi(); k++ {
			lhs := s.At(k) + rawAt(raw, k-l-1)
			rhs := s.At(k-1) + rawAt(raw, k+h)
			if math.Abs(lhs-rhs) > 1e-9 {
				t.Fatalf("Fig. 3 relationship violated at k=%d (l=%d h=%d)", k, l, h)
			}
		}
	}
}

// TestReportingDoesNotShrink checks the observation from §1 that reporting
// functions produce one output value per input value.
func TestReportingDoesNotShrink(t *testing.T) {
	raw := randRaw(rand.New(rand.NewSource(1)), 17)
	for _, w := range []Window{Cumul(), Sliding(1, 1), Sliding(0, 6)} {
		s, err := ComputePipelined(raw, w, Sum)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(s.Body()); got != len(raw) {
			t.Errorf("window %v: Body() has %d values, want %d", w, got, len(raw))
		}
	}
}

func TestCountSequence(t *testing.T) {
	raw := make([]float64, 6)
	s, err := ComputePipelined(raw, Sliding(2, 1), Count)
	if err != nil {
		t.Fatal(err)
	}
	// Interior windows count 4 positions; boundaries clip against [1,n].
	want := map[int]float64{0: 1, 1: 2, 2: 3, 3: 4, 4: 4, 5: 4, 6: 3, 7: 2, 8: 1}
	for k, v := range want {
		if got := s.At(k); got != v {
			t.Errorf("count At(%d) = %v, want %v", k, got, v)
		}
	}
}

func TestMinMaxEmptyWindows(t *testing.T) {
	raw := []float64{5, -2, 7}
	s, err := ComputePipelined(raw, Sliding(1, 2), Min)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.AtOK(-5); ok {
		t.Error("AtOK far left of header should report empty")
	}
	v, ok := s.AtOK(-1) // window [-2,1] ∩ [1,3] = {1}
	if !ok || v != 5 {
		t.Errorf("AtOK(-1) = (%v,%v), want (5,true)", v, ok)
	}
	v, ok = s.AtOK(2) // window [1,4] ∩ [1,3]: min(5,-2,7)
	if !ok || v != -2 {
		t.Errorf("AtOK(2) = (%v,%v), want (-2,true)", v, ok)
	}
}

func TestBodyVsValues(t *testing.T) {
	raw := []float64{1, 2, 3}
	s, _ := ComputeNaive(raw, Sliding(1, 1), Sum)
	body := s.Body()
	if len(body) != 3 || body[0] != 3 || body[1] != 6 || body[2] != 5 {
		t.Fatalf("Body() = %v, want [3 6 5]", body)
	}
	vals := s.Values()
	if len(vals) != s.Len() {
		t.Fatalf("Values() length %d, want %d", len(vals), s.Len())
	}
}

// Property: for any sliding window, the window size relation W(k)=1+l+h
// holds via COUNT on interior positions (quick-check over generated specs).
func TestQuickWindowSizeViaCount(t *testing.T) {
	f := func(lRaw, hRaw uint8, nRaw uint8) bool {
		l, h := int(lRaw%5), int(hRaw%5)
		if l+h == 0 {
			h = 1
		}
		n := int(nRaw%40) + l + h + 2 // ensure interior positions exist
		s, err := ComputePipelined(make([]float64, n), Sliding(l, h), Count)
		if err != nil {
			return false
		}
		for k := 1 + l; k <= n-h; k++ {
			if s.At(k) != float64(1+l+h) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cumulative sequences are prefix sums — x̃_k − x̃_{k−1} = x_k.
func TestQuickCumulativePrefix(t *testing.T) {
	f := func(vals []int8) bool {
		raw := make([]float64, len(vals))
		for i, v := range vals {
			raw[i] = float64(v)
		}
		s, err := ComputePipelined(raw, Cumul(), Sum)
		if err != nil {
			return false
		}
		for k := 1; k <= len(raw); k++ {
			if math.Abs((s.At(k)-s.At(k-1))-raw[k-1]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAggString(t *testing.T) {
	if Sum.String() != "SUM" || Count.String() != "COUNT" || Avg.String() != "AVG" ||
		Min.String() != "MIN" || Max.String() != "MAX" {
		t.Error("Agg.String() mismatch")
	}
	if !Sum.Algebraic() || Min.Algebraic() {
		t.Error("Algebraic() mismatch")
	}
}

func TestWindowString(t *testing.T) {
	if Cumul().String() != "cumulative" {
		t.Errorf("Cumul().String() = %q", Cumul().String())
	}
	if Sliding(2, 1).String() != "(2,1)" {
		t.Errorf("Sliding(2,1).String() = %q", Sliding(2, 1).String())
	}
	if !Sliding(2, 1).Equal(Sliding(2, 1)) || Sliding(2, 1).Equal(Sliding(1, 2)) || Sliding(2, 1).Equal(Cumul()) {
		t.Error("Window.Equal mismatch")
	}
}
