package storage

import (
	"bytes"
	"fmt"
	"testing"
)

func TestPageAppendRecordRoundtrip(t *testing.T) {
	buf := make([]byte, MinPageSize)
	initPage(buf)
	if n := pageNumSlots(buf); n != 0 {
		t.Fatalf("fresh page has %d slots", n)
	}
	var recs [][]byte
	for i := 0; ; i++ {
		rec := []byte(fmt.Sprintf("record-%03d-%s", i, string(bytes.Repeat([]byte{byte(i)}, i%40))))
		slot, ok := pageAppend(buf, rec)
		if !ok {
			break
		}
		if int(slot) != i {
			t.Fatalf("append %d landed in slot %d", i, slot)
		}
		recs = append(recs, rec)
	}
	if len(recs) < 2 {
		t.Fatalf("page accepted only %d records", len(recs))
	}
	if n := pageNumSlots(buf); n != len(recs) {
		t.Fatalf("nslots = %d, want %d", n, len(recs))
	}
	for i, want := range recs {
		got, err := pageRecord(buf, uint16(i))
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("slot %d: got %q, want %q", i, got, want)
		}
	}
}

func TestPageCapExactFit(t *testing.T) {
	buf := make([]byte, MinPageSize)
	initPage(buf)
	rec := bytes.Repeat([]byte{'x'}, pageCap(MinPageSize))
	if _, ok := pageAppend(buf, rec); !ok {
		t.Fatal("pageCap-sized record rejected by an empty page")
	}
	initPage(buf)
	if _, ok := pageAppend(buf, append(rec, 'y')); ok {
		t.Fatal("record one byte over pageCap accepted")
	}
}

func TestPageRecordBounds(t *testing.T) {
	buf := make([]byte, MinPageSize)
	initPage(buf)
	if _, ok := pageAppend(buf, []byte("hi")); !ok {
		t.Fatal("append failed")
	}
	// A slot index past the page's slot capacity must not panic.
	if _, err := pageRecord(buf, 0xFFFF); err == nil {
		t.Fatal("out-of-bounds slot read succeeded")
	}
	// A corrupt entry (unused slot word is zero: off=0 < header) must error.
	if _, err := pageRecord(buf, 1); err == nil {
		t.Fatal("read of unpublished slot succeeded")
	}
}
