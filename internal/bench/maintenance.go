package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"rfview/internal/engine"
)

// The maintenance experiment quantifies §2.3 at the SQL level: how much an
// incremental view update (one UPDATE statement against the base table,
// folded into the view through the maintenance rules) costs compared to a
// full REFRESH MATERIALIZED VIEW.

// MaintRow is one measured row of the maintenance experiment.
type MaintRow struct {
	N           int
	Incremental time.Duration // median over single-row UPDATEs, §2.3 band patch
	FullRefresh time.Duration // median over REFRESH MATERIALIZED VIEW trials

	// IncrementalOps and RefreshTrials are the raw per-operation timings the
	// medians are drawn from.
	IncrementalOps []time.Duration
	RefreshTrials  []time.Duration
}

// MaintenanceSizes are the default sequence cardinalities.
var MaintenanceSizes = []int{1000, 5000, 20000}

// maintIncrementalOps is how many single-row UPDATEs each size times.
const maintIncrementalOps = 50

// maintRefreshTrials is how many REFRESH executions each size times.
const maintRefreshTrials = 5

func medianDuration(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// RunMaintenance measures incremental maintenance vs. full refresh. Each
// single-row UPDATE is timed individually and each REFRESH trial separately;
// the reported numbers are medians, which shrug off scheduler hiccups that
// would skew a batch average.
func RunMaintenance(sizes []int) ([]MaintRow, error) {
	out := make([]MaintRow, 0, len(sizes))
	for _, n := range sizes {
		e := engine.New(engine.DefaultOptions())
		if err := LoadSequenceTable(e, n, 23); err != nil {
			return nil, err
		}
		if _, err := e.Exec(`CREATE UNIQUE INDEX seq_pk ON seq (pos)`); err != nil {
			return nil, err
		}
		if _, err := e.Exec(Table2ViewDDL); err != nil {
			return nil, err
		}
		row := MaintRow{N: n}

		for i := 0; i < maintIncrementalOps; i++ {
			pos := 1 + (i*7919)%n
			sql := fmt.Sprintf(`UPDATE seq SET val = %d WHERE pos = %d`, i%100, pos)
			start := time.Now()
			if _, err := e.Exec(sql); err != nil {
				return nil, err
			}
			row.IncrementalOps = append(row.IncrementalOps, time.Since(start))
		}
		row.Incremental = medianDuration(row.IncrementalOps)
		if e.Views.Stale("matseq") {
			return nil, fmt.Errorf("maintenance: view went stale at n=%d", n)
		}

		for t := 0; t < maintRefreshTrials; t++ {
			start := time.Now()
			if _, err := e.Exec(`REFRESH MATERIALIZED VIEW matseq`); err != nil {
				return nil, err
			}
			row.RefreshTrials = append(row.RefreshTrials, time.Since(start))
		}
		row.FullRefresh = medianDuration(row.RefreshTrials)
		out = append(out, row)
	}
	return out, nil
}

// DeltaRatioRow is one measured point of the delta-vs-full experiment: a
// batch of single-row UPDATEs sized as a fraction of the table, folded into
// the view through eager maintenance, against a full REFRESH of the same
// view. The ratio is the §2.3 payoff: refresh cost scales with the table,
// delta cost with the delta.
type DeltaRatioRow struct {
	N           int
	DeltaFrac   float64
	DeltaOps    int
	DeltaTotal  time.Duration // wall time for the whole delta batch
	FullRefresh time.Duration // median over REFRESH trials at this size
}

// Ratio is FullRefresh over the delta batch.
func (r DeltaRatioRow) Ratio() float64 {
	if r.DeltaTotal <= 0 {
		return 0
	}
	return float64(r.FullRefresh) / float64(r.DeltaTotal)
}

// DeltaRatioSizes and DeltaRatioFracs span the growth grid: table sizes
// 10k/100k/1M, delta sizes 0.1%/1%/10% of the table.
var (
	DeltaRatioSizes = []int{10_000, 100_000, 1_000_000}
	DeltaRatioFracs = []float64{0.001, 0.01, 0.1}
)

// deltaRefreshTrials is how many REFRESH executions each size times.
const deltaRefreshTrials = 3

// RunDeltaRatios measures the delta-vs-full grid. One engine per size: the
// refresh median is measured once, then each delta fraction's UPDATE batch
// is timed as a whole (the per-op dispatch overhead is part of the cost of
// the eager write path and belongs in the number).
func RunDeltaRatios(sizes []int, fracs []float64) ([]DeltaRatioRow, error) {
	var out []DeltaRatioRow
	for _, n := range sizes {
		opts := engine.DefaultOptions()
		opts.ViewMaintenance = "eager"
		e := engine.New(opts)
		if err := LoadSequenceTable(e, n, 29); err != nil {
			return nil, err
		}
		if _, err := e.Exec(`CREATE UNIQUE INDEX seq_pk ON seq (pos)`); err != nil {
			return nil, err
		}
		if _, err := e.Exec(Table2ViewDDL); err != nil {
			return nil, err
		}

		var refreshes []time.Duration
		for t := 0; t < deltaRefreshTrials; t++ {
			start := time.Now()
			if _, err := e.Exec(`REFRESH MATERIALIZED VIEW matseq`); err != nil {
				return nil, err
			}
			refreshes = append(refreshes, time.Since(start))
		}
		refresh := medianDuration(refreshes)

		for _, frac := range fracs {
			ops := int(float64(n) * frac)
			if ops < 1 {
				ops = 1
			}
			start := time.Now()
			for i := 0; i < ops; i++ {
				pos := 1 + (i*7919)%n
				sql := fmt.Sprintf(`UPDATE seq SET val = %d WHERE pos = %d`, (i*13)%1000, pos)
				if _, err := e.Exec(sql); err != nil {
					return nil, err
				}
			}
			total := time.Since(start)
			if e.Views.Stale("matseq") {
				return nil, fmt.Errorf("delta ratios: view went stale at n=%d frac=%g", n, frac)
			}
			out = append(out, DeltaRatioRow{
				N: n, DeltaFrac: frac, DeltaOps: ops,
				DeltaTotal: total, FullRefresh: refresh,
			})
		}
	}
	return out, nil
}

// FormatDeltaRatios renders the delta-vs-full grid.
func FormatDeltaRatios(rows []DeltaRatioRow) string {
	var b strings.Builder
	b.WriteString("Delta vs. full refresh (§2.3): UPDATE batch folded eagerly vs. REFRESH\n")
	b.WriteString("  # seq values   delta    ops      delta batch    full refresh   refresh/delta\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %12d   %5.1f%%  %7d  %-14s %-14s %10.1fx\n",
			r.N, r.DeltaFrac*100, r.DeltaOps, fmtDur(r.DeltaTotal), fmtDur(r.FullRefresh), r.Ratio())
	}
	return b.String()
}

// FormatMaintenance renders the experiment.
func FormatMaintenance(rows []MaintRow) string {
	var b strings.Builder
	b.WriteString("Maintenance (§2.3): incremental update vs. full refresh of x̃=(2,1)\n")
	b.WriteString("  # seq values   incremental/op   full refresh   ratio\n")
	for _, r := range rows {
		ratio := float64(r.FullRefresh) / float64(r.Incremental)
		fmt.Fprintf(&b, "  %12d   %-16s %-14s %8.1fx\n",
			r.N, fmtDur(r.Incremental), fmtDur(r.FullRefresh), ratio)
	}
	return b.String()
}

// MaintenanceJSON renders the experiment in the BENCH_*.json convention used
// by scripts/bench_window.sh: workload description, host facts, per-size
// medians with raw trials, and the headline refresh-to-incremental ratios.
func MaintenanceJSON(rows []MaintRow, ratios []DeltaRatioRow) (string, error) {
	type runJSON struct {
		N                   int       `json:"n"`
		IncrementalMedianMs float64   `json:"incremental_median_ms"`
		RefreshMedianMs     float64   `json:"refresh_median_ms"`
		Ratio               float64   `json:"refresh_over_incremental"`
		IncrementalOpsMs    []float64 `json:"incremental_ops_ms"`
		RefreshTrialsMs     []float64 `json:"refresh_trials_ms"`
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	runs := make([]runJSON, 0, len(rows))
	for _, r := range rows {
		rj := runJSON{
			N:                   r.N,
			IncrementalMedianMs: ms(r.Incremental),
			RefreshMedianMs:     ms(r.FullRefresh),
		}
		if r.Incremental > 0 {
			rj.Ratio = roundTo(float64(r.FullRefresh)/float64(r.Incremental), 3)
		}
		for _, d := range r.IncrementalOps {
			rj.IncrementalOpsMs = append(rj.IncrementalOpsMs, ms(d))
		}
		for _, d := range r.RefreshTrials {
			rj.RefreshTrialsMs = append(rj.RefreshTrialsMs, ms(d))
		}
		runs = append(runs, rj)
	}
	type ratioJSON struct {
		N            int     `json:"n"`
		DeltaFrac    float64 `json:"delta_frac"`
		DeltaOps     int     `json:"delta_ops"`
		DeltaTotalMs float64 `json:"delta_total_ms"`
		RefreshMs    float64 `json:"refresh_median_ms"`
		Ratio        float64 `json:"refresh_over_delta"`
	}
	var ratioRuns []ratioJSON
	for _, r := range ratios {
		ratioRuns = append(ratioRuns, ratioJSON{
			N: r.N, DeltaFrac: r.DeltaFrac, DeltaOps: r.DeltaOps,
			DeltaTotalMs: ms(r.DeltaTotal), RefreshMs: ms(r.FullRefresh),
			Ratio: roundTo(r.Ratio(), 3),
		})
	}
	out := map[string]any{
		"benchmark": "§2.3 incremental maintenance vs. full refresh",
		"delta_ratios": ratioRuns,
		"workload": map[string]any{
			"view":            Table2ViewDDL,
			"incremental_ops": maintIncrementalOps,
			"refresh_trials":  maintRefreshTrials,
			"note": "each single-row UPDATE timed individually against a unique " +
				"pos index; medians reported; view checked non-stale after the " +
				"update stream",
		},
		"host": map[string]any{
			"cpus":       runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
		"runs": runs,
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}
