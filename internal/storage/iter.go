package storage

import (
	"rfview/internal/sqltypes"
	"rfview/internal/txn"
)

// IterStats counts the page traffic of one iterator: pages touched (pin
// groups, not pins — consecutive rows on one page count it once), and how
// many of those page acquisitions hit or missed the buffer pool.
type IterStats struct {
	Pages  int64
	Hits   int64
	Misses int64
}

// prefetchRes carries a readahead pin from its goroutine to the iterator.
type prefetchRes struct {
	f   *frame
	hit bool
	err error
}

type prefetch struct {
	pid uint32
	ch  chan prefetchRes
}

// Iter streams the row versions visible in a snapshot, in row-id (insertion)
// order — bit-exact the order the old materializing scan produced. On a
// paged table it pins one page at a time, prefetches the next distinct page
// in the background while the current one is consumed, and decodes only
// visible versions (stamps live in the slot directory, so invisible rows
// cost no page IO beyond sharing a page with visible ones).
//
// An Iter is single-goroutine; Close must be called (it releases the pinned
// page and drains any in-flight prefetch). Iterating is safe against
// concurrent DML: the directory header is copied at creation and pages are
// append-only.
type Iter struct {
	t     *Table
	snap  txn.Snapshot
	slots []*slot
	i     int

	cur     *frame // pinned current page (paged tables)
	curPid  uint32
	hasCur  bool
	pending *prefetch
	stats   IterStats
}

// IterAt returns an iterator over the versions visible in s.
func (t *Table) IterAt(s txn.Snapshot) *Iter {
	return &Iter{t: t, snap: s, slots: t.view()}
}

// Next returns the next visible row. A nil row with nil error is EOF. The
// returned row is freshly decoded (paged) or the stored payload (resident);
// either way the caller may retain it.
func (it *Iter) Next() (RowID, sqltypes.Row, error) {
	for ; it.i < len(it.slots); it.i++ {
		sl := it.slots[it.i]
		if !txn.Visible(sl.begin.Load(), sl.end.Load(), it.snap) {
			continue
		}
		id := RowID(it.i)
		if it.t.heap == nil {
			it.i++
			return id, sl.row, nil
		}
		row, err := it.rowAt(sl)
		if err != nil {
			return 0, nil, err
		}
		it.i++
		return id, row, nil
	}
	it.release()
	return 0, nil, nil
}

// Stats returns the page-traffic counters accumulated so far.
func (it *Iter) Stats() IterStats { return it.stats }

// Close releases the current pin and drains any in-flight prefetch.
// Idempotent.
func (it *Iter) Close() { it.release() }

func (it *Iter) release() {
	pool := it.poolOrNil()
	if it.hasCur {
		pool.unpin(it.cur, false)
		it.cur, it.hasCur = nil, false
	}
	if p := it.pending; p != nil {
		it.pending = nil
		if res := <-p.ch; res.err == nil {
			pool.unpin(res.f, false)
		}
	}
}

func (it *Iter) poolOrNil() *pool {
	if it.t.heap == nil {
		return nil
	}
	return it.t.heap.pager.pool
}

// rowAt decodes the payload of sl, moving the current pin when the row
// lives on a different page.
func (it *Iter) rowAt(sl *slot) (sqltypes.Row, error) {
	h := it.t.heap
	if sl.loc.span > 0 {
		// Jumbo rows pin their own page run; the current fill-page pin is
		// kept so the scan resumes on it without re-pinning.
		it.stats.Pages += int64(sl.loc.span)
		return h.read(sl.loc)
	}
	if !it.hasCur || it.curPid != sl.loc.pid {
		if it.hasCur {
			h.pager.pool.unpin(it.cur, false)
			it.hasCur = false
		}
		f, hit, err := it.acquire(sl.loc.pid)
		if err != nil {
			return nil, err
		}
		it.cur, it.curPid, it.hasCur = f, sl.loc.pid, true
		it.stats.Pages++
		if hit {
			it.stats.Hits++
		} else {
			it.stats.Misses++
		}
		// Readahead earns its goroutine only when pages are actually coming
		// from disk; a warm scan that just hit skips the scheduling cost.
		if !hit {
			it.schedulePrefetch()
		}
	}
	if row := it.cur.cachedRow(sl.loc.slot); row != nil {
		return row, nil
	}
	rec, err := pageRecord(it.cur.buf, sl.loc.slot)
	if err != nil {
		return nil, err
	}
	row, err := sqltypes.DecodeRowData(rec)
	if err != nil {
		return nil, err
	}
	h.pager.pool.cacheRow(it.cur, sl.loc.slot, row)
	return row, nil
}

// acquire pins pid, consuming the pending prefetch when it matches.
func (it *Iter) acquire(pid uint32) (*frame, bool, error) {
	pool := it.t.heap.pager.pool
	if p := it.pending; p != nil {
		it.pending = nil
		res := <-p.ch
		if p.pid == pid {
			return res.f, res.hit, res.err
		}
		if res.err == nil {
			pool.unpin(res.f, false) // readahead guessed wrong: discard
		}
	}
	return pool.pin(it.t.heap.hf, pid)
}

// prefetchLookahead bounds the forward scan for the next distinct page so a
// long run of same-page or jumbo slots cannot make scheduling quadratic.
const prefetchLookahead = 4096

// schedulePrefetch starts a background pin of the next distinct slotted
// page after the current position.
func (it *Iter) schedulePrefetch() {
	if it.pending != nil {
		return
	}
	limit := len(it.slots)
	if limit > it.i+prefetchLookahead {
		limit = it.i + prefetchLookahead
	}
	for j := it.i + 1; j < limit; j++ {
		loc := it.slots[j].loc
		if loc.span != 0 || loc.pid == it.curPid {
			continue
		}
		ch := make(chan prefetchRes, 1)
		it.pending = &prefetch{pid: loc.pid, ch: ch}
		hf, pool := it.t.heap.hf, it.t.heap.pager.pool
		go func(pid uint32) {
			f, hit, err := pool.pin(hf, pid)
			ch <- prefetchRes{f, hit, err}
		}(loc.pid)
		return
	}
}
