package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"rfview/internal/engine"
)

// The window experiment measures the partition-parallel Window operator in
// isolation: a table with many same-sized partitions, a sliding-window
// reporting function over each, and the identical query executed with the
// worker pool pinned to 1, 2, and 4 workers. The plan cache is disabled so
// every execution runs the operator. The §6 partitioning lemma makes the
// partitions independent, so on a multi-core host the pool should approach
// linear speedup; on a single-core host the runs document the serial cap
// instead (the pool adds only scheduling overhead there).

// WindowConfig sizes the partition-parallel workload.
type WindowConfig struct {
	Partitions       int // partition count (one worker unit each)
	RowsPerPartition int
	Trials           int // timed repetitions per worker setting; medians reported
	Seed             int64
	// MemBudgetBytes sizes the executor memory budget of the spill reference
	// run (workers=1 with out-of-core execution forced); 0 picks a tiny
	// default that guarantees spilling at any workload size.
	MemBudgetBytes int64
}

// DefaultWindowConfig is the configuration bench_window.sh records. Nine
// trials (up from five) keep the medians stable enough to compare the
// vectorized and boxed runs on a noisy shared host.
func DefaultWindowConfig() WindowConfig {
	return WindowConfig{Partitions: 64, RowsPerPartition: 500, Trials: 9, Seed: 20020301}
}

// WindowRow is one measured worker setting. AllocsPerOp and BytesPerOp are
// per-trial medians of the runtime.MemStats Mallocs / TotalAlloc deltas
// around one query execution, recording the allocation cost alongside wall
// time (pooled executor buffers show up here long before a single-core host
// shows a wall-time win). Boxed marks the DisableVectorized reference run:
// the same workload at workers=1 with the typed columnar fast path off, so
// the report carries its own before/after pair on the measuring host.
type WindowRow struct {
	Workers     int
	Median      time.Duration
	Trials      []time.Duration
	AllocsPerOp uint64
	BytesPerOp  uint64
	Boxed       bool
	// Spill marks the memory-budgeted reference run; SpillRuns / SpillBytes
	// are the engine's cumulative spill counters after its trials (zero in
	// every other run).
	Spill      bool
	SpillRuns  int64
	SpillBytes int64
}

// windowBenchQuery is the measured statement.
const windowBenchQuery = `SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos
  ROWS BETWEEN 8 PRECEDING AND 8 FOLLOWING) AS w FROM pt`

// The multi-function experiment measures the shared-sort planner: one query
// with 1/2/4/8 OVER clauses, executed with the planner on and with
// DisableSharedSort. The specs target the regime the optimization exists
// for — redundant orderings of the same stream. The first four are
// unpartitioned with prefix-chained ORDER BYs, so they form one
// ordering-compatible class: the shared plan sorts once where the unshared
// plan sorts the full input once per clause. Clauses five through eight
// repeat the chain under PARTITION BY g, forming a second class (the
// unshared plan hash-partitions those, so that half is roughly a wash —
// the reported speedup is carried by the real redundancy in the first
// class, not by a workload the unshared engine would never sort).
var multiWindowSpecs = []string{
	"ORDER BY a",
	"ORDER BY a, b",
	"ORDER BY a, b, c",
	"ORDER BY a, b, c, v",
	"PARTITION BY g ORDER BY a",
	"PARTITION BY g ORDER BY a, b",
	"PARTITION BY g ORDER BY a, b, c",
	"PARTITION BY g ORDER BY a, b, v",
}

// multiWindowAggs vary per clause so no two OVER columns are syntactically
// identical.
var multiWindowAggs = []string{"SUM", "COUNT", "MIN", "MAX", "AVG", "SUM", "MAX", "MIN"}

// multiWindowClasses is the ordering-compatible class count the planner
// forms at each clause count over multiWindowSpecs.
func multiWindowClasses(overs int) int {
	if overs <= 4 {
		return 1 // the unpartitioned prefix chain
	}
	return 2 // the PARTITION BY g chain joins as a second class
}

// MultiWindowQuery builds the measured statement with n OVER clauses.
func MultiWindowQuery(n int) string {
	var b strings.Builder
	b.WriteString("SELECT g, a")
	for i := 0; i < n; i++ {
		agg := multiWindowAggs[i%len(multiWindowAggs)]
		spec := multiWindowSpecs[i%len(multiWindowSpecs)]
		fmt.Fprintf(&b, ",\n  %s(v) OVER (%s) AS w%d", agg, spec, i)
	}
	b.WriteString("\nFROM mt")
	return b.String()
}

// loadMultiTable loads the multi-function experiment's table: integer keys
// throughout, Partitions distinct values of g, and wide-range a/b/c order
// columns so prefix refinements actually break ties.
func loadMultiTable(e *engine.Engine, cfg WindowConfig) error {
	if _, err := e.Exec(`CREATE TABLE mt (g INTEGER, a INTEGER, b INTEGER, c INTEGER, v INTEGER)`); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	total := cfg.Partitions * cfg.RowsPerPartition
	const chunk = 1000
	var b strings.Builder
	pending := 0
	flush := func() error {
		if pending == 0 {
			return nil
		}
		_, err := e.Exec(b.String())
		b.Reset()
		pending = 0
		return err
	}
	for i := 0; i < total; i++ {
		if pending == 0 {
			b.WriteString("INSERT INTO mt VALUES ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d, %d, %d, %d)",
			i%cfg.Partitions, rng.Intn(total/4), rng.Intn(64), rng.Intn(16), rng.Intn(1000))
		pending++
		if pending == chunk {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// MultiWindowRow is one measured OVER-clause count: the same query with the
// shared-sort planner on (Shared*) and off (Unshared*). SortsShared and
// SortsPerformed are the engine's counters over the shared run's trials —
// the direct evidence of sort reuse (at 4 clauses / 1 class the shared plan
// performs 1 sort per execution where the unshared plan orders 4 times; at
// 8 clauses / 2 classes, 2 sorts versus 8 orderings).
type MultiWindowRow struct {
	OverClauses    int
	Classes        int
	SharedMedian   time.Duration
	UnsharedMedian time.Duration
	SharedTrials   []time.Duration
	UnsharedTrials []time.Duration
	SortsPerformed int64
	SortsShared    int64
	SortsSegmented int64
}

// RunMultiWindow executes the multi-function workload at each OVER-clause
// count with the shared-sort planner on and off, cross-checking the two
// result sets cell-for-cell.
func RunMultiWindow(cfg WindowConfig, overCounts []int) ([]MultiWindowRow, error) {
	build := func(disableShared bool) (*engine.Engine, error) {
		opts := engine.DefaultOptions()
		opts.UseMatViews = false
		opts.DisableSharedSort = disableShared
		e := engine.New(opts)
		e.SetPlanCacheCapacity(0) // every trial must plan and run the operator stack
		if err := loadMultiTable(e, cfg); err != nil {
			e.Close()
			return nil, err
		}
		return e, nil
	}
	shared, err := build(false)
	if err != nil {
		return nil, err
	}
	defer shared.Close()
	unshared, err := build(true)
	if err != nil {
		return nil, err
	}
	defer unshared.Close()

	run := func(e *engine.Engine, q string) ([]time.Duration, []string, error) {
		// Collect the other engine's build garbage before timing anything, so
		// whichever side runs first doesn't absorb the GC debt of both loads.
		runtime.GC()
		var trials []time.Duration
		var rendered []string
		for t := 0; t < cfg.Trials; t++ {
			start := time.Now()
			res, err := e.Exec(q)
			d := time.Since(start)
			if err != nil {
				return nil, nil, err
			}
			trials = append(trials, d)
			if t == cfg.Trials-1 {
				rendered = make([]string, 0, len(res.Rows))
				for _, r := range res.Rows {
					rendered = append(rendered, r.String())
				}
				sort.Strings(rendered)
			}
		}
		return trials, rendered, nil
	}
	median := func(trials []time.Duration) time.Duration {
		s := append([]time.Duration(nil), trials...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[len(s)/2]
	}

	out := make([]MultiWindowRow, 0, len(overCounts))
	for _, n := range overCounts {
		q := MultiWindowQuery(n)
		ws := shared.WindowStats()
		perf0, shar0, seg0 := ws.SortsPerformed.Load(), ws.SortsShared.Load(), ws.SortsSegmented.Load()
		st, srows, err := run(shared, q)
		if err != nil {
			return nil, fmt.Errorf("shared %d-over: %w", n, err)
		}
		ut, urows, err := run(unshared, q)
		if err != nil {
			return nil, fmt.Errorf("unshared %d-over: %w", n, err)
		}
		if len(srows) != len(urows) {
			return nil, fmt.Errorf("%d-over: shared returned %d rows, unshared %d", n, len(srows), len(urows))
		}
		for i := range srows {
			if srows[i] != urows[i] {
				return nil, fmt.Errorf("%d-over: shared and unshared results differ at row %d", n, i)
			}
		}
		out = append(out, MultiWindowRow{
			OverClauses:    n,
			Classes:        multiWindowClasses(n),
			SharedMedian:   median(st),
			UnsharedMedian: median(ut),
			SharedTrials:   st,
			UnsharedTrials: ut,
			SortsPerformed: ws.SortsPerformed.Load() - perf0,
			SortsShared:    ws.SortsShared.Load() - shar0,
			SortsSegmented: ws.SortsSegmented.Load() - seg0,
		})
	}
	return out, nil
}

func loadPartitionedTable(e *engine.Engine, cfg WindowConfig) error {
	if _, err := e.Exec(`CREATE TABLE pt (grp VARCHAR(8), pos INTEGER, val INTEGER)`); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	const chunk = 1000
	var b strings.Builder
	pending := 0
	flush := func() error {
		if pending == 0 {
			return nil
		}
		_, err := e.Exec(b.String())
		b.Reset()
		pending = 0
		return err
	}
	for g := 0; g < cfg.Partitions; g++ {
		for i := 1; i <= cfg.RowsPerPartition; i++ {
			if pending == 0 {
				b.WriteString("INSERT INTO pt VALUES ")
			} else {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "('g%03d', %d, %d)", g, i, rng.Intn(1000))
			pending++
			if pending == chunk {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	return flush()
}

// RunWindowParallel executes the workload at each worker setting and returns
// one row per setting, with per-trial timings and the median. The sequential
// (workers=1) result is additionally checked against every parallel result.
// Two workers=1 reference runs are appended: DisableVectorized (the boxed
// Datum path) as the allocation/latency baseline for the typed fast path,
// and a tiny-memory-budget run that forces the out-of-core spill path — its
// results are cross-checked against the in-memory reference like every
// other setting.
func RunWindowParallel(cfg WindowConfig, workerSettings []int) ([]WindowRow, error) {
	out := make([]WindowRow, 0, len(workerSettings)+1)
	var reference []float64

	measure := func(workers int, boxed bool, memBudget int64) (WindowRow, error) {
		opts := engine.DefaultOptions()
		opts.UseMatViews = false
		opts.WindowParallelism = workers
		opts.DisableVectorized = boxed
		opts.MemoryBudgetBytes = memBudget
		e := engine.New(opts)
		defer e.Close()
		e.SetPlanCacheCapacity(0) // every trial must run the operator
		if err := loadPartitionedTable(e, cfg); err != nil {
			return WindowRow{}, err
		}
		row := WindowRow{Workers: workers, Boxed: boxed, Spill: memBudget > 0}
		var lastSums []float64
		var allocs, bytes []uint64
		for t := 0; t < cfg.Trials; t++ {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			res, err := e.Exec(windowBenchQuery)
			d := time.Since(start)
			if err != nil {
				return WindowRow{}, err
			}
			runtime.ReadMemStats(&after)
			allocs = append(allocs, after.Mallocs-before.Mallocs)
			bytes = append(bytes, after.TotalAlloc-before.TotalAlloc)
			row.Trials = append(row.Trials, d)
			if t == cfg.Trials-1 {
				lastSums = make([]float64, 0, len(res.Rows))
				for _, r := range res.Rows {
					lastSums = append(lastSums, r[2].Float())
				}
				sort.Float64s(lastSums)
			}
		}
		if reference == nil {
			reference = lastSums
		} else if !sameFloats(reference, lastSums) {
			return WindowRow{}, fmt.Errorf("workers=%d boxed=%v: result differs from reference",
				workers, boxed)
		}
		sorted := append([]time.Duration(nil), row.Trials...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		row.Median = sorted[len(sorted)/2]
		row.AllocsPerOp = medianU64(allocs)
		row.BytesPerOp = medianU64(bytes)
		row.SpillRuns = e.SpillStats().Runs.Load()
		row.SpillBytes = e.SpillStats().RunBytes.Load()
		return row, nil
	}

	for _, w := range workerSettings {
		row, err := measure(w, false, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	boxedRow, err := measure(1, true, 0)
	if err != nil {
		return nil, err
	}
	out = append(out, boxedRow)
	// The spill reference: the same workload, workers=1, under a tiny memory
	// budget so the ordering goes external. The shared result cross-check
	// above doubles as the bit-identity oracle for the out-of-core path.
	budget := cfg.MemBudgetBytes
	if budget <= 0 {
		budget = 64 << 10
	}
	spillRow, err := measure(1, false, budget)
	if err != nil {
		return nil, err
	}
	out = append(out, spillRow)
	return out, nil
}

func medianU64(vals []uint64) uint64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]uint64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WindowJSON renders the experiment in the BENCH_*.json convention used by
// scripts/bench_serve.sh: workload description, host facts, per-setting
// medians, the headline speedup, the multi-function shared-sort grid, and —
// on single-core hosts — an explicit note that the serial cap, not the
// operator, bounds the number.
func WindowJSON(cfg WindowConfig, rows []WindowRow, multi []MultiWindowRow) (string, error) {
	type runJSON struct {
		Workers     int       `json:"workers"`
		MedianMs    float64   `json:"median_ms"`
		TrialsMs    []float64 `json:"trials_ms"`
		AllocsPerOp uint64    `json:"allocs_per_op"`
		BPerOp      uint64    `json:"b_per_op"`
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	runs := make([]runJSON, 0, len(rows))
	var seq, best, boxed, spillRun runJSON
	haveBoxed, haveSpill := false, false
	var spillRuns, spillBytes int64
	for _, r := range rows {
		rj := runJSON{Workers: r.Workers, MedianMs: ms(r.Median),
			AllocsPerOp: r.AllocsPerOp, BPerOp: r.BytesPerOp}
		for _, t := range r.Trials {
			rj.TrialsMs = append(rj.TrialsMs, ms(t))
		}
		if r.Boxed {
			boxed = rj
			haveBoxed = true
			continue
		}
		if r.Spill {
			spillRun = rj
			haveSpill = true
			spillRuns, spillBytes = r.SpillRuns, r.SpillBytes
			continue
		}
		runs = append(runs, rj)
		if r.Workers == 1 {
			seq = rj
		}
		if best.Workers == 0 || rj.MedianMs < best.MedianMs {
			best = rj
		}
	}
	out := map[string]any{
		"benchmark": "partition-parallel Window operator",
		"workload": map[string]any{
			"sql":                windowBenchQuery,
			"partitions":         cfg.Partitions,
			"rows_per_partition": cfg.RowsPerPartition,
			"trials":             cfg.Trials,
			"note": "plan cache disabled; identical query per setting; " +
				"results cross-checked against the sequential run",
		},
		"host": map[string]any{
			"cpus":       runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
		"runs": runs,
	}
	if seq.Workers == 1 && best.MedianMs > 0 {
		out["speedup_best_vs_sequential"] = roundTo(seq.MedianMs/best.MedianMs, 3)
		out["best_workers"] = best.Workers
	}
	if haveBoxed && seq.Workers == 1 {
		// The same workload with DisableVectorized — the pre-fast-path executor
		// (boxed Datum sorts and accumulators) measured on this host, so the
		// vectorized/boxed pair travels together in the report.
		out["baseline_boxed"] = map[string]any{
			"workers":       1,
			"median_ms":     boxed.MedianMs,
			"trials_ms":     boxed.TrialsMs,
			"allocs_per_op": boxed.AllocsPerOp,
			"b_per_op":      boxed.BPerOp,
		}
		if boxed.MedianMs > 0 && boxed.AllocsPerOp > 0 {
			out["vectorized_vs_boxed"] = map[string]any{
				"median_speedup": roundTo(boxed.MedianMs/seq.MedianMs, 3),
				"allocs_ratio":   roundTo(float64(seq.AllocsPerOp)/float64(boxed.AllocsPerOp), 3),
				"bytes_ratio":    roundTo(float64(seq.BPerOp)/float64(boxed.BPerOp), 3),
				"note":           "workers=1 typed columnar fast path vs DisableVectorized on the same host",
			}
		}
	}
	if haveSpill {
		// The out-of-core reference: workers=1 under a tiny memory budget, so
		// every partition ordering runs through the external merge sort. The
		// slowdown prices the disk round-trip against the in-memory run at the
		// same row count; results were cross-checked identical.
		spill := map[string]any{
			"workers":       1,
			"median_ms":     spillRun.MedianMs,
			"trials_ms":     spillRun.TrialsMs,
			"allocs_per_op": spillRun.AllocsPerOp,
			"b_per_op":      spillRun.BPerOp,
			"spill_runs":    spillRuns,
			"spill_bytes":   spillBytes,
		}
		if seq.Workers == 1 && seq.MedianMs > 0 {
			spill["slowdown_vs_in_memory"] = roundTo(spillRun.MedianMs/seq.MedianMs, 3)
		}
		out["spill"] = spill
	}
	if len(multi) > 0 {
		// The shared-sort grid: the same multi-OVER query with the planner on
		// and off, per clause count. speedup_shared > 1 means the shared plan
		// was faster; sorts_performed/sorts_shared count actual orderings vs
		// reused ones over the shared run's trials.
		grid := make([]map[string]any, 0, len(multi))
		for _, m := range multi {
			entry := map[string]any{
				"over_clauses":       m.OverClauses,
				"classes":            m.Classes,
				"shared_median_ms":   ms(m.SharedMedian),
				"unshared_median_ms": ms(m.UnsharedMedian),
				"sorts_performed":    m.SortsPerformed,
				"sorts_shared":       m.SortsShared,
				"sorts_segmented":    m.SortsSegmented,
			}
			sharedTrials := make([]float64, 0, len(m.SharedTrials))
			for _, t := range m.SharedTrials {
				sharedTrials = append(sharedTrials, ms(t))
			}
			unsharedTrials := make([]float64, 0, len(m.UnsharedTrials))
			for _, t := range m.UnsharedTrials {
				unsharedTrials = append(unsharedTrials, ms(t))
			}
			entry["shared_trials_ms"] = sharedTrials
			entry["unshared_trials_ms"] = unsharedTrials
			if m.SharedMedian > 0 {
				entry["speedup_shared"] = roundTo(float64(m.UnsharedMedian)/float64(m.SharedMedian), 3)
			}
			grid = append(grid, entry)
		}
		out["multi_function"] = map[string]any{
			"sql_4_over": MultiWindowQuery(4),
			"note": "same query with the shared-sort planner on vs DisableSharedSort; " +
				"results cross-checked cell-for-cell per clause count",
			"runs": grid,
		}
	}
	if runtime.NumCPU() == 1 {
		out["note"] = "single-CPU host: all pool workers share one core, so the " +
			"parallel settings can only match the sequential median (§6 partitions " +
			"are independent, but there is no second core to run them on); the " +
			"speedup column documents this serial cap rather than operator scaling"
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

func roundTo(v float64, places int) float64 {
	p := 1.0
	for i := 0; i < places; i++ {
		p *= 10
	}
	return float64(int64(v*p+0.5)) / p
}

// FormatWindow renders a human-readable table of the experiment.
func FormatWindow(rows []WindowRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s  %-12s  %-12s  %-12s  %s\n", "workers", "median", "allocs/op", "B/op", "trials")
	var seq time.Duration
	for _, r := range rows {
		if r.Workers == 1 && !r.Boxed && !r.Spill {
			seq = r.Median
		}
	}
	for _, r := range rows {
		parts := make([]string, len(r.Trials))
		for i, t := range r.Trials {
			parts[i] = t.Round(10 * time.Microsecond).String()
		}
		label := fmt.Sprintf("%d", r.Workers)
		if r.Boxed {
			label += " boxed"
		}
		if r.Spill {
			label += " spill"
		}
		line := fmt.Sprintf("%-8s  %-12s  %-12d  %-12d  %s", label,
			r.Median.Round(10*time.Microsecond), r.AllocsPerOp, r.BytesPerOp, strings.Join(parts, " "))
		if seq > 0 && r.Workers > 1 && !r.Boxed {
			line += fmt.Sprintf("   (%.2fx vs sequential)", float64(seq)/float64(r.Median))
		}
		if r.Spill {
			line += fmt.Sprintf("   (spilled %d runs, %d bytes)", r.SpillRuns, r.SpillBytes)
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}

// FormatMultiWindow renders the shared-sort grid as a human-readable table.
func FormatMultiWindow(rows []MultiWindowRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s  %-7s  %-12s  %-12s  %-8s  %s\n",
		"overs", "classes", "shared", "unshared", "speedup", "sorts (performed/shared/segmented)")
	for _, r := range rows {
		speedup := "-"
		if r.SharedMedian > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(r.UnsharedMedian)/float64(r.SharedMedian))
		}
		fmt.Fprintf(&b, "%-6d  %-7d  %-12s  %-12s  %-8s  %d/%d/%d\n",
			r.OverClauses, r.Classes,
			r.SharedMedian.Round(10*time.Microsecond),
			r.UnsharedMedian.Round(10*time.Microsecond),
			speedup, r.SortsPerformed, r.SortsShared, r.SortsSegmented)
	}
	return b.String()
}
