package server_test

import (
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	rferrors "rfview/errors"
	"rfview/internal/client"
)

// TestMetricsOpAndHandler drives real traffic through the wire protocol, then
// scrapes the combined registry both in-band ("metrics" op) and over HTTP,
// checking the core series the CI gate also asserts on.
func TestMetricsOpAndHandler(t *testing.T) {
	_, eng, addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec(`CREATE TABLE seq (pos INTEGER, val INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO seq VALUES (1, 10), (2, 20), (3, 30)`); err != nil {
		t.Fatal(err)
	}
	q := `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS c FROM seq`
	for i := 0; i < 2; i++ { // second run hits the plan cache
		if _, err := c.Query(q); err != nil {
			t.Fatal(err)
		}
	}

	text, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics op: %v", err)
	}
	for _, want := range []string{
		`rfview_queries_total{strategy="native"} 2`,
		"rfview_plan_cache_hit_ratio",
		"rfview_query_seconds_count 2",
		`rfview_server_op_seconds_count{op="query"} 2`,
		"rfview_server_active_sessions 1",
		"rfview_window_runs 1", // the repeat reused the cached result; no second window run
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics op exposition missing %q", want)
		}
	}

	// The HTTP handler (what -metrics-addr serves) renders the same registry.
	rec := httptest.NewRecorder()
	eng.Metrics().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body, _ := io.ReadAll(rec.Result().Body)
	if !strings.Contains(string(body), `rfview_queries_total{strategy="native"} 2`) {
		t.Errorf("HTTP scrape missing query counter:\n%s", body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
}

// TestWireErrorCodes checks the protocol's stable code field: server-side
// failures satisfy the same errors.Is sentinels as in-process ones.
func TestWireErrorCodes(t *testing.T) {
	_, _, addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cases := []struct {
		sql      string
		sentinel error
	}{
		{`SELECT pos FROM missing`, rferrors.ErrUnknownTable},
		{`SELECT FROM WHERE`, rferrors.ErrParse},
		{`REFRESH MATERIALIZED VIEW nothere`, rferrors.ErrUnknownView},
	}
	for _, cse := range cases {
		_, err := c.Query(cse.sql)
		if err == nil {
			t.Errorf("%q: no error", cse.sql)
			continue
		}
		if !errors.Is(err, cse.sentinel) {
			t.Errorf("%q: err %v does not match sentinel %v", cse.sql, err, cse.sentinel)
		}
	}
}

// TestWireTimeout bounds server-side execution with the request's timeout_ms
// and expects the cancellation sentinel back through the wire.
func TestWireTimeout(t *testing.T) {
	_, eng, addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := eng.ExecAll(`CREATE TABLE a (x INTEGER); CREATE TABLE b (y INTEGER)`); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(`INSERT INTO a VALUES (0)`)
	for i := 1; i < 1200; i++ {
		fmt.Fprintf(&sb, ", (%d)", i)
	}
	if _, err := c.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(strings.Replace(sb.String(), "INTO a", "INTO b", 1)); err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(`SELECT x, y FROM a, b`, client.WithTimeout(5*time.Millisecond))
	if err == nil {
		t.Fatalf("1.44M-row cross join finished inside 5ms?")
	}
	if !errors.Is(err, rferrors.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	// The connection survives the failed statement.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after timeout: %v", err)
	}
}

// TestExplainAnalyzeOverWire checks the explain op's analyze flag.
func TestExplainAnalyzeOverWire(t *testing.T) {
	_, _, addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`CREATE TABLE seq (pos INTEGER, val INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO seq VALUES (1, 10), (2, 20)`); err != nil {
		t.Fatal(err)
	}
	q := `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS c FROM seq`
	plain, err := c.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain, "rows=") {
		t.Errorf("plain EXPLAIN carries actuals:\n%s", plain)
	}
	analyzed, err := c.Explain(q, client.WithAnalyze())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"-- strategy: native", "rows=2", "time="} {
		if !strings.Contains(analyzed, want) {
			t.Errorf("analyzed plan missing %q:\n%s", want, analyzed)
		}
	}
}
