package engine

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rfview/internal/rewrite"
)

// newSpillEngine builds an engine with a budget small enough that any
// multi-hundred-row sort spills, and closes it (removing its private spill
// directory) when the test ends.
func newSpillEngine(t *testing.T, opts Options, budget int64) *Engine {
	t.Helper()
	opts.MemoryBudgetBytes = budget
	e := New(opts)
	t.Cleanup(func() { e.Close() })
	return e
}

// TestDifferentialSpillForced is the out-of-core differential oracle: the
// same randomized partitioned harness as TestDifferentialRandomPartitionedParallel,
// but every engine under test runs with a tiny memory budget so window
// partition sorts go external, across all five strategies (native sequential,
// native parallel, self-join, MaxOA, MinOA — the derived ones sequential and
// parallel). The reference engine runs with the budget explicitly disabled,
// so in-memory and spilled evaluation are compared against each other.
func TestDifferentialSpillForced(t *testing.T) {
	const budget = 2 << 10
	rng := rand.New(rand.NewSource(20020301))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	var spilledRuns int64
	budgeted := func(opts Options) *Engine { return newSpillEngine(t, opts, budget) }
	countRuns := func(e *Engine) { spilledRuns += e.SpillStats().Runs.Load() }
	for trial := 0; trial < trials; trial++ {
		groups := 1 + rng.Intn(3)
		lx, hx := rng.Intn(3), rng.Intn(3)
		if lx+hx == 0 {
			lx = 1
		}
		ly, hy := rng.Intn(5), rng.Intn(5)
		if ly+hy == 0 {
			hy = 2
		}
		agg := []string{"SUM", "SUM", "COUNT", "MIN", "MAX"}[rng.Intn(5)]
		if agg == "MIN" || agg == "MAX" {
			// MIN/MAX derivation needs a covering extension.
			dl, dh := rng.Intn(lx+hx+1), rng.Intn(lx+hx+1)
			if dl+dh > lx+hx+1 {
				dh = 0
			}
			ly, hy = lx+dl, hx+dh
			if ly+hy == 0 {
				hy = 1
			}
		}
		seed := rng.Int63()
		sizes := make([]int, groups)
		for g := range sizes {
			// Big enough that partitions exceed the sorter's min-run floor and
			// actually flush runs under the tiny budget.
			sizes[g] = 60 + rng.Intn(120)
		}
		q := fmt.Sprintf(`SELECT grp, pos, %s(val) OVER (PARTITION BY grp ORDER BY pos
		  ROWS BETWEEN %d PRECEDING AND %d FOLLOWING) AS w FROM pt`, agg, ly, hy)
		viewDDL := fmt.Sprintf(`CREATE MATERIALIZED VIEW pv AS
		  SELECT grp, pos, %s(val) OVER (PARTITION BY grp ORDER BY pos
		    ROWS BETWEEN %d PRECEDING AND %d FOLLOWING) AS val FROM pt`, agg, lx, hx)
		ctx := fmt.Sprintf("trial %d: groups=%v agg=%s x̃=(%d,%d) ỹ=(%d,%d)",
			trial, sizes, agg, lx, hx, ly, hy)

		load := func(e *Engine) {
			t.Helper()
			local := rand.New(rand.NewSource(seed))
			mustExec(t, e, `CREATE TABLE pt (grp VARCHAR(8), pos INTEGER, val INTEGER)`)
			var b strings.Builder
			b.WriteString("INSERT INTO pt VALUES ")
			first := true
			for g, n := range sizes {
				for i := 1; i <= n; i++ {
					if !first {
						b.WriteString(", ")
					}
					first = false
					fmt.Fprintf(&b, "('g%d', %d, %d)", g, i, local.Intn(100)-50)
				}
			}
			mustExec(t, e, b.String())
		}

		// Reference: native sequential with the budget disabled (-1 overrides
		// the RFVIEW_TEST_MEM_BUDGET knob too), so the comparison really is
		// in-memory vs out-of-core.
		refOpts := DefaultOptions()
		refOpts.UseMatViews = false
		refOpts.WindowParallelism = 1
		refEng := newSpillEngine(t, refOpts, -1)
		load(refEng)
		ref := partPairs(t, mustExec(t, refEng, q))

		compare := func(rows map[string]float64, label string) {
			t.Helper()
			if len(rows) != len(ref) {
				t.Fatalf("%s / %s: cardinality %d vs %d", ctx, label, len(rows), len(ref))
			}
			for k, v := range ref {
				got, ok := rows[k]
				if !ok {
					t.Fatalf("%s / %s: key %s missing", ctx, label, k)
				}
				if math.Abs(got-v) > 1e-9 {
					t.Fatalf("%s / %s: %s = %v, want %v", ctx, label, k, got, v)
				}
			}
		}

		// Native, sequential and partition-parallel, both under the budget.
		for _, par := range []int{1, 4} {
			opts := refOpts
			opts.WindowParallelism = par
			e := budgeted(opts)
			load(e)
			compare(partPairs(t, mustExec(t, e, q)), fmt.Sprintf("native/parallel=%d", par))
			countRuns(e)
		}

		// Fig. 2 self-join simulation under the budget.
		simOpts := refOpts
		simOpts.NativeWindow = false
		sim := budgeted(simOpts)
		load(sim)
		res := mustExec(t, sim, q)
		if res.Rewritten == "" {
			t.Fatalf("%s: self-join rewrite did not fire", ctx)
		}
		compare(partPairs(t, res), "self-join")
		countRuns(sim)

		// MaxOA / MinOA derivation under the budget, sequential and parallel;
		// the view materialization itself also runs spilled.
		for _, strat := range []rewrite.Strategy{rewrite.StrategyMaxOA, rewrite.StrategyMinOA} {
			for _, par := range []int{1, 4} {
				opts := DefaultOptions()
				opts.Strategy = strat
				opts.Form = []rewrite.Form{rewrite.FormDisjunctive, rewrite.FormUnion}[trial%2]
				opts.WindowParallelism = par
				e := budgeted(opts)
				load(e)
				mustExec(t, e, viewDDL)
				dres := mustExec(t, e, q)
				countRuns(e)
				if dres.Derivation == nil {
					continue // strategy inapplicable: native fallback already checked
				}
				compare(partPairs(t, dres), fmt.Sprintf("derive/%v/parallel=%d", strat, par))
			}
		}
	}
	if spilledRuns == 0 {
		t.Fatal("no engine spilled a single run — the budget is not forcing the external path")
	}
}

// TestSpillExplainAnalyzeAndMetrics is the acceptance check for the
// observability surface: on a dataset several times the budget, Sort and
// Window both report spilled=true in EXPLAIN ANALYZE, and the engine's
// metrics exposition carries nonzero rfview_spill_runs_total and
// rfview_spill_bytes_total.
func TestSpillExplainAnalyzeAndMetrics(t *testing.T) {
	const budget = 4 << 10 // rows below total ~10× this
	e := newSpillEngine(t, DefaultOptions(), budget)
	loadSeq(t, e, 2000, func(i int) int64 { return int64((i * 7919) % 1000) })

	// Window over one 2000-row partition: the partition ordering spills.
	res, err := e.ExecContext(context.Background(), `EXPLAIN ANALYZE SELECT pos,
	  SUM(val) OVER (ORDER BY pos ROWS BETWEEN 5 PRECEDING AND 5 FOLLOWING) AS w FROM seq`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "spilled=true") || !strings.Contains(res.Plan, "runs=") {
		t.Fatalf("window plan missing spill annotation:\n%s", res.Plan)
	}

	// Top-level ORDER BY: the Sort operator itself goes external.
	res, err = e.ExecContext(context.Background(),
		`EXPLAIN ANALYZE SELECT pos, val FROM seq ORDER BY val, pos`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "Sort") || !strings.Contains(res.Plan, "spilled=true") {
		t.Fatalf("sort plan missing spill annotation:\n%s", res.Plan)
	}

	if runs := e.SpillStats().Runs.Load(); runs == 0 {
		t.Fatal("SpillStats reports zero runs after spilled queries")
	}
	if used := e.SpillBudget().Used() - e.StorageStats().BytesResident; used != 0 {
		t.Fatalf("%d budget bytes still charged after queries finished", used)
	}

	text := e.Metrics().Expose()
	for _, metric := range []string{"rfview_spill_runs_total", "rfview_spill_bytes_total", "rfview_spill_operators_total"} {
		v := metricValue(t, text, metric)
		if v <= 0 {
			t.Fatalf("%s = %v, want > 0\n%s", metric, v, text)
		}
	}
	if v := metricValue(t, text, "rfview_spill_budget_limit_bytes"); v != budget {
		t.Fatalf("rfview_spill_budget_limit_bytes = %v, want %d", v, budget)
	}
}

// metricValue extracts one gauge/counter sample from the text exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not exposed", name)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: bad value %q", name, m[1])
	}
	return v
}

// TestEngineSpillDirHygiene pins the temp-file lifecycle on a configured
// SpillDir: stale run files from a dead process are swept at startup,
// unrelated files survive both the sweep and Close, and a closed engine
// leaves no run files behind.
func TestEngineSpillDirHygiene(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tmp")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"run-1-1.spill", "run-9999-3.spill"} {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("stale"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	keep := filepath.Join(dir, "not-a-run.dat")
	if err := os.WriteFile(keep, []byte("keep"), 0o600); err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions()
	opts.SpillDir = dir
	e := newSpillEngine(t, opts, 2<<10)
	swept, err := e.SweepSpill()
	if err != nil {
		t.Fatal(err)
	}
	if swept != 2 {
		t.Fatalf("swept %d stale files, want 2", swept)
	}

	loadSeq(t, e, 1500, func(i int) int64 { return int64(i % 97) })
	mustExec(t, e, `SELECT pos, val FROM seq ORDER BY val, pos`)
	if e.SpillStats().Runs.Load() == 0 {
		t.Fatal("query did not spill into the configured dir")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), "run-") && strings.HasSuffix(ent.Name(), ".spill") {
			t.Fatalf("run file %s survived Close", ent.Name())
		}
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("unrelated file removed: %v", err)
	}
}
