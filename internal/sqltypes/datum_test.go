package sqltypes

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDatumConstructorsAndAccessors(t *testing.T) {
	if !NullDatum.IsNull() || NullDatum.Typ() != Null {
		t.Fatal("zero datum must be NULL")
	}
	i := NewInt(42)
	if i.Typ() != Int || i.Int() != 42 || i.Float() != 42 {
		t.Fatalf("int datum: %v", i)
	}
	f := NewFloat(2.5)
	if f.Typ() != Float || f.Float() != 2.5 {
		t.Fatalf("float datum: %v", f)
	}
	s := NewString("hi")
	if s.Typ() != String || s.Str() != "hi" {
		t.Fatalf("string datum: %v", s)
	}
	b := NewBool(true)
	if b.Typ() != Bool || !b.Bool() {
		t.Fatalf("bool datum: %v", b)
	}
	if NewBool(false).Bool() {
		t.Fatal("false bool")
	}
}

func TestDateHandling(t *testing.T) {
	d, err := ParseDate("2002-02-26")
	if err != nil {
		t.Fatal(err)
	}
	if d.Typ() != Date {
		t.Fatalf("type = %v", d.Typ())
	}
	if got := d.String(); got != "2002-02-26" {
		t.Fatalf("String() = %q", got)
	}
	if d.Time().Year() != 2002 || d.Time().Month() != time.February || d.Time().Day() != 26 {
		t.Fatalf("Time() = %v", d.Time())
	}
	if _, err := ParseDate("26.02.2002"); err == nil {
		t.Fatal("bad date format must fail")
	}
	d2 := NewDateFromTime(time.Date(1969, 12, 31, 23, 0, 0, 0, time.UTC))
	if d2.String() != "1969-12-31" {
		t.Fatalf("pre-epoch date = %q", d2.String())
	}
	d3, _ := ParseDate("2001-03-02")
	d4, _ := ParseDate("2001-02-14")
	if c, _ := Compare(d3, d4); c <= 0 {
		t.Fatal("date comparison wrong")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{NullDatum, NewInt(1), -1},
		{NewInt(1), NullDatum, 1},
		{NullDatum, NullDatum, 0},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v, %v) = %d (%v), want %d", c.a, c.b, got, err, c.want)
		}
	}
	if _, err := Compare(NewInt(1), NewString("x")); err == nil {
		t.Error("cross-type comparison must fail")
	}
}

func TestArithmetic(t *testing.T) {
	add, _ := Add(NewInt(2), NewInt(3))
	if add.Typ() != Int || add.Int() != 5 {
		t.Fatalf("2+3 = %v", add)
	}
	mixed, _ := Add(NewInt(2), NewFloat(0.5))
	if mixed.Typ() != Float || mixed.Float() != 2.5 {
		t.Fatalf("2+0.5 = %v", mixed)
	}
	sub, _ := Sub(NewInt(2), NewInt(5))
	if sub.Int() != -3 {
		t.Fatalf("2-5 = %v", sub)
	}
	mul, _ := Mul(NewInt(4), NewInt(3))
	if mul.Int() != 12 {
		t.Fatalf("4*3 = %v", mul)
	}
	div, _ := Div(NewInt(7), NewInt(2))
	if div.Int() != 3 { // integer division truncates
		t.Fatalf("7/2 = %v", div)
	}
	fdiv, _ := Div(NewFloat(7), NewInt(2))
	if fdiv.Float() != 3.5 {
		t.Fatalf("7.0/2 = %v", fdiv)
	}
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Fatal("division by zero must fail")
	}
	if _, err := Add(NewInt(1), NewString("x")); err == nil {
		t.Fatal("int + string must fail")
	}
	// NULL propagation.
	n, err := Add(NullDatum, NewInt(1))
	if err != nil || !n.IsNull() {
		t.Fatalf("NULL+1 = %v (%v)", n, err)
	}
}

func TestModNegAbs(t *testing.T) {
	m, _ := Mod(NewInt(7), NewInt(4))
	if m.Int() != 3 {
		t.Fatalf("MOD(7,4) = %v", m)
	}
	m, _ = Mod(NewInt(-7), NewInt(4))
	if m.Int() != -3 { // sign of the dividend, like SQL MOD
		t.Fatalf("MOD(-7,4) = %v", m)
	}
	if _, err := Mod(NewInt(1), NewInt(0)); err == nil {
		t.Fatal("MOD by zero must fail")
	}
	if v, err := Mod(NullDatum, NewInt(2)); err != nil || !v.IsNull() {
		t.Fatal("MOD with NULL must be NULL")
	}
	n, _ := Neg(NewInt(5))
	if n.Int() != -5 {
		t.Fatalf("Neg = %v", n)
	}
	nf, _ := Neg(NewFloat(2.5))
	if nf.Float() != -2.5 {
		t.Fatalf("Neg float = %v", nf)
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Fatal("Neg of string must fail")
	}
	a, _ := Abs(NewInt(-4))
	if a.Int() != 4 {
		t.Fatalf("Abs = %v", a)
	}
	af, _ := Abs(NewFloat(-1.5))
	if af.Float() != 1.5 {
		t.Fatalf("Abs float = %v", af)
	}
}

func TestCast(t *testing.T) {
	cases := []struct {
		in   Datum
		to   Type
		want string
	}{
		{NewFloat(3.7), Int, "3"},
		{NewInt(3), Float, "3"},
		{NewString("42"), Int, "42"},
		{NewString("2.5"), Float, "2.5"},
		{NewInt(42), String, "42"},
		{NewString("2001-05-06"), Date, "2001-05-06"},
		{NewInt(1), Bool, "true"},
		{NewBool(true), Int, "1"},
	}
	for _, c := range cases {
		got, err := Cast(c.in, c.to)
		if err != nil {
			t.Errorf("Cast(%v, %v): %v", c.in, c.to, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("Cast(%v, %v) = %v, want %v", c.in, c.to, got, c.want)
		}
	}
	if _, err := Cast(NewString("xyz"), Int); err == nil {
		t.Error("bad numeric cast must fail")
	}
	if v, err := Cast(NullDatum, Int); err != nil || !v.IsNull() {
		t.Error("NULL casts to NULL")
	}
	same, _ := Cast(NewInt(5), Int)
	if same.Int() != 5 {
		t.Error("identity cast broken")
	}
}

func TestHashConsistency(t *testing.T) {
	// Equal values must hash equally, across Int/Float.
	if NewInt(7).Hash() != NewFloat(7).Hash() {
		t.Error("7 and 7.0 must hash equally (they compare equal)")
	}
	if NewInt(7).Hash() == NewInt(8).Hash() {
		t.Error("unlikely hash collision in trivial case")
	}
	if NewString("a").Hash() == NewString("b").Hash() {
		t.Error("string hash collision in trivial case")
	}
	f := func(a int64) bool {
		return NewInt(a).Hash() == NewFloat(float64(a)).Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEqualSemantics(t *testing.T) {
	if !Equal(NullDatum, NullDatum) {
		t.Error("grouping equality treats NULL = NULL")
	}
	if Equal(NullDatum, NewInt(0)) {
		t.Error("NULL != 0")
	}
	if !Equal(NewInt(2), NewFloat(2)) {
		t.Error("2 = 2.0 numerically")
	}
	if Equal(NewInt(1), NewString("1")) {
		t.Error("1 != '1'")
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].Int() != 1 {
		t.Error("Clone must not alias")
	}
	if r.String() != "(1, x)" {
		t.Errorf("Row.String() = %q", r.String())
	}
}

func TestTypeStrings(t *testing.T) {
	names := map[Type]string{
		Null: "NULL", Bool: "BOOLEAN", Int: "INTEGER",
		Float: "FLOAT", String: "VARCHAR", Date: "DATE",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Errorf("%v.String() = %q, want %q", typ, typ.String(), want)
		}
	}
	if !Int.Numeric() || !Float.Numeric() || String.Numeric() {
		t.Error("Numeric() misclassifies")
	}
}

func TestDatumString(t *testing.T) {
	cases := map[string]Datum{
		"NULL":  NullDatum,
		"42":    NewInt(42),
		"2.5":   NewFloat(2.5),
		"hello": NewString("hello"),
		"true":  NewBool(true),
	}
	for want, d := range cases {
		if d.String() != want {
			t.Errorf("String() = %q, want %q", d.String(), want)
		}
	}
}

// Property: Add/Sub are inverses for ints.
func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(a, b int32) bool {
		x, err := Add(NewInt(int64(a)), NewInt(int64(b)))
		if err != nil {
			return false
		}
		y, err := Sub(x, NewInt(int64(b)))
		if err != nil {
			return false
		}
		return y.Int() == int64(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is antisymmetric for ints and floats.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := NewInt(int64(a)), NewFloat(float64(b))
		c1, err1 := Compare(x, y)
		c2, err2 := Compare(y, x)
		return err1 == nil && err2 == nil && c1 == -c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
