package storage

import (
	"sort"

	"rfview/internal/sqltypes"
)

// BTree is an in-memory B+tree index over datum-tuple keys. Entries live in
// the leaves, which are chained for range scans; internal nodes hold copied-
// up separators. Duplicate keys are disambiguated by row id, so every stored
// entry is unique and deletes are exact.
//
// The tree uses minimum degree t: nodes hold at most 2t−1 keys and (except
// the root) at least t−1.
type BTree struct {
	root *btNode
	n    int
}

const btreeT = 32 // minimum degree

const (
	btMaxKeys = 2*btreeT - 1
	btMinKeys = btreeT - 1
)

type btEntry struct {
	key sqltypes.Row
	id  RowID
}

type btNode struct {
	leaf     bool
	entries  []btEntry // leaf: data entries; internal: separators
	children []*btNode // internal only: len(entries)+1
	next     *btNode   // leaf chain
}

// NewBTree returns an empty ordered index.
func NewBTree() *BTree {
	return &BTree{root: &btNode{leaf: true}}
}

// Len implements Index.
func (t *BTree) Len() int { return t.n }

// Ordered implements Index.
func (t *BTree) Ordered() bool { return true }

// entryLess orders full entries: key columns first, row id as tiebreak.
func entryLess(a, b btEntry) bool {
	c := compareKeyPrefix(a.key, b.key)
	if c != 0 {
		return c < 0
	}
	return a.id < b.id
}

// childIndex returns the child to descend into for entry e: the first child
// whose separator is greater than e (equal separators send us right, because
// separators are copied up from the first entry of the right sibling).
func (nd *btNode) childIndex(e btEntry) int {
	return sort.Search(len(nd.entries), func(i int) bool {
		return entryLess(e, nd.entries[i])
	})
}

// Insert implements Index.
func (t *BTree) Insert(key sqltypes.Row, id RowID) {
	e := btEntry{key: key, id: id}
	if len(t.root.entries) == btMaxKeys {
		old := t.root
		t.root = &btNode{children: []*btNode{old}}
		t.root.splitChild(0)
	}
	t.root.insertNonFull(e)
	t.n++
}

// splitChild splits the full child at position i, pushing (internal) or
// copying (leaf) a separator into nd.
func (nd *btNode) splitChild(i int) {
	child := nd.children[i]
	var sep btEntry
	right := &btNode{leaf: child.leaf}
	if child.leaf {
		mid := len(child.entries) / 2
		right.entries = append(right.entries, child.entries[mid:]...)
		child.entries = child.entries[:mid:mid]
		right.next = child.next
		child.next = right
		sep = right.entries[0] // copy-up
	} else {
		mid := len(child.entries) / 2
		sep = child.entries[mid] // move-up
		right.entries = append(right.entries, child.entries[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.entries = child.entries[:mid:mid]
		child.children = child.children[: mid+1 : mid+1]
	}
	nd.entries = append(nd.entries, btEntry{})
	copy(nd.entries[i+1:], nd.entries[i:])
	nd.entries[i] = sep
	nd.children = append(nd.children, nil)
	copy(nd.children[i+2:], nd.children[i+1:])
	nd.children[i+1] = right
}

func (nd *btNode) insertNonFull(e btEntry) {
	if nd.leaf {
		i := sort.Search(len(nd.entries), func(j int) bool {
			return entryLess(e, nd.entries[j])
		})
		nd.entries = append(nd.entries, btEntry{})
		copy(nd.entries[i+1:], nd.entries[i:])
		nd.entries[i] = e
		return
	}
	i := nd.childIndex(e)
	if len(nd.children[i].entries) == btMaxKeys {
		nd.splitChild(i)
		if entryLess(nd.entries[i], e) || !entryLess(e, nd.entries[i]) {
			// e >= separator: descend right of the new separator.
			i++
		}
	}
	nd.children[i].insertNonFull(e)
}

// Delete implements Index. Absent entries are ignored.
func (t *BTree) Delete(key sqltypes.Row, id RowID) {
	e := btEntry{key: key, id: id}
	if t.deleteEntry(t.root, e) {
		t.n--
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = t.root.children[0]
	}
}

// deleteEntry removes e from the subtree at nd, keeping every visited child
// above the minimum occupancy before descending (preemptive rebalancing).
func (t *BTree) deleteEntry(nd *btNode, e btEntry) bool {
	if nd.leaf {
		i := sort.Search(len(nd.entries), func(j int) bool {
			return !entryLess(nd.entries[j], e)
		})
		if i < len(nd.entries) && !entryLess(e, nd.entries[i]) && !entryLess(nd.entries[i], e) {
			nd.entries = append(nd.entries[:i], nd.entries[i+1:]...)
			return true
		}
		return false
	}
	i := nd.childIndex(e)
	if len(nd.children[i].entries) == btMinKeys {
		nd.fixChild(i)
		i = nd.childIndex(e) // structure changed; re-aim
	}
	return t.deleteEntry(nd.children[i], e)
}

// fixChild grows child i above the minimum by borrowing from a sibling or
// merging with one.
func (nd *btNode) fixChild(i int) {
	if i > 0 && len(nd.children[i-1].entries) > btMinKeys {
		nd.borrowLeft(i)
		return
	}
	if i < len(nd.children)-1 && len(nd.children[i+1].entries) > btMinKeys {
		nd.borrowRight(i)
		return
	}
	if i > 0 {
		nd.mergeChildren(i - 1)
	} else {
		nd.mergeChildren(i)
	}
}

func (nd *btNode) borrowLeft(i int) {
	child, left := nd.children[i], nd.children[i-1]
	if child.leaf {
		last := left.entries[len(left.entries)-1]
		left.entries = left.entries[:len(left.entries)-1]
		child.entries = append([]btEntry{last}, child.entries...)
		nd.entries[i-1] = child.entries[0] // refresh copied-up separator
	} else {
		// Rotate through the parent separator.
		child.entries = append([]btEntry{nd.entries[i-1]}, child.entries...)
		nd.entries[i-1] = left.entries[len(left.entries)-1]
		left.entries = left.entries[:len(left.entries)-1]
		child.children = append([]*btNode{left.children[len(left.children)-1]}, child.children...)
		left.children = left.children[:len(left.children)-1]
	}
}

func (nd *btNode) borrowRight(i int) {
	child, right := nd.children[i], nd.children[i+1]
	if child.leaf {
		first := right.entries[0]
		right.entries = right.entries[1:]
		child.entries = append(child.entries, first)
		nd.entries[i] = right.entries[0]
	} else {
		child.entries = append(child.entries, nd.entries[i])
		nd.entries[i] = right.entries[0]
		right.entries = right.entries[1:]
		child.children = append(child.children, right.children[0])
		right.children = right.children[1:]
	}
}

// mergeChildren merges child i+1 into child i, absorbing separator i.
func (nd *btNode) mergeChildren(i int) {
	left, right := nd.children[i], nd.children[i+1]
	if left.leaf {
		left.entries = append(left.entries, right.entries...)
		left.next = right.next
	} else {
		left.entries = append(left.entries, nd.entries[i])
		left.entries = append(left.entries, right.entries...)
		left.children = append(left.children, right.children...)
	}
	nd.entries = append(nd.entries[:i], nd.entries[i+1:]...)
	nd.children = append(nd.children[:i+1], nd.children[i+2:]...)
}

// seekLeaf descends to the first leaf that may contain an entry whose key
// prefix-compares >= probe. A nil probe lands on the leftmost leaf.
func (t *BTree) seekLeaf(probe sqltypes.Row) *btNode {
	nd := t.root
	for !nd.leaf {
		i := sort.Search(len(nd.entries), func(j int) bool {
			return compareKeyPrefix(nd.entries[j].key, probe) >= 0
		})
		nd = nd.children[i]
	}
	return nd
}

// Range implements Index: fn sees every entry with from <= key <= to under
// prefix comparison, in key order. Either bound may be nil.
func (t *BTree) Range(from, to sqltypes.Row, fn func(key sqltypes.Row, id RowID) bool) {
	var leaf *btNode
	if from == nil {
		leaf = t.seekLeaf(nil)
	} else {
		leaf = t.seekLeaf(from)
	}
	for leaf != nil {
		for _, e := range leaf.entries {
			if from != nil && compareKeyPrefix(e.key, from) < 0 {
				continue
			}
			if to != nil && compareKeyPrefix(e.key, to) > 0 {
				return
			}
			if !fn(e.key, e.id) {
				return
			}
		}
		leaf = leaf.next
	}
}

// Lookup implements Index: exact (or prefix, if key is shorter than the
// indexed column list) match.
func (t *BTree) Lookup(key sqltypes.Row, fn func(RowID) bool) {
	t.Range(key, key, func(_ sqltypes.Row, id RowID) bool {
		return fn(id)
	})
}

// First implements Index.
func (t *BTree) First(key sqltypes.Row) (RowID, bool) {
	var out RowID
	found := false
	t.Lookup(key, func(id RowID) bool {
		out, found = id, true
		return false
	})
	return out, found
}

// check validates the structural invariants; used by tests.
func (t *BTree) check() error {
	return t.root.check(true, nil, nil)
}

func (nd *btNode) check(isRoot bool, lower, upper *btEntry) error {
	if !isRoot && len(nd.entries) < btMinKeys {
		return errUnderflow
	}
	if len(nd.entries) > btMaxKeys {
		return errOverflow
	}
	for i := 1; i < len(nd.entries); i++ {
		if entryLess(nd.entries[i], nd.entries[i-1]) {
			return errUnsorted
		}
	}
	if lower != nil && len(nd.entries) > 0 && entryLess(nd.entries[0], *lower) {
		return errBounds
	}
	if upper != nil && len(nd.entries) > 0 && !entryLess(nd.entries[len(nd.entries)-1], *upper) && nd.leaf {
		// Leaf entries must stay strictly below the upper separator only when
		// they are not equal to it (copy-up allows equality in the right
		// subtree); equality with the upper bound is a violation.
		if entryLess(*upper, nd.entries[len(nd.entries)-1]) {
			return errBounds
		}
	}
	if nd.leaf {
		return nil
	}
	if len(nd.children) != len(nd.entries)+1 {
		return errFanout
	}
	for i, child := range nd.children {
		var lo, hi *btEntry
		if i > 0 {
			lo = &nd.entries[i-1]
		} else {
			lo = lower
		}
		if i < len(nd.entries) {
			hi = &nd.entries[i]
		} else {
			hi = upper
		}
		if err := child.check(false, lo, hi); err != nil {
			return err
		}
	}
	return nil
}

type btError string

func (e btError) Error() string { return string(e) }

const (
	errUnderflow btError = "btree: node underflow"
	errOverflow  btError = "btree: node overflow"
	errUnsorted  btError = "btree: entries out of order"
	errBounds    btError = "btree: entry violates separator bounds"
	errFanout    btError = "btree: children/entries fanout mismatch"
)
