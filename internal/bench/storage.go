package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"rfview/internal/engine"
	"rfview/internal/rewrite"
)

// The storage experiment measures what paged heap storage costs and buys.
// The scan grid times a full-table aggregate scan three ways per size:
// resident (paged storage off — the pre-paging in-memory baseline), warm
// (paged, pool big enough to hold the table), and cold (paged, pool starved
// to a fraction of the table, so every scan streams pages back from disk).
// The strategy sweep then runs every reporting-function evaluation strategy
// over a dataset bigger than the memory budget, proving out-of-core
// operation end to end.

// ScanPoint is one measured cell of the scan grid.
type ScanPoint struct {
	N      int
	Mode   string // "resident", "warm", "cold"
	Median time.Duration
	Trials []time.Duration

	// Pool counters accumulated over the trials (zero in resident mode).
	Hits, Misses, Evictions int64
}

// StorageScanSizes is the default scan-grid size list.
var StorageScanSizes = []int{10_000, 100_000, 1_000_000}

// storageScanTrials is how many timed scans each cell gets. Scan medians
// are milliseconds-scale, so the headline ratio needs the extra trials to
// sit still run over run.
const storageScanTrials = 9

// scanQuery reads every visible row through the table scan path; the
// aggregate keeps result materialization out of the measurement.
const scanQuery = `SELECT COUNT(*) AS c, SUM(val) AS s FROM seq`

// coldPoolBytes starves the pool to ~1/16 of the table's heap footprint
// (~16 encoded bytes per row), floored at 64 KiB so the pool stays usable.
func coldPoolBytes(n int) int64 {
	heap := int64(n) * 16
	b := heap / 16
	if min := int64(64 << 10); b < min {
		return min
	}
	return b
}

// RunStorageScans measures the scan grid.
func RunStorageScans(sizes []int) ([]ScanPoint, error) {
	var out []ScanPoint
	for _, n := range sizes {
		for _, mode := range []string{"resident", "warm", "cold"} {
			opts := engine.DefaultOptions()
			switch mode {
			case "resident":
				opts.DisablePagedStorage = true
			case "cold":
				opts.PageCacheBytes = coldPoolBytes(n)
			}
			e := engine.New(opts)
			// The grid times the storage path; a repeated identical SELECT
			// would otherwise be answered from the plan/result cache.
			e.SetPlanCacheCapacity(0)
			if err := LoadSequenceTable(e, n, 31); err != nil {
				return nil, err
			}
			// Prime: the first scan after load pays one-off costs (cold mode
			// additionally forces the first write-back wave here, not in the
			// timed trials).
			if _, err := e.Exec(scanQuery); err != nil {
				return nil, err
			}
			pre := e.StorageStats()
			p := ScanPoint{N: n, Mode: mode}
			for t := 0; t < storageScanTrials; t++ {
				// Collect load/priming garbage outside the timed region so
				// trials measure steady-state scan cost, not allocation debt.
				runtime.GC()
				start := time.Now()
				if _, err := e.Exec(scanQuery); err != nil {
					return nil, err
				}
				p.Trials = append(p.Trials, time.Since(start))
			}
			post := e.StorageStats()
			p.Hits = post.Hits - pre.Hits
			p.Misses = post.Misses - pre.Misses
			p.Evictions = post.Evictions - pre.Evictions
			p.Median = medianDuration(p.Trials)
			out = append(out, p)
			e.Close()
		}
	}
	return out, nil
}

// StrategyRow is one strategy's run over the out-of-core dataset.
type StrategyRow struct {
	Strategy string
	Rows     int
	Elapsed  time.Duration

	// Pool pressure observed during the run.
	Evictions  int64
	Writebacks int64
}

// StorageStrategyN and StorageStrategyBudget define the out-of-core sweep:
// the dataset's heap footprint (~16 B/row encoded plus directory overhead)
// exceeds the budget several times over, so both the page cache and the sort
// path must spill.
var (
	StorageStrategyN            = 1_000_000
	StorageStrategyBudget int64 = 4 << 20 // 4 MiB against a ~16 MiB heap
)

// RunStorageStrategies runs all five evaluation strategies — native window,
// boxed window, self-join simulation, MaxOA derivation, MinOA derivation —
// on one paged engine whose memory budget is smaller than the dataset.
//
// The derived strategies run with an identically-windowed view (exact
// derivation, the paper's §3 caching setting): the paper's §7 finding — which
// DerivationMaxRows operationalizes — is that the relational rendering of
// non-exact derivation scales superlinearly and is not advisable for large
// sequences, so at this cardinality the interesting out-of-core work is the
// view *build* (a full windowed computation over the paged base table under
// budget) plus the derivation answer's scan of the paged view heap. Non-exact
// derivation under paging is covered by the tiny-pool differential oracle.
func RunStorageStrategies(n int, budget int64) ([]StrategyRow, error) {
	strategies := []struct {
		name   string
		mutate func(*engine.Options)
		view   bool
	}{
		{"native", nil, false},
		{"boxed", func(o *engine.Options) { o.DisableVectorized = true }, false},
		{"selfjoin", func(o *engine.Options) { o.NativeWindow = false }, false},
		{"maxoa", func(o *engine.Options) { o.Strategy = rewrite.StrategyMaxOA }, true},
		{"minoa", func(o *engine.Options) { o.Strategy = rewrite.StrategyMinOA }, true},
	}
	q := `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS w FROM seq`
	viewDDL := `CREATE MATERIALIZED VIEW mv AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS val FROM seq`

	var out []StrategyRow
	for _, s := range strategies {
		opts := engine.DefaultOptions()
		opts.MemoryBudgetBytes = budget
		if s.mutate != nil {
			s.mutate(&opts)
		}
		e := engine.New(opts)
		loadStart := time.Now()
		if err := LoadSequenceTable(e, n, 37); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "  %-10s load %s", s.name, time.Since(loadStart).Round(time.Millisecond))
		// The self-join simulation degenerates to a nested loop without a key
		// index; give every strategy the same physical design.
		if _, err := e.Exec(`CREATE UNIQUE INDEX seq_pk ON seq (pos)`); err != nil {
			return nil, err
		}
		if s.view {
			viewStart := time.Now()
			if _, err := e.Exec(viewDDL); err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, " view %s", time.Since(viewStart).Round(time.Millisecond))
		}
		pre := e.StorageStats()
		start := time.Now()
		res, err := e.Exec(q)
		if err != nil {
			return nil, fmt.Errorf("strategy %s: %w", s.name, err)
		}
		elapsed := time.Since(start)
		if len(res.Rows) != n {
			return nil, fmt.Errorf("strategy %s: %d rows, want %d", s.name, len(res.Rows), n)
		}
		post := e.StorageStats()
		out = append(out, StrategyRow{
			Strategy: s.name, Rows: len(res.Rows), Elapsed: elapsed,
			Evictions:  post.Evictions - pre.Evictions,
			Writebacks: post.Writebacks - pre.Writebacks,
		})
		fmt.Fprintf(os.Stderr, " query %s\n", elapsed.Round(time.Millisecond))
		e.Close()
	}
	return out, nil
}

// FormatStorageScans renders the scan grid.
func FormatStorageScans(points []ScanPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Paged storage scan grid: full-table aggregate, median of %d\n", storageScanTrials)
	b.WriteString("  # rows        mode       median        hits     misses  evictions\n")
	for _, p := range points {
		fmt.Fprintf(&b, "  %10d   %-9s %-12s %9d %9d %9d\n",
			p.N, p.Mode, fmtDur(p.Median), p.Hits, p.Misses, p.Evictions)
	}
	return b.String()
}

// FormatStorageStrategies renders the out-of-core strategy sweep.
func FormatStorageStrategies(n int, budget int64, rows []StrategyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Out-of-core strategy sweep: %d rows under a %d MiB budget\n",
		n, budget>>20)
	b.WriteString("  strategy    elapsed       evictions  writebacks\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s  %-12s %10d %10d\n",
			r.Strategy, fmtDur(r.Elapsed), r.Evictions, r.Writebacks)
	}
	return b.String()
}

// StorageJSON renders both experiments in the BENCH_*.json convention.
func StorageJSON(points []ScanPoint, stratN int, budget int64, strats []StrategyRow) (string, error) {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	type scanJSON struct {
		N         int       `json:"n"`
		Mode      string    `json:"mode"`
		MedianMs  float64   `json:"median_ms"`
		TrialsMs  []float64 `json:"trials_ms"`
		Hits      int64     `json:"hits"`
		Misses    int64     `json:"misses"`
		Evictions int64     `json:"evictions"`
	}
	var scans []scanJSON
	medians := map[string]map[int]float64{}
	for _, p := range points {
		sj := scanJSON{N: p.N, Mode: p.Mode, MedianMs: ms(p.Median),
			Hits: p.Hits, Misses: p.Misses, Evictions: p.Evictions}
		for _, d := range p.Trials {
			sj.TrialsMs = append(sj.TrialsMs, ms(d))
		}
		scans = append(scans, sj)
		if medians[p.Mode] == nil {
			medians[p.Mode] = map[int]float64{}
		}
		medians[p.Mode][p.N] = float64(p.Median)
	}
	// Headline: warm-over-resident ratio per size (the acceptance number).
	ratios := map[string]float64{}
	for n, warm := range medians["warm"] {
		if res := medians["resident"][n]; res > 0 {
			ratios[fmt.Sprintf("%d", n)] = roundTo(warm/res, 3)
		}
	}
	type stratJSON struct {
		Strategy   string  `json:"strategy"`
		Rows       int     `json:"rows"`
		ElapsedMs  float64 `json:"elapsed_ms"`
		Evictions  int64   `json:"evictions"`
		Writebacks int64   `json:"writebacks"`
	}
	var sj []stratJSON
	for _, r := range strats {
		sj = append(sj, stratJSON{Strategy: r.Strategy, Rows: r.Rows,
			ElapsedMs: ms(r.Elapsed), Evictions: r.Evictions, Writebacks: r.Writebacks})
	}
	out := map[string]any{
		"benchmark": "paged heap storage: scan grid and out-of-core strategy sweep",
		"workload": map[string]any{
			"scan_query":   scanQuery,
			"scan_trials":  storageScanTrials,
			"scan_modes":   "resident = paged storage off (pre-paging baseline); warm = pool holds the table; cold = pool starved to ~1/16 of the heap",
			"strategy_n":   stratN,
			"budget_bytes": budget,
			"note":         "warm_over_resident is the acceptance ratio: warm-cache paged scan vs the in-memory baseline; derived strategies use exact derivation (identically-windowed view) per the paper's §7 finding that non-exact relational derivation is superlinear at this scale",
		},
		"host": map[string]any{
			"cpus":       runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
		"scan_grid":          scans,
		"warm_over_resident": ratios,
		"strategies":         sj,
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}
