package storage

import (
	"encoding/binary"
	"fmt"
)

// Slotted-page layout. A page is a fixed-size byte array:
//
//	[ header 8B ][ slot entries 8B each, growing up ] ... [ record data, growing down ]
//
// Header: magic (u16) | nslots (u16) | freeLow (u32). freeLow is the offset
// of the first byte used by record data; free space is the gap between the
// end of the slot directory and freeLow. Slot entry k at offset 8+8k holds
// off (u32) | len (u32) of record k's bytes.
//
// Concurrency contract (why no per-page latch exists): appends happen only
// under the owning table's write lock and only into bytes no reader can
// reach yet — the record bytes land in the free gap, and the new slot entry
// occupies a previously-unused word. Readers never read the header; they go
// straight to a slot entry whose index they learned from the table's slot
// directory, which is published under that same lock. So reader and writer
// never touch the same word without an intervening happens-before edge.

const (
	pageMagic      = 0x5250 // "RP"
	pageHeaderSize = 8
	slotEntrySize  = 8

	// DefaultPageSize is the heap page size when no -page-size is given.
	DefaultPageSize = 8192

	// MinPageSize / MaxPageSize bound configurable page sizes. The lower
	// bound keeps at least a little record capacity per page; the upper
	// bound keeps single-page IO sane.
	MinPageSize = 1 << 10
	MaxPageSize = 1 << 20
)

// initPage stamps an empty slotted page over buf.
func initPage(buf []byte) {
	binary.LittleEndian.PutUint16(buf[0:2], pageMagic)
	binary.LittleEndian.PutUint16(buf[2:4], 0)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(buf)))
}

// pageNumSlots returns the number of records on the page.
func pageNumSlots(buf []byte) int {
	return int(binary.LittleEndian.Uint16(buf[2:4]))
}

// pageCap returns the largest record a single empty page of size ps can
// hold (one slot entry plus the record bytes).
func pageCap(ps int) int {
	return ps - pageHeaderSize - slotEntrySize
}

// pageAppend copies rec into buf's free space and publishes a new slot
// entry. Returns the slot index, or ok=false when the page lacks room.
// Caller must hold the owning table's write lock.
func pageAppend(buf []byte, rec []byte) (slot uint16, ok bool) {
	n := pageNumSlots(buf)
	if n >= 0xFFFF {
		return 0, false
	}
	freeLow := int(binary.LittleEndian.Uint32(buf[4:8]))
	dirEnd := pageHeaderSize + (n+1)*slotEntrySize
	if freeLow-dirEnd < len(rec) {
		return 0, false
	}
	off := freeLow - len(rec)
	copy(buf[off:freeLow], rec)
	ent := pageHeaderSize + n*slotEntrySize
	binary.LittleEndian.PutUint32(buf[ent:ent+4], uint32(off))
	binary.LittleEndian.PutUint32(buf[ent+4:ent+8], uint32(len(rec)))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(off))
	binary.LittleEndian.PutUint16(buf[2:4], uint16(n+1))
	return uint16(n), true
}

// pageRecord returns the bytes of record slot on the page. The returned
// slice aliases buf — callers must finish with it (decode it) before
// unpinning the frame that owns buf.
func pageRecord(buf []byte, slot uint16) ([]byte, error) {
	ent := pageHeaderSize + int(slot)*slotEntrySize
	if ent+slotEntrySize > len(buf) {
		return nil, fmt.Errorf("storage: slot %d out of page bounds", slot)
	}
	off := int(binary.LittleEndian.Uint32(buf[ent : ent+4]))
	ln := int(binary.LittleEndian.Uint32(buf[ent+4 : ent+8]))
	if off < pageHeaderSize || ln < 0 || off+ln > len(buf) {
		return nil, fmt.Errorf("storage: slot %d corrupt (off=%d len=%d page=%d)", slot, off, ln, len(buf))
	}
	return buf[off : off+ln], nil
}
