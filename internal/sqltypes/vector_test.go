package sqltypes

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// sign collapses a comparison result to -1/0/1.
func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	default:
		return 0
	}
}

// TestEncodeKeyAgreesWithCompare is the core property: for random pairs of a
// homogeneous column type, the byte order of EncodeKey matches Compare —
// including equality, which is what keeps stable sorts stable.
func TestEncodeKeyAgreesWithCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gens := map[string]func() Datum{
		"int": func() Datum { return NewInt(rng.Int63n(200) - 100) },
		"int-extreme": func() Datum {
			return []Datum{NewInt(math.MinInt64), NewInt(math.MaxInt64), NewInt(0), NewInt(-1)}[rng.Intn(4)]
		},
		"float": func() Datum { return NewFloat((rng.Float64() - 0.5) * 1e6) },
		"float-edge": func() Datum {
			return []Datum{NewFloat(0), NewFloat(math.Copysign(0, -1)), NewFloat(math.Inf(1)),
				NewFloat(math.Inf(-1)), NewFloat(1e-300), NewFloat(-1e-300)}[rng.Intn(6)]
		},
		"string": func() Datum {
			b := make([]byte, rng.Intn(6))
			for i := range b {
				b[i] = byte(rng.Intn(4)) // heavy on 0x00/0x01 to stress escaping
			}
			return NewString(string(b))
		},
		"bool": func() Datum { return NewBool(rng.Intn(2) == 0) },
		"date": func() Datum { return NewDate(rng.Int63n(40000) - 20000) },
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 2000; trial++ {
				a, b := gen(), gen()
				if rng.Intn(10) == 0 {
					a = NullDatum
				}
				if rng.Intn(10) == 0 {
					b = NullDatum
				}
				want, err := Compare(a, b)
				if err != nil {
					t.Fatalf("Compare(%v, %v): %v", a, b, err)
				}
				for _, desc := range []bool{false, true} {
					ea := EncodeKey(nil, a, desc)
					eb := EncodeKey(nil, b, desc)
					got := sign(bytes.Compare(ea, eb))
					exp := sign(want)
					if desc {
						exp = -exp
					}
					if got != exp {
						t.Fatalf("EncodeKey order for (%v, %v) desc=%v: got %d want %d (%x vs %x)",
							a, b, desc, got, exp, ea, eb)
					}
				}
			}
		})
	}
}

// TestEncodeKeyConcatenation checks that multi-key concatenations order
// correctly even when an earlier string key is a prefix of another — the
// terminator must keep ("a", 9) below ("ab", 0).
func TestEncodeKeyConcatenation(t *testing.T) {
	enc := func(s string, i int64) []byte {
		b := EncodeKey(nil, NewString(s), false)
		return EncodeKey(b, NewInt(i), false)
	}
	cases := []struct {
		a, b []byte
		want int
	}{
		{enc("a", 9), enc("ab", 0), -1},
		{enc("a\x00", 0), enc("a", 9), 1},        // escaped NUL sorts above terminator
		{enc("a", 1), enc("a", 2), -1},           // tie on string falls to int
		{enc("", 5), enc("", 5), 0},              // fully equal
		{enc("a\x00b", 0), enc("a\x00c", 0), -1}, // escaping preserves inner order
	}
	for i, c := range cases {
		if got := sign(bytes.Compare(c.a, c.b)); got != c.want {
			t.Fatalf("case %d: got %d want %d", i, got, c.want)
		}
	}
}

// TestEncodeKeyNegativeZero: -0.0 and +0.0 must encode identically, so they
// remain a tie and a stable sort preserves input order, exactly as the
// Compare-based path does.
func TestEncodeKeyNegativeZero(t *testing.T) {
	pos := EncodeKey(nil, NewFloat(0), false)
	neg := EncodeKey(nil, NewFloat(math.Copysign(0, -1)), false)
	if !bytes.Equal(pos, neg) {
		t.Fatalf("+0.0 and -0.0 encode differently: %x vs %x", pos, neg)
	}
}

func TestColVecTyped(t *testing.T) {
	var v ColVec
	v.Reset(4)
	for _, d := range []Datum{NewInt(3), NullDatum, NewInt(-7), NewInt(0)} {
		v.Append(d)
	}
	if !v.Valid() || v.Typ != Int || v.Len() != 4 {
		t.Fatalf("vector state: valid=%v typ=%v len=%d", v.Valid(), v.Typ, v.Len())
	}
	if !v.Nulls.Get(1) || v.Nulls.Get(0) || !v.Nulls.Any() {
		t.Fatalf("null bitmap wrong")
	}
	if v.Ints[0] != 3 || v.Ints[2] != -7 {
		t.Fatalf("typed payloads wrong: %v", v.Ints)
	}
	for i, want := range []Datum{NewInt(3), NullDatum, NewInt(-7), NewInt(0)} {
		if got := v.Datum(i); !Equal(got, want) && !(got.IsNull() && want.IsNull()) {
			t.Fatalf("Datum(%d) = %v want %v", i, got, want)
		}
	}
}

func TestColVecLeadingNullBackfill(t *testing.T) {
	var v ColVec
	v.Reset(3)
	v.Append(NullDatum)
	v.Append(NullDatum)
	v.Append(NewFloat(1.5))
	if !v.Valid() || v.Typ != Float {
		t.Fatalf("state: valid=%v typ=%v", v.Valid(), v.Typ)
	}
	if len(v.Floats) != 3 || v.Floats[2] != 1.5 {
		t.Fatalf("backfill failed: %v", v.Floats)
	}
}

func TestColVecInvalidation(t *testing.T) {
	cases := []struct {
		name string
		ds   []Datum
	}{
		{"int-then-float", []Datum{NewInt(1), NewFloat(2.5)}},
		{"float-then-string", []Datum{NewFloat(1), NewString("x")}},
		{"nan", []Datum{NewFloat(1), NewFloat(math.NaN())}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var v ColVec
			v.Reset(len(c.ds))
			for _, d := range c.ds {
				v.Append(d)
			}
			if v.Valid() {
				t.Fatalf("vector should be invalid")
			}
			if v.Len() != len(c.ds) {
				t.Fatalf("Len = %d want %d", v.Len(), len(c.ds))
			}
		})
	}
}

func TestComparable(t *testing.T) {
	if !Comparable(Int, Float) || !Comparable(Null, String) || !Comparable(Date, Date) {
		t.Fatal("expected comparable")
	}
	if Comparable(Int, String) || Comparable(Bool, Date) {
		t.Fatal("expected incomparable")
	}
}
