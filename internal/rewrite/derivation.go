package rewrite

import (
	"fmt"

	"rfview/internal/catalog"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
)

// Strategy selects the derivation algorithm.
type Strategy uint8

// Derivation strategies.
const (
	// StrategyAuto picks MinOA for SUM/COUNT (the paper calls it the
	// theoretically more economical variant) and MaxOA where MinOA does not
	// apply (MIN/MAX, or the residue-collision corner).
	StrategyAuto Strategy = iota
	StrategyMaxOA
	StrategyMinOA
)

func (s Strategy) String() string {
	switch s {
	case StrategyMaxOA:
		return "MaxOA"
	case StrategyMinOA:
		return "MinOA"
	default:
		return "auto"
	}
}

// Form selects the relational rendering of the derivation pattern — the two
// implementation alternatives Table 2 compares.
type Form uint8

// Pattern forms.
const (
	// FormDisjunctive joins the view with itself once, under the OR of all
	// branch predicates (Figs. 10/13 verbatim).
	FormDisjunctive Form = iota
	// FormUnion runs one simple-predicate query per branch and combines them
	// with UNION ALL before the final aggregation.
	FormUnion
)

func (f Form) String() string {
	if f == FormUnion {
		return "union"
	}
	return "disjunctive"
}

// Derivation is the result of a successful view match: the rewritten
// statement plus provenance for EXPLAIN and the experiment harness.
type Derivation struct {
	View     *catalog.MatView
	Strategy Strategy // resolved (never StrategyAuto)
	Form     Form
	DeltaL   int
	DeltaH   int
	Wx       int
	// Exact marks an identically-windowed match: the rewrite is a plain
	// scan of the view body, with none of the self-join machinery.
	Exact bool
	Stmt  sqlparser.SelectStatement
}

// Derive matches a reporting-function query against the materialized
// sequence views in the catalog and, if one can answer it, returns the
// rewritten statement (§3–§5). A nil Derivation with nil error means "no
// applicable view" — the caller plans the query natively.
func Derive(cat *catalog.Catalog, sel *sqlparser.Select, strategy Strategy, form Form) (*Derivation, error) {
	wq, err := MatchWindowQuery(sel)
	if err != nil {
		return nil, nil // not the canonical shape; not an error
	}
	partCol := ""
	switch len(wq.PartitionBy) {
	case 0:
	case 1:
		// One partition column: answerable from a partitioned sequence view
		// (a "complete reporting function" with header/trailer per
		// partition, §6.2).
		partCol = wq.PartitionBy[0]
	default:
		return nil, nil // multi-column partitioning stays at the core layer
	}
	if !plainColsMatch(wq, partCol) {
		return nil, nil // only SELECT [part,] pos, agg OVER … is view-answerable
	}
	valCol := wq.ValCol
	agg := wq.Agg
	if agg == "COUNT" && valCol == "" {
		valCol = wq.PosCol // COUNT(*) ≡ COUNT(pos) over a dense position column
	}
	candidates := cat.SequenceViewsOver(wq.Table, wq.PosCol, partCol, valCol, agg)

	// Exact window match wins outright.
	for _, v := range candidates {
		if windowsEqual(v.Window, wq.Shape) {
			return &Derivation{
				View: v, Strategy: StrategyMaxOA, Form: form, Exact: true,
				Stmt: exactMatchSQL(v, wq),
			}, nil
		}
	}

	// AVG has no direct derivation algebra; per §2.1, derive SUM and COUNT
	// and divide. Only attempted for simple sliding queries with a value
	// column (AVG(*) does not exist).
	if agg == "AVG" {
		if partCol == "" && !wq.Shape.Cumulative && wq.ValCol != "" {
			return avgFromSumCount(cat, wq, strategy, form)
		}
		return nil, nil
	}
	if len(candidates) == 0 {
		return nil, nil
	}

	// Rank remaining candidates: larger materialized windows need fewer
	// terms (the explicit sums step by W_x).
	best := pickView(candidates, wq, strategy)
	if best == nil {
		return nil, nil
	}
	v := best
	switch {
	case v.Window.Cumulative:
		if v.PartColumn != "" {
			// Per-partition cardinalities are not available to the SQL
			// pattern (the +h lookup clamps at n); partitioned cumulative
			// views answer only exact matches.
			return nil, nil
		}
		return &Derivation{View: v, Strategy: StrategyMaxOA, Form: form,
			Stmt: slidingFromCumulativeSQL(v, wq)}, nil
	case agg == "MIN" || agg == "MAX":
		dl := wq.Shape.Preceding - v.Window.Preceding
		dh := wq.Shape.Following - v.Window.Following
		return &Derivation{View: v, Strategy: StrategyMaxOA, Form: form,
			DeltaL: dl, DeltaH: dh, Wx: 1 + v.Window.Preceding + v.Window.Following,
			Stmt: minMaxSQL(v, wq, dl, dh)}, nil
	default:
		dl := wq.Shape.Preceding - v.Window.Preceding
		dh := wq.Shape.Following - v.Window.Following
		wx := 1 + v.Window.Preceding + v.Window.Following
		st := resolveStrategy(strategy, dl, dh, wx)
		if st == StrategyAuto {
			return nil, nil // no applicable algorithm for this view
		}
		d := &Derivation{View: v, Strategy: st, Form: form, DeltaL: dl, DeltaH: dh, Wx: wx}
		if st == StrategyMaxOA {
			d.Stmt = maxOASQL(v, wq, dl, dh, wx, form)
		} else {
			d.Stmt = minOASQL(v, wq, dl, dh, wx, form)
		}
		return d, nil
	}
}

// resolveStrategy applies each algorithm's preconditions:
//
//   - MaxOA (relational pattern): 0 ≤ Δl < W_x and 0 ≤ Δh < W_x — the
//     branch residues must be distinct from the anchor residue.
//   - MinOA: any Δl, Δh, except the residue-collision corner
//     (Δl+Δh) ≡ 0 (mod W_x), where the positive and negative telescoping
//     chains share a residue class and a single CASE cannot separate them.
//
// Returns StrategyAuto when nothing applies.
func resolveStrategy(requested Strategy, dl, dh, wx int) Strategy {
	maxOK := dl >= 0 && dl < wx && dh >= 0 && dh < wx && (dl > 0 || dh > 0)
	minOK := mod(dl+dh, wx) != 0
	switch requested {
	case StrategyMaxOA:
		if maxOK {
			return StrategyMaxOA
		}
	case StrategyMinOA:
		if minOK {
			return StrategyMinOA
		}
	default:
		if minOK {
			return StrategyMinOA
		}
		if maxOK {
			return StrategyMaxOA
		}
	}
	return StrategyAuto
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

func windowsEqual(w catalog.WindowSpec, s WindowShape) bool {
	if w.Cumulative != s.Cumulative {
		return false
	}
	return w.Cumulative || (w.Preceding == s.Preceding && w.Following == s.Following)
}

// pickView chooses the candidate view a derivation will run against:
// applicable views only, preferring sliding views over cumulative ones and
// the largest materialized window (fewest telescoping terms). Ties break on
// view name, so the choice — and therefore every cached or explained plan —
// is stable across runs regardless of catalog map iteration order.
func pickView(candidates []*catalog.MatView, wq *WindowQuery, strategy Strategy) *catalog.MatView {
	var bestSliding, bestCumulative *catalog.MatView
	bestW := -1
	for _, v := range candidates {
		if v.Window.Cumulative {
			// Cumulative views answer any sliding SUM/COUNT query (§3.1).
			if !wq.Shape.Cumulative && (wq.Agg == "SUM" || wq.Agg == "COUNT") &&
				(bestCumulative == nil || v.Name < bestCumulative.Name) {
				bestCumulative = v
			}
			continue
		}
		if wq.Shape.Cumulative {
			continue // sliding views do not answer cumulative queries here
		}
		dl := wq.Shape.Preceding - v.Window.Preceding
		dh := wq.Shape.Following - v.Window.Following
		wx := 1 + v.Window.Preceding + v.Window.Following
		ok := false
		if wq.Agg == "MIN" || wq.Agg == "MAX" {
			ok = dl >= 0 && dh >= 0 && dl+dh <= wx
		} else {
			ok = resolveStrategy(strategy, dl, dh, wx) != StrategyAuto
		}
		if ok && (wx > bestW || (wx == bestW && v.Name < bestSliding.Name)) {
			bestSliding, bestW = v, wx
		}
	}
	if bestSliding != nil {
		return bestSliding
	}
	return bestCumulative
}

// plainColsMatch checks the non-window select items are exactly the
// position column (and, for partitioned queries, the partition column).
func plainColsMatch(wq *WindowQuery, partCol string) bool {
	sawPos, sawPart := false, false
	for _, c := range wq.PlainCols {
		switch {
		case equalFold(c, wq.PosCol) && !sawPos:
			sawPos = true
		case partCol != "" && equalFold(c, partCol) && !sawPart:
			sawPart = true
		default:
			return false
		}
	}
	return sawPos && (partCol == "" || sawPart)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// outAlias returns the output column name for the derived value.
func outAlias(wq *WindowQuery) string {
	if wq.OutAlias != "" {
		return wq.OutAlias
	}
	return "val"
}

// bodyFilter restricts the outer scan to the sequence body (the header and
// trailer rows exist only to make derivations possible): positions 1…n for
// simple views, the `body` marker column for partitioned views (whose
// per-partition cardinalities vary).
func bodyFilter(v *catalog.MatView, ref string) sqlparser.Expr {
	if v.PartColumn != "" {
		return eq(col(ref, "body"), &sqlparser.Literal{Val: sqltypesTrue})
	}
	return between(col(ref, "pos"), intLit(1), intLit(v.BaseRows.Load()))
}

// outerItems builds the rewritten query's projection: the plain columns in
// their original order (position and, if partitioned, partition column),
// then the derived value.
func outerItems(v *catalog.MatView, wq *WindowQuery, ref string, value sqlparser.Expr) []sqlparser.SelectItem {
	items := make([]sqlparser.SelectItem, 0, len(wq.PlainCols)+1)
	for _, c := range wq.PlainCols {
		if equalFold(c, wq.PosCol) {
			items = append(items, selItem(col(ref, "pos"), c))
		} else {
			items = append(items, selItem(col(ref, "part"), c))
		}
	}
	return append(items, selItem(value, outAlias(wq)))
}

// exactMatchSQL answers the query straight from an identically-windowed view.
func exactMatchSQL(v *catalog.MatView, wq *WindowQuery) *sqlparser.Select {
	return &sqlparser.Select{
		Items: outerItems(v, wq, "s", col("s", "val")),
		From:  tbl(v.Name, "s"),
		Where: bodyFilter(v, "s"),
	}
}

// slidingFromCumulativeSQL renders ỹ_k = x̃_{k+h} − x̃_{k−l−1} (§3.1, Fig. 5)
// against a materialized cumulative view. The +h lookup is clamped to n with
// LEAST because a cumulative view's trailer is implicit (the grand total).
func slidingFromCumulativeSQL(v *catalog.MatView, wq *WindowQuery) *sqlparser.Select {
	l, h := wq.Shape.Preceding, wq.Shape.Following
	n := v.BaseRows.Load()
	upper := plusConst(col("s", "pos"), int64(h))
	if h > 0 {
		upper = &sqlparser.FuncExpr{Name: "LEAST", Args: []sqlparser.Expr{upper, intLit(n)}}
	}
	value := &sqlparser.BinaryExpr{
		Op:    "-",
		Left:  coalesce(col("a", "val"), intLit(0)),
		Right: coalesce(col("b", "val"), intLit(0)),
	}
	return &sqlparser.Select{
		Items: outerItems(v, wq, "s", value),
		From: leftJoin(
			leftJoin(tbl(v.Name, "s"), tbl(v.Name, "a"), eq(col("a", "pos"), upper)),
			tbl(v.Name, "b"),
			eq(col("b", "pos"), plusConst(col("s", "pos"), int64(-l-1))),
		),
		Where: bodyFilter(v, "s"),
	}
}

// minMaxSQL renders the MIN/MAX MaxOA derivation (§4.2):
// ỹ_k = min/max(x̃_{k−Δl}, x̃_{k+Δh}).
func minMaxSQL(v *catalog.MatView, wq *WindowQuery, dl, dh int) *sqlparser.Select {
	combiner := "LEAST"
	if wq.Agg == "MAX" {
		combiner = "GREATEST"
	}
	value := &sqlparser.CaseExpr{
		Whens: []sqlparser.When{
			{Cond: &sqlparser.IsNullExpr{Expr: col("a", "val")}, Then: col("b", "val")},
			{Cond: &sqlparser.IsNullExpr{Expr: col("b", "val")}, Then: col("a", "val")},
		},
		Else: &sqlparser.FuncExpr{Name: combiner, Args: []sqlparser.Expr{col("a", "val"), col("b", "val")}},
	}
	onA := eq(col("a", "pos"), plusConst(col("s", "pos"), int64(-dl)))
	onB := eq(col("b", "pos"), plusConst(col("s", "pos"), int64(dh)))
	if v.PartColumn != "" {
		onA = and(onA, eq(col("a", "part"), col("s", "part")))
		onB = and(onB, eq(col("b", "part"), col("s", "part")))
	}
	return &sqlparser.Select{
		Items: outerItems(v, wq, "s", value),
		From: leftJoin(
			leftJoin(tbl(v.Name, "s"), tbl(v.Name, "a"), onA),
			tbl(v.Name, "b"), onB,
		),
		Where: bodyFilter(v, "s"),
	}
}

// branch is one telescoping chain of a derivation pattern: rows s2 with
// s2.pos ⋛ s1.pos+anchor and s2.pos ≡ s1.pos+residueShift (mod W), entering
// the sum with the given sign.
type branch struct {
	// rangeCond builds the inequality between s1 and s2 positions.
	rangeCond func(s1pos, s2pos sqlparser.Expr) sqlparser.Expr
	// residueShift c: the branch matches MOD(s1.pos+c+OFF, W) = MOD(s2.pos+OFF, W).
	residueShift int
}

// residueOffset returns OFF: a multiple of w large enough to keep every MOD
// operand non-negative (header positions are ≤ 0, and SQL MOD takes the
// dividend's sign).
func residueOffset(v *catalog.MatView, shifts []int, w int) int64 {
	worst := v.Window.Following // header extends to 1−h_x
	for _, s := range shifts {
		if s < 0 && -s > worst {
			worst = -s
		}
	}
	return int64(((worst / w) + 2) * w)
}

// derivationSQL assembles the shared shape of Figs. 10 and 13: an inner
// compensation query over the view joined with itself (disjunctive or UNION
// form), and an outer left join that re-attaches the compensation terms.
// addSelf distinguishes MaxOA (value = s.val + COALESCE(d.val,0); the x̃_k
// term is taken from the outer scan) from MinOA (value = COALESCE(d.val,0)).
func derivationSQL(v *catalog.MatView, wq *WindowQuery, branches []branch, positiveShift int, w int, form Form, addSelf bool) *sqlparser.Select {
	shifts := make([]int, len(branches))
	for i, b := range branches {
		shifts[i] = b.residueShift
	}
	off := residueOffset(v, shifts, w)
	const s1, s2 = "s1", "s2"
	posEq := func(shift int) sqlparser.Expr {
		return eq(
			modOf(plusConst(col(s1, "pos"), int64(shift)), off, int64(w)),
			modOf(col(s2, "pos"), off, int64(w)),
		)
	}
	partitioned := v.PartColumn != ""
	branchPred := func(b branch) sqlparser.Expr {
		pred := and(b.rangeCond(col(s1, "pos"), col(s2, "pos")), posEq(b.residueShift))
		if partitioned {
			// Each partition's sequence is independently complete (§6.2):
			// compensation terms never cross partitions.
			pred = and(eq(col(s1, "part"), col(s2, "part")), pred)
		}
		return pred
	}
	innerItems := func(valueItem sqlparser.SelectItem) []sqlparser.SelectItem {
		items := []sqlparser.SelectItem{selItem(col(s1, "pos"), "pos")}
		if partitioned {
			items = append(items, selItem(col(s1, "part"), "part"))
		}
		return append(items, valueItem)
	}
	innerGroupBy := func() []sqlparser.Expr {
		gb := []sqlparser.Expr{col(s1, "pos")}
		if partitioned {
			gb = append(gb, col(s1, "part"))
		}
		return gb
	}

	var inner sqlparser.SelectStatement
	signCase := caseSign(posEq(positiveShift), col(s2, "val"))
	switch form {
	case FormDisjunctive:
		preds := make([]sqlparser.Expr, len(branches))
		for i, b := range branches {
			preds[i] = branchPred(b)
		}
		inner = &sqlparser.Select{
			Items:   innerItems(selItem(sumOf(signCase), "val")),
			From:    crossJoin(tbl(v.Name, s1), tbl(v.Name, s2)),
			Where:   or(preds...),
			GroupBy: innerGroupBy(),
		}
	default: // FormUnion
		var union sqlparser.SelectStatement
		for i, b := range branches {
			val := sqlparser.Expr(col(s2, "val"))
			if b.residueShift != positiveShift {
				val = negOf(val)
			}
			leg := &sqlparser.Select{
				Items: innerItems(selItem(val, "val")),
				From:  crossJoin(tbl(v.Name, s1), tbl(v.Name, s2)),
				Where: branchPred(b),
			}
			if i == 0 {
				union = leg
			} else {
				union = &sqlparser.Union{Left: union, Right: leg, All: true}
			}
		}
		uItems := []sqlparser.SelectItem{selItem(col("u", "pos"), "pos")}
		uGroup := []sqlparser.Expr{col("u", "pos")}
		if partitioned {
			uItems = append(uItems, selItem(col("u", "part"), "part"))
			uGroup = append(uGroup, col("u", "part"))
		}
		uItems = append(uItems, selItem(sumOf(col("u", "val")), "val"))
		inner = &sqlparser.Select{
			Items:   uItems,
			From:    &sqlparser.DerivedTable{Select: union, Alias: "u"},
			GroupBy: uGroup,
		}
	}

	var value sqlparser.Expr = coalesce(col("d", "val"), intLit(0))
	if addSelf {
		value = &sqlparser.BinaryExpr{Op: "+", Left: col("s", "val"), Right: value}
	}
	on := eq(col("s", "pos"), col("d", "pos"))
	if partitioned {
		on = and(on, eq(col("s", "part"), col("d", "part")))
	}
	return &sqlparser.Select{
		Items: outerItems(v, wq, "s", value),
		From: leftJoin(tbl(v.Name, "s"),
			&sqlparser.DerivedTable{Select: inner, Alias: "d"}, on),
		Where: bodyFilter(v, "s"),
	}
}

// maxOASQL renders the MaxOA pattern (Fig. 10, generalized to the
// double-sided case of §4.2). Branches per side (present only when that
// side's coverage factor is positive), all stepping by W_x = Δl+Δp = Δh+Δq:
//
//	left  positive:  s2.pos < s1.pos        ∧ s2 ≡ s1        (mod W_x)
//	left  negative:  s2.pos < s1.pos − Δl   ∧ s2 ≡ s1 − Δl   (mod W_x)
//	right positive:  s2.pos > s1.pos        ∧ s2 ≡ s1        (mod W_x)
//	right negative:  s2.pos > s1.pos + Δh   ∧ s2 ≡ s1 + Δh   (mod W_x)
//
// The CASE adds rows in the anchor's residue class and subtracts the rest;
// the outer query contributes the x̃_k term itself and keeps positions
// without compensation terms via the left outer join (Fig. 10's COALESCE).
func maxOASQL(v *catalog.MatView, wq *WindowQuery, dl, dh, wx int, form Form) *sqlparser.Select {
	var branches []branch
	if dl > 0 {
		branches = append(branches,
			branch{rangeCond: func(a, b sqlparser.Expr) sqlparser.Expr { return gt(a, b) }, residueShift: 0},
			branch{rangeCond: func(a, b sqlparser.Expr) sqlparser.Expr {
				return gt(plusConst(a, int64(-dl)), b)
			}, residueShift: -dl},
		)
	}
	if dh > 0 {
		branches = append(branches,
			branch{rangeCond: func(a, b sqlparser.Expr) sqlparser.Expr { return gt(b, a) }, residueShift: 0},
			branch{rangeCond: func(a, b sqlparser.Expr) sqlparser.Expr {
				return gt(b, plusConst(a, int64(dh)))
			}, residueShift: dh},
		)
	}
	return derivationSQL(v, wq, branches, 0, wx, form, true)
}

// minOASQL renders the MinOA pattern (Fig. 13): a positive chain
// right-justified with the target window's upper bound and a negative chain
// right-justified just below its lower bound, both stepping by W_x:
//
//	positive: s2.pos ≤ s1.pos + Δh        ∧ s2 ≡ s1 + Δh   (mod W_x)
//	negative: s2.pos ≤ s1.pos − Δl − W_x  ∧ s2 ≡ s1 − Δl   (mod W_x)
//
// The x̃_k term is part of the positive chain (i = 0), so the outer query
// adds nothing of its own.
func minOASQL(v *catalog.MatView, wq *WindowQuery, dl, dh, wx int, form Form) *sqlparser.Select {
	branches := []branch{
		{rangeCond: func(a, b sqlparser.Expr) sqlparser.Expr {
			return ge(plusConst(a, int64(dh)), b)
		}, residueShift: dh},
		{rangeCond: func(a, b sqlparser.Expr) sqlparser.Expr {
			return ge(plusConst(a, int64(-dl-wx)), b)
		}, residueShift: -dl},
	}
	return derivationSQL(v, wq, branches, dh, wx, form, false)
}

// RawFromCumulative renders the Fig. 4 pattern: reconstructing the raw data
// values from a materialized cumulative view via x_k = x̃_k − x̃_{k−1},
// expressed as a self join with a CASE negation and a grouped SUM.
func RawFromCumulative(v *catalog.MatView) (*sqlparser.Select, error) {
	if v.Kind != catalog.SequenceView || !v.Window.Cumulative {
		return nil, fmt.Errorf("rewrite: %q is not a materialized cumulative sequence view", v.Name)
	}
	const s1, s2 = "s1", "s2"
	return &sqlparser.Select{
		Items: []sqlparser.SelectItem{
			selItem(col(s1, "pos"), "pos"),
			selItem(sumOf(caseSign(eq(col(s1, "pos"), col(s2, "pos")), col(s2, "val"))), "val"),
		},
		From: crossJoin(tbl(v.Name, s1), tbl(v.Name, s2)),
		Where: and(
			&sqlparser.InExpr{Left: col(s1, "pos"), List: []sqlparser.Expr{
				col(s2, "pos"), plusConst(col(s2, "pos"), 1),
			}},
			bodyFilter(v, s1),
		),
		GroupBy: []sqlparser.Expr{col(s1, "pos")},
	}, nil
}

// RawFromSliding renders the §3.2 explicit reconstruction of raw data from a
// complete materialized *sliding-window* view:
//
//	x_k = Σ_{i≥0} ( x̃_{k−h−iW} − x̃_{k−h−1−iW} )
//
// as a relational pattern in the style of Fig. 4: the positive chain matches
// view rows at positions ≡ k−h (mod W) at or left of k−h, the negative chain
// positions ≡ k−h−1 (mod W) at or left of k−h−1, separated by a CASE.
func RawFromSliding(v *catalog.MatView) (*sqlparser.Select, error) {
	if v.Kind != catalog.SequenceView || v.Window.Cumulative || v.PartColumn != "" {
		return nil, fmt.Errorf("rewrite: %q is not a simple materialized sliding-window sequence view", v.Name)
	}
	if v.Agg != "SUM" && v.Agg != "COUNT" {
		return nil, fmt.Errorf("rewrite: raw reconstruction needs a SUM or COUNT view, not %s", v.Agg)
	}
	h := v.Window.Following
	w := 1 + v.Window.Preceding + v.Window.Following
	off := residueOffset(v, []int{-h - 1}, w)
	const s1, s2 = "s1", "s2"
	posEq := func(shift int) sqlparser.Expr {
		return eq(
			modOf(plusConst(col(s1, "pos"), int64(shift)), off, int64(w)),
			modOf(col(s2, "pos"), off, int64(w)),
		)
	}
	positive := and(ge(plusConst(col(s1, "pos"), int64(-h)), col(s2, "pos")), posEq(-h))
	negative := and(ge(plusConst(col(s1, "pos"), int64(-h-1)), col(s2, "pos")), posEq(-h-1))
	return &sqlparser.Select{
		Items: []sqlparser.SelectItem{
			selItem(col(s1, "pos"), "pos"),
			selItem(sumOf(caseSign(posEq(-h), col(s2, "val"))), "val"),
		},
		From:    crossJoin(tbl(v.Name, s1), tbl(v.Name, s2)),
		Where:   and(or(positive, negative), bodyFilter(v, s1)),
		GroupBy: []sqlparser.Expr{col(s1, "pos")},
	}, nil
}

// avgFromSumCount composes the §2.1 rule "AVG may be directly derived from
// SUM and COUNT" at the SQL level: both component derivations become derived
// tables joined on position, and the value is their (float) quotient.
func avgFromSumCount(cat *catalog.Catalog, wq *WindowQuery, strategy Strategy, form Form) (*Derivation, error) {
	component := func(agg string) (*Derivation, error) {
		sel := &sqlparser.Select{
			Items: []sqlparser.SelectItem{
				selItem(col("", wq.PosCol), ""),
				selItem(&sqlparser.WindowExpr{
					Func:    &sqlparser.FuncExpr{Name: agg, Args: []sqlparser.Expr{col("", wq.ValCol)}},
					OrderBy: []sqlparser.OrderItem{{Expr: col("", wq.PosCol)}},
					Frame: &sqlparser.FrameClause{
						Start: sqlparser.FrameBound{Type: sqlparser.OffsetPreceding, Offset: wq.Shape.Preceding},
						End:   sqlparser.FrameBound{Type: sqlparser.OffsetFollowing, Offset: wq.Shape.Following},
					},
				}, "w"),
			},
			From: tbl(wq.Table, wq.Table),
		}
		// Fix unqualified references to the table alias.
		for _, it := range sel.Items {
			if cr, ok := it.Expr.(*sqlparser.ColumnRef); ok {
				cr.Table = wq.Table
			}
		}
		return Derive(cat, sel, strategy, form)
	}
	ds, err := component("SUM")
	if err != nil || ds == nil {
		return nil, err
	}
	dc, err := component("COUNT")
	if err != nil || dc == nil {
		return nil, err
	}
	value := &sqlparser.BinaryExpr{
		Op: "/",
		Left: &sqlparser.BinaryExpr{Op: "*",
			Left:  &sqlparser.Literal{Val: sqltypes.NewFloat(1)},
			Right: col("ds", "w")},
		Right: col("dc", "w"),
	}
	stmt := &sqlparser.Select{
		Items: []sqlparser.SelectItem{
			selItem(col("ds", wq.PosCol), wq.PosCol),
			selItem(value, outAlias(wq)),
		},
		From: &sqlparser.Join{
			Left:  &sqlparser.DerivedTable{Select: ds.Stmt, Alias: "ds"},
			Right: &sqlparser.DerivedTable{Select: dc.Stmt, Alias: "dc"},
			Type:  sqlparser.InnerJoin,
			On:    eq(col("ds", wq.PosCol), col("dc", wq.PosCol)),
		},
	}
	return &Derivation{
		View: ds.View, Strategy: ds.Strategy, Form: form,
		DeltaL: ds.DeltaL, DeltaH: ds.DeltaH, Wx: ds.Wx,
		Stmt: stmt,
	}, nil
}
