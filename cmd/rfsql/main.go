// Command rfsql is an interactive SQL shell over the rfview engine.
//
// Usage:
//
//	rfsql [-f script.sql] [-no-native-window] [-no-indexes] [-no-views]
//	      [-strategy auto|maxoa|minoa] [-form disjunctive|union]
//
// Statements end with a semicolon; meta commands start with a dot:
//
//	.help            show help
//	.tables          list tables
//	.views           list materialized views
//	.explain on|off  print plans alongside results
//	.analyze on|off  print analyzed plans (per-operator rows/timings) alongside results
//	.metrics         print the engine's Prometheus metrics
//	.quit            exit
//
// Ctrl-C during a running statement cancels it (the statement fails with a
// cancellation error); at the prompt it exits the shell.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"rfview/internal/engine"
	"rfview/internal/rewrite"
	"rfview/internal/sqltypes"
)

func main() {
	script := flag.String("f", "", "execute statements from a file, then exit")
	noWindow := flag.Bool("no-native-window", false, "disable the native window operator (forces the Fig. 2 self-join simulation)")
	noIndexes := flag.Bool("no-indexes", false, "disable index nested-loop joins")
	noViews := flag.Bool("no-views", false, "disable answering queries from materialized sequence views")
	strategy := flag.String("strategy", "auto", "derivation strategy: auto, maxoa, minoa")
	form := flag.String("form", "disjunctive", "derivation pattern form: disjunctive, union")
	flag.Parse()

	opts := engine.DefaultOptions()
	opts.NativeWindow = !*noWindow
	opts.UseIndexes = !*noIndexes
	opts.UseMatViews = !*noViews
	switch strings.ToLower(*strategy) {
	case "auto":
		opts.Strategy = rewrite.StrategyAuto
	case "maxoa":
		opts.Strategy = rewrite.StrategyMaxOA
	case "minoa":
		opts.Strategy = rewrite.StrategyMinOA
	default:
		fmt.Fprintf(os.Stderr, "rfsql: unknown strategy %q\n", *strategy)
		os.Exit(1)
	}
	switch strings.ToLower(*form) {
	case "disjunctive":
		opts.Form = rewrite.FormDisjunctive
	case "union":
		opts.Form = rewrite.FormUnion
	default:
		fmt.Fprintf(os.Stderr, "rfsql: unknown form %q\n", *form)
		os.Exit(1)
	}

	e := engine.New(opts)
	sh := &shell{eng: e, sess: e.NewSession(), out: os.Stdout}

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rfsql: %v\n", err)
			os.Exit(1)
		}
		if err := sh.runScript(string(data)); err != nil {
			fmt.Fprintf(os.Stderr, "rfsql: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("rfview SQL shell — reporting functions, materialized sequence views.")
	fmt.Println(`Type ".help" for help, ".quit" to exit. Statements end with ";".`)
	sh.repl(bufio.NewReader(os.Stdin))
}

type shell struct {
	eng     *engine.Engine
	sess    *engine.Session // holds the shell's open transaction, if any
	out     io.Writer
	explain bool
	analyze bool
}

func (s *shell) repl(in *bufio.Reader) {
	var buf strings.Builder
	prompt := "rfview> "
	for {
		fmt.Fprint(s.out, prompt)
		line, err := in.ReadString('\n')
		if err != nil {
			fmt.Fprintln(s.out)
			return
		}
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			if s.meta(trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		if strings.Contains(line, ";") {
			stmt := buf.String()
			buf.Reset()
			prompt = "rfview> "
			s.execute(stmt)
		} else if buf.Len() > 0 {
			prompt = "   ...> "
		}
	}
}

// meta handles dot commands; it reports whether the shell should exit.
func (s *shell) meta(cmd string) bool {
	switch {
	case cmd == ".quit" || cmd == ".exit":
		return true
	case cmd == ".help":
		fmt.Fprintln(s.out, `meta commands:
  .tables          list tables
  .views           list materialized views
  .explain on|off  print plans alongside results
  .analyze on|off  print analyzed plans (per-operator rows/timings)
  .metrics         print the engine's Prometheus metrics
  .quit            exit`)
	case cmd == ".tables":
		for _, name := range s.eng.Cat.Tables() {
			if !strings.HasPrefix(name, "__mv_") {
				fmt.Fprintln(s.out, " ", name)
			}
		}
	case cmd == ".views":
		for _, v := range s.eng.Cat.MatViews() {
			kind := "plain"
			if v.Window.Cumulative || v.Window.Preceding != 0 || v.Window.Following != 0 {
				kind = fmt.Sprintf("sequence %s over %s(%s) agg %s", v.Window, v.BaseTable, v.ValColumn, v.Agg)
			}
			fmt.Fprintf(s.out, "  %s — %s\n", v.Name, kind)
		}
	case cmd == ".explain on":
		s.explain = true
	case cmd == ".explain off":
		s.explain = false
	case cmd == ".analyze on":
		s.analyze = true
	case cmd == ".analyze off":
		s.analyze = false
	case cmd == ".metrics":
		fmt.Fprint(s.out, s.eng.Metrics().Expose())
	default:
		fmt.Fprintf(s.out, "unknown meta command %q (try .help)\n", cmd)
	}
	return false
}

func (s *shell) runScript(script string) error {
	// Ctrl-C while the script runs cancels it instead of killing the shell.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results, err := s.sess.ExecAllContext(ctx, script)
	for _, res := range results {
		s.printResult(res)
	}
	return err
}

func (s *shell) execute(sql string) {
	stmt := sql
	// Ctrl-C while the statement runs cancels it instead of killing the shell.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if s.explain && !strings.HasPrefix(strings.ToUpper(strings.TrimSpace(sql)), "EXPLAIN") {
		upper := strings.ToUpper(strings.TrimSpace(sql))
		if strings.HasPrefix(upper, "SELECT") {
			if res, err := s.eng.ExecContext(ctx, "EXPLAIN "+strings.TrimSuffix(strings.TrimSpace(sql), ";")); err == nil {
				fmt.Fprint(s.out, res.Plan)
			}
		}
	}
	var opts []engine.ExecOption
	if s.analyze {
		opts = append(opts, engine.WithAnalyze())
	}
	res, err := s.sess.ExecContext(ctx, stmt, opts...)
	if err != nil {
		fmt.Fprintf(s.out, "error: %v\n", err)
		return
	}
	if s.analyze && res.Analyzed != "" {
		fmt.Fprint(s.out, res.Analyzed)
	}
	s.printResult(res)
}

func (s *shell) printResult(res *engine.Result) {
	if res.Plan != "" {
		fmt.Fprint(s.out, res.Plan)
		return
	}
	if len(res.Columns) == 0 {
		fmt.Fprintf(s.out, "ok (%d rows affected)\n", res.Affected)
		return
	}
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for ri, row := range res.Rows {
		cells[ri] = make([]string, len(row))
		for ci, d := range row {
			cells[ri][ci] = formatDatum(d)
			if len(cells[ri][ci]) > widths[ci] {
				widths[ci] = len(cells[ri][ci])
			}
		}
	}
	line := func(parts []string) {
		for i, p := range parts {
			fmt.Fprintf(s.out, " %-*s", widths[i], p)
			if i < len(parts)-1 {
				fmt.Fprint(s.out, " |")
			}
		}
		fmt.Fprintln(s.out)
	}
	line(res.Columns)
	for i, w := range widths {
		fmt.Fprint(s.out, " ", strings.Repeat("-", w))
		if i < len(widths)-1 {
			fmt.Fprint(s.out, " +")
		}
	}
	fmt.Fprintln(s.out)
	for _, row := range cells {
		line(row)
	}
	fmt.Fprintf(s.out, "(%d rows)\n", len(res.Rows))
}

func formatDatum(d sqltypes.Datum) string {
	if d.IsNull() {
		return "NULL"
	}
	return d.String()
}
