package wal

import (
	"fmt"
	"os"
	"sync"
	"time"

	"rfview/internal/engine"
	"rfview/internal/metrics"
)

// Options configures a durability manager.
type Options struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// Sync is the fsync policy for WAL appends.
	Sync SyncPolicy
	// SyncInterval is the flush cadence under SyncInterval (default 100ms).
	SyncInterval time.Duration
	// CheckpointEvery takes a snapshot and truncates the WAL after this many
	// logged statements; 0 disables automatic checkpoints (manual Checkpoint
	// and the close-time checkpoint still run).
	CheckpointEvery int
	// SegmentBytes rotates WAL segments at this size (default 4 MiB).
	SegmentBytes int64
}

// RecoveryStats describes what Open found and replayed.
type RecoveryStats struct {
	// SnapshotLoaded reports whether a snapshot was restored.
	SnapshotLoaded bool
	// SnapshotLSN is the restored snapshot's LSN (0 when none).
	SnapshotLSN uint64
	// RecordsReplayed counts WAL records replayed after the snapshot.
	RecordsReplayed int
	// ReplayErrors counts replayed statements that returned an error. The
	// engine is deterministic, so these are statements that failed the same
	// way before the crash (and were logged under the log-before-apply
	// rule); they change nothing on replay either.
	ReplayErrors int
	// Fresh reports a brand-new data directory: no snapshot, no records.
	Fresh bool
}

// Manager owns one engine's durability: it logs every write ahead of
// application, checkpoints state into snapshots, and is the factory that
// recovers an engine from its data directory.
type Manager struct {
	opts Options
	eng  *engine.Engine
	log  *Log
	rec  RecoveryStats

	// sinceCheckpoint and checkpointErr are mutated only under the engine's
	// exclusive lock (write hooks and Quiesce'd checkpoints).
	sinceCheckpoint int
	checkpointErr   error

	// checkpoint instruments, wired by instrumentMetrics.
	checkpointSeconds *metrics.Histogram
	checkpoints       *metrics.Counter

	closeOnce sync.Once
	closeErr  error
}

// Open recovers (or initializes) an engine from the data directory: load
// the newest valid snapshot, replay the WAL tail through the normal exec
// path, take a recovery-ending checkpoint, and attach the write-ahead hooks.
// The returned manager owns the engine; use Engine to reach it.
func Open(opts Options, engOpts engine.Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	eng := engine.New(engOpts)
	m := &Manager{opts: opts, eng: eng}

	snap, _, err := loadNewestSnapshot(opts.Dir)
	if err != nil {
		return nil, err
	}
	var afterLSN uint64
	if snap != nil {
		if err := restoreState(eng, snap); err != nil {
			return nil, err
		}
		m.rec.SnapshotLoaded = true
		m.rec.SnapshotLSN = snap.LSN
		afterLSN = snap.LSN
	}
	recs, err := ReadTail(opts.Dir, afterLSN)
	if err != nil {
		return nil, err
	}
	lastLSN := afterLSN
	for _, r := range recs {
		// Transactions reach the log as commit records (their deltas, encoded
		// at commit), everything else as canonical SQL. A transaction that
		// never committed has no record and is invisible after replay.
		if engine.IsCommitRecord(r.SQL) {
			if err := eng.ApplyCommitRecord(r.SQL); err != nil {
				m.rec.ReplayErrors++
			}
		} else if _, err := eng.Exec(r.SQL); err != nil {
			m.rec.ReplayErrors++
		}
		m.rec.RecordsReplayed++
		if r.LSN > lastLSN {
			lastLSN = r.LSN
		}
	}
	m.rec.Fresh = snap == nil && len(recs) == 0
	// The plan/result cache of a fresh engine is empty, and restored heaps
	// restart their version counters; purge anyway so no code path can ever
	// carry a pre-crash cache entry across recovery.
	eng.InvalidatePlans()

	m.log, err = openLog(opts.Dir, lastLSN+1, opts.Sync, opts.SegmentBytes, opts.SyncInterval)
	if err != nil {
		return nil, err
	}
	m.instrumentMetrics()
	// Recovery ends with a checkpoint: the replayed tail is folded into a
	// snapshot, bounding the next recovery and clearing any torn tail from
	// disk. Nothing is concurrent yet, so no lock is needed.
	if err := m.checkpointLocked(); err != nil {
		m.log.Close()
		return nil, err
	}
	eng.SetWriteHooks(
		func(sql string) error {
			_, err := m.log.Append(sql)
			return err
		},
		m.afterWrite,
	)
	return m, nil
}

// Engine returns the recovered engine.
func (m *Manager) Engine() *engine.Engine { return m.eng }

// Recovery returns what Open found.
func (m *Manager) Recovery() RecoveryStats { return m.rec }

// afterWrite runs under the engine's exclusive lock after each statement.
func (m *Manager) afterWrite() {
	m.sinceCheckpoint++
	if m.opts.CheckpointEvery > 0 && m.sinceCheckpoint >= m.opts.CheckpointEvery {
		// A failed automatic checkpoint must not fail the statement that
		// tripped it — the statement is already logged and applied, so
		// durability is intact; the WAL just keeps growing. The error is
		// kept for Err and retried at the next boundary.
		m.checkpointErr = m.checkpointLocked()
	}
}

// Err returns the most recent automatic-checkpoint failure, or nil.
func (m *Manager) Err() error { return m.checkpointErr }

// Checkpoint quiesces the engine, snapshots its state, and truncates the
// WAL.
func (m *Manager) Checkpoint() error {
	return m.eng.Quiesce(m.checkpointLocked)
}

// checkpointLocked is the checkpoint protocol. Callers hold the engine's
// exclusive lock (or own the engine exclusively, as during Open). Order
// matters for crash safety:
//
//  1. capture state at the current last LSN;
//  2. write the snapshot to a temp file, fsync, rename, fsync dir — a crash
//     up to here leaves the previous snapshot and the full WAL: no loss;
//  3. truncate the WAL (delete covered segments, open a fresh one) — a
//     crash after the rename but before this replays covered records onto
//     the new snapshot's state; replay tolerates the resulting determinis-
//     tic re-failures, and ReadTail's LSN filter skips already-folded
//     records;
//  4. prune old snapshots, keeping one fallback.
func (m *Manager) checkpointLocked() error {
	start := time.Now()
	// Deferred view-maintenance queues are volatile: they survive a crash
	// only because replaying the WAL tail re-enqueues them. A snapshot that
	// captured backing tables with deltas still queued — and then truncated
	// the WAL records that produced them — would lose those deltas for good,
	// so the queue is drained (under the exclusive lock the caller already
	// holds) before state capture.
	m.eng.DrainMaintenanceLocked()
	lsn := m.log.LastLSN()
	snap, err := captureState(m.eng, lsn)
	if err != nil {
		return err
	}
	// Quiesce paged storage too: write back dirty pages so the heap files on
	// disk are consistent with the snapshot just captured. Not needed for
	// durability — heap files are scratch, rebuilt from the snapshot + WAL on
	// recovery — but it keeps eviction off the post-checkpoint hot path.
	if err := m.eng.FlushStorage(); err != nil {
		return err
	}
	if err := writeSnapshot(m.opts.Dir, snap); err != nil {
		return err
	}
	if err := m.log.Truncate(lsn); err != nil {
		return err
	}
	if err := pruneSnapshots(m.opts.Dir); err != nil {
		return err
	}
	m.sinceCheckpoint = 0
	m.checkpointErr = nil
	if m.checkpointSeconds != nil {
		m.checkpointSeconds.Observe(time.Since(start).Seconds())
		m.checkpoints.Inc()
	}
	return nil
}

// Close detaches the hooks, takes a final checkpoint, and closes the WAL.
// The engine keeps working afterwards — volatile, as if it had been built
// without a manager.
func (m *Manager) Close() error {
	m.closeOnce.Do(func() {
		m.eng.SetWriteHooks(nil, nil)
		err := m.eng.Quiesce(m.checkpointLocked)
		if cerr := m.log.Close(); err == nil {
			err = cerr
		}
		m.closeErr = err
	})
	return m.closeErr
}
