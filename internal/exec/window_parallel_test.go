package exec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rfview/internal/expr"
	"rfview/internal/sqltypes"
)

// pwSchema is the (grp, pos, val) layout the parallel tests use.
func pwSchema() *expr.Schema {
	return expr.NewSchema(
		expr.ColInfo{Name: "grp", Type: sqltypes.Int},
		expr.ColInfo{Name: "pos", Type: sqltypes.Int},
		expr.ColInfo{Name: "val", Type: sqltypes.Int},
	)
}

// pwWindow builds a Window over rows with PARTITION BY grp ORDER BY pos and
// one function per aggregate name, all sharing the given frame.
func pwWindow(t *testing.T, rows []sqltypes.Row, frame FrameSpec, parallelism int, aggs ...string) *Window {
	t.Helper()
	schema := pwSchema()
	grpEx := mustCompile(t, "grp", schema)
	posEx := mustCompile(t, "pos", schema)
	valEx := mustCompile(t, "val", schema)
	funcs := make([]WindowFunc, len(aggs))
	for i, a := range aggs {
		arg := valEx
		if a == "COUNT" {
			arg = nil // COUNT(*)
		}
		funcs[i] = WindowFunc{Name: a, Arg: arg, Frame: frame, OutName: fmt.Sprintf("w%d", i)}
	}
	w := NewWindow(valuesOp(schema, rows...), []expr.Expr{grpEx},
		[]SortKey{{Expr: posEx}}, funcs)
	w.Parallelism = parallelism
	return w
}

func mustCollect(t *testing.T, op Operator) []sqltypes.Row {
	t.Helper()
	out, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// requireSameRows asserts two results are identical row by row, datum by
// datum — the parallel path must preserve input order bit for bit.
func requireSameRows(t *testing.T, seq, par []sqltypes.Row, ctx string) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("%s: %d rows sequential vs %d parallel", ctx, len(seq), len(par))
	}
	for i := range seq {
		if len(seq[i]) != len(par[i]) {
			t.Fatalf("%s row %d: arity %d vs %d", ctx, i, len(seq[i]), len(par[i]))
		}
		for j := range seq[i] {
			if !sqltypes.Equal(seq[i][j], par[i][j]) && !(seq[i][j].IsNull() && par[i][j].IsNull()) {
				t.Fatalf("%s row %d col %d: %v vs %v", ctx, i, j, seq[i][j], par[i][j])
			}
		}
	}
}

// TestWindowParallelMatchesSequential: for random multi-partition inputs and
// a spread of frame shapes, every worker count produces exactly the
// sequential answer in exactly the sequential (= input) order.
func TestWindowParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	frames := []FrameSpec{
		DefaultFrame(true),  // cumulative
		DefaultFrame(false), // whole partition
		{Start: FrameBound{Kind: BoundPreceding, Offset: 2}, End: FrameBound{Kind: BoundFollowing, Offset: 1}},
		{Start: FrameBound{Kind: BoundFollowing, Offset: 1}, End: FrameBound{Kind: BoundFollowing, Offset: 3}},
		{Start: FrameBound{Kind: BoundPreceding, Offset: 9}, End: FrameBound{Kind: BoundPreceding, Offset: 4}},
	}
	for trial := 0; trial < 20; trial++ {
		groups := 1 + rng.Intn(6)
		var rows []sqltypes.Row
		for g := 0; g < groups; g++ {
			n := rng.Intn(25) // allow empty partitions via groups never materializing
			for i := 1; i <= n; i++ {
				rows = append(rows, intRow(int64(g), int64(i), int64(rng.Intn(100)-50)))
			}
		}
		// Shuffle so partitions interleave in the input (order must still be
		// preserved in the output).
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		frame := frames[trial%len(frames)]
		aggs := []string{"SUM", "COUNT", "MIN", "MAX", "AVG"}
		seq := mustCollect(t, pwWindow(t, rows, frame, 1, aggs...))
		for _, workers := range []int{2, 4, 8, 64} {
			ctx := fmt.Sprintf("trial %d frame=%d workers=%d rows=%d groups=%d",
				trial, trial%len(frames), workers, len(rows), groups)
			par := mustCollect(t, pwWindow(t, rows, frame, workers, aggs...))
			requireSameRows(t, seq, par, ctx)
		}
	}
}

// TestWindowParallelDegenerate: empty input, a single partition, no
// PARTITION BY at all, and more workers than partitions must all take the
// sequential fast path (or behave identically to it).
func TestWindowParallelDegenerate(t *testing.T) {
	// Empty input.
	w := pwWindow(t, nil, DefaultFrame(true), 8, "SUM")
	if out := mustCollect(t, w); len(out) != 0 {
		t.Fatalf("empty input: got %d rows", len(out))
	}

	// One partition, parallelism 8: workers must be capped at partition count.
	rows := []sqltypes.Row{intRow(1, 1, 10), intRow(1, 2, 20), intRow(1, 3, 30)}
	seq := mustCollect(t, pwWindow(t, rows, DefaultFrame(true), 1, "SUM"))
	par := mustCollect(t, pwWindow(t, rows, DefaultFrame(true), 8, "SUM"))
	requireSameRows(t, seq, par, "single partition")
	if got := par[2][3].Int(); got != 60 {
		t.Fatalf("cumulative sum = %d, want 60", got)
	}

	// No PARTITION BY: everything is one partition.
	schema := pwSchema()
	posEx := mustCompile(t, "pos", schema)
	valEx := mustCompile(t, "val", schema)
	w2 := NewWindow(valuesOp(schema, rows...), nil, []SortKey{{Expr: posEx}},
		[]WindowFunc{{Name: "SUM", Arg: valEx, Frame: DefaultFrame(true), OutName: "s"}})
	w2.Parallelism = 4
	out := mustCollect(t, w2)
	if out[2][3].Int() != 60 {
		t.Fatalf("unpartitioned cumulative sum = %v, want 60", out[2][3])
	}

	// More workers than partitions (2 partitions, 16 workers).
	rows = append(rows, intRow(2, 1, 5), intRow(2, 2, 5))
	seq = mustCollect(t, pwWindow(t, rows, DefaultFrame(true), 1, "SUM", "MIN"))
	par = mustCollect(t, pwWindow(t, rows, DefaultFrame(true), 16, "SUM", "MIN"))
	requireSameRows(t, seq, par, "workers > partitions")
}

// TestWindowParallelErrorPropagation: an evaluation error inside one
// partition cancels the pool and surfaces as the operator's error.
func TestWindowParallelErrorPropagation(t *testing.T) {
	schema := expr.NewSchema(
		expr.ColInfo{Name: "grp", Type: sqltypes.Int},
		expr.ColInfo{Name: "pos", Type: sqltypes.Int},
		expr.ColInfo{Name: "s", Type: sqltypes.String},
	)
	// Partition 3's rows make pos + s fail at eval time.
	var rows []sqltypes.Row
	for g := int64(0); g < 8; g++ {
		for i := int64(1); i <= 4; i++ {
			rows = append(rows, sqltypes.Row{sqltypes.NewInt(g), sqltypes.NewInt(i), sqltypes.NewString("x")})
		}
	}
	grpEx := mustCompile(t, "grp", schema)
	posEx := mustCompile(t, "pos", schema)
	badEx := mustCompile(t, "pos + s", schema) // int + string errors at eval
	for _, workers := range []int{1, 4, 16} {
		w := NewWindow(valuesOp(schema, rows...), []expr.Expr{grpEx}, []SortKey{{Expr: posEx}},
			[]WindowFunc{{Name: "SUM", Arg: badEx, Frame: DefaultFrame(true), OutName: "s"}})
		w.Parallelism = workers
		if _, err := Collect(w); err == nil {
			t.Fatalf("workers=%d: evaluation error did not surface", workers)
		}
	}
}

// TestWindowParallelDescribe: EXPLAIN output carries the worker bound, and
// only when parallel evaluation is actually enabled.
func TestWindowParallelDescribe(t *testing.T) {
	rows := []sqltypes.Row{intRow(1, 1, 1)}
	w := pwWindow(t, rows, DefaultFrame(true), 4, "SUM")
	if !strings.Contains(w.Describe(), "parallel=4") {
		t.Fatalf("Describe misses parallel=4: %s", w.Describe())
	}
	w = pwWindow(t, rows, DefaultFrame(true), 1, "SUM")
	if strings.Contains(w.Describe(), "parallel") {
		t.Fatalf("sequential Describe must not mention parallel: %s", w.Describe())
	}
}
