// Package qcache provides the LRU cache behind the engine's plan/derivation
// cache. The warehouse workload the paper targets (§1, §8) is read-dominated
// and repetitive — the same reporting-function queries arrive over and over —
// so the engine memoizes the expensive front half of query processing (parse,
// view match, derivation rewrite) keyed by SQL text. This package owns only
// the replacement policy and bookkeeping; validity is the caller's problem:
// entries carry caller-defined payloads that the engine revalidates against
// table versions before trusting.
package qcache

import (
	"container/list"
	"sync"
)

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	Hits          uint64 // Get found a resident entry
	Misses        uint64 // Get found nothing
	Evictions     uint64 // entries displaced by capacity pressure
	Invalidations uint64 // entries removed via Remove or Purge
	Len           int    // resident entries at snapshot time
	Capacity      int
}

type item[V any] struct {
	key string
	val V
}

// Cache is a thread-safe string-keyed LRU cache.
type Cache[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; elements hold *item[V]
	index map[string]*list.Element

	hits, misses, evictions, invalidations uint64
}

// New returns a cache bounded to capacity entries. Capacity 0 (or negative)
// disables the cache: Put is a no-op and Get always misses.
func New[V any](capacity int) *Cache[V] {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache[V]{
		cap:   capacity,
		ll:    list.New(),
		index: make(map[string]*list.Element),
	}
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*item[V]).val, true
}

// Put inserts or replaces the value for key and marks it most recently used,
// evicting the least recently used entry if the cache is full.
func (c *Cache[V]) Put(key string, val V) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		el.Value.(*item[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.index, oldest.Value.(*item[V]).key)
			c.evictions++
		}
	}
	c.index[key] = c.ll.PushFront(&item[V]{key: key, val: val})
}

// Remove drops the entry for key, if resident.
func (c *Cache[V]) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		c.ll.Remove(el)
		delete(c.index, key)
		c.invalidations++
	}
}

// Purge drops every entry.
func (c *Cache[V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidations += uint64(c.ll.Len())
	c.ll.Init()
	clear(c.index)
}

// Len returns the number of resident entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses,
		Evictions: c.evictions, Invalidations: c.invalidations,
		Len: c.ll.Len(), Capacity: c.cap,
	}
}
