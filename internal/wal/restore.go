package wal

import (
	"fmt"
	"math"

	"rfview/internal/catalog"
	"rfview/internal/engine"
	"rfview/internal/mview"
	"rfview/internal/sqltypes"
	"rfview/internal/storage"
)

// captureState dumps a quiesced engine into a Snapshot. Callers must hold
// the engine's exclusive lock (or own the engine outright), so the catalog,
// heaps, and view manager are mutually consistent.
func captureState(e *engine.Engine, lsn uint64) (*Snapshot, error) {
	snap := &Snapshot{LSN: lsn}
	for _, name := range e.Cat.Tables() {
		t, err := e.Cat.Table(name)
		if err != nil {
			return nil, err
		}
		st := SnapTable{Name: t.Name}
		for _, c := range t.Columns {
			st.Columns = append(st.Columns, SnapColumn{Name: c.Name, Type: uint8(c.Type)})
		}
		if err := t.Heap.Scan(func(_ storage.RowID, row sqltypes.Row) bool {
			out := make([]SnapDatum, len(row))
			for i, d := range row {
				out[i] = dumpDatum(d)
			}
			st.Rows = append(st.Rows, out)
			return true
		}); err != nil {
			return nil, err
		}
		for _, idx := range t.Indexes {
			snap.Indexes = append(snap.Indexes, SnapIndex{
				Name: idx.Name, Table: idx.Table, Columns: idx.Columns,
				Unique: idx.Unique, Ordered: idx.Ordered,
			})
		}
		snap.Tables = append(snap.Tables, st)
	}
	for _, mv := range e.Cat.MatViews() {
		stale, why := e.Views.StaleInfo(mv.Name)
		snap.MatViews = append(snap.MatViews, SnapMatView{
			Name: mv.Name, Kind: uint8(mv.Kind), Backing: mv.Table.Name,
			BaseTable: mv.BaseTable, PosColumn: mv.PosColumn,
			PartColumn: mv.PartColumn, ValColumn: mv.ValColumn, Agg: mv.Agg,
			Window: SnapWindow{
				Cumulative: mv.Window.Cumulative,
				Preceding:  mv.Window.Preceding,
				Following:  mv.Window.Following,
			},
			BaseRows: int(mv.BaseRows.Load()), Definition: mv.Definition,
			Stale: stale, StaleWhy: why,
		})
	}
	return snap, nil
}

// restoreState rebuilds a fresh engine from a snapshot: heaps first, then
// indexes (rebuilt from the restored rows), then materialized views (catalog
// registration plus maintainer reconstruction from the restored base
// tables). Storage version counters restart from zero in the new engine —
// together with the empty plan/result cache of a fresh engine, no cached
// entry keyed on pre-crash versions can survive into the recovered process.
func restoreState(e *engine.Engine, snap *Snapshot) error {
	for _, st := range snap.Tables {
		cols := make([]catalog.Column, len(st.Columns))
		for i, c := range st.Columns {
			cols[i] = catalog.Column{Name: c.Name, Type: sqltypes.Type(c.Type)}
		}
		t, err := e.Cat.CreateTable(st.Name, cols)
		if err != nil {
			return fmt.Errorf("wal: restore table %q: %w", st.Name, err)
		}
		for _, sr := range st.Rows {
			row := make(sqltypes.Row, len(sr))
			for i, d := range sr {
				row[i] = loadDatum(d)
			}
			if _, err := t.Heap.Insert(row); err != nil {
				return fmt.Errorf("wal: restore rows of %q: %w", st.Name, err)
			}
		}
	}
	for _, idx := range snap.Indexes {
		if _, err := e.Cat.CreateIndex(idx.Name, idx.Table, idx.Columns, idx.Unique, idx.Ordered); err != nil {
			return fmt.Errorf("wal: restore index %q: %w", idx.Name, err)
		}
	}
	for _, smv := range snap.MatViews {
		view := &catalog.MatView{
			Name: smv.Name, Kind: catalog.MatViewKind(smv.Kind),
			BaseTable: smv.BaseTable, PosColumn: smv.PosColumn,
			PartColumn: smv.PartColumn, ValColumn: smv.ValColumn,
			Agg: smv.Agg,
			Window: catalog.WindowSpec{
				Cumulative: smv.Window.Cumulative,
				Preceding:  smv.Window.Preceding,
				Following:  smv.Window.Following,
			},
			Definition: smv.Definition,
		}
		view.BaseRows.Store(int64(smv.BaseRows))
		spec := mview.RestoreSpec{
			View:     view,
			Backing:  smv.Backing,
			Stale:    smv.Stale,
			StaleWhy: smv.StaleWhy,
		}
		if err := e.Views.Restore(spec); err != nil {
			return fmt.Errorf("wal: restore view %q: %w", smv.Name, err)
		}
	}
	return nil
}

func dumpDatum(d sqltypes.Datum) SnapDatum {
	switch d.Typ() {
	case sqltypes.Null:
		return SnapDatum{T: uint8(sqltypes.Null)}
	case sqltypes.Bool:
		var i int64
		if d.Bool() {
			i = 1
		}
		return SnapDatum{T: uint8(sqltypes.Bool), I: i}
	case sqltypes.Int:
		return SnapDatum{T: uint8(sqltypes.Int), I: d.Int()}
	case sqltypes.Float:
		return SnapDatum{T: uint8(sqltypes.Float), F: math.Float64bits(d.Float())}
	case sqltypes.String:
		return SnapDatum{T: uint8(sqltypes.String), S: d.Str()}
	case sqltypes.Date:
		return SnapDatum{T: uint8(sqltypes.Date), I: d.Int()}
	default:
		return SnapDatum{T: uint8(sqltypes.Null)}
	}
}

func loadDatum(sd SnapDatum) sqltypes.Datum {
	switch sqltypes.Type(sd.T) {
	case sqltypes.Bool:
		return sqltypes.NewBool(sd.I != 0)
	case sqltypes.Int:
		return sqltypes.NewInt(sd.I)
	case sqltypes.Float:
		return sqltypes.NewFloat(math.Float64frombits(sd.F))
	case sqltypes.String:
		return sqltypes.NewString(sd.S)
	case sqltypes.Date:
		return sqltypes.NewDate(sd.I)
	default:
		return sqltypes.NullDatum
	}
}
