// Package rfview is a from-scratch reproduction of "Processing Reporting
// Function Views in a Data Warehouse Environment" (Lehner, Hümmer,
// Schlesinger; ICDE 2002): a small relational engine with native reporting
// functions (SQL window functions), materialized reporting-function views
// with §2.3 incremental maintenance, and the paper's query-rewriting
// machinery — the Fig. 2 self-join simulation and the MaxOA/MinOA view
// derivation algorithms (§4, §5) in both their disjunctive and UNION
// relational renderings (Figs. 10, 13).
//
// Two entry points:
//
//   - the SQL surface: Open an engine, Exec DDL/DML/queries. Reporting
//     functions are answered by the native window operator, by a rewrite
//     against a matching materialized sequence view, or — with the native
//     operator disabled — by the pure-relational self-join pattern;
//
//   - the sequence algebra: the Seq* functions expose the paper's formal
//     model directly (complete simple sequences, pipelined computation,
//     incremental maintenance, MaxOA/MinOA derivation, reporting sequences
//     with multi-column ordering and partitioning).
package rfview

import (
	"context"
	"time"

	"rfview/internal/core"
	"rfview/internal/engine"
	"rfview/internal/metrics"
	"rfview/internal/rewrite"
	"rfview/internal/sqltypes"
)

// ---------------------------------------------------------------------------
// SQL surface
// ---------------------------------------------------------------------------

// DB is a handle to one in-memory warehouse engine.
type DB struct {
	eng *engine.Engine
}

// Options re-exports the engine feature toggles (the paper's evaluation
// axes).
type Options = engine.Options

// Result re-exports statement results.
type Result = engine.Result

// Datum and Row re-export the value system used in results.
type (
	Datum = sqltypes.Datum
	Row   = sqltypes.Row
)

// Derivation strategies and pattern forms for Options.
const (
	StrategyAuto  = rewrite.StrategyAuto
	StrategyMaxOA = rewrite.StrategyMaxOA
	StrategyMinOA = rewrite.StrategyMinOA

	FormDisjunctive = rewrite.FormDisjunctive
	FormUnion       = rewrite.FormUnion
)

// DefaultOptions enables every engine feature with automatic strategy
// selection.
func DefaultOptions() Options { return engine.DefaultOptions() }

// Open creates an empty in-memory warehouse with the given options.
func Open(opts Options) *DB { return &DB{eng: engine.New(opts)} }

// OpenDefault creates an empty warehouse with DefaultOptions.
func OpenDefault() *DB { return Open(DefaultOptions()) }

// ExecOption adjusts one ExecContext/QueryContext call.
type ExecOption = engine.ExecOption

// WithAnalyze executes the statement instrumented and fills Result.Analyzed
// with per-operator row counts and timings (as EXPLAIN ANALYZE reports).
func WithAnalyze() ExecOption { return engine.WithAnalyze() }

// SlowQuery re-exports the slow-query log record.
type SlowQuery = engine.SlowQuery

// Exec parses and executes one SQL statement.
//
// Deprecated: new code should use ExecContext, which supports cancellation
// and per-call options.
func (db *DB) Exec(sql string) (*Result, error) { return db.eng.Exec(sql) }

// ExecContext parses and executes one SQL statement. Cancelling ctx aborts
// execution at the next operator boundary with an error matching
// rfview/errors.ErrCancelled.
func (db *DB) ExecContext(ctx context.Context, sql string, opts ...ExecOption) (*Result, error) {
	return db.eng.ExecContext(ctx, sql, opts...)
}

// ExecAll executes a semicolon-separated script.
//
// Deprecated: new code should use ExecAllContext.
func (db *DB) ExecAll(sql string) ([]*Result, error) { return db.eng.ExecAll(sql) }

// ExecAllContext executes a semicolon-separated script under ctx.
func (db *DB) ExecAllContext(ctx context.Context, sql string) ([]*Result, error) {
	return db.eng.ExecAllContext(ctx, sql)
}

// Query is Exec for statements expected to return rows.
//
// Deprecated: new code should use QueryContext.
func (db *DB) Query(sql string) (*Result, error) { return db.eng.Exec(sql) }

// QueryContext is ExecContext for statements expected to return rows.
func (db *DB) QueryContext(ctx context.Context, sql string, opts ...ExecOption) (*Result, error) {
	return db.eng.ExecContext(ctx, sql, opts...)
}

// Metrics returns the engine's metrics registry: use Expose for the
// Prometheus text rendering or Handler to serve it over HTTP.
func (db *DB) Metrics() *metrics.Registry { return db.eng.Metrics() }

// SetSlowQueryLog arms the slow-query log: read statements slower than
// threshold are reported to sink with their analyzed plan. Zero threshold or
// nil sink disarms.
func (db *DB) SetSlowQueryLog(threshold time.Duration, sink func(SlowQuery)) {
	db.eng.SetSlowQueryLog(threshold, sink)
}

// Engine exposes the underlying engine for advanced use (option toggling,
// the view manager's ShiftInsert/ShiftDelete positional operations).
func (db *DB) Engine() *engine.Engine { return db.eng }

// ---------------------------------------------------------------------------
// Sequence algebra (the paper's formal model, §2–§6)
// ---------------------------------------------------------------------------

// Window is a window specification: cumulative or sliding (l, h).
type Window = core.Window

// Sequence is a complete simple sequence (values plus header/trailer).
type Sequence = core.Sequence

// Agg identifies the aggregation function of a sequence.
type Agg = core.Agg

// The aggregation functions of the paper.
const (
	Sum   = core.Sum
	Count = core.Count
	Avg   = core.Avg
	Min   = core.Min
	Max   = core.Max
)

// Cumul returns the cumulative window specification.
func Cumul() Window { return core.Cumul() }

// Sliding returns the sliding window specification (l, h).
func Sliding(l, h int) Window { return core.Sliding(l, h) }

// SeqCompute materializes the complete sequence for a window and aggregate
// over raw data using the pipelined strategy of §2.2.
func SeqCompute(raw []float64, w Window, agg Agg) (*Sequence, error) {
	return core.ComputePipelined(raw, w, agg)
}

// SeqComputeNaive materializes the sequence with the explicit O(n·W) form.
func SeqComputeNaive(raw []float64, w Window, agg Agg) (*Sequence, error) {
	return core.ComputeNaive(raw, w, agg)
}

// SeqDerive answers a target-window query from a materialized sequence,
// picking MinOA, MaxOA, or the cumulative rules automatically (§3–§5).
func SeqDerive(src *Sequence, target Window) (*Sequence, error) {
	return core.Derive(src, target)
}

// SeqMaxOA derives via the maximal-overlapping algorithm's explicit form.
func SeqMaxOA(src *Sequence, target Window) (*Sequence, error) {
	return core.MaxOA(src, target)
}

// SeqMinOA derives via the minimal-overlapping algorithm.
func SeqMinOA(src *Sequence, target Window) (*Sequence, error) {
	return core.MinOA(src, target)
}

// SeqReconstructRaw recovers the raw data from a complete materialized
// sequence (§3.1/§3.2).
func SeqReconstructRaw(src *Sequence) ([]float64, error) {
	return core.ReconstructRawFromSliding(src)
}

// Maintainer re-exports the §2.3 incremental maintenance engine.
type Maintainer = core.Maintainer

// NewMaintainer materializes a sequence and returns its maintainer.
func NewMaintainer(raw []float64, w Window, agg Agg) (*Maintainer, error) {
	return core.NewMaintainer(raw, w, agg)
}

// Reporting sequences (§6).
type (
	// PosFunc is the multi-column position function.
	PosFunc = core.PosFunc
	// ReportingSequence is a partitioned, multi-column-ordered sequence.
	ReportingSequence = core.ReportingSequence
	// PartitionKey identifies one partition.
	PartitionKey = core.PartitionKey
	// PartitionMerge maps coarse partitions to ordered fine partitions.
	PartitionMerge = core.PartitionMerge
)

// NewPosFunc builds a position function over per-column cardinalities.
func NewPosFunc(card ...int) (PosFunc, error) { return core.NewPosFunc(card...) }

// NewReportingSequence materializes per-partition sequences.
func NewReportingSequence(pf PosFunc, w Window, agg Agg, parts map[PartitionKey][]float64) (*ReportingSequence, error) {
	return core.NewReportingSequence(pf, w, agg, parts)
}

// OrderingReduction derives a sequence over fewer ordering columns (§6.1).
func OrderingReduction(rs *ReportingSequence, dropCols int, target Window) (*ReportingSequence, error) {
	return core.OrderingReduction(rs, dropCols, target)
}

// PartitioningReduction derives a sequence over a coarser partitioning
// scheme (§6.2).
func PartitioningReduction(rs *ReportingSequence, merge PartitionMerge, target Window) (*ReportingSequence, error) {
	return core.PartitioningReduction(rs, merge, target)
}
