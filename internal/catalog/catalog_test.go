package catalog

import (
	"testing"

	"rfview/internal/sqltypes"
)

func TestCreateResolveDropTable(t *testing.T) {
	c := New()
	tbl, err := c.CreateTable("seq", []Column{{"pos", sqltypes.Int}, {"val", sqltypes.Int}})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ColumnIndex("POS") != 0 || tbl.ColumnIndex("val") != 1 || tbl.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex mismatch (case-insensitive resolution expected)")
	}
	got, err := c.Table("SEQ")
	if err != nil || got != tbl {
		t.Fatal("case-insensitive table resolution failed")
	}
	if _, err := c.CreateTable("seq", tbl.Columns); err == nil {
		t.Error("duplicate table must fail")
	}
	if _, err := c.CreateTable("empty", nil); err == nil {
		t.Error("zero-column table must fail")
	}
	if _, err := c.CreateTable("dup", []Column{{"a", sqltypes.Int}, {"A", sqltypes.Int}}); err == nil {
		t.Error("duplicate column must fail")
	}
	names := c.Tables()
	if len(names) != 1 || names[0] != "seq" {
		t.Errorf("Tables() = %v", names)
	}
	if err := c.DropTable("seq"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("seq"); err == nil {
		t.Error("double drop must fail")
	}
	if _, err := c.Table("seq"); err == nil {
		t.Error("dropped table must not resolve")
	}
}

func TestColumnNames(t *testing.T) {
	c := New()
	tbl, _ := c.CreateTable("t", []Column{{"a", sqltypes.Int}, {"b", sqltypes.String}})
	names := tbl.ColumnNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("ColumnNames() = %v", names)
	}
}

func TestIndexLifecycle(t *testing.T) {
	c := New()
	tbl, _ := c.CreateTable("t", []Column{{"a", sqltypes.Int}, {"b", sqltypes.Int}})
	tbl.Heap.Insert(sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewInt(2)})
	def, err := c.CreateIndex("t_a", "t", []string{"a"}, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if def.Table != "t" || len(def.Columns) != 1 {
		t.Errorf("IndexDef = %+v", def)
	}
	if len(tbl.Indexes) != 1 {
		t.Error("index not registered on table metadata")
	}
	if _, err := c.CreateIndex("t_x", "t", []string{"missing"}, false, true); err == nil {
		t.Error("index on missing column must fail")
	}
	if _, err := c.CreateIndex("t_y", "missing", []string{"a"}, false, true); err == nil {
		t.Error("index on missing table must fail")
	}
	if err := c.DropIndex("t", "t_a"); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Indexes) != 0 {
		t.Error("index metadata survived drop")
	}
	if err := c.DropIndex("t", "t_a"); err == nil {
		t.Error("double index drop must fail")
	}
}

func TestMatViewRegistry(t *testing.T) {
	c := New()
	base, _ := c.CreateTable("seq", []Column{{"pos", sqltypes.Int}, {"val", sqltypes.Int}})
	_ = base
	backing, _ := c.CreateTable("mv_backing_internal", []Column{{"pos", sqltypes.Int}, {"val", sqltypes.Float}})
	// Registering under a distinct name works; the backing table is hidden
	// behind the view name.
	mv := &MatView{
		Name: "matseq", Kind: SequenceView, Table: backing,
		BaseTable: "seq", PosColumn: "pos", ValColumn: "val", Agg: "SUM",
		Window: WindowSpec{Preceding: 2, Following: 1},
	}
	if err := c.RegisterMatView(mv); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterMatView(mv); err != nil {
		if err == nil {
			t.Error("duplicate view must fail")
		}
	}
	if got, ok := c.MatView("MATSEQ"); !ok || got != mv {
		t.Error("case-insensitive view resolution failed")
	}
	// The view name resolves as a scannable table.
	tb, err := c.Table("matseq")
	if err != nil || tb != backing {
		t.Error("view name must resolve to its backing table")
	}
	// Name collisions across namespaces are rejected both ways.
	if _, err := c.CreateTable("matseq", backing.Columns); err == nil {
		t.Error("table name colliding with view must fail")
	}
	if err := c.RegisterMatView(&MatView{Name: "seq", Table: backing}); err == nil {
		t.Error("view name colliding with table must fail")
	}
	views := c.MatViews()
	if len(views) != 1 || views[0].Name != "matseq" {
		t.Errorf("MatViews() = %v", views)
	}
	if err := c.DropMatView("matseq"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropMatView("matseq"); err == nil {
		t.Error("double view drop must fail")
	}
}

func TestSequenceViewsOver(t *testing.T) {
	c := New()
	backing, _ := c.CreateTable("b1", []Column{{"pos", sqltypes.Int}, {"val", sqltypes.Float}})
	mk := func(name, base, agg string, w WindowSpec, kind MatViewKind) {
		t.Helper()
		err := c.RegisterMatView(&MatView{
			Name: name, Kind: kind, Table: backing,
			BaseTable: base, PosColumn: "pos", ValColumn: "val", Agg: agg, Window: w,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mk("v_sum21", "seq", "SUM", WindowSpec{Preceding: 2, Following: 1}, SequenceView)
	mk("v_sum11", "seq", "SUM", WindowSpec{Preceding: 1, Following: 1}, SequenceView)
	mk("v_min21", "seq", "MIN", WindowSpec{Preceding: 2, Following: 1}, SequenceView)
	mk("v_other", "other", "SUM", WindowSpec{Preceding: 2, Following: 1}, SequenceView)
	mk("v_plain", "seq", "SUM", WindowSpec{}, PlainView)

	got := c.SequenceViewsOver("SEQ", "POS", "", "VAL", "sum")
	if len(got) != 2 || got[0].Name != "v_sum11" || got[1].Name != "v_sum21" {
		names := make([]string, len(got))
		for i, v := range got {
			names[i] = v.Name
		}
		t.Fatalf("SequenceViewsOver = %v", names)
	}
	if got := c.SequenceViewsOver("seq", "pos", "", "val", "MIN"); len(got) != 1 || got[0].Name != "v_min21" {
		t.Fatal("MIN view matching failed")
	}
	if got := c.SequenceViewsOver("nothere", "pos", "", "val", "SUM"); len(got) != 0 {
		t.Fatal("unexpected match for unknown base table")
	}
}

func TestWindowSpecString(t *testing.T) {
	if (WindowSpec{Cumulative: true}).String() != "cumulative" {
		t.Error("cumulative spec renders wrong")
	}
	if (WindowSpec{Preceding: 2, Following: 1}).String() != "(2,1)" {
		t.Error("sliding spec renders wrong")
	}
}

// TestListingsSorted: every map-backed listing comes back in name order, so
// catalog scans (and anything cached or printed from them) are deterministic
// across runs regardless of map iteration order.
func TestListingsSorted(t *testing.T) {
	c := New()
	for _, name := range []string{"zebra", "mango", "apple"} {
		if _, err := c.CreateTable(name, []Column{{"pos", sqltypes.Int}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Tables(); len(got) != 3 || got[0] != "apple" || got[1] != "mango" || got[2] != "zebra" {
		t.Fatalf("Tables() = %v, want sorted names", got)
	}
	for _, name := range []string{"v_z", "v_a", "v_m"} {
		backing, err := c.CreateTable("__mv_"+name, []Column{{"pos", sqltypes.Int}})
		if err != nil {
			t.Fatal(err)
		}
		err = c.RegisterMatView(&MatView{
			Name: name, Kind: SequenceView, Table: backing,
			BaseTable: "zebra", PosColumn: "pos", ValColumn: "pos", Agg: "SUM",
			Window: WindowSpec{Preceding: 1, Following: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	views := c.MatViews()
	if len(views) != 3 || views[0].Name != "v_a" || views[1].Name != "v_m" || views[2].Name != "v_z" {
		names := make([]string, len(views))
		for i, v := range views {
			names[i] = v.Name
		}
		t.Fatalf("MatViews() = %v, want sorted names", names)
	}
}

// TestSchemaVersionBumpsOnDDL: every DDL mutation advances the schema
// version the engine's plan cache keys validity on.
func TestSchemaVersionBumpsOnDDL(t *testing.T) {
	c := New()
	v0 := c.SchemaVersion()
	tbl, err := c.CreateTable("t", []Column{{"pos", sqltypes.Int}, {"val", sqltypes.Int}})
	if err != nil {
		t.Fatal(err)
	}
	if c.SchemaVersion() <= v0 {
		t.Fatal("CreateTable must bump the schema version")
	}
	v1 := c.SchemaVersion()
	if _, err := c.CreateIndex("i", "t", []string{"pos"}, false, false); err != nil {
		t.Fatal(err)
	}
	if c.SchemaVersion() <= v1 {
		t.Fatal("CreateIndex must bump the schema version")
	}
	v2 := c.SchemaVersion()
	if err := c.RegisterMatView(&MatView{Name: "v", Kind: SequenceView, Table: tbl,
		BaseTable: "t", PosColumn: "pos", ValColumn: "val", Agg: "SUM",
		Window: WindowSpec{Preceding: 1, Following: 1}}); err != nil {
		t.Fatal(err)
	}
	if c.SchemaVersion() <= v2 {
		t.Fatal("RegisterMatView must bump the schema version")
	}
	v3 := c.SchemaVersion()
	if err := c.DropMatView("v"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropIndex("t", "i"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if c.SchemaVersion() < v3+3 {
		t.Fatalf("drops must each bump the schema version: %d -> %d", v3, c.SchemaVersion())
	}
}
