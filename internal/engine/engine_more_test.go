package engine

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"rfview/internal/rewrite"
	"rfview/internal/sqltypes"
)

// TestInsertCoercion: literals are coerced to the declared column types.
func TestInsertCoercion(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, `CREATE TABLE t (a INTEGER, b FLOAT, c VARCHAR(10), d DATE)`)
	mustExec(t, e, `INSERT INTO t VALUES (2.9, 3, 42, '2001-07-04')`)
	res := mustExec(t, e, `SELECT a, b, c, d FROM t`)
	r := res.Rows[0]
	if r[0].Typ() != sqltypes.Int || r[0].Int() != 2 {
		t.Fatalf("a = %v (%v)", r[0], r[0].Typ())
	}
	if r[1].Typ() != sqltypes.Float || r[1].Float() != 3 {
		t.Fatalf("b = %v", r[1])
	}
	if r[2].Typ() != sqltypes.String || r[2].Str() != "42" {
		t.Fatalf("c = %v", r[2])
	}
	if r[3].Typ() != sqltypes.Date || r[3].String() != "2001-07-04" {
		t.Fatalf("d = %v", r[3])
	}
	// NULLs for unlisted columns.
	mustExec(t, e, `INSERT INTO t (a) VALUES (7)`)
	res = mustExec(t, e, `SELECT b FROM t WHERE a = 7`)
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("unlisted column = %v", res.Rows[0][0])
	}
}

// TestNestedDerivedTables: two levels of derived tables with windows inside.
func TestNestedDerivedTables(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 12, func(i int) int64 { return int64(i) })
	res := mustExec(t, e, `
	  SELECT outertab.p, outertab.c FROM (
	    SELECT inner1.pos AS p, inner1.cum AS c FROM (
	      SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS cum FROM seq
	    ) AS inner1 WHERE inner1.cum > 10
	  ) AS outertab ORDER BY outertab.p LIMIT 3`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// cum at pos 5 = 15 is the first > 10.
	if res.Rows[0][0].Int() != 5 || res.Rows[0][1].Int() != 15 {
		t.Fatalf("first row = %v", res.Rows[0])
	}
}

// TestWindowOverGroupBy: reporting functions evaluate over the grouped
// result (the two-step semantics of §1's "overall processing strategy").
func TestWindowOverGroupBy(t *testing.T) {
	e := newEngine(t)
	mustExecAll(t, e, `
	  CREATE TABLE sales (day INTEGER, region VARCHAR(10), amt INTEGER);
	  INSERT INTO sales VALUES
	    (1, 'north', 10), (1, 'south', 20),
	    (2, 'north', 30), (2, 'south', 40),
	    (3, 'north', 50), (3, 'south', 60);
	`)
	res := mustExec(t, e, `
	  SELECT day, SUM(SUM(amt)) OVER (ORDER BY day ROWS UNBOUNDED PRECEDING) AS running
	  FROM sales GROUP BY day ORDER BY day`)
	want := []int64{30, 100, 210}
	for i, r := range res.Rows {
		if r[1].Int() != want[i] {
			t.Fatalf("running[%d] = %v, want %d", i, r[1], want[i])
		}
	}
}

// TestExplainShowsDerivation: EXPLAIN surfaces the rewritten SQL.
func TestExplainShowsDerivation(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 20, func(i int) int64 { return int64(i) })
	mustExec(t, e, `CREATE MATERIALIZED VIEW mv AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`)
	res := mustExec(t, e, `EXPLAIN SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w FROM seq`)
	if !strings.Contains(res.Plan, "rewritten") || !strings.Contains(res.Plan, "mv") {
		t.Fatalf("EXPLAIN should show the derivation rewrite:\n%s", res.Plan)
	}
}

// TestStaleViewBlocksDerivation: once stale, the view no longer answers
// queries via derivation either.
func TestStaleViewBlocksDerivation(t *testing.T) {
	e := newEagerEngine(t)
	loadSeq(t, e, 20, func(i int) int64 { return int64(i) })
	mustExec(t, e, `CREATE MATERIALIZED VIEW mv AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`)
	mustExec(t, e, `DELETE FROM seq WHERE pos = 10`) // density broken → stale
	if !e.Views.Stale("mv") {
		t.Fatal("view should be stale")
	}
	_, err := e.Exec(`SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w FROM seq`)
	if err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale view must refuse derivation: %v", err)
	}
}

// TestCountStarDerivation: COUNT(*) windows match COUNT(pos) views.
func TestCountStarDerivation(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 25, func(i int) int64 { return int64(i) })
	mustExec(t, e, `CREATE MATERIALIZED VIEW cnt AS
	  SELECT pos, COUNT(pos) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`)
	res := mustExec(t, e, `SELECT pos, COUNT(*) OVER (ORDER BY pos
	  ROWS BETWEEN 3 PRECEDING AND 2 FOLLOWING) AS c FROM seq`)
	if res.Derivation == nil {
		t.Fatal("COUNT(*) should derive from the COUNT view")
	}
	// Interior positions count the full window of 6.
	got := rowsToPairs(t, res.Rows)
	if got[10] != 6 || got[1] != 3 || got[25] != 4 {
		t.Fatalf("counts = %v %v %v", got[10], got[1], got[25])
	}
}

// TestSelfJoinPartitioned: the Fig. 2 pattern extended with PARTITION BY
// agrees with native evaluation.
func TestSelfJoinPartitionedEquivalence(t *testing.T) {
	build := func(native bool) *Engine {
		opts := DefaultOptions()
		opts.UseMatViews = false
		opts.NativeWindow = native
		e := New(opts)
		mustExec(t, e, `CREATE TABLE g (grp INTEGER, pos INTEGER, val INTEGER)`)
		rng := rand.New(rand.NewSource(17))
		var b strings.Builder
		b.WriteString("INSERT INTO g VALUES ")
		for i := 1; i <= 60; i++ {
			if i > 1 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d, %d)", i%3, i, rng.Intn(50))
		}
		mustExec(t, e, b.String())
		return e
	}
	q := `SELECT pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos
	  ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM g`
	rn := mustExec(t, build(true), q)
	rs := mustExec(t, build(false), q)
	// NOTE: with PARTITION BY, window offsets count rows *within the
	// partition* natively, but the self-join pattern joins on position
	// arithmetic — they agree only when positions are dense per partition.
	// Here they are not, so the simulation legitimately differs; what must
	// hold is the paper's precondition: cumulative frames (no offsets)
	// agree regardless.
	_ = rn
	_ = rs
	qc := `SELECT pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos
	  ROWS UNBOUNDED PRECEDING) AS w FROM g`
	rn = mustExec(t, build(true), qc)
	rs = mustExec(t, build(false), qc)
	gn, gs := rowsToPairs(t, rn.Rows), rowsToPairs(t, rs.Rows)
	if len(gn) != len(gs) {
		t.Fatalf("cardinality %d vs %d", len(gn), len(gs))
	}
	for k, v := range gn {
		if math.Abs(gs[k]-v) > 1e-9 {
			t.Fatalf("pos %d: native %v selfjoin %v", k, v, gs[k])
		}
	}
}

// TestMinOANarrowingThroughSQL: the engine answers a narrower window from a
// wider view (only MinOA can).
func TestMinOANarrowingThroughSQL(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 30, func(i int) int64 { return int64(i * 3 % 17) })
	mustExec(t, e, `CREATE MATERIALIZED VIEW wide AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 4 PRECEDING AND 3 FOLLOWING) AS val FROM seq`)
	res := mustExec(t, e, `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM seq`)
	if res.Derivation == nil {
		t.Fatal("narrowing derivation should fire")
	}
	if res.Derivation.Strategy.String() != "MinOA" {
		t.Fatalf("strategy = %v", res.Derivation.Strategy)
	}
	// Check one value: pos 10 window {9,10,11} → (27+30+33)%… compute.
	want := float64(9*3%17 + 10*3%17 + 11*3%17)
	got := rowsToPairs(t, res.Rows)
	if got[10] != want {
		t.Fatalf("pos 10 = %v, want %v", got[10], want)
	}
}

// TestUpdateWithExpressionAndIndexMaintenance: SET expressions reference the
// old row; indexes track changed keys.
func TestUpdateWithExpressionAndIndexMaintenance(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 10, func(i int) int64 { return int64(i) })
	mustExec(t, e, `CREATE UNIQUE INDEX seq_pk ON seq (pos)`)
	mustExec(t, e, `UPDATE seq SET val = val * 10 WHERE pos BETWEEN 3 AND 5`)
	res := mustExec(t, e, `SELECT val FROM seq WHERE pos = 4`)
	if res.Rows[0][0].Int() != 40 {
		t.Fatalf("val = %v", res.Rows[0][0])
	}
	// Key-moving update through the unique index.
	mustExec(t, e, `UPDATE seq SET pos = 11 WHERE pos = 10`)
	res = mustExec(t, e, `SELECT COUNT(*) AS c FROM seq WHERE pos = 11`)
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("moved row not found")
	}
	// Moving onto an existing key must fail.
	if _, err := e.Exec(`UPDATE seq SET pos = 5 WHERE pos = 11`); err == nil {
		t.Fatal("unique violation on update must fail")
	}
}

// TestDistinctOverUnion and LIMIT-of-union round out set operations.
func TestUnionSemantics(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 4, func(i int) int64 { return int64(i % 2) })
	res := mustExec(t, e, `SELECT val FROM seq UNION SELECT val FROM seq`)
	if len(res.Rows) != 2 {
		t.Fatalf("distinct union rows = %v", res.Rows)
	}
	res = mustExec(t, e, `SELECT val FROM seq UNION ALL SELECT val FROM seq LIMIT 5`)
	if len(res.Rows) != 5 {
		t.Fatalf("limited union rows = %v", res.Rows)
	}
}

// TestFromlessSelect: expression-only queries work (used by scripts).
func TestFromlessSelect(t *testing.T) {
	e := newEngine(t)
	res := mustExec(t, e, `SELECT 1 + 2 AS three, 'x' AS s`)
	if res.Rows[0][0].Int() != 3 || res.Rows[0][1].Str() != "x" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestDerivationDisabled: with UseMatViews off the engine never rewrites.
func TestDerivationDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.UseMatViews = false
	e := New(opts)
	loadSeq(t, e, 10, func(i int) int64 { return int64(i) })
	mustExec(t, e, `CREATE MATERIALIZED VIEW mv AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`)
	res := mustExec(t, e, `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w FROM seq`)
	if res.Derivation != nil {
		t.Fatal("derivation fired despite UseMatViews=false")
	}
}

// TestIndexedPointQueries: basic index-assisted selection correctness after
// mixed DML.
func TestIndexedPointQueriesAfterDML(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 200, func(i int) int64 { return int64(i) })
	mustExec(t, e, `CREATE UNIQUE INDEX seq_pk ON seq (pos)`)
	mustExec(t, e, `DELETE FROM seq WHERE pos = 100`)
	mustExec(t, e, `UPDATE seq SET val = 1 WHERE pos = 150`)
	// Join probing must see the mutations.
	res := mustExec(t, e, `SELECT s2.val FROM seq s1, seq s2 WHERE s1.pos = 50 AND s2.pos = s1.pos + 100`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("probe rows = %v", res.Rows)
	}
	res = mustExec(t, e, `SELECT s2.val FROM seq s1, seq s2 WHERE s1.pos = 50 AND s2.pos = s1.pos + 50`)
	if len(res.Rows) != 0 {
		t.Fatalf("deleted row visible through index: %v", res.Rows)
	}
}

// TestDerivationMaxRows — the §7 advisory cap: big views answer only exact
// matches; smaller windows recompute natively.
func TestDerivationMaxRows(t *testing.T) {
	opts := DefaultOptions()
	opts.DerivationMaxRows = 10 // backing table is larger than this
	e := New(opts)
	loadSeq(t, e, 50, func(i int) int64 { return int64(i) })
	mustExec(t, e, `CREATE MATERIALIZED VIEW mv AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`)
	// Different window: the cap suppresses the rewrite.
	res := mustExec(t, e, `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w FROM seq`)
	if res.Derivation != nil {
		t.Fatal("cap should have suppressed the non-exact derivation")
	}
	// Exact match: always allowed.
	res = mustExec(t, e, `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS w FROM seq`)
	if res.Derivation == nil || !res.Derivation.Exact {
		t.Fatal("exact match should still answer from the view")
	}
	// Raising the cap re-enables derivation.
	opts.DerivationMaxRows = 1000
	e.Opts = opts
	res = mustExec(t, e, `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w FROM seq`)
	if res.Derivation == nil {
		t.Fatal("derivation should fire under the cap")
	}
}

// TestAvgDerivationThroughSQL — §2.1: an AVG window query answered by
// composing SUM and COUNT views.
func TestAvgDerivationThroughSQL(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	n := 40
	vals := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		vals = append(vals, int64(rng.Intn(100)-50))
	}
	build := func(useViews bool) *Engine {
		opts := DefaultOptions()
		opts.UseMatViews = useViews
		e := New(opts)
		loadSeq(t, e, n, func(i int) int64 { return vals[i-1] })
		if useViews {
			mustExec(t, e, `CREATE MATERIALIZED VIEW vsum AS
			  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`)
			mustExec(t, e, `CREATE MATERIALIZED VIEW vcnt AS
			  SELECT pos, COUNT(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`)
		}
		return e
	}
	q := `SELECT pos, AVG(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 2 FOLLOWING) AS w FROM seq`
	native, derived := build(false), build(true)
	rn, rd := mustExec(t, native, q), mustExec(t, derived, q)
	if rd.Derivation == nil {
		t.Fatal("AVG composition should fire")
	}
	gn, gd := rowsToPairs(t, rn.Rows), rowsToPairs(t, rd.Rows)
	if len(gn) != len(gd) {
		t.Fatalf("cardinality %d vs %d", len(gn), len(gd))
	}
	for k, v := range gn {
		if math.Abs(gd[k]-v) > 1e-9 {
			t.Fatalf("pos %d: native %v derived %v", k, v, gd[k])
		}
	}
}

// TestRawReconstructionEndToEnd — Fig. 4 (cumulative) and the §3.2 explicit
// form (sliding) recover the base data by executing the generated SQL.
func TestRawReconstructionEndToEnd(t *testing.T) {
	e := newEngine(t)
	rng := rand.New(rand.NewSource(57))
	n := 35
	vals := make([]int64, n+1)
	loadSeq(t, e, n, func(i int) int64 {
		vals[i] = int64(rng.Intn(200) - 100)
		return vals[i]
	})
	mustExec(t, e, `CREATE MATERIALIZED VIEW cumv AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS val FROM seq`)
	mustExec(t, e, `CREATE MATERIALIZED VIEW sliv AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`)

	check := func(stmt fmt.Stringer, ctx string) {
		t.Helper()
		res, err := e.Exec(stmt.String())
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		got := rowsToPairs(t, res.Rows)
		if len(got) != n {
			t.Fatalf("%s: %d rows, want %d", ctx, len(got), n)
		}
		for k := 1; k <= n; k++ {
			if got[int64(k)] != float64(vals[k]) {
				t.Fatalf("%s: raw[%d] = %v, want %d", ctx, k, got[int64(k)], vals[k])
			}
		}
	}
	cum, _ := e.Cat.MatView("cumv")
	stmt, err := rewrite.RawFromCumulative(cum)
	if err != nil {
		t.Fatal(err)
	}
	check(stmt, "raw from cumulative (Fig. 4)")
	sli, _ := e.Cat.MatView("sliv")
	stmt, err = rewrite.RawFromSliding(sli)
	if err != nil {
		t.Fatal(err)
	}
	check(stmt, "raw from sliding (§3.2 explicit form)")
}
