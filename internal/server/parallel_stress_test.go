package server_test

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rfview/internal/client"
	"rfview/internal/engine"
	"rfview/internal/server"
)

// startServerWith serves a caller-built server (custom engine options) on an
// ephemeral port and wires shutdown into test cleanup.
func startServerWith(t *testing.T, srv *server.Server) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		select {
		case <-errc:
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
	})
	return lis.Addr().String()
}

// parallelStressQ exercises the partition-parallel Window operator: one
// partition per group, evaluated by the worker pool on every read.
const parallelStressQ = `SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos
  ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS w FROM pt`

// multiOverStressQ layers four OVER clauses of one ordering-compatible class
// over the same scan, so every read runs the shared-sort bracket (Ordinal →
// shared class Sort → four stacked Windows → Restore) concurrently with the
// writer and the view refreshes.
const multiOverStressQ = `SELECT grp, pos,
  SUM(val) OVER (PARTITION BY grp ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS w1,
  COUNT(val) OVER (PARTITION BY grp ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS w2,
  SUM(val) OVER (PARTITION BY grp ORDER BY pos) AS w3,
  COUNT(val) OVER (PARTITION BY grp ORDER BY pos) AS w4 FROM pt`

// checkMultiOverSnapshot verifies one multiOverStressQ read over all-ones
// data: the clipped (2,2) sums and counts agree with the window width, and
// the cumulative pair equals the dense position — all four columns computed
// off one shared sort must describe the same snapshot.
func checkMultiOverSnapshot(res *client.Result, groups int) error {
	per := make(map[string]map[int64][4]float64)
	for _, r := range res.Rows {
		if len(r) != 6 {
			return fmt.Errorf("row arity %d, want 6", len(r))
		}
		g, ok := r[0].(string)
		if !ok {
			return fmt.Errorf("bad group %v (%T)", r[0], r[0])
		}
		pos, ok := r[1].(float64)
		if !ok {
			return fmt.Errorf("bad pos type %T", r[1])
		}
		var w [4]float64
		for i := range w {
			v, ok := r[2+i].(float64)
			if !ok {
				return fmt.Errorf("bad w%d type %T", i+1, r[2+i])
			}
			w[i] = v
		}
		if per[g] == nil {
			per[g] = make(map[int64][4]float64)
		}
		per[g][int64(pos)] = w
	}
	if len(per) != groups {
		return fmt.Errorf("saw %d groups, want %d", len(per), groups)
	}
	n := int64(-1)
	for g, rows := range per {
		if n < 0 {
			n = int64(len(rows))
		} else if int64(len(rows)) != n {
			return fmt.Errorf("group %s has %d rows, others %d — torn multi-group insert", g, len(rows), n)
		}
		for p := int64(1); p <= n; p++ {
			w, ok := rows[p]
			if !ok {
				return fmt.Errorf("group %s: position %d missing from %d-row partition", g, p, n)
			}
			lo, hi := max(p-2, 1), min(p+2, n)
			if want := float64(hi - lo + 1); w[0] != want || w[1] != want {
				return fmt.Errorf("group %s pos %d: clipped w1=%v w2=%v, want %v (n=%d)", g, p, w[0], w[1], want, n)
			}
			if want := float64(p); w[2] != want || w[3] != want {
				return fmt.Errorf("group %s pos %d: cumulative w3=%v w4=%v, want %v", g, p, w[2], w[3], want)
			}
		}
	}
	return nil
}

// checkPartitionedSnapshot verifies one read of parallelStressQ over
// all-ones data is an internally consistent snapshot: every group has the
// same row count (the writer grows all groups in one atomic INSERT), each
// group's positions are dense 1…n, and every windowed sum equals its clipped
// (2,2) window width. A torn read — rows from mid-insert, a half-applied
// refresh, or a partition evaluated against a different snapshot than its
// siblings — breaks one of these.
func checkPartitionedSnapshot(res *client.Result, groups int) error {
	per := make(map[string]map[int64]float64)
	for _, r := range res.Rows {
		if len(r) != 3 {
			return fmt.Errorf("row arity %d, want 3", len(r))
		}
		g, ok := r[0].(string)
		if !ok {
			return fmt.Errorf("bad group %v (%T)", r[0], r[0])
		}
		pos, ok1 := r[1].(float64)
		w, ok2 := r[2].(float64)
		if !ok1 || !ok2 {
			return fmt.Errorf("bad pos/sum types %T/%T", r[1], r[2])
		}
		if per[g] == nil {
			per[g] = make(map[int64]float64)
		}
		per[g][int64(pos)] = w
	}
	if len(per) != groups {
		return fmt.Errorf("saw %d groups, want %d", len(per), groups)
	}
	n := int64(-1)
	for g, rows := range per {
		if n < 0 {
			n = int64(len(rows))
		} else if int64(len(rows)) != n {
			return fmt.Errorf("group %s has %d rows, others %d — torn multi-group insert", g, len(rows), n)
		}
		for p := int64(1); p <= n; p++ {
			s, ok := rows[p]
			if !ok {
				return fmt.Errorf("group %s: position %d missing from %d-row partition", g, p, n)
			}
			lo, hi := p-2, p+2
			if lo < 1 {
				lo = 1
			}
			if hi > n {
				hi = n
			}
			if want := float64(hi - lo + 1); s != want {
				return fmt.Errorf("group %s pos %d: sum %v, want %v (n=%d)", g, p, s, want, n)
			}
		}
	}
	return nil
}

// TestServerParallelWindowUnderRefresh is the -race stress test for the
// partition-parallel Window operator: several client connections hammer a
// parallel window query through the TCP server while a writer connection
// appends one row to every partition per statement and periodically runs
// REFRESH MATERIALIZED VIEW (whose re-materialization also rides the worker
// pool). Every read is consistency-checked against the all-ones invariant.
func TestServerParallelWindowUnderRefresh(t *testing.T) {
	const groups = 6

	opts := engine.DefaultOptions()
	opts.WindowParallelism = 4
	e := engine.New(opts)
	// No plan/result cache: every read must execute the worker pool, not
	// replay a cached answer.
	e.SetPlanCacheCapacity(0)
	srv := server.New(e)
	addr := startServerWith(t, srv)

	if _, err := e.Exec(`CREATE TABLE pt (grp VARCHAR(8), pos INTEGER, val INTEGER)`); err != nil {
		t.Fatal(err)
	}
	insertRound := func(pos int) string {
		var b strings.Builder
		b.WriteString("INSERT INTO pt VALUES ")
		for g := 0; g < groups; g++ {
			if g > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "('g%d', %d, 1)", g, pos)
		}
		return b.String()
	}
	for pos := 1; pos <= 10; pos++ {
		if _, err := e.Exec(insertRound(pos)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Exec(`CREATE MATERIALIZED VIEW pmv AS
	  SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos
	    ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS val FROM pt`); err != nil {
		t.Fatal(err)
	}

	readers := 4
	inserts := 60
	if testing.Short() {
		inserts = 15
	}

	var wg sync.WaitGroup
	errc := make(chan error, readers+1)
	done := make(chan struct{})

	// Writer: grow every partition by one row per statement; refresh the
	// materialized view every few rounds so full re-materialization (which
	// reuses the parallel Window path) interleaves with the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		c, err := client.Dial(addr)
		if err != nil {
			errc <- err
			return
		}
		defer c.Close()
		for pos := 11; pos < 11+inserts; pos++ {
			if _, err := c.Exec(insertRound(pos)); err != nil {
				errc <- fmt.Errorf("writer insert pos %d: %w", pos, err)
				return
			}
			if pos%5 == 0 {
				if _, err := c.Exec(`REFRESH MATERIALIZED VIEW pmv`); err != nil {
					errc <- fmt.Errorf("writer refresh at pos %d: %w", pos, err)
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				// Alternate the single-window query with the 4-clause
				// shared-sort one so both window paths run under -race.
				q, check := parallelStressQ, checkPartitionedSnapshot
				if i%2 == 1 {
					q, check = multiOverStressQ, checkMultiOverSnapshot
				}
				res, err := c.Query(q)
				if err != nil {
					errc <- fmt.Errorf("reader %d query %d: %w", r, i, err)
					return
				}
				if err := check(res, groups); err != nil {
					errc <- fmt.Errorf("reader %d query %d: %w", r, i, err)
					return
				}
			}
		}(r)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
