// Package client is a small synchronous client for the rfview query service
// (see internal/server for the newline-delimited JSON protocol). It is the
// library behind cmd/rfload and a starting point for embedding rfview access
// in other programs.
//
// A Client owns one TCP connection and is safe for concurrent use: requests
// are serialized on the connection, one outstanding request at a time. Open
// several clients for pipelined load (as cmd/rfload does).
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	rferrors "rfview/errors"
	"rfview/internal/server"
)

// Client is one connection to an rfview server.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	dec    *json.Decoder
	w      *bufio.Writer
	enc    *json.Encoder
	nextID uint64
}

// Result is the client-side view of one statement outcome. Row values are
// the JSON decodings of the wire protocol: float64 for numbers, string,
// bool, or nil.
type Result struct {
	Columns   []string
	Rows      [][]any
	Affected  int
	Plan      string
	Rewritten string
	// ElapsedUs is the server-reported execution time in microseconds.
	ElapsedUs int64
	// Session is the server-assigned session id of this connection.
	Session uint64
}

// Dial connects to an rfview server at addr ("host:port").
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	w := bufio.NewWriterSize(conn, 64<<10)
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReaderSize(conn, 64<<10)),
		w:    w,
		enc:  json.NewEncoder(w),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// RequestOption adjusts one request before it is sent.
type RequestOption func(*server.Request)

// WithTimeout bounds the statement's server-side execution; on expiry the
// call fails with an error matching rfview/errors.ErrCancelled.
func WithTimeout(d time.Duration) RequestOption {
	return func(r *server.Request) { r.TimeoutMs = d.Milliseconds() }
}

// WithAnalyze asks for the instrumented plan (per-operator rows and timings)
// in Result.Plan.
func WithAnalyze() RequestOption {
	return func(r *server.Request) { r.Analyze = true }
}

// roundTrip sends one request and reads its response.
func (c *Client) roundTrip(op, sql string, opts ...RequestOption) (*server.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req := server.Request{ID: c.nextID, Op: op, SQL: sql}
	for _, o := range opts {
		o(&req)
	}
	if err := c.enc.Encode(&req); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	var resp server.Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("client: reading response: %w", err)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("client: response id %d for request %d", resp.ID, req.ID)
	}
	if !resp.OK {
		// Reconstruct the engine's typed error from the stable wire code, so
		// errors.Is works identically against a remote or embedded engine.
		return nil, rferrors.FromCode(rferrors.Code(resp.Code), "server: "+resp.Error)
	}
	return &resp, nil
}

func toResult(resp *server.Response) *Result {
	return &Result{
		Columns: resp.Columns, Rows: resp.Rows, Affected: resp.Affected,
		Plan: resp.Plan, Rewritten: resp.Rewritten,
		ElapsedUs: resp.ElapsedUs, Session: resp.Session,
	}
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip("ping", "")
	return err
}

// Query executes a statement and returns columns and rows.
//
// Deprecated: new code should use QueryContext, which forwards deadlines to
// the server.
func (c *Client) Query(sql string, opts ...RequestOption) (*Result, error) {
	return c.QueryContext(context.Background(), sql, opts...)
}

// QueryContext executes a statement and returns columns and rows. A context
// already cancelled fails immediately with an error matching
// rfview/errors.ErrCancelled; a context deadline is forwarded to the server
// as a statement timeout, so the call unblocks over the wire when it
// expires.
func (c *Client) QueryContext(ctx context.Context, sql string, opts ...RequestOption) (*Result, error) {
	resp, err := c.roundTripCtx(ctx, "query", sql, opts...)
	if err != nil {
		return nil, err
	}
	return toResult(resp), nil
}

// Exec executes a statement and returns the affected count.
//
// Deprecated: new code should use ExecContext, which forwards deadlines to
// the server.
func (c *Client) Exec(sql string, opts ...RequestOption) (*Result, error) {
	return c.ExecContext(context.Background(), sql, opts...)
}

// ExecContext executes a statement and returns the affected count, with the
// same context semantics as QueryContext.
func (c *Client) ExecContext(ctx context.Context, sql string, opts ...RequestOption) (*Result, error) {
	resp, err := c.roundTripCtx(ctx, "exec", sql, opts...)
	if err != nil {
		return nil, err
	}
	return toResult(resp), nil
}

// roundTripCtx applies the context to one round trip: a pre-cancelled
// context short-circuits, a deadline becomes a server-side statement
// timeout.
func (c *Client) roundTripCtx(ctx context.Context, op, sql string, opts ...RequestOption) (*server.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, rferrors.Wrap(rferrors.CodeCancelled, err)
	}
	if dl, ok := ctx.Deadline(); ok {
		opts = append(opts, WithTimeout(time.Until(dl)))
	}
	return c.roundTrip(op, sql, opts...)
}

// Stats fetches server, session, and cache counters.
func (c *Client) Stats() (*server.StatsReply, error) {
	resp, err := c.roundTrip("stats", "")
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("client: stats response carried no payload")
	}
	return resp.Stats, nil
}

// Begin opens a transaction on this connection. Statements executed through
// the client until Commit or Rollback read at the transaction's snapshot and
// stay invisible to other connections. The server rejects a nested Begin
// with code "txn_state".
func (c *Client) Begin() error {
	_, err := c.roundTrip("exec", "BEGIN")
	return err
}

// Commit publishes the connection's open transaction atomically. A
// first-committer-wins conflict surfaces here (or on the conflicting
// statement) with code "conflict"; the transaction is then already rolled
// back.
func (c *Client) Commit() error {
	_, err := c.roundTrip("exec", "COMMIT")
	return err
}

// Rollback discards the connection's open transaction.
func (c *Client) Rollback() error {
	_, err := c.roundTrip("exec", "ROLLBACK")
	return err
}

// Explain returns the plan text for a read statement. Pass WithAnalyze for
// the executed, instrumented plan (EXPLAIN ANALYZE).
func (c *Client) Explain(sql string, opts ...RequestOption) (string, error) {
	resp, err := c.roundTrip("explain", sql, opts...)
	if err != nil {
		return "", err
	}
	return resp.Plan, nil
}

// Metrics fetches the server's Prometheus text exposition.
func (c *Client) Metrics() (string, error) {
	resp, err := c.roundTrip("metrics", "")
	if err != nil {
		return "", err
	}
	return resp.Metrics, nil
}
