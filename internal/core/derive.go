package core

import (
	"fmt"
	"math"
)

// This file implements §3–§5 of the paper: answering a reporting-function
// query from a *materialized* reporting-function view without touching the
// raw data. Throughout, x̃ denotes the materialized (source) sequence with
// window (l_x, h_x) and W_x = 1 + l_x + h_x, and ỹ the requested (target)
// sequence with window (l_y, h_y). The coverage factors are Δl = l_y − l_x
// and Δh = h_y − h_x.

// ErrNotDerivable is returned when a derivation's preconditions are not met.
type ErrNotDerivable struct {
	Algo   string
	Source Window
	Target Window
	Reason string
}

func (e *ErrNotDerivable) Error() string {
	return fmt.Sprintf("%s: cannot derive %v from materialized %v: %s",
		e.Algo, e.Target, e.Source, e.Reason)
}

func notDerivable(algo string, src, dst Window, reason string) error {
	return &ErrNotDerivable{Algo: algo, Source: src, Target: dst, Reason: reason}
}

// ---------------------------------------------------------------------------
// §3.1 — materialized cumulative sequences
// ---------------------------------------------------------------------------

// ReconstructRawFromCumulative recovers the raw data values x_1 … x_n from a
// materialized cumulative SUM sequence via x_k = x̃_k − x̃_{k−1} (§3.1,
// Fig. 4 gives the relational mapping).
func ReconstructRawFromCumulative(s *Sequence) ([]float64, error) {
	if !s.Win.Cumulative {
		return nil, notDerivable("raw-from-cumulative", s.Win, Window{}, "source is not cumulative")
	}
	if s.Agg != Sum {
		return nil, notDerivable("raw-from-cumulative", s.Win, Window{}, "only SUM sequences are invertible")
	}
	raw := make([]float64, s.N)
	for k := 1; k <= s.N; k++ {
		raw[k-1] = s.At(k) - s.At(k-1)
	}
	return raw, nil
}

// DeriveSlidingFromCumulative derives the sliding-window sequence ỹ = (l, h)
// from a materialized cumulative SUM sequence via
//
//	ỹ_k = x̃_{k+h} − x̃_{k−l−1}
//
// (§3.1, Fig. 5). The formula holds at boundary positions because
// x̃_j = 0 for j ≤ 0 and x̃_j stays at the grand total for j ≥ n.
func DeriveSlidingFromCumulative(s *Sequence, target Window) (*Sequence, error) {
	if !s.Win.Cumulative {
		return nil, notDerivable("sliding-from-cumulative", s.Win, target, "source is not cumulative")
	}
	if s.Agg != Sum && s.Agg != Count {
		return nil, notDerivable("sliding-from-cumulative", s.Win, target, "requires SUM or COUNT")
	}
	if target.Cumulative {
		out := newSequence(target, s.Agg, s.N)
		for k := out.lo; k <= out.Hi(); k++ {
			out.set(k, s.At(k), true)
		}
		return out, nil
	}
	if err := target.Validate(); err != nil {
		return nil, err
	}
	out := newSequence(target, s.Agg, s.N)
	l, h := target.Preceding, target.Following
	for k := out.lo; k <= out.Hi(); k++ {
		out.set(k, s.At(k+h)-s.At(k-l-1), true)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// §3.2 — materialized sliding-window sequences
// ---------------------------------------------------------------------------

// ReconstructRawFromSliding recovers the raw data x_1 … x_n from a complete
// materialized sliding-window SUM sequence using the explicit telescoping
// form of §3.2:
//
//	x_k = Σ_{i≥0} ( x̃_{k−h−iW} − x̃_{k−h−1−iW} )
//
// where each difference contributes x_{k−iW} − x_{k−(i+1)W}; the summation
// stops at i_up = ⌈k/W⌉ because beyond that point both sequence positions
// fall left of the header.
func ReconstructRawFromSliding(s *Sequence) ([]float64, error) {
	if s.Win.Cumulative {
		return ReconstructRawFromCumulative(s)
	}
	if s.Agg != Sum && s.Agg != Count {
		return nil, notDerivable("raw-from-sliding", s.Win, Window{}, "only SUM/COUNT sequences are invertible")
	}
	h, w := s.Win.Following, s.Win.Size()
	raw := make([]float64, s.N)
	for k := 1; k <= s.N; k++ {
		v := 0.0
		iup := ceilDiv(k, w)
		for i := 0; i <= iup; i++ {
			v += s.At(k-h-i*w) - s.At(k-h-1-i*w)
		}
		raw[k-1] = v
	}
	return raw, nil
}

// ReconstructRawFromSlidingRecursive recovers the raw data using the
// neighbour recursion of §3.2,
//
//	x_k = x̃_{k−h} − x̃_{k−h−1} + x_{k−W}
//
// which needs only O(1) work per position once positions are visited in
// increasing order (the paper's "internal cache" variant).
func ReconstructRawFromSlidingRecursive(s *Sequence) ([]float64, error) {
	if s.Agg != Sum && s.Agg != Count {
		return nil, notDerivable("raw-from-sliding", s.Win, Window{}, "only SUM/COUNT sequences are invertible")
	}
	if s.Win.Cumulative {
		return ReconstructRawFromCumulative(s)
	}
	h, w := s.Win.Following, s.Win.Size()
	raw := make([]float64, s.N)
	prior := func(k int) float64 { // x_{k} for k already computed or ≤ 0
		if k < 1 {
			return 0
		}
		return raw[k-1]
	}
	for k := 1; k <= s.N; k++ {
		raw[k-1] = s.At(k-h) - s.At(k-h-1) + prior(k-w)
	}
	return raw, nil
}

// RangeSum computes Σ_{j=a}^{b} x_j from a complete sliding-window SUM
// sequence without touching raw data, via the prefix-sum telescoping
// C(b) = Σ_{i≥0} x̃_{b−h−iW} (the positive sequence of MinOA): the windows
// of x̃_{b−h}, x̃_{b−h−W}, … tile (−∞, b] exactly once.
func RangeSum(s *Sequence, a, b int) (float64, error) {
	if s.Agg != Sum && s.Agg != Count {
		return 0, notDerivable("range-sum", s.Win, Window{}, "requires SUM or COUNT")
	}
	if a > b {
		return 0, nil
	}
	if s.Win.Cumulative {
		return s.At(b) - s.At(a-1), nil
	}
	return prefixFromSliding(s, b) - prefixFromSliding(s, a-1), nil
}

// prefixFromSliding returns C(b) = Σ_{j≤b} x_j from a complete sliding SUM
// sequence.
func prefixFromSliding(s *Sequence, b int) float64 {
	h, w := s.Win.Following, s.Win.Size()
	v := 0.0
	// Terms vanish once b−h−iW ≤ −h, i.e. i ≥ b/W.
	iup := ceilDiv(b, w)
	for i := 0; i <= iup; i++ {
		v += s.At(b - h - i*w)
	}
	return v
}

// DeriveCumulativeFromSliding materializes the cumulative sequence from a
// complete sliding-window SUM sequence (a corollary of the MinOA positive
// sequence; not spelled out in the paper but implied by §5).
func DeriveCumulativeFromSliding(s *Sequence) (*Sequence, error) {
	if s.Agg != Sum && s.Agg != Count {
		return nil, notDerivable("cumulative-from-sliding", s.Win, Cumul(), "requires SUM or COUNT")
	}
	if s.Win.Cumulative {
		out := newSequence(Cumul(), s.Agg, s.N)
		for k := 0; k <= s.N; k++ {
			out.set(k, s.At(k), true)
		}
		return out, nil
	}
	out := newSequence(Cumul(), s.Agg, s.N)
	// Incremental: C(k) = C(k-1) + x_k, with x_k reconstructed pipelined.
	raw, err := ReconstructRawFromSlidingRecursive(s)
	if err != nil {
		return nil, err
	}
	acc := 0.0
	out.set(0, 0, true)
	for k := 1; k <= s.N; k++ {
		acc += raw[k-1]
		out.set(k, acc, true)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// §4 — the MaxO ("maximal overlapping") algorithm
// ---------------------------------------------------------------------------

// MaxOAFactors carries the characteristic quantities of a MaxOA derivation:
// the coverage factors Δl, Δh and the overlap factors Δp, Δq (§4.1/§4.2).
// Note Δl + Δp = Δh + Δq = W_x, the source window size, which is why the
// relational pattern of Fig. 10 joins on residues modulo Δl+Δp.
type MaxOAFactors struct {
	DeltaL int // Δl = l_y − l_x
	DeltaH int // Δh = h_y − h_x
	DeltaP int // Δp = 1 + l_x + h_x − Δl
	DeltaQ int // Δq = 1 + l_x + h_x − Δh
	Wx     int // source window size
}

// ComputeMaxOAFactors validates a MaxOA derivation and returns its factors.
// The preconditions follow §4: the target window must extend the source on
// both sides (Δl ≥ 0, Δh ≥ 0), and for the *recursive* compensation-sequence
// form each extension must leave a non-empty overlap (Δl ≤ l_x+h_x and
// Δh ≤ l_x+h_x — the paper's "window size of the query must not be larger
// than twice the window size of the materialized view").
func ComputeMaxOAFactors(src, dst Window) (MaxOAFactors, error) {
	var f MaxOAFactors
	if src.Cumulative || dst.Cumulative {
		return f, notDerivable("MaxOA", src, dst, "windows must be sliding")
	}
	f.DeltaL = dst.Preceding - src.Preceding
	f.DeltaH = dst.Following - src.Following
	f.Wx = src.Size()
	f.DeltaP = f.Wx - f.DeltaL
	f.DeltaQ = f.Wx - f.DeltaH
	if f.DeltaL < 0 || f.DeltaH < 0 {
		return f, notDerivable("MaxOA", src, dst, "target window must contain the source window (Δl ≥ 0, Δh ≥ 0)")
	}
	return f, nil
}

// MaxOA derives the sequence for target from a complete materialized
// sliding-window sequence using the explicit form of the maximal-overlapping
// algorithm (§4.1/§4.2):
//
//	ỹ_k = x̃_k + Σ_{i≥1}( x̃_{k−iW_x} − x̃_{k−Δl−iW_x} )   — left extension
//	          + Σ_{i≥1}( x̃_{k+iW_x} − x̃_{k+Δh+iW_x} )   — right extension
//
// Each left pair telescopes to the raw range [k−l_y, k−l_x−1] and each right
// pair to [k+h_x+1, k+h_y]. The explicit form is valid for every Δl, Δh ≥ 0;
// the 2×-window restriction the paper states is only needed by the recursive
// compensation-sequence form (see MaxOARecursive).
//
// Supported aggregates: SUM and COUNT. For MIN/MAX use MaxOAMinMax; for AVG
// derive SUM and COUNT views separately and combine with DeriveAvg.
func MaxOA(src *Sequence, target Window) (*Sequence, error) {
	if src.Agg != Sum && src.Agg != Count {
		return nil, notDerivable("MaxOA", src.Win, target, fmt.Sprintf("aggregate %v not supported (use MaxOAMinMax for MIN/MAX)", src.Agg))
	}
	if err := target.Validate(); err != nil {
		return nil, err
	}
	f, err := ComputeMaxOAFactors(src.Win, target)
	if err != nil {
		return nil, err
	}
	out := newSequence(target, src.Agg, src.N)
	hx, lx, wx := src.Win.Following, src.Win.Preceding, f.Wx
	for k := out.lo; k <= out.Hi(); k++ {
		v := src.At(k)
		// Left extension: terms vanish once k−iW_x ≤ −h_x.
		iupL := ceilDiv(k+hx, wx)
		for i := 1; i <= iupL; i++ {
			v += src.At(k-i*wx) - src.At(k-f.DeltaL-i*wx)
		}
		// Right extension: terms vanish once k+Δh+iW_x > n+l_x (the larger
		// argument) — iterate until the smaller argument passes the trailer.
		iupR := ceilDiv(src.N+lx-k, wx) + 1
		for i := 1; i <= iupR; i++ {
			v += src.At(k+i*wx) - src.At(k+f.DeltaH+i*wx)
		}
		out.set(k, v, true)
	}
	return out, nil
}

// MaxOARecursive derives the target sequence using the paper's recursive
// form with explicit compensation sequences (§4.1, extended to the general
// double-sided case of §4.2):
//
//	ỹ_k = x̃_k + (x̃_{k−Δl} − z̃L_k) + (x̃_{k+Δh} − z̃H_k)
//
// where the left compensation sequence z̃L (window (l_x, h_x−Δl), the overlap
// of x̃_k and x̃_{k−Δl}) obeys
//
//	z̃L_k = x̃_{k−Δl} − x̃_{k−(Δl+Δp)} + z̃L_{k−(Δl+Δp)}
//
// and the right compensation sequence z̃H (window (l_x−Δh, h_x)) obeys the
// mirrored recursion with period Δh+Δq. Requires Δp ≥ 1 and Δq ≥ 1, i.e. the
// 2×-window precondition of §4. Each position costs O(1) sequence lookups
// once the compensation values are cached per residue class — the pipelined
// execution style of §2.2 applied to derivation.
func MaxOARecursive(src *Sequence, target Window) (*Sequence, error) {
	if src.Agg != Sum && src.Agg != Count {
		return nil, notDerivable("MaxOA", src.Win, target, "recursive form requires SUM or COUNT")
	}
	if err := target.Validate(); err != nil {
		return nil, err
	}
	f, err := ComputeMaxOAFactors(src.Win, target)
	if err != nil {
		return nil, err
	}
	if f.DeltaL > 0 && f.DeltaP < 1 {
		return nil, notDerivable("MaxOA", src.Win, target, "recursive form needs Δp ≥ 1 (target at most twice the source window)")
	}
	if f.DeltaH > 0 && f.DeltaQ < 1 {
		return nil, notDerivable("MaxOA", src.Win, target, "recursive form needs Δq ≥ 1 (target at most twice the source window)")
	}
	out := newSequence(target, src.Agg, src.N)
	lx, hx := src.Win.Preceding, src.Win.Following

	// Left compensation values per position, filled iteratively in
	// increasing position order along each residue class mod (Δl+Δp) = W_x
	// (iterative to keep stack depth constant on long sequences).
	zL := make(map[int]float64)
	leftComp := func(k int) float64 {
		// z̃L covers [k−l_x, k−Δl+h_x]; empty contribution once the window
		// lies entirely left of raw position 1.
		if k-f.DeltaL+hx < 1 {
			return 0
		}
		if v, ok := zL[k]; ok {
			return v
		}
		// Walk down the residue class to the first known (or empty) value,
		// then roll forward.
		start := k
		for start-f.DeltaL+hx >= 1 {
			if _, ok := zL[start]; ok {
				break
			}
			start -= f.DeltaL + f.DeltaP
		}
		prev := 0.0
		if v, ok := zL[start]; ok {
			prev = v
			start += f.DeltaL + f.DeltaP
		} else {
			start += f.DeltaL + f.DeltaP // first position with a live window
		}
		for j := start; j <= k; j += f.DeltaL + f.DeltaP {
			prev = src.At(j-f.DeltaL) - src.At(j-(f.DeltaL+f.DeltaP)) + prev
			zL[j] = prev
		}
		return zL[k]
	}
	zH := make(map[int]float64)
	rightComp := func(k int) float64 {
		// z̃H covers [k+Δh−l_x, k+h_x]; empty once entirely right of n.
		if k+f.DeltaH-lx > src.N {
			return 0
		}
		if v, ok := zH[k]; ok {
			return v
		}
		start := k
		for start+f.DeltaH-lx <= src.N {
			if _, ok := zH[start]; ok {
				break
			}
			start += f.DeltaH + f.DeltaQ
		}
		prev := 0.0
		if v, ok := zH[start]; ok {
			prev = v
			start -= f.DeltaH + f.DeltaQ
		} else {
			start -= f.DeltaH + f.DeltaQ
		}
		for j := start; j >= k; j -= f.DeltaH + f.DeltaQ {
			prev = src.At(j+f.DeltaH) - src.At(j+(f.DeltaH+f.DeltaQ)) + prev
			zH[j] = prev
		}
		return zH[k]
	}

	for k := out.lo; k <= out.Hi(); k++ {
		v := src.At(k)
		if f.DeltaL > 0 {
			v += src.At(k-f.DeltaL) - leftComp(k)
		}
		if f.DeltaH > 0 {
			v += src.At(k+f.DeltaH) - rightComp(k)
		}
		out.set(k, v, true)
	}
	return out, nil
}

// MaxOAMinMax derives a MIN or MAX sequence with the maximal-overlapping
// principle (§4.2): because MIN/MAX are idempotent under overlap,
//
//	ỹ_k = min/max( x̃_{k−Δl}, x̃_{k+Δh} )
//
// provided the two shifted source windows cover the target window, which
// requires Δl + Δh ≤ W_x (windows overlap or touch). This is the case MinOA
// cannot handle at all — the paper's argument for MaxOA's broader
// applicability.
func MaxOAMinMax(src *Sequence, target Window) (*Sequence, error) {
	if src.Agg != Min && src.Agg != Max {
		return nil, notDerivable("MaxOA-minmax", src.Win, target, "aggregate must be MIN or MAX")
	}
	if err := target.Validate(); err != nil {
		return nil, err
	}
	f, err := ComputeMaxOAFactors(src.Win, target)
	if err != nil {
		return nil, err
	}
	if f.DeltaL+f.DeltaH > f.Wx {
		return nil, notDerivable("MaxOA-minmax", src.Win, target,
			fmt.Sprintf("shifted windows do not cover the target (Δl+Δh = %d > W_x = %d)", f.DeltaL+f.DeltaH, f.Wx))
	}
	out := newSequence(target, src.Agg, src.N)
	for k := out.lo; k <= out.Hi(); k++ {
		a, aok := src.AtOK(k - f.DeltaL)
		b, bok := src.AtOK(k + f.DeltaH)
		switch {
		case !aok && !bok:
			out.set(k, 0, false)
		case !aok:
			out.set(k, b, true)
		case !bok:
			out.set(k, a, true)
		default:
			if src.Agg == Min {
				out.set(k, math.Min(a, b), true)
			} else {
				out.set(k, math.Max(a, b), true)
			}
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// §5 — the MinO ("minimal overlapping") algorithm
// ---------------------------------------------------------------------------

// MinOAFactors carries the characteristic quantities of a MinOA derivation.
type MinOAFactors struct {
	DeltaL int // Δl = l_y − l_x (may be negative: MinOA handles any target)
	DeltaH int // Δh = h_y − h_x (may be negative)
	Wx     int // source window size
}

// ComputeMinOAFactors validates a MinOA derivation and returns its factors.
// MinOA places no size restriction on the target window: the positive and
// negative telescoping sequences tile (−∞, k+h_y] and (−∞, k−l_y−1]
// regardless of how the windows relate. The only requirements are sliding
// windows and a subtractable aggregate.
func ComputeMinOAFactors(src, dst Window) (MinOAFactors, error) {
	var f MinOAFactors
	if src.Cumulative || dst.Cumulative {
		return f, notDerivable("MinOA", src, dst, "windows must be sliding")
	}
	f.DeltaL = dst.Preceding - src.Preceding
	f.DeltaH = dst.Following - src.Following
	f.Wx = src.Size()
	return f, nil
}

// MinOA derives the target sequence from a complete materialized sliding
// SUM/COUNT sequence using the minimal-overlapping algorithm (§5):
//
//	ỹ_k = Σ_{i≥0} x̃_{k+Δh−iW_x}  −  Σ_{i≥1} x̃_{k−Δl−iW_x}
//
// The positive sequence's head window is right-justified with ỹ_k's upper
// bound and its left shifts by W_x tile (−∞, k+h_y]; the negative sequence's
// head (at k−Δl−W_x = k−l_y−h_x−1) is right-justified with k−l_y−1 and tiles
// (−∞, k−l_y−1]. Their difference is exactly the window sum. Summations stop
// at i_up = ⌈(k+h_y)/W_x⌉ (positive) as the paper notes, and analogously for
// the negative part.
//
// MIN/MAX are *not* derivable with MinOA — the tiles meet the target window
// only after subtraction, which has no MIN/MAX analogue.
func MinOA(src *Sequence, target Window) (*Sequence, error) {
	if src.Agg != Sum && src.Agg != Count {
		return nil, notDerivable("MinOA", src.Win, target, fmt.Sprintf("aggregate %v has no inverse", src.Agg))
	}
	if err := target.Validate(); err != nil {
		return nil, err
	}
	f, err := ComputeMinOAFactors(src.Win, target)
	if err != nil {
		return nil, err
	}
	hx, wx := src.Win.Following, f.Wx
	out := newSequence(target, src.Agg, src.N)
	for k := out.lo; k <= out.Hi(); k++ {
		v := 0.0
		// Positive: terms vanish once k+Δh−iW_x ≤ −h_x.
		iupP := ceilDiv(k+f.DeltaH+hx, wx)
		for i := 0; i <= iupP; i++ {
			v += src.At(k + f.DeltaH - i*wx)
		}
		// Negative: terms vanish once k−Δl−iW_x ≤ −h_x.
		iupN := ceilDiv(k-f.DeltaL+hx, wx)
		for i := 1; i <= iupN; i++ {
			v -= src.At(k - f.DeltaL - i*wx)
		}
		out.set(k, v, true)
	}
	return out, nil
}

// DeriveAvg combines separately derived SUM and COUNT sequences into the AVG
// sequence for the same window — the route the paper prescribes for AVG
// ("AVG may be directly derived from SUM and COUNT", §2.1).
func DeriveAvg(sum, count *Sequence) (*Sequence, error) {
	if sum.Agg != Sum || count.Agg != Count {
		return nil, fmt.Errorf("DeriveAvg: want (SUM, COUNT) sequences, got (%v, %v)", sum.Agg, count.Agg)
	}
	if !sum.Win.Equal(count.Win) || sum.N != count.N {
		return nil, fmt.Errorf("DeriveAvg: SUM and COUNT sequences disagree on window or cardinality")
	}
	out := newSequence(sum.Win, Avg, sum.N)
	for k := out.lo; k <= out.Hi(); k++ {
		c := count.At(k)
		if c == 0 {
			out.set(k, 0, true)
			continue
		}
		out.set(k, sum.At(k)/c, true)
	}
	return out, nil
}

// Derive picks a derivation strategy automatically: cumulative sources use
// the §3.1 rules, MIN/MAX use MaxOAMinMax, and SUM/COUNT sliding sources use
// MinOA (which has no window-size restriction). It is the entry point the
// engine's view-matching rewriter calls.
func Derive(src *Sequence, target Window) (*Sequence, error) {
	switch {
	case src.Win.Cumulative:
		return DeriveSlidingFromCumulative(src, target)
	case src.Agg == Min || src.Agg == Max:
		return MaxOAMinMax(src, target)
	default:
		return MinOA(src, target)
	}
}
