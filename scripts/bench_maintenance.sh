#!/usr/bin/env bash
# bench_maintenance.sh — §2.3 incremental maintenance vs. full refresh.
#
# Runs rfbench's maintenance experiment (50 single-row UPDATEs timed
# individually, 5 REFRESH trials, medians per sequence size) plus the
# delta-vs-full grid (UPDATE batches of 0.1%/1%/10% of the table at
# 10k/100k/1M rows, folded eagerly, against a full REFRESH) and records the
# JSON report in BENCH_maintenance.json at the repo root. The headline
# numbers are refresh_over_incremental (one update vs. one refresh) and
# refresh_over_delta (a whole delta batch vs. one refresh — the §2.3 payoff
# that must stay ≥5x at the 1M-row/0.1%-delta point).
#
# Usage: scripts/bench_maintenance.sh [-quick]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

ARGS=()
if [[ "${1:-}" == "-quick" ]]; then
  ARGS+=(-quick)
fi

go run ./cmd/rfbench -exp maintenance -json "${ARGS[@]}" > "$ROOT/BENCH_maintenance.json"

echo "wrote $ROOT/BENCH_maintenance.json" >&2
python3 - "$ROOT/BENCH_maintenance.json" <<'PY' >&2
import json, sys
d = json.load(open(sys.argv[1]))
for r in d["runs"]:
    print(f'n={r["n"]}: incremental {r["incremental_median_ms"]} ms, '
          f'refresh {r["refresh_median_ms"]} ms, '
          f'ratio {r["refresh_over_incremental"]}x')
for r in d.get("delta_ratios") or []:
    print(f'n={r["n"]} delta={r["delta_frac"]:.1%} ({r["delta_ops"]} ops): '
          f'batch {r["delta_total_ms"]} ms, refresh {r["refresh_median_ms"]} ms, '
          f'ratio {r["refresh_over_delta"]}x')
PY
