// Quickstart: the two faces of rfview.
//
//  1. The sequence algebra — compute a complete simple sequence, derive a
//     different window from it without touching raw data (MaxOA/MinOA), and
//     verify against recomputation.
//  2. The SQL surface — the same thing through reporting functions and a
//     materialized sequence view.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"rfview"
)

func main() {
	algebra()
	sql()
}

func algebra() {
	fmt.Println("=== sequence algebra (§2–§5) ===")
	raw := []float64{4, 8, 15, 16, 23, 42, 8, 4, 2, 1}

	// Materialize the complete sequence x̃ = (2,1): SUM over the window
	// [k-2, k+1], including header and trailer positions.
	x, err := rfview.SeqCompute(raw, rfview.Sliding(2, 1), rfview.Sum)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x̃ = (2,1) body:   %v\n", x.Body())

	// Derive ỹ = (3,1) from x̃ alone — the paper's Fig. 6 example.
	y, err := rfview.SeqMaxOA(x, rfview.Sliding(3, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ỹ = (3,1) MaxOA:  %v\n", y.Body())

	// MinOA handles arbitrary target windows, even narrower ones.
	z, err := rfview.SeqMinOA(x, rfview.Sliding(1, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ỹ = (1,1) MinOA:  %v\n", z.Body())

	// Check against direct recomputation.
	want, _ := rfview.SeqCompute(raw, rfview.Sliding(3, 1), rfview.Sum)
	fmt.Printf("recomputed (3,1): %v\n", want.Body())

	// The raw data is recoverable from the complete sequence (§3.2).
	back, err := rfview.SeqReconstructRaw(x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed raw: %v\n\n", back)
}

func sql() {
	fmt.Println("=== SQL surface ===")
	ctx := context.Background()
	db := rfview.OpenDefault()
	script := `
	  CREATE TABLE seq (pos INTEGER, val INTEGER);
	  INSERT INTO seq VALUES (1,4),(2,8),(3,15),(4,16),(5,23),(6,42),(7,8),(8,4),(9,2),(10,1);
	  CREATE UNIQUE INDEX seq_pk ON seq (pos);
	  CREATE MATERIALIZED VIEW matseq AS
	    SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val
	    FROM seq;
	`
	if _, err := db.ExecAllContext(ctx, script); err != nil {
		log.Fatal(err)
	}
	// This query's window (3,1) differs from the view's (2,1); the engine
	// answers it from the view via the MaxOA/MinOA rewrite.
	res, err := db.QueryContext(ctx, `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w FROM seq ORDER BY pos`)
	if err != nil {
		log.Fatal(err)
	}
	if res.Derivation != nil {
		fmt.Printf("answered from view %q via %s (Δl=%d, Δh=%d, W_x=%d)\n",
			res.Derivation.View.Name, res.Derivation.Strategy,
			res.Derivation.DeltaL, res.Derivation.DeltaH, res.Derivation.Wx)
	}
	for _, row := range res.Rows {
		fmt.Printf("  pos=%2v  w=%v\n", row[0], row[1])
	}
}
