#!/usr/bin/env bash
# bench_window.sh — partition-parallel Window operator scaling profile.
#
# Runs rfbench's window experiment (64 partitions x 500 rows, workers 1/2/4,
# medians over 5 trials, results cross-checked against the sequential run)
# and records the JSON report in BENCH_window.json next to this script's
# repo root. On a single-core host the report documents the serial cap
# instead of a speedup — see the "note" field.
#
# Usage: scripts/bench_window.sh [-quick]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

ARGS=()
if [[ "${1:-}" == "-quick" ]]; then
  ARGS+=(-quick)
fi

go run ./cmd/rfbench -exp window -json "${ARGS[@]}" > "$ROOT/BENCH_window.json"

echo "wrote $ROOT/BENCH_window.json" >&2
python3 - "$ROOT/BENCH_window.json" <<'PY' >&2
import json, sys
d = json.load(open(sys.argv[1]))
meds = {r["workers"]: r["median_ms"] for r in d["runs"]}
allocs = {r["workers"]: r.get("allocs_per_op") for r in d["runs"]}
print("median ms by workers:", meds,
      "| best:", d.get("best_workers"),
      "| speedup vs sequential:", d.get("speedup_best_vs_sequential"))
print("allocs/op by workers:", allocs,
      "| b/op by workers:", {r["workers"]: r.get("b_per_op") for r in d["runs"]})
if "vectorized_vs_boxed" in d:
    v = d["vectorized_vs_boxed"]
    print("vectorized vs boxed (workers=1): median speedup", v["median_speedup"],
          "| allocs ratio", v["allocs_ratio"], "| bytes ratio", v["bytes_ratio"])
if "spill" in d:
    s = d["spill"]
    print("spill (workers=1, tiny budget): median ms", s["median_ms"],
          "| runs", s["spill_runs"], "| bytes", s["spill_bytes"],
          "| slowdown vs in-memory:", s.get("slowdown_vs_in_memory"))
if "multi_function" in d:
    print("multi-function grid (shared vs unshared class sorts):")
    for r in d["multi_function"]["runs"]:
        print("  over=%-2d classes=%d | sorts performed=%d reused=%d | shared %sms unshared %sms | speedup %s" % (
            r["over_clauses"], r["classes"],
            r["sorts_performed"], r["sorts_shared"],
            r["shared_median_ms"], r["unshared_median_ms"],
            r.get("speedup_shared", "n/a")))
if "note" in d:
    print("note:", d["note"])
PY
