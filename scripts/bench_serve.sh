#!/usr/bin/env bash
# bench_serve.sh — serving throughput profile for rfserverd.
#
# Builds rfserverd + rfload, loads a 200-row dense sequence with a (2,2)
# SUM view, and measures closed-loop qps of the derived (3,3) window query
# at 1, 4, and 16 client connections, plus a ping run at the same fan-outs
# as the protocol-only ceiling, plus a readers-vs-writers block: the same
# fan-outs under a 90/10 read/write mix, showing reads scale while writers
# commit concurrently (MVCC snapshot isolation). Results land in
# BENCH_serve.json next to this script's repo root.
#
# Usage: scripts/bench_serve.sh [duration-per-run, default 5s]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
DUR="${1:-5s}"
WORK="$(mktemp -d)"
trap 'kill "$SRV_PID" 2>/dev/null || true; wait "$SRV_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

cd "$ROOT"
go build -o "$WORK/rfserverd" ./cmd/rfserverd
go build -o "$WORK/rfload" ./cmd/rfload

cat > "$WORK/init.sql" <<'SQL'
CREATE TABLE seq (pos INTEGER, val INTEGER);
SQL
{
  printf 'INSERT INTO seq (pos, val) VALUES (1, 1)'
  for i in $(seq 2 200); do printf ', (%d, %d)' "$i" "$((i % 7 + 1))"; done
  printf ';\n'
  cat <<'SQL'
CREATE UNIQUE INDEX seq_pos ON seq (pos);
CREATE MATERIALIZED VIEW mv_seq AS
  SELECT pos, SUM(val) OVER (ORDER BY pos
    ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS val FROM seq;
SQL
} >> "$WORK/init.sql"

ADDR="127.0.0.1:7071"
"$WORK/rfserverd" -addr "$ADDR" -init "$WORK/init.sql" > "$WORK/server.log" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
  "$WORK/rfload" -addr "$ADDR" -probe && break
  sleep 0.1
done

QUERY='SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 3 FOLLOWING) AS s FROM seq'
# The write side updates a small hot set (rows 96..104 via a range predicate
# would scan; a single hot row keeps it a point update). Conflicts between
# concurrent auto-commit updates are expected and counted, not errors.
WRITE='UPDATE seq SET val = val + 1 WHERE pos = 100'
MIXED_RATIO=0.9

run() { # run <clients> <extra rfload args...>
  local n="$1"; shift
  "$WORK/rfload" -addr "$ADDR" -clients "$n" -duration "$DUR" -warmup 100 -json "$@"
}

# Scheduler noise on small hosts swings single-client closed-loop numbers
# by tens of percent, so every configuration runs TRIALS times, interleaved
# to spread drift, and the summary uses per-configuration medians.
TRIALS="${TRIALS:-3}"
: > "$WORK/trials.jsonl"
for t in $(seq 1 "$TRIALS"); do
  echo "trial $t/$TRIALS: query at 1/4/16 clients, ping at 1/16, mixed at 1/4/16 (${DUR} each)..." >&2
  run 1 -sql "$QUERY"  >> "$WORK/trials.jsonl"
  run 4 -sql "$QUERY"  >> "$WORK/trials.jsonl"
  run 16 -sql "$QUERY" >> "$WORK/trials.jsonl"
  run 1 -op ping       >> "$WORK/trials.jsonl"
  run 16 -op ping      >> "$WORK/trials.jsonl"
  run 1 -sql "$QUERY" -mixed "$MIXED_RATIO" -write-sql "$WRITE"  >> "$WORK/trials.jsonl"
  run 4 -sql "$QUERY" -mixed "$MIXED_RATIO" -write-sql "$WRITE"  >> "$WORK/trials.jsonl"
  run 16 -sql "$QUERY" -mixed "$MIXED_RATIO" -write-sql "$WRITE" >> "$WORK/trials.jsonl"
done

kill "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true

TRIALS_FILE="$WORK/trials.jsonl" QUERY="$QUERY" WRITE="$WRITE" MIXED_RATIO="$MIXED_RATIO" python3 - > "$ROOT/BENCH_serve.json" <<'PY'
import json, os, platform, statistics

trials = [json.loads(line) for line in open(os.environ["TRIALS_FILE"]) if line.strip()]
# Mixed runs carry mixed_ratio; of the rest, rfload emits rows_per_result > 0
# for query runs and 0 for ping runs.
mixed = [t for t in trials if t.get("mixed_ratio")]
pure = [t for t in trials if not t.get("mixed_ratio")]
query = [t for t in pure if t["rows_per_result"] > 0]
ping = [t for t in pure if t["rows_per_result"] == 0]

def summarize(runs, clients):
    rs = [r for r in runs if r["clients"] == clients]
    return {
        "clients": clients,
        "qps_median": round(statistics.median(r["qps"] for r in rs), 1),
        "p50_us_median": statistics.median(r["p50_us"] for r in rs),
        "trials": rs,
    }

def summarize_mixed(runs, clients):
    rs = [r for r in runs if r["clients"] == clients]
    return {
        "clients": clients,
        "read_qps_median": round(statistics.median(r.get("read_qps", 0) for r in rs), 1),
        "write_qps_median": round(statistics.median(r.get("write_qps", 0) for r in rs), 1),
        "conflicts_total": sum(r.get("conflicts", 0) for r in rs),
        "trials": rs,
    }

q = {n: summarize(query, n) for n in (1, 4, 16)}
p = {n: summarize(ping, n) for n in (1, 16)}
m = {n: summarize_mixed(mixed, n) for n in (1, 4, 16)}
out = {
    "benchmark": "rfserverd closed-loop serving throughput",
    "workload": {
        "sql": os.environ["QUERY"],
        "rows": 200,
        "view": "mv_seq (2 PRECEDING, 2 FOLLOWING) SUM",
        "note": "every query rides the MaxOA/MinOA derivation rewrite; "
                "steady state is served from the engine plan/result cache",
    },
    "host": {"machine": platform.machine(), "cpus": os.cpu_count()},
    "runs": [q[1], q[4], q[16]],
    "speedup_16v1": round(q[16]["qps_median"] / q[1]["qps_median"], 3),
    "ping_ceiling": {
        "description": "same fan-out, op=ping: no SQL, no engine — an upper "
                       "bound on what concurrency can buy at the protocol level "
                       "on this host",
        "runs": [p[1], p[16]],
        "speedup_16v1": round(p[16]["qps_median"] / p[1]["qps_median"], 3),
    },
    "readers_vs_writers": {
        "description": "same fan-out, each client issuing the read with "
                       "probability %s and the hot-row update otherwise: reads "
                       "run lock-free against MVCC snapshots, so read "
                       "throughput scales while writers commit concurrently; "
                       "write-write conflicts abort-and-count rather than "
                       "block" % os.environ["MIXED_RATIO"],
        "read_ratio": float(os.environ["MIXED_RATIO"]),
        "write_sql": os.environ["WRITE"],
        "runs": [m[1], m[4], m[16]],
        "read_speedup_16v1": round(
            m[16]["read_qps_median"] / m[1]["read_qps_median"], 3)
            if m[1]["read_qps_median"] else None,
    },
}
if (os.cpu_count() or 1) == 1:
    out["note"] = (
        "single-CPU host: server goroutines, client processes, and the kernel "
        "share one core, so added clients can only amortize scheduling gaps, "
        "not execute in parallel; the ping ceiling bounds the reachable speedup"
    )
print(json.dumps(out, indent=2))
PY

echo "wrote $ROOT/BENCH_serve.json" >&2
python3 -c 'import json;d=json.load(open("'"$ROOT"'/BENCH_serve.json"));print("qps:",[r["qps_median"] for r in d["runs"]],"speedup 16v1:",d["speedup_16v1"],"ping ceiling:",d["ping_ceiling"]["speedup_16v1"])' >&2
