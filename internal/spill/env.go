package spill

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// runFilePrefix and runFileSuffix frame the spill-file namespace inside the
// temp directory; the startup sweep removes exactly this namespace and
// nothing else, so a data directory shared with the WAL stays untouched.
const (
	runFilePrefix = "run-"
	runFileSuffix = ".spill"
)

// Heap files — the paged-storage backing files in internal/storage — share
// the Env so they inherit the same lifecycle: swept at startup, removed at
// Close. The ".heap.tmp" suffix marks them as rebuildable scratch (the WAL
// plus snapshots are the durable copy), which is what licenses the sweep.
const (
	heapFilePrefix = "heap-"
	heapFileSuffix = ".heap.tmp"
)

// Env owns the directory spill runs live in. With a configured directory
// (the server's <data-dir>/tmp) the directory is created on first use and
// stale run files — left by a process that died mid-spill — are swept then;
// with no directory a private one is created under os.TempDir. Close removes
// every run file (and the private directory), so a clean shutdown leaves no
// trace. A directory must be owned by exactly one Env at a time, the same
// single-owner rule the WAL imposes on its data directory.
type Env struct {
	configured string // "" = private temp dir

	mu      sync.Mutex
	dir     string // resolved directory, once created
	private bool   // dir is ours alone: remove it wholesale on Close
	swept   int    // stale files removed by the startup sweep
	seq     atomic.Uint64
	closed  bool
}

// NewEnv returns an environment rooted at dir, or at a private temp
// directory when dir is empty. No filesystem work happens until the first
// run file is created (or Sweep is called), so engines that never spill
// never touch the disk.
func NewEnv(dir string) *Env {
	return &Env{configured: dir}
}

// Dir resolves the spill directory, creating it and sweeping stale run
// files on the first call.
func (e *Env) Dir() (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dirLocked()
}

func (e *Env) dirLocked() (string, error) {
	if e.closed {
		return "", fmt.Errorf("spill: env closed")
	}
	if e.dir != "" {
		return e.dir, nil
	}
	if e.configured == "" {
		d, err := os.MkdirTemp("", "rfview-spill-")
		if err != nil {
			return "", fmt.Errorf("spill: temp dir: %w", err)
		}
		e.dir = d
		e.private = true
		return e.dir, nil
	}
	if err := os.MkdirAll(e.configured, 0o755); err != nil {
		return "", fmt.Errorf("spill: %w", err)
	}
	// The sweep runs before this env has created any file, so everything in
	// the namespace is a stale orphan from a dead owner.
	n, err := sweepDir(e.configured)
	if err != nil {
		return "", err
	}
	e.dir = e.configured
	e.swept = n
	return e.dir, nil
}

// Sweep eagerly resolves the directory (sweeping stale run files from a
// prior owner) and reports how many files have been removed. Servers call
// it at startup so a crash mid-spill cannot leak disk across restarts.
func (e *Env) Sweep() (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.dirLocked(); err != nil {
		return 0, err
	}
	return e.swept, nil
}

// sweepDir removes every run file and heap file in dir.
func sweepDir(dir string) (int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("spill: sweep: %w", err)
	}
	removed := 0
	for _, ent := range ents {
		name := ent.Name()
		isRun := strings.HasPrefix(name, runFilePrefix) && strings.HasSuffix(name, runFileSuffix)
		isHeap := strings.HasPrefix(name, heapFilePrefix) && strings.HasSuffix(name, heapFileSuffix)
		if !isRun && !isHeap {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err == nil {
			removed++
		}
	}
	return removed, nil
}

// CreateRun creates a fresh run file. The name embeds the pid (for
// debuggability of a crashed server's leftovers) and a per-env sequence
// number.
func (e *Env) CreateRun() (*os.File, error) {
	dir, err := e.Dir()
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s%d-%d%s", runFilePrefix, os.Getpid(), e.seq.Add(1), runFileSuffix)
	f, err := os.OpenFile(filepath.Join(dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("spill: create run: %w", err)
	}
	return f, nil
}

// CreateHeap creates a fresh heap file for a paged table. The tag (usually
// the table name, sanitized) makes a crashed server's leftovers attributable;
// the pid and sequence number make the name unique.
func (e *Env) CreateHeap(tag string) (*os.File, error) {
	dir, err := e.Dir()
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s%d-%d-%s%s", heapFilePrefix, os.Getpid(), e.seq.Add(1), sanitizeTag(tag), heapFileSuffix)
	f, err := os.OpenFile(filepath.Join(dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("spill: create heap: %w", err)
	}
	return f, nil
}

// sanitizeTag keeps heap-file names portable: anything outside a small safe
// alphabet becomes '_', and long tags are truncated.
func sanitizeTag(tag string) string {
	const maxTag = 40
	b := make([]byte, 0, len(tag))
	for i := 0; i < len(tag) && len(b) < maxTag; i++ {
		c := tag[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	if len(b) == 0 {
		return "t"
	}
	return string(b)
}

// Close removes this environment's run files; a private temp directory is
// removed wholesale. Idempotent.
func (e *Env) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	if e.dir == "" {
		return nil
	}
	if e.private {
		return os.RemoveAll(e.dir)
	}
	_, err := sweepDir(e.dir)
	return err
}
