package bench

import (
	"fmt"
	"strings"

	"rfview/internal/engine"
	"rfview/internal/exec"
	"rfview/internal/plan"
	"rfview/internal/rewrite"
	"rfview/internal/sqlparser"
)

// PatternsReport renders, for each relational operator pattern in the paper
// (Figs. 2, 4, 10, 13), the SQL our rewriter generates and the physical plan
// the engine runs — the qualitative counterpart to Tables 1 and 2.
func PatternsReport() (string, error) {
	var b strings.Builder

	// A small warehouse: seq with index, a sliding view, and a cumulative
	// view.
	e := engine.New(engine.DefaultOptions())
	if err := LoadSequenceTable(e, 50, 3); err != nil {
		return "", err
	}
	if _, err := e.Exec(`CREATE UNIQUE INDEX seq_pk ON seq (pos)`); err != nil {
		return "", err
	}
	if _, err := e.Exec(Table2ViewDDL); err != nil {
		return "", err
	}
	if _, err := e.Exec(`CREATE MATERIALIZED VIEW cumseq AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS val FROM seq`); err != nil {
		return "", err
	}

	explain := func(stmt sqlparser.SelectStatement) (string, error) {
		op, err := plan.New(e.Cat, plan.DefaultOptions()).PlanSelect(stmt)
		if err != nil {
			return "", err
		}
		return exec.FormatPlan(op), nil
	}
	section := func(title, query, rewritten, planText string) {
		fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
		if query != "" {
			fmt.Fprintf(&b, "query:\n  %s\n", query)
		}
		fmt.Fprintf(&b, "rewritten SQL:\n  %s\nphysical plan:\n", rewritten)
		for _, line := range strings.Split(strings.TrimRight(planText, "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
		b.WriteString("\n")
	}

	// Fig. 2 — self-join simulation of a reporting function.
	fig2src := `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM seq`
	stmt, err := sqlparser.Parse(fig2src)
	if err != nil {
		return "", err
	}
	sj, err := rewrite.SelfJoin(stmt.(*sqlparser.Select))
	if err != nil {
		return "", err
	}
	p, err := explain(sj)
	if err != nil {
		return "", err
	}
	section("Fig. 2 — relational mapping of a reporting function (self join)", fig2src, sj.String(), p)

	// Fig. 4 — reconstructing raw data from a cumulative view.
	cum, _ := e.Cat.MatView("cumseq")
	raw, err := rewrite.RawFromCumulative(cum)
	if err != nil {
		return "", err
	}
	p, err = explain(raw)
	if err != nil {
		return "", err
	}
	section("Fig. 4 — reconstructing raw data values from a cumulative view", "", raw.String(), p)

	// Figs. 10 and 13 — the derivation patterns, both forms.
	derived := []struct {
		title    string
		strategy rewrite.Strategy
		form     rewrite.Form
	}{
		{"Fig. 10 — MaxOA relational operator pattern (disjunctive)", rewrite.StrategyMaxOA, rewrite.FormDisjunctive},
		{"Fig. 10 — MaxOA pattern, UNION-of-simple-predicates form", rewrite.StrategyMaxOA, rewrite.FormUnion},
		{"Fig. 13 — MinOA relational operator pattern (disjunctive)", rewrite.StrategyMinOA, rewrite.FormDisjunctive},
		{"Fig. 13 — MinOA pattern, UNION-of-simple-predicates form", rewrite.StrategyMinOA, rewrite.FormUnion},
	}
	qstmt, err := sqlparser.Parse(Table2Query)
	if err != nil {
		return "", err
	}
	for _, dv := range derived {
		d, err := rewrite.Derive(e.Cat, qstmt.(*sqlparser.Select), dv.strategy, dv.form)
		if err != nil {
			return "", err
		}
		if d == nil {
			return "", fmt.Errorf("patterns: %s produced no derivation", dv.title)
		}
		p, err := explain(d.Stmt)
		if err != nil {
			return "", err
		}
		section(dv.title, strings.Join(strings.Fields(Table2Query), " "), d.Stmt.String(), p)
	}
	return b.String(), nil
}
