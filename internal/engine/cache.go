package engine

import (
	"context"
	"strings"

	"rfview/internal/qcache"
	"rfview/internal/rewrite"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
)

// DefaultPlanCacheCapacity bounds the plan/derivation cache of a new engine.
const DefaultPlanCacheCapacity = 256

// maxCachedResultRows bounds result-row reuse: entries whose result exceeds
// this many rows cache the plan only and re-execute on every hit, keeping
// the cache's memory footprint proportional to its entry count.
const maxCachedResultRows = 16384

// The plan/derivation cache memoizes the front half of read-statement
// processing — parse, view matching, derivation rewrite — keyed by exact SQL
// text. The paper's premise (§1, §8) is that warehouse query load is
// read-dominated and repetitive, so the same reporting-function queries
// recur; on a hit the engine replans straight from the cached
// (post-derivation) statement and executes. Small results are additionally
// cached whole — the §3 caching setting taken to its limit: when nothing a
// query reads has changed, its previous answer *is* the materialized answer
// — so a repeat of an unchanged query skips execution too. Callers must
// treat result rows as immutable; the engine never mutates them.
//
// Validity is version-based, never time-based:
//
//   - every table referenced by the original or rewritten statement is
//     recorded with its storage version counter, which each INSERT, UPDATE,
//     DELETE, and view refresh bumps;
//   - the catalog schema version is recorded, which every DDL bumps — so
//     CREATE MATERIALIZED VIEW invalidates cached plans that could now
//     derive from the new view;
//   - materialized views referenced by the plan are rechecked for freshness
//     on every hit, so a plan derived from a view that went stale errors the
//     same way a cold-path query would.
//
// Invalid entries are dropped lazily when touched; LRU handles the rest.
type cachedPlan struct {
	// exec is the statement to plan: the derivation rewrite when one fired,
	// the original statement otherwise. Planning does not mutate the AST, so
	// concurrent readers replan from the same tree.
	exec sqlparser.SelectStatement
	// derivation and rewrittenSQL replay the provenance of the first run.
	derivation   *rewrite.Derivation
	rewrittenSQL string
	// planText is the plan rendering captured at store time, so EXPLAIN on a
	// cached statement reports the plan that actually runs instead of
	// replanning (or, worse, an empty tree).
	planText string
	// views are the materialized views the plan reads (freshness recheck).
	views []string
	// deps are the tables the plan reads, with their versions at cache time.
	deps []planDep
	// schema is the catalog schema version at cache time.
	schema uint64
	// opts is the engine configuration the plan was built under; rewrite
	// decisions are option-dependent, so any change invalidates.
	opts Options
	// columns/rows hold the full result when hasResult is set (the result
	// fit under maxCachedResultRows); otherwise the entry is plan-only and
	// hits re-execute. Shared across hits: readers must not mutate.
	hasResult bool
	columns   []string
	rows      []sqltypes.Row
}

type planDep struct {
	name    string
	version uint64
}

// execCached answers sql from the plan cache. ok=false means "no valid
// entry" and the caller takes the cold path. Validation and execution run
// inside readStable, so the versions checked and the rows read belong to one
// published state even though no lock is held.
func (e *Engine) execCached(ctx context.Context, sql string, cfg execConfig) (*Result, error, bool) {
	ent, hit := e.plans.Get(sql)
	if !hit {
		return nil, nil, false
	}
	var invalid bool
	res, err := e.readStable(cfg, func(c execConfig) (*Result, error) {
		invalid = false
		if !e.planValid(ent) {
			invalid = true
			return nil, nil
		}
		return e.execFromPlan(ctx, ent, c)
	})
	if invalid {
		e.plans.Remove(sql)
		return nil, nil, false
	}
	return res, err, true
}

// planValid revalidates a cached entry against current versions.
func (e *Engine) planValid(p *cachedPlan) bool {
	if e.Opts != p.opts || e.Cat.SchemaVersion() != p.schema {
		return false
	}
	for _, d := range p.deps {
		t, err := e.Cat.Table(d.name)
		if err != nil || t.Heap.Version() != d.version {
			return false
		}
	}
	return true
}

// execFromPlan runs a validated cache entry under the shared lock.
func (e *Engine) execFromPlan(ctx context.Context, p *cachedPlan, cfg execConfig) (*Result, error) {
	for _, v := range p.views {
		if err := e.Views.CheckFresh(v); err != nil {
			return nil, err
		}
	}
	res := &Result{Derivation: p.derivation, Rewritten: p.rewrittenSQL, execStmt: p.exec, CacheHit: true, planText: p.planText, MaintenanceDrained: cfg.drained}
	if p.hasResult && !cfg.analyze {
		// Version validation just proved nothing the query reads has
		// changed, so the previous answer is still the answer. Analyze
		// requests skip the shortcut: rows must actually flow through the
		// operators to be counted.
		res.Columns = p.columns
		res.Rows = p.rows
		res.Affected = len(p.rows)
		return res, nil
	}
	op, err := e.planPhysical(ctx, p.exec, res, cfg)
	if err != nil {
		return nil, err
	}
	return e.runOperator(ctx, op, res, cfg)
}

// preparePlan captures a cache entry for a just-executed read statement.
// It must run inside the same readStable attempt as the execution, so the
// recorded dependency versions are consistent with the rows the execution
// read; the caller publishes the entry with putPlan only after the attempt
// validated against the seqlock — a torn entry (old rows, new versions)
// would otherwise validate forever.
func (e *Engine) preparePlan(stmt sqlparser.Statement, res *Result) *cachedPlan {
	sel, ok := stmt.(sqlparser.SelectStatement)
	if !ok || res.execStmt == nil {
		return nil // EXPLAIN and friends stay uncached
	}
	deps := newDepSet(e)
	deps.addStmt(sel)          // base tables of the original query
	deps.addStmt(res.execStmt) // view backing tables of the rewrite
	if res.Derivation != nil {
		deps.addName(res.Derivation.View.Name)
	}
	ent := &cachedPlan{
		exec:         res.execStmt,
		derivation:   res.Derivation,
		rewrittenSQL: res.Rewritten,
		planText:     res.planText,
		views:        deps.views,
		deps:         deps.tables,
		schema:       e.Cat.SchemaVersion(),
		opts:         e.Opts,
	}
	if len(res.Rows) <= maxCachedResultRows {
		ent.hasResult = true
		ent.columns = res.Columns
		ent.rows = res.Rows
	}
	return ent
}

// putPlan publishes a prepared cache entry.
func (e *Engine) putPlan(sql string, stmt sqlparser.Statement, ent *cachedPlan) {
	e.plans.Put(sql, ent)
	// Also index under the canonical statement text: EXPLAIN parses its
	// inner statement and can only look the plan up by String(), which may
	// differ from the user's spelling in whitespace and case.
	if sel, ok := stmt.(sqlparser.SelectStatement); ok {
		if canon := sel.String(); canon != sql {
			e.plans.Put(canon, ent)
		}
	}
}

// PlanCacheStats returns a snapshot of the plan cache counters.
func (e *Engine) PlanCacheStats() qcache.Stats { return e.plans.Stats() }

// SetPlanCacheCapacity replaces the plan cache with an empty one bounded to
// n entries; n = 0 disables plan caching.
func (e *Engine) SetPlanCacheCapacity(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.plans = qcache.New[*cachedPlan](n)
}

// InvalidatePlans empties the plan cache.
func (e *Engine) InvalidatePlans() { e.plans.Purge() }

// depSet accumulates the tables and materialized views a statement reads.
type depSet struct {
	e      *Engine
	seen   map[string]bool
	tables []planDep
	views  []string
}

func newDepSet(e *Engine) *depSet {
	return &depSet{e: e, seen: make(map[string]bool)}
}

func (d *depSet) addName(name string) {
	k := strings.ToLower(name)
	if d.seen[k] {
		return
	}
	d.seen[k] = true
	if _, isView := d.e.Cat.MatView(name); isView {
		d.views = append(d.views, name)
	}
	// Views resolve to their backing tables, so a REFRESH (which rewrites
	// the backing rows) bumps the recorded version.
	t, err := d.e.Cat.Table(name)
	if err != nil {
		return // unresolvable names fail at plan time, not here
	}
	d.tables = append(d.tables, planDep{name: name, version: t.Heap.Version()})
}

// addStmt walks every FROM clause reachable from the statement.
func (d *depSet) addStmt(stmt sqlparser.SelectStatement) {
	switch s := stmt.(type) {
	case *sqlparser.Select:
		d.addFrom(s.From)
	case *sqlparser.Union:
		d.addStmt(s.Left)
		d.addStmt(s.Right)
	}
}

func (d *depSet) addFrom(t sqlparser.TableExpr) {
	switch x := t.(type) {
	case nil:
	case *sqlparser.TableName:
		d.addName(x.Name)
	case *sqlparser.Join:
		d.addFrom(x.Left)
		d.addFrom(x.Right)
	case *sqlparser.DerivedTable:
		d.addStmt(x.Select)
	}
}
