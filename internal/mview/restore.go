package mview

import (
	"fmt"
	"time"

	"rfview/internal/catalog"
	"rfview/internal/core"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
)

// This file is the durability hook of the view manager: the wal package
// snapshots view *metadata* only (the backing rows travel with the ordinary
// table dump) and calls Restore to re-register each view and rebuild its
// in-memory maintainer state. Maintainers are pure functions of the base
// table — the same §2.3 invariant incremental maintenance relies on — so a
// fresh view's maintainer is reconstructed by re-reading the restored base
// sequence; a stale view defers that work to REFRESH, exactly as it would
// have before the crash.

// StaleInfo reports whether the named view is stale and why. It returns
// false for plain views and unknown names, which have no staleness state.
func (m *Manager) StaleInfo(name string) (bool, string) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	sv, ok := m.seq[lower(name)]
	if !ok {
		return false, ""
	}
	return sv.stale, sv.staleWhy
}

// RestoreSpec describes one materialized view as captured by a snapshot.
type RestoreSpec struct {
	// View carries the catalog metadata; its Table pointer is ignored and
	// re-resolved from Backing. It is a pointer because MatView embeds an
	// atomic field and must not be copied.
	View *catalog.MatView
	// Backing names the backing table, which must already be restored.
	Backing string
	// Stale / StaleWhy reproduce the pre-crash freshness state.
	Stale    bool
	StaleWhy string
}

// Restore re-registers a snapshotted materialized view against its restored
// backing table and rebuilds maintainer state for fresh sequence views.
func (m *Manager) Restore(spec RestoreSpec) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	backing, err := m.cat.Table(spec.Backing)
	if err != nil {
		return fmt.Errorf("mview: restore %q: backing table: %w", spec.View.Name, err)
	}
	mv := spec.View
	mv.Table = backing
	if err := m.cat.RegisterMatView(mv); err != nil {
		return err
	}

	if mv.Kind == catalog.PlainView {
		stmt, err := sqlparser.Parse(mv.Definition)
		if err != nil {
			return fmt.Errorf("mview: restore %q: reparse definition: %w", mv.Name, err)
		}
		cmv, ok := stmt.(*sqlparser.CreateMatView)
		if !ok {
			return fmt.Errorf("mview: restore %q: definition is %T, not CREATE MATERIALIZED VIEW", mv.Name, stmt)
		}
		m.plain[lower(mv.Name)] = cmv
		return nil
	}

	agg, err := aggOf(mv.Agg)
	if err != nil {
		return fmt.Errorf("mview: restore %q: %w", mv.Name, err)
	}
	valType := sqltypes.Int
	if vi := backing.ColumnIndex("val"); vi >= 0 {
		valType = backing.Columns[vi].Type
	}
	sv := &seqView{mv: mv, agg: agg, valType: valType, stale: spec.Stale, staleWhy: spec.StaleWhy}
	if spec.Stale {
		// Recovered staleness has unknown onset; age counts from restore.
		sv.staleSince = time.Now()
	}
	if mv.PartColumn != "" {
		// Partitioned views need a non-nil maintainer even while stale so
		// REFRESH takes the partitioned path.
		pm, err := core.NewPartitionedMaintainer(windowOfSpec(mv.Window), agg)
		if err != nil {
			return fmt.Errorf("mview: restore %q: %w", mv.Name, err)
		}
		sv.pm = pm
		sv.partKeys = make(map[string]sqltypes.Datum)
	}
	if !spec.Stale {
		base, err := m.cat.Table(mv.BaseTable)
		if err != nil {
			return fmt.Errorf("mview: restore %q: base table: %w", mv.Name, err)
		}
		if mv.PartColumn != "" {
			keys, raws, err := m.readPartitionedSequences(base, mv.PosColumn, mv.PartColumn, mv.ValColumn)
			if err != nil {
				return fmt.Errorf("mview: restore %q: %w", mv.Name, err)
			}
			for k, raw := range raws {
				if err := sv.pm.SetPartition(k, raw); err != nil {
					return fmt.Errorf("mview: restore %q: %w", mv.Name, err)
				}
			}
			sv.partKeys = keys
		} else {
			raw, err := m.readDenseSequence(base, mv.PosColumn, mv.ValColumn)
			if err != nil {
				return fmt.Errorf("mview: restore %q: %w", mv.Name, err)
			}
			if sv.maint, sv.cnt, err = newSeqMaintainers(raw, windowOfSpec(mv.Window), agg); err != nil {
				return fmt.Errorf("mview: restore %q: %w", mv.Name, err)
			}
		}
	}
	m.seq[lower(mv.Name)] = sv
	return nil
}
