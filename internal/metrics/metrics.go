// Package metrics is a dependency-free instrumentation library: counters,
// gauges, and histograms with Prometheus text exposition (version 0.0.4 of
// the format, the one every Prometheus scraper accepts). The engine, the WAL,
// and the query server register their series on one shared Registry, which is
// served out-of-band on the -metrics-addr HTTP listener and in-band through
// the "metrics" protocol op.
//
// Design constraints, in order:
//
//   - hot-path cost: incrementing a counter or observing a histogram sample
//     is a handful of atomic operations, no locks, no allocation;
//   - no dependencies: the container bakes in only the Go toolchain, so the
//     exposition format is written by hand;
//   - determinism: series render in registration order with sorted label
//     values, so scrape tests can assert on stable output.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets, in seconds: 100µs … 10s.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Add atomically adds delta (negative to subtract).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Histogram is a fixed-bucket histogram of float64 observations. Buckets are
// cumulative upper bounds; an implicit +Inf bucket always exists.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ---------------------------------------------------------------------------
// Labeled variants (single label, the only shape the engine needs)
// ---------------------------------------------------------------------------

// CounterVec is a family of counters keyed by one label value.
type CounterVec struct {
	label string
	mu    sync.Mutex
	m     map[string]*Counter
}

// With returns (creating if needed) the counter for one label value.
func (cv *CounterVec) With(value string) *Counter {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	c, ok := cv.m[value]
	if !ok {
		c = &Counter{}
		cv.m[value] = c
	}
	return c
}

// Values snapshots the family, keyed by label value.
func (cv *CounterVec) Values() map[string]uint64 {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	out := make(map[string]uint64, len(cv.m))
	for k, c := range cv.m {
		out[k] = c.Value()
	}
	return out
}

// HistogramVec is a family of histograms keyed by one label value.
type HistogramVec struct {
	label  string
	bounds []float64
	mu     sync.Mutex
	m      map[string]*Histogram
}

// With returns (creating if needed) the histogram for one label value.
func (hv *HistogramVec) With(value string) *Histogram {
	hv.mu.Lock()
	defer hv.mu.Unlock()
	h, ok := hv.m[value]
	if !ok {
		h = newHistogram(hv.bounds)
		hv.m[value] = h
	}
	return h
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// family is one named metric with its exposition metadata and backing
// instrument.
type family struct {
	name, help, typ string
	render          func(w io.Writer)
}

// Registry holds named metrics and renders them in the Prometheus text
// format. Registration is idempotent by name: asking for an already-registered
// instrument of the same kind returns the existing one, so two subsystems
// attached to the same engine share series instead of colliding.
type Registry struct {
	mu     sync.Mutex
	byName map[string]any // name -> instrument (for idempotent re-registration)
	fams   []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]any)}
}

// lookup returns an existing instrument under name, enforcing kind agreement.
func lookup[T any](r *Registry, name string) (T, bool) {
	var zero T
	got, ok := r.byName[name]
	if !ok {
		return zero, false
	}
	t, ok := got.(T)
	if !ok {
		panic(fmt.Sprintf("metrics: %q re-registered as a different kind (%T)", name, got))
	}
	return t, true
}

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := lookup[*Counter](r, name); ok {
		return c
	}
	c := &Counter{}
	r.byName[name] = c
	r.fams = append(r.fams, &family{name: name, help: help, typ: "counter",
		render: func(w io.Writer) { fmt.Fprintf(w, "%s %d\n", name, c.Value()) }})
	return c
}

// CounterVec registers (or returns) a single-label counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cv, ok := lookup[*CounterVec](r, name); ok {
		return cv
	}
	cv := &CounterVec{label: label, m: make(map[string]*Counter)}
	r.byName[name] = cv
	r.fams = append(r.fams, &family{name: name, help: help, typ: "counter",
		render: func(w io.Writer) {
			for _, kv := range sortedCounters(cv) {
				fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, kv.k, kv.v)
			}
		}})
	return cv
}

// Gauge registers (or returns) a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := lookup[*Gauge](r, name); ok {
		return g
	}
	g := &Gauge{}
	r.byName[name] = g
	r.fams = append(r.fams, &family{name: name, help: help, typ: "gauge",
		render: func(w io.Writer) { fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.Value())) }})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// Re-registering a name keeps the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		return
	}
	r.byName[name] = fn
	r.fams = append(r.fams, &family{name: name, help: help, typ: "gauge",
		render: func(w io.Writer) { fmt.Fprintf(w, "%s %s\n", name, formatFloat(fn())) }})
}

// GaugeSetFunc registers a labeled gauge family whose series set is computed
// at scrape time — one series per key of the returned map. Used for values
// keyed by a dynamic population (per-view staleness ages).
func (r *Registry) GaugeSetFunc(name, help, label string, fn func() map[string]float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		return
	}
	r.byName[name] = fn
	r.fams = append(r.fams, &family{name: name, help: help, typ: "gauge",
		render: func(w io.Writer) {
			vals := fn()
			keys := make([]string, 0, len(vals))
			for k := range vals {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "%s{%s=%q} %s\n", name, label, k, formatFloat(vals[k]))
			}
		}})
}

// Histogram registers (or returns) a histogram. nil buckets means
// DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := lookup[*Histogram](r, name); ok {
		return h
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	h := newHistogram(buckets)
	r.byName[name] = h
	r.fams = append(r.fams, &family{name: name, help: help, typ: "histogram",
		render: func(w io.Writer) { renderHistogram(w, name, "", "", h) }})
	return h
}

// HistogramVec registers (or returns) a single-label histogram family.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if hv, ok := lookup[*HistogramVec](r, name); ok {
		return hv
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	hv := &HistogramVec{label: label, bounds: buckets, m: make(map[string]*Histogram)}
	r.byName[name] = hv
	r.fams = append(r.fams, &family{name: name, help: help, typ: "histogram",
		render: func(w io.Writer) {
			hv.mu.Lock()
			keys := make([]string, 0, len(hv.m))
			for k := range hv.m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			hists := make([]*Histogram, len(keys))
			for i, k := range keys {
				hists[i] = hv.m[k]
			}
			hv.mu.Unlock()
			for i, k := range keys {
				renderHistogram(w, name, label, k, hists[i])
			}
		}})
	return hv
}

// WriteText renders every registered metric in the Prometheus text format,
// in registration order.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		f.render(w)
	}
}

// Expose returns the text exposition as a string (the "metrics" protocol op).
func (r *Registry) Expose() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// Handler serves the exposition over HTTP (the /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// ---------------------------------------------------------------------------
// Rendering helpers
// ---------------------------------------------------------------------------

type kv struct {
	k string
	v uint64
}

func sortedCounters(cv *CounterVec) []kv {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	out := make([]kv, 0, len(cv.m))
	for k, c := range cv.m {
		out = append(out, kv{k, c.Value()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

func renderHistogram(w io.Writer, name, label, labelVal string, h *Histogram) {
	extra := ""
	if label != "" {
		extra = fmt.Sprintf("%s=%q,", label, labelVal)
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, extra, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, extra, cum)
	suffix := ""
	if label != "" {
		suffix = fmt.Sprintf("{%s=%q}", label, labelVal)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, cum)
}

// formatFloat renders floats the way Prometheus expects: shortest exact
// decimal, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}
