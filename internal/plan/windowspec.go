package plan

import (
	"strings"

	"rfview/internal/exec"
	"rfview/internal/sqlparser"
)

// This file is the first-class window-spec API of the planner: WindowSpec
// captures one OVER clause's PARTITION BY and ORDER BY as canonical keys, and
// its comparison methods (Equal, PrefixOf, Compatible) are the single place
// the planner, the executor wiring, and the view-matching rewrite reason
// about spec compatibility. The shared-sort pass (planWindowsShared) builds
// ordering-compatible classes on top of these predicates.

// SpecKey is one key of a window spec: the canonical rendering of the
// expression (the planner's structural-equality currency), the direction, and
// the resolved NULL placement, alongside the AST node used for compilation.
type SpecKey struct {
	// Expr is the canonical (String()) rendering of the key expression.
	Expr string
	// Desc orders the key descending. Always false for partition keys.
	Desc bool
	// NullsLast is the resolved absolute NULL placement: true puts NULLs
	// after every non-NULL value regardless of direction. The parser default
	// (NULLs first ascending, NULLs last descending) resolves here, so two
	// clauses that spell the same order compare equal.
	NullsLast bool
	// AST is the key expression, for compilation against a schema.
	AST sqlparser.Expr
}

// sameKey reports full ordering equality: expression, direction and NULL
// placement.
func (k SpecKey) sameKey(o SpecKey) bool {
	return k.Expr == o.Expr && k.Desc == o.Desc && k.NullsLast == o.NullsLast
}

func (k SpecKey) String() string {
	s := k.Expr
	if k.Desc {
		s += " DESC"
	}
	if k.NullsLast != k.Desc { // deviates from the direction default
		if k.NullsLast {
			s += " NULLS LAST"
		} else {
			s += " NULLS FIRST"
		}
	}
	return s
}

// WindowSpec is the canonical form of one OVER clause. Partition keys keep
// the order they were written in — partition equality is set-based, and the
// rewrite layer matches views on the written order — while Order is an
// ordered sequence.
type WindowSpec struct {
	Partition []SpecKey
	Order     []SpecKey
}

// SpecOf builds the canonical spec of a parsed OVER clause, resolving the
// NULL-placement default of every order key.
func SpecOf(w *sqlparser.WindowExpr) WindowSpec {
	s := WindowSpec{
		Partition: make([]SpecKey, len(w.PartitionBy)),
		Order:     make([]SpecKey, len(w.OrderBy)),
	}
	for i, e := range w.PartitionBy {
		s.Partition[i] = SpecKey{Expr: e.String(), AST: e}
	}
	for i, o := range w.OrderBy {
		nl := o.Desc
		switch o.Nulls {
		case sqlparser.NullsFirst:
			nl = false
		case sqlparser.NullsLast:
			nl = true
		}
		s.Order[i] = SpecKey{Expr: o.Expr.String(), Desc: o.Desc, NullsLast: nl, AST: o.Expr}
	}
	return s
}

// exprSetEqual reports whether two key slices reference the same expression
// set (directions ignored — partition grouping has none).
func exprSetEqual(a, b []SpecKey) bool {
	if len(a) != len(b) {
		return false
	}
	for _, ka := range a {
		found := false
		for _, kb := range b {
			if ka.Expr == kb.Expr {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// isKeyPrefix reports whether a is a (possibly equal) leading prefix of b
// under full ordering equality.
func isKeyPrefix(a, b []SpecKey) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if !a[i].sameKey(b[i]) {
			return false
		}
	}
	return true
}

// Equal reports spec equivalence: the same partition key set and the same
// order sequence. Equal specs always share one Window operator.
func (s WindowSpec) Equal(t WindowSpec) bool {
	return exprSetEqual(s.Partition, t.Partition) &&
		len(s.Order) == len(t.Order) && isKeyPrefix(s.Order, t.Order)
}

// PrefixOf reports that t's ordering subsumes s's: equal partition sets and
// s.Order a leading prefix of t.Order — s can consume a sort produced for t.
func (s WindowSpec) PrefixOf(t WindowSpec) bool {
	return exprSetEqual(s.Partition, t.Partition) && isKeyPrefix(s.Order, t.Order)
}

// Reuse grades how a spec can consume an existing stream ordering.
type Reuse int

// Reuse grades, ordered by preference: ReuseFull consumes the ordering as-is
// (no sort at all), ReuseSegmented reuses the partition grouping but re-sorts
// within each partition segment, ReuseNone needs a full sort.
const (
	ReuseNone Reuse = iota
	ReuseSegmented
	ReuseFull
)

func (r Reuse) String() string {
	switch r {
	case ReuseFull:
		return "full"
	case ReuseSegmented:
		return "segmented"
	default:
		return "none"
	}
}

// Compatible grades the spec against a stream ordering (a sequence of sort
// keys): ReuseFull when the ordering's first |Partition| keys are a
// permutation of the partition set and the keys after them start with Order
// exactly; ReuseSegmented when only the partition prefix holds (partitions
// are contiguous, their internal order is wrong); ReuseNone otherwise. A
// spec with no partition keys is always at least ReuseSegmented — the whole
// stream is one contiguous partition.
func (s WindowSpec) Compatible(ordering []SpecKey) Reuse {
	np := len(s.Partition)
	if len(ordering) < np || !exprSetEqual(s.Partition, ordering[:np]) {
		return ReuseNone
	}
	if isKeyPrefix(s.Order, ordering[np:]) {
		return ReuseFull
	}
	return ReuseSegmented
}

// Key returns the canonical grouping key of the spec: specs with equal keys
// plan into one Window operator.
func (s WindowSpec) Key() string { return s.String() }

func (s WindowSpec) String() string {
	var b strings.Builder
	b.WriteString("PARTITION BY [")
	for i, k := range s.Partition {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k.String())
	}
	b.WriteString("] ORDER BY [")
	for i, k := range s.Order {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k.String())
	}
	b.WriteString("]")
	return b.String()
}

// PlainPartition returns the partition key column names when every partition
// key is a bare (untabled) column reference; ok=false otherwise. The rewrite
// layer matches reporting-function views on plain column lists.
func (s WindowSpec) PlainPartition() (cols []string, ok bool) {
	cols = make([]string, len(s.Partition))
	for i, k := range s.Partition {
		cr, isCol := k.AST.(*sqlparser.ColumnRef)
		if !isCol || cr.Table != "" {
			return nil, false
		}
		cols[i] = cr.Name
	}
	return cols, true
}

// PlainOrder returns the single order key's column name when the order
// clause is exactly one bare ascending column with default NULL placement;
// ok=false otherwise (the rewrite layer's sequence views support only that
// shape).
func (s WindowSpec) PlainOrder() (col string, ok bool) {
	if len(s.Order) != 1 {
		return "", false
	}
	k := s.Order[0]
	if k.Desc || k.NullsLast != k.Desc {
		return "", false
	}
	cr, isCol := k.AST.(*sqlparser.ColumnRef)
	if !isCol || cr.Table != "" {
		return "", false
	}
	return cr.Name, true
}

// execNulls maps the resolved placement onto the executor's SortKey knob,
// collapsing back to the direction default (NullsAuto) when they coincide so
// EXPLAIN output stays terse.
func (k SpecKey) execNulls() exec.NullsPlacement {
	if k.NullsLast == k.Desc {
		return exec.NullsAuto
	}
	if k.NullsLast {
		return exec.NullsLast
	}
	return exec.NullsFirst
}
